// Merge-equivalence tests for the sharded journal fabric: a 3-shard
// fabric fed the same observations as a single jserver must present the
// same journal through every read path — full scans, paged scans, and
// the change feed — modulo record IDs, which are allocation artifacts
// (the fabric stripes them across shards). Also asserts the fabric-wide
// re-pull-transfers-zero replication invariant over real TCP.
package fremont_test

import (
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"fremont/internal/core"
	"fremont/internal/explorer"
	"fremont/internal/fabric"
	"fremont/internal/fabric/fabricd"
	"fremont/internal/jclient"
	"fremont/internal/journal"
	"fremont/internal/jwire"
	"fremont/internal/netsim/campus"
	"fremont/internal/netsim/pkt"
	"fremont/internal/replicate"
)

// campusJournal runs the seeded department campus for five simulated
// minutes and returns the resulting journal — the golden source both
// backends are loaded from.
func campusJournal(t testing.TB) *journal.Journal {
	t.Helper()
	cfg := campus.DefaultConfig()
	cfg.Seed = 7001
	cfg.CSHosts = 60
	sys := core.NewDepartmentSystem(cfg)
	sys.Advance(5 * time.Minute)
	if _, err := sys.RunModule(explorer.RIPwatch{}, explorer.Params{Duration: 2 * time.Minute}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunModule(explorer.BroadcastPing{}, explorer.Params{}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunModule(explorer.ARPwatch{}, explorer.Params{Duration: 15 * time.Minute}); err != nil {
		t.Fatal(err)
	}
	if sys.J.NumInterfaces() == 0 {
		t.Fatal("campus run produced an empty journal")
	}
	return sys.J
}

// startFabricTCP boots an in-process N-shard fabric on loopback TCP and
// dials it with the scatter-gather client.
func startFabricTCP(t testing.TB, shards int) *jclient.Fabric {
	t.Helper()
	f, err := fabricd.Open(fabricd.Options{Shards: shards, DisableWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Listen("127.0.0.1:0"); err != nil {
		f.Close()
		t.Fatal(err)
	}
	fc, err := jclient.DialFabric(f.Addrs(), 2)
	if err != nil {
		f.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { fc.Close(); f.Close() })
	return fc
}

// canonIface encodes a record with its allocation artifacts (the record
// ID and the shard-local gateway reference) cleared, so journals that
// allocated IDs in different orders compare equal.
func canonIface(rec *journal.InterfaceRec) string {
	cp := *rec
	cp.ID = 0
	cp.Gateway = 0
	var w jwire.Writer
	jwire.PutInterfaceRec(&w, &cp)
	return hex.EncodeToString(w.B)
}

func canonSet(recs []*journal.InterfaceRec) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = canonIface(r)
	}
	sort.Strings(out)
	return out
}

func diffCanon(t *testing.T, what string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: %d records from fabric, %d from single server", what, len(got), len(want))
	}
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	for i := 0; i < n; i++ {
		if got[i] != want[i] {
			t.Errorf("%s: record %d differs:\n  fabric %s\n  single %s", what, i, got[i], want[i])
			return
		}
	}
}

// drainScan pages ScanInterfaces to exhaustion through any Scanner.
func drainScan(t testing.TB, s journal.Scanner, page int) []*journal.InterfaceRec {
	t.Helper()
	var all []*journal.InterfaceRec
	var cursor journal.ID
	for {
		recs, next, more, err := s.ScanInterfaces(cursor, page, journal.Query{})
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, recs...)
		if !more {
			return all
		}
		cursor = next
	}
}

// drainChanges pages InterfaceChanges to exhaustion through any Changer.
func drainChanges(t testing.TB, c journal.Changer, page int) []*journal.InterfaceRec {
	t.Helper()
	var all []*journal.InterfaceRec
	var after uint64
	for {
		recs, next, more, err := c.InterfaceChanges(after, page)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, recs...)
		if !more {
			return all
		}
		after = next
	}
}

// TestFabricMergeEquivalence loads the golden campus journal into a
// single jserver and a 3-shard fabric over TCP and checks that scans and
// the change feed return the same record set, then that per-shard
// replication cursors make a fabric-wide re-pull transfer zero records.
func TestFabricMergeEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	src := campusJournal(t)

	_, single := startServer(t, "")
	fc := startFabricTCP(t, 3)

	for name, dst := range map[string]journal.Sink{"single": single, "fabric": fc} {
		rep, _, err := replicate.Pull(dst, journal.Local{J: src}, replicate.Cursor{})
		if err != nil {
			t.Fatalf("load %s: %v", name, err)
		}
		if rep.Interfaces != src.NumInterfaces() {
			t.Fatalf("load %s: moved %d interfaces, want %d", name, rep.Interfaces, src.NumInterfaces())
		}
	}

	// Full query path.
	fRecs, err := fc.Interfaces(journal.Query{})
	if err != nil {
		t.Fatal(err)
	}
	sRecs, err := single.Interfaces(journal.Query{})
	if err != nil {
		t.Fatal(err)
	}
	diffCanon(t, "Interfaces", canonSet(fRecs), canonSet(sRecs))

	// Paged scan path, with a page size small enough to force many
	// scatter-gather merge rounds and cursor handoffs.
	diffCanon(t, "ScanInterfaces", canonSet(drainScan(t, fc, 7)), canonSet(drainScan(t, single, 7)))

	// Change feed: fabric fan-in under a composite cursor handle must
	// deliver the same record set as the single server's mod-seq feed.
	diffCanon(t, "InterfaceChanges", canonSet(drainChanges(t, fc, 9)), canonSet(drainChanges(t, single, 9)))

	// Gateways and subnets agree in count (their records carry interface
	// member IDs, so byte comparison is not meaningful across backends).
	fGws, err := fc.Gateways()
	if err != nil {
		t.Fatal(err)
	}
	sGws, err := single.Gateways()
	if err != nil {
		t.Fatal(err)
	}
	if len(fGws) != len(sGws) {
		t.Errorf("gateways: fabric %d, single %d", len(fGws), len(sGws))
	}
	fSns, err := fc.Subnets()
	if err != nil {
		t.Fatal(err)
	}
	sSns, err := single.Subnets()
	if err != nil {
		t.Fatal(err)
	}
	if len(fSns) != len(sSns) {
		t.Errorf("subnets: fabric %d, single %d", len(fSns), len(sSns))
	}

	// Per-shard replication over TCP: pulling the whole fabric into a
	// fresh journal moves every record once; re-pulling with the returned
	// shard-keyed cursor moves zero.
	srcs := make([]replicate.ShardSource, fc.NumShards())
	for i := range srcs {
		srcs[i] = replicate.ShardSource{ID: fabric.ShardID(i), Src: fc.Shard(i)}
	}
	mirror := journal.New()
	rep, cur, err := replicate.PullFabric(journal.Local{J: mirror}, srcs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if mirror.NumInterfaces() != src.NumInterfaces() {
		t.Errorf("mirror has %d interfaces, want %d", mirror.NumInterfaces(), src.NumInterfaces())
	}
	rep2, _, err := replicate.PullFabric(journal.Local{J: mirror}, srcs, cur)
	if err != nil {
		t.Fatal(err)
	}
	if n := rep2.Total().Interfaces + rep2.Total().Gateways + rep2.Total().Subnets; n != 0 {
		t.Errorf("re-pull transferred %d records, want 0 (first pull %+v)", n, rep.Total())
	}
	diffCanon(t, "mirror", canonSet(mirror.Interfaces(journal.Query{})), canonSet(sRecs))
}

// TestFabricMergeEquivalenceConcurrent repeats the scan comparison while
// a writer mutates both backends — exercised under -race in CI. The scan
// contract under concurrent mutation is exactly-once for records that
// existed at scan start; after the writer quiesces, both backends must
// agree exactly.
func TestFabricMergeEquivalenceConcurrent(t *testing.T) {
	_, single := startServer(t, "")
	fc := startFabricTCP(t, 3)

	const base = 60
	for i := 0; i < base; i++ {
		obs := journal.IfaceObs{IP: pkt.IPv4(10, 42, byte(i/256), byte(i%256)), Source: journal.SrcARP, At: time.Unix(800000000, 0)}
		if _, _, err := single.StoreInterface(obs); err != nil {
			t.Fatal(err)
		}
		if _, _, err := fc.StoreInterface(obs); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			obs := journal.IfaceObs{IP: pkt.IPv4(10, 43, 0, byte(i+1)), Source: journal.SrcICMP, At: time.Unix(800000100, 0)}
			if _, _, err := single.StoreInterface(obs); err != nil {
				t.Error(err)
				return
			}
			if _, _, err := fc.StoreInterface(obs); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Scan both backends while the writer runs: every pre-existing record
	// must appear exactly once; concurrently created ones at most once.
	for name, s := range map[string]journal.Scanner{"fabric": fc, "single": single} {
		seen := map[string]int{}
		for _, r := range drainScan(t, s, 16) {
			seen[canonIface(r)]++
		}
		for key, n := range seen {
			if n > 1 {
				t.Errorf("%s mid-write scan returned a record %d times: %s", name, n, key)
			}
		}
		if len(seen) < base {
			t.Errorf("%s mid-write scan lost pre-existing records: %d < %d", name, len(seen), base)
		}
	}
	wg.Wait()

	diffCanon(t, "post-quiesce scan", canonSet(drainScan(t, fc, 32)), canonSet(drainScan(t, single, 32)))
	diffCanon(t, "post-quiesce changes", canonSet(drainChanges(t, fc, 32)), canonSet(drainChanges(t, single, 32)))
}

// BenchmarkFabricScan measures scatter-gather scan throughput: a full
// paged drain of 50k interface records spread across a 3-shard fabric
// over loopback TCP. Gated by tools/benchgate.py against
// bench/BENCH_fabric_baseline.json in the fabric-smoke CI job.
func BenchmarkFabricScan(b *testing.B) {
	const records = 50000
	fc := startFabricTCP(b, 3)

	at := time.Unix(800000000, 0)
	for off := 0; off < records; off += 500 {
		var batch jclient.Batch
		for i := off; i < off+500 && i < records; i++ {
			batch.StoreInterface(journal.IfaceObs{
				IP:     pkt.IPv4(10, byte(i/65536%256), byte(i/256%256), byte(i%256)),
				Source: journal.SrcARP,
				At:     at,
			})
		}
		results, err := fc.StoreBatch(&batch)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}

	b.ResetTimer()
	b.ReportAllocs()
	start := time.Now()
	for n := 0; n < b.N; n++ {
		got := 0
		var cursor journal.ID
		for {
			recs, next, more, err := fc.ScanInterfaces(cursor, jwire.MaxScanPage, journal.Query{})
			if err != nil {
				b.Fatal(err)
			}
			got += len(recs)
			if !more {
				break
			}
			cursor = next
		}
		if got != records {
			b.Fatal(fmt.Errorf("scan returned %d records, want %d", got, records))
		}
	}
	elapsed := time.Since(start).Seconds()
	b.ReportMetric(float64(records)*float64(b.N)/elapsed, "records/sec")
}
