// Package present implements Fremont's presentation programs: the raw
// Journal dump used for debugging, the three-level interface viewer, and
// the network-structure export (the paper's Figure 2, which fed SunNet
// Manager).
package present

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"fremont/internal/journal"
	"fremont/internal/netsim/pkt"
)

// Dump writes every record in the Journal ("The first program simply lists
// all of the data in the Journal. We used this for early debugging.").
// Records stream one page at a time, so dumping never materializes the
// whole journal; the counts come last for the same reason.
func Dump(w io.Writer, sink journal.Sink) error {
	var nIfs, nGws, nSns int
	err := journal.EachInterface(sink, journal.Query{}, func(r *journal.InterfaceRec) error {
		nIfs++
		_, err := fmt.Fprintf(w, "  %s\n", r)
		return err
	})
	if err != nil {
		return err
	}
	if err := journal.EachGateway(sink, func(r *journal.GatewayRec) error {
		nGws++
		_, err := fmt.Fprintf(w, "  %s\n", r)
		return err
	}); err != nil {
		return err
	}
	if err := journal.EachSubnet(sink, func(r *journal.SubnetRec) error {
		nSns++
		_, err := fmt.Fprintf(w, "  %s\n", r)
		return err
	}); err != nil {
		return err
	}
	fmt.Fprintf(w, "journal: %d interfaces, %d gateways, %d subnets\n", nIfs, nGws, nSns)
	return nil
}

// sortByIP orders records by network layer address for display.
func sortByIP(recs []*journal.InterfaceRec) {
	sort.Slice(recs, func(i, j int) bool { return recs[i].IP < recs[j].IP })
}

// collectIfaces streams interface pages and keeps those inside net, so
// memory is bounded by the network being displayed, not the journal.
func collectIfaces(sink journal.Sink, net pkt.Subnet) ([]*journal.InterfaceRec, error) {
	var recs []*journal.InterfaceRec
	err := journal.EachInterface(sink, journal.Query{}, func(r *journal.InterfaceRec) error {
		if net.Contains(r.IP) {
			recs = append(recs, r)
		}
		return nil
	})
	return recs, err
}

// sinceOrNever renders the age of a timestamp.
func sinceOrNever(now, t time.Time) string {
	if t.IsZero() {
		return "never"
	}
	d := now.Sub(t)
	switch {
	case d < time.Minute:
		return "just now"
	case d < time.Hour:
		return fmt.Sprintf("%dm ago", int(d.Minutes()))
	case d < 48*time.Hour:
		return fmt.Sprintf("%dh ago", int(d.Hours()))
	default:
		return fmt.Sprintf("%dd ago", int(d.Hours()/24))
	}
}

// Level1 lists all interfaces in a network: "the network layer address,
// DNS name, and time since last verification of existence ... an easy
// indication of when the interface was last observed on the network."
func Level1(w io.Writer, sink journal.Sink, network pkt.Subnet, now time.Time) error {
	// Stream pages and keep only the interfaces on this network, so memory
	// is bounded by the network being displayed, not the journal.
	recs, err := collectIfaces(sink, network)
	if err != nil {
		return err
	}
	sortByIP(recs)
	fmt.Fprintf(w, "%-18s %-32s %s\n", "ADDRESS", "NAME", "LAST VERIFIED")
	for _, r := range recs {
		name := r.Name
		if name == "" {
			name = "-"
		}
		fmt.Fprintf(w, "%-18s %-32s %s\n", r.IP, name, sinceOrNever(now, r.Stamp.Verified))
	}
	return nil
}

// Level2 lists a subnet's interfaces with MAC layer addresses, a RIP
// source indication, and a gateway membership indication.
func Level2(w io.Writer, sink journal.Sink, subnet pkt.Subnet, now time.Time) error {
	recs, err := collectIfaces(sink, subnet)
	if err != nil {
		return err
	}
	sortByIP(recs)
	fmt.Fprintf(w, "%-18s %-20s %-4s %-8s %s\n", "ADDRESS", "MAC", "RIP", "GATEWAY", "LAST VERIFIED")
	for _, r := range recs {
		mac := "-"
		if !r.MAC.IsZero() {
			mac = r.MAC.String()
		}
		rip := "-"
		if r.RIPSource {
			rip = "yes"
		}
		gw := "-"
		if r.Gateway != 0 {
			gw = fmt.Sprintf("gw#%d", r.Gateway)
		}
		fmt.Fprintf(w, "%-18s %-20s %-4s %-8s %s\n", r.IP, mac, rip, gw, sinceOrNever(now, r.Stamp.Verified))
	}
	return nil
}

// Level3 lists every data item stored for one interface, with the full
// per-field timestamp triples.
func Level3(w io.Writer, sink journal.Sink, ip pkt.IP) error {
	recs, err := sink.Interfaces(journal.Query{ByIP: ip, HasIP: true})
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		fmt.Fprintf(w, "no record for %s\n", ip)
		return nil
	}
	for _, r := range recs {
		fmt.Fprintf(w, "interface record #%d\n", r.ID)
		fmt.Fprintf(w, "  network layer address: %s\n", r.IP)
		field := func(label, value string, s journal.Stamp) {
			fmt.Fprintf(w, "  %s: %s\n", label, value)
			if !s.IsZero() {
				fmt.Fprintf(w, "    discovered %s, last change %s, last verified %s\n",
					s.Discovered.Format(time.RFC3339), s.Changed.Format(time.RFC3339),
					s.Verified.Format(time.RFC3339))
			}
		}
		mac := "-"
		if !r.MAC.IsZero() {
			mac = r.MAC.String()
		}
		field("MAC layer address", mac, r.MACStamp)
		name := r.Name
		if name == "" {
			name = "-"
		}
		field("DNS name", name, r.NameStamp)
		if len(r.Aliases) > 0 {
			fmt.Fprintf(w, "  aliases: %s\n", strings.Join(r.Aliases, ", "))
		}
		mask := "-"
		if r.Mask != 0 {
			mask = r.Mask.String()
		}
		field("subnet mask", mask, r.MaskStamp)
		gw := "none known"
		if r.Gateway != 0 {
			gw = fmt.Sprintf("gateway #%d", r.Gateway)
		}
		fmt.Fprintf(w, "  gateway membership: %s\n", gw)
		fmt.Fprintf(w, "  RIP source: %v (promiscuous: %v)\n", r.RIPSource, r.RIPPromiscuous)
		fmt.Fprintf(w, "  information sources: %s\n", r.Sources)
		fmt.Fprintf(w, "  record discovered %s, last change %s, last verified %s\n",
			r.Stamp.Discovered.Format(time.RFC3339), r.Stamp.Changed.Format(time.RFC3339),
			r.Stamp.Verified.Format(time.RFC3339))
	}
	return nil
}

// Topology is the gateway↔subnet structure extracted from the Journal —
// what Figure 2 renders.
type Topology struct {
	Subnets  []pkt.Subnet
	Gateways []TopoGateway
}

// TopoGateway is one gateway with its interface addresses and attached
// subnets.
type TopoGateway struct {
	ID      journal.ID
	Name    string // best-known DNS name of any member interface
	Ifaces  []pkt.IP
	Subnets []pkt.Subnet
}

// ExtractTopology builds the structure from Journal records, streaming
// each kind one page at a time. Only the gateway membership map (interface
// ID to address and name) is held across pages; the topology is a
// reduction, not a copy of the journal.
func ExtractTopology(sink journal.Sink) (*Topology, error) {
	type member struct {
		ip   pkt.IP
		name string
	}
	byID := map[journal.ID]member{}
	err := journal.EachInterface(sink, journal.Query{}, func(r *journal.InterfaceRec) error {
		if r.Gateway != 0 {
			byID[r.ID] = member{ip: r.IP, name: r.Name}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	topo := &Topology{}
	if err := journal.EachSubnet(sink, func(sn *journal.SubnetRec) error {
		s := sn.Subnet
		if s.Mask == 0 {
			s.Mask = pkt.MaskBits(24)
		}
		topo.Subnets = append(topo.Subnets, s)
		return nil
	}); err != nil {
		return nil, err
	}
	sort.Slice(topo.Subnets, func(i, j int) bool { return topo.Subnets[i].Addr < topo.Subnets[j].Addr })
	if err := journal.EachGateway(sink, func(gw *journal.GatewayRec) error {
		tg := TopoGateway{ID: gw.ID, Subnets: gw.Subnets}
		for _, ifID := range gw.Ifaces {
			if rec, ok := byID[ifID]; ok {
				tg.Ifaces = append(tg.Ifaces, rec.ip)
				if tg.Name == "" && rec.name != "" {
					tg.Name = rec.name
				}
			}
		}
		sort.Slice(tg.Ifaces, func(i, j int) bool { return tg.Ifaces[i] < tg.Ifaces[j] })
		sort.Slice(tg.Subnets, func(i, j int) bool { return tg.Subnets[i].Addr < tg.Subnets[j].Addr })
		topo.Gateways = append(topo.Gateways, tg)
		return nil
	}); err != nil {
		return nil, err
	}
	sort.Slice(topo.Gateways, func(i, j int) bool { return topo.Gateways[i].ID < topo.Gateways[j].ID })
	return topo, nil
}

func (tg TopoGateway) label() string {
	if tg.Name != "" {
		return tg.Name
	}
	if len(tg.Ifaces) > 0 {
		return "gw-" + tg.Ifaces[0].String()
	}
	return fmt.Sprintf("gw#%d", tg.ID)
}

// WriteDOT emits the topology as a Graphviz graph.
func (t *Topology) WriteDOT(w io.Writer) {
	fmt.Fprintln(w, "graph fremont {")
	fmt.Fprintln(w, "  // generated by Fremont from Journal gateway and subnet records")
	fmt.Fprintln(w, "  node [shape=box];")
	for _, sn := range t.Subnets {
		fmt.Fprintf(w, "  %q [shape=ellipse];\n", sn.String())
	}
	for _, gw := range t.Gateways {
		fmt.Fprintf(w, "  %q [shape=box];\n", gw.label())
		for _, sn := range gw.Subnets {
			fmt.Fprintf(w, "  %q -- %q;\n", gw.label(), displaySubnet(sn))
		}
	}
	fmt.Fprintln(w, "}")
}

func displaySubnet(sn pkt.Subnet) string {
	if sn.Mask == 0 {
		sn.Mask = pkt.MaskBits(24)
	}
	return sn.String()
}

// WriteSNM emits the structure in the record format the paper fed to
// SunNet Manager ("The program retrieves the network and gateway entries
// from the Journal, and dumps the data in the format expected by SunNet
// Manager").
func (t *Topology) WriteSNM(w io.Writer) {
	fmt.Fprintln(w, "# fremont topology export (SunNet Manager element records)")
	for _, sn := range t.Subnets {
		fmt.Fprintf(w, "element bus %q {}\n", displaySubnet(sn))
	}
	for _, gw := range t.Gateways {
		fmt.Fprintf(w, "element router %q {\n", gw.label())
		for _, ip := range gw.Ifaces {
			fmt.Fprintf(w, "  address %s\n", ip)
		}
		fmt.Fprintln(w, "}")
		for _, sn := range gw.Subnets {
			fmt.Fprintf(w, "connect %q %q\n", gw.label(), displaySubnet(sn))
		}
	}
}

// WriteASCII renders a quick terminal view: each subnet with the gateways
// on it.
func (t *Topology) WriteASCII(w io.Writer) {
	gwsBySubnet := map[pkt.IP][]string{}
	for _, gw := range t.Gateways {
		for _, sn := range gw.Subnets {
			gwsBySubnet[sn.Addr] = append(gwsBySubnet[sn.Addr], gw.label())
		}
	}
	for _, sn := range t.Subnets {
		fmt.Fprintf(w, "%s\n", displaySubnet(sn))
		gws := gwsBySubnet[sn.Addr]
		sort.Strings(gws)
		for i, g := range gws {
			branch := "├─"
			if i == len(gws)-1 {
				branch = "└─"
			}
			fmt.Fprintf(w, "  %s %s\n", branch, g)
		}
	}
}
