package present

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"fremont/internal/journal"
	"fremont/internal/netsim/pkt"
)

var t0 = time.Date(1993, 1, 25, 8, 0, 0, 0, time.UTC)

func seeded(t *testing.T) journal.Sink {
	t.Helper()
	j := journal.New()
	sn, _ := pkt.ParseSubnet("128.138.238.0/24")
	j.StoreInterface(journal.IfaceObs{IP: pkt.IPv4(128, 138, 238, 5), HasMAC: true,
		MAC: pkt.MAC{8, 0, 0x20, 0, 0, 5}, Name: "anchor.cs.colorado.edu",
		HasMask: true, Mask: pkt.MaskBits(24), Source: journal.SrcARP | journal.SrcDNS, At: t0})
	j.StoreInterface(journal.IfaceObs{IP: pkt.IPv4(128, 138, 238, 1), HasMAC: true,
		MAC: pkt.MAC{8, 0, 0x20, 0, 0, 1}, Name: "cs-gw.colorado.edu",
		RIPSource: true, Source: journal.SrcARP | journal.SrcRIP, At: t0.Add(time.Hour)})
	j.StoreGateway(journal.GatewayObs{
		IfaceIPs: []pkt.IP{pkt.IPv4(128, 138, 238, 1), pkt.IPv4(128, 138, 1, 2)},
		Subnets:  []pkt.Subnet{sn},
		Source:   journal.SrcTraceroute, At: t0.Add(2 * time.Hour)})
	return journal.Local{J: j}
}

func TestDump(t *testing.T) {
	var buf bytes.Buffer
	if err := Dump(&buf, seeded(t)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"interfaces", "128.138.238.5", "gw#1", "subnet#1"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestLevel1(t *testing.T) {
	var buf bytes.Buffer
	net, _ := pkt.ParseSubnet("128.138.0.0/16")
	if err := Level1(&buf, seeded(t), net, t0.Add(26*time.Hour)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "anchor.cs.colorado.edu") {
		t.Errorf("level 1 missing name:\n%s", out)
	}
	if !strings.Contains(out, "ago") {
		t.Errorf("level 1 missing verification age:\n%s", out)
	}
}

func TestLevel2(t *testing.T) {
	var buf bytes.Buffer
	sn, _ := pkt.ParseSubnet("128.138.238.0/24")
	if err := Level2(&buf, seeded(t), sn, t0.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "08:00:20:00:00:01") {
		t.Errorf("level 2 missing MAC:\n%s", out)
	}
	if !strings.Contains(out, "yes") {
		t.Errorf("level 2 missing RIP flag:\n%s", out)
	}
	if !strings.Contains(out, "gw#1") {
		t.Errorf("level 2 missing gateway membership:\n%s", out)
	}
	// The backbone-side interface is outside this subnet.
	if strings.Contains(out, "128.138.1.2") {
		t.Errorf("level 2 leaked out-of-subnet interface:\n%s", out)
	}
}

func TestLevel3(t *testing.T) {
	var buf bytes.Buffer
	if err := Level3(&buf, seeded(t), pkt.IPv4(128, 138, 238, 5)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"MAC layer address", "DNS name", "subnet mask",
		"discovered", "last verified", "arp+dns"} {
		if !strings.Contains(out, want) {
			t.Errorf("level 3 missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := Level3(&buf, seeded(t), pkt.IPv4(10, 9, 9, 9)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no record") {
		t.Error("level 3 of unknown address should say so")
	}
}

func TestTopologyExports(t *testing.T) {
	topo, err := ExtractTopology(seeded(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Gateways) != 1 || len(topo.Subnets) != 1 {
		t.Fatalf("topology = %d gateways, %d subnets", len(topo.Gateways), len(topo.Subnets))
	}
	if topo.Gateways[0].Name != "cs-gw.colorado.edu" {
		t.Fatalf("gateway label = %q", topo.Gateways[0].Name)
	}

	var dot bytes.Buffer
	topo.WriteDOT(&dot)
	if !strings.Contains(dot.String(), "graph fremont") ||
		!strings.Contains(dot.String(), `"cs-gw.colorado.edu" -- "128.138.238.0/24"`) {
		t.Errorf("DOT output:\n%s", dot.String())
	}

	var snm bytes.Buffer
	topo.WriteSNM(&snm)
	for _, want := range []string{"element bus", "element router", "connect"} {
		if !strings.Contains(snm.String(), want) {
			t.Errorf("SNM output missing %q:\n%s", want, snm.String())
		}
	}

	var ascii bytes.Buffer
	topo.WriteASCII(&ascii)
	if !strings.Contains(ascii.String(), "└─ cs-gw.colorado.edu") {
		t.Errorf("ASCII output:\n%s", ascii.String())
	}
}

func TestSinceOrNeverFormats(t *testing.T) {
	now := t0.Add(100 * 24 * time.Hour)
	cases := []struct {
		at   time.Time
		want string
	}{
		{time.Time{}, "never"},
		{now.Add(-30 * time.Second), "just now"},
		{now.Add(-5 * time.Minute), "5m ago"},
		{now.Add(-3 * time.Hour), "3h ago"},
		{now.Add(-72 * time.Hour), "3d ago"},
	}
	for _, c := range cases {
		if got := sinceOrNever(now, c.at); got != c.want {
			t.Errorf("sinceOrNever(%v) = %q, want %q", c.at, got, c.want)
		}
	}
}

func TestTopologyLabelsFallBack(t *testing.T) {
	// A gateway with no named interface is labeled by its first address;
	// one with no resolvable interfaces falls back to its record ID.
	tg := TopoGateway{ID: 9}
	if got := tg.label(); got != "gw#9" {
		t.Errorf("label = %q", got)
	}
	ip, _ := pkt.ParseIP("10.0.0.1")
	tg.Ifaces = []pkt.IP{ip}
	if got := tg.label(); got != "gw-10.0.0.1" {
		t.Errorf("label = %q", got)
	}
	tg.Name = "x-gw.example"
	if got := tg.label(); got != "x-gw.example" {
		t.Errorf("label = %q", got)
	}
}
