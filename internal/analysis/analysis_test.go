package analysis

import (
	"testing"
	"time"

	"fremont/internal/journal"
	"fremont/internal/netsim/pkt"
)

var t0 = time.Date(1993, 1, 25, 8, 0, 0, 0, time.UTC)

func mac(b byte) pkt.MAC { return pkt.MAC{8, 0, 0x20, 0, 0, b} }

func countKind(ps []Problem, k ProblemKind) int {
	n := 0
	for _, p := range ps {
		if p.Kind == k {
			n++
		}
	}
	return n
}

func TestMaskConflicts(t *testing.T) {
	j := journal.New()
	// Three hosts on one /24; one claims /16.
	for i := 1; i <= 2; i++ {
		j.StoreInterface(journal.IfaceObs{IP: pkt.IPv4(10, 0, 1, byte(i)),
			HasMask: true, Mask: pkt.MaskBits(24), Source: journal.SrcICMP, At: t0})
	}
	j.StoreInterface(journal.IfaceObs{IP: pkt.IPv4(10, 0, 1, 3),
		HasMask: true, Mask: pkt.MaskBits(16), Source: journal.SrcICMP, At: t0})
	ps, err := Run(journal.Local{J: j}, Config{Now: t0.Add(time.Hour)})
	if err != nil {
		t.Fatal(err)
	}
	if countKind(ps, ProblemMaskConflict) != 1 {
		t.Fatalf("mask conflicts = %d, want 1 (%v)", countKind(ps, ProblemMaskConflict), ps)
	}
	var found *Problem
	for i := range ps {
		if ps[i].Kind == ProblemMaskConflict {
			found = &ps[i]
		}
	}
	if len(found.IPs) != 1 || found.IPs[0] != pkt.IPv4(10, 0, 1, 3) {
		t.Fatalf("wrong culprit: %+v", found)
	}
}

func TestNoMaskConflictWhenConsistent(t *testing.T) {
	j := journal.New()
	for i := 1; i <= 5; i++ {
		j.StoreInterface(journal.IfaceObs{IP: pkt.IPv4(10, 0, 1, byte(i)),
			HasMask: true, Mask: pkt.MaskBits(24), Source: journal.SrcICMP, At: t0})
	}
	ps, _ := Run(journal.Local{J: j}, Config{Now: t0})
	if countKind(ps, ProblemMaskConflict) != 0 {
		t.Fatalf("false mask conflict: %v", ps)
	}
}

func TestDuplicateAddressDetection(t *testing.T) {
	j := journal.New()
	ip := pkt.IPv4(10, 0, 1, 66)
	// Two MACs answering for one IP with overlapping lifetimes.
	j.StoreInterface(journal.IfaceObs{IP: ip, HasMAC: true, MAC: mac(1), Source: journal.SrcARP, At: t0})
	j.StoreInterface(journal.IfaceObs{IP: ip, HasMAC: true, MAC: mac(2), Source: journal.SrcARP, At: t0.Add(10 * time.Minute)})
	j.StoreInterface(journal.IfaceObs{IP: ip, HasMAC: true, MAC: mac(1), Source: journal.SrcARP, At: t0.Add(20 * time.Minute)})
	ps, _ := Run(journal.Local{J: j}, Config{Now: t0.Add(time.Hour)})
	if countKind(ps, ProblemDuplicateAddr) != 1 {
		t.Fatalf("duplicate-address findings = %d, want 1 (%v)", countKind(ps, ProblemDuplicateAddr), ps)
	}
	if countKind(ps, ProblemHardwareChange) != 0 {
		t.Fatalf("overlapping sightings misread as hardware change: %v", ps)
	}
}

func TestHardwareChangeDetection(t *testing.T) {
	j := journal.New()
	ip := pkt.IPv4(10, 0, 1, 20)
	// MAC 1 seen for a while, then silence, then MAC 2 takes over.
	j.StoreInterface(journal.IfaceObs{IP: ip, HasMAC: true, MAC: mac(1), Source: journal.SrcARP, At: t0})
	j.StoreInterface(journal.IfaceObs{IP: ip, HasMAC: true, MAC: mac(1), Source: journal.SrcARP, At: t0.Add(24 * time.Hour)})
	j.StoreInterface(journal.IfaceObs{IP: ip, HasMAC: true, MAC: mac(2), Source: journal.SrcARP, At: t0.Add(72 * time.Hour)})
	ps, _ := Run(journal.Local{J: j}, Config{Now: t0.Add(80 * time.Hour)})
	if countKind(ps, ProblemHardwareChange) != 1 {
		t.Fatalf("hardware changes = %d, want 1 (%v)", countKind(ps, ProblemHardwareChange), ps)
	}
	if countKind(ps, ProblemDuplicateAddr) != 0 {
		t.Fatalf("sequential sightings misread as duplicate: %v", ps)
	}
}

func TestStaleAddressDetection(t *testing.T) {
	j := journal.New()
	// Verified long ago by ARP.
	j.StoreInterface(journal.IfaceObs{IP: pkt.IPv4(10, 0, 1, 5), HasMAC: true, MAC: mac(5),
		Source: journal.SrcARP, At: t0})
	// Fresh host.
	j.StoreInterface(journal.IfaceObs{IP: pkt.IPv4(10, 0, 1, 6), HasMAC: true, MAC: mac(6),
		Source: journal.SrcARP, At: t0.Add(13 * 24 * time.Hour)})
	// DNS-only record: never flagged (DNS data is "not necessarily
	// current" anyway).
	j.StoreInterface(journal.IfaceObs{IP: pkt.IPv4(10, 0, 1, 7), Name: "ghost.example",
		Source: journal.SrcDNS, At: t0})
	ps, _ := Run(journal.Local{J: j}, Config{Now: t0.Add(14 * 24 * time.Hour)})
	stale := countKind(ps, ProblemStaleAddress)
	if stale != 1 {
		t.Fatalf("stale addresses = %d, want 1 (%v)", stale, ps)
	}
	for _, p := range ps {
		if p.Kind == ProblemStaleAddress && p.IPs[0] != pkt.IPv4(10, 0, 1, 5) {
			t.Fatalf("wrong host flagged stale: %+v", p)
		}
	}
}

func TestPromiscuousRIPDetection(t *testing.T) {
	j := journal.New()
	j.StoreInterface(journal.IfaceObs{IP: pkt.IPv4(10, 0, 1, 30), RIPSource: true,
		RIPPromiscuous: true, Source: journal.SrcRIP, At: t0})
	j.StoreInterface(journal.IfaceObs{IP: pkt.IPv4(10, 0, 1, 1), RIPSource: true,
		Source: journal.SrcRIP, At: t0})
	ps, _ := Run(journal.Local{J: j}, Config{Now: t0})
	if countKind(ps, ProblemPromiscuousRIP) != 1 {
		t.Fatalf("promiscuous findings = %d, want 1", countKind(ps, ProblemPromiscuousRIP))
	}
}

func TestProxyARPDetection(t *testing.T) {
	j := journal.New()
	// One MAC claims three addresses on one wire.
	for i := 50; i <= 52; i++ {
		j.StoreInterface(journal.IfaceObs{IP: pkt.IPv4(10, 0, 1, byte(i)),
			HasMAC: true, MAC: mac(7), Source: journal.SrcARP, At: t0})
	}
	ps, _ := Run(journal.Local{J: j}, Config{Now: t0})
	if countKind(ps, ProblemProxyARP) != 1 {
		t.Fatalf("proxy-ARP findings = %d, want 1 (%v)", countKind(ps, ProblemProxyARP), ps)
	}
}

func TestCleanJournalHasNoFindings(t *testing.T) {
	j := journal.New()
	for i := 1; i <= 20; i++ {
		j.StoreInterface(journal.IfaceObs{IP: pkt.IPv4(10, 0, 1, byte(i)), HasMAC: true,
			MAC: mac(byte(i)), HasMask: true, Mask: pkt.MaskBits(24),
			Source: journal.SrcARP | journal.SrcICMP, At: t0})
	}
	ps, err := Run(journal.Local{J: j}, Config{Now: t0.Add(time.Hour)})
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 0 {
		t.Fatalf("clean journal produced findings: %v", ps)
	}
}
