// Package analysis implements Fremont's analysis programs: the passes over
// Journal data that uncover the paper's Table 8 problem classes —
//
//   - IP addresses no longer in use
//   - hardware changes
//   - inconsistent network masks
//   - duplicate address assignments
//   - promiscuous RIP hosts
//
// plus the proxy-ARP/multi-homing disambiguation the text describes.
package analysis

import (
	"fmt"
	"sort"
	"time"

	"fremont/internal/journal"
	"fremont/internal/netsim/pkt"
)

// ProblemKind classifies a finding.
type ProblemKind string

// The Table 8 problem classes.
const (
	ProblemStaleAddress   ProblemKind = "ip-address-no-longer-in-use"
	ProblemHardwareChange ProblemKind = "hardware-change"
	ProblemMaskConflict   ProblemKind = "inconsistent-network-mask"
	ProblemDuplicateAddr  ProblemKind = "duplicate-address-assignment"
	ProblemPromiscuousRIP ProblemKind = "promiscuous-rip-host"
	ProblemProxyARP       ProblemKind = "proxy-arp-or-multihomed"
)

// Problem is one finding.
type Problem struct {
	Kind    ProblemKind
	Subnet  pkt.Subnet // zero when not subnet-scoped
	IPs     []pkt.IP
	MACs    []pkt.MAC
	Details string
	// Sig is the problem's stable identity: the same underlying conflict
	// keeps the same Sig even as its Details (counts, ages, durations)
	// evolve. The streaming Monitor dedupes alerts on it.
	Sig string
}

func (p Problem) String() string {
	return fmt.Sprintf("[%s] %s", p.Kind, p.Details)
}

// Config tunes the analyses.
type Config struct {
	// Now is the reference time for staleness (required).
	Now time.Time
	// StaleAfter marks interfaces unverified for this long as candidates
	// for address reclamation (default 7 days).
	StaleAfter time.Duration
	// OverlapSlack: two records for one IP whose verification windows
	// overlap by more than this are a duplicate assignment rather than a
	// hardware change (default 1 minute).
	OverlapSlack time.Duration
}

func (c *Config) defaults() {
	if c.StaleAfter == 0 {
		c.StaleAfter = 7 * 24 * time.Hour
	}
	if c.OverlapSlack == 0 {
		c.OverlapSlack = time.Minute
	}
}

// Run executes every analysis and returns findings sorted by kind then
// address.
func Run(sink journal.Sink, cfg Config) ([]Problem, error) {
	cfg.defaults()
	// The analyses need the full record set (they compare records against
	// each other), but it arrives one page at a time rather than as a
	// single full-journal response.
	var recs []*journal.InterfaceRec
	if err := journal.EachInterface(sink, journal.Query{}, func(r *journal.InterfaceRec) error {
		recs = append(recs, r)
		return nil
	}); err != nil {
		return nil, err
	}
	var subnets []*journal.SubnetRec
	if err := journal.EachSubnet(sink, func(sn *journal.SubnetRec) error {
		subnets = append(subnets, sn)
		return nil
	}); err != nil {
		return nil, err
	}
	var out []Problem
	out = append(out, MaskConflicts(recs, subnets)...)
	out = append(out, AddressConflicts(recs, cfg)...)
	out = append(out, StaleAddresses(recs, cfg)...)
	out = append(out, PromiscuousRIP(recs)...)
	sortProblems(out)
	return out, nil
}

// MaskConflicts "lists subnet mask conflicts for all of the interfaces in
// the same network. With this information we can identify hosts that are
// not configured properly for a subnetted environment."
func MaskConflicts(recs []*journal.InterfaceRec, subnets []*journal.SubnetRec) []Problem {
	// Group masked interfaces by the subnet they land on under the
	// majority interpretation (journal subnets first, /24 fallback).
	subnetOf := func(ip pkt.IP) pkt.Subnet {
		for _, sn := range subnets {
			if sn.Subnet.Mask != 0 && sn.Subnet.Contains(ip) {
				return sn.Subnet
			}
		}
		return pkt.SubnetOf(ip, pkt.MaskBits(24))
	}
	groups := map[pkt.IP][]*journal.InterfaceRec{}
	for _, rec := range recs {
		if rec.Mask == 0 {
			continue
		}
		groups[subnetOf(rec.IP).Addr] = append(groups[subnetOf(rec.IP).Addr], rec)
	}
	addrs := make([]pkt.IP, 0, len(groups))
	for a := range groups {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })

	var out []Problem
	for _, addr := range addrs {
		group := groups[addr]
		masks := map[pkt.Mask][]pkt.IP{}
		for _, rec := range group {
			masks[rec.Mask] = append(masks[rec.Mask], rec.IP)
		}
		if len(masks) < 2 {
			continue
		}
		// Majority mask is presumed right; the minority are the problem.
		var majority pkt.Mask
		for m, ips := range masks {
			if len(ips) > len(masks[majority]) {
				majority = m
			}
		}
		for m, ips := range masks {
			if m == majority {
				continue
			}
			sort.Slice(ips, func(i, j int) bool { return ips[i] < ips[j] })
			out = append(out, Problem{
				Kind:   ProblemMaskConflict,
				Subnet: subnetOf(ips[0]),
				IPs:    ips,
				Details: fmt.Sprintf("subnet %s: %d interface(s) claim mask %s while %d claim %s",
					subnetOf(ips[0]), len(ips), m, len(masks[majority]), majority),
				Sig: fmt.Sprintf("mask|%s|%s", subnetOf(ips[0]), m),
			})
		}
	}
	return out
}

// AddressConflicts "lists the possible conflicts between MAC layer and
// network layer addresses": duplicate IP assignments (two MACs answering
// for one address at overlapping times), hardware changes (sequential
// MACs), and one MAC carrying several addresses on a wire (proxy ARP, a
// gateway, or a reconfiguration).
func AddressConflicts(recs []*journal.InterfaceRec, cfg Config) []Problem {
	cfg.defaults()
	var out []Problem

	// Same IP, multiple MACs.
	byIP := map[pkt.IP][]*journal.InterfaceRec{}
	for _, rec := range recs {
		if !rec.MAC.IsZero() {
			byIP[rec.IP] = append(byIP[rec.IP], rec)
		}
	}
	ips := make([]pkt.IP, 0, len(byIP))
	for ip := range byIP {
		ips = append(ips, ip)
	}
	sort.Slice(ips, func(i, j int) bool { return ips[i] < ips[j] })
	for _, ip := range ips {
		group := byIP[ip]
		if len(group) < 2 {
			continue
		}
		sort.Slice(group, func(i, j int) bool {
			return group[i].MACStamp.Discovered.Before(group[j].MACStamp.Discovered)
		})
		for i := 1; i < len(group); i++ {
			prev, cur := group[i-1], group[i]
			macs := []pkt.MAC{prev.MAC, cur.MAC}
			// Overlapping verification windows mean both machines were
			// alive with the address at once: a duplicate assignment.
			// Strictly sequential sightings mean the hardware changed.
			overlap := prev.Stamp.Verified.Sub(cur.Stamp.Discovered)
			if overlap > cfg.OverlapSlack {
				out = append(out, Problem{
					Kind: ProblemDuplicateAddr, IPs: []pkt.IP{ip}, MACs: macs,
					Details: fmt.Sprintf("%s claimed by both %s and %s (seen concurrently for %v)",
						ip, prev.MAC, cur.MAC, overlap.Round(time.Second)),
					Sig: fmt.Sprintf("dup|%s|%s", ip, macPairSig(prev.MAC, cur.MAC)),
				})
			} else {
				out = append(out, Problem{
					Kind: ProblemHardwareChange, IPs: []pkt.IP{ip}, MACs: macs,
					Details: fmt.Sprintf("%s moved from %s (last verified %s) to %s (first seen %s)",
						ip, prev.MAC, prev.Stamp.Verified.Format(time.RFC3339),
						cur.MAC, cur.Stamp.Discovered.Format(time.RFC3339)),
					Sig: fmt.Sprintf("hw|%s|%s", ip, macPairSig(prev.MAC, cur.MAC)),
				})
			}
		}
	}

	// Same MAC, multiple IPs on one wire (under /24 grouping): proxy ARP,
	// a reconfigured system, or a multi-addressed interface. (The same MAC
	// on different subnets is gateway evidence and handled by correlate.)
	byMAC := map[pkt.MAC][]*journal.InterfaceRec{}
	for _, rec := range recs {
		if !rec.MAC.IsZero() {
			byMAC[rec.MAC] = append(byMAC[rec.MAC], rec)
		}
	}
	macs := make([]pkt.MAC, 0, len(byMAC))
	for m := range byMAC {
		macs = append(macs, m)
	}
	sort.Slice(macs, func(i, j int) bool {
		for k := range macs[i] {
			if macs[i][k] != macs[j][k] {
				return macs[i][k] < macs[j][k]
			}
		}
		return false
	})
	for _, mac := range macs {
		group := byMAC[mac]
		bySubnet := map[pkt.IP][]pkt.IP{}
		for _, rec := range group {
			sn := pkt.SubnetOf(rec.IP, pkt.MaskBits(24)).Addr
			bySubnet[sn] = append(bySubnet[sn], rec.IP)
		}
		for sn, addrs := range bySubnet {
			if len(addrs) < 2 {
				continue
			}
			sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
			out = append(out, Problem{
				Kind: ProblemProxyARP, IPs: addrs, MACs: []pkt.MAC{mac},
				Details: fmt.Sprintf("%s answers for %d addresses on one wire (proxy ARP device, or reconfigured host)",
					mac, len(addrs)),
				Sig: fmt.Sprintf("proxy|%s|%s", mac, sn),
			})
		}
	}
	return out
}

// StaleAddresses finds interfaces whose records have stopped being
// verified: "we can see when hosts have been removed from the network ...
// A network manager can observe this, and then contact the owner of the
// missing host to verify that the network address can be reused." DNS-only
// verification is ignored, per the presentation program's rule.
func StaleAddresses(recs []*journal.InterfaceRec, cfg Config) []Problem {
	cfg.defaults()
	var out []Problem
	for _, rec := range recs {
		// Only flag interfaces that were genuinely observed on the wire at
		// some point (ARP or ICMP evidence).
		if rec.Sources&(journal.SrcARP|journal.SrcICMP) == 0 {
			continue
		}
		age := cfg.Now.Sub(rec.Stamp.Verified)
		if age > cfg.StaleAfter {
			out = append(out, Problem{
				Kind: ProblemStaleAddress, IPs: []pkt.IP{rec.IP},
				Details: fmt.Sprintf("%s (%s) not verified for %v — address may be reusable",
					rec.IP, nameOr(rec), age.Round(time.Hour)),
				Sig: fmt.Sprintf("stale|%s", rec.IP),
			})
		}
	}
	return out
}

// PromiscuousRIP reports hosts RIPwatch flagged for rebroadcasting learned
// routes.
func PromiscuousRIP(recs []*journal.InterfaceRec) []Problem {
	var out []Problem
	for _, rec := range recs {
		if rec.RIPPromiscuous {
			out = append(out, Problem{
				Kind: ProblemPromiscuousRIP, IPs: []pkt.IP{rec.IP},
				Details: fmt.Sprintf("%s (%s) promiscuously re-advertises learned RIP routes",
					rec.IP, nameOr(rec)),
				Sig: fmt.Sprintf("rip|%s", rec.IP),
			})
		}
	}
	return out
}

// macPairSig renders a MAC pair order-independently, so a conflict's
// identity does not depend on which sighting came first.
func macPairSig(a, b pkt.MAC) string {
	x, y := a.String(), b.String()
	if y < x {
		x, y = y, x
	}
	return x + "|" + y
}

func nameOr(rec *journal.InterfaceRec) string {
	if rec.Name != "" {
		return rec.Name
	}
	return "unnamed"
}
