// Streaming analysis: the push-fed counterpart of the batch Run pass.
//
// A Monitor holds the interface and subnet records it has been fed and
// recomputes the problem set over exactly the pure functions the batch
// pass uses — so its cumulative answer IS the batch answer for the same
// records, by construction. What streaming adds is the delta: Apply
// reports the problems that became visible with the record that just
// arrived, deduplicated on the Sig identity, within one push of the
// evidence landing in the journal.
package analysis

import (
	"sort"
	"time"

	"fremont/internal/journal"
	"fremont/internal/netsim/pkt"
)

// Monitor is an incremental problem detector fed by a change stream.
// Not safe for concurrent use; feed it from one goroutine.
type Monitor struct {
	cfg     Config
	ifaces  map[journal.ID]*journal.InterfaceRec
	subnets map[journal.ID]*journal.SubnetRec
	seen    map[string]bool // Sig → already reported by Apply
}

// NewMonitor creates a Monitor. cfg.Now seeds the staleness reference;
// advance it with SetNow as stream time progresses.
func NewMonitor(cfg Config) *Monitor {
	cfg.defaults()
	return &Monitor{
		cfg:     cfg,
		ifaces:  make(map[journal.ID]*journal.InterfaceRec),
		subnets: make(map[journal.ID]*journal.SubnetRec),
		seen:    make(map[string]bool),
	}
}

// SetNow advances the reference time used by the staleness analysis.
func (m *Monitor) SetNow(now time.Time) { m.cfg.Now = now }

// ApplyInterface ingests one pushed interface record and returns the
// problems that are newly visible because of it.
func (m *Monitor) ApplyInterface(rec *journal.InterfaceRec) []Problem {
	m.ifaces[rec.ID] = rec
	return m.fresh()
}

// ApplySubnet ingests one pushed subnet record. New subnet knowledge
// can re-scope mask-conflict groups, so it too can surface problems.
func (m *Monitor) ApplySubnet(sn *journal.SubnetRec) []Problem {
	m.subnets[sn.ID] = sn
	return m.fresh()
}

// Problems recomputes the full current finding set — identical to what
// the batch Run would report over the same records.
func (m *Monitor) Problems() []Problem {
	recs, subnets := m.snapshot()
	var out []Problem
	out = append(out, MaskConflicts(recs, subnets)...)
	out = append(out, AddressConflicts(recs, m.cfg)...)
	out = append(out, StaleAddresses(recs, m.cfg)...)
	out = append(out, PromiscuousRIP(recs)...)
	sortProblems(out)
	return out
}

// fresh returns the problems whose Sig has not been reported before.
func (m *Monitor) fresh() []Problem {
	var out []Problem
	for _, p := range m.Problems() {
		if !m.seen[p.Sig] {
			m.seen[p.Sig] = true
			out = append(out, p)
		}
	}
	return out
}

// snapshot renders the held records in ID order, matching the order a
// batch pass reads them out of the journal.
func (m *Monitor) snapshot() ([]*journal.InterfaceRec, []*journal.SubnetRec) {
	recs := make([]*journal.InterfaceRec, 0, len(m.ifaces))
	for _, r := range m.ifaces {
		recs = append(recs, r)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].ID < recs[j].ID })
	subnets := make([]*journal.SubnetRec, 0, len(m.subnets))
	for _, sn := range m.subnets {
		subnets = append(subnets, sn)
	}
	sort.Slice(subnets, func(i, j int) bool { return subnets[i].ID < subnets[j].ID })
	return recs, subnets
}

// sortProblems orders findings by kind then first address — the batch
// Run's presentation order.
func sortProblems(out []Problem) {
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		li, lj := pkt.IP(0), pkt.IP(0)
		if len(out[i].IPs) > 0 {
			li = out[i].IPs[0]
		}
		if len(out[j].IPs) > 0 {
			lj = out[j].IPs[0]
		}
		return li < lj
	})
}
