package analysis

import (
	"reflect"
	"testing"
	"time"

	"fremont/internal/journal"
	"fremont/internal/netsim/pkt"
)

// feed replays a journal's interface/subnet changes into the monitor in
// mod-seq order, collecting every alert Apply fires.
func feed(t *testing.T, j *journal.Journal, m *Monitor, after uint64) ([]Problem, uint64) {
	t.Helper()
	var alerts []Problem
	cur := after
	target := j.CurSeq()
	type ev struct {
		seq   uint64
		apply func() []Problem
	}
	var evs []ev
	ifs, _, _ := j.InterfaceChanges(cur, 0)
	for _, rec := range ifs {
		rec := rec
		evs = append(evs, ev{rec.ModSeq, func() []Problem { return m.ApplyInterface(rec) }})
	}
	sns, _, _ := j.SubnetChanges(cur, 0)
	for _, rec := range sns {
		rec := rec
		evs = append(evs, ev{rec.ModSeq, func() []Problem { return m.ApplySubnet(rec) }})
	}
	for i := 0; i < len(evs); i++ {
		for k := i + 1; k < len(evs); k++ {
			if evs[k].seq < evs[i].seq {
				evs[i], evs[k] = evs[k], evs[i]
			}
		}
	}
	for _, e := range evs {
		alerts = append(alerts, e.apply()...)
	}
	return alerts, target
}

// The monitor's cumulative problem set must be byte-identical to the
// batch pass over the same journal, and the duplicate-address alert
// must fire exactly once, on the record that completes the evidence.
func TestMonitorConvergesToBatchRun(t *testing.T) {
	j := journal.New()
	sink := journal.Local{J: j}
	cfg := Config{Now: t0.Add(30 * 24 * time.Hour)}

	// A mask conflict on one wire...
	for i, m := range []pkt.Mask{pkt.MaskBits(24), pkt.MaskBits(24), pkt.MaskBits(16)} {
		sink.StoreInterface(journal.IfaceObs{
			IP: pkt.IPv4(10, 5, 0, byte(i+1)), HasMAC: true, MAC: mac(byte(40 + i)),
			HasMask: true, Mask: m, Source: journal.SrcICMP, At: cfg.Now.Add(-time.Hour),
		})
	}
	// ...a promiscuous RIP host...
	sink.StoreInterface(journal.IfaceObs{IP: pkt.IPv4(10, 5, 0, 9), RIPSource: true,
		RIPPromiscuous: true, Source: journal.SrcRIP, At: cfg.Now.Add(-time.Hour)})
	// ...and a stale address.
	sink.StoreInterface(journal.IfaceObs{IP: pkt.IPv4(10, 5, 0, 77), HasMAC: true,
		MAC: mac(77), Source: journal.SrcARP, At: cfg.Now.Add(-20 * 24 * time.Hour)})

	m := NewMonitor(cfg)
	alerts, cur := feed(t, j, m, 0)
	if len(alerts) == 0 {
		t.Fatal("no alerts from streaming apply")
	}

	// Now the duplicate: a second MAC claims an IP while the first
	// holder is still being verified.
	ip := pkt.IPv4(10, 5, 0, 50)
	sink.StoreInterface(journal.IfaceObs{IP: ip, HasMAC: true, MAC: mac(50),
		Source: journal.SrcARP, At: cfg.Now.Add(-2 * time.Hour)})
	sink.StoreInterface(journal.IfaceObs{IP: ip, HasMAC: true, MAC: mac(50),
		Source: journal.SrcARP, At: cfg.Now.Add(-30 * time.Minute)})
	preDup, _ := feed(t, j, m, cur)
	for _, p := range preDup {
		if p.Kind == ProblemDuplicateAddr {
			t.Fatalf("duplicate alert before the conflicting MAC arrived: %v", p)
		}
	}
	cur = j.CurSeq()
	sink.StoreInterface(journal.IfaceObs{IP: ip, HasMAC: true, MAC: mac(51),
		Source: journal.SrcARP, At: cfg.Now.Add(-time.Hour)})
	dupAlerts, _ := feed(t, j, m, cur)
	var dups int
	for _, p := range dupAlerts {
		if p.Kind == ProblemDuplicateAddr {
			dups++
		}
	}
	if dups != 1 {
		t.Fatalf("duplicate-address alerts on the completing record = %d, want 1 (%v)", dups, dupAlerts)
	}

	// Re-verifying the same records must not re-alert.
	cur = j.CurSeq()
	sink.StoreInterface(journal.IfaceObs{IP: ip, HasMAC: true, MAC: mac(51),
		Source: journal.SrcARP, At: cfg.Now.Add(-10 * time.Minute)})
	again, _ := feed(t, j, m, cur)
	for _, p := range again {
		if p.Kind == ProblemDuplicateAddr {
			t.Fatalf("duplicate alert re-fired on a re-verification: %v", p)
		}
	}

	// Convergence: the monitor's full answer equals the batch pass.
	batch, err := Run(journal.Local{J: j}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Problems(); !reflect.DeepEqual(got, batch) {
		t.Fatalf("monitor diverged from batch Run:\n--- monitor ---\n%v\n--- batch ---\n%v", got, batch)
	}
}

// Subnet knowledge arriving after the interfaces re-scopes mask groups,
// just as in the batch pass.
func TestMonitorSubnetRescope(t *testing.T) {
	j := journal.New()
	sink := journal.Local{J: j}
	cfg := Config{Now: t0}
	m := NewMonitor(cfg)

	// Under the /24 fallback these two look like different wires; the
	// real (journal-known) subnet is a /16 that puts them on one.
	sink.StoreInterface(journal.IfaceObs{IP: pkt.IPv4(10, 6, 1, 1), HasMAC: true, MAC: mac(60),
		HasMask: true, Mask: pkt.MaskBits(16), Source: journal.SrcICMP, At: t0})
	sink.StoreInterface(journal.IfaceObs{IP: pkt.IPv4(10, 6, 2, 1), HasMAC: true, MAC: mac(61),
		HasMask: true, Mask: pkt.MaskBits(24), Source: journal.SrcICMP, At: t0})
	sink.StoreInterface(journal.IfaceObs{IP: pkt.IPv4(10, 6, 3, 1), HasMAC: true, MAC: mac(62),
		HasMask: true, Mask: pkt.MaskBits(16), Source: journal.SrcICMP, At: t0})
	alerts, cur := feed(t, j, m, 0)
	if n := countKind(alerts, ProblemMaskConflict); n != 0 {
		t.Fatalf("mask conflict before subnet knowledge: %d", n)
	}

	wide, _ := pkt.ParseSubnet("10.6.0.0/16")
	sink.StoreSubnet(journal.SubnetObs{Subnet: wide, Source: journal.SrcRIP, At: t0})
	alerts, _ = feed(t, j, m, cur)
	if n := countKind(alerts, ProblemMaskConflict); n != 1 {
		t.Fatalf("subnet push did not surface the mask conflict: %d alerts", n)
	}

	batch, err := Run(journal.Local{J: j}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Problems(); !reflect.DeepEqual(got, batch) {
		t.Fatalf("monitor diverged from batch Run:\n--- monitor ---\n%v\n--- batch ---\n%v", got, batch)
	}
}
