package emulytics

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestSelfHostedEndToEnd boots the full self-hosted system — real jserver,
// real jclient manager and explorers, simulated TCP — on a clean network
// and checks the journal converged to the expected record count.
func TestSelfHostedEndToEnd(t *testing.T) {
	var buf bytes.Buffer
	res, err := Run(Config{Seed: 1, Explorers: 2, StoresPerExplorer: 6, Transcript: &buf})
	if err != nil {
		t.Fatal(err)
	}
	// 6 direct stores per explorer, plus the interface record the journal
	// derives from each explorer's gateway observation.
	if res.Records != 14 {
		t.Fatalf("journal has %d interface records, want 14", res.Records)
	}
	if res.Requests == 0 {
		t.Fatal("server served no requests")
	}
	if res.Frames == 0 {
		t.Fatal("no frames crossed the wires")
	}
	if !strings.Contains(buf.String(), "manager sees all") {
		t.Fatalf("transcript missing convergence line:\n%s", buf.String())
	}
}

// TestDeterministicDigestUnderLoss is the tentpole acceptance check: the
// same lossy scenario run twice produces bit-identical journal digests —
// loss draws, retransmissions and apply order are all functions of the
// seed. A different seed must shuffle the schedule (different frame
// count) yet still converge.
func TestDeterministicDigestUnderLoss(t *testing.T) {
	cfg := Config{Seed: 42, Loss: 0.05, Explorers: 2, StoresPerExplorer: 6}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest {
		t.Fatalf("digests differ across reruns:\n  %s\n  %s", a.Digest, b.Digest)
	}
	if a.Frames != b.Frames || a.Retransmits != b.Retransmits {
		t.Fatalf("schedule differs across reruns: frames %d/%d retransmits %d/%d",
			a.Frames, b.Frames, a.Retransmits, b.Retransmits)
	}
	if a.Retransmits == 0 {
		t.Fatal("5% loss produced no retransmissions; loss is not being exercised")
	}

	c, err := Run(Config{Seed: 43, Loss: 0.05, Explorers: 2, StoresPerExplorer: 6})
	if err != nil {
		t.Fatal(err)
	}
	if c.Records != a.Records {
		t.Fatalf("seed 43 converged to %d records, seed 42 to %d", c.Records, a.Records)
	}
	if c.Frames == a.Frames {
		t.Fatal("different seeds produced identical frame counts; RNG seeding suspect")
	}
}

// TestPartitionRecovery severs the field network mid-scenario; TCP
// retransmission must carry the in-flight operations across the outage
// and the journal must still converge.
func TestPartitionRecovery(t *testing.T) {
	res, err := Run(Config{
		Seed: 7, Explorers: 2, StoresPerExplorer: 6,
		PartitionAt: 300 * time.Millisecond, PartitionFor: 2 * time.Second,
		Duration: 4 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 14 {
		t.Fatalf("journal has %d interface records after partition, want 14", res.Records)
	}
	if res.Retransmits == 0 {
		t.Fatal("a 2s partition produced no retransmissions")
	}
}
