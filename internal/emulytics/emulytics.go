// Package emulytics self-hosts Fremont inside its own network simulator:
// a real jserver.Server on a simulated listener, real jclient managers and
// explorers on simulated dialers, all exchanging genuine jwire frames over
// the userspace TCP in netsim — one deterministic simulation of the whole
// distributed system, in the spirit of the emulytics methodology
// (Crussell et al., "Automated Discovery for Emulytics").
//
// Because virtual time only advances while every participant is parked in
// a simulated operation (netsim's gate), the journal apply order — and so
// record IDs, modification sequences, and the snapshot digest — is a pure
// function of the seed and scenario. Packet loss, latency, partitions and
// kills perturb the packet schedule deterministically too (loss draws come
// from the seeded scheduler RNG), so a scenario rerun with the same
// configuration reproduces the same digest bit for bit, retransmissions
// and all. That is the property the CI emulytics-smoke job asserts.
package emulytics

import (
	"crypto/sha256"
	"fmt"
	"io"
	"sync"
	"time"

	"fremont/internal/jclient"
	"fremont/internal/journal"
	"fremont/internal/jserver"
	"fremont/internal/netsim"
	"fremont/internal/netsim/pkt"
)

// Config describes one self-hosted scenario.
type Config struct {
	// Seed drives every random draw (loss, collisions, jitter).
	Seed int64
	// Loss is the random frame-loss probability applied to both wires.
	Loss float64
	// Explorers is the number of explorer hosts (default 2).
	Explorers int
	// StoresPerExplorer is each explorer's observation count (default 8).
	StoresPerExplorer int
	// PartitionAt/PartitionFor, when nonzero, take the router down for a
	// window, severing the field network from the server; retransmission
	// carries the in-flight operations across the outage.
	PartitionAt  time.Duration
	PartitionFor time.Duration
	// Duration is the virtual-time horizon (default 2 minutes). The run
	// fails if the actors have not finished inside it.
	Duration time.Duration
	// Transcript, when non-nil, receives a virtual-time-stamped log of
	// scenario events (the CI artifact).
	Transcript io.Writer
}

func (c *Config) defaults() {
	if c.Explorers == 0 {
		c.Explorers = 2
	}
	if c.StoresPerExplorer == 0 {
		c.StoresPerExplorer = 8
	}
	if c.Duration == 0 {
		c.Duration = 2 * time.Minute
	}
}

// Result summarizes a completed scenario.
type Result struct {
	// Digest is the hex sha256 of the server's canonical journal snapshot
	// — the determinism witness.
	Digest string
	// Records is the number of interface records the journal holds.
	Records int
	// Frames is the total frame count across both wires.
	Frames int
	// Retransmits counts TCP RTO-driven resends across all hosts.
	Retransmits int
	// Requests is the server's served-request count.
	Requests int64
	// VirtualElapsed is how much virtual time the actors consumed.
	VirtualElapsed time.Duration
}

// transcript is a mutex-guarded, virtual-time-stamped event log.
type transcript struct {
	mu  sync.Mutex
	w   io.Writer
	net *netsim.Network
}

func (tr *transcript) logf(format string, args ...any) {
	if tr.w == nil {
		return
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	now := tr.net.GatedNow().Format("15:04:05.000")
	fmt.Fprintf(tr.w, "%s %s\n", now, fmt.Sprintf(format, args...))
}

// serverAddr is where the Journal Server listens inside the simulation.
const serverAddr = "10.0.0.5:7777"

// routerPartition is the pre-bound event handler that flips the router.
func routerPartition(arg any, aux uint64) {
	arg.(*netsim.Node).SetUp(aux != 0)
}

// Run executes one self-hosted scenario and returns its result. It is
// synchronous and uses only virtual time; a default scenario completes in
// well under a second of real time.
func Run(cfg Config) (*Result, error) {
	cfg.defaults()

	// --- Topology: server behind a router, actors on a field wire. ----
	n := netsim.New(cfg.Seed)
	backbone := n.NewSegment("backbone", mustSubnet("10.0.0.0/24"))
	field := n.NewSegment("field", mustSubnet("10.1.0.0/24"))
	backbone.RandomLoss = cfg.Loss
	field.RandomLoss = cfg.Loss

	server := n.NewNode("journal-server")
	server.AddIface(backbone, mustIP("10.0.0.5"), pkt.MaskBits(24))
	mustRoute(server.AddDefaultRoute(mustIP("10.0.0.1")))

	router := n.NewNode("router")
	router.IsRouter = true
	router.AddIface(backbone, mustIP("10.0.0.1"), pkt.MaskBits(24))
	router.AddIface(field, mustIP("10.1.0.1"), pkt.MaskBits(24))

	manager := n.NewNode("manager")
	manager.AddIface(field, mustIP("10.1.0.10"), pkt.MaskBits(24))
	mustRoute(manager.AddDefaultRoute(mustIP("10.1.0.1")))

	explorers := make([]*netsim.Node, cfg.Explorers)
	for i := range explorers {
		nd := n.NewNode(fmt.Sprintf("explorer-%d", i))
		nd.AddIface(field, mustIP(fmt.Sprintf("10.1.0.%d", 20+i)), pkt.MaskBits(24))
		mustRoute(nd.AddDefaultRoute(mustIP("10.1.0.1")))
		explorers[i] = nd
	}

	tr := &transcript{w: cfg.Transcript, net: n}

	// --- The real Journal Server on a simulated listener. -------------
	srv := jserver.New(nil)
	ln, err := netsim.ListenTCP(server, 7777)
	if err != nil {
		return nil, err
	}
	if err := srv.Serve(ln); err != nil {
		return nil, err
	}
	tr.logf("jserver up on %s (loss=%.0f%%, seed=%d)", serverAddr, cfg.Loss*100, cfg.Seed)

	// --- Scripted partition. -------------------------------------------
	if cfg.PartitionAt > 0 && cfg.PartitionFor > 0 {
		n.Sched.AfterEvent(cfg.PartitionAt, routerPartition, router, 0)
		n.Sched.AfterEvent(cfg.PartitionAt+cfg.PartitionFor, routerPartition, router, 1)
		tr.logf("partition scheduled: router down %v..%v", cfg.PartitionAt, cfg.PartitionAt+cfg.PartitionFor)
	}

	// --- Actors: real jclient code on simulated dialers. ---------------
	actors := 1 + len(explorers)
	done := make(chan error, actors)

	for i, nd := range explorers {
		i, nd := i, nd
		n.Go(func() { done <- explorer(n, nd, i, cfg, tr) })
	}
	n.Go(func() { done <- managerActor(n, manager, cfg, tr) })

	n.RunGated(cfg.Duration)
	elapsed := n.Sched.Now()

	var firstErr error
	for i := 0; i < actors; i++ {
		select {
		case err := <-done:
			if err != nil && firstErr == nil {
				firstErr = err
			}
		default:
			if firstErr == nil {
				firstErr = fmt.Errorf("emulytics: %d actor(s) still running after %v of virtual time", actors-i, cfg.Duration)
			}
		}
	}
	if err := srv.Close(); err != nil && firstErr == nil {
		firstErr = fmt.Errorf("emulytics: server close: %w", err)
	}
	if firstErr != nil {
		return nil, firstErr
	}

	recs := srv.Journal().Interfaces(journal.Query{})
	retransmits := server.TCPRetransmits() + manager.TCPRetransmits()
	for _, nd := range explorers {
		retransmits += nd.TCPRetransmits()
	}
	res := &Result{
		Digest:         fmt.Sprintf("%x", sha256.Sum256(jserver.EncodeSnapshot(srv.Journal()))),
		Records:        len(recs),
		Frames:         n.TotalFrames(),
		Retransmits:    retransmits,
		Requests:       srv.Stats().RequestsServed,
		VirtualElapsed: elapsed,
	}
	tr.logf("done: digest=%s records=%d frames=%d retransmits=%d requests=%d",
		res.Digest[:16], res.Records, res.Frames, res.Retransmits, res.Requests)
	return res, nil
}

// explorer is one explorer host: it dials the Journal Server over the
// simulated network and reports a deterministic set of observations, the
// way an Explorer Module reports what it discovered on its wire.
func explorer(n *netsim.Network, nd *netsim.Node, idx int, cfg Config, tr *transcript) error {
	// Staggered start, like independently launched explorer processes.
	n.GatedSleep(time.Duration(idx+1) * 50 * time.Millisecond)
	c, err := jclient.Dial(serverAddr, jclient.WithDialer(netsim.Dialer(nd, 30*time.Second)))
	if err != nil {
		return fmt.Errorf("%s: %w", nd.Name, err)
	}
	defer c.Close()
	tr.logf("%s connected", nd.Name)

	t0 := n.GatedNow()
	for k := 0; k < cfg.StoresPerExplorer; k++ {
		obs := journal.IfaceObs{
			IP:      pkt.IPv4(128, 138, byte(200+idx), byte(10+k)),
			HasMAC:  true,
			MAC:     pkt.MAC{0x08, 0x00, 0x20, byte(idx), byte(k), 0x01},
			Name:    fmt.Sprintf("host-%d-%d.cs.colorado.edu", idx, k),
			HasMask: true,
			Mask:    pkt.MaskBits(24),
			Source:  journal.SrcARP,
			At:      t0,
		}
		if _, _, err := c.StoreInterface(obs); err != nil {
			return fmt.Errorf("%s store %d: %w", nd.Name, k, err)
		}
		n.GatedSleep(20 * time.Millisecond)
	}
	// One batched report, like a sweep flushing its findings.
	var b jclient.Batch
	b.StoreSubnet(journal.SubnetObs{
		Subnet: pkt.Subnet{Addr: pkt.IPv4(128, 138, byte(200+idx), 0), Mask: pkt.MaskBits(24)},
		Source: journal.SrcARP, At: t0,
	})
	b.StoreGateway(journal.GatewayObs{
		IfaceIPs: []pkt.IP{pkt.IPv4(128, 138, byte(200+idx), 1)},
		Source:   journal.SrcRIP, At: t0,
	})
	if _, err := c.StoreBatch(&b); err != nil {
		return fmt.Errorf("%s batch: %w", nd.Name, err)
	}
	tr.logf("%s reported %d observations", nd.Name, cfg.StoresPerExplorer+2)
	return nil
}

// managerActor is the Discovery Manager: it polls the journal until every
// explorer's observations have arrived, then reads the merged picture
// back, exactly the analyze-what-explorers-found loop.
func managerActor(n *netsim.Network, nd *netsim.Node, cfg Config, tr *transcript) error {
	n.GatedSleep(100 * time.Millisecond)
	c, err := jclient.Dial(serverAddr, jclient.WithDialer(netsim.Dialer(nd, 30*time.Second)))
	if err != nil {
		return fmt.Errorf("manager: %w", err)
	}
	defer c.Close()
	tr.logf("manager connected")

	want := cfg.Explorers * cfg.StoresPerExplorer
	deadline := n.GatedNow().Add(cfg.Duration - time.Second)
	for {
		recs, err := c.Interfaces(journal.Query{})
		if err != nil {
			return fmt.Errorf("manager scan: %w", err)
		}
		if len(recs) >= want {
			tr.logf("manager sees all %d interface records", len(recs))
			break
		}
		if n.GatedNow().After(deadline) {
			return fmt.Errorf("manager: journal converged to %d/%d records only", len(recs), want)
		}
		n.GatedSleep(200 * time.Millisecond)
	}
	gws, err := c.Gateways()
	if err != nil {
		return fmt.Errorf("manager gateways: %w", err)
	}
	subnets, err := c.Subnets()
	if err != nil {
		return fmt.Errorf("manager subnets: %w", err)
	}
	if _, err := c.ServerStats(); err != nil {
		return fmt.Errorf("manager stats: %w", err)
	}
	tr.logf("manager read back %d gateways, %d subnets", len(gws), len(subnets))
	return nil
}

func mustIP(s string) pkt.IP {
	ip, err := pkt.ParseIP(s)
	if err != nil {
		panic(err)
	}
	return ip
}

func mustSubnet(s string) pkt.Subnet {
	sn, err := pkt.ParseSubnet(s)
	if err != nil {
		panic(err)
	}
	return sn
}

func mustRoute(err error) {
	if err != nil {
		panic(err)
	}
}
