package dnssim

import (
	"testing"
	"time"

	"fremont/internal/netsim"
	"fremont/internal/netsim/pkt"
	"fremont/internal/netsim/sim"
)

func ip(t testing.TB, s string) pkt.IP {
	t.Helper()
	v, err := pkt.ParseIP(s)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func testZones(t testing.TB) (*Zone, *Zone) {
	fwd := NewZone("cs.colorado.edu")
	rev := NewZone("138.128.in-addr.arpa")
	hosts := map[string]string{
		"anchor.cs.colorado.edu": "128.138.238.5",
		"piper.cs.colorado.edu":  "128.138.238.6",
		"bruno.cs.colorado.edu":  "128.138.243.140",
	}
	for name, addr := range hosts {
		a, err := pkt.ParseIP(addr)
		if err != nil {
			t.Fatal(err)
		}
		fwd.AddA(name, a)
		rev.AddPTR(a, name)
	}
	// A gateway with two interfaces and a -gw naming convention.
	fwd.AddA("engr-gw.colorado.edu", pkt.IPv4(128, 138, 238, 1))
	fwd.AddA("engr-gw.colorado.edu", pkt.IPv4(128, 138, 243, 1))
	rev.AddPTR(pkt.IPv4(128, 138, 238, 1), "engr-gw.colorado.edu")
	rev.AddPTR(pkt.IPv4(128, 138, 243, 1), "engr-gw.colorado.edu")
	return fwd, rev
}

func TestZoneLookup(t *testing.T) {
	fwd, _ := testZones(t)
	s := NewServer()
	s.AddZone(fwd)
	q := &pkt.DNSMessage{ID: 1, Question: []pkt.DNSQuestion{
		{Name: "anchor.cs.colorado.edu", Type: pkt.DNSTypeA, Class: pkt.DNSClassIN}}}
	resp := s.Answer(q)
	if resp.Rcode != pkt.DNSRcodeOK || len(resp.Answer) != 1 {
		t.Fatalf("resp = %+v", resp)
	}
	if resp.Answer[0].A != ip(t, "128.138.238.5") {
		t.Fatalf("A = %s", resp.Answer[0].A)
	}
}

func TestZoneLookupCaseInsensitive(t *testing.T) {
	fwd, _ := testZones(t)
	s := NewServer()
	s.AddZone(fwd)
	q := &pkt.DNSMessage{ID: 1, Question: []pkt.DNSQuestion{
		{Name: "Anchor.CS.Colorado.EDU", Type: pkt.DNSTypeA, Class: pkt.DNSClassIN}}}
	if resp := s.Answer(q); len(resp.Answer) != 1 {
		t.Fatalf("case-insensitive lookup failed: %+v", resp)
	}
}

func TestNXDomain(t *testing.T) {
	fwd, _ := testZones(t)
	s := NewServer()
	s.AddZone(fwd)
	q := &pkt.DNSMessage{ID: 1, Question: []pkt.DNSQuestion{
		{Name: "nosuch.cs.colorado.edu", Type: pkt.DNSTypeA, Class: pkt.DNSClassIN}}}
	if resp := s.Answer(q); resp.Rcode != pkt.DNSRcodeNXName {
		t.Fatalf("rcode = %d, want NXDOMAIN", resp.Rcode)
	}
}

func TestRefusedOutsideZones(t *testing.T) {
	fwd, _ := testZones(t)
	s := NewServer()
	s.AddZone(fwd)
	q := &pkt.DNSMessage{ID: 1, Question: []pkt.DNSQuestion{
		{Name: "example.com", Type: pkt.DNSTypeA, Class: pkt.DNSClassIN}}}
	if resp := s.Answer(q); resp.Rcode != pkt.DNSRcodeRefused {
		t.Fatalf("rcode = %d, want REFUSED", resp.Rcode)
	}
}

func TestReverseZoneTransfer(t *testing.T) {
	_, rev := testZones(t)
	s := NewServer()
	s.AddZone(rev)
	q := &pkt.DNSMessage{ID: 1, Question: []pkt.DNSQuestion{
		{Name: "138.128.in-addr.arpa", Type: pkt.DNSTypeAXFR, Class: pkt.DNSClassIN}}}
	resp := s.Answer(q)
	if len(resp.Answer) != 5 {
		t.Fatalf("transfer returned %d records, want 5", len(resp.Answer))
	}
	for i := 1; i < len(resp.Answer); i++ {
		if resp.Answer[i-1].Name > resp.Answer[i].Name {
			t.Fatal("transfer records not sorted by owner")
		}
	}
}

func TestSubtreeTransfer(t *testing.T) {
	// AXFR at a deeper cut returns only that subtree (the recursive
	// descent Census-style walk).
	_, rev := testZones(t)
	s := NewServer()
	s.AddZone(rev)
	q := &pkt.DNSMessage{ID: 1, Question: []pkt.DNSQuestion{
		{Name: "238.138.128.in-addr.arpa", Type: pkt.DNSTypeAXFR, Class: pkt.DNSClassIN}}}
	resp := s.Answer(q)
	if len(resp.Answer) != 3 { // .5, .6, .1 on subnet 238
		t.Fatalf("subtree transfer returned %d records, want 3", len(resp.Answer))
	}
}

func TestRefuseAXFR(t *testing.T) {
	_, rev := testZones(t)
	s := NewServer()
	s.AddZone(rev)
	s.RefuseAXFR = true
	q := &pkt.DNSMessage{ID: 1, Question: []pkt.DNSQuestion{
		{Name: "138.128.in-addr.arpa", Type: pkt.DNSTypeAXFR, Class: pkt.DNSClassIN}}}
	if resp := s.Answer(q); resp.Rcode != pkt.DNSRcodeRefused {
		t.Fatalf("rcode = %d, want REFUSED", resp.Rcode)
	}
}

func TestMultipleARecordsForGateway(t *testing.T) {
	fwd, _ := testZones(t)
	s := NewServer()
	s.AddZone(fwd)
	q := &pkt.DNSMessage{ID: 1, Question: []pkt.DNSQuestion{
		{Name: "engr-gw.colorado.edu", Type: pkt.DNSTypeA, Class: pkt.DNSClassIN}}}
	// engr-gw is outside cs.colorado.edu — need its own zone.
	if resp := s.Answer(q); resp.Rcode != pkt.DNSRcodeRefused {
		t.Fatalf("expected refusal outside zone, got %+v", resp)
	}
	top := NewZone("colorado.edu")
	top.AddA("engr-gw.colorado.edu", pkt.IPv4(128, 138, 238, 1))
	top.AddA("engr-gw.colorado.edu", pkt.IPv4(128, 138, 243, 1))
	s.AddZone(top)
	resp := s.Answer(q)
	if len(resp.Answer) != 2 {
		t.Fatalf("gateway A lookup returned %d records, want 2", len(resp.Answer))
	}
}

func TestMostSpecificZoneWins(t *testing.T) {
	top := NewZone("colorado.edu")
	top.AddA("x.cs.colorado.edu", pkt.IPv4(1, 1, 1, 1)) // stale copy in parent
	sub := NewZone("cs.colorado.edu")
	sub.AddA("x.cs.colorado.edu", pkt.IPv4(2, 2, 2, 2))
	s := NewServer()
	s.AddZone(top)
	s.AddZone(sub)
	q := &pkt.DNSMessage{ID: 1, Question: []pkt.DNSQuestion{
		{Name: "x.cs.colorado.edu", Type: pkt.DNSTypeA, Class: pkt.DNSClassIN}}}
	resp := s.Answer(q)
	if len(resp.Answer) != 1 || resp.Answer[0].A != pkt.IPv4(2, 2, 2, 2) {
		t.Fatalf("child zone not preferred: %+v", resp.Answer)
	}
}

func TestServerOverSimulatedNetwork(t *testing.T) {
	n := netsim.New(31)
	sn, _ := pkt.ParseSubnet("128.138.238.0/24")
	seg := n.NewSegment("seg", sn)
	server := n.NewNode("ns")
	server.AddIface(seg, ip(t, "128.138.238.2"), pkt.MaskBits(24))
	client := n.NewNode("client")
	client.AddIface(seg, ip(t, "128.138.238.3"), pkt.MaskBits(24))

	_, rev := testZones(t)
	s := NewServer()
	s.AddZone(rev)
	s.Attach(server)

	conn, err := client.OpenUDP(0)
	if err != nil {
		t.Fatal(err)
	}
	var answers []pkt.DNSRR
	n.Sched.Spawn("query", func(p *sim.Proc) {
		q := &pkt.DNSMessage{ID: 77, RD: true, Question: []pkt.DNSQuestion{
			{Name: "138.128.in-addr.arpa", Type: pkt.DNSTypeAXFR, Class: pkt.DNSClassIN}}}
		raw, err := q.Encode()
		if err != nil {
			t.Error(err)
			return
		}
		if err := conn.Send(ip(t, "128.138.238.2"), pkt.PortDNS, raw); err != nil {
			t.Error(err)
			return
		}
		ev, ok := conn.Recv(p, 10*time.Second)
		if !ok {
			t.Error("no DNS response over the wire")
			return
		}
		resp, err := pkt.DecodeDNS(ev.Payload)
		if err != nil {
			t.Error(err)
			return
		}
		if resp.ID != 77 || !resp.Response {
			t.Errorf("bad response header: %+v", resp)
		}
		answers = resp.Answer
	})
	n.Run(15 * time.Second)
	if len(answers) != 5 {
		t.Fatalf("zone transfer over wire returned %d records, want 5", len(answers))
	}
	if s.QueriesServed != 1 {
		t.Fatalf("QueriesServed = %d", s.QueriesServed)
	}
}
