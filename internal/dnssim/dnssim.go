// Package dnssim implements an authoritative Domain Name System server
// that runs as a node in the simulated network, speaking the real DNS wire
// format from package pkt.
//
// Fremont's DNS Explorer Module discovers interfaces and gateways by
// walking a network's reverse (in-addr.arpa) zone with zone transfers and
// cross-matching names and addresses. This server provides the zones to
// walk, including the data-quality pathologies the paper reports: stale
// entries for machines that no longer exist, hosts missing from the name
// service, and gateway naming conventions ("names which differ only by
// '-gw' or similar").
//
// Substitution note: real zone transfers run over TCP; the simulator
// carries them in (arbitrarily large) UDP responses to an AXFR-type query.
// The discovery logic — issue AXFR at a zone cut, collect RRs, recurse —
// is unchanged.
package dnssim

import (
	"sort"
	"strings"

	"fremont/internal/netsim"
	"fremont/internal/netsim/pkt"
)

// Zone is one authoritative zone (forward or reverse).
type Zone struct {
	Origin  string // e.g. "cs.colorado.edu" or "138.128.in-addr.arpa"
	records []pkt.DNSRR
	byName  map[string][]int
}

// NewZone creates an empty zone rooted at origin.
func NewZone(origin string) *Zone {
	return &Zone{Origin: canon(origin), byName: map[string][]int{}}
}

func canon(name string) string {
	return strings.ToLower(strings.TrimSuffix(name, "."))
}

// Add appends a resource record to the zone.
func (z *Zone) Add(rr pkt.DNSRR) {
	rr.Name = canon(rr.Name)
	rr.Class = pkt.DNSClassIN
	if rr.TTL == 0 {
		rr.TTL = 86400
	}
	z.byName[rr.Name] = append(z.byName[rr.Name], len(z.records))
	z.records = append(z.records, rr)
}

// AddA adds an address record.
func (z *Zone) AddA(name string, ip pkt.IP) {
	z.Add(pkt.DNSRR{Name: name, Type: pkt.DNSTypeA, A: ip})
}

// AddPTR adds a reverse pointer record for ip.
func (z *Zone) AddPTR(ip pkt.IP, target string) {
	z.Add(pkt.DNSRR{Name: pkt.ReverseName(ip), Type: pkt.DNSTypePTR, Targ: canon(target)})
}

// AddCNAME adds an alias record.
func (z *Zone) AddCNAME(alias, target string) {
	z.Add(pkt.DNSRR{Name: alias, Type: pkt.DNSTypeCNAME, Targ: canon(target)})
}

// AddNS adds a name-server record.
func (z *Zone) AddNS(name, target string) {
	z.Add(pkt.DNSRR{Name: name, Type: pkt.DNSTypeNS, Targ: canon(target)})
}

// Len returns the number of records in the zone.
func (z *Zone) Len() int { return len(z.records) }

// contains reports whether name falls inside the zone.
func (z *Zone) contains(name string) bool {
	name = canon(name)
	return name == z.Origin || strings.HasSuffix(name, "."+z.Origin)
}

// lookup returns records matching name and qtype (ANY matches all types).
func (z *Zone) lookup(name string, qtype uint16) []pkt.DNSRR {
	var out []pkt.DNSRR
	for _, idx := range z.byName[canon(name)] {
		rr := z.records[idx]
		if qtype == pkt.DNSTypeANY || rr.Type == qtype {
			out = append(out, rr)
		}
	}
	return out
}

// transfer returns every record at or below name, sorted by owner name —
// the zone-transfer view the DNS Explorer Module walks.
func (z *Zone) transfer(name string) []pkt.DNSRR {
	name = canon(name)
	var out []pkt.DNSRR
	for _, rr := range z.records {
		if rr.Name == name || strings.HasSuffix(rr.Name, "."+name) {
			out = append(out, rr)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Server is the authoritative server. Attach it to a simulated node to
// serve queries on UDP port 53.
type Server struct {
	zones []*Zone

	// QueriesServed and RecordsServed count load, for the Table 4
	// network-load measurements ("The network load is noticeable while the
	// module does zone transfers").
	QueriesServed int
	RecordsServed int

	// RefuseAXFR models servers that disallow zone transfers entirely.
	RefuseAXFR bool
	// RefuseAXFRZones refuses transfers only at the named cuts (e.g.
	// refuse the whole-network zone but allow per-subnet transfers —
	// which is what forces the DNS module's recursive descent).
	RefuseAXFRZones map[string]bool
}

// NewServer creates a server with no zones.
func NewServer() *Server { return &Server{} }

// AddZone makes the server authoritative for z.
func (s *Server) AddZone(z *Zone) { s.zones = append(s.zones, z) }

// Zones returns the zones the server is authoritative for.
func (s *Server) Zones() []*Zone { return s.zones }

// zoneFor picks the most specific zone containing name.
func (s *Server) zoneFor(name string) *Zone {
	var best *Zone
	for _, z := range s.zones {
		if z.contains(name) {
			if best == nil || len(z.Origin) > len(best.Origin) {
				best = z
			}
		}
	}
	return best
}

// Attach registers the server's UDP handler on node port 53.
func (s *Server) Attach(node *netsim.Node) {
	node.RegisterUDPService(pkt.PortDNS, func(nd *netsim.Node, src pkt.IP, srcPort uint16, dst pkt.IP, payload []byte) {
		q, err := pkt.DecodeDNS(payload)
		if err != nil || q.Response || len(q.Question) == 0 {
			return
		}
		resp := s.Answer(q)
		raw, err := resp.Encode()
		if err != nil {
			return
		}
		u := &pkt.UDPPacket{SrcPort: pkt.PortDNS, DstPort: srcPort, Payload: raw}
		h := pkt.IPv4Header{Protocol: pkt.ProtoUDP, Src: dst, Dst: src, TTL: 30}
		_ = nd.SendIP(h, u.Encode(dst, src))
	})
}

// Answer produces the response message for a query (exported for direct
// unit testing without a network).
func (s *Server) Answer(q *pkt.DNSMessage) *pkt.DNSMessage {
	s.QueriesServed++
	resp := &pkt.DNSMessage{ID: q.ID, Response: true, AA: true, RD: q.RD, Question: q.Question}
	qu := q.Question[0]
	zone := s.zoneFor(qu.Name)
	if zone == nil {
		resp.Rcode = pkt.DNSRcodeRefused
		return resp
	}
	switch qu.Type {
	case pkt.DNSTypeAXFR:
		if s.RefuseAXFR || s.RefuseAXFRZones[strings.ToLower(strings.TrimSuffix(qu.Name, "."))] {
			resp.Rcode = pkt.DNSRcodeRefused
			return resp
		}
		resp.Answer = zone.transfer(qu.Name)
	default:
		resp.Answer = zone.lookup(qu.Name, qu.Type)
		if len(resp.Answer) == 0 {
			if len(zone.transfer(qu.Name)) == 0 {
				resp.Rcode = pkt.DNSRcodeNXName
			}
			// else: empty answer for an existing subtree (NOERROR).
		}
	}
	s.RecordsServed += len(resp.Answer)
	return resp
}
