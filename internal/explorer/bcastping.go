package explorer

import (
	"time"

	"fremont/internal/journal"
	"fremont/internal/netsim/pkt"
)

// BroadcastPing is the Broadcast Ping Explorer Module: one ICMP Echo
// Request to each target subnet's directed broadcast address, collecting
// the flood of replies. Fast — "completes in 20 seconds on a directly
// attached network" — but lossy, because "closely spaced replies can cause
// many collisions".
//
// Directed broadcasts with large TTLs can cause severe broadcast storms,
// so the module determines a minimal TTL dynamically, with a sequential
// increase like traceroute's.
type BroadcastPing struct{}

const bcastPingID = 0x4250 // "BP"

// Info implements Module.
func (BroadcastPing) Info() Info {
	return Info{
		Name:           "BroadcastPing",
		SourceProtocol: "ICMP",
		Inputs:         "Subnets or Nets",
		Outputs:        "Intf. IP addr.",
		MinInterval:    7 * 24 * time.Hour,
		MaxInterval:    28 * 24 * time.Hour,
	}
}

// Run implements Module.
func (m BroadcastPing) Run(ctx *Context) (*Report, error) {
	st := ctx.Stack
	rep := &Report{Module: m.Info().Name, Started: st.Now()}
	targets := ctx.Params.Subnets
	if len(targets) == 0 {
		ifc, err := primaryIface(st)
		if err != nil {
			return nil, err
		}
		targets = []pkt.Subnet{ifc.Subnet()}
	}

	conn, err := st.OpenICMP()
	if err != nil {
		return nil, err
	}
	defer conn.Close()

	local := map[pkt.IP]bool{}
	for _, ifc := range st.Ifaces() {
		local[pkt.SubnetOf(ifc.IP, ifc.Mask).Addr] = true
	}

	found := newIPSet()
	var seq uint16
	for _, sn := range targets {
		seq++
		bcast := sn.Broadcast()
		// Determine the minimal TTL: 1 for a directly attached subnet,
		// otherwise increase sequentially until replies (rather than Time
		// Exceededs) come back.
		ttl := byte(1)
		if !local[sn.Addr] {
			var reached bool
			for ; ttl <= 12 && !reached; ttl++ {
				msg := &pkt.ICMPMessage{Type: pkt.ICMPEcho, ID: bcastPingID, Seq: seq}
				if err := st.SendICMP(bcast, ttl, msg); err != nil {
					break
				}
				deadline := st.Now().Add(2 * time.Second)
				for !reached {
					remain := deadline.Sub(st.Now())
					if remain <= 0 {
						break
					}
					ev, ok := conn.Recv(remain)
					if !ok {
						break
					}
					if ev.Msg.Type == pkt.ICMPEchoReply && ev.Msg.ID == bcastPingID && ev.Msg.Seq == seq {
						reached = true
						if sn.Contains(ev.From) {
							found.add(ev.From)
						}
					}
				}
			}
			if !reached {
				rep.Notes = append(rep.Notes, "no path to "+sn.String())
				continue
			}
			// The first reply usually comes from the far gateway itself
			// (a member of the target subnet); one more hop of TTL lets
			// that gateway forward the broadcast onto the wire. This is
			// still the minimal storm-safe TTL.
		}

		// The real probe: one broadcast ping, then harvest the storm.
		msg := &pkt.ICMPMessage{Type: pkt.ICMPEcho, ID: bcastPingID, Seq: seq}
		if err := st.SendICMP(bcast, ttl, msg); err != nil {
			rep.Notes = append(rep.Notes, "send to "+bcast.String()+": "+err.Error())
			continue
		}
		deadline := st.Now().Add(20 * time.Second)
		for {
			remain := deadline.Sub(st.Now())
			if remain <= 0 {
				break
			}
			ev, ok := conn.Recv(remain)
			if !ok {
				break
			}
			if ev.Msg.Type == pkt.ICMPEchoReply && ev.Msg.ID == bcastPingID && sn.Contains(ev.From) {
				found.add(ev.From)
			}
		}
	}

	for _, ip := range found.sorted() {
		if _, _, err := ctx.Journal.StoreInterface(journal.IfaceObs{
			IP: ip, Source: journal.SrcICMP, At: st.Now(),
		}); err == nil {
			rep.Stored++
		}
	}
	rep.Interfaces = found.sorted()
	rep.PacketsSent = st.PacketsSent()
	rep.Finished = st.Now()
	return rep, nil
}
