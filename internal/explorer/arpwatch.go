package explorer

import (
	"time"

	"fremont/internal/journal"
	"fremont/internal/netsim/pkt"
)

// ARPwatch passively monitors ARP message exchanges on a directly attached
// subnet, building Ethernet/IP pairs over time. It "generates no network
// traffic, and can be left to run for long periods of time", but "will not
// discover hosts that are not recipients of traffic from other hosts" —
// hence the paper's 61%-after-30-minutes vs 89%-after-24-hours curve.
// Because it uses the tap (NIT), it must run with system privileges.
type ARPwatch struct{}

// Info implements Module.
func (ARPwatch) Info() Info {
	return Info{
		Name:           "ARPwatch",
		SourceProtocol: "ARP",
		Inputs:         "none",
		Outputs:        "Enet. & IP address matches (over time)",
		Passive:        true,
		NeedsPrivilege: true,
		MinInterval:    2 * time.Hour,
		MaxInterval:    7 * 24 * time.Hour,
	}
}

// Run implements Module, watching for Params.Duration (default 30 min).
func (m ARPwatch) Run(ctx *Context) (*Report, error) {
	st := ctx.Stack
	rep := &Report{Module: m.Info().Name, Started: st.Now()}
	dur := ctx.Params.Duration
	if dur == 0 {
		dur = 30 * time.Minute
	}

	tap, err := st.OpenTap(0, func(raw []byte) bool {
		f, err := pkt.DecodeFrame(raw)
		return err == nil && f.EtherType == pkt.EtherTypeARP
	})
	if err != nil {
		return nil, err
	}
	defer tap.Close()

	type pair struct {
		ip  pkt.IP
		mac pkt.MAC
	}
	lastStored := map[pair]time.Time{}
	found := newIPSet()
	deadline := st.Now().Add(dur)

	record := func(ip pkt.IP, mac pkt.MAC) {
		if ip.IsZero() || mac.IsZero() || mac.IsBroadcast() {
			return
		}
		found.add(ip)
		// Re-verify a pair in the Journal at most every 10 minutes, so a
		// day of watching doesn't turn into a write storm.
		key := pair{ip, mac}
		now := st.Now()
		if last, ok := lastStored[key]; ok && now.Sub(last) < 10*time.Minute {
			return
		}
		lastStored[key] = now
		if _, _, err := ctx.Journal.StoreInterface(journal.IfaceObs{
			IP: ip, HasMAC: true, MAC: mac,
			Source: journal.SrcARP, At: now,
		}); err == nil {
			rep.Stored++
		}
	}

	for {
		remain := deadline.Sub(st.Now())
		if remain <= 0 {
			break
		}
		raw, ok := tap.Recv(remain)
		if !ok {
			break
		}
		f, err := pkt.DecodeFrame(raw)
		if err != nil {
			continue
		}
		a, err := pkt.DecodeARP(f.Payload)
		if err != nil {
			continue
		}
		// Both requests and replies carry a valid sender binding; a reply
		// additionally confirms the target (the original requester).
		record(a.SenderIP, a.SenderMAC)
		if a.Op == pkt.ARPReply {
			record(a.TargetIP, a.TargetMAC)
		}
	}

	rep.Interfaces = found.sorted()
	rep.PacketsSent = 0 // passive
	rep.Finished = st.Now()
	return rep, nil
}
