package explorer

import (
	"time"

	"fremont/internal/journal"
	"fremont/internal/netsim/pkt"
)

// SeqPing is the Sequential Ping Explorer Module: ICMP Echo Requests
// through a range of addresses, one every two seconds, recording operating
// interfaces. "The Sequential Ping Explorer Module is the simplest and
// most reliable of the modules, because virtually every host implements
// the ICMP Echo Request/Reply protocol." Hosts that do not respond to the
// first pass get exactly one more request.
type SeqPing struct{}

const seqPingID = 0x5350 // "SP"

// Info implements Module (Table 3/4 rows).
func (SeqPing) Info() Info {
	return Info{
		Name:           "SeqPing",
		SourceProtocol: "ICMP",
		Inputs:         "IP address range",
		Outputs:        "Intf. IP addr.",
		MinInterval:    2 * 24 * time.Hour,
		MaxInterval:    14 * 24 * time.Hour,
	}
}

// Run implements Module.
func (m SeqPing) Run(ctx *Context) (*Report, error) {
	st := ctx.Stack
	rep := &Report{Module: m.Info().Name, Started: st.Now()}
	lo, hi := ctx.Params.RangeLo, ctx.Params.RangeHi
	if lo.IsZero() || hi.IsZero() {
		ifc, err := primaryIface(st)
		if err != nil {
			return nil, err
		}
		sn := ifc.Subnet()
		lo, hi = sn.FirstHost(), sn.LastHost()
	}
	interval := rate(0.5, ctx.Params.RateLimit) // paper: one request every 2s

	conn, err := st.OpenICMP()
	if err != nil {
		return nil, err
	}
	defer conn.Close()

	self := map[pkt.IP]bool{}
	for _, ifc := range st.Ifaces() {
		self[ifc.IP] = true
	}

	found := newIPSet()
	drainUntil := func(deadline time.Time) {
		for {
			remain := deadline.Sub(st.Now())
			if remain <= 0 {
				return
			}
			ev, ok := conn.Recv(remain)
			if !ok {
				return
			}
			if ev.Msg.Type == pkt.ICMPEchoReply && ev.Msg.ID == seqPingID {
				found.add(ev.From)
			}
		}
	}

	sweep := func(targets []pkt.IP, pass uint16) {
		for _, dst := range targets {
			msg := &pkt.ICMPMessage{Type: pkt.ICMPEcho, ID: seqPingID, Seq: pass}
			if err := st.SendICMP(dst, 30, msg); err == nil {
				rep.PacketsSent++
			}
			drainUntil(st.Now().Add(interval))
		}
	}

	var targets []pkt.IP
	for ip := lo; ip <= hi; ip++ {
		if !self[ip] {
			targets = append(targets, ip)
		}
	}
	sweep(targets, 1)

	// "If the module receives no response to a packet after issuing one
	// request to each destination address, it sends one more request
	// packet to each destination that did not respond."
	var missing []pkt.IP
	for _, ip := range targets {
		if !found.has(ip) {
			missing = append(missing, ip)
		}
	}
	if len(missing) > 0 {
		ctx.logf("seqping: second pass over %d unresponsive addresses", len(missing))
		sweep(missing, 2)
	}
	drainUntil(st.Now().Add(5 * time.Second))

	for _, ip := range found.sorted() {
		if _, _, err := ctx.Journal.StoreInterface(journal.IfaceObs{
			IP: ip, Source: journal.SrcICMP, At: st.Now(),
		}); err == nil {
			rep.Stored++
		}
	}
	rep.Interfaces = found.sorted()
	rep.PacketsSent = st.PacketsSent()
	rep.Finished = st.Now()
	return rep, nil
}
