package explorer

import (
	"fmt"
	"sort"
	"time"

	"fremont/internal/journal"
	"fremont/internal/netsim/pkt"
)

// Tracerouter is the Traceroute Explorer Module: it determines the
// structure of the network around the running host by tracing UDP probes
// with increasing TTLs toward each target subnet and collecting the ICMP
// Time Exceeded messages from the gateways along the path.
//
// Per the paper, for each target subnet it probes three addresses — host
// zero (which any member of the subnet should answer), and the next two —
// "to maximize the amount of information discovered". Traces run in
// parallel ("continues to send packets towards as yet unreached
// destinations while waiting to timeout packets it has sent to other
// destinations"), at no more than eight packets per second, with a
// ten-second reply timeout. Routing loops abort a trace, as do two
// consecutive unanswered TTLs ("gateway software problems" — Table 6's
// missing 23%) and arrival at a configured stop network (the paper stops
// at the national backbones).
type Tracerouter struct{}

const (
	traceBasePort    = 33434
	traceTimeout     = 10 * time.Second
	traceMaxActive   = 80 // "this can result in up to 80 outstanding packets"
	traceTriesPerHop = 2
)

// Info implements Module.
func (Tracerouter) Info() Info {
	return Info{
		Name:           "Traceroute",
		SourceProtocol: "ICMP",
		Inputs:         "Subnets, Nets, or nothing",
		Outputs:        "Intfs. per gateway; gateway-subnet links",
		MinInterval:    2 * 24 * time.Hour,
		MaxInterval:    14 * 24 * time.Hour,
	}
}

type trace struct {
	subnet  pkt.Subnet
	dst     pkt.IP
	ttl     int
	tries   int
	sentAt  time.Time
	waiting bool
	hops    map[int]pkt.IP // ttl -> time-exceeded sender (gateway near iface)
	misses  int            // consecutive unanswered TTLs
	done    bool
	reached bool
	final   pkt.IP // the responder that terminated the trace
	note    string
}

// Run implements Module.
func (m Tracerouter) Run(ctx *Context) (*Report, error) {
	st := ctx.Stack
	rep := &Report{Module: m.Info().Name, Started: st.Now()}
	maxTTL := ctx.Params.MaxTTL
	if maxTTL == 0 {
		maxTTL = 16
	}
	gap := rate(8, ctx.Params.RateLimit) // paper: no more than 8 pkts/sec
	addrsPerSubnet := ctx.Params.TraceAddrsPerSubnet
	if addrsPerSubnet <= 0 {
		addrsPerSubnet = 3
	}
	maxActive := ctx.Params.TraceMaxParallel
	if maxActive <= 0 {
		maxActive = traceMaxActive
	}

	local := map[pkt.IP]bool{}
	for _, ifc := range st.Ifaces() {
		local[ifc.Subnet().Addr] = true
	}

	// Targets: explicit subnets, else everything the Journal knows about
	// (RIP clues "used by the traceroute Explorer Module to improve its
	// performance"), excluding directly attached subnets.
	targets := ctx.Params.Subnets
	maskFor := m.maskTable(ctx)
	if len(targets) == 0 {
		err := journal.EachSubnet(ctx.Journal, func(sn *journal.SubnetRec) error {
			s := sn.Subnet
			if s.Mask == 0 {
				s.Mask = maskFor(s.Addr)
			}
			targets = append(targets, s)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	var queue []*trace
	for _, sn := range targets {
		if local[sn.Addr] {
			continue
		}
		if sn.Mask == 0 {
			sn.Mask = maskFor(sn.Addr)
		}
		// Host zero, plus the next addresses on the subnet (three in the
		// paper's configuration).
		for i := 0; i < addrsPerSubnet; i++ {
			dst := sn.HostZero() + pkt.IP(i)
			queue = append(queue, &trace{subnet: sn, dst: dst, ttl: 1, hops: map[int]pkt.IP{}})
		}
	}

	conn, err := st.OpenUDP(0)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	icmp, err := st.OpenICMP()
	if err != nil {
		return nil, err
	}
	defer icmp.Close()
	srcPort := conn.LocalPort()

	active := map[pkt.IP]*trace{} // by probe destination (unique per trace)
	var finished []*trace
	nextSend := st.Now()

	for len(queue) > 0 || len(active) > 0 {
		// Admit traces into the window.
		for len(active) < maxActive && len(queue) > 0 {
			tr := queue[0]
			queue = queue[1:]
			active[tr.dst] = tr
		}

		// Send one due probe (rate limited).
		sentOne := false
		if !st.Now().Before(nextSend) {
			for _, tr := range sortedTraces(active) {
				if tr.waiting || tr.done {
					continue
				}
				port := uint16(traceBasePort + tr.ttl)
				if err := conn.SendTTL(tr.dst, port, []byte("fremont-trace"), byte(tr.ttl)); err != nil {
					tr.done = true
					tr.note = "send: " + err.Error()
					continue
				}
				tr.waiting = true
				tr.tries++
				tr.sentAt = st.Now()
				nextSend = st.Now().Add(gap)
				sentOne = true
				break
			}
		}

		// Harvest replies until the next send slot (or briefly, if
		// nothing is due).
		wait := nextSend.Sub(st.Now())
		if !sentOne && wait < 50*time.Millisecond {
			wait = 50 * time.Millisecond
		}
		if ev, ok := icmp.Recv(wait); ok {
			m.handleReply(ev, srcPort, active)
		}

		// Expire probes and retire traces.
		now := st.Now()
		for dst, tr := range active {
			if tr.waiting && now.Sub(tr.sentAt) >= traceTimeout {
				tr.waiting = false
				if tr.tries < traceTriesPerHop {
					continue // resend same TTL
				}
				tr.tries = 0
				tr.misses++
				tr.ttl++
				if tr.misses >= 2 {
					tr.done = true
					tr.note = "no response (gateway software problems?)"
				}
			}
			if tr.ttl > maxTTL && !tr.done {
				tr.done = true
				tr.note = "max TTL"
			}
			for _, stop := range ctx.Params.StopNets {
				if hop, ok := tr.hops[tr.ttl-1]; ok && stop.Contains(hop) && !tr.done {
					tr.done = true
					tr.note = "reached stop network " + stop.String()
				}
				// A terminating reply from inside a stop network also
				// abandons the trace (the responder is a backbone node).
				if tr.reached && stop.Contains(tr.final) {
					tr.reached = false
					tr.done = true
					tr.note = "reached stop network " + stop.String()
				}
			}
			if tr.done {
				delete(active, dst)
				finished = append(finished, tr)
			}
		}
	}

	m.storeResults(ctx, rep, finished, maskFor)
	rep.PacketsSent = st.PacketsSent()
	rep.Finished = st.Now()
	return rep, nil
}

// maskTable builds a subnet-address → mask resolver from the Journal, with
// a /24 fallback (the campus convention).
func (Tracerouter) maskTable(ctx *Context) func(pkt.IP) pkt.Mask {
	known := map[pkt.IP]pkt.Mask{}
	_ = journal.EachSubnet(ctx.Journal, func(sn *journal.SubnetRec) error {
		if sn.Subnet.Mask != 0 {
			known[sn.Subnet.Addr] = sn.Subnet.Mask
		}
		return nil
	})
	return func(addr pkt.IP) pkt.Mask {
		if m, ok := known[pkt.SubnetOf(addr, pkt.MaskBits(24)).Addr]; ok {
			return m
		}
		if m, ok := known[addr]; ok {
			return m
		}
		return pkt.MaskBits(24)
	}
}

// handleReply matches an ICMP message to an outstanding probe.
func (Tracerouter) handleReply(ev ICMPEvent, srcPort uint16, active map[pkt.IP]*trace) {
	msg := ev.Msg
	if msg.Type != pkt.ICMPTimeExceeded && msg.Type != pkt.ICMPUnreachable {
		return
	}
	inner, err := pkt.DecodeIPv4Header(msg.Original)
	if err != nil || inner.Protocol != pkt.ProtoUDP || len(msg.Original) < 24 {
		return
	}
	quotedSrcPort := uint16(msg.Original[20])<<8 | uint16(msg.Original[21])
	quotedDstPort := uint16(msg.Original[22])<<8 | uint16(msg.Original[23])
	if quotedSrcPort != srcPort {
		return // someone else's probe
	}
	tr, ok := active[inner.Dst]
	if !ok || tr.done {
		return
	}
	probeTTL := int(quotedDstPort) - traceBasePort
	switch msg.Type {
	case pkt.ICMPTimeExceeded:
		if probeTTL != tr.ttl {
			return // stale reply for an earlier TTL
		}
		// Routing loop: the same gateway answering consecutive TTLs.
		if prev, ok := tr.hops[tr.ttl-1]; ok && prev == ev.From {
			tr.done = true
			tr.note = "routing loop at " + ev.From.String()
			return
		}
		tr.hops[tr.ttl] = ev.From
		tr.ttl++
		tr.tries = 0
		tr.misses = 0
		tr.waiting = false
	case pkt.ICMPUnreachable:
		switch msg.Code {
		case pkt.UnreachPort, pkt.UnreachProtocol:
			// The probe arrived at a machine on (or owning) the target:
			// "the destination host [sends] either an ICMP Protocol
			// Unreachable or ICMP Port Unreachable message."
			tr.reached = true
			tr.final = ev.From
			tr.done = true
		default:
			// Net/host unreachable: a router had no path. The trace
			// terminates but the subnet was NOT reached.
			tr.done = true
			tr.note = "network unreachable at " + ev.From.String()
		}
	}
}

// storeResults converts finished traces into Journal observations:
// interfaces for every hop, gateway records with their subnet attachments,
// and subnet records for reached targets.
func (Tracerouter) storeResults(ctx *Context, rep *Report, finished []*trace, maskFor func(pkt.IP) pkt.Mask) {
	now := ctx.Stack.Now()
	ifaces := newIPSet()
	subnets := newIPSet()
	gateways := newIPSet()

	store := func(obs journal.GatewayObs) {
		if _, err := ctx.Journal.StoreGateway(obs); err == nil {
			rep.Stored++
		}
	}

	reachedSubnet := map[pkt.IP]bool{}
	for _, tr := range finished {
		if tr.reached {
			reachedSubnet[tr.subnet.Addr] = true
		}
	}

	for _, tr := range finished {
		// Order the hops by TTL.
		ttls := make([]int, 0, len(tr.hops))
		for t := range tr.hops {
			ttls = append(ttls, t)
		}
		sort.Ints(ttls)
		var path []pkt.IP
		for _, t := range ttls {
			path = append(path, tr.hops[t])
		}

		for i, hop := range path {
			ifaces.add(hop)
			gateways.add(hop)
			// The hop's own wire...
			obs := journal.GatewayObs{
				IfaceIPs: []pkt.IP{hop},
				Subnets:  []pkt.Subnet{pkt.SubnetOf(hop, maskFor(hop))},
				Source:   journal.SrcTraceroute, At: now,
			}
			// ...plus the shared wire with the next gateway: hop i is
			// attached to the subnet that hop i+1's near interface lives
			// on.
			if i+1 < len(path) {
				next := path[i+1]
				obs.Subnets = append(obs.Subnets, pkt.SubnetOf(next, maskFor(next)))
			}
			// When a probe to a *specific* address was answered by that
			// address, the last gateway on the path forwarded it onto the
			// destination wire — so it is attached to the destination
			// subnet, even though we never learn its interface address
			// there ("the Traceroute Explorer Module is able, in some
			// cases, to determine the subnet to which a gateway is
			// attached without being able to determine the address of the
			// interface on that subnet").
			if i == len(path)-1 && tr.reached && tr.dst != tr.subnet.HostZero() {
				obs.Subnets = append(obs.Subnets, tr.subnet)
			}
			store(obs)
		}
		if tr.reached {
			subnets.add(tr.subnet.Addr)
			if !tr.final.IsZero() {
				ifaces.add(tr.final)
				if tr.dst == tr.subnet.HostZero() {
					// A machine accepted a routed packet addressed to host
					// zero of the subnet: probably the far gateway's
					// interface on the destination wire — "one of those
					// addresses may actually be the interface address of
					// the gateway that accepted the packet addressed to
					// host zero" — but possibly just a host honoring the
					// old-style broadcast, so the evidence is recorded
					// with the questionable-quality tag.
					gateways.add(tr.final)
					store(journal.GatewayObs{
						IfaceIPs:     []pkt.IP{tr.final},
						Subnets:      []pkt.Subnet{tr.subnet},
						Questionable: true,
						Source:       journal.SrcTraceroute, At: now,
					})
				} else if _, _, err := ctx.Journal.StoreInterface(journal.IfaceObs{
					IP: tr.final, Source: journal.SrcTraceroute, At: now,
				}); err == nil {
					rep.Stored++
				}
			}
			if _, err := ctx.Journal.StoreSubnet(journal.SubnetObs{
				Subnet: tr.subnet, Source: journal.SrcTraceroute, At: now,
			}); err == nil {
				rep.Stored++
			}
		} else if tr.note != "" {
			rep.Notes = append(rep.Notes, fmt.Sprintf("%s via %s: %s", tr.subnet, tr.dst, tr.note))
		}
	}

	rep.Interfaces = ifaces.sorted()
	rep.Subnets = subnets.sorted()
	rep.Gateways = gateways.len()
}

func sortedTraces(active map[pkt.IP]*trace) []*trace {
	keys := make([]pkt.IP, 0, len(active))
	for k := range active {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]*trace, len(keys))
	for i, k := range keys {
		out[i] = active[k]
	}
	return out
}
