package explorer

import (
	"fmt"
	"sort"
	"time"

	"fremont/internal/journal"
	"fremont/internal/netsim/pkt"
)

// TrafficWatch is the promiscuous traffic monitor from the paper's Future
// Work section: "A 'promiscuous' mode network traffic monitor would be
// able to discover all communicating machines in a network. We will use
// this to extend our system into the discovery of network services."
//
// Unlike ARPwatch, which only sees address-resolution exchanges, this
// module watches every IP frame on the wire: it discovers hosts that
// communicate exclusively with already-resolved peers (no ARP traffic to
// observe), remote addresses that converse with local machines, and — via
// well-known source ports — the services running where. Service
// observations stay in the run report; the Journal schema records
// interfaces (the paper's "discovery of network services" was future work
// for the Journal too).
type TrafficWatch struct{}

// Info implements Module.
func (TrafficWatch) Info() Info {
	return Info{
		Name:           "TrafficWatch",
		SourceProtocol: "IP",
		Inputs:         "none",
		Outputs:        "Communicating hosts; service ports",
		Passive:        true,
		NeedsPrivilege: true,
		MinInterval:    2 * time.Hour,
		MaxInterval:    7 * 24 * time.Hour,
	}
}

// Run implements Module, watching for Params.Duration (default 10 min).
func (m TrafficWatch) Run(ctx *Context) (*Report, error) {
	st := ctx.Stack
	rep := &Report{Module: m.Info().Name, Started: st.Now()}
	dur := ctx.Params.Duration
	if dur == 0 {
		dur = 10 * time.Minute
	}
	ifc, err := primaryIface(st)
	if err != nil {
		return nil, err
	}
	localSubnet := ifc.Subnet()

	tap, err := st.OpenTap(0, func(raw []byte) bool {
		f, err := pkt.DecodeFrame(raw)
		return err == nil && f.EtherType == pkt.EtherTypeIPv4
	})
	if err != nil {
		return nil, err
	}
	defer tap.Close()

	hosts := newIPSet()
	macs := map[pkt.IP]pkt.MAC{}
	type service struct {
		ip   pkt.IP
		port uint16
	}
	services := map[service]int{}

	deadline := st.Now().Add(dur)
	for {
		remain := deadline.Sub(st.Now())
		if remain <= 0 {
			break
		}
		raw, ok := tap.Recv(remain)
		if !ok {
			break
		}
		f, _ := pkt.DecodeFrame(raw)
		ipPkt, err := pkt.DecodeIPv4(f.Payload)
		if err != nil {
			continue
		}
		src, dst := ipPkt.Header.Src, ipPkt.Header.Dst
		if !src.IsZero() {
			hosts.add(src)
			if localSubnet.Contains(src) && !f.Src.IsBroadcast() {
				macs[src] = f.Src
			}
		}
		// Unicast destinations are communicating machines too (the
		// sender evidently believes they exist); broadcasts are not.
		if !dst.IsZero() && dst != pkt.IP(0xffffffff) &&
			dst != localSubnet.Broadcast() && dst != localSubnet.HostZero() {
			hosts.add(dst)
		}
		// Service discovery: replies *from* a well-known port reveal a
		// service running at the source.
		if ipPkt.Header.Protocol == pkt.ProtoUDP {
			if u, err := pkt.DecodeUDP(ipPkt.Payload, src, dst); err == nil && u.SrcPort < 1024 {
				services[service{src, u.SrcPort}]++
			}
		}
	}

	now := st.Now()
	for _, ip := range hosts.sorted() {
		obs := journal.IfaceObs{IP: ip, Source: journal.SrcTraffic, At: now}
		if mac, ok := macs[ip]; ok {
			obs.HasMAC, obs.MAC = true, mac
		}
		if _, _, err := ctx.Journal.StoreInterface(obs); err == nil {
			rep.Stored++
		}
	}

	// Summarize services in the report.
	keys := make([]service, 0, len(services))
	for k := range services {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].ip != keys[j].ip {
			return keys[i].ip < keys[j].ip
		}
		return keys[i].port < keys[j].port
	})
	for _, k := range keys {
		rep.Notes = append(rep.Notes,
			fmt.Sprintf("service: %s port %d (%s, %d packets)", k.ip, k.port, portName(k.port), services[k]))
	}

	rep.Interfaces = hosts.sorted()
	rep.PacketsSent = 0 // passive
	rep.Finished = st.Now()
	return rep, nil
}

func portName(p uint16) string {
	switch p {
	case pkt.PortEcho:
		return "echo"
	case pkt.PortDNS:
		return "domain"
	case pkt.PortRIP:
		return "rip"
	case 9:
		return "discard"
	default:
		return "?"
	}
}
