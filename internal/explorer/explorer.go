// Package explorer implements Fremont's Explorer Modules: the extensible
// suite of discovery programs, each built on a commonly available protocol
// or information source (ARP, ICMP, RIP, DNS). Modules are written against
// the Stack interface below and a journal.Sink, so the same module code
// runs over the simulated campus network (package netsim via simstack) and
// could be bound to a real stack.
//
// The eight modules of the paper's prototype are here: ARPwatch,
// EtherHostProbe, SequentialPing, BroadcastPing, SubnetMasks, Traceroute,
// RIPwatch, and DNS.
package explorer

import (
	"fmt"
	"sort"
	"time"

	"fremont/internal/journal"
	"fremont/internal/netsim/pkt"
)

// IfaceInfo describes one local interface of the host running a module.
type IfaceInfo struct {
	Index int
	MAC   pkt.MAC
	IP    pkt.IP
	Mask  pkt.Mask
}

// Subnet returns the interface's subnet.
func (i IfaceInfo) Subnet() pkt.Subnet { return pkt.SubnetOf(i.IP, i.Mask) }

// ICMPEvent is an ICMP message received on a raw socket, with outer IP
// context.
type ICMPEvent struct {
	From pkt.IP
	To   pkt.IP
	TTL  byte
	Msg  *pkt.ICMPMessage
	At   time.Time
}

// UDPEvent is a datagram received on a UDP socket.
type UDPEvent struct {
	Src     pkt.IP
	SrcPort uint16
	Dst     pkt.IP
	Payload []byte
	At      time.Time
}

// ARPEntry is a row of the local host's ARP table.
type ARPEntry struct {
	IP  pkt.IP
	MAC pkt.MAC
	Age time.Duration
}

// ICMPConn is a raw ICMP socket. Recv blocks the module (in simulated
// time) until a message arrives or the timeout elapses; a negative timeout
// blocks forever.
type ICMPConn interface {
	Recv(timeout time.Duration) (ICMPEvent, bool)
	Close()
}

// UDPConn is a bound UDP socket.
type UDPConn interface {
	// LocalPort reports the bound port (Traceroute matches quoted probes
	// against it).
	LocalPort() uint16
	Send(dst pkt.IP, dport uint16, payload []byte) error
	SendTTL(dst pkt.IP, dport uint16, payload []byte, ttl byte) error
	Recv(timeout time.Duration) (UDPEvent, bool)
	Close()
}

// Tap is a promiscuous raw-frame tap (the NIT analog). Opening one
// requires privilege.
type Tap interface {
	Recv(timeout time.Duration) ([]byte, bool)
	Close()
}

// Stack is a module's view of the host it runs on.
type Stack interface {
	// Ifaces lists the host's interfaces.
	Ifaces() []IfaceInfo
	// Now returns the current time (virtual time under simulation).
	Now() time.Time
	// Sleep suspends the module.
	Sleep(d time.Duration)
	// SendICMP transmits an ICMP message to dst with the given TTL.
	SendICMP(dst pkt.IP, ttl byte, msg *pkt.ICMPMessage) error
	// OpenICMP opens a raw ICMP socket.
	OpenICMP() (ICMPConn, error)
	// OpenUDP binds a UDP socket (port 0 picks an ephemeral port).
	OpenUDP(port uint16) (UDPConn, error)
	// ARPTable snapshots the host's ARP cache (how EtherHostProbe reads
	// its results).
	ARPTable() ([]ARPEntry, error)
	// OpenTap opens a promiscuous tap on the segment of the interface with
	// the given index. Fails without privilege.
	OpenTap(ifaceIndex int, filter func(raw []byte) bool) (Tap, error)
	// Privileged reports whether the module was granted system privileges.
	Privileged() bool
	// PacketsSent counts frames this host has transmitted (for the
	// Table 4 network-load measurements).
	PacketsSent() int
	// ResetPacketCounter zeroes the PacketsSent baseline, so a harness
	// running several modules on one stack gets per-module counts.
	ResetPacketCounter()
}

// Params direct a module run. Zero values mean "module default" — "Most
// Explorer Modules, if given no specific direction, will examine the
// directly connected networks or subnets."
type Params struct {
	// Duration bounds passive watchers (ARPwatch, RIPwatch).
	Duration time.Duration
	// Range is an inclusive address range for scanning modules.
	RangeLo, RangeHi pkt.IP
	// Subnets are targets for BroadcastPing and Traceroute.
	Subnets []pkt.Subnet
	// Addresses are targets for the SubnetMasks module.
	Addresses []pkt.IP
	// Network is the network the DNS module walks.
	Network pkt.Subnet
	// DNSServer is the name server the DNS module queries.
	DNSServer pkt.IP
	// RateLimit overrides the module's default packet rate (packets/sec).
	RateLimit float64
	// MaxTTL bounds traceroute depth (default 16).
	MaxTTL int
	// StopNets makes Traceroute abandon a trace that reaches one of these
	// networks (the paper stops at the national backbones).
	StopNets []pkt.Subnet
	// TraceAddrsPerSubnet overrides Traceroute's three-addresses-per-subnet
	// probing (for the ablation benchmarks). 0 = the paper's 3.
	TraceAddrsPerSubnet int
	// TraceMaxParallel overrides Traceroute's parallel-trace window
	// (default 80 outstanding). 1 = fully serial.
	TraceMaxParallel int
}

// Context carries a module's bindings for one run.
type Context struct {
	Stack   Stack
	Journal journal.Sink
	Params  Params
	// Log receives progress lines; nil discards them.
	Log func(format string, args ...any)
}

func (c *Context) logf(format string, args ...any) {
	if c.Log != nil {
		c.Log(format, args...)
	}
}

// Report summarizes one module run, feeding the Discovery Manager's
// scheduling decisions and the evaluation tables.
type Report struct {
	Module   string
	Started  time.Time
	Finished time.Time
	// PacketsSent is the number of frames the module's host transmitted
	// during the run (zero for the passive modules).
	PacketsSent int
	// Interfaces are the distinct interface addresses found this run.
	Interfaces []pkt.IP
	// Subnets are the distinct subnet addresses found this run.
	Subnets []pkt.IP
	// Gateways counts distinct gateways identified this run.
	Gateways int
	// Stored counts journal observations written.
	Stored int
	Notes  []string
}

// Elapsed returns the run's duration.
func (r *Report) Elapsed() time.Duration { return r.Finished.Sub(r.Started) }

// PacketRate returns average packets per second offered to the network.
func (r *Report) PacketRate() float64 {
	d := r.Elapsed().Seconds()
	if d <= 0 {
		return 0
	}
	return float64(r.PacketsSent) / d
}

func (r *Report) String() string {
	return fmt.Sprintf("%s: %d interfaces, %d subnets, %d gateways in %v (%d pkts, %.2f pkt/s)",
		r.Module, len(r.Interfaces), len(r.Subnets), r.Gateways,
		r.Elapsed().Round(time.Second), r.PacketsSent, r.PacketRate())
}

// Info describes a module for the registry (the paper's Table 3) and the
// Discovery Manager's schedule (Table 4 intervals).
type Info struct {
	Name           string
	SourceProtocol string // "ARP", "ICMP", "RIP", "DNS"
	Inputs         string
	Outputs        string
	Passive        bool
	NeedsPrivilege bool
	// Scheduling bounds from Table 4.
	MinInterval, MaxInterval time.Duration
}

// Module is one Explorer Module.
type Module interface {
	Info() Info
	Run(ctx *Context) (*Report, error)
}

// ipSet accumulates distinct addresses in insertion order.
type ipSet struct {
	seen map[pkt.IP]bool
	list []pkt.IP
}

func newIPSet() *ipSet { return &ipSet{seen: map[pkt.IP]bool{}} }

func (s *ipSet) add(ip pkt.IP) bool {
	if s.seen[ip] {
		return false
	}
	s.seen[ip] = true
	s.list = append(s.list, ip)
	return true
}

func (s *ipSet) has(ip pkt.IP) bool { return s.seen[ip] }
func (s *ipSet) len() int           { return len(s.list) }

func (s *ipSet) sorted() []pkt.IP {
	out := append([]pkt.IP(nil), s.list...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// primaryIface returns the module host's first interface; modules default
// to exploring its subnet.
func primaryIface(st Stack) (IfaceInfo, error) {
	ifaces := st.Ifaces()
	if len(ifaces) == 0 {
		return IfaceInfo{}, fmt.Errorf("explorer: host has no interfaces")
	}
	return ifaces[0], nil
}

// rate returns the interval between packets for a module's rate limit.
func rate(def float64, override float64) time.Duration {
	pps := def
	if override > 0 {
		pps = override
	}
	return time.Duration(float64(time.Second) / pps)
}
