package explorer

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"fremont/internal/journal"
	"fremont/internal/netsim/pkt"
)

// DNSExplorer walks a network's reverse (in-addr.arpa) domain with zone
// transfers, Census-style, and mines the name/address pairs for gateways:
// multiple addresses for one name, multiple names for one address with
// matches within the groups, and "-gw"-style naming conventions. It also
// invokes an ICMP mask request against one of the first hosts discovered
// (usually a name server, "increasing the likelihood that the returned
// mask is correct") to learn how to allocate interfaces to subnets, and
// records each subnet's host count and highest/lowest assigned addresses.
//
// Storage frugality follows the paper: "we do not record a name/address
// pair if it is the only information that we have involving an interface"
// — names are stored only for interfaces some other module already found,
// or for gateway members.
type DNSExplorer struct{}

// Info implements Module.
func (DNSExplorer) Info() Info {
	return Info{
		Name:           "DNS",
		SourceProtocol: "DNS",
		Inputs:         "Network number",
		Outputs:        "Intfs. per gateway",
		MinInterval:    2 * 24 * time.Hour,
		MaxInterval:    14 * 24 * time.Hour,
	}
}

// gwNameSuffixes are the naming conventions the gateway heuristic accepts.
var gwNameSuffixes = []string{"-gw", "-gate", "-gateway", "-router", "gw"}

// Run implements Module. Params.Network (the network number to walk) and
// Params.DNSServer are required.
func (m DNSExplorer) Run(ctx *Context) (*Report, error) {
	st := ctx.Stack
	rep := &Report{Module: m.Info().Name, Started: st.Now()}
	network := ctx.Params.Network
	if network.Addr.IsZero() {
		ifc, err := primaryIface(st)
		if err != nil {
			return nil, err
		}
		network = pkt.SubnetOf(ifc.IP, ifc.IP.DefaultMask())
	}
	server := ctx.Params.DNSServer
	if server.IsZero() {
		return nil, fmt.Errorf("dns explorer: no name server configured")
	}

	conn, err := st.OpenUDP(0)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	resolver := &resolver{conn: conn, server: server, st: st}

	// Phase one: zone transfers down the reverse domain.
	addrNames, err := m.walkReverse(resolver, network, rep)
	if err != nil {
		return nil, err
	}
	if len(addrNames) == 0 {
		rep.Notes = append(rep.Notes, "reverse zone walk returned nothing")
		rep.Finished = st.Now()
		return rep, nil
	}

	// Mask discovery: ask one of the first hosts found (prefer an
	// apparent name server) for the subnet mask.
	mask := m.discoverMask(ctx, addrNames, network)
	ctx.logf("dns: using subnet mask %s for %s", mask, network)

	// Phase two ("CPU intensive"): cross-match names and addresses.
	nameAddrs := map[string][]pkt.IP{}
	for addr, names := range addrNames {
		for _, n := range names {
			nameAddrs[n] = append(nameAddrs[n], addr)
		}
	}
	// Confirm multi-address names with forward A queries (about 10
	// packets/sec of query load — the paper's "high" network load phase).
	names := make([]string, 0, len(nameAddrs))
	for n := range nameAddrs {
		names = append(names, n)
	}
	sort.Strings(names)
	gap := rate(10, ctx.Params.RateLimit)
	for _, n := range names {
		for _, rr := range resolver.query(n, pkt.DNSTypeA) {
			if rr.Type == pkt.DNSTypeA && network.Contains(rr.A) {
				nameAddrs[n] = appendIPUnique(nameAddrs[n], rr.A)
			}
		}
		st.Sleep(gap)
	}

	now := st.Now()
	gateways := 0
	isGatewayMember := map[pkt.IP]bool{}
	for _, n := range names {
		addrs := nameAddrs[n]
		sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
		multi := len(addrs) > 1
		convention := hasGatewaySuffix(n)
		if !multi && !convention {
			continue
		}
		var snList []pkt.Subnet
		for _, a := range addrs {
			snList = append(snList, pkt.SubnetOf(a, mask))
			isGatewayMember[a] = true
		}
		// A lone "-gw" name with a single address is the paper's
		// "weaker heuristic": record it, tagged questionable. Multiple
		// addresses are strong evidence.
		if _, err := ctx.Journal.StoreGateway(journal.GatewayObs{
			IfaceIPs: addrs, Subnets: snList,
			Questionable: !multi && convention,
			Source:       journal.SrcDNS, At: now,
		}); err == nil {
			rep.Stored++
			gateways++
		}
	}

	// Subnet occupancy summaries.
	type occ struct {
		count  int
		lo, hi pkt.IP
	}
	bySubnet := map[pkt.IP]*occ{}
	allAddrs := newIPSet()
	for addr := range addrNames {
		allAddrs.add(addr)
		snAddr := pkt.SubnetOf(addr, mask).Addr
		o := bySubnet[snAddr]
		if o == nil {
			o = &occ{lo: addr, hi: addr}
			bySubnet[snAddr] = o
		}
		o.count++
		if addr < o.lo {
			o.lo = addr
		}
		if addr > o.hi {
			o.hi = addr
		}
	}
	subnets := newIPSet()
	for snAddr := range bySubnet {
		subnets.add(snAddr)
	}
	for _, snAddr := range subnets.sorted() {
		o := bySubnet[snAddr]
		if _, err := ctx.Journal.StoreSubnet(journal.SubnetObs{
			Subnet:    pkt.Subnet{Addr: snAddr, Mask: mask},
			HostCount: o.count, LoAddr: o.lo, HiAddr: o.hi,
			Source: journal.SrcDNS, At: now,
		}); err == nil {
			rep.Stored++
		}
	}

	// Names for interfaces other modules already discovered, and for
	// gateway members; everything else stays out of the Journal ("readily
	// available from the DNS").
	for _, addr := range allAddrs.sorted() {
		names := addrNames[addr]
		sort.Strings(names)
		known := isGatewayMember[addr]
		if !known {
			recs, err := ctx.Journal.Interfaces(journal.Query{ByIP: addr, HasIP: true})
			if err == nil && len(recs) > 0 {
				known = true
			}
		}
		if !known {
			continue
		}
		for _, n := range names {
			if _, _, err := ctx.Journal.StoreInterface(journal.IfaceObs{
				IP: addr, Name: n, Source: journal.SrcDNS, At: now,
			}); err == nil {
				rep.Stored++
			}
		}
	}

	rep.Interfaces = allAddrs.sorted()
	rep.Subnets = subnets.sorted()
	rep.Gateways = gateways
	rep.PacketsSent = st.PacketsSent()
	rep.Finished = st.Now()
	return rep, nil
}

// walkReverse collects address→names for the network, via an AXFR at the
// network-level reverse zone, descending per-subnet when the server
// refuses the big transfer.
func (m DNSExplorer) walkReverse(r *resolver, network pkt.Subnet, rep *Report) (map[pkt.IP][]string, error) {
	out := map[pkt.IP][]string{}
	collect := func(rrs []pkt.DNSRR) {
		for _, rr := range rrs {
			if rr.Type != pkt.DNSTypePTR {
				continue
			}
			if addr, ok := pkt.ParseReverseName(rr.Name); ok && network.Contains(addr) {
				out[addr] = appendUnique(out[addr], strings.ToLower(rr.Targ))
			}
		}
	}
	zone := reverseZoneName(network)
	rrs, rcode := r.transfer(zone)
	if rcode == pkt.DNSRcodeOK {
		collect(rrs)
		return out, nil
	}
	if rcode != pkt.DNSRcodeRefused {
		return nil, fmt.Errorf("dns explorer: zone transfer of %s failed (rcode %d)", zone, rcode)
	}
	// Refused at the top: descend one label (Census-style recursive walk).
	rep.Notes = append(rep.Notes, "network-level transfer refused; descending per-subnet")
	bits := network.Mask.Bits()
	if bits >= 24 {
		return out, nil
	}
	for third := 0; third < 256; third++ {
		sub := pkt.Subnet{Addr: network.Addr + pkt.IP(third<<8), Mask: pkt.MaskBits(24)}
		if !network.Contains(sub.Addr) {
			break
		}
		rrs, rcode := r.transfer(reverseZoneName(sub))
		if rcode == pkt.DNSRcodeOK {
			collect(rrs)
		}
	}
	return out, nil
}

// discoverMask sends an ICMP mask request to up to three of the first
// hosts found (name servers first).
func (m DNSExplorer) discoverMask(ctx *Context, addrNames map[pkt.IP][]string, network pkt.Subnet) pkt.Mask {
	var candidates []pkt.IP
	for addr, names := range addrNames {
		for _, n := range names {
			if strings.HasPrefix(n, "ns") || strings.Contains(n, "dns") || strings.Contains(n, "piper") {
				candidates = append(candidates, addr)
			}
		}
	}
	var rest []pkt.IP
	for addr := range addrNames {
		rest = append(rest, addr)
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i] < rest[j] })
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })
	candidates = append(candidates, rest...)

	conn, err := ctx.Stack.OpenICMP()
	if err == nil {
		defer conn.Close()
		tried := 0
		for _, dst := range candidates {
			if tried >= 3 {
				break
			}
			tried++
			msg := &pkt.ICMPMessage{Type: pkt.ICMPMaskRequest, ID: maskReqID, Seq: uint16(tried)}
			if err := ctx.Stack.SendICMP(dst, 30, msg); err != nil {
				continue
			}
			deadline := ctx.Stack.Now().Add(3 * time.Second)
			for {
				remain := deadline.Sub(ctx.Stack.Now())
				if remain <= 0 {
					break
				}
				ev, ok := conn.Recv(remain)
				if !ok {
					break
				}
				if ev.Msg.Type == pkt.ICMPMaskReply && ev.Msg.Mask.Valid() && ev.Msg.Mask != 0 {
					return ev.Msg.Mask
				}
			}
		}
	}
	// Fall back to the campus convention.
	if network.Mask.Bits() >= 24 {
		return network.Mask
	}
	return pkt.MaskBits(24)
}

func hasGatewaySuffix(name string) bool {
	host := name
	if i := strings.IndexByte(name, '.'); i > 0 {
		host = name[:i]
	}
	for _, suf := range gwNameSuffixes {
		if strings.HasSuffix(host, suf) && host != suf {
			return true
		}
		if host == suf {
			return true
		}
	}
	return false
}

func reverseZoneName(sn pkt.Subnet) string {
	a, b, c, _ := sn.Addr.Octets()
	switch {
	case sn.Mask.Bits() >= 24:
		return fmt.Sprintf("%d.%d.%d.in-addr.arpa", c, b, a)
	case sn.Mask.Bits() >= 16:
		return fmt.Sprintf("%d.%d.in-addr.arpa", b, a)
	default:
		return fmt.Sprintf("%d.in-addr.arpa", a)
	}
}

func appendUnique(s []string, v string) []string {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

func appendIPUnique(s []pkt.IP, v pkt.IP) []pkt.IP {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

// resolver is a minimal stub resolver speaking to one server over the
// module's UDP socket.
type resolver struct {
	conn   UDPConn
	server pkt.IP
	st     Stack
	id     uint16
}

// exchange sends one query and waits for the matching response.
func (r *resolver) exchange(name string, qtype uint16) *pkt.DNSMessage {
	r.id++
	q := &pkt.DNSMessage{ID: r.id, RD: true, Question: []pkt.DNSQuestion{
		{Name: name, Type: qtype, Class: pkt.DNSClassIN}}}
	raw, err := q.Encode()
	if err != nil {
		return nil
	}
	for attempt := 0; attempt < 3; attempt++ {
		if err := r.conn.Send(r.server, pkt.PortDNS, raw); err != nil {
			return nil
		}
		deadline := r.st.Now().Add(5 * time.Second)
		for {
			remain := deadline.Sub(r.st.Now())
			if remain <= 0 {
				break
			}
			ev, ok := r.conn.Recv(remain)
			if !ok {
				break
			}
			resp, err := pkt.DecodeDNS(ev.Payload)
			if err != nil || !resp.Response || resp.ID != r.id {
				continue
			}
			return resp
		}
	}
	return nil
}

// query returns answer records (empty on failure).
func (r *resolver) query(name string, qtype uint16) []pkt.DNSRR {
	resp := r.exchange(name, qtype)
	if resp == nil || resp.Rcode != pkt.DNSRcodeOK {
		return nil
	}
	return resp.Answer
}

// transfer performs an AXFR-style zone walk at name.
func (r *resolver) transfer(name string) ([]pkt.DNSRR, byte) {
	resp := r.exchange(name, pkt.DNSTypeAXFR)
	if resp == nil {
		return nil, pkt.DNSRcodeNXName
	}
	return resp.Answer, resp.Rcode
}
