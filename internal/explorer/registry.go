package explorer

// All returns one instance of each of the prototype's eight Explorer
// Modules, in the order of the paper's Table 3.
func All() []Module {
	return []Module{
		ARPwatch{},
		EtherHostProbe{},
		SeqPing{},
		BroadcastPing{},
		SubnetMasks{},
		Tracerouter{},
		RIPwatch{},
		DNSExplorer{},
	}
}

// Extensions returns modules implemented from the paper's Future Work
// section, beyond the prototype's eight: directed RIP probing.
func Extensions() []Module {
	return []Module{
		RIPQuery{},
		TrafficWatch{},
	}
}

// ByName returns the module (prototype or extension) with the given
// Info().Name, or nil.
func ByName(name string) Module {
	for _, m := range append(All(), Extensions()...) {
		if m.Info().Name == name {
			return m
		}
	}
	return nil
}
