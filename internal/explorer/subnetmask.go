package explorer

import (
	"time"

	"fremont/internal/journal"
	"fremont/internal/netsim/pkt"
)

// SubnetMasks is the ICMP mask request/reply Explorer Module. It asks
// already-discovered interfaces for their subnet masks — "Fremont uses the
// collected subnet masks to aid in determining the network structure [and]
// to detect conflicting subnet masks on different interfaces of a subnet."
// Mask replies are "not as widely implemented as the echo request/reply",
// so silence is common and not an error.
type SubnetMasks struct{}

const maskReqID = 0x534d // "SM"

// Info implements Module.
func (SubnetMasks) Info() Info {
	return Info{
		Name:           "SubnetMasks",
		SourceProtocol: "ICMP",
		Inputs:         "IP address",
		Outputs:        "Subnet Masks",
		MinInterval:    24 * time.Hour,
		MaxInterval:    7 * 24 * time.Hour,
	}
}

// Run implements Module. Targets come from Params.Addresses; with no
// direction, the module asks the Journal for interfaces lacking masks.
func (m SubnetMasks) Run(ctx *Context) (*Report, error) {
	st := ctx.Stack
	rep := &Report{Module: m.Info().Name, Started: st.Now()}
	targets := ctx.Params.Addresses
	if len(targets) == 0 {
		err := journal.EachInterface(ctx.Journal, journal.Query{}, func(rec *journal.InterfaceRec) error {
			if rec.Mask == 0 {
				targets = append(targets, rec.IP)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	interval := rate(0.5, ctx.Params.RateLimit) // paper: 0.5 pkts/sec

	conn, err := st.OpenICMP()
	if err != nil {
		return nil, err
	}
	defer conn.Close()

	got := map[pkt.IP]pkt.Mask{}
	var seq uint16
	for _, dst := range targets {
		seq++
		msg := &pkt.ICMPMessage{Type: pkt.ICMPMaskRequest, ID: maskReqID, Seq: seq}
		_ = st.SendICMP(dst, 30, msg)
		deadline := st.Now().Add(interval)
		for {
			remain := deadline.Sub(st.Now())
			if remain <= 0 {
				break
			}
			ev, ok := conn.Recv(remain)
			if !ok {
				break
			}
			if ev.Msg.Type == pkt.ICMPMaskReply && ev.Msg.ID == maskReqID {
				got[ev.From] = ev.Msg.Mask
			}
		}
	}
	// Late replies.
	for {
		ev, ok := conn.Recv(2 * time.Second)
		if !ok {
			break
		}
		if ev.Msg.Type == pkt.ICMPMaskReply && ev.Msg.ID == maskReqID {
			got[ev.From] = ev.Msg.Mask
		}
	}

	found := newIPSet()
	for ip := range got {
		found.add(ip)
	}
	for _, ip := range found.sorted() {
		if _, _, err := ctx.Journal.StoreInterface(journal.IfaceObs{
			IP: ip, HasMask: true, Mask: got[ip],
			Source: journal.SrcICMP, At: st.Now(),
		}); err == nil {
			rep.Stored++
		}
	}
	// Negative caching (Future Work): count unanswered requests against
	// already-known interfaces so the Discovery Manager eventually stops
	// asking — "a flag to prevent continually retrying discovery of some
	// datum that we know is unavailable".
	silent := 0
	for _, dst := range targets {
		if !found.has(dst) {
			if _, _, err := ctx.Journal.StoreInterface(journal.IfaceObs{
				IP: dst, MaskProbeFailed: true,
				Source: journal.SrcICMP, At: st.Now(),
			}); err == nil {
				silent++
			}
		}
	}
	if silent > 0 {
		rep.Notes = append(rep.Notes, "mask requests unanswered (negative-cached)")
	}
	rep.Interfaces = found.sorted()
	rep.PacketsSent = st.PacketsSent()
	rep.Finished = st.Now()
	return rep, nil
}
