package explorer

import (
	"time"

	"fremont/internal/journal"
	"fremont/internal/netsim/pkt"
)

// RIPQuery is the directed RIP probing module from the paper's Future Work
// section: "beyond monitoring RIP advertisements, we plan to use directed
// probes to discover routing information, via the RIP Request and RIP Poll
// queries. The major advantage of doing so is that these requests and
// replies can be routed through a network, thus providing access to
// routing information on subnets other than just the local subnet."
//
// The module unicasts whole-table RIP Requests to known gateway addresses
// (from Params.Addresses, or every gateway interface in the Journal, or
// the local wire's RIP sources) and classifies the returned routes the
// same way RIPwatch does. "A problem, however, is that not all routers use
// RIP or respond properly" — silence is recorded, not fatal.
type RIPQuery struct{}

// Info implements Module.
func (RIPQuery) Info() Info {
	return Info{
		Name:           "RIPquery",
		SourceProtocol: "RIP",
		Inputs:         "Gateway addresses",
		Outputs:        "Subnets, Nets (from remote gateways)",
		MinInterval:    24 * time.Hour,
		MaxInterval:    7 * 24 * time.Hour,
	}
}

// Run implements Module.
func (m RIPQuery) Run(ctx *Context) (*Report, error) {
	st := ctx.Stack
	rep := &Report{Module: m.Info().Name, Started: st.Now()}
	ifc, err := primaryIface(st)
	if err != nil {
		return nil, err
	}
	localSubnet := ifc.Subnet()
	localNet := pkt.SubnetOf(ifc.IP, ifc.IP.DefaultMask())

	targets := ctx.Params.Addresses
	if len(targets) == 0 {
		// Every interface the Journal believes belongs to a gateway.
		err := journal.EachInterface(ctx.Journal, journal.Query{}, func(r *journal.InterfaceRec) error {
			if r.Gateway != 0 || r.RIPSource {
				targets = append(targets, r.IP)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	if len(targets) == 0 {
		rep.Notes = append(rep.Notes, "no gateway addresses known; nothing to query")
		rep.Finished = st.Now()
		return rep, nil
	}

	conn, err := st.OpenUDP(0)
	if err != nil {
		return nil, err
	}
	defer conn.Close()

	// RFC 1058 whole-table request: one AF_UNSPEC entry with metric 16.
	req := &pkt.RIPPacket{Command: pkt.RIPRequest,
		Entries: []pkt.RIPEntry{{Family: 0, Metric: pkt.RIPInfinity}}}
	reqRaw := req.Encode()

	gap := rate(1, ctx.Params.RateLimit) // gentle: one gateway per second

	responders := newIPSet()
	subnets := newIPSet()
	metrics := map[pkt.IP]int{}
	for _, gw := range targets {
		if err := conn.Send(gw, pkt.PortRIP, reqRaw); err != nil {
			continue
		}
		deadline := st.Now().Add(3 * time.Second)
		for {
			remain := deadline.Sub(st.Now())
			if remain <= 0 {
				break
			}
			ev, ok := conn.Recv(remain)
			if !ok {
				break
			}
			resp, err := pkt.DecodeRIP(ev.Payload)
			if err != nil || resp.Command != pkt.RIPResponse {
				continue
			}
			responders.add(ev.Src)
			for _, e := range resp.Entries {
				if e.Family != 2 || e.Metric >= pkt.RIPInfinity {
					continue
				}
				if classify(e.Addr, localSubnet, localNet) == routeHost {
					continue
				}
				subnets.add(e.Addr)
				if best, ok := metrics[e.Addr]; !ok || int(e.Metric) < best {
					metrics[e.Addr] = int(e.Metric)
				}
			}
		}
		st.Sleep(gap)
	}

	now := st.Now()
	for _, gw := range responders.sorted() {
		if _, _, err := ctx.Journal.StoreInterface(journal.IfaceObs{
			IP: gw, RIPSource: true, Source: journal.SrcRIP, At: now,
		}); err == nil {
			rep.Stored++
		}
	}
	for _, addr := range subnets.sorted() {
		mask := pkt.Mask(0)
		if localNet.Contains(addr) {
			mask = localSubnet.Mask
		} else {
			mask = addr.DefaultMask()
		}
		if _, err := ctx.Journal.StoreSubnet(journal.SubnetObs{
			Subnet: pkt.Subnet{Addr: addr, Mask: mask},
			Metric: metrics[addr],
			Source: journal.SrcRIP, At: now,
		}); err == nil {
			rep.Stored++
		}
	}
	if n := len(targets) - responders.len(); n > 0 {
		rep.Notes = append(rep.Notes, "some gateways did not answer RIP requests")
	}
	rep.Interfaces = responders.sorted()
	rep.Subnets = subnets.sorted()
	rep.PacketsSent = st.PacketsSent()
	rep.Finished = st.Now()
	return rep, nil
}
