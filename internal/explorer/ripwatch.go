package explorer

import (
	"time"

	"fremont/internal/journal"
	"fremont/internal/netsim/pkt"
)

// RIPwatch passively monitors RIP advertisements on the attached subnet,
// "building a list of hosts, subnets, and networks as they are seen". RIP
// version 1 carries no masks, so advertised addresses are classified by
// comparing them with the receiving host's own subnet mask. The module
// also "attempts to identify those RIP sources that appear to be operating
// in [the promiscuous] erroneous manner": a source that advertises the
// local wire's own subnet back onto the wire cannot be a well-behaved
// (split-horizon) router.
type RIPwatch struct{}

// Info implements Module.
func (RIPwatch) Info() Info {
	return Info{
		Name:           "RIPwatch",
		SourceProtocol: "RIP",
		Inputs:         "none",
		Outputs:        "Subnets, Nets, Hosts",
		Passive:        true,
		NeedsPrivilege: true,
		MinInterval:    2 * time.Hour,
		MaxInterval:    7 * 24 * time.Hour,
	}
}

// Run implements Module, watching for Params.Duration (default 2 minutes:
// RIP advertisements repeat every 30 seconds).
func (m RIPwatch) Run(ctx *Context) (*Report, error) {
	st := ctx.Stack
	rep := &Report{Module: m.Info().Name, Started: st.Now()}
	dur := ctx.Params.Duration
	if dur == 0 {
		dur = 2 * time.Minute
	}
	ifc, err := primaryIface(st)
	if err != nil {
		return nil, err
	}
	localSubnet := ifc.Subnet()
	localNet := pkt.SubnetOf(ifc.IP, ifc.IP.DefaultMask())

	tap, err := st.OpenTap(0, func(raw []byte) bool {
		f, err := pkt.DecodeFrame(raw)
		if err != nil || f.EtherType != pkt.EtherTypeIPv4 {
			return false
		}
		ip, err := pkt.DecodeIPv4(f.Payload)
		if err != nil || ip.Header.Protocol != pkt.ProtoUDP {
			return false
		}
		u, err := pkt.DecodeUDP(ip.Payload, ip.Header.Src, ip.Header.Dst)
		return err == nil && u.DstPort == pkt.PortRIP
	})
	if err != nil {
		return nil, err
	}
	defer tap.Close()

	subnets := newIPSet()
	hosts := newIPSet()
	sources := newIPSet()
	promiscuous := newIPSet()
	metrics := map[pkt.IP]int{}
	srcMACs := map[pkt.IP]pkt.MAC{}

	// The watcher's own wire is a known subnet (split-horizon routers
	// never advertise it back onto itself, but the receiving host's
	// interface configuration is authoritative anyway).
	subnets.add(localSubnet.Addr)

	deadline := st.Now().Add(dur)
	for {
		remain := deadline.Sub(st.Now())
		if remain <= 0 {
			break
		}
		raw, ok := tap.Recv(remain)
		if !ok {
			break
		}
		f, _ := pkt.DecodeFrame(raw)
		ipPkt, err := pkt.DecodeIPv4(f.Payload)
		if err != nil {
			continue
		}
		u, err := pkt.DecodeUDP(ipPkt.Payload, ipPkt.Header.Src, ipPkt.Header.Dst)
		if err != nil {
			continue
		}
		rp, err := pkt.DecodeRIP(u.Payload)
		if err != nil || rp.Command != pkt.RIPResponse {
			continue
		}
		src := ipPkt.Header.Src
		sources.add(src)
		srcMACs[src] = f.Src
		for _, e := range rp.Entries {
			if e.Family != 2 || e.Metric >= pkt.RIPInfinity {
				continue
			}
			switch class := classify(e.Addr, localSubnet, localNet); class {
			case routeSubnet:
				if e.Addr == localSubnet.Addr {
					// A split-horizon router never advertises the wire's
					// own subnet back onto the wire.
					promiscuous.add(src)
					continue
				}
				subnets.add(e.Addr)
				if best, ok := metrics[e.Addr]; !ok || int(e.Metric) < best {
					metrics[e.Addr] = int(e.Metric)
				}
			case routeNetwork:
				subnets.add(e.Addr)
				if best, ok := metrics[e.Addr]; !ok || int(e.Metric) < best {
					metrics[e.Addr] = int(e.Metric)
				}
			case routeHost:
				hosts.add(e.Addr)
			}
		}
	}

	now := st.Now()
	for _, src := range sources.sorted() {
		obs := journal.IfaceObs{
			IP: src, RIPSource: true,
			RIPPromiscuous: promiscuous.has(src),
			Source:         journal.SrcRIP, At: now,
		}
		if mac, ok := srcMACs[src]; ok && localSubnet.Contains(src) {
			obs.HasMAC, obs.MAC = true, mac
		}
		if _, _, err := ctx.Journal.StoreInterface(obs); err == nil {
			rep.Stored++
		}
	}
	for _, addr := range subnets.sorted() {
		// RIP-1 advertisements carry no mask; in-network subnets are
		// assumed to share the receiver's mask (the paper's comparison
		// rule), out-of-network addresses keep their classful mask.
		mask := pkt.Mask(0)
		if localNet.Contains(addr) {
			mask = localSubnet.Mask
		} else {
			mask = addr.DefaultMask()
		}
		if _, err := ctx.Journal.StoreSubnet(journal.SubnetObs{
			Subnet: pkt.Subnet{Addr: addr, Mask: mask},
			Metric: metrics[addr],
			Source: journal.SrcRIP, At: now,
		}); err == nil {
			rep.Stored++
		}
	}
	for _, h := range hosts.sorted() {
		if _, _, err := ctx.Journal.StoreInterface(journal.IfaceObs{
			IP: h, Source: journal.SrcRIP, At: now,
		}); err == nil {
			rep.Stored++
		}
	}

	if n := promiscuous.len(); n > 0 {
		rep.Notes = append(rep.Notes, "promiscuous RIP sources detected")
	}
	rep.Interfaces = append(sources.sorted(), hosts.sorted()...)
	rep.Subnets = subnets.sorted()
	rep.PacketsSent = 0 // passive
	rep.Finished = st.Now()
	return rep, nil
}

type routeClass int

const (
	routeIgnore routeClass = iota
	routeNetwork
	routeSubnet
	routeHost
)

// classify applies the paper's rule: "routes to networks, subnets, or
// hosts are determined by comparing the subnet mask of the receiving host
// to the address being advertised."
func classify(addr pkt.IP, localSubnet, localNet pkt.Subnet) routeClass {
	if addr.IsZero() {
		return routeIgnore
	}
	if localNet.Contains(addr) {
		// Inside our network: subnet route if the host part (under our
		// mask) is zero, host route otherwise.
		if pkt.SubnetOf(addr, localSubnet.Mask).Addr == addr {
			return routeSubnet
		}
		return routeHost
	}
	// Outside our network: a classful network route if the host part under
	// the class mask is zero, else a host route.
	if pkt.SubnetOf(addr, addr.DefaultMask()).Addr == addr {
		return routeNetwork
	}
	return routeHost
}
