package explorer

import (
	"time"

	"fremont/internal/journal"
	"fremont/internal/netsim/pkt"
)

// EtherHostProbe sends a UDP packet to the Echo port of each address in a
// range, causing the local stack to ARP for each one, and then reads the
// resulting Ethernet/IP pairs out of the host's own ARP table. It needs no
// special privileges and no tap — the kernel does the listening. "There is
// an ARP request broadcast for each address probed, and then two or three
// additional packets will appear on the network for each responding host.
// The module limits the rate of generated packets to four per second."
type EtherHostProbe struct{}

// Info implements Module.
func (EtherHostProbe) Info() Info {
	return Info{
		Name:           "EtherHostProbe",
		SourceProtocol: "ARP",
		Inputs:         "IP address",
		Outputs:        "Enet. & IP address matches (immediately)",
		MinInterval:    24 * time.Hour,
		MaxInterval:    7 * 24 * time.Hour,
	}
}

// Run implements Module. The range must lie on a directly attached subnet
// (ARP does not cross gateways).
func (m EtherHostProbe) Run(ctx *Context) (*Report, error) {
	st := ctx.Stack
	rep := &Report{Module: m.Info().Name, Started: st.Now()}
	lo, hi := ctx.Params.RangeLo, ctx.Params.RangeHi
	if lo.IsZero() || hi.IsZero() {
		ifc, err := primaryIface(st)
		if err != nil {
			return nil, err
		}
		sn := ifc.Subnet()
		lo, hi = sn.FirstHost(), sn.LastHost()
	}
	// One probe per second ("1 sec/address", Table 4). Each probe expands
	// to an ARP broadcast plus the UDP packet, and two or three more
	// frames per responding host — which is what the module's four
	// packets-per-second generation cap is about.
	interval := rate(1, ctx.Params.RateLimit)

	conn, err := st.OpenUDP(0)
	if err != nil {
		return nil, err
	}
	defer conn.Close()

	self := map[pkt.IP]bool{}
	for _, ifc := range st.Ifaces() {
		self[ifc.IP] = true
	}

	for ip := lo; ip <= hi; ip++ {
		if self[ip] {
			continue
		}
		_ = conn.Send(ip, pkt.PortEcho, []byte("fremont-ehp"))
		st.Sleep(interval)
	}
	// Let stragglers resolve.
	st.Sleep(3 * time.Second)

	entries, err := st.ARPTable()
	if err != nil {
		return nil, err
	}
	found := newIPSet()
	macs := map[pkt.IP]pkt.MAC{}
	for _, e := range entries {
		if e.IP >= lo && e.IP <= hi && !self[e.IP] {
			found.add(e.IP)
			macs[e.IP] = e.MAC
		}
	}
	for _, ip := range found.sorted() {
		if _, _, err := ctx.Journal.StoreInterface(journal.IfaceObs{
			IP: ip, HasMAC: true, MAC: macs[ip],
			Source: journal.SrcARP, At: st.Now(),
		}); err == nil {
			rep.Stored++
		}
	}
	rep.Interfaces = found.sorted()
	rep.PacketsSent = st.PacketsSent()
	rep.Finished = st.Now()
	return rep, nil
}
