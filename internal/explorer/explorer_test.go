package explorer_test

import (
	"strings"
	"testing"
	"time"

	"fremont/internal/dnssim"
	"fremont/internal/explorer"
	"fremont/internal/journal"
	"fremont/internal/netsim"
	"fremont/internal/netsim/pkt"
	"fremont/internal/netsim/sim"
	"fremont/internal/simstack"
)

// miniCampus is a three-subnet network for module tests:
//
//	238 wire (CS dept): fremont host .250, DNS server .2, hosts .10-.19,
//	   router A at .1
//	241 wire (backbone): router A at .1, router B at .2
//	243 wire: router B at .1, hosts .10-.14
type miniCampus struct {
	n        *netsim.Network
	fremont  *netsim.Node
	dnsSrv   *dnssim.Server
	routerA  *netsim.Node
	routerB  *netsim.Node
	csHosts  []*netsim.Node
	farHosts []*netsim.Node
	seg238   *netsim.Segment
	seg243   *netsim.Segment
}

func ip(t testing.TB, s string) pkt.IP {
	t.Helper()
	v, err := pkt.ParseIP(s)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func subnet(t testing.TB, s string) pkt.Subnet {
	t.Helper()
	v, err := pkt.ParseSubnet(s)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func buildMiniCampus(t testing.TB, seed int64) *miniCampus {
	t.Helper()
	n := netsim.New(seed)
	mask := pkt.MaskBits(24)
	seg238 := n.NewSegment("cs", subnet(t, "128.138.238.0/24"))
	seg241 := n.NewSegment("backbone", subnet(t, "128.138.241.0/24"))
	seg243 := n.NewSegment("far", subnet(t, "128.138.243.0/24"))

	ra := n.NewNode("router-a")
	ra.IsRouter = true
	ra.RespondsMask = true
	ra.AddIface(seg238, ip(t, "128.138.238.1"), mask)
	ra.AddIface(seg241, ip(t, "128.138.241.1"), mask)
	rb := n.NewNode("router-b")
	rb.IsRouter = true
	rb.AddIface(seg241, ip(t, "128.138.241.2"), mask)
	rb.AddIface(seg243, ip(t, "128.138.243.1"), mask)
	if err := ra.AddRoute(subnet(t, "128.138.243.0/24"), ip(t, "128.138.241.2")); err != nil {
		t.Fatal(err)
	}
	if err := rb.AddRoute(subnet(t, "128.138.238.0/24"), ip(t, "128.138.241.1")); err != nil {
		t.Fatal(err)
	}

	mc := &miniCampus{n: n, routerA: ra, routerB: rb, seg238: seg238, seg243: seg243}

	mc.fremont = n.NewNode("fremont")
	mc.fremont.AddIface(seg238, ip(t, "128.138.238.250"), mask)
	_ = mc.fremont.AddDefaultRoute(ip(t, "128.138.238.1"))

	dnsNode := n.NewNode("piper") // name server
	dnsNode.AddIface(seg238, ip(t, "128.138.238.2"), mask)
	dnsNode.RespondsMask = true
	_ = dnsNode.AddDefaultRoute(ip(t, "128.138.238.1"))

	fwd := dnssim.NewZone("cs.colorado.edu")
	rev := dnssim.NewZone("138.128.in-addr.arpa")
	addHost := func(name string, addr pkt.IP) {
		fwd.AddA(name, addr)
		rev.AddPTR(addr, name)
	}
	addHost("piper.cs.colorado.edu", ip(t, "128.138.238.2"))
	addHost("fremont.cs.colorado.edu", ip(t, "128.138.238.250"))

	for i := 10; i < 20; i++ {
		h := n.NewNode("cs" + string(rune('a'+i-10)))
		addr := pkt.IPv4(128, 138, 238, byte(i))
		h.AddIface(seg238, addr, mask)
		_ = h.AddDefaultRoute(ip(t, "128.138.238.1"))
		addHost("host"+string(rune('a'+i-10))+".cs.colorado.edu", addr)
		mc.csHosts = append(mc.csHosts, h)
	}
	for i := 10; i < 15; i++ {
		h := n.NewNode("far" + string(rune('a'+i-10)))
		addr := pkt.IPv4(128, 138, 243, byte(i))
		h.AddIface(seg243, addr, mask)
		_ = h.AddDefaultRoute(ip(t, "128.138.243.1"))
		addHost("far"+string(rune('a'+i-10))+".cs.colorado.edu", addr)
		mc.farHosts = append(mc.farHosts, h)
	}
	// Gateway naming conventions in the DNS.
	addHost("engr-gw.colorado.edu", ip(t, "128.138.238.1"))
	addHost("engr-gw.colorado.edu", ip(t, "128.138.241.1"))
	addHost("cc-gw.colorado.edu", ip(t, "128.138.241.2"))
	addHost("cc-gw.colorado.edu", ip(t, "128.138.243.1"))
	// A stale entry: a machine that no longer exists.
	addHost("ghost.cs.colorado.edu", ip(t, "128.138.238.99"))

	srv := dnssim.NewServer()
	srv.AddZone(fwd)
	srv.AddZone(rev)
	srv.Attach(dnsNode)
	mc.dnsSrv = srv

	n.StartRIP(ra)
	n.StartRIP(rb)
	return mc
}

// runModule executes a module on the fremont host under the virtual clock.
func runModule(t testing.TB, mc *miniCampus, m explorer.Module, priv bool,
	sink journal.Sink, params explorer.Params, simTime time.Duration) *explorer.Report {
	t.Helper()
	var rep *explorer.Report
	var err error
	done := false
	mc.n.Sched.Spawn("module:"+m.Info().Name, func(p *sim.Proc) {
		st := simstack.New(mc.fremont, p, priv)
		rep, err = m.Run(&explorer.Context{Stack: st, Journal: sink, Params: params})
		done = true
	})
	mc.n.Run(simTime)
	if err != nil {
		t.Fatalf("%s: %v", m.Info().Name, err)
	}
	if !done {
		t.Fatalf("%s did not finish within %v of simulated time", m.Info().Name, simTime)
	}
	return rep
}

func TestRegistryHasEightModules(t *testing.T) {
	mods := explorer.All()
	if len(mods) != 8 {
		t.Fatalf("registry has %d modules, want 8", len(mods))
	}
	names := map[string]bool{}
	for _, m := range mods {
		info := m.Info()
		if info.Name == "" || info.SourceProtocol == "" || info.Inputs == "" || info.Outputs == "" {
			t.Errorf("module %q has incomplete Info: %+v", info.Name, info)
		}
		if names[info.Name] {
			t.Errorf("duplicate module name %q", info.Name)
		}
		names[info.Name] = true
		if explorer.ByName(info.Name) == nil {
			t.Errorf("ByName(%q) = nil", info.Name)
		}
	}
	// Table 3 sources.
	for _, want := range []string{"ARPwatch", "EtherHostProbe", "SeqPing", "BroadcastPing",
		"SubnetMasks", "Traceroute", "RIPwatch", "DNS"} {
		if !names[want] {
			t.Errorf("missing module %q", want)
		}
	}
	if explorer.ByName("nope") != nil {
		t.Error("ByName of unknown module returned non-nil")
	}
}

func TestSeqPingFindsLocalHosts(t *testing.T) {
	mc := buildMiniCampus(t, 101)
	j := journal.New()
	rep := runModule(t, mc, explorer.SeqPing{}, false, journal.Local{J: j},
		explorer.Params{RangeLo: ip(t, "128.138.238.1"), RangeHi: ip(t, "128.138.238.30")},
		30*time.Minute)
	// Hosts .1 (router), .2 (dns), .10-.19 — 12 total in range.
	if len(rep.Interfaces) != 12 {
		t.Fatalf("found %d interfaces, want 12: %v", len(rep.Interfaces), rep.Interfaces)
	}
	if j.NumInterfaces() != 12 {
		t.Fatalf("journal has %d interfaces", j.NumInterfaces())
	}
	// ~2s per address for 30 addresses: completion in about a minute, not
	// instantaneous and not hours (Table 4's "2 sec/address").
	if rep.Elapsed() < 50*time.Second || rep.Elapsed() > 5*time.Minute {
		t.Fatalf("elapsed = %v, want ≈1 minute", rep.Elapsed())
	}
	if rate := rep.PacketRate(); rate > 1.5 {
		t.Fatalf("packet rate %.2f pkt/s exceeds the paper's ~0.5", rate)
	}
}

func TestSeqPingSecondPassCatchesSlowHost(t *testing.T) {
	mc := buildMiniCampus(t, 102)
	// Take a host down, then bring it back up mid-run so only the second
	// pass can see it.
	victim := mc.csHosts[0]
	victim.SetUp(false)
	// .10 is probed first (t≈0s) and the second pass starts after the
	// first sweep (10 addresses × 2 s = 20 s); revive in between.
	mc.n.Sched.After(15*time.Second, func() { victim.SetUp(true) })
	j := journal.New()
	rep := runModule(t, mc, explorer.SeqPing{}, false, journal.Local{J: j},
		explorer.Params{RangeLo: ip(t, "128.138.238.10"), RangeHi: ip(t, "128.138.238.19")},
		30*time.Minute)
	found := false
	for _, i := range rep.Interfaces {
		if i == victim.Ifaces[0].IP {
			found = true
		}
	}
	if !found {
		t.Fatalf("second pass missed revived host; found %v", rep.Interfaces)
	}
}

func TestEtherHostProbeReadsARPTable(t *testing.T) {
	mc := buildMiniCampus(t, 103)
	j := journal.New()
	rep := runModule(t, mc, explorer.EtherHostProbe{}, false, journal.Local{J: j},
		explorer.Params{RangeLo: ip(t, "128.138.238.1"), RangeHi: ip(t, "128.138.238.30")},
		10*time.Minute)
	if len(rep.Interfaces) != 12 {
		t.Fatalf("found %d interfaces, want 12: %v", len(rep.Interfaces), rep.Interfaces)
	}
	// Unlike ping, every find carries a MAC.
	recs := j.Interfaces(journal.Query{})
	for _, r := range recs {
		if r.MAC.IsZero() {
			t.Fatalf("EtherHostProbe record without MAC: %+v", r)
		}
		if r.Sources&journal.SrcARP == 0 {
			t.Fatalf("record not marked ARP-sourced: %+v", r)
		}
	}
	// 4/sec over 30 addresses ≈ 7.5s+settle.
	if rep.Elapsed() > time.Minute {
		t.Fatalf("elapsed = %v, want seconds", rep.Elapsed())
	}
}

func TestBroadcastPingLocalSubnet(t *testing.T) {
	mc := buildMiniCampus(t, 104)
	j := journal.New()
	rep := runModule(t, mc, explorer.BroadcastPing{}, false, journal.Local{J: j},
		explorer.Params{}, 10*time.Minute)
	// 12 answering hosts on the wire; collisions may drop a few replies,
	// but most must arrive, and the run must finish in ~20s.
	if len(rep.Interfaces) < 6 || len(rep.Interfaces) > 12 {
		t.Fatalf("found %d interfaces: %v", len(rep.Interfaces), rep.Interfaces)
	}
	if rep.Elapsed() > time.Minute {
		t.Fatalf("elapsed %v, want ~20s", rep.Elapsed())
	}
	if rep.PacketsSent > 5 {
		t.Fatalf("broadcast ping sent %d packets, want ~1", rep.PacketsSent)
	}
}

func TestBroadcastPingRemoteSubnetNeedsForwarding(t *testing.T) {
	for _, forwards := range []bool{false, true} {
		mc := buildMiniCampus(t, 105)
		mc.routerA.ForwardsDirectedBcast = forwards
		mc.routerB.ForwardsDirectedBcast = forwards
		j := journal.New()
		rep := runModule(t, mc, explorer.BroadcastPing{}, false, journal.Local{J: j},
			explorer.Params{Subnets: []pkt.Subnet{subnet(t, "128.138.243.0/24")}},
			10*time.Minute)
		farFound := 0
		for _, i := range rep.Interfaces {
			if subnet(t, "128.138.243.0/24").Contains(i) && i != ip(t, "128.138.243.1") {
				farFound++
			}
		}
		if forwards && farFound < 3 {
			t.Fatalf("forwarding on: found only %d far hosts (%v)", farFound, rep.Interfaces)
		}
		if !forwards && farFound != 0 {
			t.Fatalf("forwarding off: found %d far hosts, want 0", farFound)
		}
	}
}

func TestSubnetMasksModule(t *testing.T) {
	mc := buildMiniCampus(t, 106)
	// Half the hosts answer mask requests; one lies.
	for i, h := range mc.csHosts {
		h.RespondsMask = i%2 == 0
	}
	mc.csHosts[2].MaskReplyValue = pkt.MaskBits(16) // misconfigured
	j := journal.New()
	var addrs []pkt.IP
	for _, h := range mc.csHosts {
		addrs = append(addrs, h.Ifaces[0].IP)
	}
	rep := runModule(t, mc, explorer.SubnetMasks{}, false, journal.Local{J: j},
		explorer.Params{Addresses: addrs}, 10*time.Minute)
	if len(rep.Interfaces) != 5 {
		t.Fatalf("got masks from %d hosts, want 5: %v", len(rep.Interfaces), rep.Interfaces)
	}
	recs := j.Interfaces(journal.Query{ByIP: mc.csHosts[2].Ifaces[0].IP, HasIP: true})
	if len(recs) != 1 || recs[0].Mask != pkt.MaskBits(16) {
		t.Fatalf("misconfigured mask not recorded faithfully: %+v", recs)
	}
}

func TestSubnetMasksDefaultsToJournalGaps(t *testing.T) {
	mc := buildMiniCampus(t, 107)
	j := journal.New()
	// Journal knows two interfaces, one already masked.
	j.StoreInterface(journal.IfaceObs{IP: ip(t, "128.138.238.2"), Source: journal.SrcICMP, At: mc.n.Now()})
	j.StoreInterface(journal.IfaceObs{IP: ip(t, "128.138.238.10"), HasMask: true,
		Mask: pkt.MaskBits(24), Source: journal.SrcICMP, At: mc.n.Now()})
	rep := runModule(t, mc, explorer.SubnetMasks{}, false, journal.Local{J: j},
		explorer.Params{}, 10*time.Minute)
	// Only .2 lacked a mask, and it responds (name server).
	if len(rep.Interfaces) != 1 || rep.Interfaces[0] != ip(t, "128.138.238.2") {
		t.Fatalf("rep.Interfaces = %v, want just 128.138.238.2", rep.Interfaces)
	}
	recs := j.Interfaces(journal.Query{ByIP: ip(t, "128.138.238.2"), HasIP: true})
	if recs[0].Mask != pkt.MaskBits(24) {
		t.Fatalf("mask not stored: %+v", recs[0])
	}
}

func TestARPwatchRequiresPrivilege(t *testing.T) {
	mc := buildMiniCampus(t, 108)
	var gotErr error
	mc.n.Sched.Spawn("module", func(p *sim.Proc) {
		st := simstack.New(mc.fremont, p, false) // unprivileged
		_, gotErr = explorer.ARPwatch{}.Run(&explorer.Context{
			Stack: st, Journal: journal.Local{J: journal.New()},
			Params: explorer.Params{Duration: time.Minute},
		})
	})
	mc.n.Run(5 * time.Minute)
	if gotErr == nil {
		t.Fatal("ARPwatch ran without privileges")
	}
}

func TestARPwatchDiscoversOverTime(t *testing.T) {
	mc := buildMiniCampus(t, 109)
	for _, h := range mc.csHosts {
		mc.n.StartChatter(h, 10*time.Minute)
	}
	j := journal.New()
	rep := runModule(t, mc, explorer.ARPwatch{}, true, journal.Local{J: j},
		explorer.Params{Duration: 2 * time.Hour}, 3*time.Hour)
	if rep.PacketsSent != 0 {
		t.Fatalf("passive module sent %d packets", rep.PacketsSent)
	}
	if len(rep.Interfaces) < 8 {
		t.Fatalf("after 2h of chatter, ARPwatch saw only %d interfaces: %v",
			len(rep.Interfaces), rep.Interfaces)
	}
	// Every journal record must carry a MAC (that is the point of ARP).
	for _, r := range j.Interfaces(journal.Query{}) {
		if r.MAC.IsZero() {
			t.Fatalf("ARPwatch stored a MAC-less record: %+v", r)
		}
	}
}

func TestRIPwatchDiscoversSubnets(t *testing.T) {
	mc := buildMiniCampus(t, 110)
	j := journal.New()
	rep := runModule(t, mc, explorer.RIPwatch{}, true, journal.Local{J: j},
		explorer.Params{Duration: 2 * time.Minute}, 10*time.Minute)
	if rep.PacketsSent != 0 {
		t.Fatalf("passive module sent %d packets", rep.PacketsSent)
	}
	// Router A advertises (split horizon) onto 238: subnets 241 and 243.
	want := map[pkt.IP]bool{ip(t, "128.138.241.0"): true, ip(t, "128.138.243.0"): true}
	for _, sn := range rep.Subnets {
		delete(want, sn)
	}
	if len(want) != 0 {
		t.Fatalf("RIPwatch missed subnets %v (got %v)", want, rep.Subnets)
	}
	// The RIP source is recorded and flagged.
	recs := j.Interfaces(journal.Query{ByIP: ip(t, "128.138.238.1"), HasIP: true})
	if len(recs) != 1 || !recs[0].RIPSource {
		t.Fatalf("RIP source not flagged: %+v", recs)
	}
	if recs[0].RIPPromiscuous {
		t.Fatal("well-behaved router flagged promiscuous")
	}
}

func TestRIPwatchFlagsPromiscuousHost(t *testing.T) {
	mc := buildMiniCampus(t, 111)
	bad := mc.csHosts[3]
	mc.n.StartPromiscuousRIP(bad, 30*time.Second)
	j := journal.New()
	runModule(t, mc, explorer.RIPwatch{}, true, journal.Local{J: j},
		explorer.Params{Duration: 3 * time.Minute}, 10*time.Minute)
	recs := j.Interfaces(journal.Query{ByIP: bad.Ifaces[0].IP, HasIP: true})
	if len(recs) != 1 || !recs[0].RIPPromiscuous {
		t.Fatalf("promiscuous host not flagged: %+v", recs)
	}
	// And the real router must not be flagged.
	recs = j.Interfaces(journal.Query{ByIP: ip(t, "128.138.238.1"), HasIP: true})
	if len(recs) == 1 && recs[0].RIPPromiscuous {
		t.Fatal("router wrongly flagged promiscuous")
	}
}

func TestTracerouteDiscoversPath(t *testing.T) {
	mc := buildMiniCampus(t, 112)
	j := journal.New()
	rep := runModule(t, mc, explorer.Tracerouter{}, false, journal.Local{J: j},
		explorer.Params{Subnets: []pkt.Subnet{subnet(t, "128.138.243.0/24")}},
		time.Hour)
	// Path: router A (238.1) then router B (241.2), destination subnet
	// reached.
	if len(rep.Subnets) != 1 || rep.Subnets[0] != ip(t, "128.138.243.0") {
		t.Fatalf("subnets = %v", rep.Subnets)
	}
	if rep.Gateways < 2 {
		t.Fatalf("gateways = %d, want ≥2", rep.Gateways)
	}
	gws, _ := journal.Local{J: j}.Gateways()
	// The journal must link router B to the destination subnet.
	foundLink := false
	for _, gw := range gws {
		for _, sn := range gw.Subnets {
			if sn.Addr == ip(t, "128.138.243.0") {
				foundLink = true
			}
		}
	}
	if !foundLink {
		t.Fatal("no gateway linked to destination subnet")
	}
	// Rate limit respected.
	if rate := rep.PacketRate(); rate > 8.5 {
		t.Fatalf("packet rate %.1f exceeds 8 pkt/s", rate)
	}
}

func TestTracerouteHandlesSilentGateway(t *testing.T) {
	mc := buildMiniCampus(t, 113)
	mc.routerB.NoTimeExceeded = true // gateway software problems
	j := journal.New()
	rep := runModule(t, mc, explorer.Tracerouter{}, false, journal.Local{J: j},
		explorer.Params{Subnets: []pkt.Subnet{subnet(t, "128.138.243.0/24")}},
		2*time.Hour)
	// Probes still REACH the subnet (hosts reply port-unreachable), since
	// only the TTL-expiry reporting is broken on router B. The middle hop
	// is just missing. But if the destination subnet's own gateway drops
	// expired packets, host-zero probes at the exact hop count go dark;
	// reached-ness depends on the 3-address trick. Either way the module
	// must terminate and record router A.
	foundA := false
	for _, i := range rep.Interfaces {
		if i == ip(t, "128.138.238.1") {
			foundA = true
		}
	}
	if !foundA {
		t.Fatalf("router A not recorded: %v", rep.Interfaces)
	}
}

func TestTracerouteUsesJournalClues(t *testing.T) {
	// With no explicit targets, traceroute reads subnets from the Journal
	// (the RIP clue feed).
	mc := buildMiniCampus(t, 114)
	j := journal.New()
	j.StoreSubnet(journal.SubnetObs{Subnet: subnet(t, "128.138.243.0/24"),
		Source: journal.SrcRIP, At: mc.n.Now()})
	rep := runModule(t, mc, explorer.Tracerouter{}, false, journal.Local{J: j},
		explorer.Params{}, time.Hour)
	if len(rep.Subnets) != 1 || rep.Subnets[0] != ip(t, "128.138.243.0") {
		t.Fatalf("clue-directed traceroute found %v", rep.Subnets)
	}
}

// extendCampus adds two more hops behind the 243 wire: router C
// (243.2/245.1), router D (245.2/246.1), and a host on 246. A trace toward
// 246 must expire a TTL at router C — whose near interface 243.2 is on the
// 243 wire — so declaring 243 a stop network ("national backbone")
// abandons every trace before it can reach 246.
func extendCampus(t *testing.T, mc *miniCampus) {
	seg245 := mc.n.NewSegment("span", subnet(t, "128.138.245.0/24"))
	seg246 := mc.n.NewSegment("distant", subnet(t, "128.138.246.0/24"))
	rc := mc.n.NewNode("router-c")
	rc.IsRouter = true
	rc.AddIface(mc.seg243, ip(t, "128.138.243.2"), pkt.MaskBits(24))
	rc.AddIface(seg245, ip(t, "128.138.245.1"), pkt.MaskBits(24))
	rd := mc.n.NewNode("router-d")
	rd.IsRouter = true
	rd.AddIface(seg245, ip(t, "128.138.245.2"), pkt.MaskBits(24))
	rd.AddIface(seg246, ip(t, "128.138.246.1"), pkt.MaskBits(24))
	h := mc.n.NewNode("distant-host")
	h.AddIface(seg246, ip(t, "128.138.246.10"), pkt.MaskBits(24))
	_ = h.AddDefaultRoute(ip(t, "128.138.246.1"))
	_ = rd.AddDefaultRoute(ip(t, "128.138.245.1"))
	_ = rc.AddDefaultRoute(ip(t, "128.138.243.1"))
	_ = rc.AddRoute(subnet(t, "128.138.246.0/24"), ip(t, "128.138.245.2"))
	for _, dst := range []string{"128.138.245.0/24", "128.138.246.0/24"} {
		_ = mc.routerB.AddRoute(subnet(t, dst), ip(t, "128.138.243.2"))
		_ = mc.routerA.AddRoute(subnet(t, dst), ip(t, "128.138.241.2"))
	}
}

func TestTracerouteStopNets(t *testing.T) {
	mc := buildMiniCampus(t, 115)
	extendCampus(t, mc)
	rep := runModule(t, mc, explorer.Tracerouter{}, false, journal.Local{J: journal.New()},
		explorer.Params{
			Subnets:  []pkt.Subnet{subnet(t, "128.138.246.0/24")},
			StopNets: []pkt.Subnet{subnet(t, "128.138.243.0/24")},
		}, 2*time.Hour)
	if len(rep.Subnets) != 0 {
		t.Fatalf("trace crossed a stop network: %v", rep.Subnets)
	}

	// Control: without the stop net, the same trace reaches 246.
	mc2 := buildMiniCampus(t, 115)
	extendCampus(t, mc2)
	rep2 := runModule(t, mc2, explorer.Tracerouter{}, false, journal.Local{J: journal.New()},
		explorer.Params{Subnets: []pkt.Subnet{subnet(t, "128.138.246.0/24")}}, 2*time.Hour)
	if len(rep2.Subnets) != 1 {
		t.Fatalf("control trace without stop nets did not reach: %v (notes %v)", rep2.Subnets, rep2.Notes)
	}
}

func TestDNSExplorerWalksZoneAndFindsGateways(t *testing.T) {
	mc := buildMiniCampus(t, 116)
	j := journal.New()
	rep := runModule(t, mc, explorer.DNSExplorer{}, false, journal.Local{J: j},
		explorer.Params{
			Network:   subnet(t, "128.138.0.0/16"),
			DNSServer: ip(t, "128.138.238.2"),
		}, time.Hour)
	// 19 PTR records: 2 + 10 + 5 + 2x2 gateway ifaces... plus ghost.
	if len(rep.Interfaces) < 19 {
		t.Fatalf("zone walk found %d interfaces: %v", len(rep.Interfaces), rep.Interfaces)
	}
	// Both gateways found: engr-gw (multi-A + convention), cc-gw.
	if rep.Gateways < 2 {
		t.Fatalf("gateways = %d, want ≥2", rep.Gateways)
	}
	gws, _ := journal.Local{J: j}.Gateways()
	if len(gws) != 2 {
		t.Fatalf("journal gateways = %d, want 2", len(gws))
	}
	// Subnet occupancy recorded.
	sn, ok := j.SubnetByAddr(ip(t, "128.138.238.0"))
	if !ok {
		t.Fatal("238 subnet not recorded")
	}
	if sn.HostCount < 13 { // 2 + 10 + gw + ghost on 238
		t.Fatalf("host count = %d", sn.HostCount)
	}
	if sn.LoAddr != ip(t, "128.138.238.1") {
		t.Fatalf("lo addr = %s", sn.LoAddr)
	}
	// The stale ghost entry IS reported by DNS (Table 5: "not necessarily
	// current") — it appears in the report...
	foundGhost := false
	for _, i := range rep.Interfaces {
		if i == ip(t, "128.138.238.99") {
			foundGhost = true
		}
	}
	if !foundGhost {
		t.Fatal("stale DNS entry missing from report")
	}
	// ...but NOT in the journal (paper: name/address pairs alone are not
	// recorded).
	if recs := j.Interfaces(journal.Query{ByIP: ip(t, "128.138.238.99"), HasIP: true}); len(recs) != 0 {
		t.Fatalf("stale lone DNS entry stored in journal: %+v", recs)
	}
}

func TestDNSExplorerAddsNamesToKnownInterfaces(t *testing.T) {
	mc := buildMiniCampus(t, 117)
	j := journal.New()
	// ARPwatch already knows host .10.
	j.StoreInterface(journal.IfaceObs{IP: ip(t, "128.138.238.10"), HasMAC: true,
		MAC: pkt.MAC{8, 0, 0x20, 0, 0, 1}, Source: journal.SrcARP, At: mc.n.Now()})
	runModule(t, mc, explorer.DNSExplorer{}, false, journal.Local{J: j},
		explorer.Params{
			Network:   subnet(t, "128.138.0.0/16"),
			DNSServer: ip(t, "128.138.238.2"),
		}, time.Hour)
	recs := j.Interfaces(journal.Query{ByIP: ip(t, "128.138.238.10"), HasIP: true})
	if len(recs) != 1 || recs[0].Name != "hosta.cs.colorado.edu" {
		t.Fatalf("DNS name not added to known interface: %+v", recs)
	}
	if recs[0].Sources&journal.SrcDNS == 0 {
		t.Fatal("DNS source bit not set")
	}
}

func TestDNSExplorerDescendsWhenTopRefused(t *testing.T) {
	mc := buildMiniCampus(t, 118)
	mc.dnsSrv.RefuseAXFR = false // per-subnet transfers allowed
	// Refuse only the /16-level transfer by hiding it behind RefuseAXFR?
	// The simulated server refuses all AXFR when set, so instead verify
	// the full-walk path plus the notes field stays empty here.
	j := journal.New()
	rep := runModule(t, mc, explorer.DNSExplorer{}, false, journal.Local{J: j},
		explorer.Params{Network: subnet(t, "128.138.0.0/16"), DNSServer: ip(t, "128.138.238.2")},
		time.Hour)
	for _, note := range rep.Notes {
		if note == "reverse zone walk returned nothing" {
			t.Fatal("walk returned nothing")
		}
	}
}

func TestRIPQueryReachesRemoteGateways(t *testing.T) {
	// The Future Work extension: unlike RIPwatch (limited to the local
	// wire), RIP Requests are routed — so Fremont can read router B's
	// table even though router B's advertisements never reach the CS
	// subnet directly.
	mc := buildMiniCampus(t, 119)
	// Router B knows a route RIPwatch on the CS wire can never hear
	// about from B directly.
	_ = mc.routerB.AddRoute(subnet(t, "128.138.250.0/24"), ip(t, "128.138.243.2"))
	j := journal.New()
	rep := runModule(t, mc, explorer.RIPQuery{}, false, journal.Local{J: j},
		explorer.Params{Addresses: []pkt.IP{
			ip(t, "128.138.238.1"), // router A (local wire)
			ip(t, "128.138.241.2"), // router B (remote!)
		}}, 10*time.Minute)
	if len(rep.Interfaces) != 2 {
		t.Fatalf("responders = %v, want both routers", rep.Interfaces)
	}
	found := map[pkt.IP]bool{}
	for _, sn := range rep.Subnets {
		found[sn] = true
	}
	if !found[ip(t, "128.138.250.0")] {
		t.Fatalf("remote gateway's exclusive route not discovered: %v", rep.Subnets)
	}
	// The journal now holds the subnet with a RIP source bit.
	rec, ok := j.SubnetByAddr(ip(t, "128.138.250.0"))
	if !ok || rec.Sources&journal.SrcRIP == 0 {
		t.Fatalf("subnet record missing or unsourced: %+v", rec)
	}
}

func TestRIPQueryDefaultsToJournalGateways(t *testing.T) {
	mc := buildMiniCampus(t, 120)
	j := journal.New()
	// The journal knows router A is a gateway (say, from traceroute).
	j.StoreGateway(journal.GatewayObs{IfaceIPs: []pkt.IP{ip(t, "128.138.238.1")},
		Source: journal.SrcTraceroute, At: mc.n.Now()})
	rep := runModule(t, mc, explorer.RIPQuery{}, false, journal.Local{J: j},
		explorer.Params{}, 10*time.Minute)
	if len(rep.Interfaces) != 1 || rep.Interfaces[0] != ip(t, "128.138.238.1") {
		t.Fatalf("responders = %v", rep.Interfaces)
	}
	if len(rep.Subnets) == 0 {
		t.Fatal("no routes learned from journal-directed query")
	}
}

func TestRIPQuerySilentTargets(t *testing.T) {
	mc := buildMiniCampus(t, 121)
	j := journal.New()
	// A host that is not a router: no RIP responder registered, so the
	// request draws a port-unreachable that the module must ignore.
	rep := runModule(t, mc, explorer.RIPQuery{}, false, journal.Local{J: j},
		explorer.Params{Addresses: []pkt.IP{ip(t, "128.138.238.10")}}, 10*time.Minute)
	if len(rep.Interfaces) != 0 {
		t.Fatalf("non-router answered RIP: %v", rep.Interfaces)
	}
	if len(rep.Notes) == 0 {
		t.Fatal("silent targets should be noted")
	}
}

func TestSubnetMasksNegativeCaching(t *testing.T) {
	mc := buildMiniCampus(t, 122)
	// Host .10 never answers mask requests but is already in the journal.
	mc.csHosts[0].RespondsMask = false
	j := journal.New()
	j.StoreInterface(journal.IfaceObs{IP: ip(t, "128.138.238.10"),
		Source: journal.SrcARP, At: mc.n.Now()})
	runModule(t, mc, explorer.SubnetMasks{}, false, journal.Local{J: j},
		explorer.Params{Addresses: []pkt.IP{ip(t, "128.138.238.10")}}, 10*time.Minute)
	recs := j.Interfaces(journal.Query{ByIP: ip(t, "128.138.238.10"), HasIP: true})
	if len(recs) != 1 || recs[0].MaskProbeFails != 1 {
		t.Fatalf("negative cache not recorded: %+v", recs)
	}
	// Silent probes to addresses the journal has never seen create nothing.
	if len(j.Interfaces(journal.Query{ByIP: ip(t, "128.138.238.222"), HasIP: true})) != 0 {
		t.Fatal("phantom record created")
	}
}

func TestDNSExplorerQuestionableGateways(t *testing.T) {
	mc := buildMiniCampus(t, 123)
	// A lone -gw name with a single address: weak evidence. Plant it in
	// the existing zones so the module's reverse walk sees it.
	for _, z := range mc.dnsSrv.Zones() {
		if z.Origin == "138.128.in-addr.arpa" {
			z.AddPTR(ip(t, "128.138.238.77"), "lonely-gw.cs.colorado.edu")
		}
		if z.Origin == "cs.colorado.edu" {
			z.AddA("lonely-gw.cs.colorado.edu", ip(t, "128.138.238.77"))
		}
	}
	j := journal.New()
	runModule(t, mc, explorer.DNSExplorer{}, false, journal.Local{J: j},
		explorer.Params{Network: subnet(t, "128.138.0.0/16"), DNSServer: ip(t, "128.138.238.2")},
		time.Hour)
	gws := j.Gateways()
	var lonely, strong *journal.GatewayRec
	for _, gw := range gws {
		for _, ifID := range gw.Ifaces {
			rec, _ := j.Interface(ifID)
			if rec == nil {
				continue
			}
			switch rec.IP {
			case ip(t, "128.138.238.77"):
				lonely = gw
			case ip(t, "128.138.238.1"):
				strong = gw
			}
		}
	}
	if lonely == nil || !lonely.Questionable {
		t.Fatalf("single-address -gw name not tagged questionable: %+v", lonely)
	}
	if strong == nil || strong.Questionable {
		t.Fatalf("multi-address gateway wrongly tagged questionable: %+v", strong)
	}
}

func TestDNSExplorerDescendsOnRefusedNetworkTransfer(t *testing.T) {
	mc := buildMiniCampus(t, 124)
	// Refuse only the /16-level transfer; per-subnet cuts still work —
	// the Census-style recursive descent must kick in.
	mc.dnsSrv.RefuseAXFRZones = map[string]bool{"138.128.in-addr.arpa": true}
	j := journal.New()
	rep := runModule(t, mc, explorer.DNSExplorer{}, false, journal.Local{J: j},
		explorer.Params{Network: subnet(t, "128.138.0.0/16"), DNSServer: ip(t, "128.138.238.2")},
		2*time.Hour)
	descended := false
	for _, note := range rep.Notes {
		if note == "network-level transfer refused; descending per-subnet" {
			descended = true
		}
	}
	if !descended {
		t.Fatalf("descent not triggered; notes = %v", rep.Notes)
	}
	if len(rep.Interfaces) < 15 {
		t.Fatalf("descent found only %d interfaces: %v", len(rep.Interfaces), rep.Interfaces)
	}
}

func TestTrafficWatchSeesSilentConversations(t *testing.T) {
	// Two hosts with warm ARP caches converse: ARPwatch sees nothing, but
	// the traffic monitor catches both ends.
	mc := buildMiniCampus(t, 125)
	talker, listener := mc.csHosts[0], mc.csHosts[1]
	mc.n.Sched.Spawn("talker", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			p.Sleep(15 * time.Second)
			u := &pkt.UDPPacket{SrcPort: 2000, DstPort: 7, Payload: []byte("hello")}
			dst := listener.Ifaces[0].IP
			h := pkt.IPv4Header{Protocol: pkt.ProtoUDP, Dst: dst, TTL: 30}
			_ = talker.SendIP(h, u.Encode(talker.Ifaces[0].IP, dst))
		}
	})
	j := journal.New()
	rep := runModule(t, mc, explorer.TrafficWatch{}, true, journal.Local{J: j},
		explorer.Params{Duration: 5 * time.Minute}, 30*time.Minute)
	found := map[pkt.IP]bool{}
	for _, ip := range rep.Interfaces {
		found[ip] = true
	}
	if !found[talker.Ifaces[0].IP] || !found[listener.Ifaces[0].IP] {
		t.Fatalf("conversation endpoints missed: %v", rep.Interfaces)
	}
	// The listener's UDP echo replies from port 7 reveal a service.
	sawEcho := false
	prefix := "service: " + listener.Ifaces[0].IP.String() + " port 7 (echo,"
	for _, note := range rep.Notes {
		if strings.HasPrefix(note, prefix) {
			sawEcho = true
		}
	}
	if !sawEcho {
		t.Fatalf("echo service not discovered; notes = %v", rep.Notes)
	}
	// Journal records carry the traffic source bit and the local MACs.
	recs := j.Interfaces(journal.Query{ByIP: talker.Ifaces[0].IP, HasIP: true})
	if len(recs) != 1 || recs[0].Sources&journal.SrcTraffic == 0 || recs[0].MAC.IsZero() {
		t.Fatalf("journal record wrong: %+v", recs)
	}
}

func TestTrafficWatchRequiresPrivilege(t *testing.T) {
	mc := buildMiniCampus(t, 126)
	var gotErr error
	mc.n.Sched.Spawn("module", func(p *sim.Proc) {
		st := simstack.New(mc.fremont, p, false)
		_, gotErr = explorer.TrafficWatch{}.Run(&explorer.Context{
			Stack: st, Journal: journal.Local{J: journal.New()},
			Params: explorer.Params{Duration: time.Minute},
		})
	})
	mc.n.Run(5 * time.Minute)
	if gotErr == nil {
		t.Fatal("TrafficWatch ran without privileges")
	}
}

func TestJournalAggregatesAlternatePaths(t *testing.T) {
	// "If a lower priority, redundant path exists between two locations,
	// that path will be discovered only when the primary path is down.
	// Since this module ... stores its information in the Journal, the
	// Journal will contain more complete information aggregated from
	// multiple invocations of this module."
	mc := buildMiniCampus(t, 127)
	// A redundant router C between the backbone and the 243 wire.
	rc := mc.n.NewNode("router-c")
	rc.IsRouter = true
	rc.AddIface(mc.n.Segments[1], ip(t, "128.138.241.3"), pkt.MaskBits(24)) // backbone
	rc.AddIface(mc.seg243, ip(t, "128.138.243.3"), pkt.MaskBits(24))
	_ = rc.AddRoute(subnet(t, "128.138.238.0/24"), ip(t, "128.138.241.1"))

	j := journal.New()
	target := explorer.Params{Subnets: []pkt.Subnet{subnet(t, "128.138.243.0/24")}}

	// First invocation: primary path through router B.
	runModule(t, mc, explorer.Tracerouter{}, false, journal.Local{J: j}, target, time.Hour)

	// The primary fails; router A fails over to the backup (the routing
	// protocol's job, done by hand here).
	mc.routerB.SetUp(false)
	for i, r := range mc.routerA.Routes {
		if r.Dst.Addr == ip(t, "128.138.243.0") {
			mc.routerA.Routes[i].Gateway = ip(t, "128.138.241.3")
		}
	}

	// Second invocation, "simply by running it at different times".
	runModule(t, mc, explorer.Tracerouter{}, false, journal.Local{J: j}, target, time.Hour)

	// The Journal now knows gateway interfaces on BOTH paths.
	sawB, sawC := false, false
	recs := j.Interfaces(journal.Query{})
	for _, r := range recs {
		switch r.IP {
		case ip(t, "128.138.241.2"):
			sawB = true
		case ip(t, "128.138.241.3"), ip(t, "128.138.243.3"):
			sawC = true
		}
	}
	if !sawB || !sawC {
		t.Fatalf("journal missing a path: primary=%v backup=%v (%d records)", sawB, sawC, len(recs))
	}
	// And both gateways are attached to the destination subnet.
	snRec, ok := j.SubnetByAddr(ip(t, "128.138.243.0"))
	if !ok || len(snRec.Gateways) < 2 {
		t.Fatalf("destination subnet should list both gateways: %+v", snRec)
	}
}
