package netsim

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"fremont/internal/netsim/pkt"
	"fremont/internal/netsim/sim"
)

// Userspace TCP over the simulated IP stack: three-way handshake,
// sequence/ack tracking, RTO-based retransmission on a cancellable sim
// Timer, receive-window flow control with a zero-window probe, out-of-order
// reassembly, and FIN teardown (including simultaneous close). No
// congestion control or SACK — at sim scale the receive window is the only
// pacing that matters, and loss recovery by RTO is exactly the behaviour
// the emulytics experiments want to exercise.
//
// DialTCP and ListenTCP return net.Conn / net.Listener implementations
// driven by the virtual clock. All conn state is guarded by the network's
// gate mutex: protocol events run inside RunGated (which holds it), and
// every blocking operation from an external goroutine takes it, parking
// through the gate while blocked. TCP endpoints therefore require the
// simulation to be driven with RunGated, not Run.

const (
	tcpMSS          = 1400
	tcpSendBufCap   = 256 << 10
	tcpRecvBufCap   = 32 << 10
	tcpOOOCap       = 128 << 10
	tcpInitialRTO   = 200 * time.Millisecond
	tcpMaxRTO       = 10 * time.Second
	tcpMaxRetries   = 12
	tcpTimeWaitDur  = 500 * time.Millisecond
	tcpBacklogLimit = 64
)

// ErrConnReset is returned from reads/writes on a connection the peer reset.
var ErrConnReset = errors.New("netsim: connection reset by peer")

type tcpState int

const (
	tcpClosed tcpState = iota
	tcpSynSent
	tcpSynRcvd
	tcpEstablished
	tcpFinWait1
	tcpFinWait2
	tcpCloseWait
	tcpClosing
	tcpLastAck
	tcpTimeWait
)

func (s tcpState) String() string {
	switch s {
	case tcpClosed:
		return "CLOSED"
	case tcpSynSent:
		return "SYN_SENT"
	case tcpSynRcvd:
		return "SYN_RCVD"
	case tcpEstablished:
		return "ESTABLISHED"
	case tcpFinWait1:
		return "FIN_WAIT_1"
	case tcpFinWait2:
		return "FIN_WAIT_2"
	case tcpCloseWait:
		return "CLOSE_WAIT"
	case tcpClosing:
		return "CLOSING"
	case tcpLastAck:
		return "LAST_ACK"
	case tcpTimeWait:
		return "TIME_WAIT"
	}
	return "?"
}

// tcpKey identifies a connection from the owning node's point of view.
// Listeners match on local port alone, so the local IP is not part of the
// key (a node's ports are one namespace across its interfaces, like a
// host with a wildcard bind).
type tcpKey struct {
	localPort  uint16
	remoteIP   pkt.IP
	remotePort uint16
}

func (k tcpKey) String() string {
	return fmt.Sprintf(":%d<->%s:%d", k.localPort, k.remoteIP, k.remotePort)
}

// tcpHost is the per-node TCP endpoint table, created lazily on first use.
type tcpHost struct {
	listeners   map[uint16]*TCPListener
	conns       map[tcpKey]*TCPConn
	eph         uint16
	issSeq      uint32
	retransmits int
}

func (nd *Node) tcpHost() *tcpHost {
	if nd.tcp == nil {
		nd.tcp = &tcpHost{
			listeners: map[uint16]*TCPListener{},
			conns:     map[tcpKey]*TCPConn{},
		}
	}
	return nd.tcp
}

// nextISS allocates a deterministic initial send sequence number.
func (th *tcpHost) nextISS() uint32 {
	th.issSeq += 0x3d54a9
	return th.issSeq
}

// TCPAddr is the net.Addr for simulated TCP endpoints.
type TCPAddr struct {
	IP   pkt.IP
	Port uint16
}

func (a TCPAddr) Network() string { return "tcp" }
func (a TCPAddr) String() string  { return fmt.Sprintf("%s:%d", a.IP, a.Port) }

func parseHostPort(addr string) (pkt.IP, uint16, error) {
	i := strings.LastIndexByte(addr, ':')
	if i < 0 {
		return 0, 0, fmt.Errorf("netsim: address %q missing port", addr)
	}
	ip, err := pkt.ParseIP(addr[:i])
	if err != nil {
		return 0, 0, err
	}
	port, err := strconv.Atoi(addr[i+1:])
	if err != nil || port <= 0 || port > 0xffff {
		return 0, 0, fmt.Errorf("netsim: bad port in %q", addr)
	}
	return ip, uint16(port), nil
}

// seq arithmetic on the 32-bit circle.
func seqLT(a, b uint32) bool { return int32(a-b) < 0 }
func seqLE(a, b uint32) bool { return int32(a-b) <= 0 }

// --- Listener ---------------------------------------------------------

// TCPListener accepts simulated TCP connections on a node port.
type TCPListener struct {
	node *Node
	port uint16
	ip   pkt.IP

	// RecvWindow overrides the receive buffer capacity of accepted
	// connections (for flow-control experiments). Zero means default.
	// Set before connections arrive.
	RecvWindow int

	backlog   []*TCPConn
	pending   int // conns in SYN_RCVD on our behalf
	acceptors []*gwaiter
	tokens    tokenPool
	closed    bool
}

// ListenTCP binds a listener on port across all of the node's interfaces.
func ListenTCP(nd *Node, port uint16) (*TCPListener, error) {
	n := nd.net
	n.gate.mu.Lock()
	defer n.gate.mu.Unlock()
	th := nd.tcpHost()
	if port == 0 {
		return nil, fmt.Errorf("netsim: listen port must be nonzero")
	}
	if _, dup := th.listeners[port]; dup {
		return nil, fmt.Errorf("netsim: %s port %d already listening", nd.Name, port)
	}
	if len(nd.Ifaces) == 0 {
		return nil, fmt.Errorf("netsim: %s has no interfaces", nd.Name)
	}
	l := &TCPListener{node: nd, port: port, ip: nd.Ifaces[0].IP}
	th.listeners[port] = l
	return l, nil
}

// Addr implements net.Listener.
func (l *TCPListener) Addr() net.Addr { return TCPAddr{IP: l.ip, Port: l.port} }

// Accept implements net.Listener. It parks the calling goroutine until the
// handshake for a queued connection completes.
func (l *TCPListener) Accept() (net.Conn, error) {
	n := l.node.net
	g := n.gate
	g.mu.Lock()
	defer g.mu.Unlock()
	for {
		if len(l.backlog) > 0 {
			c := l.backlog[0]
			l.backlog = l.backlog[1:]
			c.lst = nil
			// When the acceptor is a goroutine the gate cannot track (the
			// server's own accept loop), the conn is about to be handed to
			// an equally invisible handler goroutine: deposit a runnable
			// token on the conn so the gate waits for that handler to
			// reach its first park (see TCPConn.claim). A tracked acceptor
			// is already accounted for and needs no extra token.
			if !g.has(curGID()) {
				c.inheritPending = true
				g.grantPool(&c.tokens)
			}
			return c, nil
		}
		if l.closed {
			return nil, net.ErrClosed
		}
		w := &gwaiter{}
		l.acceptors = append(l.acceptors, w)
		g.park(w, &l.tokens)
		l.dropAcceptor(w)
	}
}

func (l *TCPListener) dropAcceptor(w *gwaiter) {
	for i, x := range l.acceptors {
		if x == w {
			l.acceptors = append(l.acceptors[:i], l.acceptors[i+1:]...)
			return
		}
	}
}

// Close implements net.Listener: stops accepting, aborts handshakes in
// flight and queued-but-unaccepted connections.
func (l *TCPListener) Close() error {
	n := l.node.net
	g := n.gate
	g.mu.Lock()
	defer g.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	th := l.node.tcpHost()
	delete(th.listeners, l.port)
	// Abort connections still owned by the listener, in deterministic order.
	var doomed []*TCPConn
	for _, c := range th.conns {
		if c.lst == l {
			doomed = append(doomed, c)
		}
	}
	doomed = append(doomed, l.backlog...)
	l.backlog = nil
	sort.Slice(doomed, func(i, j int) bool {
		return doomed[i].key.remoteIP < doomed[j].key.remoteIP ||
			(doomed[i].key.remoteIP == doomed[j].key.remoteIP && doomed[i].key.remotePort < doomed[j].key.remotePort)
	})
	for _, c := range doomed {
		c.sendSeg(pkt.TCPFlagRST|pkt.TCPFlagACK, c.sndNxt, nil)
		c.fail(ErrConnReset)
	}
	for _, w := range l.acceptors {
		g.wake(w)
	}
	l.acceptors = nil
	for l.tokens.n > 0 {
		g.releasePool(&l.tokens)
	}
	return nil
}

// onSYN handles a connection request addressed to the listener.
func (l *TCPListener) onSYN(localIP pkt.IP, srcIP pkt.IP, seg *pkt.TCPSegment) {
	th := l.node.tcpHost()
	if l.pending+len(l.backlog) >= tcpBacklogLimit {
		return // silently dropped; the client's SYN retransmit will retry
	}
	c := newTCPConn(l.node, tcpKey{localPort: seg.DstPort, remoteIP: srcIP, remotePort: seg.SrcPort}, localIP)
	if l.RecvWindow > 0 {
		c.rcvCap = l.RecvWindow
	}
	c.lst = l
	c.state = tcpSynRcvd
	c.rcvNxt = seg.Seq + 1
	c.sndWnd = uint32(seg.Window)
	th.conns[c.key] = c
	l.pending++
	c.sendSeg(pkt.TCPFlagSYN|pkt.TCPFlagACK, c.iss, nil)
	c.sndNxt = c.iss + 1
	c.armRTO()
}

// connReady moves an established connection to the accept queue.
func (l *TCPListener) connReady(c *TCPConn) {
	l.pending--
	l.backlog = append(l.backlog, c)
	g := l.node.net.gate
	for _, w := range l.acceptors {
		if !w.woken {
			g.wake(w)
			break
		}
	}
}

// --- Connection -------------------------------------------------------

type oooSeg struct {
	seq  uint32
	data []byte
}

// TCPConn is a simulated TCP connection satisfying net.Conn.
type TCPConn struct {
	node    *Node
	key     tcpKey
	localIP pkt.IP
	state   tcpState
	lst     *TCPListener // owning listener while un-accepted

	// Send side. sndBuf[0] holds the byte at sequence sndUna (once
	// established); SYN and FIN occupy phantom sequence slots handled in
	// the state machine, not the buffer.
	iss       uint32
	sndBuf    []byte
	sndUna    uint32
	sndNxt    uint32
	sndWnd    uint32
	finQueued bool
	finSent   bool
	finAcked  bool
	finSeq    uint32

	// Retransmission.
	rto     time.Duration
	retries int
	rtxGen  uint64
	rtx     sim.Timer
	twGen   uint64
	tw      sim.Timer

	// Receive side.
	rcvCap     int
	rcvBuf     []byte
	rcvNxt     uint32
	advertised uint32
	ooo        []oooSeg
	oooBytes   int
	finPend    bool
	finPendSeq uint32
	rcvFIN     bool

	// Lifecycle.
	err    error
	closed bool

	readers []*gwaiter
	writers []*gwaiter
	opener  *gwaiter
	tokens  tokenPool

	inheritPending bool

	// Virtual-time absolute deadlines; zero means none.
	rdDeadline time.Duration
	wrDeadline time.Duration

	// Retransmits counts RTO-driven resends, for transcripts and tests.
	Retransmits int
}

func newTCPConn(nd *Node, key tcpKey, localIP pkt.IP) *TCPConn {
	return &TCPConn{
		node:    nd,
		key:     key,
		localIP: localIP,
		iss:     nd.tcpHost().nextISS(),
		rto:     tcpInitialRTO,
		rcvCap:  tcpRecvBufCap,
	}
}

func (c *TCPConn) nw() *Network          { return c.node.net }
func (c *TCPConn) sched() *sim.Scheduler { return c.node.net.Sched }

// DialTCP opens a connection from nd to addr ("a.b.c.d:port"), blocking
// (under the virtual clock) until the handshake completes or timeout
// expires. Call it from a gated goroutine while RunGated drives the clock.
func DialTCP(nd *Node, addr string, timeout time.Duration) (net.Conn, error) {
	rip, rport, err := parseHostPort(addr)
	if err != nil {
		return nil, err
	}
	n := nd.net
	g := n.gate
	g.mu.Lock()
	defer g.mu.Unlock()
	r, ok := nd.lookupRoute(rip)
	if !ok {
		return nil, fmt.Errorf("netsim: dial %s: %w", addr, ErrNoRoute)
	}
	th := nd.tcpHost()
	var key tcpKey
	for {
		th.eph++
		port := 33000 + th.eph%16384
		key = tcpKey{localPort: port, remoteIP: rip, remotePort: rport}
		if _, busy := th.conns[key]; !busy {
			if _, listening := th.listeners[port]; !listening {
				break
			}
		}
	}
	c := newTCPConn(nd, key, r.Iface.IP)
	c.state = tcpSynSent
	th.conns[key] = c
	c.sendSeg(pkt.TCPFlagSYN, c.iss, nil)
	c.sndUna = c.iss
	c.sndNxt = c.iss + 1
	c.armRTO()

	w := &gwaiter{}
	if timeout > 0 {
		n.armTimeout(w, timeout)
	}
	c.opener = w
	g.park(w, nil)
	c.opener = nil
	if w.timedOut {
		c.drop()
		return nil, fmt.Errorf("netsim: dial %s: i/o timeout", addr)
	}
	if c.err != nil {
		return nil, fmt.Errorf("netsim: dial %s: %w", addr, c.err)
	}
	if c.state != tcpEstablished {
		return nil, fmt.Errorf("netsim: dial %s: connection closed during handshake", addr)
	}
	return c, nil
}

// Dialer returns a dial function bound to nd, shaped for
// jclient.WithDialer: the transport-agnostic bridge between the real
// client code and the simulated network.
func Dialer(nd *Node, timeout time.Duration) func(addr string) (net.Conn, error) {
	return func(addr string) (net.Conn, error) { return DialTCP(nd, addr, timeout) }
}

// claim resolves the pending inherited token deposited by Accept. If the
// first goroutine to touch the conn is one the gate already tracks (a
// harness actor serving its own accept), the anonymous token is redundant
// and released; an untracked goroutine (a spawned server handler) keeps it
// to consume at its first park. Called with gate.mu held.
func (c *TCPConn) claim() {
	if !c.inheritPending {
		return
	}
	c.inheritPending = false
	g := c.nw().gate
	if g.has(curGID()) {
		g.releasePool(&c.tokens)
	}
}

// LocalAddr implements net.Conn.
func (c *TCPConn) LocalAddr() net.Addr { return TCPAddr{IP: c.localIP, Port: c.key.localPort} }

// RemoteAddr implements net.Conn. Its String() is re-dialable through the
// same node, which is what jclient's auto-resume path relies on.
func (c *TCPConn) RemoteAddr() net.Addr {
	return TCPAddr{IP: c.key.remoteIP, Port: c.key.remotePort}
}

// State reports the connection state name (for transcripts and tests).
func (c *TCPConn) State() string {
	c.nw().gate.mu.Lock()
	defer c.nw().gate.mu.Unlock()
	return c.state.String()
}

// SetDeadline implements net.Conn.
func (c *TCPConn) SetDeadline(t time.Time) error {
	c.SetReadDeadline(t)
	return c.SetWriteDeadline(t)
}

// SetReadDeadline implements net.Conn. The wall-clock deadline is mapped
// onto the virtual clock by its distance from real now, which is how
// callers like the subscription hub build deadlines (time.Now().Add(d)).
func (c *TCPConn) SetReadDeadline(t time.Time) error {
	g := c.nw().gate
	g.mu.Lock()
	defer g.mu.Unlock()
	c.claim()
	c.rdDeadline = c.virtualDeadline(t)
	return nil
}

// SetWriteDeadline implements net.Conn.
func (c *TCPConn) SetWriteDeadline(t time.Time) error {
	g := c.nw().gate
	g.mu.Lock()
	defer g.mu.Unlock()
	c.claim()
	c.wrDeadline = c.virtualDeadline(t)
	return nil
}

func (c *TCPConn) virtualDeadline(t time.Time) time.Duration {
	if t.IsZero() {
		return 0
	}
	d := time.Until(t)
	if d < 0 {
		d = time.Nanosecond
	}
	return c.sched().Now() + d
}

// Read implements net.Conn.
func (c *TCPConn) Read(b []byte) (int, error) {
	g := c.nw().gate
	g.mu.Lock()
	defer g.mu.Unlock()
	c.claim()
	for {
		if c.closed {
			return 0, net.ErrClosed
		}
		if len(c.rcvBuf) > 0 {
			n := copy(b, c.rcvBuf)
			c.rcvBuf = c.rcvBuf[n:]
			if len(c.rcvBuf) == 0 {
				c.rcvBuf = nil
			}
			c.maybeWindowUpdate()
			return n, nil
		}
		if c.rcvFIN {
			return 0, io.EOF
		}
		if c.err != nil {
			return 0, c.err
		}
		w := &gwaiter{}
		if c.rdDeadline != 0 {
			now := c.sched().Now()
			if now >= c.rdDeadline {
				return 0, os.ErrDeadlineExceeded
			}
			c.nw().armTimeout(w, c.rdDeadline-now)
		}
		c.readers = append(c.readers, w)
		g.park(w, &c.tokens)
		dropWaiter(&c.readers, w)
		if w.timedOut {
			return 0, os.ErrDeadlineExceeded
		}
	}
}

// Write implements net.Conn. It queues data into the send buffer, pumping
// segments as the peer's window allows, and blocks when the buffer fills.
func (c *TCPConn) Write(b []byte) (int, error) {
	g := c.nw().gate
	g.mu.Lock()
	defer g.mu.Unlock()
	c.claim()
	total := 0
	for len(b) > 0 {
		if c.closed || c.finQueued {
			return total, net.ErrClosed
		}
		if c.err != nil {
			return total, c.err
		}
		if c.state != tcpEstablished && c.state != tcpCloseWait {
			if c.state == tcpSynSent || c.state == tcpSynRcvd {
				// Not yet established (possible only via races with
				// Accept); wait like a full buffer would.
			} else {
				return total, net.ErrClosed
			}
		}
		space := tcpSendBufCap - len(c.sndBuf)
		if space > 0 && (c.state == tcpEstablished || c.state == tcpCloseWait) {
			n := len(b)
			if n > space {
				n = space
			}
			c.sndBuf = append(c.sndBuf, b[:n]...)
			b = b[n:]
			total += n
			c.pump()
			continue
		}
		w := &gwaiter{}
		if c.wrDeadline != 0 {
			now := c.sched().Now()
			if now >= c.wrDeadline {
				return total, os.ErrDeadlineExceeded
			}
			c.nw().armTimeout(w, c.wrDeadline-now)
		}
		c.writers = append(c.writers, w)
		g.park(w, &c.tokens)
		dropWaiter(&c.writers, w)
		if w.timedOut {
			return total, os.ErrDeadlineExceeded
		}
	}
	return total, nil
}

// Close implements net.Conn: graceful shutdown. Buffered data is still
// delivered, followed by FIN; blocked readers and writers are released.
func (c *TCPConn) Close() error {
	g := c.nw().gate
	g.mu.Lock()
	defer g.mu.Unlock()
	c.inheritPending = false
	// Handlers exit through Close rather than another park; return any
	// runnable tokens still attributed to this connection.
	for c.tokens.n > 0 {
		g.releasePool(&c.tokens)
	}
	if c.closed {
		return nil
	}
	c.closed = true
	switch c.state {
	case tcpSynSent, tcpSynRcvd:
		c.sendSeg(pkt.TCPFlagRST|pkt.TCPFlagACK, c.sndNxt, nil)
		c.fail(net.ErrClosed)
	case tcpEstablished, tcpCloseWait:
		c.finQueued = true
		c.pump()
	}
	c.wakeAll()
	return nil
}

func (c *TCPConn) wakeAll() {
	g := c.nw().gate
	for _, w := range c.readers {
		g.wake(w)
	}
	for _, w := range c.writers {
		g.wake(w)
	}
	if c.opener != nil {
		g.wake(c.opener)
	}
}

func dropWaiter(list *[]*gwaiter, w *gwaiter) {
	for i, x := range *list {
		if x == w {
			*list = append((*list)[:i], (*list)[i+1:]...)
			return
		}
	}
}

// --- Protocol engine (runs under gate.mu, inside simulation events) ----

// sendSeg emits one segment with the current ack/window state.
func (c *TCPConn) sendSeg(flags byte, seq uint32, payload []byte) {
	wnd := c.rcvSpace()
	if wnd > 0xffff {
		wnd = 0xffff
	}
	c.advertised = uint32(wnd)
	seg := pkt.TCPSegment{
		SrcPort: c.key.localPort,
		DstPort: c.key.remotePort,
		Seq:     seq,
		Ack:     c.rcvNxt,
		Flags:   flags,
		Window:  uint16(wnd),
		Payload: payload,
	}
	h := pkt.IPv4Header{Protocol: pkt.ProtoTCP, Src: c.localIP, Dst: c.key.remoteIP}
	// Send errors (node down, no route during a partition) are dropped
	// packets as far as TCP is concerned; the RTO recovers or gives up.
	_ = c.node.SendIP(h, seg.Encode(c.localIP, c.key.remoteIP))
}

func (c *TCPConn) rcvSpace() int {
	s := c.rcvCap - len(c.rcvBuf)
	if s < 0 {
		s = 0
	}
	return s
}

// pump transmits whatever the peer's window (and MSS) allows, then FIN if
// queued and everything else is out.
func (c *TCPConn) pump() {
	if c.state != tcpEstablished && c.state != tcpCloseWait {
		return
	}
	for {
		inFlight := c.sndNxt - c.sndUna
		avail := uint32(len(c.sndBuf)) - inFlight
		if avail == 0 {
			if c.finQueued && !c.finSent {
				c.finSeq = c.sndNxt
				c.sendSeg(pkt.TCPFlagFIN|pkt.TCPFlagACK, c.sndNxt, nil)
				c.sndNxt++
				c.finSent = true
				if c.state == tcpEstablished {
					c.state = tcpFinWait1
				} else {
					c.state = tcpLastAck
				}
				c.armRTO()
			}
			return
		}
		var usable uint32
		if c.sndWnd > inFlight {
			usable = c.sndWnd - inFlight
		}
		n := avail
		if n > usable {
			n = usable
		}
		if n > tcpMSS {
			n = tcpMSS
		}
		if n == 0 {
			// Zero (or exhausted) window with pending data and nothing in
			// flight: send a 1-byte probe so a lost window update can
			// never stall the connection; the RTO keeps probing.
			if inFlight == 0 {
				off := c.sndNxt - c.sndUna
				c.sendSeg(pkt.TCPFlagACK, c.sndNxt, c.sndBuf[off:off+1])
				c.sndNxt++
				c.armRTO()
			}
			return
		}
		off := c.sndNxt - c.sndUna
		c.sendSeg(pkt.TCPFlagACK|pkt.TCPFlagPSH, c.sndNxt, c.sndBuf[off:off+n])
		c.sndNxt += n
		c.armRTO()
	}
}

// armRTO starts the retransmission timer if it is not already pending.
func (c *TCPConn) armRTO() {
	if c.rtx != (sim.Timer{}) {
		return
	}
	c.rtxGen++
	c.rtx = c.sched().AfterEventTimer(c.rto, tcpConnRTO, c, c.rtxGen)
}

func (c *TCPConn) stopRTO() {
	if c.rtx != (sim.Timer{}) {
		c.rtx.Stop()
		c.rtx = sim.Timer{}
	}
	c.rtxGen++
}

// restartRTO resets backoff after forward progress.
func (c *TCPConn) restartRTO() {
	c.stopRTO()
	c.retries = 0
	c.rto = tcpInitialRTO
	if c.outstanding() {
		c.armRTO()
	}
}

func (c *TCPConn) outstanding() bool {
	if c.state == tcpSynSent || c.state == tcpSynRcvd {
		return true
	}
	return c.sndNxt != c.sndUna
}

// tcpConnRTO is the pre-bound retransmission timeout handler.
func tcpConnRTO(arg any, aux uint64) {
	c := arg.(*TCPConn)
	if aux != c.rtxGen || c.state == tcpClosed {
		return
	}
	c.rtx = sim.Timer{}
	if !c.outstanding() {
		return
	}
	c.retries++
	if c.retries > tcpMaxRetries {
		c.sendSeg(pkt.TCPFlagRST|pkt.TCPFlagACK, c.sndNxt, nil)
		c.fail(fmt.Errorf("netsim: %s: connection timed out", c.key))
		return
	}
	c.rto *= 2
	if c.rto > tcpMaxRTO {
		c.rto = tcpMaxRTO
	}
	c.Retransmits++
	c.node.tcpHost().retransmits++
	switch c.state {
	case tcpSynSent:
		c.sendSeg(pkt.TCPFlagSYN, c.iss, nil)
	case tcpSynRcvd:
		c.sendSeg(pkt.TCPFlagSYN|pkt.TCPFlagACK, c.iss, nil)
	default:
		unacked := c.sndNxt - c.sndUna
		dataUnacked := unacked
		if c.finSent && !c.finAcked && dataUnacked > 0 {
			dataUnacked-- // FIN occupies the last sequence slot
		}
		if dataUnacked > 0 {
			n := dataUnacked
			if n > tcpMSS {
				n = tcpMSS
			}
			c.sendSeg(pkt.TCPFlagACK|pkt.TCPFlagPSH, c.sndUna, c.sndBuf[:n])
		} else if c.finSent && !c.finAcked {
			c.sendSeg(pkt.TCPFlagFIN|pkt.TCPFlagACK, c.finSeq, nil)
		}
	}
	c.armRTO()
}

// tcpConnTimeWait expires the TIME_WAIT state.
func tcpConnTimeWait(arg any, aux uint64) {
	c := arg.(*TCPConn)
	if aux != c.twGen || c.state != tcpTimeWait {
		return
	}
	c.drop()
}

func (c *TCPConn) enterTimeWait() {
	c.state = tcpTimeWait
	c.stopRTO()
	c.twGen++
	c.tw = c.sched().AfterEventTimer(tcpTimeWaitDur, tcpConnTimeWait, c, c.twGen)
}

// drop removes the connection from the node's table and stops timers.
func (c *TCPConn) drop() {
	c.stopRTO()
	if c.tw != (sim.Timer{}) {
		c.tw.Stop()
		c.tw = sim.Timer{}
	}
	c.twGen++
	c.state = tcpClosed
	if c.lst != nil {
		c.lst.pending--
		c.lst = nil
	}
	th := c.node.tcp
	if th != nil && th.conns[c.key] == c {
		delete(th.conns, c.key)
	}
}

// fail tears the connection down with err and releases all blocked callers.
func (c *TCPConn) fail(err error) {
	if c.err == nil {
		c.err = err
	}
	c.drop()
	c.wakeAll()
}

// onSegment is the receive-path state machine.
func (c *TCPConn) onSegment(seg *pkt.TCPSegment) {
	if seg.Flags&pkt.TCPFlagRST != 0 {
		if c.state == tcpSynSent && seg.Ack != c.iss+1 {
			return // RST not for our SYN
		}
		if c.state == tcpTimeWait {
			c.drop()
			return
		}
		c.fail(ErrConnReset)
		return
	}
	switch c.state {
	case tcpSynSent:
		if seg.Flags&pkt.TCPFlagSYN != 0 && seg.Flags&pkt.TCPFlagACK != 0 && seg.Ack == c.iss+1 {
			c.rcvNxt = seg.Seq + 1
			c.sndUna = c.iss + 1
			c.sndNxt = c.iss + 1
			c.sndWnd = uint32(seg.Window)
			c.state = tcpEstablished
			c.restartRTO()
			c.sendSeg(pkt.TCPFlagACK, c.sndNxt, nil)
			if c.opener != nil {
				c.nw().gate.wake(c.opener)
			}
			c.pump()
		}
		return
	case tcpSynRcvd:
		if seg.Flags&pkt.TCPFlagSYN != 0 && seg.Flags&pkt.TCPFlagACK == 0 {
			// Duplicate SYN: our SYN-ACK was lost.
			c.sendSeg(pkt.TCPFlagSYN|pkt.TCPFlagACK, c.iss, nil)
			return
		}
		if seg.Flags&pkt.TCPFlagACK == 0 || seg.Ack != c.iss+1 {
			return
		}
		c.sndUna = c.iss + 1
		c.sndWnd = uint32(seg.Window)
		c.state = tcpEstablished
		c.restartRTO()
		if c.lst != nil {
			c.lst.connReady(c)
		}
		// Fall through: the handshake ACK may carry data.
	case tcpTimeWait:
		// Re-ACK a retransmitted FIN; nothing else matters here.
		if seg.Flags&pkt.TCPFlagFIN != 0 {
			c.sendSeg(pkt.TCPFlagACK, c.sndNxt, nil)
		}
		return
	case tcpClosed:
		return
	}

	progressed := false
	if seg.Flags&pkt.TCPFlagACK != 0 && seqLE(c.sndUna, seg.Ack) && seqLE(seg.Ack, c.sndNxt) {
		if seqLT(c.sndUna, seg.Ack) {
			acked := seg.Ack - c.sndUna
			dataAcked := acked
			if dataAcked > uint32(len(c.sndBuf)) {
				dataAcked = uint32(len(c.sndBuf)) // FIN's phantom slot
			}
			c.sndBuf = c.sndBuf[dataAcked:]
			if len(c.sndBuf) == 0 {
				c.sndBuf = nil
			}
			c.sndUna = seg.Ack
			if c.finSent && seg.Ack == c.finSeq+1 {
				c.finAcked = true
			}
			progressed = true
		}
		c.sndWnd = uint32(seg.Window)
	}

	gotData := c.acceptData(seg)

	if progressed {
		c.restartRTO()
		switch {
		case c.state == tcpFinWait1 && c.finAcked:
			c.state = tcpFinWait2
		case c.state == tcpClosing && c.finAcked:
			c.enterTimeWait()
		case c.state == tcpLastAck && c.finAcked:
			c.drop()
			return
		}
		// Freed buffer space: release blocked writers.
		g := c.nw().gate
		for _, w := range c.writers {
			g.wake(w)
		}
	}

	if gotData {
		// Acknowledge received data (and any FIN) with the updated window.
		c.sendSeg(pkt.TCPFlagACK, c.sndNxt, nil)
		g := c.nw().gate
		for _, w := range c.readers {
			g.wake(w)
		}
	}

	c.pump()
}

// acceptData queues in-order payload, stashes out-of-order payload, and
// sequences FIN. Returns true if an ACK should be generated.
func (c *TCPConn) acceptData(seg *pkt.TCPSegment) bool {
	acked := false
	if len(seg.Payload) > 0 {
		if seqLE(seg.Seq, c.rcvNxt) {
			skip := c.rcvNxt - seg.Seq
			if skip < uint32(len(seg.Payload)) {
				rest := seg.Payload[skip:]
				space := c.rcvSpace()
				take := len(rest)
				if take > space {
					take = space // overflow dropped; sender retransmits
				}
				c.rcvBuf = append(c.rcvBuf, rest[:take]...)
				c.rcvNxt += uint32(take)
				c.drainOOO()
			}
			acked = true // even pure duplicates refresh the peer's view
		} else {
			// Out of order: hold a copy for reassembly, bounded.
			if c.oooBytes+len(seg.Payload) <= tcpOOOCap && len(c.ooo) < 64 {
				cp := append([]byte(nil), seg.Payload...)
				c.ooo = append(c.ooo, oooSeg{seq: seg.Seq, data: cp})
				c.oooBytes += len(cp)
				sort.Slice(c.ooo, func(i, j int) bool { return seqLT(c.ooo[i].seq, c.ooo[j].seq) })
			}
			acked = true // duplicate ACK tells the peer where the hole is
		}
	}
	if seg.Flags&pkt.TCPFlagFIN != 0 && !c.rcvFIN {
		finSeq := seg.Seq + uint32(len(seg.Payload))
		if finSeq == c.rcvNxt {
			c.consumeFIN()
		} else if seqLT(c.rcvNxt, finSeq) {
			c.finPend = true
			c.finPendSeq = finSeq
		}
		acked = true
	}
	return acked
}

// drainOOO merges stashed segments that have become contiguous.
func (c *TCPConn) drainOOO() {
	for len(c.ooo) > 0 {
		e := c.ooo[0]
		if seqLT(c.rcvNxt, e.seq) {
			break
		}
		c.ooo = c.ooo[1:]
		c.oooBytes -= len(e.data)
		skip := c.rcvNxt - e.seq
		if skip >= uint32(len(e.data)) {
			continue
		}
		rest := e.data[skip:]
		space := c.rcvSpace()
		take := len(rest)
		if take > space {
			take = space
		}
		c.rcvBuf = append(c.rcvBuf, rest[:take]...)
		c.rcvNxt += uint32(take)
		if take < len(rest) {
			break // out of space; sender will retransmit the rest
		}
	}
	if c.finPend && c.rcvNxt == c.finPendSeq {
		c.consumeFIN()
	}
}

// consumeFIN sequences the peer's FIN into the stream.
func (c *TCPConn) consumeFIN() {
	c.rcvNxt++
	c.rcvFIN = true
	c.finPend = false
	switch c.state {
	case tcpEstablished:
		c.state = tcpCloseWait
	case tcpFinWait1:
		// Peer's FIN before the ACK of ours: simultaneous close.
		c.state = tcpClosing
	case tcpFinWait2:
		c.enterTimeWait()
	}
	g := c.nw().gate
	for _, w := range c.readers {
		g.wake(w)
	}
}

// maybeWindowUpdate announces newly freed receive space after a Read, so a
// sender stalled on zero window resumes without waiting for its probe.
func (c *TCPConn) maybeWindowUpdate() {
	if c.state != tcpEstablished && c.state != tcpFinWait1 && c.state != tcpFinWait2 {
		return
	}
	space := uint32(c.rcvSpace())
	if (c.advertised == 0 && space > 0) || space >= c.advertised+uint32(c.rcvCap)/2 {
		c.sendSeg(pkt.TCPFlagACK, c.sndNxt, nil)
	}
}

// --- Node integration -------------------------------------------------

// deliverTCP dispatches a TCP segment to a connection or listener, or
// answers with RST. Payload bytes are copied into connection buffers, so
// the frame is never retained.
func (nd *Node) deliverTCP(ifc *Iface, p *pkt.IPv4Packet) bool {
	if !nd.HasIP(p.Header.Dst) {
		return false // broadcast or misdelivered; TCP ignores it
	}
	var seg pkt.TCPSegment
	if pkt.DecodeTCPInto(&seg, p.Payload, p.Header.Src, p.Header.Dst) != nil {
		return false
	}
	th := nd.tcp
	if th != nil {
		key := tcpKey{localPort: seg.DstPort, remoteIP: p.Header.Src, remotePort: seg.SrcPort}
		if c, ok := th.conns[key]; ok {
			c.onSegment(&seg)
			return false
		}
		if l, ok := th.listeners[seg.DstPort]; ok && !l.closed &&
			seg.Flags&pkt.TCPFlagSYN != 0 && seg.Flags&pkt.TCPFlagACK == 0 {
			l.onSYN(p.Header.Dst, p.Header.Src, &seg)
			return false
		}
	}
	nd.sendTCPRST(p, &seg)
	return false
}

// sendTCPRST answers a segment addressed to nothing (closed port, vanished
// connection) per RFC 793 reset generation.
func (nd *Node) sendTCPRST(p *pkt.IPv4Packet, seg *pkt.TCPSegment) {
	if seg.Flags&pkt.TCPFlagRST != 0 {
		return
	}
	rst := pkt.TCPSegment{SrcPort: seg.DstPort, DstPort: seg.SrcPort}
	if seg.Flags&pkt.TCPFlagACK != 0 {
		rst.Seq = seg.Ack
		rst.Flags = pkt.TCPFlagRST
	} else {
		adv := uint32(len(seg.Payload))
		if seg.Flags&pkt.TCPFlagSYN != 0 {
			adv++
		}
		if seg.Flags&pkt.TCPFlagFIN != 0 {
			adv++
		}
		rst.Ack = seg.Seq + adv
		rst.Flags = pkt.TCPFlagRST | pkt.TCPFlagACK
	}
	h := pkt.IPv4Header{Protocol: pkt.ProtoTCP, Src: p.Header.Dst, Dst: p.Header.Src}
	_ = nd.SendIP(h, rst.Encode(p.Header.Dst, p.Header.Src))
}

// TCPRetransmits reports the node's lifetime count of RTO-driven resends
// (read it after the simulation, or under Locked).
func (nd *Node) TCPRetransmits() int {
	if nd.tcp == nil {
		return 0
	}
	return nd.tcp.retransmits
}

// AbortTCP hard-kills every TCP endpoint on the node without emitting any
// packets, as a crash would: peers discover via RST-on-next-segment or
// retransmission timeout. Used by emulytics kill/restart experiments.
// Call under RunGated's quiescent windows (e.g. from a gated goroutine via
// Locked, or between RunGated slices).
func (nd *Node) AbortTCP() {
	th := nd.tcp
	if th == nil {
		return
	}
	g := nd.net.gate
	keys := make([]tcpKey, 0, len(th.conns))
	for k := range th.conns {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.localPort != b.localPort {
			return a.localPort < b.localPort
		}
		if a.remoteIP != b.remoteIP {
			return a.remoteIP < b.remoteIP
		}
		return a.remotePort < b.remotePort
	})
	for _, k := range keys {
		if c, ok := th.conns[k]; ok {
			c.fail(ErrConnReset)
		}
	}
	ports := make([]int, 0, len(th.listeners))
	for port := range th.listeners {
		ports = append(ports, int(port))
	}
	sort.Ints(ports)
	for _, port := range ports {
		l := th.listeners[uint16(port)]
		delete(th.listeners, uint16(port))
		l.closed = true
		for _, w := range l.acceptors {
			g.wake(w)
		}
		l.acceptors = nil
		l.backlog = nil
		for l.tokens.n > 0 {
			g.releasePool(&l.tokens)
		}
	}
}
