// Package netsim is a deterministic packet-level network simulator: shared
// Ethernet segments, hosts with real ARP/ICMP/UDP behaviour, and
// multi-interface routers with TTL handling, directed-broadcast policy and
// RIP advertising.
//
// Fremont's Explorer Modules were evaluated on the University of Colorado
// campus network in 1993. This package stands in for that network: it
// carries genuine encoded frames (see package pkt) between simulated nodes
// under a virtual clock (see package sim), and reproduces the failure modes
// the paper's evaluation hinges on — reply collisions on broadcast ping,
// hosts that are down when probed, gateways with buggy ICMP handling, proxy
// ARP, and promiscuously re-advertised RIP routes.
package netsim

import (
	"fmt"
	"time"

	"fremont/internal/netsim/pkt"
	"fremont/internal/netsim/sim"
	"fremont/internal/obs"
)

// Network is a collection of segments and nodes sharing one virtual clock.
type Network struct {
	Sched    *sim.Scheduler
	Segments []*Segment
	Nodes    []*Node

	byIP   map[pkt.IP]*Iface
	byName map[string]*Node

	// Slab arenas for the topology objects; see arena.go. Pointers into
	// a slab are stable, so *Node/*Iface handles stay valid forever.
	nodeArena  arena[Node]
	ifaceArena arena[Iface]

	macSeq uint32

	// Process-wide traffic totals (obs.Default()), cached here so the
	// per-frame path in Segment.Transmit never touches the registry lock.
	// Per-segment breakdowns live in Segment.Stats as before.
	mFrames     *obs.Counter
	mBytes      *obs.Counter
	mDropped    *obs.Counter
	mBroadcasts *obs.Counter

	// Engine counters, synced as deltas from Scheduler.Stats after each Run
	// so the per-event hot path never touches the registry.
	mEvents       *obs.Counter
	mTimerStops   *obs.Counter
	mCompactions  *obs.Counter
	lastSchedStat sim.SchedulerStats

	// gate couples external goroutines (a jserver on a simulated
	// listener) to the event loop; see gate.go and RunGated.
	gate *gate

	// crossOut buffers frames transmitted onto portal segments during a
	// conservative-sync window; the owning Cluster drains it at each
	// barrier. Always empty for a standalone network.
	crossOut []crossFrame
}

// New creates an empty network on a fresh scheduler seeded with seed.
func New(seed int64) *Network {
	reg := obs.Default()
	return &Network{
		Sched:        sim.NewScheduler(seed),
		byIP:         map[pkt.IP]*Iface{},
		byName:       map[string]*Node{},
		gate:         newGate(),
		mFrames:      reg.Counter("netsim_frames_total"),
		mBytes:       reg.Counter("netsim_frame_bytes_total"),
		mDropped:     reg.Counter("netsim_dropped_total"),
		mBroadcasts:  reg.Counter("netsim_broadcasts_total"),
		mEvents:      reg.Counter("netsim_sim_events_total"),
		mTimerStops:  reg.Counter("netsim_timer_stops_total"),
		mCompactions: reg.Counter("netsim_queue_compactions_total"),
	}
}

// NewSegment adds a shared segment (an Ethernet wire) carrying the given
// subnet. The default latency and collision parameters model a lightly
// loaded 10 Mb/s Ethernet.
func (n *Network) NewSegment(name string, subnet pkt.Subnet) *Segment {
	seg := &Segment{
		net:             n,
		Name:            name,
		Subnet:          subnet,
		Latency:         500 * time.Microsecond,
		CollisionWindow: 2 * time.Millisecond,
		CollisionFree:   3,
		CollisionProb:   0.008,
		byMAC:           map[pkt.MAC]*Iface{},
	}
	seg.deliverFn = seg.deliver
	n.Segments = append(n.Segments, seg)
	return seg
}

// NewNode adds a node (host or router) with no interfaces yet. Nodes are
// slab-allocated and start with no behaviour state: the ARP cache,
// pending-resolution table, and UDP listener/handler maps are all nil
// until the node first needs them, so an untouched host costs nothing
// beyond its struct and name.
func (n *Network) NewNode(name string) *Node {
	if _, dup := n.byName[name]; dup {
		panic(fmt.Sprintf("netsim: duplicate node name %q", name))
	}
	node := n.nodeArena.alloc()
	*node = Node{
		net:  n,
		ID:   NodeID(len(n.Nodes)),
		Name: name,
		Up:   true,
		// RFC-conformant defaults; builders flip these to model the
		// paper's misbehaving populations.
		RespondsEcho:         true,
		RespondsMask:         false, // "not as widely implemented as echo"
		UDPEchoEnabled:       true,
		TreatsHostZeroAsSelf: true,
		ARPCacheTTL:          20 * time.Minute,
	}
	n.Nodes = append(n.Nodes, node)
	n.byName[name] = node
	return node
}

// NodeByID returns the node with the given index handle.
func (n *Network) NodeByID(id NodeID) *Node { return n.Nodes[id] }

// Node returns the node with the given name, or nil.
func (n *Network) Node(name string) *Node { return n.byName[name] }

// IfaceByIP returns the interface configured with ip, or nil.
func (n *Network) IfaceByIP(ip pkt.IP) *Iface { return n.byIP[ip] }

// nextMAC allocates a distinct MAC address with a Sun-style OUI, so the
// manufacturer heuristics in the analysis code have something to chew on.
func (n *Network) nextMAC() pkt.MAC {
	n.macSeq++
	s := n.macSeq
	return pkt.MAC{0x08, 0x00, 0x20, byte(s >> 16), byte(s >> 8), byte(s)}
}

// SeedMACs offsets this network's MAC allocation sequence. Sharded
// topologies (see Cluster) give each shard a disjoint range so addresses
// stay unique across the whole simulated internetwork, not just within
// one shard.
func (n *Network) SeedMACs(base uint32) { n.macSeq = base }

// Run advances the simulation for d of virtual time.
func (n *Network) Run(d time.Duration) {
	n.Sched.RunFor(d)
	n.syncEngineStats()
}

// syncEngineStats publishes scheduler counter deltas to the registry.
func (n *Network) syncEngineStats() {
	st := n.Sched.Stats()
	n.mEvents.Add(int64(st.Executed - n.lastSchedStat.Executed))
	n.mTimerStops.Add(int64(st.TimersStopped - n.lastSchedStat.TimersStopped))
	n.mCompactions.Add(int64(st.Compactions - n.lastSchedStat.Compactions))
	n.lastSchedStat = st
}

// Now returns the current virtual wall-clock time.
func (n *Network) Now() time.Time { return n.Sched.WallNow() }

// TotalFrames sums frames transmitted across all segments.
func (n *Network) TotalFrames() int {
	total := 0
	for _, s := range n.Segments {
		total += s.Stats.Frames
	}
	return total
}
