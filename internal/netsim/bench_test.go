package netsim

import (
	"fmt"
	"testing"
	"time"

	"fremont/internal/netsim/pkt"
)

// BenchmarkSegmentDelivery measures the wire hot path in isolation:
// encode, collision accounting, and delivery into the receiving stack,
// with no reply traffic (the receivers have echo disabled). The unicast
// case exercises the byMAC index; the broadcast case fans one frame out to
// every attached interface.
func BenchmarkSegmentDelivery(b *testing.B) {
	build := func() (*Network, *Iface, *Iface) {
		n := New(1)
		seg := n.NewSegment("wire", pkt.SubnetOf(pkt.IPv4(10, 0, 0, 0), pkt.MaskBits(24)))
		var first, second *Iface
		for i := 0; i < 16; i++ {
			nd := n.NewNode(fmt.Sprintf("h%d", i))
			nd.RespondsEcho = false // pure receive path, no generated replies
			ifc := nd.AddIface(seg, pkt.IPv4(10, 0, 0, byte(10+i)), pkt.MaskBits(24))
			switch i {
			case 0:
				first = ifc
			case 1:
				second = ifc
			}
		}
		return n, first, second
	}
	frameTo := func(src *Iface, dstMAC pkt.MAC, dstIP pkt.IP) *pkt.Frame {
		icmp := &pkt.ICMPMessage{Type: pkt.ICMPEcho, ID: 7, Seq: 1, Data: []byte("delivery-benchmark")}
		ip := &pkt.IPv4Packet{
			Header:  pkt.IPv4Header{Protocol: pkt.ProtoICMP, Src: src.IP, Dst: dstIP, TTL: 30, ID: 1},
			Payload: icmp.Encode(),
		}
		return &pkt.Frame{Dst: dstMAC, Src: src.MAC, EtherType: pkt.EtherTypeIPv4, Payload: ip.Encode()}
	}

	b.Run("unicast", func(b *testing.B) {
		n, src, dst := build()
		f := frameTo(src, dst.MAC, dst.IP)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			src.Seg.Transmit(src, f)
			n.Run(time.Millisecond)
		}
		b.StopTimer()
		if dst.RxFrames == 0 {
			b.Fatal("no frames delivered")
		}
	})
	b.Run("broadcast", func(b *testing.B) {
		n, src, dst := build()
		f := frameTo(src, pkt.BroadcastMAC, src.Subnet().Broadcast())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			src.Seg.Transmit(src, f)
			n.Run(time.Millisecond)
		}
		b.StopTimer()
		if dst.RxFrames == 0 {
			b.Fatal("no frames delivered")
		}
	})
}
