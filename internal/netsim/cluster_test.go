package netsim

import (
	"testing"
	"time"

	"fremont/internal/netsim/pkt"
)

// twoShardWorld builds the smallest interesting cluster: a host and a
// border router in each of two shards, joined by one bridged trunk.
//
//	a (10.0.0.10) — lanA — ra — trunk ⇄ trunk — rb — lanB — b (10.1.0.10)
func twoShardWorld(t *testing.T, latency time.Duration) (*Cluster, *Network, *Network, *Node, *Node) {
	t.Helper()
	mask := pkt.MaskBits(24)
	lanA := pkt.SubnetOf(pkt.IPv4(10, 0, 0, 0), mask)
	lanB := pkt.SubnetOf(pkt.IPv4(10, 1, 0, 0), mask)
	trunk := pkt.SubnetOf(pkt.IPv4(10, 9, 0, 0), mask)

	n0 := New(1)
	n0.SeedMACs(0)
	segA := n0.NewSegment("lanA", lanA)
	trunkA := n0.NewSegment("trunk", trunk)
	a := n0.NewNode("a")
	a.AddIface(segA, lanA.Addr+10, mask)
	ra := n0.NewNode("ra")
	ra.IsRouter = true
	ra.AddIface(segA, lanA.Addr+1, mask)
	ra.AddIface(trunkA, trunk.Addr+1, mask)
	if err := a.AddDefaultRoute(lanA.Addr + 1); err != nil {
		t.Fatal(err)
	}
	if err := ra.AddRoute(lanB, trunk.Addr+2); err != nil {
		t.Fatal(err)
	}

	n1 := New(2)
	n1.SeedMACs(1 << 20)
	segB := n1.NewSegment("lanB", lanB)
	trunkB := n1.NewSegment("trunk", trunk)
	b := n1.NewNode("b")
	b.AddIface(segB, lanB.Addr+10, mask)
	rb := n1.NewNode("rb")
	rb.IsRouter = true
	rb.AddIface(segB, lanB.Addr+1, mask)
	rb.AddIface(trunkB, trunk.Addr+2, mask)
	if err := b.AddDefaultRoute(lanB.Addr + 1); err != nil {
		t.Fatal(err)
	}
	if err := rb.AddRoute(lanA, trunk.Addr+1); err != nil {
		t.Fatal(err)
	}

	cl := NewCluster([]*Network{n0, n1})
	cl.Bridge(trunkA, trunkB, latency)
	return cl, n0, n1, a, b
}

// TestClusterCrossShardEcho sends a UDP datagram from shard 0 to the echo
// port of a host in shard 1 and expects the reply back — exercising ARP
// across the trunk, portal capture, barrier exchange and injection in
// both directions.
func TestClusterCrossShardEcho(t *testing.T) {
	cl, _, _, a, b := twoShardWorld(t, 2*time.Millisecond)
	defer cl.Close()

	conn, err := a.OpenUDP(5000)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(b.Ifaces[0].IP, 7, []byte("ping across shards")); err != nil {
		t.Fatal(err)
	}
	cl.Run(500 * time.Millisecond)

	ev, ok := conn.TryRecv()
	if !ok {
		t.Fatalf("no echo reply crossed the shard boundary; stats=%+v", cl.Stats())
	}
	if ev.Src != b.Ifaces[0].IP {
		t.Errorf("echo reply from %s, want %s", ev.Src, b.Ifaces[0].IP)
	}
	if string(ev.Payload) != "ping across shards" {
		t.Errorf("echo payload %q", ev.Payload)
	}
	st := cl.Stats()
	// At minimum: ARP request broadcast + reply on the trunk, then the
	// datagram and its echo reply.
	if st.CrossFrames < 4 {
		t.Errorf("CrossFrames = %d, want >= 4", st.CrossFrames)
	}
	if st.Windows == 0 {
		t.Error("no synchronization windows executed")
	}
}

// TestClusterIdleSkip checks that a quiescent cluster does not pay one
// barrier per lookahead: after the exchange dies down, the window loop
// must jump over idle virtual time.
func TestClusterIdleSkip(t *testing.T) {
	cl, _, _, a, b := twoShardWorld(t, 2*time.Millisecond)
	defer cl.Close()

	conn, err := a.OpenUDP(5000)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(b.Ifaces[0].IP, 7, []byte("x")); err != nil {
		t.Fatal(err)
	}
	// An hour of virtual time at a 2ms lookahead would be 1.8M windows if
	// idle time were walked window by window.
	cl.Run(time.Hour)
	st := cl.Stats()
	if st.Windows > 1000 {
		t.Errorf("Windows = %d; idle-window skip is not engaging", st.Windows)
	}
	if st.IdleSkips == 0 {
		t.Error("IdleSkips = 0, want > 0")
	}
	if cl.Now() != time.Hour {
		t.Errorf("Now() = %v, want 1h", cl.Now())
	}
}

// TestClusterDigestDeterminism runs the same two-shard exchange twice and
// expects bit-identical state digests.
func TestClusterDigestDeterminism(t *testing.T) {
	run := func() string {
		cl, _, _, a, b := twoShardWorld(t, 2*time.Millisecond)
		defer cl.Close()
		conn, err := a.OpenUDP(5000)
		if err != nil {
			t.Fatal(err)
		}
		if err := conn.Send(b.Ifaces[0].IP, 7, []byte("digest")); err != nil {
			t.Fatal(err)
		}
		cl.Run(10 * time.Second)
		return cl.Digest()
	}
	d1, d2 := run(), run()
	if d1 != d2 {
		t.Errorf("digests differ across identical runs:\n%s\n%s", d1, d2)
	}
}

// TestBridgeValidation covers the Bridge preconditions.
func TestBridgeValidation(t *testing.T) {
	n0, n1 := New(1), New(2)
	s0 := n0.NewSegment("x", pkt.SubnetOf(pkt.IPv4(10, 0, 0, 0), pkt.MaskBits(24)))
	s1 := n1.NewSegment("y", pkt.SubnetOf(pkt.IPv4(10, 0, 0, 0), pkt.MaskBits(24)))
	cl := NewCluster([]*Network{n0, n1})
	defer cl.Close()

	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	expectPanic("zero latency", func() { cl.Bridge(s0, s1, 0) })
	expectPanic("same shard", func() {
		s2 := n0.NewSegment("z", pkt.SubnetOf(pkt.IPv4(10, 1, 0, 0), pkt.MaskBits(24)))
		cl.Bridge(s0, s2, time.Millisecond)
	})
}
