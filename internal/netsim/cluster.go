package netsim

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"time"

	"fremont/internal/netsim/pkt"
)

// portal marks a Segment as one end of a cross-shard trunk. Frames that
// survive the segment's loss model are captured into the owning shard's
// crossOut buffer (with their arrival time in the peer shard's clock)
// instead of being delivered locally.
type portal struct {
	peer    *Segment
	latency time.Duration
}

// crossFrame is one encoded frame in flight between shards. raw may still
// be referenced by a tap on the sending side (tapRetained), in which case
// the receiving segment must not recycle the buffer.
type crossFrame struct {
	target      *Segment
	at          time.Duration // arrival in the target shard's virtual time
	dst         pkt.MAC
	raw         []byte
	bcast       bool
	tapRetained bool
}

// Cluster couples independent shard Networks into one simulated
// internetwork, executing them in parallel under conservative time
// synchronization.
//
// Each shard is a complete Network with its own Scheduler, event heap and
// random stream; shards interact only through bridged trunk segments.
// The cluster runs all shards concurrently in windows no longer than the
// lookahead — the minimum trunk latency — so a frame transmitted during a
// window cannot arrive before the window ends. Captured frames are
// exchanged at the barrier between windows and injected in a fixed order
// (source-shard index, then capture order), which makes the whole run
// bit-for-bit deterministic regardless of GOMAXPROCS or how the OS
// schedules the shard worker goroutines.
//
// Windows in which no shard has a runnable event and no frame is in
// flight are skipped in O(shards): the clock jumps straight to the next
// event (see Run), so an idle internetwork costs nothing per unit of
// virtual time.
//
// The single-network path (Network.Run) is untouched by all of this: a
// Network that never joins a Cluster has no portals, an always-empty
// crossOut, and executes today's exact event order.
type Cluster struct {
	Shards []*Network

	lookahead time.Duration
	now       time.Duration

	// Persistent per-shard workers; running a window is two channel
	// operations per shard and zero allocations.
	work   []chan time.Duration
	done   chan struct{}
	closed bool

	pending []crossFrame // captured last window, injected next window

	stats ClusterStats
}

// ClusterStats counts the parallel runner's bookkeeping.
type ClusterStats struct {
	Windows     uint64 // synchronization windows executed
	IdleSkips   uint64 // windows skipped because every shard was idle
	CrossFrames uint64 // frames exchanged between shards
}

// NewCluster wraps the given shard networks. The shards must not be run
// directly (via Network.Run) once clustered; drive them through
// Cluster.Run instead.
func NewCluster(shards []*Network) *Cluster {
	cl := &Cluster{
		Shards: shards,
		done:   make(chan struct{}, len(shards)),
	}
	for i := range shards {
		ch := make(chan time.Duration)
		cl.work = append(cl.work, ch)
		go func(net *Network, ch chan time.Duration) {
			for t := range ch {
				net.Sched.RunUntil(t)
				cl.done <- struct{}{}
			}
		}(shards[i], ch)
	}
	return cl
}

// Bridge joins two trunk segments in different shards with the given
// one-way latency. Frames transmitted on either segment are delivered to
// the interfaces attached to the other, latency later. The latency must
// be positive; the smallest latency over all bridges becomes the
// cluster's lookahead, so longer trunks mean longer windows and fewer
// barriers.
func (cl *Cluster) Bridge(a, b *Segment, latency time.Duration) {
	if latency <= 0 {
		panic("netsim: Bridge latency must be positive")
	}
	if a.net == b.net {
		panic("netsim: Bridge endpoints must live in different shards")
	}
	a.portal = &portal{peer: b, latency: latency}
	b.portal = &portal{peer: a, latency: latency}
	if cl.lookahead == 0 || latency < cl.lookahead {
		cl.lookahead = latency
	}
}

// Now returns the cluster's virtual time (the common shard time at the
// last barrier).
func (cl *Cluster) Now() time.Duration { return cl.now }

// Stats returns a snapshot of the runner's counters.
func (cl *Cluster) Stats() ClusterStats { return cl.stats }

// Run advances every shard by d of virtual time under conservative
// synchronization, then publishes engine stats.
func (cl *Cluster) Run(d time.Duration) {
	if cl.closed {
		panic("netsim: Run on a closed Cluster")
	}
	end := cl.now + d
	w := cl.lookahead
	if w <= 0 {
		// No bridges: the shards are fully independent, one window each.
		w = d
	}
	for cl.now < end {
		cl.inject()

		target := cl.now + w
		if target > end {
			target = end
		}
		// Idle-window skip: if nothing is in flight, the next thing that
		// can possibly happen anywhere is the globally earliest queued
		// event. Jump the window so that event falls at its start; the
		// window stays safe because no frame can be transmitted before
		// it (transmitting requires an executing event).
		earliest, any := cl.nextEventAt()
		if !any {
			cl.stats.IdleSkips++
			target = end
		} else if jump := earliest + w; jump > target {
			cl.stats.IdleSkips++
			target = jump
			if target > end {
				target = end
			}
		}

		cl.runWindow(target)
		cl.collect()
		cl.now = target
		cl.stats.Windows++
	}
	for _, sh := range cl.Shards {
		sh.syncEngineStats()
	}
}

// inject schedules every frame captured at the previous barrier into its
// target shard. Order is fixed — source-shard index, then capture order —
// and arrival timestamps are always >= the current barrier time, so the
// target scheduler's (at, seq) ordering makes delivery deterministic.
func (cl *Cluster) inject() {
	for i := range cl.pending {
		cf := &cl.pending[i]
		seg := cf.target
		d := seg.takeJob()
		d.dst = cf.dst
		d.raw = cf.raw
		d.bcast = cf.bcast
		d.tapRetained = cf.tapRetained
		seg.net.Sched.AtEvent(cf.at, seg.deliverFn, d, 0)
		cf.raw = nil
	}
	cl.pending = cl.pending[:0]
}

// nextEventAt returns the earliest queued event across all shards.
func (cl *Cluster) nextEventAt() (time.Duration, bool) {
	var earliest time.Duration
	any := false
	for _, sh := range cl.Shards {
		if at, ok := sh.Sched.NextEventAt(); ok && (!any || at < earliest) {
			earliest = at
			any = true
		}
	}
	return earliest, any
}

// runWindow runs every shard up to target, in parallel. The channel
// handshakes order each worker's memory accesses before the barrier, so
// the cluster goroutine may safely read shard state between windows.
func (cl *Cluster) runWindow(target time.Duration) {
	for _, ch := range cl.work {
		ch <- target
	}
	for range cl.Shards {
		<-cl.done
	}
}

// collect drains each shard's outbound frames into the pending buffer, in
// shard order.
func (cl *Cluster) collect() {
	for _, sh := range cl.Shards {
		if len(sh.crossOut) == 0 {
			continue
		}
		cl.pending = append(cl.pending, sh.crossOut...)
		cl.stats.CrossFrames += uint64(len(sh.crossOut))
		for i := range sh.crossOut {
			sh.crossOut[i] = crossFrame{}
		}
		sh.crossOut = sh.crossOut[:0]
	}
}

// Close shuts down the shard workers. The cluster must not be Run again.
func (cl *Cluster) Close() {
	if cl.closed {
		return
	}
	cl.closed = true
	for _, ch := range cl.work {
		close(ch)
	}
}

// TotalFrames sums frames transmitted across all shards.
func (cl *Cluster) TotalFrames() int {
	total := 0
	for _, sh := range cl.Shards {
		total += sh.TotalFrames()
	}
	return total
}

// Digest hashes the observable state of every shard — node and interface
// traffic counters, ARP caches, segment statistics, scheduler progress —
// into a hex string. Two runs of the same clustered topology must produce
// identical digests regardless of GOMAXPROCS; the determinism tests rely
// on this.
func (cl *Cluster) Digest() string {
	h := sha256.New()
	for si, sh := range cl.Shards {
		fmt.Fprintf(h, "shard %d now=%d executed=%d\n", si, sh.Sched.Now(), sh.Sched.Stats().Executed)
		for _, seg := range sh.Segments {
			st := seg.Stats
			fmt.Fprintf(h, "seg %s f=%d b=%d d=%d bc=%d\n", seg.Name, st.Frames, st.Bytes, st.Dropped, st.Broadcasts)
		}
		for _, nd := range sh.Nodes {
			fmt.Fprintf(h, "node %s up=%t\n", nd.Name, nd.Up)
			for _, ifc := range nd.Ifaces {
				fmt.Fprintf(h, " ifc %s %s tx=%d rx=%d\n", ifc.IP, ifc.MAC, ifc.TxFrames, ifc.RxFrames)
			}
			for _, e := range nd.ARPTable() {
				fmt.Fprintf(h, " arp %s %s %d\n", e.IP, e.MAC, e.Age)
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
