package netsim

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"fremont/internal/netsim/sim"
)

// The gate couples the deterministic single-threaded simulation to real
// operating-system goroutines — the Journal Server's per-connection
// handlers, jclient callers, the emulytics harness actors — so a genuine
// jserver.Server can run on a simulated listener without being rewritten
// as a sim.Proc.
//
// The model mirrors sim.Proc's handover discipline, extended to
// goroutines the simulator did not spawn and cannot instrument:
//
//   - Virtual time advances only while the external world is quiescent.
//     RunGated executes one event at a time and, between events, waits
//     until every known external goroutine is parked in a simulated
//     operation (a TCP Read/Write/Accept/Dial, or a gated Sleep).
//   - A "runnable token" accounts for each external goroutine that is
//     currently executing. Tokens are granted when a waiter is woken by a
//     simulation event and consumed when the goroutine parks again, so
//     the count is exact across the request/response round trips that
//     decide journal apply order.
//   - Goroutines the gate cannot see being born (the server's
//     per-connection handler, spawned by its own accept loop) inherit a
//     token attached to the object that implies their existence: Accept
//     returns a connection carrying one pending token, consumed by the
//     first operation any goroutine performs on that connection.
//
// gateMu also serializes ALL simulator state between the event loop and
// external goroutines: RunGated holds it across each event, and every
// simulated operation an external goroutine performs holds it too.
// Parking releases it; waking re-acquires it. sim.Proc processes never
// contend — they only run inside events, while RunGated holds the lock.
type gate struct {
	mu sync.Mutex

	// running counts external goroutines currently executing (holding a
	// runnable token). Virtual time is frozen while running > 0.
	running int

	// gids holds per-goroutine tokens for goroutines registered through
	// Go/Enter (harness actors). Untracked goroutines (server internals)
	// are accounted through per-object token pools instead.
	gids map[uint64]struct{}

	// vers increments on every token transition; the settle loop in
	// RunGated uses it to detect activity between polls.
	vers uint64
}

// tokenPool is a per-object (connection or listener) pool of runnable
// tokens for goroutines the gate cannot identify. A token parked here
// means "one anonymous goroutine attributed to this object is currently
// running and will come back to park on it".
type tokenPool struct {
	n int
}

// gwaiter is one parked external goroutine.
type gwaiter struct {
	ch  chan struct{} // buffered(1): wake never blocks the event loop
	net *Network      // set by armTimeout for the pre-bound timeout handler

	// Token bookkeeping: what the park consumed, so the wake can regrant
	// the same kind.
	src  int // srcNone, srcGid, srcPool
	gid  uint64
	pool *tokenPool

	woken    bool
	timedOut bool
	timer    sim.Timer
}

const (
	srcNone = iota // parked goroutine held no token (pre-simulation setup)
	srcGid         // token from the per-goroutine registry
	srcPool        // token from an object pool (inherited/anonymous)
)

func newGate() *gate {
	return &gate{gids: map[uint64]struct{}{}}
}

// curGID returns the current goroutine's runtime ID, parsed from the
// stack header ("goroutine N ["). Used only for token bookkeeping at
// park/unpark boundaries, never on a per-frame path.
func curGID() uint64 {
	var buf [32]byte
	n := runtime.Stack(buf[:], false)
	var id uint64
	for _, c := range buf[10:n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}

// enter registers the current goroutine as runnable. Called with mu held.
func (g *gate) enter(gid uint64) {
	if _, dup := g.gids[gid]; dup {
		return
	}
	g.gids[gid] = struct{}{}
	g.running++
	g.vers++
}

// exit unregisters the current goroutine. Called with mu held.
func (g *gate) exit(gid uint64) {
	if _, ok := g.gids[gid]; !ok {
		return
	}
	delete(g.gids, gid)
	g.running--
	g.vers++
}

// grantPool deposits an anonymous runnable token on pool (e.g. for the
// connection handler the server is about to spawn). Called with mu held.
func (g *gate) grantPool(pool *tokenPool) {
	pool.n++
	g.running++
	g.vers++
}

// releasePool withdraws one anonymous token from pool if present (a
// handler exiting via Close rather than a park). Called with mu held.
func (g *gate) releasePool(pool *tokenPool) {
	if pool.n > 0 {
		pool.n--
		g.running--
		g.vers++
	}
}

// park blocks the current goroutine on w until wake is called. mu must be
// held; it is released while blocked and re-acquired before returning.
// pool is the object the goroutine is blocking on (for anonymous-token
// accounting); it may be nil.
func (g *gate) park(w *gwaiter, pool *tokenPool) {
	if w.ch == nil {
		w.ch = make(chan struct{}, 1)
	}
	gid := curGID()
	switch {
	case g.has(gid):
		delete(g.gids, gid)
		g.running--
		w.src, w.gid = srcGid, gid
	case pool != nil && pool.n > 0:
		pool.n--
		g.running--
		w.src, w.pool = srcPool, pool
	default:
		w.src, w.pool = srcNone, pool
	}
	g.vers++
	g.mu.Unlock()
	<-w.ch
	g.mu.Lock()
}

func (g *gate) has(gid uint64) bool {
	_, ok := g.gids[gid]
	return ok
}

// wake makes a parked waiter runnable again, regranting the token kind
// its park consumed. A goroutine that parked before the gate knew it
// (src == srcNone) is promoted to an anonymous pool token so that from
// now on it is accounted exactly. mu must be held. Safe to call more
// than once; only the first call wakes.
func (g *gate) wake(w *gwaiter) {
	if w.woken {
		return
	}
	w.woken = true
	switch w.src {
	case srcGid:
		g.gids[w.gid] = struct{}{}
	case srcPool:
		w.pool.n++
	default:
		if w.pool != nil {
			w.pool.n++
		}
	}
	g.running++
	g.vers++
	w.timer.Stop()
	w.ch <- struct{}{}
}

// wakeTimeout is the pre-bound timer handler for parks with a deadline.
func gateWakeTimeout(arg any, _ uint64) {
	w := arg.(*gwaiter)
	if w.woken {
		return
	}
	w.timedOut = true
	w.net.gate.wake(w)
}

// armTimeout schedules a virtual-time wake for w after d. mu must be held.
func (n *Network) armTimeout(w *gwaiter, d time.Duration) {
	w.net = n
	w.timer = n.Sched.AfterEventTimer(d, gateWakeTimeout, w, 0)
}

// stallLimit is how long RunGated will wait (in real time) for the
// external world to go quiescent before declaring a deadlock. Generous:
// it only bounds genuine hangs, not the common sub-millisecond handoffs.
const stallLimit = 30 * time.Second

// RunGated advances the simulation for d of virtual time while external
// goroutines (a jserver on a simulated listener, jclient callers on
// simulated dialers) interleave deterministically with events: each event
// runs only once every external goroutine has parked again. This is the
// emulytics-mode run loop; Run remains the fast path for simulations with
// no external participants.
func (n *Network) RunGated(d time.Duration) {
	g := n.gate
	deadline := n.Sched.Now() + d
	for {
		g.mu.Lock()
		n.waitQuiet(g)
		s := n.Sched
		if !s.HasEventBefore(deadline) {
			s.AdvanceTo(deadline)
			g.mu.Unlock()
			break
		}
		s.Step()
		g.mu.Unlock()
	}
	n.syncEngineStats()
}

// waitQuiet blocks (polling, releasing mu between polls) until no
// external goroutine holds a runnable token, then settles: it yields the
// OS scheduler a few times and confirms nothing became runnable, closing
// the tiny windows where a goroutine has been handed work through a
// plain channel but has not yet reached its next simulated operation.
// Called and returns with mu held.
func (n *Network) waitQuiet(g *gate) {
	start := time.Now()
	for {
		for g.running > 0 {
			g.mu.Unlock()
			if time.Since(start) > stallLimit {
				g.mu.Lock()
				panic(fmt.Sprintf("netsim: gated simulation stalled: %d external goroutine(s) runnable for %v (missing park?)", g.running, stallLimit))
			}
			time.Sleep(20 * time.Microsecond)
			g.mu.Lock()
		}
		// Settle: give freshly-signaled goroutines a chance to reach
		// their next gated operation before we declare quiescence.
		v := g.vers
		g.mu.Unlock()
		for i := 0; i < 8; i++ {
			runtime.Gosched()
		}
		g.mu.Lock()
		if g.vers == v && g.running == 0 {
			return
		}
	}
}

// Go runs fn as a gated external goroutine: the simulation will not
// advance virtual time while fn is executing between simulated
// operations. Use it for harness actors (managers, explorer drivers)
// that talk to simulated endpoints; goroutines spawned internally by the
// code under test (the server's handlers) are tracked automatically
// through the operations they perform.
func (n *Network) Go(fn func()) {
	g := n.gate
	ready := make(chan struct{})
	go func() {
		gid := curGID()
		g.mu.Lock()
		g.enter(gid)
		g.mu.Unlock()
		close(ready)
		defer func() {
			g.mu.Lock()
			g.exit(gid)
			g.mu.Unlock()
		}()
		fn()
	}()
	<-ready
}

// GatedSleep parks the calling external goroutine for d of virtual time.
// It must be called from a goroutine interacting with the gated
// simulation (one started via Go, or a connection handler); calling it
// with no RunGated loop driving the clock blocks until one runs.
func (n *Network) GatedSleep(d time.Duration) {
	g := n.gate
	g.mu.Lock()
	w := &gwaiter{}
	n.armTimeout(w, d)
	g.park(w, nil)
	g.mu.Unlock()
}

// GatedNow returns the current virtual wall-clock time, safely callable
// from external goroutines.
func (n *Network) GatedNow() time.Time {
	g := n.gate
	g.mu.Lock()
	t := n.Sched.WallNow()
	g.mu.Unlock()
	return t
}

// Locked runs fn holding the simulation lock, so external goroutines can
// safely touch simulator state (send probe packets, read ARP tables)
// between their blocking operations.
func (n *Network) Locked(fn func()) {
	n.gate.mu.Lock()
	defer n.gate.mu.Unlock()
	fn()
}
