package netsim

import (
	"fmt"
	"testing"
	"time"

	"fremont/internal/netsim/pkt"
	"fremont/internal/netsim/sim"
)

// buildChain constructs src — R1 — R2 — ... — Rk — dst, with one /24 wire
// between each pair, and consistent routes in both directions.
func buildChain(t testing.TB, hops int, seed int64) (*Network, *Node, *Node) {
	t.Helper()
	n := New(seed)
	mask := pkt.MaskBits(24)
	subnetAddr := func(i int) pkt.IP { return pkt.IPv4(10, 1, byte(i), 0) }
	segs := make([]*Segment, hops+1)
	for i := 0; i <= hops; i++ {
		segs[i] = n.NewSegment(fmt.Sprintf("wire%d", i),
			pkt.SubnetOf(subnetAddr(i), mask))
	}
	src := n.NewNode("src")
	src.AddIface(segs[0], subnetAddr(0)+10, mask)
	_ = src.AddDefaultRoute(subnetAddr(0) + 1)
	dst := n.NewNode("dst")
	dst.AddIface(segs[hops], subnetAddr(hops)+10, mask)
	_ = dst.AddDefaultRoute(subnetAddr(hops) + 2)

	for i := 1; i <= hops; i++ {
		r := n.NewNode(fmt.Sprintf("r%d", i))
		r.IsRouter = true
		r.AddIface(segs[i-1], subnetAddr(i-1)+1, mask) // left wire, .1
		r.AddIface(segs[i], subnetAddr(i)+2, mask)     // right wire, .2
		// Forward routes (everything to the right goes right, etc.).
		for j := 0; j <= hops; j++ {
			sn := pkt.SubnetOf(subnetAddr(j), mask)
			switch {
			case j < i-1:
				_ = r.AddRoute(sn, subnetAddr(i-1)+2) // previous router's right iface
			case j > i:
				_ = r.AddRoute(sn, subnetAddr(i)+1) // next router's left iface
			}
		}
	}
	return n, src, dst
}

func TestPingAcrossChains(t *testing.T) {
	for hops := 1; hops <= 6; hops++ {
		n, src, dst := buildChain(t, hops, int64(500+hops))
		icmp := src.OpenICMP()
		var ok bool
		var replyFrom pkt.IP
		n.Sched.Spawn("ping", func(p *sim.Proc) {
			m := &pkt.ICMPMessage{Type: pkt.ICMPEcho, ID: uint16(hops), Seq: 1}
			h := pkt.IPv4Header{Protocol: pkt.ProtoICMP, Dst: dst.Ifaces[0].IP, TTL: 30}
			if err := src.SendIP(h, m.Encode()); err != nil {
				t.Error(err)
				return
			}
			for {
				ev, rok := icmp.Recv(p, 10*time.Second)
				if !rok {
					return
				}
				if ev.Msg.Type == pkt.ICMPEchoReply {
					ok = true
					replyFrom = ev.From
					return
				}
			}
		})
		n.Run(30 * time.Second)
		if !ok {
			t.Fatalf("hops=%d: no echo reply", hops)
		}
		if replyFrom != dst.Ifaces[0].IP {
			t.Fatalf("hops=%d: reply from %s", hops, replyFrom)
		}
	}
}

func TestTTLExpiresAtEveryHop(t *testing.T) {
	// A classic traceroute ladder over a 4-router chain: TTL k must expire
	// at router k, and the error must come from that router's NEAR-side
	// interface.
	const hops = 4
	n, src, dst := buildChain(t, hops, 510)
	conn, err := src.OpenUDP(0)
	if err != nil {
		t.Fatal(err)
	}
	icmp := src.OpenICMP()
	froms := map[int]pkt.IP{}
	n.Sched.Spawn("trace", func(p *sim.Proc) {
		for ttl := 1; ttl <= hops; ttl++ {
			if err := conn.SendTTL(dst.Ifaces[0].IP, 33434, []byte("x"), byte(ttl)); err != nil {
				t.Error(err)
				return
			}
			ev, ok := icmp.Recv(p, 10*time.Second)
			if !ok {
				t.Errorf("ttl=%d: no reply", ttl)
				return
			}
			if ev.Msg.Type != pkt.ICMPTimeExceeded {
				t.Errorf("ttl=%d: type %d", ttl, ev.Msg.Type)
				return
			}
			froms[ttl] = ev.From
		}
	})
	n.Run(2 * time.Minute)
	for ttl := 1; ttl <= hops; ttl++ {
		want := pkt.IPv4(10, 1, byte(ttl-1), 1) // router ttl's left iface
		if froms[ttl] != want {
			t.Errorf("ttl=%d: time exceeded from %s, want %s", ttl, froms[ttl], want)
		}
	}
}

func TestTTLExactlyReachesDestination(t *testing.T) {
	// A probe with TTL exactly equal to the hop count must arrive (TTL
	// reaches 1 at the final router, which forwards onto the destination
	// wire before decrementing to 0 would apply).
	const hops = 3
	n, src, dst := buildChain(t, hops, 511)
	conn, _ := src.OpenUDP(0)
	icmp := src.OpenICMP()
	var got ICMPEvent
	var ok bool
	n.Sched.Spawn("probe", func(p *sim.Proc) {
		_ = conn.SendTTL(dst.Ifaces[0].IP, 33434, []byte("x"), byte(hops+1))
		got, ok = icmp.Recv(p, 10*time.Second)
	})
	n.Run(time.Minute)
	if !ok {
		t.Fatal("no reply")
	}
	if got.Msg.Type != pkt.ICMPUnreachable || got.Msg.Code != pkt.UnreachPort {
		t.Fatalf("got type=%d code=%d", got.Msg.Type, got.Msg.Code)
	}
	if got.From != dst.Ifaces[0].IP {
		t.Fatalf("unreachable from %s", got.From)
	}
}
