package pkt

import "fmt"

// TCP flag bits (RFC 793 control bits, low octet of the offset/flags word).
const (
	TCPFlagFIN byte = 0x01
	TCPFlagSYN byte = 0x02
	TCPFlagRST byte = 0x04
	TCPFlagPSH byte = 0x08
	TCPFlagACK byte = 0x10
)

// TCPSegment is an RFC 793 segment without options (data offset 5). The
// simulator's userspace TCP (netsim.DialTCP / netsim.ListenTCP) carries
// jwire frames in these; the checksum covers the RFC 793 pseudo-header,
// computed via the same allocation-free PseudoChecksum the UDP encoder
// uses.
type TCPSegment struct {
	SrcPort uint16
	DstPort uint16
	Seq     uint32
	Ack     uint32
	Flags   byte
	Window  uint16
	Payload []byte
}

const tcpHeaderLen = 20

// Encode serializes the segment. src and dst are the IP addresses used in
// the checksum pseudo-header.
func (t *TCPSegment) Encode(src, dst IP) []byte {
	return t.AppendEncode(nil, src, dst)
}

// AppendEncode serializes the segment onto b (which may be nil or a
// recycled buffer), so retransmission paths can reuse buffers.
func (t *TCPSegment) AppendEncode(b []byte, src, dst IP) []byte {
	w := writer{b: b}
	if cap(w.b)-len(w.b) < tcpHeaderLen+len(t.Payload) {
		grown := make([]byte, len(w.b), len(w.b)+tcpHeaderLen+len(t.Payload))
		copy(grown, w.b)
		w.b = grown
	}
	base := len(w.b)
	w.u16(t.SrcPort)
	w.u16(t.DstPort)
	w.u32(t.Seq)
	w.u32(t.Ack)
	w.u16(uint16(5)<<12 | uint16(t.Flags)) // data offset 5 words, no options
	w.u16(t.Window)
	w.u16(0) // checksum placeholder
	w.u16(0) // urgent pointer (unused)
	w.bytes(t.Payload)
	w.setU16(base+16, PseudoChecksum(src, dst, ProtoTCP, w.b[base:]))
	return w.b
}

// DecodeTCP parses a TCP segment and, when src is nonzero, verifies the
// pseudo-header checksum.
func DecodeTCP(b []byte, src, dst IP) (*TCPSegment, error) {
	t := &TCPSegment{}
	if err := DecodeTCPInto(t, b, src, dst); err != nil {
		return nil, err
	}
	return t, nil
}

// DecodeTCPInto parses into a caller-provided struct, so the receive hot
// path can keep the segment on the stack. t.Payload aliases b.
func DecodeTCPInto(t *TCPSegment, b []byte, src, dst IP) error {
	if len(b) < tcpHeaderLen {
		return overrun("tcp segment", len(b), tcpHeaderLen)
	}
	r := reader{b: b}
	t.SrcPort = r.u16()
	t.DstPort = r.u16()
	t.Seq = r.u32()
	t.Ack = r.u32()
	offFlags := r.u16()
	dataOff := int(offFlags>>12) * 4
	t.Flags = byte(offFlags & 0x3f)
	t.Window = r.u16()
	r.u16() // checksum (verified below over the whole segment)
	r.u16() // urgent pointer
	if dataOff < tcpHeaderLen || dataOff > len(b) {
		return fmt.Errorf("pkt: tcp data offset %d out of range", dataOff)
	}
	if !src.IsZero() {
		if s := PseudoChecksum(src, dst, ProtoTCP, b); s != 0 && s != 0xffff {
			return fmt.Errorf("pkt: tcp checksum mismatch")
		}
	}
	t.Payload = b[dataOff:]
	return r.err
}

// flagNames renders the control bits for transcripts and String.
func tcpFlagString(f byte) string {
	names := ""
	add := func(bit byte, n string) {
		if f&bit != 0 {
			if names != "" {
				names += "|"
			}
			names += n
		}
	}
	add(TCPFlagSYN, "SYN")
	add(TCPFlagFIN, "FIN")
	add(TCPFlagRST, "RST")
	add(TCPFlagPSH, "PSH")
	add(TCPFlagACK, "ACK")
	if names == "" {
		names = "-"
	}
	return names
}

func (t *TCPSegment) String() string {
	return fmt.Sprintf("tcp %d > %d %s seq %d ack %d win %d len %d",
		t.SrcPort, t.DstPort, tcpFlagString(t.Flags), t.Seq, t.Ack, t.Window, len(t.Payload))
}
