package pkt

import "fmt"

// ARP operation codes.
const (
	ARPRequest uint16 = 1
	ARPReply   uint16 = 2
)

// ARPPacket is an RFC 826 ARP packet for IPv4 over Ethernet.
type ARPPacket struct {
	Op        uint16
	SenderMAC MAC
	SenderIP  IP
	TargetMAC MAC
	TargetIP  IP
}

const arpPacketLen = 28

// Encode serializes the ARP packet, including the fixed hardware/protocol
// type preamble for Ethernet/IPv4.
func (a *ARPPacket) Encode() []byte {
	w := writer{b: make([]byte, 0, arpPacketLen)}
	w.u16(1)      // hardware type: Ethernet
	w.u16(0x0800) // protocol type: IPv4
	w.u8(6)       // hardware address length
	w.u8(4)       // protocol address length
	w.u16(a.Op)
	w.mac(a.SenderMAC)
	w.ip(a.SenderIP)
	w.mac(a.TargetMAC)
	w.ip(a.TargetIP)
	return w.b
}

// DecodeARP parses an ARP packet, rejecting non-Ethernet/IPv4 variants.
func DecodeARP(b []byte) (*ARPPacket, error) {
	if len(b) < arpPacketLen {
		return nil, overrun("arp packet", len(b), arpPacketLen)
	}
	r := reader{b: b}
	htype := r.u16()
	ptype := r.u16()
	hlen := r.u8()
	plen := r.u8()
	if htype != 1 || ptype != 0x0800 || hlen != 6 || plen != 4 {
		return nil, fmt.Errorf("pkt: unsupported ARP variant htype=%d ptype=0x%04x hlen=%d plen=%d",
			htype, ptype, hlen, plen)
	}
	a := &ARPPacket{}
	a.Op = r.u16()
	a.SenderMAC = r.mac()
	a.SenderIP = r.ip()
	a.TargetMAC = r.mac()
	a.TargetIP = r.ip()
	return a, r.err
}

func (a *ARPPacket) String() string {
	switch a.Op {
	case ARPRequest:
		return fmt.Sprintf("arp who-has %s tell %s (%s)", a.TargetIP, a.SenderIP, a.SenderMAC)
	case ARPReply:
		return fmt.Sprintf("arp reply %s is-at %s", a.SenderIP, a.SenderMAC)
	}
	return fmt.Sprintf("arp op=%d", a.Op)
}
