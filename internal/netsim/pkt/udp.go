package pkt

import "fmt"

// Well-known UDP ports used by the Explorer Modules.
const (
	PortEcho uint16 = 7   // UDP echo service (EtherHostProbe)
	PortDNS  uint16 = 53  // Domain Name System
	PortRIP  uint16 = 520 // Routing Information Protocol
)

// UDPPacket is an RFC 768 datagram. The checksum is computed over the
// pseudo-header when src/dst IPs are supplied to Encode.
type UDPPacket struct {
	SrcPort uint16
	DstPort uint16
	Payload []byte
}

const udpHeaderLen = 8

// Encode serializes the datagram. src and dst are the IP addresses used in
// the checksum pseudo-header.
func (u *UDPPacket) Encode(src, dst IP) []byte {
	w := writer{b: make([]byte, 0, udpHeaderLen+len(u.Payload))}
	w.u16(u.SrcPort)
	w.u16(u.DstPort)
	w.u16(uint16(udpHeaderLen + len(u.Payload)))
	w.u16(0) // checksum placeholder
	w.bytes(u.Payload)

	sum := PseudoChecksum(src, dst, ProtoUDP, w.b)
	if sum == 0 {
		sum = 0xffff // RFC 768: transmitted zero means "no checksum"
	}
	w.setU16(6, sum)
	return w.b
}

// DecodeUDP parses a UDP datagram and, when src/dst are nonzero, verifies
// the pseudo-header checksum.
func DecodeUDP(b []byte, src, dst IP) (*UDPPacket, error) {
	u := &UDPPacket{}
	if err := DecodeUDPInto(u, b, src, dst); err != nil {
		return nil, err
	}
	return u, nil
}

// DecodeUDPInto parses into a caller-provided struct, so hot receive paths
// can keep the datagram on the stack. u.Payload aliases b.
func DecodeUDPInto(u *UDPPacket, b []byte, src, dst IP) error {
	if len(b) < udpHeaderLen {
		return overrun("udp datagram", len(b), udpHeaderLen)
	}
	r := reader{b: b}
	u.SrcPort = r.u16()
	u.DstPort = r.u16()
	length := int(r.u16())
	cksum := r.u16()
	if length < udpHeaderLen || length > len(b) {
		return fmt.Errorf("pkt: udp length %d out of range", length)
	}
	u.Payload = b[udpHeaderLen:length]
	if cksum != 0 && !src.IsZero() {
		if s := PseudoChecksum(src, dst, ProtoUDP, b[:length]); s != 0 && s != 0xffff {
			return fmt.Errorf("pkt: udp checksum mismatch")
		}
	}
	return r.err
}

func (u *UDPPacket) String() string {
	return fmt.Sprintf("udp %d > %d len %d", u.SrcPort, u.DstPort, len(u.Payload))
}
