package pkt

import "fmt"

// Well-known UDP ports used by the Explorer Modules.
const (
	PortEcho uint16 = 7   // UDP echo service (EtherHostProbe)
	PortDNS  uint16 = 53  // Domain Name System
	PortRIP  uint16 = 520 // Routing Information Protocol
)

// UDPPacket is an RFC 768 datagram. The checksum is computed over the
// pseudo-header when src/dst IPs are supplied to Encode.
type UDPPacket struct {
	SrcPort uint16
	DstPort uint16
	Payload []byte
}

const udpHeaderLen = 8

// Encode serializes the datagram. src and dst are the IP addresses used in
// the checksum pseudo-header.
func (u *UDPPacket) Encode(src, dst IP) []byte {
	w := writer{b: make([]byte, 0, udpHeaderLen+len(u.Payload))}
	w.u16(u.SrcPort)
	w.u16(u.DstPort)
	w.u16(uint16(udpHeaderLen + len(u.Payload)))
	w.u16(0) // checksum placeholder
	w.bytes(u.Payload)

	// Pseudo-header checksum.
	ph := writer{b: make([]byte, 0, 12+len(w.b))}
	ph.ip(src)
	ph.ip(dst)
	ph.u8(0)
	ph.u8(ProtoUDP)
	ph.u16(uint16(len(w.b)))
	ph.bytes(w.b)
	sum := Checksum(ph.b)
	if sum == 0 {
		sum = 0xffff // RFC 768: transmitted zero means "no checksum"
	}
	w.setU16(6, sum)
	return w.b
}

// DecodeUDP parses a UDP datagram and, when src/dst are nonzero, verifies
// the pseudo-header checksum.
func DecodeUDP(b []byte, src, dst IP) (*UDPPacket, error) {
	if len(b) < udpHeaderLen {
		return nil, overrun("udp datagram", len(b), udpHeaderLen)
	}
	r := reader{b: b}
	u := &UDPPacket{}
	u.SrcPort = r.u16()
	u.DstPort = r.u16()
	length := int(r.u16())
	cksum := r.u16()
	if length < udpHeaderLen || length > len(b) {
		return nil, fmt.Errorf("pkt: udp length %d out of range", length)
	}
	u.Payload = b[udpHeaderLen:length]
	if cksum != 0 && !src.IsZero() {
		ph := writer{b: make([]byte, 0, 12+length)}
		ph.ip(src)
		ph.ip(dst)
		ph.u8(0)
		ph.u8(ProtoUDP)
		ph.u16(uint16(length))
		ph.bytes(b[:length])
		if s := Checksum(ph.b); s != 0 && s != 0xffff {
			return nil, fmt.Errorf("pkt: udp checksum mismatch")
		}
	}
	return u, r.err
}

func (u *UDPPacket) String() string {
	return fmt.Sprintf("udp %d > %d len %d", u.SrcPort, u.DstPort, len(u.Payload))
}
