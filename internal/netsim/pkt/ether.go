package pkt

import "fmt"

// EtherType values used by the simulator.
const (
	EtherTypeIPv4 uint16 = 0x0800
	EtherTypeARP  uint16 = 0x0806
)

// Frame is an Ethernet II frame. The simulated segments carry encoded
// frames, and taps (the NIT analog) hand them to passive Explorer Modules
// byte-for-byte.
type Frame struct {
	Dst       MAC
	Src       MAC
	EtherType uint16
	Payload   []byte
}

const frameHeaderLen = 14

// FrameWireLen returns the encoded size of a frame carrying payloadLen
// bytes, letting callers account for a frame's wire cost without encoding
// it (the simulator's drop paths never pay for an encode).
func FrameWireLen(payloadLen int) int { return frameHeaderLen + payloadLen }

// Encode serializes the frame.
func (f *Frame) Encode() []byte {
	return f.AppendEncode(make([]byte, 0, frameHeaderLen+len(f.Payload)))
}

// AppendEncode appends the encoded frame to b and returns the extended
// buffer, so hot paths can reuse scratch buffers across frames.
func (f *Frame) AppendEncode(b []byte) []byte {
	w := writer{b: b}
	w.mac(f.Dst)
	w.mac(f.Src)
	w.u16(f.EtherType)
	w.bytes(f.Payload)
	return w.b
}

// DecodeFrame parses an Ethernet II frame.
func DecodeFrame(b []byte) (*Frame, error) {
	f := &Frame{}
	if err := DecodeFrameInto(f, b); err != nil {
		return nil, err
	}
	return f, nil
}

// DecodeFrameInto parses into a caller-provided struct, so hot receive
// paths can keep the frame on the stack. f.Payload aliases b.
func DecodeFrameInto(f *Frame, b []byte) error {
	if len(b) < frameHeaderLen {
		return overrun("ethernet frame", len(b), frameHeaderLen)
	}
	r := reader{b: b}
	f.Dst = r.mac()
	f.Src = r.mac()
	f.EtherType = r.u16()
	f.Payload = r.rest()
	return r.err
}

func (f *Frame) String() string {
	return fmt.Sprintf("ether %s > %s type 0x%04x len %d", f.Src, f.Dst, f.EtherType, len(f.Payload))
}
