package pkt

import "fmt"

// EtherType values used by the simulator.
const (
	EtherTypeIPv4 uint16 = 0x0800
	EtherTypeARP  uint16 = 0x0806
)

// Frame is an Ethernet II frame. The simulated segments carry encoded
// frames, and taps (the NIT analog) hand them to passive Explorer Modules
// byte-for-byte.
type Frame struct {
	Dst       MAC
	Src       MAC
	EtherType uint16
	Payload   []byte
}

const frameHeaderLen = 14

// Encode serializes the frame.
func (f *Frame) Encode() []byte {
	w := writer{b: make([]byte, 0, frameHeaderLen+len(f.Payload))}
	w.mac(f.Dst)
	w.mac(f.Src)
	w.u16(f.EtherType)
	w.bytes(f.Payload)
	return w.b
}

// DecodeFrame parses an Ethernet II frame.
func DecodeFrame(b []byte) (*Frame, error) {
	if len(b) < frameHeaderLen {
		return nil, overrun("ethernet frame", len(b), frameHeaderLen)
	}
	r := reader{b: b}
	f := &Frame{}
	f.Dst = r.mac()
	f.Src = r.mac()
	f.EtherType = r.u16()
	f.Payload = r.rest()
	return f, r.err
}

func (f *Frame) String() string {
	return fmt.Sprintf("ether %s > %s type 0x%04x len %d", f.Src, f.Dst, f.EtherType, len(f.Payload))
}
