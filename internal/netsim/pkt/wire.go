package pkt

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrTruncated is returned when a packet is shorter than its format
// requires.
var ErrTruncated = errors.New("pkt: truncated packet")

// writer builds a packet buffer in network byte order.
type writer struct {
	b []byte
}

func (w *writer) u8(v byte) { w.b = append(w.b, v) }
func (w *writer) u16(v uint16) {
	w.b = append(w.b, byte(v>>8), byte(v))
}
func (w *writer) u32(v uint32) {
	w.b = append(w.b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
func (w *writer) bytes(p []byte) { w.b = append(w.b, p...) }
func (w *writer) mac(m MAC)      { w.b = append(w.b, m[:]...) }
func (w *writer) ip(ip IP)       { w.u32(uint32(ip)) }

// setU16 patches a big-endian u16 at offset off (for checksums/lengths).
func (w *writer) setU16(off int, v uint16) {
	w.b[off] = byte(v >> 8)
	w.b[off+1] = byte(v)
}

// reader consumes a packet buffer in network byte order.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) remaining() int { return len(r.b) - r.off }

func (r *reader) fail() {
	if r.err == nil {
		r.err = ErrTruncated
	}
}

func (r *reader) u8() byte {
	if r.err != nil || r.remaining() < 1 {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) u16() uint16 {
	if r.err != nil || r.remaining() < 2 {
		r.fail()
		return 0
	}
	v := uint16(r.b[r.off])<<8 | uint16(r.b[r.off+1])
	r.off += 2
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.remaining() < 4 {
		r.fail()
		return 0
	}
	v := uint32(r.b[r.off])<<24 | uint32(r.b[r.off+1])<<16 |
		uint32(r.b[r.off+2])<<8 | uint32(r.b[r.off+3])
	r.off += 4
	return v
}

func (r *reader) mac() MAC {
	var m MAC
	if r.err != nil || r.remaining() < 6 {
		r.fail()
		return m
	}
	copy(m[:], r.b[r.off:])
	r.off += 6
	return m
}

func (r *reader) ip() IP { return IP(r.u32()) }

func (r *reader) bytes(n int) []byte {
	if r.err != nil || r.remaining() < n || n < 0 {
		r.fail()
		return nil
	}
	p := r.b[r.off : r.off+n]
	r.off += n
	return p
}

func (r *reader) rest() []byte {
	p := r.b[r.off:]
	r.off = len(r.b)
	return p
}

// Checksum computes the RFC 1071 Internet checksum over b.
func Checksum(b []byte) uint16 {
	return finishChecksum(sum16(b))
}

// PseudoChecksum computes the Internet checksum of seg prefixed by the
// RFC 768/793 pseudo-header (src, dst, zero, proto, length), without
// materializing the pseudo-header. One's-complement addition commutes, so
// this matches Checksum over an explicit pseudo-header + seg buffer.
func PseudoChecksum(src, dst IP, proto byte, seg []byte) uint16 {
	sum := uint32(src>>16) + uint32(src&0xffff) +
		uint32(dst>>16) + uint32(dst&0xffff) +
		uint32(proto) + uint32(len(seg))
	return finishChecksum(sum + sum16(seg))
}

// sum16 adds b as big-endian 16-bit words. Eight bytes at a time: summing
// 32-bit groups is equivalent under the end-around-carry fold, and a uint64
// accumulator cannot overflow for any packet-sized input.
func sum16(b []byte) uint32 {
	var sum uint64
	for len(b) >= 8 {
		sum += uint64(binary.BigEndian.Uint32(b)) + uint64(binary.BigEndian.Uint32(b[4:]))
		b = b[8:]
	}
	for len(b) >= 2 {
		sum += uint64(binary.BigEndian.Uint16(b))
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint64(b[0]) << 8
	}
	for sum > 0xffffffff {
		sum = sum&0xffffffff + sum>>32
	}
	return uint32(sum)
}

func finishChecksum(sum uint32) uint16 {
	for sum > 0xffff {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

func overrun(what string, got, want int) error {
	return fmt.Errorf("pkt: %s: got %d bytes, need %d: %w", what, got, want, ErrTruncated)
}
