package pkt

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestChecksumKnown(t *testing.T) {
	// Example from RFC 1071 discussions: checksum of a buffer, then the
	// checksum over buffer+checksum must be zero.
	b := []byte{0x45, 0x00, 0x00, 0x3c, 0x1c, 0x46, 0x40, 0x00, 0x40, 0x06,
		0x00, 0x00, 0xac, 0x10, 0x0a, 0x63, 0xac, 0x10, 0x0a, 0x0c}
	sum := Checksum(b)
	b[10] = byte(sum >> 8)
	b[11] = byte(sum)
	if Checksum(b) != 0 {
		t.Fatal("checksum of checksummed buffer is nonzero")
	}
}

func TestChecksumOddLength(t *testing.T) {
	if Checksum([]byte{0xff}) != ^uint16(0xff00) {
		t.Fatal("odd-length checksum pads incorrectly")
	}
}

func TestFrameRoundtrip(t *testing.T) {
	f := &Frame{
		Dst:       MAC{1, 2, 3, 4, 5, 6},
		Src:       MAC{7, 8, 9, 10, 11, 12},
		EtherType: EtherTypeARP,
		Payload:   []byte("hello"),
	}
	b := f.Encode()
	got, err := DecodeFrame(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dst != f.Dst || got.Src != f.Src || got.EtherType != f.EtherType ||
		!bytes.Equal(got.Payload, f.Payload) {
		t.Fatalf("roundtrip mismatch: %+v vs %+v", got, f)
	}
}

func TestFrameTruncated(t *testing.T) {
	if _, err := DecodeFrame(make([]byte, 13)); err == nil {
		t.Fatal("13-byte frame decoded without error")
	}
}

func TestARPRoundtrip(t *testing.T) {
	a := &ARPPacket{
		Op:        ARPRequest,
		SenderMAC: MAC{8, 0, 0x20, 1, 2, 3},
		SenderIP:  IPv4(128, 138, 238, 18),
		TargetIP:  IPv4(128, 138, 238, 7),
	}
	b := a.Encode()
	if len(b) != 28 {
		t.Fatalf("ARP packet length %d, want 28", len(b))
	}
	got, err := DecodeARP(b)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *a {
		t.Fatalf("roundtrip mismatch: %+v vs %+v", got, a)
	}
}

func TestARPRejectsNonEthernet(t *testing.T) {
	a := &ARPPacket{Op: ARPRequest}
	b := a.Encode()
	b[0] = 0 // hardware type 0x0001 -> 0x0001 with high byte zeroed is still 1; flip low byte
	b[1] = 6 // token ring
	if _, err := DecodeARP(b); err == nil {
		t.Fatal("non-Ethernet ARP decoded without error")
	}
}

func TestIPv4Roundtrip(t *testing.T) {
	p := &IPv4Packet{
		Header: IPv4Header{
			TOS:      0,
			ID:       0x1234,
			TTL:      30,
			Protocol: ProtoUDP,
			Src:      IPv4(128, 138, 238, 18),
			Dst:      IPv4(128, 138, 243, 7),
		},
		Payload: []byte{0xde, 0xad, 0xbe, 0xef},
	}
	b := p.Encode()
	got, err := DecodeIPv4(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header != p.Header || !bytes.Equal(got.Payload, p.Payload) {
		t.Fatalf("roundtrip mismatch:\n%+v\n%+v", got, p)
	}
}

func TestIPv4ChecksumDetectsCorruption(t *testing.T) {
	p := &IPv4Packet{Header: IPv4Header{TTL: 1, Protocol: ProtoICMP,
		Src: IPv4(1, 2, 3, 4), Dst: IPv4(5, 6, 7, 8)}}
	b := p.Encode()
	b[8] ^= 0xff // corrupt TTL
	if _, err := DecodeIPv4(b); err == nil {
		t.Fatal("corrupted IPv4 header decoded without error")
	}
}

func TestIPv4RejectsVersion6(t *testing.T) {
	b := make([]byte, 20)
	b[0] = 0x65
	if _, err := DecodeIPv4(b); err == nil {
		t.Fatal("version-6 packet decoded as IPv4")
	}
}

func TestICMPEchoRoundtrip(t *testing.T) {
	m := &ICMPMessage{Type: ICMPEcho, ID: 99, Seq: 3, Data: []byte("fremont")}
	got, err := DecodeICMP(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != ICMPEcho || got.ID != 99 || got.Seq != 3 || string(got.Data) != "fremont" {
		t.Fatalf("roundtrip mismatch: %+v", got)
	}
}

func TestICMPMaskRoundtrip(t *testing.T) {
	m := &ICMPMessage{Type: ICMPMaskReply, ID: 1, Seq: 2, Mask: MaskBits(24)}
	got, err := DecodeICMP(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Mask != MaskBits(24) {
		t.Fatalf("mask = %s, want /24", got.Mask)
	}
}

func TestICMPTimeExceededQuotesOriginal(t *testing.T) {
	orig := &IPv4Packet{
		Header: IPv4Header{TTL: 1, Protocol: ProtoUDP,
			Src: IPv4(1, 1, 1, 1), Dst: IPv4(2, 2, 2, 2)},
		Payload: []byte{0, 7, 0, 8, 0, 12, 0, 0, 0xaa, 0xbb},
	}
	quote := QuoteOriginal(orig.Encode())
	if len(quote) != 28 {
		t.Fatalf("quote length %d, want 28 (IP header + 8)", len(quote))
	}
	m := &ICMPMessage{Type: ICMPTimeExceeded, Original: quote}
	got, err := DecodeICMP(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	// The embedded original must decode enough to recover the flow.
	// (Quoted packets are truncated so the total length check is relaxed
	// by re-reading just the header fields.)
	if len(got.Original) != 28 {
		t.Fatalf("original length %d", len(got.Original))
	}
	inner, err := DecodeIPv4Header(got.Original)
	if err != nil {
		t.Fatal(err)
	}
	if inner.Dst != IPv4(2, 2, 2, 2) || inner.Protocol != ProtoUDP {
		t.Fatalf("inner header mismatch: %+v", inner)
	}
}

func TestICMPChecksumDetectsCorruption(t *testing.T) {
	m := &ICMPMessage{Type: ICMPEcho, ID: 1, Seq: 1}
	b := m.Encode()
	b[4] ^= 0x01
	if _, err := DecodeICMP(b); err == nil {
		t.Fatal("corrupted ICMP decoded without error")
	}
}

func TestUDPRoundtrip(t *testing.T) {
	src, dst := IPv4(1, 2, 3, 4), IPv4(5, 6, 7, 8)
	u := &UDPPacket{SrcPort: 33434, DstPort: PortEcho, Payload: []byte("probe")}
	got, err := DecodeUDP(u.Encode(src, dst), src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != u.SrcPort || got.DstPort != u.DstPort || string(got.Payload) != "probe" {
		t.Fatalf("roundtrip mismatch: %+v", got)
	}
}

func TestUDPChecksumDetectsCorruption(t *testing.T) {
	src, dst := IPv4(1, 2, 3, 4), IPv4(5, 6, 7, 8)
	u := &UDPPacket{SrcPort: 1000, DstPort: 2000, Payload: []byte("xyz")}
	b := u.Encode(src, dst)
	b[len(b)-1] ^= 0xff
	if _, err := DecodeUDP(b, src, dst); err == nil {
		t.Fatal("corrupted UDP decoded without error")
	}
}

func TestRIPRoundtrip(t *testing.T) {
	p := &RIPPacket{
		Command: RIPResponse,
		Entries: []RIPEntry{
			{Family: 2, Addr: IPv4(128, 138, 238, 0), Metric: 1},
			{Family: 2, Addr: IPv4(128, 138, 243, 0), Metric: 2},
			{Family: 2, Addr: IPv4(192, 44, 0, 0), Metric: 5},
		},
	}
	got, err := DecodeRIP(p.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Command != RIPResponse || len(got.Entries) != 3 {
		t.Fatalf("roundtrip mismatch: %+v", got)
	}
	for i := range p.Entries {
		if got.Entries[i] != p.Entries[i] {
			t.Fatalf("entry %d mismatch: %+v vs %+v", i, got.Entries[i], p.Entries[i])
		}
	}
}

func TestRIPRejectsTrailingBytes(t *testing.T) {
	p := &RIPPacket{Command: RIPResponse, Entries: []RIPEntry{{Family: 2, Addr: 1, Metric: 1}}}
	b := append(p.Encode(), 0x00)
	if _, err := DecodeRIP(b); err == nil {
		t.Fatal("RIP packet with trailing bytes decoded without error")
	}
}

func TestRIPRejectsVersion2(t *testing.T) {
	p := &RIPPacket{Command: RIPResponse}
	b := p.Encode()
	b[1] = 2
	if _, err := DecodeRIP(b); err == nil {
		t.Fatal("RIP version 2 decoded as version 1")
	}
}

func TestDNSRoundtrip(t *testing.T) {
	m := &DNSMessage{
		ID:       0xbeef,
		Response: true,
		AA:       true,
		Question: []DNSQuestion{{Name: "238.138.128.in-addr.arpa", Type: DNSTypePTR, Class: DNSClassIN}},
		Answer: []DNSRR{
			{Name: "5.238.138.128.in-addr.arpa", Type: DNSTypePTR, Class: DNSClassIN, TTL: 3600, Targ: "anchor.cs.colorado.edu"},
			{Name: "anchor.cs.colorado.edu", Type: DNSTypeA, Class: DNSClassIN, TTL: 3600, A: IPv4(128, 138, 238, 5)},
		},
		Extra: []DNSRR{
			{Name: "cs.colorado.edu", Type: DNSTypeNS, Class: DNSClassIN, TTL: 3600, Targ: "piper.cs.colorado.edu"},
		},
	}
	b, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDNS(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != m.ID || !got.Response || !got.AA {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Question) != 1 || got.Question[0].Name != m.Question[0].Name {
		t.Fatalf("question mismatch: %+v", got.Question)
	}
	if len(got.Answer) != 2 {
		t.Fatalf("answer count %d", len(got.Answer))
	}
	if got.Answer[0].Targ != "anchor.cs.colorado.edu" {
		t.Fatalf("PTR target %q", got.Answer[0].Targ)
	}
	if got.Answer[1].A != IPv4(128, 138, 238, 5) {
		t.Fatalf("A record %s", got.Answer[1].A)
	}
	if len(got.Extra) != 1 || got.Extra[0].Targ != "piper.cs.colorado.edu" {
		t.Fatalf("extra mismatch: %+v", got.Extra)
	}
}

func TestDNSCompressedNames(t *testing.T) {
	// Hand-build a message that uses a compression pointer:
	// question "host.example" then answer name pointing back at offset 12.
	var w writer
	w.u16(1)      // ID
	w.u16(0x8400) // response, AA
	w.u16(1)      // qdcount
	w.u16(1)      // ancount
	w.u16(0)
	w.u16(0)
	// question at offset 12
	w.u8(4)
	w.bytes([]byte("host"))
	w.u8(7)
	w.bytes([]byte("example"))
	w.u8(0)
	w.u16(DNSTypeA)
	w.u16(DNSClassIN)
	// answer with compressed name: pointer to offset 12
	w.u8(0xc0)
	w.u8(12)
	w.u16(DNSTypeA)
	w.u16(DNSClassIN)
	w.u32(60)
	w.u16(4)
	w.ip(IPv4(10, 0, 0, 1))
	m, err := DecodeDNS(w.b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Answer[0].Name != "host.example" {
		t.Fatalf("compressed name decoded as %q", m.Answer[0].Name)
	}
	if m.Answer[0].A != IPv4(10, 0, 0, 1) {
		t.Fatalf("A = %s", m.Answer[0].A)
	}
}

func TestDNSPointerLoopRejected(t *testing.T) {
	var w writer
	w.u16(1)
	w.u16(0)
	w.u16(1)
	w.u16(0)
	w.u16(0)
	w.u16(0)
	// question name = pointer to itself
	w.u8(0xc0)
	w.u8(12)
	w.u16(DNSTypeA)
	w.u16(DNSClassIN)
	if _, err := DecodeDNS(w.b); err == nil {
		t.Fatal("self-referential compression pointer decoded without error")
	}
}

func TestReverseName(t *testing.T) {
	ip := IPv4(128, 138, 238, 5)
	name := ReverseName(ip)
	if name != "5.238.138.128.in-addr.arpa" {
		t.Fatalf("ReverseName = %q", name)
	}
	back, ok := ParseReverseName(name)
	if !ok || back != ip {
		t.Fatalf("ParseReverseName(%q) = %v, %v", name, back, ok)
	}
	if _, ok := ParseReverseName("example.com"); ok {
		t.Fatal("ParseReverseName accepted a forward name")
	}
	if _, ok := ParseReverseName("1.2.3.in-addr.arpa"); ok {
		t.Fatal("ParseReverseName accepted a 3-octet name")
	}
}

// Property tests: encode/decode are inverses for arbitrary field values.

func TestQuickARPRoundtrip(t *testing.T) {
	f := func(op uint16, sm, tm [6]byte, sip, tip uint32) bool {
		a := &ARPPacket{Op: op, SenderMAC: MAC(sm), SenderIP: IP(sip),
			TargetMAC: MAC(tm), TargetIP: IP(tip)}
		got, err := DecodeARP(a.Encode())
		return err == nil && *got == *a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIPv4Roundtrip(t *testing.T) {
	f := func(tos byte, id uint16, ttl, proto byte, src, dst uint32, payload []byte) bool {
		p := &IPv4Packet{
			Header:  IPv4Header{TOS: tos, ID: id, TTL: ttl, Protocol: proto, Src: IP(src), Dst: IP(dst)},
			Payload: payload,
		}
		if len(payload) > 60000 {
			return true
		}
		got, err := DecodeIPv4(p.Encode())
		return err == nil && got.Header == p.Header && bytes.Equal(got.Payload, p.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickICMPEchoRoundtrip(t *testing.T) {
	f := func(id, seq uint16, data []byte) bool {
		m := &ICMPMessage{Type: ICMPEcho, ID: id, Seq: seq, Data: data}
		got, err := DecodeICMP(m.Encode())
		return err == nil && got.ID == id && got.Seq == seq && bytes.Equal(got.Data, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUDPRoundtrip(t *testing.T) {
	f := func(sp, dp uint16, src, dst uint32, payload []byte) bool {
		if len(payload) > 60000 {
			return true
		}
		u := &UDPPacket{SrcPort: sp, DstPort: dp, Payload: payload}
		got, err := DecodeUDP(u.Encode(IP(src), IP(dst)), IP(src), IP(dst))
		return err == nil && got.SrcPort == sp && got.DstPort == dp && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDecodersDontPanicOnGarbage(t *testing.T) {
	f := func(b []byte) bool {
		// Any byte soup must produce an error or a value, never a panic.
		DecodeFrame(b)
		DecodeARP(b)
		DecodeIPv4(b)
		DecodeICMP(b)
		DecodeUDP(b, 0, 0)
		DecodeRIP(b)
		DecodeDNS(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkIPv4EncodeDecode(b *testing.B) {
	p := &IPv4Packet{
		Header:  IPv4Header{TTL: 30, Protocol: ProtoUDP, Src: 1, Dst: 2},
		Payload: make([]byte, 64),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := p.Encode()
		if _, err := DecodeIPv4(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDNSEncodeDecode(b *testing.B) {
	m := &DNSMessage{
		ID: 7, Response: true,
		Answer: []DNSRR{
			{Name: "5.238.138.128.in-addr.arpa", Type: DNSTypePTR, Class: DNSClassIN, TTL: 60, Targ: "anchor.cs.colorado.edu"},
		},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf, err := m.Encode()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := DecodeDNS(buf); err != nil {
			b.Fatal(err)
		}
	}
}
