package pkt

import (
	"fmt"
	"strings"
)

// DNS record types used by the DNS Explorer Module.
const (
	DNSTypeA     uint16 = 1
	DNSTypeNS    uint16 = 2
	DNSTypeCNAME uint16 = 5
	DNSTypeSOA   uint16 = 6
	DNSTypeWKS   uint16 = 11
	DNSTypePTR   uint16 = 12
	DNSTypeHINFO uint16 = 13
	DNSTypeMX    uint16 = 15
	DNSTypeAXFR  uint16 = 252
	DNSTypeANY   uint16 = 255
)

// DNSClassIN is the Internet class.
const DNSClassIN uint16 = 1

// DNS response codes.
const (
	DNSRcodeOK      byte = 0
	DNSRcodeFormErr byte = 1
	DNSRcodeNXName  byte = 3
	DNSRcodeRefused byte = 5
)

// DNSQuestion is one query in a DNS message.
type DNSQuestion struct {
	Name  string
	Type  uint16
	Class uint16
}

// DNSRR is a resource record. Data holds the decoded value: an IP for A
// records, a domain name for NS/CNAME/PTR, and raw bytes otherwise.
type DNSRR struct {
	Name  string
	Type  uint16
	Class uint16
	TTL   uint32
	// Exactly one of the following is meaningful, according to Type.
	A    IP
	Targ string // NS, CNAME, PTR target
	Raw  []byte
}

// DNSMessage is an RFC 1035 message (header, question and answer sections;
// authority/additional are carried in Extra for completeness).
type DNSMessage struct {
	ID       uint16
	Response bool
	Opcode   byte
	AA       bool
	TC       bool
	RD       bool
	RA       bool
	Rcode    byte
	Question []DNSQuestion
	Answer   []DNSRR
	Extra    []DNSRR // authority + additional, undistinguished
}

func encodeName(w *writer, name string) error {
	name = strings.TrimSuffix(name, ".")
	if name != "" {
		for _, label := range strings.Split(name, ".") {
			if len(label) == 0 || len(label) > 63 {
				return fmt.Errorf("pkt: bad DNS label %q in %q", label, name)
			}
			w.u8(byte(len(label)))
			w.bytes([]byte(label))
		}
	}
	w.u8(0)
	return nil
}

// decodeName reads a possibly-compressed domain name. msg is the whole
// message, for resolving compression pointers.
func decodeName(r *reader, msg []byte) (string, error) {
	var labels []string
	jumps := 0
	pos := -1 // -1: reading from r; >=0: following pointers in msg
	for {
		var b byte
		if pos < 0 {
			b = r.u8()
			if r.err != nil {
				return "", r.err
			}
		} else {
			if pos >= len(msg) {
				return "", ErrTruncated
			}
			b = msg[pos]
			pos++
		}
		switch {
		case b == 0:
			return strings.Join(labels, "."), nil
		case b&0xc0 == 0xc0:
			var lo byte
			if pos < 0 {
				lo = r.u8()
				if r.err != nil {
					return "", r.err
				}
			} else {
				if pos >= len(msg) {
					return "", ErrTruncated
				}
				lo = msg[pos]
				pos++
			}
			jumps++
			if jumps > 32 {
				return "", fmt.Errorf("pkt: DNS compression pointer loop")
			}
			pos = int(b&0x3f)<<8 | int(lo)
		case b&0xc0 != 0:
			return "", fmt.Errorf("pkt: bad DNS label length 0x%02x", b)
		default:
			n := int(b)
			var lab []byte
			if pos < 0 {
				lab = r.bytes(n)
				if r.err != nil {
					return "", r.err
				}
			} else {
				if pos+n > len(msg) {
					return "", ErrTruncated
				}
				lab = msg[pos : pos+n]
				pos += n
			}
			labels = append(labels, string(lab))
			if len(labels) > 128 {
				return "", fmt.Errorf("pkt: DNS name too long")
			}
		}
	}
}

func encodeRR(w *writer, rr *DNSRR) error {
	if err := encodeName(w, rr.Name); err != nil {
		return err
	}
	w.u16(rr.Type)
	w.u16(rr.Class)
	w.u32(rr.TTL)
	lenOff := len(w.b)
	w.u16(0) // rdlength placeholder
	start := len(w.b)
	switch rr.Type {
	case DNSTypeA:
		w.ip(rr.A)
	case DNSTypeNS, DNSTypeCNAME, DNSTypePTR:
		if err := encodeName(w, rr.Targ); err != nil {
			return err
		}
	default:
		w.bytes(rr.Raw)
	}
	w.setU16(lenOff, uint16(len(w.b)-start))
	return nil
}

func decodeRR(r *reader, msg []byte) (DNSRR, error) {
	var rr DNSRR
	name, err := decodeName(r, msg)
	if err != nil {
		return rr, err
	}
	rr.Name = name
	rr.Type = r.u16()
	rr.Class = r.u16()
	rr.TTL = r.u32()
	rdlen := int(r.u16())
	if r.err != nil {
		return rr, r.err
	}
	if r.remaining() < rdlen {
		return rr, ErrTruncated
	}
	rdata := reader{b: r.b, off: r.off}
	r.bytes(rdlen)
	switch rr.Type {
	case DNSTypeA:
		if rdlen != 4 {
			return rr, fmt.Errorf("pkt: A record rdlength %d", rdlen)
		}
		rr.A = rdata.ip()
	case DNSTypeNS, DNSTypeCNAME, DNSTypePTR:
		rr.Targ, err = decodeName(&rdata, msg)
		if err != nil {
			return rr, err
		}
	default:
		rr.Raw = append([]byte(nil), rdata.bytes(rdlen)...)
	}
	return rr, rdata.err
}

// Encode serializes the message (without name compression).
func (m *DNSMessage) Encode() ([]byte, error) {
	w := writer{}
	w.u16(m.ID)
	var flags uint16
	if m.Response {
		flags |= 1 << 15
	}
	flags |= uint16(m.Opcode&0xf) << 11
	if m.AA {
		flags |= 1 << 10
	}
	if m.TC {
		flags |= 1 << 9
	}
	if m.RD {
		flags |= 1 << 8
	}
	if m.RA {
		flags |= 1 << 7
	}
	flags |= uint16(m.Rcode & 0xf)
	w.u16(flags)
	w.u16(uint16(len(m.Question)))
	w.u16(uint16(len(m.Answer)))
	w.u16(0) // authority count (we fold into Extra)
	w.u16(uint16(len(m.Extra)))
	for i := range m.Question {
		q := &m.Question[i]
		if err := encodeName(&w, q.Name); err != nil {
			return nil, err
		}
		w.u16(q.Type)
		w.u16(q.Class)
	}
	for i := range m.Answer {
		if err := encodeRR(&w, &m.Answer[i]); err != nil {
			return nil, err
		}
	}
	for i := range m.Extra {
		if err := encodeRR(&w, &m.Extra[i]); err != nil {
			return nil, err
		}
	}
	return w.b, nil
}

// DecodeDNS parses a DNS message.
func DecodeDNS(b []byte) (*DNSMessage, error) {
	if len(b) < 12 {
		return nil, overrun("dns message", len(b), 12)
	}
	r := reader{b: b}
	m := &DNSMessage{}
	m.ID = r.u16()
	flags := r.u16()
	m.Response = flags&(1<<15) != 0
	m.Opcode = byte(flags >> 11 & 0xf)
	m.AA = flags&(1<<10) != 0
	m.TC = flags&(1<<9) != 0
	m.RD = flags&(1<<8) != 0
	m.RA = flags&(1<<7) != 0
	m.Rcode = byte(flags & 0xf)
	qd := int(r.u16())
	an := int(r.u16())
	ns := int(r.u16())
	ar := int(r.u16())
	for i := 0; i < qd; i++ {
		var q DNSQuestion
		name, err := decodeName(&r, b)
		if err != nil {
			return nil, err
		}
		q.Name = name
		q.Type = r.u16()
		q.Class = r.u16()
		if r.err != nil {
			return nil, r.err
		}
		m.Question = append(m.Question, q)
	}
	for i := 0; i < an; i++ {
		rr, err := decodeRR(&r, b)
		if err != nil {
			return nil, err
		}
		m.Answer = append(m.Answer, rr)
	}
	for i := 0; i < ns+ar; i++ {
		rr, err := decodeRR(&r, b)
		if err != nil {
			return nil, err
		}
		m.Extra = append(m.Extra, rr)
	}
	return m, r.err
}

// ReverseName returns the in-addr.arpa name for ip
// (e.g. 128.138.238.5 -> "5.238.138.128.in-addr.arpa").
func ReverseName(ip IP) string {
	a, b, c, d := ip.Octets()
	return fmt.Sprintf("%d.%d.%d.%d.in-addr.arpa", d, c, b, a)
}

// ParseReverseName inverts ReverseName. ok is false if name is not an
// in-addr.arpa name with four octets.
func ParseReverseName(name string) (IP, bool) {
	name = strings.TrimSuffix(strings.ToLower(name), ".")
	const suffix = ".in-addr.arpa"
	if !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	parts := strings.Split(strings.TrimSuffix(name, suffix), ".")
	if len(parts) != 4 {
		return 0, false
	}
	var o [4]int
	for i, p := range parts {
		if _, err := fmt.Sscanf(p, "%d", &o[i]); err != nil || o[i] < 0 || o[i] > 255 {
			return 0, false
		}
	}
	return IPv4(byte(o[3]), byte(o[2]), byte(o[1]), byte(o[0])), true
}
