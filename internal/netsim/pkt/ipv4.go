package pkt

import "fmt"

// IP protocol numbers used by the simulator.
const (
	ProtoICMP byte = 1
	ProtoTCP  byte = 6
	ProtoUDP  byte = 17
)

// IPv4Header is an RFC 791 header without options. TTL handling in the
// simulated routers, and therefore the Traceroute Explorer Module, depend
// on these fields behaving exactly as on the wire.
type IPv4Header struct {
	TOS      byte
	ID       uint16
	Flags    byte   // 3 bits
	FragOff  uint16 // 13 bits
	TTL      byte
	Protocol byte
	Src      IP
	Dst      IP
}

const ipv4HeaderLen = 20

// IPv4Packet couples a header with its payload.
type IPv4Packet struct {
	Header  IPv4Header
	Payload []byte
}

// Encode serializes the packet with a correct header checksum and total
// length.
func (p *IPv4Packet) Encode() []byte {
	w := writer{b: make([]byte, 0, ipv4HeaderLen+len(p.Payload))}
	h := &p.Header
	w.u8(0x45) // version 4, IHL 5
	w.u8(h.TOS)
	w.u16(uint16(ipv4HeaderLen + len(p.Payload)))
	w.u16(h.ID)
	w.u16(uint16(h.Flags)<<13 | h.FragOff&0x1fff)
	w.u8(h.TTL)
	w.u8(h.Protocol)
	w.u16(0) // checksum placeholder
	w.ip(h.Src)
	w.ip(h.Dst)
	w.setU16(10, Checksum(w.b[:ipv4HeaderLen]))
	w.bytes(p.Payload)
	return w.b
}

// DecodeIPv4 parses an IPv4 packet and verifies the header checksum.
func DecodeIPv4(b []byte) (*IPv4Packet, error) {
	p := &IPv4Packet{}
	if err := DecodeIPv4Into(p, b); err != nil {
		return nil, err
	}
	return p, nil
}

// DecodeIPv4Into parses into a caller-provided struct, so hot receive paths
// can keep the packet on the stack. p.Payload aliases b.
func DecodeIPv4Into(p *IPv4Packet, b []byte) error {
	if len(b) < ipv4HeaderLen {
		return overrun("ipv4 header", len(b), ipv4HeaderLen)
	}
	r := reader{b: b}
	vihl := r.u8()
	if vihl>>4 != 4 {
		return fmt.Errorf("pkt: not IPv4 (version %d)", vihl>>4)
	}
	ihl := int(vihl&0x0f) * 4
	if ihl < ipv4HeaderLen || len(b) < ihl {
		return fmt.Errorf("pkt: bad IHL %d", ihl)
	}
	if Checksum(b[:ihl]) != 0 {
		return fmt.Errorf("pkt: ipv4 header checksum mismatch")
	}
	h := &p.Header
	h.TOS = r.u8()
	totalLen := int(r.u16())
	h.ID = r.u16()
	ff := r.u16()
	h.Flags = byte(ff >> 13)
	h.FragOff = ff & 0x1fff
	h.TTL = r.u8()
	h.Protocol = r.u8()
	r.u16() // checksum (verified above)
	h.Src = r.ip()
	h.Dst = r.ip()
	r.bytes(ihl - ipv4HeaderLen) // skip options
	if totalLen < ihl || totalLen > len(b) {
		return fmt.Errorf("pkt: ipv4 total length %d out of range", totalLen)
	}
	p.Payload = b[ihl:totalLen]
	return r.err
}

// DecodeIPv4Header parses just the header of a possibly-truncated IPv4
// packet, without the total-length bound check. ICMP error messages quote
// only the first 28 bytes of the offending datagram (RFC 792), so the quote
// usually claims a total length longer than the quoted bytes; Traceroute
// must still recover the flow from it.
func DecodeIPv4Header(b []byte) (*IPv4Header, error) {
	if len(b) < ipv4HeaderLen {
		return nil, overrun("ipv4 header", len(b), ipv4HeaderLen)
	}
	r := reader{b: b}
	vihl := r.u8()
	if vihl>>4 != 4 {
		return nil, fmt.Errorf("pkt: not IPv4 (version %d)", vihl>>4)
	}
	if Checksum(b[:ipv4HeaderLen]) != 0 {
		return nil, fmt.Errorf("pkt: ipv4 header checksum mismatch")
	}
	h := &IPv4Header{}
	h.TOS = r.u8()
	r.u16() // total length (not validated against quote)
	h.ID = r.u16()
	ff := r.u16()
	h.Flags = byte(ff >> 13)
	h.FragOff = ff & 0x1fff
	h.TTL = r.u8()
	h.Protocol = r.u8()
	r.u16()
	h.Src = r.ip()
	h.Dst = r.ip()
	return h, r.err
}

func (p *IPv4Packet) String() string {
	return fmt.Sprintf("ip %s > %s proto %d ttl %d len %d",
		p.Header.Src, p.Header.Dst, p.Header.Protocol, p.Header.TTL, len(p.Payload))
}
