package pkt

import (
	"testing"
	"testing/quick"
)

func TestIPStringParse(t *testing.T) {
	cases := []struct {
		ip IP
		s  string
	}{
		{IPv4(128, 138, 238, 1), "128.138.238.1"},
		{IPv4(0, 0, 0, 0), "0.0.0.0"},
		{IPv4(255, 255, 255, 255), "255.255.255.255"},
		{IPv4(10, 0, 0, 1), "10.0.0.1"},
	}
	for _, c := range cases {
		if got := c.ip.String(); got != c.s {
			t.Errorf("%#x.String() = %q, want %q", uint32(c.ip), got, c.s)
		}
		parsed, err := ParseIP(c.s)
		if err != nil || parsed != c.ip {
			t.Errorf("ParseIP(%q) = %v,%v; want %v", c.s, parsed, err, c.ip)
		}
	}
}

func TestParseIPErrors(t *testing.T) {
	for _, s := range []string{"", "1.2.3", "256.1.1.1", "a.b.c.d", "-1.0.0.0"} {
		if _, err := ParseIP(s); err == nil {
			t.Errorf("ParseIP(%q) succeeded, want error", s)
		}
	}
}

func TestQuickIPRoundtrip(t *testing.T) {
	f := func(v uint32) bool {
		ip := IP(v)
		parsed, err := ParseIP(ip.String())
		return err == nil && parsed == ip
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMACStringParse(t *testing.T) {
	m := MAC{0x08, 0x00, 0x20, 0x0a, 0xbb, 0xcc}
	s := m.String()
	if s != "08:00:20:0a:bb:cc" {
		t.Fatalf("String() = %q", s)
	}
	back, err := ParseMAC(s)
	if err != nil || back != m {
		t.Fatalf("ParseMAC(%q) = %v, %v", s, back, err)
	}
	if _, err := ParseMAC("not-a-mac"); err == nil {
		t.Fatal("ParseMAC accepted garbage")
	}
}

func TestMACBroadcast(t *testing.T) {
	if !BroadcastMAC.IsBroadcast() {
		t.Fatal("BroadcastMAC.IsBroadcast() = false")
	}
	if (MAC{1}).IsBroadcast() {
		t.Fatal("unicast MAC reported broadcast")
	}
	if !ZeroMAC.IsZero() {
		t.Fatal("ZeroMAC.IsZero() = false")
	}
}

func TestClass(t *testing.T) {
	cases := []struct {
		ip    string
		class byte
	}{
		{"10.1.2.3", 'A'},
		{"128.138.1.1", 'B'},
		{"192.168.1.1", 'C'},
		{"224.0.0.1", 'D'},
		{"250.0.0.1", 'E'},
	}
	for _, c := range cases {
		ip, _ := ParseIP(c.ip)
		if got := ip.Class(); got != c.class {
			t.Errorf("%s.Class() = %c, want %c", c.ip, got, c.class)
		}
	}
}

func TestDefaultMask(t *testing.T) {
	cases := []struct {
		ip   string
		bits int
	}{
		{"10.1.2.3", 8},
		{"128.138.1.1", 16},
		{"192.168.1.1", 24},
	}
	for _, c := range cases {
		ip, _ := ParseIP(c.ip)
		if got := ip.DefaultMask().Bits(); got != c.bits {
			t.Errorf("%s.DefaultMask().Bits() = %d, want %d", c.ip, got, c.bits)
		}
	}
}

func TestMaskBits(t *testing.T) {
	for n := 0; n <= 32; n++ {
		m := MaskBits(n)
		if !m.Valid() {
			t.Errorf("MaskBits(%d) = %s is not contiguous", n, m)
		}
		if m.Bits() != n {
			t.Errorf("MaskBits(%d).Bits() = %d", n, m.Bits())
		}
	}
}

func TestMaskValid(t *testing.T) {
	if !Mask(0xffffff00).Valid() {
		t.Fatal("/24 mask reported invalid")
	}
	if Mask(0xff00ff00).Valid() {
		t.Fatal("discontiguous mask reported valid")
	}
}

func TestSubnetMath(t *testing.T) {
	sn, err := ParseSubnet("128.138.238.0/24")
	if err != nil {
		t.Fatal(err)
	}
	ip, _ := ParseIP("128.138.238.17")
	if !sn.Contains(ip) {
		t.Fatal("subnet does not contain member address")
	}
	out, _ := ParseIP("128.138.239.17")
	if sn.Contains(out) {
		t.Fatal("subnet contains outside address")
	}
	if got := sn.Broadcast().String(); got != "128.138.238.255" {
		t.Fatalf("Broadcast = %s", got)
	}
	if got := sn.HostZero().String(); got != "128.138.238.0" {
		t.Fatalf("HostZero = %s", got)
	}
	if got := sn.FirstHost().String(); got != "128.138.238.1" {
		t.Fatalf("FirstHost = %s", got)
	}
	if got := sn.LastHost().String(); got != "128.138.238.254" {
		t.Fatalf("LastHost = %s", got)
	}
	if sn.Size() != 256 {
		t.Fatalf("Size = %d", sn.Size())
	}
	if sn.String() != "128.138.238.0/24" {
		t.Fatalf("String = %s", sn.String())
	}
}

func TestSubnetOfMasksHostBits(t *testing.T) {
	ip, _ := ParseIP("128.138.238.17")
	sn := SubnetOf(ip, MaskBits(24))
	if sn.Addr.String() != "128.138.238.0" {
		t.Fatalf("SubnetOf did not clear host bits: %s", sn.Addr)
	}
}

func TestQuickSubnetContainsItself(t *testing.T) {
	f := func(v uint32, bits uint8) bool {
		n := int(bits % 33)
		sn := SubnetOf(IP(v), MaskBits(n))
		return sn.Contains(IP(v)) && sn.Contains(sn.Broadcast()) && sn.Contains(sn.HostZero())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
