// Package pkt defines the wire formats Fremont's Explorer Modules speak:
// Ethernet II framing, ARP, IPv4 (with header checksums), ICMP (echo, time
// exceeded, destination unreachable, address mask request/reply), UDP,
// RIP version 1, and a DNS subset sufficient for zone walks.
//
// All formats encode to and decode from real byte layouts, so passive
// modules (ARPwatch, RIPwatch) genuinely parse raw frames off a tap, the
// way the SunOS NIT-based originals did.
package pkt

import (
	"fmt"
	"math/bits"
)

// MAC is a 48-bit IEEE 802 medium access control address.
type MAC [6]byte

// BroadcastMAC is the all-ones Ethernet broadcast address.
var BroadcastMAC = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// ZeroMAC is the unset MAC address.
var ZeroMAC = MAC{}

// IsBroadcast reports whether m is the broadcast address.
func (m MAC) IsBroadcast() bool { return m == BroadcastMAC }

// IsZero reports whether m is the zero address.
func (m MAC) IsZero() bool { return m == ZeroMAC }

// OUI returns the vendor (organizationally unique identifier) portion of
// the address. Fremont uses this to guess interface manufacturers.
func (m MAC) OUI() [3]byte { return [3]byte{m[0], m[1], m[2]} }

func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// ParseMAC parses the colon-separated hexadecimal form produced by String.
func ParseMAC(s string) (MAC, error) {
	var m MAC
	var b [6]int
	n, err := fmt.Sscanf(s, "%02x:%02x:%02x:%02x:%02x:%02x", &b[0], &b[1], &b[2], &b[3], &b[4], &b[5])
	if err != nil || n != 6 {
		return m, fmt.Errorf("pkt: invalid MAC %q", s)
	}
	for i, v := range b {
		if v < 0 || v > 255 {
			return m, fmt.Errorf("pkt: invalid MAC %q", s)
		}
		m[i] = byte(v)
	}
	return m, nil
}

// IP is an IPv4 address in host byte order. The numeric representation
// makes subnet arithmetic (masking, ranges, host iteration) direct.
type IP uint32

// IPv4 constructs an address from dotted-quad components.
func IPv4(a, b, c, d byte) IP {
	return IP(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// Octets returns the four dotted-quad components.
func (ip IP) Octets() (a, b, c, d byte) {
	return byte(ip >> 24), byte(ip >> 16), byte(ip >> 8), byte(ip)
}

func (ip IP) String() string {
	a, b, c, d := ip.Octets()
	return fmt.Sprintf("%d.%d.%d.%d", a, b, c, d)
}

// ParseIP parses dotted-quad notation.
func ParseIP(s string) (IP, error) {
	var a, b, c, d int
	n, err := fmt.Sscanf(s, "%d.%d.%d.%d", &a, &b, &c, &d)
	if err != nil || n != 4 {
		return 0, fmt.Errorf("pkt: invalid IP %q", s)
	}
	for _, v := range []int{a, b, c, d} {
		if v < 0 || v > 255 {
			return 0, fmt.Errorf("pkt: invalid IP %q", s)
		}
	}
	return IPv4(byte(a), byte(b), byte(c), byte(d)), nil
}

// IsZero reports whether ip is 0.0.0.0.
func (ip IP) IsZero() bool { return ip == 0 }

// Class returns the classful network class of the address ('A'..'E'),
// which 1993-era tools used to infer default masks.
func (ip IP) Class() byte {
	switch {
	case ip>>31 == 0:
		return 'A'
	case ip>>30 == 0b10:
		return 'B'
	case ip>>29 == 0b110:
		return 'C'
	case ip>>28 == 0b1110:
		return 'D'
	default:
		return 'E'
	}
}

// DefaultMask returns the classful natural mask for the address.
func (ip IP) DefaultMask() Mask {
	switch ip.Class() {
	case 'A':
		return Mask(0xff000000)
	case 'B':
		return Mask(0xffff0000)
	default:
		return Mask(0xffffff00)
	}
}

// Mask is an IPv4 subnet mask in host byte order.
type Mask uint32

func (m Mask) String() string { return IP(m).String() }

// Bits returns the number of leading one bits (prefix length). Masks are
// assumed contiguous; Valid reports whether that holds.
func (m Mask) Bits() int { return bits.LeadingZeros32(^uint32(m)) }

// Valid reports whether the mask is contiguous ones followed by zeros.
func (m Mask) Valid() bool {
	inv := ^uint32(m)
	return inv&(inv+1) == 0
}

// MaskBits returns the mask with the given prefix length (0..32).
func MaskBits(n int) Mask {
	if n <= 0 {
		return 0
	}
	if n >= 32 {
		return Mask(0xffffffff)
	}
	return Mask(^uint32(0) << (32 - n))
}

// Subnet identifies an IP subnet: a network address and its mask.
type Subnet struct {
	Addr IP
	Mask Mask
}

// SubnetOf returns the subnet containing ip under mask.
func SubnetOf(ip IP, mask Mask) Subnet {
	return Subnet{Addr: IP(uint32(ip) & uint32(mask)), Mask: mask}
}

// Contains reports whether ip falls inside the subnet.
func (sn Subnet) Contains(ip IP) bool {
	return IP(uint32(ip)&uint32(sn.Mask)) == sn.Addr
}

// Broadcast returns the subnet's directed broadcast address (all host bits
// set).
func (sn Subnet) Broadcast() IP {
	return IP(uint32(sn.Addr) | ^uint32(sn.Mask))
}

// HostZero returns the subnet's host-zero address, which the Traceroute
// Explorer Module probes ("if a host receives a packet that is addressed to
// host zero on the subnet, the host is supposed to treat that packet as
// though it were addressed to that host").
func (sn Subnet) HostZero() IP { return sn.Addr }

// FirstHost and LastHost bound the usable host addresses.
func (sn Subnet) FirstHost() IP { return sn.Addr + 1 }

// LastHost returns the highest non-broadcast host address.
func (sn Subnet) LastHost() IP { return sn.Broadcast() - 1 }

// Size returns the number of addresses in the subnet (including network
// and broadcast).
func (sn Subnet) Size() int {
	return 1 << (32 - sn.Mask.Bits())
}

func (sn Subnet) String() string {
	return fmt.Sprintf("%s/%d", sn.Addr, sn.Mask.Bits())
}

// ParseSubnet parses "a.b.c.d/len" notation.
func ParseSubnet(s string) (Subnet, error) {
	var a, b, c, d, n int
	cnt, err := fmt.Sscanf(s, "%d.%d.%d.%d/%d", &a, &b, &c, &d, &n)
	if err != nil || cnt != 5 || n < 0 || n > 32 {
		return Subnet{}, fmt.Errorf("pkt: invalid subnet %q", s)
	}
	for _, v := range []int{a, b, c, d} {
		if v < 0 || v > 255 {
			return Subnet{}, fmt.Errorf("pkt: invalid subnet %q", s)
		}
	}
	m := MaskBits(n)
	return SubnetOf(IPv4(byte(a), byte(b), byte(c), byte(d)), m), nil
}
