package pkt

import (
	"bytes"
	"testing"
)

func TestTCPRoundTrip(t *testing.T) {
	src, _ := ParseIP("10.1.1.10")
	dst, _ := ParseIP("10.1.2.20")
	seg := TCPSegment{
		SrcPort: 33001,
		DstPort: 7777,
		Seq:     0x1234_5678,
		Ack:     0x9abc_def0,
		Flags:   TCPFlagACK | TCPFlagPSH,
		Window:  8192,
		Payload: []byte("journal frame bytes"),
	}
	raw := seg.Encode(src, dst)

	var got TCPSegment
	if err := DecodeTCPInto(&got, raw, src, dst); err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != seg.SrcPort || got.DstPort != seg.DstPort ||
		got.Seq != seg.Seq || got.Ack != seg.Ack ||
		got.Flags != seg.Flags || got.Window != seg.Window ||
		!bytes.Equal(got.Payload, seg.Payload) {
		t.Fatalf("round trip mismatch: %+v != %+v", got, seg)
	}

	// Heap variant agrees.
	h, err := DecodeTCP(raw, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if h.String() != got.String() {
		t.Fatalf("DecodeTCP = %v, DecodeTCPInto = %v", h, &got)
	}
}

func TestTCPChecksumDetectsCorruption(t *testing.T) {
	src, _ := ParseIP("10.0.0.1")
	dst, _ := ParseIP("10.0.0.2")
	seg := TCPSegment{SrcPort: 1, DstPort: 2, Seq: 3, Ack: 4, Flags: TCPFlagSYN, Window: 100}
	raw := seg.Encode(src, dst)

	var got TCPSegment
	if err := DecodeTCPInto(&got, raw, src, dst); err != nil {
		t.Fatalf("clean segment rejected: %v", err)
	}
	raw[5] ^= 0x40 // flip a bit in the ports/seq region
	if err := DecodeTCPInto(&got, raw, src, dst); err == nil {
		t.Fatal("corrupted segment accepted")
	}
	// A wrong pseudo-header (misrouted packet) must also fail.
	other, _ := ParseIP("10.0.0.3")
	raw[5] ^= 0x40
	if err := DecodeTCPInto(&got, raw, other, dst); err == nil {
		t.Fatal("segment accepted with wrong pseudo-header source")
	}
}

func TestTCPAppendEncodeReusesBuffer(t *testing.T) {
	src, _ := ParseIP("10.0.0.1")
	dst, _ := ParseIP("10.0.0.2")
	seg := TCPSegment{SrcPort: 5, DstPort: 6, Seq: 7, Flags: TCPFlagACK, Window: 10, Payload: []byte("xyz")}
	buf := make([]byte, 0, 256)
	out := seg.AppendEncode(buf, src, dst)
	if &out[0] != &buf[:1][0] {
		t.Fatal("AppendEncode reallocated despite sufficient capacity")
	}
	var got TCPSegment
	if err := DecodeTCPInto(&got, out, src, dst); err != nil {
		t.Fatal(err)
	}
	if string(got.Payload) != "xyz" {
		t.Fatalf("payload %q", got.Payload)
	}
}

func TestTCPDecodeTruncated(t *testing.T) {
	var got TCPSegment
	if err := DecodeTCPInto(&got, make([]byte, 10), 0, 0); err == nil {
		t.Fatal("10-byte segment accepted")
	}
}
