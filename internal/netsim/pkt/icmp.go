package pkt

import "fmt"

// ICMP message types (RFC 792, RFC 950) used by the four ICMP-based
// Explorer Modules.
const (
	ICMPEchoReply    byte = 0
	ICMPUnreachable  byte = 3
	ICMPEcho         byte = 8
	ICMPTimeExceeded byte = 11
	ICMPMaskRequest  byte = 17
	ICMPMaskReply    byte = 18
)

// ICMP unreachable codes.
const (
	UnreachNet      byte = 0
	UnreachHost     byte = 1
	UnreachProtocol byte = 2
	UnreachPort     byte = 3
)

// ICMPMessage is a decoded ICMP message. Fields are populated according to
// Type:
//
//   - Echo/EchoReply: ID, Seq, Data
//   - MaskRequest/MaskReply: ID, Seq, Mask
//   - TimeExceeded/Unreachable: Original (the leading bytes of the packet
//     that triggered the error: IP header + 8 bytes, per RFC 792)
type ICMPMessage struct {
	Type byte
	Code byte
	ID   uint16
	Seq  uint16
	Mask Mask
	Data []byte
	// Original holds the quoted datagram for error messages. Traceroute
	// matches returned Time Exceeded messages to its probes by decoding
	// this quote.
	Original []byte
}

// Encode serializes the message with a correct ICMP checksum.
func (m *ICMPMessage) Encode() []byte {
	w := writer{b: make([]byte, 0, 8+len(m.Data)+len(m.Original))}
	w.u8(m.Type)
	w.u8(m.Code)
	w.u16(0) // checksum placeholder
	switch m.Type {
	case ICMPEcho, ICMPEchoReply:
		w.u16(m.ID)
		w.u16(m.Seq)
		w.bytes(m.Data)
	case ICMPMaskRequest, ICMPMaskReply:
		w.u16(m.ID)
		w.u16(m.Seq)
		w.u32(uint32(m.Mask))
	case ICMPTimeExceeded, ICMPUnreachable:
		w.u32(0) // unused
		w.bytes(m.Original)
	default:
		w.u32(0)
		w.bytes(m.Data)
	}
	w.setU16(2, Checksum(w.b))
	return w.b
}

// DecodeICMP parses an ICMP message and verifies its checksum.
func DecodeICMP(b []byte) (*ICMPMessage, error) {
	m := &ICMPMessage{}
	if err := DecodeICMPInto(m, b); err != nil {
		return nil, err
	}
	return m, nil
}

// DecodeICMPInto parses into a caller-provided struct, so hot receive paths
// can keep the message on the stack. Data and Original alias b.
func DecodeICMPInto(m *ICMPMessage, b []byte) error {
	if len(b) < 8 {
		return overrun("icmp message", len(b), 8)
	}
	if Checksum(b) != 0 {
		return fmt.Errorf("pkt: icmp checksum mismatch")
	}
	r := reader{b: b}
	*m = ICMPMessage{}
	m.Type = r.u8()
	m.Code = r.u8()
	r.u16() // checksum
	switch m.Type {
	case ICMPEcho, ICMPEchoReply:
		m.ID = r.u16()
		m.Seq = r.u16()
		m.Data = r.rest()
	case ICMPMaskRequest, ICMPMaskReply:
		m.ID = r.u16()
		m.Seq = r.u16()
		m.Mask = Mask(r.u32())
	case ICMPTimeExceeded, ICMPUnreachable:
		r.u32()
		m.Original = r.rest()
	default:
		r.u32()
		m.Data = r.rest()
	}
	return r.err
}

// QuoteOriginal builds the RFC 792 quoted datagram (IP header + first 8
// payload bytes) for embedding in an ICMP error message.
func QuoteOriginal(ipPacket []byte) []byte {
	n := ipv4HeaderLen + 8
	if len(ipPacket) < n {
		n = len(ipPacket)
	}
	q := make([]byte, n)
	copy(q, ipPacket[:n])
	return q
}

func (m *ICMPMessage) String() string {
	switch m.Type {
	case ICMPEcho:
		return fmt.Sprintf("icmp echo request id=%d seq=%d", m.ID, m.Seq)
	case ICMPEchoReply:
		return fmt.Sprintf("icmp echo reply id=%d seq=%d", m.ID, m.Seq)
	case ICMPTimeExceeded:
		return "icmp time exceeded"
	case ICMPUnreachable:
		return fmt.Sprintf("icmp unreachable code=%d", m.Code)
	case ICMPMaskRequest:
		return "icmp mask request"
	case ICMPMaskReply:
		return fmt.Sprintf("icmp mask reply %s", m.Mask)
	}
	return fmt.Sprintf("icmp type=%d code=%d", m.Type, m.Code)
}
