package pkt

import "fmt"

// RIP commands (RFC 1058).
const (
	RIPRequest  byte = 1
	RIPResponse byte = 2
)

// RIPInfinity is the metric meaning "unreachable".
const RIPInfinity = 16

// RIPEntry advertises one destination. RIP version 1 carries no subnet
// mask — the paper leans on this: "No subnet mask information is contained
// in these packets, so routes to networks, subnets, or hosts are determined
// by comparing the subnet mask of the receiving host to the address being
// advertised."
type RIPEntry struct {
	Family uint16 // 2 = IP
	Addr   IP
	Metric uint32
}

// RIPPacket is a RIP version 1 packet (RFC 1058). A packet holds at most
// 25 entries.
type RIPPacket struct {
	Command byte
	Entries []RIPEntry
}

const ripHeaderLen = 4
const ripEntryLen = 20

// MaxRIPEntries is the RFC 1058 per-packet entry limit.
const MaxRIPEntries = 25

// Encode serializes the packet.
func (p *RIPPacket) Encode() []byte {
	w := writer{b: make([]byte, 0, ripHeaderLen+len(p.Entries)*ripEntryLen)}
	w.u8(p.Command)
	w.u8(1) // version 1
	w.u16(0)
	for _, e := range p.Entries {
		w.u16(e.Family)
		w.u16(0)
		w.ip(e.Addr)
		w.u32(0)
		w.u32(0)
		w.u32(e.Metric)
	}
	return w.b
}

// DecodeRIP parses a RIP version 1 packet.
func DecodeRIP(b []byte) (*RIPPacket, error) {
	p := &RIPPacket{}
	if err := DecodeRIPInto(p, b); err != nil {
		return nil, err
	}
	return p, nil
}

// DecodeRIPInto parses into a caller-provided packet, reusing its Entries
// backing array. RIP chatter is the busiest protocol on an idle wire —
// every router hears every other router's advertisement — so listeners keep
// a scratch packet and decode without allocating. Entries hold no
// references into b.
func DecodeRIPInto(p *RIPPacket, b []byte) error {
	if len(b) < ripHeaderLen {
		return overrun("rip packet", len(b), ripHeaderLen)
	}
	r := reader{b: b}
	p.Command = r.u8()
	if v := r.u8(); v != 1 {
		return fmt.Errorf("pkt: unsupported RIP version %d", v)
	}
	r.u16()
	n := r.remaining() / ripEntryLen
	if p.Entries == nil || cap(p.Entries) < n {
		p.Entries = make([]RIPEntry, 0, n)
	}
	p.Entries = p.Entries[:0]
	for r.remaining() >= ripEntryLen {
		var e RIPEntry
		e.Family = r.u16()
		r.u16()
		e.Addr = r.ip()
		r.u32()
		r.u32()
		e.Metric = r.u32()
		p.Entries = append(p.Entries, e)
	}
	if r.remaining() != 0 {
		return fmt.Errorf("pkt: rip packet has %d trailing bytes", r.remaining())
	}
	if len(p.Entries) > MaxRIPEntries {
		return fmt.Errorf("pkt: rip packet has %d entries (max %d)", len(p.Entries), MaxRIPEntries)
	}
	return r.err
}

func (p *RIPPacket) String() string {
	cmd := "response"
	if p.Command == RIPRequest {
		cmd = "request"
	}
	return fmt.Sprintf("rip %s with %d entries", cmd, len(p.Entries))
}
