package netsim

import (
	"time"

	"fremont/internal/netsim/pkt"
	"fremont/internal/netsim/sim"
)

// PortDiscard is the UDP discard port, used as the destination for
// background chatter traffic.
const PortDiscard uint16 = 9

// StartRIP begins periodic RIP version 1 advertisements from a router.
// Every RIPPeriod (default 30s) the router broadcasts its subnet routes out
// of each interface, with split horizon: the subnet an interface sits on is
// not advertised back onto that wire. (Promiscuous hosts — see
// StartPromiscuousRIP — ignore split horizon; that is how the RIPwatch
// module spots them.)
func (n *Network) StartRIP(nd *Node) *sim.Proc {
	nd.RIPAdvertise = true
	if nd.RIPPeriod == 0 {
		nd.RIPPeriod = 30 * time.Second
	}
	// Answer routed RIP Requests (RFC 1058 §3.4.1): a request with a
	// single AF_UNSPEC entry of metric 16 asks for the whole table. This
	// is what makes the RIPquery extension module able to read routing
	// information from gateways on other subnets.
	var rq pkt.RIPPacket // scratch; handlers run one-at-a-time under the scheduler
	nd.RegisterUDPService(pkt.PortRIP, func(_ *Node, src pkt.IP, srcPort uint16, dst pkt.IP, payload []byte) {
		if !nd.Up {
			return
		}
		// Every router on the wire hears every advertisement; skip the
		// decode unless the command byte says Request.
		if len(payload) == 0 || payload[0] != pkt.RIPRequest {
			return
		}
		if err := pkt.DecodeRIPInto(&rq, payload); err != nil || rq.Command != pkt.RIPRequest {
			return
		}
		wholeTable := len(rq.Entries) == 1 && rq.Entries[0].Family == 0 &&
			rq.Entries[0].Metric == pkt.RIPInfinity
		var entries []pkt.RIPEntry
		if wholeTable {
			for _, r := range nd.Routes {
				if r.Dst.Mask == 0 {
					continue
				}
				entries = append(entries, pkt.RIPEntry{Family: 2, Addr: r.Dst.Addr, Metric: uint32(r.Metric + 1)})
			}
		} else {
			// Specific-route query: answer each asked entry.
			for _, e := range rq.Entries {
				metric := uint32(pkt.RIPInfinity)
				if r, ok := nd.lookupRoute(e.Addr); ok && r.Dst.Mask != 0 {
					metric = uint32(r.Metric + 1)
				}
				entries = append(entries, pkt.RIPEntry{Family: 2, Addr: e.Addr, Metric: metric})
			}
		}
		for len(entries) > 0 {
			chunk := entries
			if len(chunk) > pkt.MaxRIPEntries {
				chunk = chunk[:pkt.MaxRIPEntries]
			}
			entries = entries[len(chunk):]
			resp := &pkt.RIPPacket{Command: pkt.RIPResponse, Entries: chunk}
			u := &pkt.UDPPacket{SrcPort: pkt.PortRIP, DstPort: srcPort, Payload: resp.Encode()}
			h := pkt.IPv4Header{Protocol: pkt.ProtoUDP, Src: dst, Dst: src, TTL: 30}
			_ = nd.SendIP(h, u.Encode(dst, src))
		}
	})
	return n.Sched.Spawn("rip:"+nd.Name, func(p *sim.Proc) {
		// Desynchronize advertisers.
		p.Sleep(time.Duration(n.Sched.Rand().Int63n(int64(nd.RIPPeriod))))
		for {
			if nd.Up {
				for _, ifc := range nd.Ifaces {
					nd.sendRIPAdvertisement(ifc)
				}
			}
			p.Sleep(nd.RIPPeriod)
		}
	})
}

func (nd *Node) sendRIPAdvertisement(out *Iface) {
	outSubnet := out.Subnet()
	entries := nd.ripScratch[:0]
	for _, r := range nd.Routes {
		if r.Dst.Mask == 0 {
			continue // default route not advertised
		}
		if r.Dst == outSubnet {
			continue // split horizon
		}
		entries = append(entries, pkt.RIPEntry{Family: 2, Addr: r.Dst.Addr, Metric: uint32(r.Metric + 1)})
	}
	nd.ripScratch = entries // keep the grown buffer for the next period
	nd.broadcastRIP(out, entries)
}

func (nd *Node) broadcastRIP(out *Iface, entries []pkt.RIPEntry) {
	bcast := out.Subnet().Broadcast()
	for len(entries) > 0 {
		chunk := entries
		if len(chunk) > pkt.MaxRIPEntries {
			chunk = chunk[:pkt.MaxRIPEntries]
		}
		entries = entries[len(chunk):]
		rp := &pkt.RIPPacket{Command: pkt.RIPResponse, Entries: chunk}
		u := &pkt.UDPPacket{SrcPort: pkt.PortRIP, DstPort: pkt.PortRIP, Payload: rp.Encode()}
		h := pkt.IPv4Header{Protocol: pkt.ProtoUDP, Src: out.IP, Dst: bcast, TTL: 1}
		_ = nd.SendIPVia(out, h, u.Encode(out.IP, bcast))
	}
}

// StartPromiscuousRIP turns a host into one of the paper's "badly
// configured hosts [that] promiscuously rebroadcast all learned routing
// information without regard to the subnet from which that information was
// learned". The host listens for RIP responses and periodically
// re-advertises everything it has heard — including routes for the very
// subnet it broadcasts onto — with incremented metrics.
func (n *Network) StartPromiscuousRIP(nd *Node, period time.Duration) *sim.Proc {
	nd.PromiscuousRIP = true
	if period == 0 {
		period = 45 * time.Second
	}
	// Like a workstation running "routed -s", the host supplies its own
	// connected subnet(s) in addition to everything it overhears — so the
	// wire's own subnet gets advertised back onto the wire, which is the
	// tell RIPwatch keys on.
	learned := map[pkt.IP]uint32{} // subnet addr -> metric
	var order []pkt.IP
	for _, ifc := range nd.Ifaces {
		sn := ifc.Subnet()
		if _, ok := learned[sn.Addr]; !ok {
			learned[sn.Addr] = 0
			order = append(order, sn.Addr)
		}
	}
	var rp pkt.RIPPacket // scratch; handlers run one-at-a-time under the scheduler
	nd.RegisterUDPService(pkt.PortRIP, func(_ *Node, src pkt.IP, _ uint16, _ pkt.IP, payload []byte) {
		if len(payload) == 0 || payload[0] != pkt.RIPResponse || nd.HasIP(src) {
			return
		}
		if err := pkt.DecodeRIPInto(&rp, payload); err != nil || rp.Command != pkt.RIPResponse {
			return
		}
		for _, e := range rp.Entries {
			if _, ok := learned[e.Addr]; !ok {
				order = append(order, e.Addr)
			}
			learned[e.Addr] = e.Metric
		}
	})
	return n.Sched.Spawn("promisc-rip:"+nd.Name, func(p *sim.Proc) {
		p.Sleep(time.Duration(n.Sched.Rand().Int63n(int64(period))))
		for {
			if nd.Up && len(order) > 0 {
				entries := make([]pkt.RIPEntry, 0, len(order))
				for _, addr := range order {
					entries = append(entries, pkt.RIPEntry{Family: 2, Addr: addr, Metric: learned[addr] + 1})
				}
				for _, ifc := range nd.Ifaces {
					nd.broadcastRIP(ifc, entries)
				}
			}
			p.Sleep(period)
		}
	})
}

// StartChatter makes a host converse: at exponentially distributed
// intervals around mean, it sends a UDP datagram to a random peer on its
// first segment. The resulting ARP exchanges are what the passive ARPwatch
// module lives on; hosts with long mean intervals are the ones ARPwatch
// only discovers after many hours (the paper's 30-minute vs 24-hour
// numbers).
func (n *Network) StartChatter(nd *Node, mean time.Duration) *sim.Proc {
	return n.Sched.Spawn("chatter:"+nd.Name, func(p *sim.Proc) {
		if len(nd.Ifaces) == 0 {
			return
		}
		ifc := nd.Ifaces[0]
		for {
			d := time.Duration(n.Sched.Rand().ExpFloat64() * float64(mean))
			if d < 100*time.Millisecond {
				d = 100 * time.Millisecond
			}
			if d > 10*mean {
				d = 10 * mean
			}
			p.Sleep(d)
			if !nd.Up {
				continue
			}
			// Mostly local conversations; occasionally an off-subnet
			// destination, which makes the host ARP for its default
			// gateway (so passive watchers see gateways too).
			var dst pkt.IP
			if n.Sched.Rand().Float64() < 0.15 {
				dst = ifc.Subnet().Addr - 256 + 20 // a host one subnet over
			} else {
				peers := ifc.Seg.Ifaces()
				if len(peers) < 2 {
					continue
				}
				peer := peers[n.Sched.Rand().Intn(len(peers))]
				if peer.Node == nd || !peer.Node.Up {
					continue
				}
				dst = peer.IP
			}
			u := &pkt.UDPPacket{SrcPort: 1023, DstPort: PortDiscard, Payload: []byte("chatter")}
			h := pkt.IPv4Header{Protocol: pkt.ProtoUDP, Src: ifc.IP, Dst: dst, TTL: 30}
			_ = nd.SendIP(h, u.Encode(ifc.IP, dst))
		}
	})
}

// StartLiveness cycles a node up and down: every period (with jitter) the
// node is up with the given probability. This models the paper's "not all
// hosts up when run" losses for the active probing modules.
func (n *Network) StartLiveness(nd *Node, availability float64, period time.Duration) *sim.Proc {
	if period == 0 {
		period = time.Hour
	}
	return n.Sched.Spawn("liveness:"+nd.Name, func(p *sim.Proc) {
		for {
			nd.SetUp(n.Sched.Rand().Float64() < availability)
			jitter := time.Duration(n.Sched.Rand().Int63n(int64(period) / 4))
			p.Sleep(period - period/8 + jitter)
		}
	})
}
