package netsim

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"fremont/internal/netsim/pkt"
)

// tcpPair builds two hosts on one wire with a listener on b:7777 and
// returns the network and both nodes.
func tcpPair(t testing.TB, seed int64) (*Network, *Node, *Node) {
	t.Helper()
	n := New(seed)
	seg := n.NewSegment("wire", mustSubnet(t, "10.0.0.0/24"))
	// Keep the collision model out of protocol tests; loss tests opt in.
	seg.CollisionProb = 0
	a := n.NewNode("a")
	a.AddIface(seg, mustIP(t, "10.0.0.1"), pkt.MaskBits(24))
	b := n.NewNode("b")
	b.AddIface(seg, mustIP(t, "10.0.0.2"), pkt.MaskBits(24))
	return n, a, b
}

// runActors drives the gated simulation until every actor goroutine has
// reported, failing on the first actor error.
func runActors(t *testing.T, n *Network, d time.Duration, count int, done chan error) {
	t.Helper()
	n.RunGated(d)
	for i := 0; i < count; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		default:
			t.Fatalf("actor %d/%d did not finish within %v of virtual time", i+1, count, d)
		}
	}
}

func TestTCPHandshakeAndEcho(t *testing.T) {
	n, a, b := tcpPair(t, 42)
	ln, err := ListenTCP(b, 7777)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 2)

	n.Go(func() {
		done <- func() error {
			conn, err := ln.Accept()
			if err != nil {
				return err
			}
			defer conn.Close()
			buf := make([]byte, 64)
			nr, err := conn.Read(buf)
			if err != nil {
				return err
			}
			_, err = conn.Write(bytes.ToUpper(buf[:nr]))
			return err
		}()
	})
	n.Go(func() {
		done <- func() error {
			conn, err := DialTCP(a, "10.0.0.2:7777", 5*time.Second)
			if err != nil {
				return err
			}
			defer conn.Close()
			if got := conn.RemoteAddr().String(); got != "10.0.0.2:7777" {
				return fmt.Errorf("remote addr %q", got)
			}
			if _, err := conn.Write([]byte("hello")); err != nil {
				return err
			}
			buf := make([]byte, 64)
			nr, err := io.ReadAtLeast(conn, buf, 5)
			if err != nil {
				return err
			}
			if string(buf[:nr]) != "HELLO" {
				return fmt.Errorf("echo = %q", buf[:nr])
			}
			return nil
		}()
	})
	runActors(t, n, 10*time.Second, 2, done)
}

// TestTCPLargeTransfer pushes well past MSS and both buffer sizes in each
// direction, exercising segmentation, window flow control and reassembly.
func TestTCPLargeTransfer(t *testing.T) {
	n, a, b := tcpPair(t, 7)
	ln, err := ListenTCP(b, 7777)
	if err != nil {
		t.Fatal(err)
	}
	const total = 512 << 10
	payload := make([]byte, total)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	done := make(chan error, 2)

	n.Go(func() {
		done <- func() error {
			conn, err := ln.Accept()
			if err != nil {
				return err
			}
			defer conn.Close()
			got, err := io.ReadAll(conn)
			if err != nil {
				return err
			}
			if !bytes.Equal(got, payload) {
				return fmt.Errorf("received %d bytes, corrupt=%v", len(got), !bytes.Equal(got, payload))
			}
			return nil
		}()
	})
	n.Go(func() {
		done <- func() error {
			conn, err := DialTCP(a, "10.0.0.2:7777", 5*time.Second)
			if err != nil {
				return err
			}
			if _, err := conn.Write(payload); err != nil {
				return err
			}
			return conn.Close() // FIN flushes after buffered data
		}()
	})
	runActors(t, n, 5*time.Minute, 2, done)
}

// TestTCPRetransmitAfterLoss runs a transfer over a lossy wire and
// verifies both integrity and that the RTO path actually fired.
func TestTCPRetransmitAfterLoss(t *testing.T) {
	n, a, b := tcpPair(t, 99)
	n.Segments[0].RandomLoss = 0.10
	ln, err := ListenTCP(b, 7777)
	if err != nil {
		t.Fatal(err)
	}
	const total = 64 << 10
	payload := make([]byte, total)
	for i := range payload {
		payload[i] = byte(i >> 3)
	}
	done := make(chan error, 2)
	var clientConn *TCPConn

	n.Go(func() {
		done <- func() error {
			conn, err := ln.Accept()
			if err != nil {
				return err
			}
			defer conn.Close()
			got, err := io.ReadAll(conn)
			if err != nil {
				return err
			}
			if !bytes.Equal(got, payload) {
				return fmt.Errorf("corrupt transfer: %d bytes", len(got))
			}
			return nil
		}()
	})
	n.Go(func() {
		done <- func() error {
			conn, err := DialTCP(a, "10.0.0.2:7777", 30*time.Second)
			if err != nil {
				return err
			}
			clientConn = conn.(*TCPConn)
			if _, err := conn.Write(payload); err != nil {
				return err
			}
			return conn.Close()
		}()
	})
	runActors(t, n, 10*time.Minute, 2, done)
	if clientConn.Retransmits == 0 {
		t.Fatal("10% loss produced zero retransmissions")
	}
}

// TestTCPOutOfOrderDelivery injects a reordered segment directly and
// checks the reassembly queue stitches the stream back together.
func TestTCPOutOfOrderDelivery(t *testing.T) {
	n, a, b := tcpPair(t, 5)
	ln, err := ListenTCP(b, 7777)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 2)

	n.Go(func() {
		done <- func() error {
			conn, err := ln.Accept()
			if err != nil {
				return err
			}
			defer conn.Close()
			got, err := io.ReadAll(conn)
			if err != nil {
				return err
			}
			if string(got) != "abcdef" {
				return fmt.Errorf("reassembled %q", got)
			}
			return nil
		}()
	})
	n.Go(func() {
		done <- func() error {
			conn, err := DialTCP(a, "10.0.0.2:7777", 5*time.Second)
			if err != nil {
				return err
			}
			c := conn.(*TCPConn)
			// Hand-deliver the second half before the first: encode real
			// segments and push them through the peer's receive path.
			n.Locked(func() {
				later := pkt.TCPSegment{
					SrcPort: c.key.localPort, DstPort: 7777,
					Seq: c.sndNxt + 3, Ack: c.rcvNxt,
					Flags: pkt.TCPFlagACK | pkt.TCPFlagPSH, Window: 0xffff,
					Payload: []byte("def"),
				}
				b.tcp.conns[tcpKey{7777, mustIP(t, "10.0.0.1"), c.key.localPort}].onSegment(&later)
				first := pkt.TCPSegment{
					SrcPort: c.key.localPort, DstPort: 7777,
					Seq: c.sndNxt, Ack: c.rcvNxt,
					Flags: pkt.TCPFlagACK | pkt.TCPFlagPSH, Window: 0xffff,
					Payload: []byte("abc"),
				}
				b.tcp.conns[tcpKey{7777, mustIP(t, "10.0.0.1"), c.key.localPort}].onSegment(&first)
				// Our side never sent these; resync local send state so
				// the FIN sequences correctly after them.
				c.sndNxt += 6
				c.sndUna = c.sndNxt
				c.sndBuf = nil
			})
			return conn.Close()
		}()
	})
	runActors(t, n, 30*time.Second, 2, done)
}

// TestTCPZeroWindowStallResume fills a tiny receive window, waits through
// a stall, then drains it and checks the transfer completes.
func TestTCPZeroWindowStallResume(t *testing.T) {
	n, a, b := tcpPair(t, 11)
	ln, err := ListenTCP(b, 7777)
	if err != nil {
		t.Fatal(err)
	}
	ln.RecvWindow = 2048 // force zero-window with a small payload
	const total = 16 << 10
	payload := make([]byte, total)
	for i := range payload {
		payload[i] = byte(i)
	}
	done := make(chan error, 2)

	n.Go(func() {
		done <- func() error {
			conn, err := ln.Accept()
			if err != nil {
				return err
			}
			defer conn.Close()
			// Stall: let the sender hit the zero window and sit on its
			// persist probe before we drain anything.
			n.GatedSleep(3 * time.Second)
			got, err := io.ReadAll(conn)
			if err != nil {
				return err
			}
			if !bytes.Equal(got, payload) {
				return fmt.Errorf("corrupt transfer after stall: %d bytes", len(got))
			}
			return nil
		}()
	})
	n.Go(func() {
		done <- func() error {
			conn, err := DialTCP(a, "10.0.0.2:7777", 5*time.Second)
			if err != nil {
				return err
			}
			if _, err := conn.Write(payload); err != nil {
				return err
			}
			return conn.Close()
		}()
	})
	runActors(t, n, 2*time.Minute, 2, done)
}

// TestTCPSimultaneousClose has both ends close together; both must walk
// FIN_WAIT_1 → CLOSING → TIME_WAIT and drain cleanly off the conn table.
func TestTCPSimultaneousClose(t *testing.T) {
	n, a, b := tcpPair(t, 3)
	ln, err := ListenTCP(b, 7777)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 2)
	ready := make(chan net.Conn, 1)

	n.Go(func() {
		done <- func() error {
			conn, err := ln.Accept()
			if err != nil {
				return err
			}
			ready <- conn
			n.GatedSleep(time.Second)
			if err := conn.Close(); err != nil {
				return err
			}
			n.GatedSleep(5 * time.Second)
			if _, err := conn.Read(make([]byte, 1)); err != net.ErrClosed {
				return fmt.Errorf("read after close = %v", err)
			}
			return nil
		}()
	})
	n.Go(func() {
		done <- func() error {
			conn, err := DialTCP(a, "10.0.0.2:7777", 5*time.Second)
			if err != nil {
				return err
			}
			n.GatedSleep(time.Second)
			if err := conn.Close(); err != nil {
				return err
			}
			n.GatedSleep(5 * time.Second)
			return nil
		}()
	})
	runActors(t, n, 30*time.Second, 2, done)
	<-ready
	// Both FINs crossed; after TIME_WAIT both tables must be empty.
	if got := len(a.tcp.conns); got != 0 {
		t.Fatalf("client conn table has %d entries after close", got)
	}
	if got := len(b.tcp.conns); got != 0 {
		t.Fatalf("server conn table has %d entries after close", got)
	}
}

// TestTCPConnRefused checks RST generation for a port nobody listens on.
func TestTCPConnRefused(t *testing.T) {
	n, a, _ := tcpPair(t, 8)
	done := make(chan error, 1)
	n.Go(func() {
		done <- func() error {
			_, err := DialTCP(a, "10.0.0.2:9999", 5*time.Second)
			if err == nil {
				return fmt.Errorf("dial to closed port succeeded")
			}
			return nil
		}()
	})
	runActors(t, n, 10*time.Second, 1, done)
}

// TestTCPDialTimeout dials a host that is down and expects the virtual
// clock — not the wall clock — to bound the wait.
func TestTCPDialTimeout(t *testing.T) {
	n, a, b := tcpPair(t, 8)
	b.SetUp(false)
	done := make(chan error, 1)
	n.Go(func() {
		done <- func() error {
			start := n.GatedNow()
			_, err := DialTCP(a, "10.0.0.2:7777", 2*time.Second)
			if err == nil {
				return fmt.Errorf("dial to down host succeeded")
			}
			if waited := n.GatedNow().Sub(start); waited < 2*time.Second {
				return fmt.Errorf("timeout fired after only %v", waited)
			}
			return nil
		}()
	})
	runActors(t, n, 10*time.Second, 1, done)
}

// TestTCPDeterministicTransfer runs the same lossy transfer twice and
// requires identical virtual completion times and retransmit counts.
func TestTCPDeterministicTransfer(t *testing.T) {
	run := func() (time.Duration, int) {
		n, a, b := tcpPair(t, 1234)
		n.Segments[0].RandomLoss = 0.05
		ln, err := ListenTCP(b, 7777)
		if err != nil {
			t.Fatal(err)
		}
		payload := make([]byte, 32<<10)
		for i := range payload {
			payload[i] = byte(i * 7)
		}
		done := make(chan error, 2)
		var finished time.Duration
		var retransmits int
		n.Go(func() {
			done <- func() error {
				conn, err := ln.Accept()
				if err != nil {
					return err
				}
				defer conn.Close()
				got, err := io.ReadAll(conn)
				if err != nil {
					return err
				}
				if !bytes.Equal(got, payload) {
					return fmt.Errorf("corrupt")
				}
				n.Locked(func() { finished = n.Sched.Now() })
				return nil
			}()
		})
		n.Go(func() {
			done <- func() error {
				conn, err := DialTCP(a, "10.0.0.2:7777", 30*time.Second)
				if err != nil {
					return err
				}
				if _, err := conn.Write(payload); err != nil {
					return err
				}
				err = conn.Close()
				retransmits = conn.(*TCPConn).Retransmits
				return err
			}()
		})
		runActors(t, n, 5*time.Minute, 2, done)
		return finished, retransmits
	}
	t1, r1 := run()
	t2, r2 := run()
	if t1 != t2 || r1 != r2 {
		t.Fatalf("nondeterministic transfer: t=%v/%v retransmits=%d/%d", t1, t2, r1, r2)
	}
	if t1 == 0 {
		t.Fatal("transfer did not complete")
	}
}
