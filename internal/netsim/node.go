package netsim

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"fremont/internal/netsim/pkt"
	"fremont/internal/netsim/sim"
)

// ErrNoRoute is returned when a node has no route to a destination.
var ErrNoRoute = errors.New("netsim: no route to host")

// Iface is a network interface: one separately addressable attachment of a
// node to a segment (the paper's use of the word "interface").
type Iface struct {
	Node *Node
	MAC  pkt.MAC
	IP   pkt.IP
	Mask pkt.Mask
	Seg  *Segment

	TxFrames int
	RxFrames int
}

// Subnet returns the subnet the interface lives on.
func (ifc *Iface) Subnet() pkt.Subnet { return pkt.SubnetOf(ifc.IP, ifc.Mask) }

func (ifc *Iface) String() string {
	return fmt.Sprintf("%s(%s %s)", ifc.Node.Name, ifc.IP, ifc.MAC)
}

// Route is a routing table entry. A zero Gateway means the destination is
// directly connected. Code that mutates Routes entries in place (rather
// than through AddRoute) must call InvalidateRoutes afterwards so a
// high-degree router's lookup index is rebuilt.
type Route struct {
	Dst     pkt.Subnet
	Gateway pkt.IP
	Iface   *Iface
	Metric  int
}

// routeIndexMin is the route count at which a node switches from the
// linear longest-prefix scan to the indexed lookup. Hosts and small
// routers stay on the scan (cheaper than hashing for a handful of
// routes); the grid topology's border routers carry one route per
// remote subnet and need the index to stay O(1)-ish per packet.
const routeIndexMin = 16

// routeIndex answers longest-prefix-match lookups in O(distinct masks)
// instead of O(routes). It reproduces the linear scan's result exactly:
// per distinct destination the first installed route wins, and a more
// specific mask beats a less specific one. Routes whose Dst is not
// normalized (host bits set under their own mask) can never match the
// linear scan's Contains check, so they are excluded here too.
type routeIndex struct {
	byDst map[pkt.Subnet]Route
	masks []pkt.Mask // distinct masks, most specific first
}

type arpEntry struct {
	mac     pkt.MAC
	learned time.Duration
}

type arpWait struct {
	ifc    *Iface
	queued [][]byte // encoded IP packets awaiting resolution
	tries  int
	retry  sim.Timer // pending retransmit; stopped the moment a reply resolves
}

// ARPEntry is a snapshot row of a node's ARP table, as read by the
// EtherHostProbe Explorer Module.
type ARPEntry struct {
	IP  pkt.IP
	MAC pkt.MAC
	Age time.Duration
}

// UDPHandler implements a simulated UDP service (the DNS server registers
// one on port 53). Handlers run in event context and may send replies via
// the node.
type UDPHandler func(node *Node, src pkt.IP, srcPort uint16, dst pkt.IP, payload []byte)

// NodeID is a compact index handle for a node: its position in the
// owning Network's Nodes slice.
type NodeID int32

// Node is a simulated host or router. Nodes are slab-allocated by the
// Network's arena, and the per-host behaviour state (ARP cache, pending
// resolutions, UDP listener tables) is materialized lazily on first
// touch — a host that never sends or receives a frame costs its struct,
// its name, and nothing else.
type Node struct {
	net    *Network
	ID     NodeID
	Name   string
	Ifaces []*Iface
	Routes []Route

	IsRouter bool
	Up       bool

	// Host behaviour knobs. The defaults (set in NewNode) are conformant;
	// the campus builder flips them on subsets of nodes to reproduce the
	// paper's observed pathologies.
	RespondsEcho         bool
	RespondsMask         bool
	MaskReplyValue       pkt.Mask // nonzero: report this (possibly wrong) mask
	UDPEchoEnabled       bool
	TreatsHostZeroAsSelf bool

	// Router behaviour knobs.
	ForwardsDirectedBcast bool
	ProxyARPFor           []pkt.Subnet
	NoTimeExceeded        bool // "gateway software problems": drops expired packets silently
	SilentICMPErrors      bool // never generates any ICMP error (worse software problems)
	TTLEchoBug            bool // sends ICMP errors with the received packet's TTL
	RIPAdvertise          bool
	RIPPeriod             time.Duration
	PromiscuousRIP        bool // rebroadcasts learned routes on all interfaces

	ARPCacheTTL time.Duration

	// All maps below are nil until first touched. Entries are value-typed
	// where refresh-in-place would otherwise force a pointer per entry.
	arp        map[pkt.IP]arpEntry
	arpPending map[pkt.IP]*arpWait

	rtIndex *routeIndex
	rtDirty bool

	// ripScratch is the reusable entry buffer for periodic RIP
	// advertisements; with thousands of advertising gateways the
	// per-period slice growth would otherwise dominate steady-state
	// allocation.
	ripScratch []pkt.RIPEntry

	icmpConns    []*ICMPConn
	udpListeners map[uint16][]*UDPConn
	udpHandlers  map[uint16]UDPHandler
	ephemeral    uint16
	tcp          *tcpHost // lazily created by tcpHost()

	ipIDSeq uint16
}

// AddIface attaches the node to a segment with the given address and mask,
// allocating a MAC, and installs the connected route.
func (nd *Node) AddIface(seg *Segment, ip pkt.IP, mask pkt.Mask) *Iface {
	ifc := nd.net.ifaceArena.alloc()
	*ifc = Iface{Node: nd, MAC: nd.net.nextMAC(), IP: ip, Mask: mask, Seg: seg}
	nd.Ifaces = append(nd.Ifaces, ifc)
	seg.attach(ifc)
	if prev, dup := nd.net.byIP[ip]; !dup || prev == nil {
		nd.net.byIP[ip] = ifc
	}
	nd.Routes = append(nd.Routes, Route{Dst: pkt.SubnetOf(ip, mask), Iface: ifc})
	nd.rtDirty = true
	return ifc
}

// SetMAC overrides an interface's MAC address (for modeling hardware
// changes and duplicate-address faults).
func (nd *Node) SetMAC(ifc *Iface, mac pkt.MAC) {
	ifc.MAC = mac
	if ifc.Seg != nil {
		ifc.Seg.reindexMAC()
	}
}

// AddRoute installs a static route through gateway, reachable via the
// interface on gateway's subnet.
func (nd *Node) AddRoute(dst pkt.Subnet, gateway pkt.IP) error {
	for _, ifc := range nd.Ifaces {
		if ifc.Subnet().Contains(gateway) {
			nd.Routes = append(nd.Routes, Route{Dst: dst, Gateway: gateway, Iface: ifc, Metric: 1})
			nd.rtDirty = true
			return nil
		}
	}
	return fmt.Errorf("netsim: %s: gateway %s not on a connected subnet", nd.Name, gateway)
}

// InvalidateRoutes marks the routing table changed after an in-place
// mutation of the Routes slice, forcing the next lookup to rebuild the
// high-degree route index. AddIface/AddRoute call it implicitly.
func (nd *Node) InvalidateRoutes() { nd.rtDirty = true }

// AddDefaultRoute installs 0.0.0.0/0 via gateway.
func (nd *Node) AddDefaultRoute(gateway pkt.IP) error {
	return nd.AddRoute(pkt.Subnet{Addr: 0, Mask: 0}, gateway)
}

// lookupRoute returns the longest-prefix-match route for dst. Small
// tables use a linear scan; tables past routeIndexMin go through a
// per-mask hash index that returns the identical route.
func (nd *Node) lookupRoute(dst pkt.IP) (Route, bool) {
	if len(nd.Routes) >= routeIndexMin {
		if nd.rtDirty || nd.rtIndex == nil {
			nd.buildRouteIndex()
		}
		for _, m := range nd.rtIndex.masks {
			if r, ok := nd.rtIndex.byDst[pkt.SubnetOf(dst, m)]; ok {
				return r, true
			}
		}
		return Route{}, false
	}
	best := -1
	var bestRoute Route
	for _, r := range nd.Routes {
		if r.Dst.Contains(dst) {
			if bits := r.Dst.Mask.Bits(); bits > best {
				best = bits
				bestRoute = r
			}
		}
	}
	return bestRoute, best >= 0
}

// buildRouteIndex (re)builds the longest-prefix index from the Routes
// slice. First route per destination wins, matching the linear scan's
// strict-improvement tie-break; unnormalized destinations are skipped
// because Contains can never match them.
func (nd *Node) buildRouteIndex() {
	idx := nd.rtIndex
	if idx == nil {
		idx = &routeIndex{}
		nd.rtIndex = idx
	}
	idx.byDst = make(map[pkt.Subnet]Route, len(nd.Routes))
	idx.masks = idx.masks[:0]
	for _, r := range nd.Routes {
		if pkt.IP(uint32(r.Dst.Addr)&uint32(r.Dst.Mask)) != r.Dst.Addr {
			continue
		}
		if _, dup := idx.byDst[r.Dst]; dup {
			continue
		}
		idx.byDst[r.Dst] = r
		seen := false
		for _, m := range idx.masks {
			if m == r.Dst.Mask {
				seen = true
				break
			}
		}
		if !seen {
			idx.masks = append(idx.masks, r.Dst.Mask)
		}
	}
	sort.Slice(idx.masks, func(i, j int) bool { return idx.masks[i].Bits() > idx.masks[j].Bits() })
	nd.rtDirty = false
}

// HasIP reports whether ip is one of the node's interface addresses.
func (nd *Node) HasIP(ip pkt.IP) bool {
	for _, ifc := range nd.Ifaces {
		if ifc.IP == ip {
			return true
		}
	}
	return false
}

// learnARP installs or refreshes a cache entry. Entries are values, so
// a refresh is a plain map assignment: broadcast-heavy wires refresh
// neighbours on nearly every frame, and this path must not allocate.
// The cache itself materializes on the first learned mapping.
func (nd *Node) learnARP(ip pkt.IP, mac pkt.MAC) {
	if nd.arp == nil {
		nd.arp = make(map[pkt.IP]arpEntry, 4)
	}
	nd.arp[ip] = arpEntry{mac: mac, learned: nd.net.Sched.Now()}
}

// ARPTable returns a sorted snapshot of the node's ARP cache (live entries
// only), the way EtherHostProbe reads the originating host's table.
func (nd *Node) ARPTable() []ARPEntry {
	now := nd.net.Sched.Now()
	var out []ARPEntry
	for ip, e := range nd.arp {
		age := now - e.learned
		if age <= nd.ARPCacheTTL {
			out = append(out, ARPEntry{IP: ip, MAC: e.mac, Age: age})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].IP < out[j].IP })
	return out
}

// FlushARP clears the node's ARP cache (back to the unmaterialized
// zero-cost state).
func (nd *Node) FlushARP() { nd.arp = nil }

// SetUp changes the node's liveness. A down node neither receives nor
// sends.
func (nd *Node) SetUp(up bool) { nd.Up = up }

// --- Sending ----------------------------------------------------------

// SendIP routes and transmits an IP packet. If h.Src is zero it is filled
// from the outgoing interface. TTL zero defaults to 30.
func (nd *Node) SendIP(h pkt.IPv4Header, payload []byte) error {
	if !nd.Up {
		return fmt.Errorf("netsim: %s is down", nd.Name)
	}
	if h.Dst == pkt.IP(0xffffffff) {
		// Limited broadcast: out the first interface.
		if len(nd.Ifaces) == 0 {
			return ErrNoRoute
		}
		return nd.sendIPVia(nd.Ifaces[0], h, payload, h.Dst)
	}
	r, ok := nd.lookupRoute(h.Dst)
	if !ok {
		return ErrNoRoute
	}
	nexthop := h.Dst
	if !r.Gateway.IsZero() {
		nexthop = r.Gateway
	}
	return nd.sendIPVia(r.Iface, h, payload, nexthop)
}

// SendIPVia transmits out a specific interface (used for broadcasts).
func (nd *Node) SendIPVia(ifc *Iface, h pkt.IPv4Header, payload []byte) error {
	if !nd.Up {
		return fmt.Errorf("netsim: %s is down", nd.Name)
	}
	return nd.sendIPVia(ifc, h, payload, h.Dst)
}

func (nd *Node) sendIPVia(ifc *Iface, h pkt.IPv4Header, payload []byte, nexthop pkt.IP) error {
	if h.Src.IsZero() {
		h.Src = ifc.IP
	}
	if h.TTL == 0 {
		h.TTL = 30
	}
	nd.ipIDSeq++
	if h.ID == 0 {
		h.ID = nd.ipIDSeq
	}
	p := &pkt.IPv4Packet{Header: h, Payload: payload}
	nd.transmitIP(ifc, p.Encode(), nexthop)
	return nil
}

// transmitIP resolves the next hop and puts the encoded packet on the wire.
func (nd *Node) transmitIP(ifc *Iface, raw []byte, nexthop pkt.IP) {
	sn := ifc.Subnet()
	// Link-level broadcast cases: limited broadcast, the subnet's directed
	// broadcast, and host-zero ("old-style" broadcast), which the
	// Traceroute Explorer Module exploits.
	if nexthop == pkt.IP(0xffffffff) || nexthop == sn.Broadcast() || nexthop == sn.HostZero() {
		nd.xmit(ifc, &pkt.Frame{Dst: pkt.BroadcastMAC, Src: ifc.MAC, EtherType: pkt.EtherTypeIPv4, Payload: raw})
		return
	}
	if e, ok := nd.arp[nexthop]; ok && nd.net.Sched.Now()-e.learned <= nd.ARPCacheTTL {
		nd.xmit(ifc, &pkt.Frame{Dst: e.mac, Src: ifc.MAC, EtherType: pkt.EtherTypeIPv4, Payload: raw})
		return
	}
	// ARP miss: queue and resolve.
	w, pending := nd.arpPending[nexthop]
	if !pending {
		if nd.arpPending == nil {
			nd.arpPending = make(map[pkt.IP]*arpWait, 2)
		}
		w = &arpWait{ifc: ifc}
		nd.arpPending[nexthop] = w
		nd.sendARPRequest(ifc, nexthop)
		nd.scheduleARPRetry(nexthop)
	}
	if len(w.queued) < 8 {
		w.queued = append(w.queued, raw)
	}
}

func (nd *Node) sendARPRequest(ifc *Iface, target pkt.IP) {
	a := &pkt.ARPPacket{Op: pkt.ARPRequest, SenderMAC: ifc.MAC, SenderIP: ifc.IP, TargetIP: target}
	nd.xmit(ifc, &pkt.Frame{Dst: pkt.BroadcastMAC, Src: ifc.MAC, EtherType: pkt.EtherTypeARP, Payload: a.Encode()})
}

func (nd *Node) scheduleARPRetry(target pkt.IP) {
	pending := nd.arpPending[target]
	pending.retry = nd.net.Sched.AfterTimer(time.Second, func() {
		w, still := nd.arpPending[target]
		if !still || !nd.Up {
			return
		}
		if w.tries++; w.tries >= 2 {
			delete(nd.arpPending, target) // resolution failed; drop queue
			return
		}
		nd.sendARPRequest(w.ifc, target)
		nd.scheduleARPRetry(target)
	})
}

func (nd *Node) xmit(ifc *Iface, f *pkt.Frame) {
	ifc.TxFrames++
	ifc.Seg.Transmit(ifc, f)
}

// --- Receiving --------------------------------------------------------

// receiveFrame hands an encoded frame to the node's stack. It reports
// whether any consumer retained a reference into raw past this call — the
// segment recycles the encode buffer only when nothing did. Decoders alias
// rather than copy (Frame.Payload, IPv4Packet.Payload, ICMP Data/Original,
// UDP Payload all point into raw), so any path that stores a decoded
// message or defers its encoding retains the buffer.
func (nd *Node) receiveFrame(ifc *Iface, raw []byte) (retained bool) {
	ifc.RxFrames++
	var f pkt.Frame // stack-decoded; handlers never store the struct itself
	if pkt.DecodeFrameInto(&f, raw) != nil {
		return false
	}
	switch f.EtherType {
	case pkt.EtherTypeARP:
		nd.handleARP(ifc, &f) // DecodeARP copies every field; nothing aliases raw
		return false
	case pkt.EtherTypeIPv4:
		return nd.handleIP(ifc, &f)
	}
	return false
}

func (nd *Node) handleARP(ifc *Iface, f *pkt.Frame) {
	a, err := pkt.DecodeARP(f.Payload)
	if err != nil {
		return
	}
	forMe := a.TargetIP == ifc.IP
	proxied := false
	if !forMe && a.Op == pkt.ARPRequest {
		for _, sn := range nd.ProxyARPFor {
			if sn.Contains(a.TargetIP) && a.TargetIP != a.SenderIP {
				proxied = true
				break
			}
		}
	}
	// Learn/update the sender mapping. Classic BSD semantics: refresh an
	// existing entry on any ARP traffic; create one when we are the target.
	if !a.SenderIP.IsZero() {
		if _, have := nd.arp[a.SenderIP]; have || forMe {
			nd.learnARP(a.SenderIP, a.SenderMAC)
		}
	}
	if a.Op == pkt.ARPRequest && (forMe || proxied) {
		reply := &pkt.ARPPacket{
			Op:        pkt.ARPReply,
			SenderMAC: ifc.MAC,
			SenderIP:  a.TargetIP,
			TargetMAC: a.SenderMAC,
			TargetIP:  a.SenderIP,
		}
		nd.xmit(ifc, &pkt.Frame{Dst: a.SenderMAC, Src: ifc.MAC, EtherType: pkt.EtherTypeARP, Payload: reply.Encode()})
	}
	if a.Op == pkt.ARPReply {
		nd.learnARP(a.SenderIP, a.SenderMAC)
		if w, ok := nd.arpPending[a.SenderIP]; ok {
			delete(nd.arpPending, a.SenderIP)
			w.retry.Stop() // resolved; the pending retransmit event is dead weight
			for _, raw := range w.queued {
				nd.xmit(w.ifc, &pkt.Frame{Dst: a.SenderMAC, Src: w.ifc.MAC, EtherType: pkt.EtherTypeIPv4, Payload: raw})
			}
		}
	}
}

func (nd *Node) handleIP(ifc *Iface, f *pkt.Frame) (retained bool) {
	var pv pkt.IPv4Packet // stack-decoded; consumers copy what they keep
	if pkt.DecodeIPv4Into(&pv, f.Payload) != nil {
		return false
	}
	p := &pv
	// Learn the sender's MAC from the frame when the IP source is on this
	// wire — the classic stack shortcut that lets a host answer a
	// broadcast ping without first ARPing for the prober.
	if ifc.Subnet().Contains(p.Header.Src) && !f.Src.IsBroadcast() && !p.Header.Src.IsZero() {
		nd.learnARP(p.Header.Src, f.Src)
	}
	dst := p.Header.Dst
	if local, owner := nd.localOwner(ifc, dst); local {
		retained = nd.deliverLocal(owner, p, f.Payload)
		// A directed broadcast (or host-zero) for a connected subnet other
		// than the arrival wire is both consumed (the router is a member
		// of that subnet) and, policy permitting, forwarded onto the wire.
		if nd.IsRouter && owner != ifc && !nd.HasIP(dst) &&
			nd.ForwardsDirectedBcast && p.Header.TTL > 1 {
			nd.reencodeAndSend(owner, p, dst) // re-encode copies the payload
		}
		return retained
	}
	if nd.IsRouter {
		nd.forward(ifc, p, f.Payload)
	}
	return false
}

// localOwner reports whether the node consumes a packet addressed to dst,
// and which interface logically owns the destination (for sourcing
// replies). Besides its own addresses and the limited broadcast, a node is
// a member of every subnet it has an interface on, so it accepts those
// subnets' directed broadcasts — and, per the old BSD convention, their
// host-zero addresses ("if a host receives a packet that is addressed to
// host zero on the subnet, the host is supposed to treat that packet as
// though it were addressed to that host"). This is what lets the Traceroute
// Explorer Module draw a reply out of the far gateway of a subnet.
func (nd *Node) localOwner(arrival *Iface, dst pkt.IP) (bool, *Iface) {
	for _, ifc := range nd.Ifaces {
		if ifc.IP == dst {
			return true, ifc
		}
	}
	if dst == pkt.IP(0xffffffff) {
		return true, arrival
	}
	for _, ifc := range nd.Ifaces {
		sn := ifc.Subnet()
		if dst == sn.Broadcast() {
			return true, ifc
		}
		if dst == sn.HostZero() && nd.TreatsHostZeroAsSelf {
			return true, ifc
		}
	}
	return false, nil
}

func (nd *Node) deliverLocal(ifc *Iface, p *pkt.IPv4Packet, rawIP []byte) bool {
	switch p.Header.Protocol {
	case pkt.ProtoICMP:
		return nd.deliverICMP(ifc, p, rawIP)
	case pkt.ProtoUDP:
		return nd.deliverUDP(ifc, p, rawIP)
	case pkt.ProtoTCP:
		return nd.deliverTCP(ifc, p)
	default:
		// "when the packet arrives at the destination, it will typically
		// cause the destination host to send either an ICMP Protocol
		// Unreachable or ICMP Port Unreachable message."
		nd.sendICMPError(ifc, p, rawIP, pkt.ICMPUnreachable, pkt.UnreachProtocol)
		return false // the error quotes via copy and encodes immediately
	}
}

func (nd *Node) deliverICMP(ifc *Iface, p *pkt.IPv4Packet, rawIP []byte) (retained bool) {
	var m pkt.ICMPMessage // stack-decoded; heap-copied only when a socket keeps it
	if pkt.DecodeICMPInto(&m, p.Payload) != nil {
		return false
	}
	// Hand the message to every open ICMP socket (raw-socket semantics).
	// m.Data and m.Original alias the frame bytes, so a queued event
	// retains them.
	if len(nd.icmpConns) > 0 {
		msg := new(pkt.ICMPMessage)
		*msg = m
		ev := ICMPEvent{From: p.Header.Src, To: p.Header.Dst, TTL: p.Header.TTL, Msg: msg, At: nd.net.Now()}
		for _, c := range nd.icmpConns {
			if c.mb.Put(ev) {
				retained = true
			}
		}
	}
	switch m.Type {
	case pkt.ICMPEcho:
		if !nd.RespondsEcho {
			return retained
		}
		reply := &pkt.ICMPMessage{Type: pkt.ICMPEchoReply, ID: m.ID, Seq: m.Seq, Data: m.Data}
		nd.replyICMP(ifc, p, reply)
		return true // reply aliases m.Data until the jitter event encodes it
	case pkt.ICMPMaskRequest:
		if !nd.RespondsMask {
			return retained
		}
		mask := ifc.Mask
		if nd.MaskReplyValue != 0 {
			mask = nd.MaskReplyValue
		}
		reply := &pkt.ICMPMessage{Type: pkt.ICMPMaskReply, ID: m.ID, Seq: m.Seq, Mask: mask}
		nd.replyICMP(ifc, p, reply) // value fields only; no alias into raw
	}
	return retained
}

// replyICMP sends an ICMP reply back to the source of p, with a small
// processing jitter. The jitter matters: a directed-broadcast echo request
// makes every host on the wire reply within a few milliseconds, and the
// resulting collisions are exactly the loss the paper reports for the
// Broadcast Ping module.
func (nd *Node) replyICMP(ifc *Iface, p *pkt.IPv4Packet, reply *pkt.ICMPMessage) {
	src := p.Header.Src
	jitter := time.Duration(nd.net.Sched.Rand().Int63n(int64(4 * time.Millisecond)))
	nd.net.Sched.After(jitter, func() {
		if !nd.Up {
			return
		}
		h := pkt.IPv4Header{Protocol: pkt.ProtoICMP, Src: ifc.IP, Dst: src, TTL: 30}
		_ = nd.SendIP(h, reply.Encode())
	})
}

func (nd *Node) deliverUDP(ifc *Iface, p *pkt.IPv4Packet, rawIP []byte) (retained bool) {
	var u pkt.UDPPacket // stack-decoded; events and replies copy the fields
	if pkt.DecodeUDPInto(&u, p.Payload, p.Header.Src, p.Header.Dst) != nil {
		return false
	}
	if h, ok := nd.udpHandlers[u.DstPort]; ok {
		// u.Payload aliases the frame; a handler may keep it past the call.
		h(nd, p.Header.Src, u.SrcPort, p.Header.Dst, u.Payload)
		return true
	}
	if conns := nd.udpListeners[u.DstPort]; len(conns) > 0 {
		ev := UDPEvent{Src: p.Header.Src, SrcPort: u.SrcPort, Dst: p.Header.Dst, Payload: u.Payload, At: nd.net.Now()}
		for _, c := range conns {
			if c.mb.Put(ev) {
				retained = true
			}
		}
		return retained
	}
	if u.DstPort == pkt.PortEcho && nd.UDPEchoEnabled {
		reply := &pkt.UDPPacket{SrcPort: pkt.PortEcho, DstPort: u.SrcPort, Payload: u.Payload}
		h := pkt.IPv4Header{Protocol: pkt.ProtoUDP, Src: ifc.IP, Dst: p.Header.Src, TTL: 30}
		_ = nd.SendIP(h, reply.Encode(ifc.IP, p.Header.Src)) // Encode copies now
		return false
	}
	// No consumer: port unreachable (the traceroute terminator).
	nd.sendICMPError(ifc, p, rawIP, pkt.ICMPUnreachable, pkt.UnreachPort)
	return false
}

// forward implements router behaviour: TTL decrement, Time Exceeded
// generation, directed-broadcast policy, and next-hop transmission.
func (nd *Node) forward(ifc *Iface, p *pkt.IPv4Packet, rawIP []byte) {
	h := p.Header
	if h.TTL <= 1 {
		if !nd.NoTimeExceeded {
			nd.sendICMPError(ifc, p, rawIP, pkt.ICMPTimeExceeded, 0)
		}
		return
	}
	r, ok := nd.lookupRoute(h.Dst)
	if !ok {
		nd.sendICMPError(ifc, p, rawIP, pkt.ICMPUnreachable, pkt.UnreachNet)
		return
	}
	nexthop := h.Dst
	if !r.Gateway.IsZero() {
		nexthop = r.Gateway
	}
	nd.reencodeAndSend(r.Iface, p, nexthop)
}

func (nd *Node) reencodeAndSend(out *Iface, p *pkt.IPv4Packet, nexthop pkt.IP) {
	fwd := &pkt.IPv4Packet{Header: p.Header, Payload: p.Payload}
	fwd.Header.TTL--
	nd.transmitIP(out, fwd.Encode(), nexthop)
}

// sendICMPError emits an ICMP error quoting the offending packet, applying
// RFC 1122 suppression rules (never about broadcasts or other ICMP errors)
// and the TTLEchoBug misbehaviour.
func (nd *Node) sendICMPError(ifc *Iface, orig *pkt.IPv4Packet, rawOrig []byte, icmpType, code byte) {
	if nd.SilentICMPErrors {
		return
	}
	// Never generate errors about broadcast packets...
	dst := orig.Header.Dst
	if dst == pkt.IP(0xffffffff) {
		return
	}
	if dst == ifc.Subnet().Broadcast() {
		return
	}
	// ...or about ICMP error messages.
	if orig.Header.Protocol == pkt.ProtoICMP {
		if m, err := pkt.DecodeICMP(orig.Payload); err == nil {
			switch m.Type {
			case pkt.ICMPTimeExceeded, pkt.ICMPUnreachable:
				return
			}
		}
	}
	msg := &pkt.ICMPMessage{Type: icmpType, Code: code, Original: pkt.QuoteOriginal(rawOrig)}
	ttl := byte(30)
	if nd.TTLEchoBug {
		// The paper's observed failure mode: "Some hosts send their
		// Unreachable message back to the source using the TTL field from
		// the received packet, causing the packet not to arrive back at
		// the source until the TTL of the original packet is large enough
		// for an entire round trip."
		ttl = orig.Header.TTL
		if ttl == 0 {
			ttl = 1
		}
	}
	h := pkt.IPv4Header{Protocol: pkt.ProtoICMP, Src: ifc.IP, Dst: orig.Header.Src, TTL: ttl}
	_ = nd.SendIP(h, msg.Encode())
}
