package netsim

import (
	"testing"
	"time"

	"fremont/internal/netsim/pkt"
	"fremont/internal/netsim/sim"
)

func mustIP(t testing.TB, s string) pkt.IP {
	t.Helper()
	ip, err := pkt.ParseIP(s)
	if err != nil {
		t.Fatal(err)
	}
	return ip
}

func mustSubnet(t testing.TB, s string) pkt.Subnet {
	t.Helper()
	sn, err := pkt.ParseSubnet(s)
	if err != nil {
		t.Fatal(err)
	}
	return sn
}

// twoSubnetNet builds: hostA on 10.1.1.0/24, router R between it and
// 10.1.2.0/24, hostB on the second wire.
func twoSubnetNet(t testing.TB, seed int64) (*Network, *Node, *Node, *Node) {
	n := New(seed)
	segA := n.NewSegment("segA", mustSubnet(t, "10.1.1.0/24"))
	segB := n.NewSegment("segB", mustSubnet(t, "10.1.2.0/24"))

	a := n.NewNode("hostA")
	a.AddIface(segA, mustIP(t, "10.1.1.10"), pkt.MaskBits(24))
	_ = a.AddDefaultRoute(mustIP(t, "10.1.1.1"))

	r := n.NewNode("router")
	r.IsRouter = true
	r.AddIface(segA, mustIP(t, "10.1.1.1"), pkt.MaskBits(24))
	r.AddIface(segB, mustIP(t, "10.1.2.1"), pkt.MaskBits(24))

	b := n.NewNode("hostB")
	b.AddIface(segB, mustIP(t, "10.1.2.20"), pkt.MaskBits(24))
	_ = b.AddDefaultRoute(mustIP(t, "10.1.2.1"))

	return n, a, r, b
}

func TestARPResolutionAndDelivery(t *testing.T) {
	n := New(1)
	seg := n.NewSegment("seg", mustSubnet(t, "10.0.0.0/24"))
	a := n.NewNode("a")
	a.AddIface(seg, mustIP(t, "10.0.0.1"), pkt.MaskBits(24))
	b := n.NewNode("b")
	b.AddIface(seg, mustIP(t, "10.0.0.2"), pkt.MaskBits(24))

	conn, err := b.OpenUDP(5000)
	if err != nil {
		t.Fatal(err)
	}
	var got UDPEvent
	var ok bool
	n.Sched.Spawn("recv", func(p *sim.Proc) {
		got, ok = conn.Recv(p, 5*time.Second)
	})

	u := &pkt.UDPPacket{SrcPort: 4000, DstPort: 5000, Payload: []byte("hi")}
	src, dst := mustIP(t, "10.0.0.1"), mustIP(t, "10.0.0.2")
	h := pkt.IPv4Header{Protocol: pkt.ProtoUDP, Src: src, Dst: dst, TTL: 30}
	if err := a.SendIP(h, u.Encode(src, dst)); err != nil {
		t.Fatal(err)
	}
	n.Run(10 * time.Second)

	if !ok {
		t.Fatal("datagram not delivered")
	}
	if string(got.Payload) != "hi" || got.Src != src || got.SrcPort != 4000 {
		t.Fatalf("got %+v", got)
	}
	// Sender must now have an ARP entry for the peer, and vice versa.
	if len(a.ARPTable()) == 0 {
		t.Fatal("sender ARP table empty after exchange")
	}
	found := false
	for _, e := range a.ARPTable() {
		if e.IP == dst {
			found = true
		}
	}
	if !found {
		t.Fatal("sender did not cache peer's ARP mapping")
	}
}

func TestPingAcrossRouter(t *testing.T) {
	n, a, _, b := twoSubnetNet(t, 2)
	icmp := a.OpenICMP()
	var reply ICMPEvent
	var ok bool
	n.Sched.Spawn("pinger", func(p *sim.Proc) {
		msg := &pkt.ICMPMessage{Type: pkt.ICMPEcho, ID: 7, Seq: 1}
		h := pkt.IPv4Header{Protocol: pkt.ProtoICMP, Dst: b.Ifaces[0].IP, TTL: 30}
		if err := a.SendIP(h, msg.Encode()); err != nil {
			t.Error(err)
			return
		}
		for {
			reply, ok = icmp.Recv(p, 5*time.Second)
			if !ok || reply.Msg.Type == pkt.ICMPEchoReply {
				return
			}
		}
	})
	n.Run(10 * time.Second)
	if !ok {
		t.Fatal("no echo reply across router")
	}
	if reply.From != b.Ifaces[0].IP || reply.Msg.ID != 7 {
		t.Fatalf("reply = %+v", reply)
	}
}

func TestTTLExpiryGeneratesTimeExceeded(t *testing.T) {
	n, a, r, b := twoSubnetNet(t, 3)
	conn, err := a.OpenUDP(0)
	if err != nil {
		t.Fatal(err)
	}
	icmp := a.OpenICMP()
	var got ICMPEvent
	var ok bool
	n.Sched.Spawn("tracer", func(p *sim.Proc) {
		if err := conn.SendTTL(b.Ifaces[0].IP, 33434, []byte("probe"), 1); err != nil {
			t.Error(err)
			return
		}
		got, ok = icmp.Recv(p, 5*time.Second)
	})
	n.Run(10 * time.Second)
	if !ok {
		t.Fatal("no ICMP received for TTL-1 probe")
	}
	if got.Msg.Type != pkt.ICMPTimeExceeded {
		t.Fatalf("got ICMP type %d, want time exceeded", got.Msg.Type)
	}
	if got.From != r.Ifaces[0].IP {
		t.Fatalf("time exceeded from %s, want router %s", got.From, r.Ifaces[0].IP)
	}
	// The quoted original must identify our probe.
	inner, err := pkt.DecodeIPv4Header(got.Msg.Original)
	if err != nil {
		t.Fatal(err)
	}
	if inner.Dst != b.Ifaces[0].IP {
		t.Fatalf("quoted dst = %s", inner.Dst)
	}
}

func TestPortUnreachableAtDestination(t *testing.T) {
	n, a, _, b := twoSubnetNet(t, 4)
	conn, _ := a.OpenUDP(0)
	icmp := a.OpenICMP()
	var got ICMPEvent
	var ok bool
	n.Sched.Spawn("tracer", func(p *sim.Proc) {
		_ = conn.SendTTL(b.Ifaces[0].IP, 33434, []byte("probe"), 30)
		got, ok = icmp.Recv(p, 5*time.Second)
	})
	n.Run(10 * time.Second)
	if !ok {
		t.Fatal("no ICMP for high-port probe")
	}
	if got.Msg.Type != pkt.ICMPUnreachable || got.Msg.Code != pkt.UnreachPort {
		t.Fatalf("got type=%d code=%d, want port unreachable", got.Msg.Type, got.Msg.Code)
	}
	if got.From != b.Ifaces[0].IP {
		t.Fatalf("unreachable from %s, want destination %s", got.From, b.Ifaces[0].IP)
	}
}

func TestUDPEchoService(t *testing.T) {
	n, a, _, b := twoSubnetNet(t, 5)
	b.UDPEchoEnabled = true
	conn, _ := a.OpenUDP(0)
	var got UDPEvent
	var ok bool
	n.Sched.Spawn("prober", func(p *sim.Proc) {
		_ = conn.Send(b.Ifaces[0].IP, pkt.PortEcho, []byte("echo me"))
		got, ok = conn.Recv(p, 5*time.Second)
	})
	n.Run(10 * time.Second)
	if !ok {
		t.Fatal("no UDP echo reply")
	}
	if string(got.Payload) != "echo me" || got.Src != b.Ifaces[0].IP {
		t.Fatalf("got %+v", got)
	}
}

func TestMaskReply(t *testing.T) {
	n, a, _, b := twoSubnetNet(t, 6)
	b.RespondsMask = true
	icmp := a.OpenICMP()
	var got ICMPEvent
	var ok bool
	n.Sched.Spawn("masker", func(p *sim.Proc) {
		m := &pkt.ICMPMessage{Type: pkt.ICMPMaskRequest, ID: 1, Seq: 1}
		h := pkt.IPv4Header{Protocol: pkt.ProtoICMP, Dst: b.Ifaces[0].IP, TTL: 30}
		_ = a.SendIP(h, m.Encode())
		for {
			got, ok = icmp.Recv(p, 5*time.Second)
			if !ok || got.Msg.Type == pkt.ICMPMaskReply {
				return
			}
		}
	})
	n.Run(10 * time.Second)
	if !ok {
		t.Fatal("no mask reply")
	}
	if got.Msg.Mask != pkt.MaskBits(24) {
		t.Fatalf("mask = %s, want /24", got.Msg.Mask)
	}
}

func TestMaskReplyDisabledByDefault(t *testing.T) {
	n, a, _, b := twoSubnetNet(t, 7)
	if b.RespondsMask {
		t.Fatal("RespondsMask should default to false (paper: not widely implemented)")
	}
	icmp := a.OpenICMP()
	var ok bool
	n.Sched.Spawn("masker", func(p *sim.Proc) {
		m := &pkt.ICMPMessage{Type: pkt.ICMPMaskRequest, ID: 1, Seq: 1}
		h := pkt.IPv4Header{Protocol: pkt.ProtoICMP, Dst: b.Ifaces[0].IP, TTL: 30}
		_ = a.SendIP(h, m.Encode())
		_, ok = icmp.Recv(p, 5*time.Second)
	})
	n.Run(10 * time.Second)
	if ok {
		t.Fatal("got a mask reply from a host that should not send one")
	}
}

func TestWrongMaskReply(t *testing.T) {
	n, a, _, b := twoSubnetNet(t, 8)
	b.RespondsMask = true
	b.MaskReplyValue = pkt.MaskBits(16) // misconfigured host
	icmp := a.OpenICMP()
	var got ICMPEvent
	n.Sched.Spawn("masker", func(p *sim.Proc) {
		m := &pkt.ICMPMessage{Type: pkt.ICMPMaskRequest, ID: 1, Seq: 1}
		h := pkt.IPv4Header{Protocol: pkt.ProtoICMP, Dst: b.Ifaces[0].IP, TTL: 30}
		_ = a.SendIP(h, m.Encode())
		got, _ = icmp.Recv(p, 5*time.Second)
	})
	n.Run(10 * time.Second)
	if got.Msg == nil || got.Msg.Mask != pkt.MaskBits(16) {
		t.Fatalf("expected the wrong /16 mask to be reported, got %+v", got.Msg)
	}
}

func TestDownHostDoesNotRespond(t *testing.T) {
	n, a, _, b := twoSubnetNet(t, 9)
	b.SetUp(false)
	icmp := a.OpenICMP()
	var ok bool
	n.Sched.Spawn("pinger", func(p *sim.Proc) {
		m := &pkt.ICMPMessage{Type: pkt.ICMPEcho, ID: 1, Seq: 1}
		h := pkt.IPv4Header{Protocol: pkt.ProtoICMP, Dst: b.Ifaces[0].IP, TTL: 30}
		_ = a.SendIP(h, m.Encode())
		_, ok = icmp.Recv(p, 5*time.Second)
	})
	n.Run(10 * time.Second)
	if ok {
		t.Fatal("down host responded to ping")
	}
}

func TestHostZeroTreatedAsSelf(t *testing.T) {
	// The traceroute trick: a UDP probe to host zero of the destination
	// subnet draws a port-unreachable from some host there.
	n, a, _, _ := twoSubnetNet(t, 10)
	conn, _ := a.OpenUDP(0)
	icmp := a.OpenICMP()
	var got ICMPEvent
	var ok bool
	n.Sched.Spawn("tracer", func(p *sim.Proc) {
		_ = conn.SendTTL(mustIP(t, "10.1.2.0"), 33434, []byte("probe"), 30)
		got, ok = icmp.Recv(p, 5*time.Second)
	})
	n.Run(10 * time.Second)
	if !ok {
		t.Fatal("no reply to host-zero probe")
	}
	if got.Msg.Type != pkt.ICMPUnreachable {
		t.Fatalf("got type %d", got.Msg.Type)
	}
}

func TestDirectedBroadcastPolicy(t *testing.T) {
	// With forwarding enabled, a remote directed-broadcast ping reaches
	// hosts behind the gateway; with it disabled (the default), only the
	// gateway itself — a member of the target subnet — answers.
	for _, forwards := range []bool{true, false} {
		n, a, r, b := twoSubnetNet(t, 11)
		r.ForwardsDirectedBcast = forwards
		icmp := a.OpenICMP()
		replies := map[pkt.IP]bool{}
		n.Sched.Spawn("bping", func(p *sim.Proc) {
			m := &pkt.ICMPMessage{Type: pkt.ICMPEcho, ID: 9, Seq: 1}
			h := pkt.IPv4Header{Protocol: pkt.ProtoICMP, Dst: mustIP(t, "10.1.2.255"), TTL: 5}
			_ = a.SendIP(h, m.Encode())
			for {
				ev, rok := icmp.Recv(p, 5*time.Second)
				if !rok {
					return
				}
				if ev.Msg.Type == pkt.ICMPEchoReply {
					replies[ev.From] = true
				}
			}
		})
		n.Run(15 * time.Second)
		if got := replies[b.Ifaces[0].IP]; got != forwards {
			t.Fatalf("forwards=%v but host-behind-gateway reply=%v (replies=%v)", forwards, got, replies)
		}
		if !replies[r.Ifaces[1].IP] {
			t.Fatalf("gateway (member of target subnet) did not reply; replies=%v", replies)
		}
	}
}

func TestSilentRouterDropsExpired(t *testing.T) {
	n, a, r, b := twoSubnetNet(t, 12)
	r.NoTimeExceeded = true
	conn, _ := a.OpenUDP(0)
	icmp := a.OpenICMP()
	var ok bool
	n.Sched.Spawn("tracer", func(p *sim.Proc) {
		_ = conn.SendTTL(b.Ifaces[0].IP, 33434, []byte("probe"), 1)
		_, ok = icmp.Recv(p, 5*time.Second)
	})
	n.Run(10 * time.Second)
	if ok {
		t.Fatal("silent router sent a time exceeded")
	}
}

func TestTTLEchoBugDelaysError(t *testing.T) {
	// A TTL-1 probe to a buggy router yields a time-exceeded that is sent
	// with TTL 1 — it reaches an adjacent prober, but would die further
	// out. Verify the arriving TTL is 1 (instead of a sane 30).
	n, a, r, b := twoSubnetNet(t, 13)
	r.TTLEchoBug = true
	conn, _ := a.OpenUDP(0)
	icmp := a.OpenICMP()
	var got ICMPEvent
	var ok bool
	n.Sched.Spawn("tracer", func(p *sim.Proc) {
		_ = conn.SendTTL(b.Ifaces[0].IP, 33434, []byte("probe"), 1)
		got, ok = icmp.Recv(p, 5*time.Second)
	})
	n.Run(10 * time.Second)
	if !ok {
		t.Fatal("adjacent prober should still get the buggy reply")
	}
	if got.TTL != 1 {
		t.Fatalf("reply TTL = %d, want 1 (echoed from probe)", got.TTL)
	}
}

func TestProxyARP(t *testing.T) {
	n := New(14)
	seg := n.NewSegment("seg", mustSubnet(t, "10.0.0.0/24"))
	a := n.NewNode("a")
	a.AddIface(seg, mustIP(t, "10.0.0.1"), pkt.MaskBits(24))
	gw := n.NewNode("gw")
	gw.IsRouter = true
	gwIfc := gw.AddIface(seg, mustIP(t, "10.0.0.254"), pkt.MaskBits(24))
	// The gateway proxies for 10.0.0.128/25 hosts "behind" it.
	gw.ProxyARPFor = []pkt.Subnet{mustSubnet(t, "10.0.0.128/25")}

	tap, err := a.OpenTap(a.Ifaces[0], true, func(raw []byte) bool {
		f, err := pkt.DecodeFrame(raw)
		return err == nil && f.EtherType == pkt.EtherTypeARP
	})
	if err != nil {
		t.Fatal(err)
	}
	var replyMAC pkt.MAC
	var sawReply bool
	n.Sched.Spawn("watcher", func(p *sim.Proc) {
		for {
			raw, ok := tap.Recv(p, 5*time.Second)
			if !ok {
				return
			}
			f, _ := pkt.DecodeFrame(raw)
			arp, err := pkt.DecodeARP(f.Payload)
			if err == nil && arp.Op == pkt.ARPReply && arp.SenderIP == mustIP(t, "10.0.0.200") {
				replyMAC = arp.SenderMAC
				sawReply = true
			}
		}
	})
	// Trigger: host a ARPs for 10.0.0.200 (no such host on the wire).
	n.Sched.After(time.Second, func() {
		u := &pkt.UDPPacket{SrcPort: 1, DstPort: 2, Payload: nil}
		dst := mustIP(t, "10.0.0.200")
		h := pkt.IPv4Header{Protocol: pkt.ProtoUDP, Dst: dst, TTL: 30}
		_ = a.SendIP(h, u.Encode(a.Ifaces[0].IP, dst))
	})
	n.Run(10 * time.Second)
	if !sawReply {
		t.Fatal("gateway did not proxy-ARP for covered address")
	}
	if replyMAC != gwIfc.MAC {
		t.Fatalf("proxy reply MAC %s, want gateway %s", replyMAC, gwIfc.MAC)
	}
}

func TestTapSeesARPTraffic(t *testing.T) {
	n := New(15)
	seg := n.NewSegment("seg", mustSubnet(t, "10.0.0.0/24"))
	var hosts []*Node
	for i := 1; i <= 5; i++ {
		h := n.NewNode(string(rune('a' + i)))
		h.AddIface(seg, pkt.IPv4(10, 0, 0, byte(i)), pkt.MaskBits(24))
		hosts = append(hosts, h)
	}
	watcher := n.NewNode("watcher")
	watcher.AddIface(seg, mustIP(t, "10.0.0.100"), pkt.MaskBits(24))
	if _, err := watcher.OpenTap(watcher.Ifaces[0], false, nil); err == nil {
		t.Fatal("unprivileged tap open succeeded")
	}
	tap, err := watcher.OpenTap(watcher.Ifaces[0], true, nil)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[pkt.IP]bool{}
	n.Sched.Spawn("arpwatch", func(p *sim.Proc) {
		for {
			raw, ok := tap.Recv(p, 30*time.Second)
			if !ok {
				return
			}
			f, err := pkt.DecodeFrame(raw)
			if err != nil || f.EtherType != pkt.EtherTypeARP {
				continue
			}
			if a, err := pkt.DecodeARP(f.Payload); err == nil {
				seen[a.SenderIP] = true
			}
		}
	})
	// Host 1 talks to hosts 2..5.
	n.Sched.After(time.Second, func() {
		for i := 2; i <= 5; i++ {
			dst := pkt.IPv4(10, 0, 0, byte(i))
			u := &pkt.UDPPacket{SrcPort: 1, DstPort: PortDiscard}
			h := pkt.IPv4Header{Protocol: pkt.ProtoUDP, Dst: dst, TTL: 30}
			_ = hosts[0].SendIP(h, u.Encode(hosts[0].Ifaces[0].IP, dst))
		}
	})
	n.Run(20 * time.Second)
	for i := 1; i <= 5; i++ {
		if !seen[pkt.IPv4(10, 0, 0, byte(i))] {
			t.Fatalf("tap missed ARP activity from 10.0.0.%d (saw %v)", i, seen)
		}
	}
}

func TestBroadcastPingCollisions(t *testing.T) {
	// 50 hosts answering a local broadcast ping within milliseconds must
	// lose a meaningful fraction of replies to collisions — the Table 5
	// behaviour — while a sequential sweep of the same hosts loses none.
	n := New(16)
	seg := n.NewSegment("seg", mustSubnet(t, "10.0.0.0/24"))
	prober := n.NewNode("prober")
	prober.AddIface(seg, mustIP(t, "10.0.0.250"), pkt.MaskBits(24))
	for i := 1; i <= 50; i++ {
		h := n.NewNode(nodeName("h", i))
		h.AddIface(seg, pkt.IPv4(10, 0, 0, byte(i)), pkt.MaskBits(24))
	}
	icmp := prober.OpenICMP()
	replies := map[pkt.IP]bool{}
	n.Sched.Spawn("bping", func(p *sim.Proc) {
		m := &pkt.ICMPMessage{Type: pkt.ICMPEcho, ID: 42, Seq: 1}
		h := pkt.IPv4Header{Protocol: pkt.ProtoICMP, Dst: mustIP(t, "10.0.0.255"), TTL: 1}
		_ = prober.SendIP(h, m.Encode())
		for {
			ev, ok := icmp.Recv(p, 10*time.Second)
			if !ok {
				return
			}
			if ev.Msg.Type == pkt.ICMPEchoReply {
				replies[ev.From] = true
			}
		}
	})
	n.Run(30 * time.Second)
	if len(replies) == 50 {
		t.Fatal("broadcast ping lost no replies; collision model inert")
	}
	if len(replies) < 20 {
		t.Fatalf("broadcast ping got only %d/50 replies; collision model too harsh", len(replies))
	}
	t.Logf("broadcast ping: %d/50 replies (collisions dropped %d frames)", len(replies), seg.Stats.Dropped)

	// Sequential pings, spaced out: every host answers.
	replies2 := map[pkt.IP]bool{}
	n.Sched.Spawn("seqping", func(p *sim.Proc) {
		for i := 1; i <= 50; i++ {
			m := &pkt.ICMPMessage{Type: pkt.ICMPEcho, ID: 43, Seq: uint16(i)}
			h := pkt.IPv4Header{Protocol: pkt.ProtoICMP, Dst: pkt.IPv4(10, 0, 0, byte(i)), TTL: 30}
			_ = prober.SendIP(h, m.Encode())
			p.Sleep(2 * time.Second)
		}
	})
	n.Sched.Spawn("seqcollect", func(p *sim.Proc) {
		for {
			ev, ok := icmp.Recv(p, 150*time.Second)
			if !ok {
				return
			}
			if ev.Msg.Type == pkt.ICMPEchoReply && ev.Msg.ID == 43 {
				replies2[ev.From] = true
			}
		}
	})
	n.Run(300 * time.Second)
	if len(replies2) != 50 {
		t.Fatalf("sequential ping got %d/50 replies, want all", len(replies2))
	}
}

func TestRIPAdvertisements(t *testing.T) {
	n, a, r, _ := twoSubnetNet(t, 17)
	_ = r.AddRoute(mustSubnet(t, "10.1.3.0/24"), mustIP(t, "10.1.2.2"))
	n.StartRIP(r)
	tap, err := a.OpenTap(a.Ifaces[0], true, nil)
	if err != nil {
		t.Fatal(err)
	}
	advertised := map[pkt.IP]uint32{}
	n.Sched.Spawn("ripwatch", func(p *sim.Proc) {
		for {
			raw, ok := tap.Recv(p, 2*time.Minute)
			if !ok {
				return
			}
			f, err := pkt.DecodeFrame(raw)
			if err != nil || f.EtherType != pkt.EtherTypeIPv4 {
				continue
			}
			ip, err := pkt.DecodeIPv4(f.Payload)
			if err != nil || ip.Header.Protocol != pkt.ProtoUDP {
				continue
			}
			u, err := pkt.DecodeUDP(ip.Payload, ip.Header.Src, ip.Header.Dst)
			if err != nil || u.DstPort != pkt.PortRIP {
				continue
			}
			rp, err := pkt.DecodeRIP(u.Payload)
			if err != nil {
				continue
			}
			for _, e := range rp.Entries {
				advertised[e.Addr] = e.Metric
			}
		}
	})
	n.Run(2 * time.Minute)
	if _, ok := advertised[mustIP(t, "10.1.2.0")]; !ok {
		t.Fatalf("router did not advertise its other connected subnet; saw %v", advertised)
	}
	if _, ok := advertised[mustIP(t, "10.1.3.0")]; !ok {
		t.Fatalf("router did not advertise its static route; saw %v", advertised)
	}
	// Split horizon: the wire's own subnet must NOT be advertised onto it.
	if _, ok := advertised[mustIP(t, "10.1.1.0")]; ok {
		t.Fatal("router advertised the local subnet back onto its wire (split horizon broken)")
	}
}

func TestPromiscuousRIPHost(t *testing.T) {
	n, a, r, b := twoSubnetNet(t, 18)
	_ = r.AddRoute(mustSubnet(t, "10.1.3.0/24"), mustIP(t, "10.1.2.2"))
	n.StartRIP(r)
	n.StartPromiscuousRIP(b, 30*time.Second)
	_ = a
	// Watch segB: the promiscuous host must advertise segB's own subnet
	// onto segB — which a split-horizon router never does.
	watcher := n.NewNode("watch2")
	watcher.AddIface(n.Segments[1], mustIP(t, "10.1.2.99"), pkt.MaskBits(24))
	tap, _ := watcher.OpenTap(watcher.Ifaces[0], true, nil)
	promiscSources := map[pkt.IP]bool{}
	n.Sched.Spawn("ripwatch", func(p *sim.Proc) {
		for {
			raw, ok := tap.Recv(p, 5*time.Minute)
			if !ok {
				return
			}
			f, err := pkt.DecodeFrame(raw)
			if err != nil || f.EtherType != pkt.EtherTypeIPv4 {
				continue
			}
			ip, err := pkt.DecodeIPv4(f.Payload)
			if err != nil || ip.Header.Protocol != pkt.ProtoUDP {
				continue
			}
			u, err := pkt.DecodeUDP(ip.Payload, ip.Header.Src, ip.Header.Dst)
			if err != nil || u.DstPort != pkt.PortRIP {
				continue
			}
			rp, err := pkt.DecodeRIP(u.Payload)
			if err != nil || rp.Command != pkt.RIPResponse {
				continue
			}
			for _, e := range rp.Entries {
				if e.Addr == mustIP(t, "10.1.2.0") {
					promiscSources[ip.Header.Src] = true
				}
			}
		}
	})
	n.Run(5 * time.Minute)
	if !promiscSources[b.Ifaces[0].IP] {
		t.Fatal("promiscuous host not detected advertising the local subnet")
	}
	if promiscSources[r.Ifaces[1].IP] {
		t.Fatal("well-behaved router advertised the local subnet")
	}
}

func TestChatterGeneratesARP(t *testing.T) {
	n := New(19)
	seg := n.NewSegment("seg", mustSubnet(t, "10.0.0.0/24"))
	for i := 1; i <= 10; i++ {
		h := n.NewNode(nodeName("c", i))
		h.AddIface(seg, pkt.IPv4(10, 0, 0, byte(i)), pkt.MaskBits(24))
		n.StartChatter(h, 2*time.Minute)
	}
	watcher := n.NewNode("w")
	watcher.AddIface(seg, mustIP(t, "10.0.0.100"), pkt.MaskBits(24))
	tap, _ := watcher.OpenTap(watcher.Ifaces[0], true, nil)
	seen := map[pkt.IP]bool{}
	n.Sched.Spawn("arpwatch", func(p *sim.Proc) {
		for {
			raw, ok := tap.Recv(p, time.Hour)
			if !ok {
				return
			}
			f, err := pkt.DecodeFrame(raw)
			if err != nil || f.EtherType != pkt.EtherTypeARP {
				continue
			}
			if arp, err := pkt.DecodeARP(f.Payload); err == nil && !arp.SenderIP.IsZero() {
				seen[arp.SenderIP] = true
			}
		}
	})
	n.Run(time.Hour)
	if len(seen) < 8 {
		t.Fatalf("after an hour of chatter, ARPwatch saw only %d/10 hosts", len(seen))
	}
}

func TestLivenessCycles(t *testing.T) {
	n := New(20)
	seg := n.NewSegment("seg", mustSubnet(t, "10.0.0.0/24"))
	h := n.NewNode("flaky")
	h.AddIface(seg, mustIP(t, "10.0.0.1"), pkt.MaskBits(24))
	n.StartLiveness(h, 0.5, time.Hour)
	ups, downs := 0, 0
	for i := 0; i < 48; i++ {
		n.Run(time.Hour)
		if h.Up {
			ups++
		} else {
			downs++
		}
	}
	if ups == 0 || downs == 0 {
		t.Fatalf("liveness never cycled: ups=%d downs=%d", ups, downs)
	}
}

func TestNoRouteError(t *testing.T) {
	n := New(21)
	seg := n.NewSegment("seg", mustSubnet(t, "10.0.0.0/24"))
	a := n.NewNode("a")
	a.AddIface(seg, mustIP(t, "10.0.0.1"), pkt.MaskBits(24))
	h := pkt.IPv4Header{Protocol: pkt.ProtoUDP, Dst: mustIP(t, "99.99.99.99")}
	if err := a.SendIP(h, nil); err == nil {
		t.Fatal("SendIP to unroutable destination succeeded")
	}
}

func TestDuplicateIPAddresses(t *testing.T) {
	// Two hosts with the same IP: both answer ARP, and the requester's
	// cache flaps between MACs — the conflict the analysis program flags.
	n := New(22)
	seg := n.NewSegment("seg", mustSubnet(t, "10.0.0.0/24"))
	a := n.NewNode("a")
	a.AddIface(seg, mustIP(t, "10.0.0.1"), pkt.MaskBits(24))
	d1 := n.NewNode("dup1")
	d1.AddIface(seg, mustIP(t, "10.0.0.66"), pkt.MaskBits(24))
	d2 := n.NewNode("dup2")
	d2.AddIface(seg, mustIP(t, "10.0.0.66"), pkt.MaskBits(24))

	tap, _ := a.OpenTap(a.Ifaces[0], true, nil)
	macs := map[pkt.MAC]bool{}
	n.Sched.Spawn("watch", func(p *sim.Proc) {
		for {
			raw, ok := tap.Recv(p, 30*time.Second)
			if !ok {
				return
			}
			f, err := pkt.DecodeFrame(raw)
			if err != nil || f.EtherType != pkt.EtherTypeARP {
				continue
			}
			if arp, err := pkt.DecodeARP(f.Payload); err == nil &&
				arp.Op == pkt.ARPReply && arp.SenderIP == mustIP(t, "10.0.0.66") {
				macs[arp.SenderMAC] = true
			}
		}
	})
	n.Sched.After(time.Second, func() {
		dst := mustIP(t, "10.0.0.66")
		u := &pkt.UDPPacket{SrcPort: 1, DstPort: PortDiscard}
		h := pkt.IPv4Header{Protocol: pkt.ProtoUDP, Dst: dst, TTL: 30}
		_ = a.SendIP(h, u.Encode(a.Ifaces[0].IP, dst))
	})
	n.Run(30 * time.Second)
	if len(macs) != 2 {
		t.Fatalf("saw %d distinct MACs for duplicated IP, want 2", len(macs))
	}
}

func nodeName(prefix string, i int) string {
	return prefix + string(rune('0'+i/10)) + string(rune('0'+i%10))
}
