package campus

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
	"time"

	"fremont/internal/netsim/pkt"
	"fremont/internal/netsim/sim"
)

func TestBuildCounts(t *testing.T) {
	cfg := DefaultConfig()
	c := Build(cfg)
	if got := len(c.Assigned); got != cfg.AssignedSubnets {
		t.Errorf("assigned subnets = %d, want %d", got, cfg.AssignedSubnets)
	}
	if got := len(c.Live); got != cfg.LiveSubnets {
		t.Errorf("live subnets = %d, want %d", got, cfg.LiveSubnets)
	}
	dns := 0
	for range c.DNSListed {
		dns++
	}
	if dns != cfg.DNSSubnets {
		t.Errorf("DNS-listed subnets = %d, want %d", dns, cfg.DNSSubnets)
	}
	silent := 0
	for range c.SilentBehind {
		silent++
	}
	if silent != cfg.SilentSubnets {
		t.Errorf("silent subnets = %d, want %d", silent, cfg.SilentSubnets)
	}
	if c.CSRealCount != 54 {
		t.Errorf("CS real machines = %d, want 54", c.CSRealCount)
	}
	if c.CSDNSCount != 56 {
		t.Errorf("CS DNS entries = %d, want 56", c.CSDNSCount)
	}
	named := 0
	for addr := range c.NamedGWSubnet {
		_ = addr
		named++
	}
	// "31 gateways connecting 48 of those subnets": allow a small slack
	// on coverage, which depends on group-size packing.
	if named < 44 || named > cfg.NamedGatewaySubnetTarget {
		t.Errorf("named-gateway subnets = %d, want ≈%d", named, cfg.NamedGatewaySubnetTarget)
	}
	if len(c.Gateways) < 40 {
		t.Errorf("gateways = %d, want ~55", len(c.Gateways))
	}
	t.Logf("campus: %d gateways, %d named-gateway subnets, %d nodes",
		len(c.Gateways), named, len(c.Net.Nodes))
}

func TestEndToEndReachability(t *testing.T) {
	// Fremont must be able to ping a host on a distant, healthy subnet.
	cfg := DefaultConfig()
	cfg.Chatter = false
	cfg.Liveness = false
	c := Build(cfg)
	// Find a live dept subnet that is not silent and has a host at .10.
	var target pkt.IP
	for _, sn := range c.Live {
		if sn.Addr == c.Backbone.Addr || sn.Addr == c.CSSubnet.Addr || c.SilentBehind[sn.Addr] {
			continue
		}
		if c.Net.IfaceByIP(sn.Addr+10) != nil {
			target = sn.Addr + 10
			break
		}
	}
	if target.IsZero() {
		t.Fatal("no target host found")
	}
	icmp := c.Fremont.OpenICMP()
	var ok bool
	c.Net.Sched.Spawn("ping", func(p *sim.Proc) {
		msg := &pkt.ICMPMessage{Type: pkt.ICMPEcho, ID: 1, Seq: 1}
		h := pkt.IPv4Header{Protocol: pkt.ProtoICMP, Dst: target, TTL: 30}
		if err := c.Fremont.SendIP(h, msg.Encode()); err != nil {
			t.Error(err)
			return
		}
		for {
			ev, rok := icmp.Recv(p, 10*time.Second)
			if !rok {
				return
			}
			if ev.Msg.Type == pkt.ICMPEchoReply && ev.From == target {
				ok = true
				return
			}
		}
	})
	c.Net.Run(time.Minute)
	if !ok {
		t.Fatalf("no echo reply from distant host %s", target)
	}
}

func TestDepartmentBuildIsSmall(t *testing.T) {
	cfg := DefaultConfig()
	c := BuildDepartment(cfg)
	if len(c.Net.Nodes) > 80 {
		t.Fatalf("department build has %d nodes; should be CS wire only", len(c.Net.Nodes))
	}
	if c.CSRealCount != 54 {
		t.Fatalf("CS real machines = %d, want 54", c.CSRealCount)
	}
}

func TestFaultInjection(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InjectFaults = true
	cfg.Chatter = false
	cfg.Liveness = false
	c := BuildDepartment(cfg)
	f := c.Faults
	if f.DuplicateIP.IsZero() || f.HardwareChangeIP.IsZero() || f.PromiscuousIP.IsZero() ||
		f.RemovedIP.IsZero() || len(f.WrongMaskIPs) != 2 || len(f.ProxyARPRange) != 3 {
		t.Fatalf("faults incomplete: %+v", f)
	}
	// The removed host goes down at the configured time.
	var gone bool
	c.Net.Sched.At(f.RemovedAt+time.Minute, func() {
		gone = c.Net.IfaceByIP(f.RemovedIP) != nil && !c.Net.IfaceByIP(f.RemovedIP).Node.Up
	})
	end := f.RemovedAt
	if f.HardwareChangeAt > end {
		end = f.HardwareChangeAt
	}
	c.Net.Run(end + 2*time.Minute)
	if !gone {
		t.Fatal("removed host still up after RemovedAt")
	}
	// The hardware-change host has a new MAC after HardwareChangeAt.
	ifc := c.Net.IfaceByIP(f.HardwareChangeIP)
	if ifc.MAC != (pkt.MAC{0x08, 0x00, 0x20, 0xee, 0xee, 0x01}) {
		t.Fatalf("hardware change not applied: %s", ifc.MAC)
	}
}

func TestDiurnalFactorShape(t *testing.T) {
	if diurnalFactor(12) != 1.0 {
		t.Error("midday factor should be 1.0")
	}
	if diurnalFactor(3) >= diurnalFactor(12) {
		t.Error("night factor should be below midday")
	}
	for h := 0; h < 24; h++ {
		f := diurnalFactor(h)
		if f <= 0 || f > 1 {
			t.Errorf("hour %d: factor %f out of range", h, f)
		}
	}
}

// serializeCampus renders every topology-relevant fact of a built campus
// — nodes, interfaces, routes, behaviour knobs, ground truth, injected
// faults — into one canonical byte string. Map iteration order is the
// only nondeterminism in Go itself, so maps are emitted sorted.
func serializeCampus(c *Campus) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "fremont=%s dns=%s backbone=%s cs=%s\n",
		c.FremontIP, c.DNSServerIP, c.Backbone, c.CSSubnet)
	for _, n := range c.Net.Nodes {
		fmt.Fprintf(&b, "node %s router=%v up=%v echo=%v mask=%v maskval=%s udpecho=%v hostzero=%v dbcast=%v proxyarp=%v\n",
			n.Name, n.IsRouter, n.Up, n.RespondsEcho, n.RespondsMask,
			n.MaskReplyValue, n.UDPEchoEnabled, n.TreatsHostZeroAsSelf,
			n.ForwardsDirectedBcast, n.ProxyARPFor)
		for _, ifc := range n.Ifaces {
			fmt.Fprintf(&b, "  iface %s %s %s seg=%s\n", ifc.IP, ifc.MAC, ifc.Mask, ifc.Seg.Name)
		}
		for _, rt := range n.Routes {
			fmt.Fprintf(&b, "  route %s via %s dev %s metric=%d\n",
				rt.Dst, rt.Gateway, rt.Iface.IP, rt.Metric)
		}
	}
	fmt.Fprintf(&b, "assigned=%v\nlive=%v\n", c.Assigned, c.Live)
	writeIPSet := func(label string, m map[pkt.IP]bool) {
		ips := make([]pkt.IP, 0, len(m))
		for ip := range m {
			if m[ip] {
				ips = append(ips, ip)
			}
		}
		sort.Slice(ips, func(i, j int) bool { return ips[i] < ips[j] })
		fmt.Fprintf(&b, "%s=%v\n", label, ips)
	}
	writeIPSet("dnslisted", c.DNSListed)
	writeIPSet("silent", c.SilentBehind)
	writeIPSet("namedgw", c.NamedGWSubnet)
	gwOf := make([]pkt.IP, 0, len(c.GatewayOf))
	for ip := range c.GatewayOf {
		gwOf = append(gwOf, ip)
	}
	sort.Slice(gwOf, func(i, j int) bool { return gwOf[i] < gwOf[j] })
	for _, ip := range gwOf {
		fmt.Fprintf(&b, "gwof %s=%s\n", ip, c.GatewayOf[ip])
	}
	names := make([]pkt.IP, 0, len(c.HostNames))
	for ip := range c.HostNames {
		names = append(names, ip)
	}
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })
	for _, ip := range names {
		fmt.Fprintf(&b, "name %s=%s\n", ip, c.HostNames[ip])
	}
	for _, gw := range c.Gateways {
		fmt.Fprintf(&b, "gateway=%s\n", gw.Name)
	}
	for _, m := range c.CSMachines {
		fmt.Fprintf(&b, "csmachine=%s\n", m.Name)
	}
	fmt.Fprintf(&b, "csreal=%d csdns=%d\nfaults=%+v\n", c.CSRealCount, c.CSDNSCount, c.Faults)
	return b.Bytes()
}

// TestCampusDeterminismSerialized is the strong form of the determinism
// guarantee: the same seed must yield a byte-identical topology AND
// ground truth (DNS listings, silent subnets, fault plan) across two
// independent builds, not merely matching node counts.
func TestCampusDeterminismSerialized(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InjectFaults = true
	a := serializeCampus(Build(cfg))
	b := serializeCampus(Build(cfg))
	if !bytes.Equal(a, b) {
		line := 1
		for i := range a {
			if i >= len(b) || a[i] != b[i] {
				break
			}
			if a[i] == '\n' {
				line++
			}
		}
		t.Fatalf("two builds with the same seed differ (first divergence at line %d; %d vs %d bytes)",
			line, len(a), len(b))
	}
	if cfg2 := DefaultConfig(); cfg2.Seed == cfg.Seed {
		cfg2.Seed++
		other := serializeCampus(Build(cfg2))
		if bytes.Equal(a, other) {
			t.Fatal("different seeds produced identical topologies; serialization is not sensitive enough")
		}
	}
	t.Logf("campus serialization: %d bytes, stable across builds", len(a))
}

func TestDeterministicBuilds(t *testing.T) {
	a := Build(DefaultConfig())
	b := Build(DefaultConfig())
	if len(a.Net.Nodes) != len(b.Net.Nodes) {
		t.Fatalf("node counts differ: %d vs %d", len(a.Net.Nodes), len(b.Net.Nodes))
	}
	for i := range a.Net.Nodes {
		na, nb := a.Net.Nodes[i], b.Net.Nodes[i]
		if na.Name != nb.Name || len(na.Ifaces) != len(nb.Ifaces) {
			t.Fatalf("node %d differs: %s vs %s", i, na.Name, nb.Name)
		}
		for k := range na.Ifaces {
			if na.Ifaces[k].IP != nb.Ifaces[k].IP || na.Ifaces[k].MAC != nb.Ifaces[k].MAC {
				t.Fatalf("iface %d of %s differs", k, na.Name)
			}
		}
	}
}
