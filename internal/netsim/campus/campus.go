// Package campus builds the simulated University-of-Colorado-like campus
// network that Fremont's evaluation runs against: a class B network
// (128.138.0.0/16) with a backbone wire, ~110 department subnets hanging
// off ~55 gateways, a department (CS) subnet with ~54 machines, a DNS
// server with partially maintained zones, RIP advertisements, background
// chatter, diurnal host liveness, and the misbehaviours the paper's
// numbers depend on: gateways with broken ICMP error generation
// ("gateway software problems"), subnets absent from the name service,
// stale DNS entries, and — when fault injection is on — the Table 8
// problem population (a duplicate address pair, a hardware change, wrong
// subnet masks, a promiscuous RIP host, a silently removed host, and a
// proxy-ARP device).
package campus

import (
	"fmt"
	"time"

	"fremont/internal/dnssim"
	"fremont/internal/netsim"
	"fremont/internal/netsim/pkt"
	"fremont/internal/netsim/sim"
)

// Config parametrizes the campus. DefaultConfig reproduces the paper's
// counts.
type Config struct {
	Seed int64

	// Subnet population (paper: 114 assigned, 111 live/advertised, 93 in
	// the DNS).
	AssignedSubnets int
	LiveSubnets     int
	DNSSubnets      int

	// Gateways identifiable from DNS naming conventions (paper: 31,
	// connecting 48 subnets).
	NamedGateways            int
	NamedGatewaySubnetTarget int

	// The measured department subnet (paper: 56 DNS entries, 54 real
	// machines — of which the gateway, the name server, and the Fremont
	// host are three — and 2 stale entries).
	CSHosts    int // plain hosts beyond gateway+dns+fremont
	CSStaleDNS int

	// Hosts per other department subnet.
	DeptHostsMin, DeptHostsMax int

	// Subnets hidden from traceroute by silent gateways (paper's Table 6:
	// traceroute reaches 86 of the 110 non-local subnets, losing 24 to
	// "gateway software problems").
	SilentSubnets int
	// Additional gateways with the TTL-echo bug (slows traceroute but the
	// module recovers).
	TTLEchoBugGateways int

	// Dynamics.
	Chatter  bool // background conversations on the CS wire (ARPwatch food)
	Liveness bool // diurnal host up/down cycling

	// InjectFaults populates the Table 8 problems.
	InjectFaults bool
}

// DefaultConfig returns the paper-scale campus.
func DefaultConfig() Config {
	return Config{
		Seed:                     1993,
		AssignedSubnets:          114,
		LiveSubnets:              111,
		DNSSubnets:               93,
		NamedGateways:            31,
		NamedGatewaySubnetTarget: 48,
		CSHosts:                  51,
		CSStaleDNS:               2,
		DeptHostsMin:             2,
		DeptHostsMax:             6,
		SilentSubnets:            24,
		TTLEchoBugGateways:       4,
		Chatter:                  true,
		Liveness:                 true,
		InjectFaults:             false,
	}
}

// Faults records the injected Table 8 problems so tests can check the
// analysis output against ground truth.
type Faults struct {
	DuplicateIP      pkt.IP
	HardwareChangeIP pkt.IP
	HardwareChangeAt time.Duration
	WrongMaskIPs     []pkt.IP
	PromiscuousIP    pkt.IP
	RemovedIP        pkt.IP
	RemovedAt        time.Duration
	ProxyARPRange    []pkt.IP
}

// Campus is the built network plus the ground truth the evaluation
// harness compares discovery results against.
type Campus struct {
	Net *netsim.Network
	Cfg Config

	Fremont   *netsim.Node
	FremontIP pkt.IP

	DNS         *dnssim.Server
	DNSServerIP pkt.IP

	Backbone pkt.Subnet
	CSSubnet pkt.Subnet

	// Ground truth.
	Assigned      []pkt.Subnet      // all assigned subnets (incl. dark)
	Live          []pkt.Subnet      // advertised subnets (incl. backbone, CS)
	DNSListed     map[pkt.IP]bool   // subnet addr -> has DNS entries
	SilentBehind  map[pkt.IP]bool   // subnet addr -> behind a silent gateway
	NamedGWSubnet map[pkt.IP]bool   // subnet addr -> attached to a DNS-named gateway
	Gateways      []*netsim.Node    // all gateway nodes
	GatewayOf     map[pkt.IP]pkt.IP // dept subnet addr -> gateway iface on it
	CSMachines    []*netsim.Node    // every real machine on the CS wire
	CSRealCount   int               // machines on the CS wire (paper: 54)
	CSDNSCount    int               // DNS entries for CS addresses (paper: 56)
	HostNames     map[pkt.IP]string // ground-truth names

	Faults Faults
}

// Build constructs the full campus.
func Build(cfg Config) *Campus {
	return build(cfg, true)
}

// BuildDepartment constructs only the CS department wire, its gateway and
// a backbone stub — the economical network for day-long Table 5 runs.
func BuildDepartment(cfg Config) *Campus {
	return build(cfg, false)
}

func build(cfg Config, full bool) *Campus {
	n := netsim.New(cfg.Seed)
	rng := n.Sched.Rand()
	mask := pkt.MaskBits(24)

	c := &Campus{
		Net: n, Cfg: cfg,
		Backbone:      pkt.SubnetOf(pkt.IPv4(128, 138, 1, 0), mask),
		CSSubnet:      pkt.SubnetOf(pkt.IPv4(128, 138, 238, 0), mask),
		DNSListed:     map[pkt.IP]bool{},
		SilentBehind:  map[pkt.IP]bool{},
		NamedGWSubnet: map[pkt.IP]bool{},
		GatewayOf:     map[pkt.IP]pkt.IP{},
		HostNames:     map[pkt.IP]string{},
	}

	fwd := dnssim.NewZone("colorado.edu")
	rev := dnssim.NewZone("138.128.in-addr.arpa")
	c.DNS = dnssim.NewServer()
	c.DNS.AddZone(fwd)
	c.DNS.AddZone(rev)
	addDNS := func(name string, ip pkt.IP) {
		fwd.AddA(name, ip)
		rev.AddPTR(ip, name)
		c.HostNames[ip] = name
	}

	backboneSeg := n.NewSegment("backbone", c.Backbone)
	csSeg := n.NewSegment("cs", c.CSSubnet)

	// --- Subnet plan ----------------------------------------------------
	// Third octets: 1 = backbone, 238 = CS, departments from 2 up. The
	// highest-numbered assigned departments are dark (allocated, never
	// connected).
	deptLive := cfg.LiveSubnets - 2 // minus backbone and CS
	deptAssigned := cfg.AssignedSubnets - 2
	var liveDeptSubnets []pkt.Subnet
	c.Assigned = []pkt.Subnet{c.Backbone}
	c.Live = []pkt.Subnet{c.Backbone, c.CSSubnet}
	for i := 0; i < deptAssigned; i++ {
		sn := pkt.SubnetOf(pkt.IPv4(128, 138, byte(2+i), 0), mask)
		c.Assigned = append(c.Assigned, sn)
		if i < deptLive {
			liveDeptSubnets = append(liveDeptSubnets, sn)
			c.Live = append(c.Live, sn)
		}
	}
	c.Assigned = append(c.Assigned, c.CSSubnet)

	// --- CS department wire ----------------------------------------------
	csGW := n.NewNode("cs-gw")
	csGW.IsRouter = true
	csGW.RespondsMask = true
	csGWBB := c.Backbone.Addr + 2 // 128.138.1.2
	csGW.AddIface(backboneSeg, csGWBB, mask)
	csGWIfc := csGW.AddIface(csSeg, c.CSSubnet.FirstHost(), mask) // .1
	c.Gateways = append(c.Gateways, csGW)
	c.GatewayOf[c.CSSubnet.Addr] = csGWIfc.IP
	addDNS("cs-gw.colorado.edu", csGWBB)
	addDNS("cs-gw.colorado.edu", csGWIfc.IP)
	c.NamedGWSubnet[c.CSSubnet.Addr] = true
	c.NamedGWSubnet[c.Backbone.Addr] = true
	namedGWs := 1
	c.CSMachines = append(c.CSMachines, csGW)

	dnsNode := n.NewNode("piper")
	dnsIP := c.CSSubnet.Addr + 2
	dnsNode.AddIface(csSeg, dnsIP, mask)
	dnsNode.RespondsMask = true
	_ = dnsNode.AddDefaultRoute(csGWIfc.IP)
	c.DNS.Attach(dnsNode)
	c.DNSServerIP = dnsIP
	addDNS("piper.cs.colorado.edu", dnsIP)
	c.CSMachines = append(c.CSMachines, dnsNode)

	c.Fremont = n.NewNode("fremont")
	c.FremontIP = c.CSSubnet.Addr + 250
	c.Fremont.AddIface(csSeg, c.FremontIP, mask)
	_ = c.Fremont.AddDefaultRoute(csGWIfc.IP)
	addDNS("fremont.cs.colorado.edu", c.FremontIP)
	c.CSMachines = append(c.CSMachines, c.Fremont)

	var csHosts []*netsim.Node
	for i := 0; i < cfg.CSHosts; i++ {
		h := n.NewNode(fmt.Sprintf("cs%02d", i))
		ip := c.CSSubnet.Addr + pkt.IP(10+i)
		h.AddIface(csSeg, ip, mask)
		h.RespondsMask = rng.Float64() < 0.5
		_ = h.AddDefaultRoute(csGWIfc.IP)
		addDNS(fmt.Sprintf("cs%02d.cs.colorado.edu", i), ip)
		csHosts = append(csHosts, h)
		c.CSMachines = append(c.CSMachines, h)
	}
	c.CSRealCount = len(c.CSMachines)
	// Stale DNS entries: machines that no longer exist.
	for i := 0; i < cfg.CSStaleDNS; i++ {
		addDNS(fmt.Sprintf("ghost%d.cs.colorado.edu", i), c.CSSubnet.Addr+pkt.IP(98+i))
	}
	c.CSDNSCount = c.CSRealCount + cfg.CSStaleDNS
	c.DNSListed[c.CSSubnet.Addr] = true
	c.DNSListed[c.Backbone.Addr] = true

	// --- Department gateways and wires -----------------------------------
	if full {
		c.buildDepartments(liveDeptSubnets, backboneSeg, fwd, rev, addDNS, &namedGWs)
	}

	// Routing: every gateway routes every live subnet via the backbone.
	for _, gw := range c.Gateways {
		for _, sn := range c.Live {
			if sn.Addr == c.Backbone.Addr || gw.HasIP(c.GatewayOf[sn.Addr]) {
				continue
			}
			owner := c.GatewayOf[sn.Addr]
			// Find the owning gateway's backbone address.
			ownerGW := c.Net.IfaceByIP(owner)
			if ownerGW == nil {
				continue
			}
			var via pkt.IP
			for _, ifc := range ownerGW.Node.Ifaces {
				if c.Backbone.Contains(ifc.IP) {
					via = ifc.IP
				}
			}
			if !via.IsZero() {
				_ = gw.AddRoute(sn, via)
			}
		}
	}

	// RIP on every gateway.
	for _, gw := range c.Gateways {
		n.StartRIP(gw)
	}

	if cfg.InjectFaults {
		c.injectFaults(csSeg, csGW, csHosts, mask)
	}

	// --- Dynamics ---------------------------------------------------------
	// (Faults are planted first so the liveness model can leave the
	// permanently-removed host alone.)
	if cfg.Chatter {
		// Chattiness mix tuned for the paper's ARPwatch curve: most hosts
		// talk every 15-60 minutes, so half an hour of watching catches
		// well over half of them; every tenth machine is nearly silent
		// (and usually off — see liveness below), so even a full day
		// misses a few.
		for i, h := range csHosts {
			var mean time.Duration
			if i%10 == 0 {
				mean = 3*24*time.Hour + time.Duration(rng.Int63n(int64(48*time.Hour)))
			} else {
				mean = 15*time.Minute + time.Duration(rng.Int63n(int64(45*time.Minute)))
			}
			n.StartChatter(h, mean)
		}
		n.StartChatter(dnsNode, 30*time.Minute)
	}
	if cfg.Liveness {
		// The planted problem machines stay out of the power-cycling
		// model: the removed host's disappearance is its own event, and
		// the others must be observable whenever a module looks, so the
		// Table 8 ground truth is deterministic.
		exempt := map[pkt.IP]bool{c.Faults.RemovedIP: true, c.Faults.DuplicateIP: true,
			c.Faults.HardwareChangeIP: true, c.Faults.PromiscuousIP: true}
		for _, ip := range c.Faults.WrongMaskIPs {
			exempt[ip] = true
		}
		for i, h := range csHosts {
			if exempt[h.Ifaces[0].IP] {
				continue
			}
			base := 0.97
			if i%10 == 0 { // the quiet machines are almost never switched on
				base = 0.08
			}
			startDiurnalLiveness(n, h, base)
		}
	}
	return c
}

// buildDepartments creates the non-CS wires, gateways, hosts and DNS data.
func (c *Campus) buildDepartments(liveDeptSubnets []pkt.Subnet, backboneSeg *netsim.Segment,
	fwd, rev *dnssim.Zone, addDNS func(string, pkt.IP), namedGWs *int) {
	cfg := c.Cfg
	n := c.Net
	rng := n.Sched.Rand()
	mask := pkt.MaskBits(24)

	// DNS coverage plan: the first (DNSSubnets-2) department subnets are
	// name-served (CS and backbone are already counted).
	dnsDeptBudget := cfg.DNSSubnets - 2

	// Group departments under gateways: sizes cycle 1,2,3,2 (average 2).
	sizes := []int{1, 2, 3, 2}
	var groups [][]pkt.Subnet
	for i := 0; i < len(liveDeptSubnets); {
		size := sizes[len(groups)%len(sizes)]
		if i+size > len(liveDeptSubnets) {
			size = len(liveDeptSubnets) - i
		}
		groups = append(groups, liveDeptSubnets[i:i+size])
		i += size
	}

	// Silent-gateway plan: hide subnets from traceroute until the quota is
	// met, choosing groups from the end (arbitrary but deterministic).
	silentQuota := cfg.SilentSubnets
	silentGroup := map[int]bool{}
	for gi := len(groups) - 1; gi >= 0 && silentQuota > 0; gi-- {
		if len(groups[gi]) <= silentQuota {
			silentGroup[gi] = true
			silentQuota -= len(groups[gi])
		}
	}

	// Named-gateway plan: name gateways (beyond cs-gw) until both the
	// gateway count and the covered-subnet target are satisfied.
	ttlBugsLeft := cfg.TTLEchoBugGateways

	for gi, group := range groups {
		gw := n.NewNode(fmt.Sprintf("gw%03d", gi))
		gw.IsRouter = true
		gw.RespondsMask = true
		bbIP := c.Backbone.Addr + pkt.IP(10+gi)
		gw.AddIface(backboneSeg, bbIP, mask)
		if silentGroup[gi] {
			gw.SilentICMPErrors = true
		} else if ttlBugsLeft > 0 {
			gw.TTLEchoBug = true
			ttlBugsLeft--
		}
		// Name this gateway in the DNS if doing so keeps us within both
		// paper targets (31 named gateways, 48 covered subnets). Only the
		// one- and two-subnet gateways get names, which is what makes the
		// two targets simultaneously reachable (31 × ~1.5 ≈ 46 + CS +
		// backbone).
		named := false
		if *namedGWs < cfg.NamedGateways && len(group) <= 2 &&
			len(c.NamedGWSubnet)+len(group) <= cfg.NamedGatewaySubnetTarget {
			named = true
			*namedGWs++
		}
		if named {
			addDNS(fmt.Sprintf("dept%03d-gw.colorado.edu", gi), bbIP)
		}
		for _, sn := range group {
			seg := n.NewSegment(fmt.Sprintf("dept-%s", sn.Addr), sn)
			ifc := gw.AddIface(seg, sn.FirstHost(), mask)
			c.GatewayOf[sn.Addr] = ifc.IP
			if silentGroup[gi] {
				c.SilentBehind[sn.Addr] = true
			}
			if named {
				addDNS(fmt.Sprintf("dept%03d-gw.colorado.edu", gi), ifc.IP)
				c.NamedGWSubnet[sn.Addr] = true
			}
			// Hosts.
			nhosts := cfg.DeptHostsMin
			if cfg.DeptHostsMax > cfg.DeptHostsMin {
				nhosts += rng.Intn(cfg.DeptHostsMax - cfg.DeptHostsMin + 1)
			}
			inDNS := dnsDeptBudget > 0
			if inDNS {
				dnsDeptBudget--
				c.DNSListed[sn.Addr] = true
			}
			_, _, third, _ := sn.Addr.Octets()
			for h := 0; h < nhosts; h++ {
				host := n.NewNode(fmt.Sprintf("d%03d-h%d", third, h))
				ip := sn.Addr + pkt.IP(10+h)
				host.AddIface(seg, ip, mask)
				host.RespondsMask = rng.Float64() < 0.35
				_ = host.AddDefaultRoute(ifc.IP)
				if inDNS {
					addDNS(fmt.Sprintf("h%d.dept%03d.colorado.edu", h, third), ip)
				}
			}
		}
		c.Gateways = append(c.Gateways, gw)
	}
	_ = fwd
	_ = rev
}

// diurnalFactor scales availability by hour of day: 1993 workstations were
// mostly on during working hours and often off overnight.
func diurnalFactor(hour int) float64 {
	switch {
	case hour >= 9 && hour <= 17:
		return 1.0
	case hour >= 18 && hour <= 22:
		return 0.9
	case hour >= 6 && hour <= 8:
		return 0.85
	default: // 23:00–05:00
		return 0.75
	}
}

// startDiurnalLiveness toggles a host's power state every few hours: a
// machine that is off at 4 a.m. stays off for the whole sweep (which is
// why the paper's SeqPing pass and its one retry both miss it), rather
// than flapping minute to minute.
func startDiurnalLiveness(n *netsim.Network, nd *netsim.Node, base float64) {
	n.Sched.Spawn("liveness:"+nd.Name, func(p *sim.Proc) {
		// Desynchronize state transitions across hosts.
		p.Sleep(time.Duration(n.Sched.Rand().Int63n(int64(3 * time.Hour))))
		for {
			f := diurnalFactor(p.WallNow().Hour())
			nd.SetUp(n.Sched.Rand().Float64() < base*f)
			jitter := time.Duration(n.Sched.Rand().Int63n(int64(time.Hour)))
			p.Sleep(150*time.Minute + jitter)
		}
	})
}

// injectFaults plants the Table 8 problem population on the CS wire. The
// victims are spread proportionally across the host population so the
// injection works at any department size (≥ 8 hosts).
func (c *Campus) injectFaults(csSeg *netsim.Segment, csGW *netsim.Node, csHosts []*netsim.Node, mask pkt.Mask) {
	n := c.Net
	if len(csHosts) < 8 {
		panic("campus: fault injection needs at least 8 department hosts")
	}
	pick := func(eighths int) *netsim.Node {
		return csHosts[len(csHosts)*eighths/8]
	}

	// Duplicate address assignment: a second machine configured with an
	// existing host's address.
	victim := pick(1)
	dup := n.NewNode("dup-intruder")
	dup.AddIface(csSeg, victim.Ifaces[0].IP, mask)
	_ = dup.AddDefaultRoute(c.GatewayOf[c.CSSubnet.Addr])
	c.Faults.DuplicateIP = victim.Ifaces[0].IP

	// Hardware change: a host's interface board is replaced mid-run.
	hw := pick(2)
	c.Faults.HardwareChangeIP = hw.Ifaces[0].IP
	c.Faults.HardwareChangeAt = 26 * time.Hour
	n.Sched.At(c.Faults.HardwareChangeAt, func() {
		hw.SetMAC(hw.Ifaces[0], pkt.MAC{0x08, 0x00, 0x20, 0xee, 0xee, 0x01})
	})

	// Inconsistent network masks: two hosts claim /16 on the /24 wire.
	base := len(csHosts) * 3 / 8
	for _, i := range []int{base, base + 1} {
		csHosts[i].RespondsMask = true
		csHosts[i].MaskReplyValue = pkt.MaskBits(16)
		c.Faults.WrongMaskIPs = append(c.Faults.WrongMaskIPs, csHosts[i].Ifaces[0].IP)
	}

	// Promiscuous RIP host.
	bad := pick(5)
	n.StartPromiscuousRIP(bad, 45*time.Second)
	c.Faults.PromiscuousIP = bad.Ifaces[0].IP

	// A host removed from the network without telling anyone.
	gone := pick(6)
	c.Faults.RemovedIP = gone.Ifaces[0].IP
	c.Faults.RemovedAt = 24 * time.Hour
	n.Sched.At(c.Faults.RemovedAt, func() { gone.SetUp(false) })

	// A proxy-ARP device: the gateway answers for three addresses of
	// dial-up machines "on" the wire.
	for i := 0; i < 3; i++ {
		ip := c.CSSubnet.Addr + pkt.IP(200+i)
		csGW.ProxyARPFor = append(csGW.ProxyARPFor, pkt.Subnet{Addr: ip, Mask: pkt.MaskBits(32)})
		c.Faults.ProxyARPRange = append(c.Faults.ProxyARPRange, ip)
	}
}
