package netsim

// arena is a slab allocator for the simulator's long-lived topology
// objects (nodes, interfaces). A 100k-host network allocated one object
// at a time pays an allocator header and a GC scan root per object;
// slab-allocating them in fixed chunks cuts both by two orders of
// magnitude and lays hot neighbours (the interfaces of one wire, the
// nodes of one subnet) contiguously in memory.
//
// Chunks are never reallocated or freed, so pointers into a slab stay
// valid for the lifetime of the Network — existing *Node/*Iface handles
// keep working unchanged. Objects are never returned individually: a
// topology only grows, so the arena needs no free list.
type arena[T any] struct {
	chunks [][]T
	used   int // objects handed out of the last chunk
	total  int // objects handed out overall
}

// arenaChunk is the slab size. 512 nodes ≈ 150 KB per chunk: big enough
// to amortize allocation, small enough that a paper-scale campus does
// not strand much memory.
const arenaChunk = 512

// alloc returns a pointer to a zeroed T with a stable address.
func (a *arena[T]) alloc() *T {
	if len(a.chunks) == 0 || a.used == arenaChunk {
		a.chunks = append(a.chunks, make([]T, arenaChunk))
		a.used = 0
	}
	p := &a.chunks[len(a.chunks)-1][a.used]
	a.used++
	a.total++
	return p
}

// Len returns the number of objects allocated.
func (a *arena[T]) Len() int { return a.total }
