package sim

import (
	"testing"
	"time"
)

func TestTimerStop(t *testing.T) {
	s := NewScheduler(1)
	fired := false
	tm := s.AfterTimer(time.Second, func() { fired = true })
	if !tm.Active() {
		t.Fatal("armed timer not Active")
	}
	if !tm.Stop() {
		t.Fatal("first Stop did not report cancelling a pending event")
	}
	if tm.Stop() {
		t.Fatal("second Stop reported cancelling again")
	}
	if tm.Active() {
		t.Fatal("stopped timer still Active")
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d after stopping the only timer, want 0", s.Pending())
	}
	s.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
	if s.Now() != 0 {
		t.Fatalf("stopped timer advanced the clock to %v", s.Now())
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	s := NewScheduler(1)
	tm := s.AfterTimer(time.Second, func() {})
	s.Run()
	if tm.Active() {
		t.Fatal("fired timer still Active")
	}
	if tm.Stop() {
		t.Fatal("Stop after fire reported cancelling")
	}
}

func TestZeroTimerInert(t *testing.T) {
	var tm Timer
	if tm.Active() {
		t.Fatal("zero Timer is Active")
	}
	if tm.Stop() {
		t.Fatal("zero Timer Stop reported cancelling")
	}
}

func TestStaleTimerHandleDoesNotCancelReusedSlot(t *testing.T) {
	s := NewScheduler(1)
	a := s.AfterTimer(time.Second, func() {})
	s.Run() // a fires; its slot is released for reuse
	fired := false
	b := s.AfterTimer(time.Second, func() { fired = true })
	if a.Stop() {
		t.Fatal("stale handle reported cancelling")
	}
	if !b.Active() {
		t.Fatal("stale Stop deactivated an unrelated timer")
	}
	s.Run()
	if !fired {
		t.Fatal("timer in a reused slot did not fire")
	}
}

func TestTimerCompaction(t *testing.T) {
	s := NewScheduler(1)
	fired := 0
	timers := make([]Timer, 200)
	for i := range timers {
		timers[i] = s.AfterTimer(time.Duration(i+1)*time.Second, func() { fired++ })
	}
	for i := 0; i < len(timers); i += 2 {
		timers[i].Stop()
	}
	if st := s.Stats(); st.Compactions == 0 {
		t.Fatalf("no compaction after %d of %d timers stopped: %+v", 100, 200, st)
	}
	if s.Pending() != 100 {
		t.Fatalf("Pending = %d, want 100", s.Pending())
	}
	s.Run()
	if fired != 100 {
		t.Fatalf("fired = %d, want 100", fired)
	}
	if st := s.Stats(); st.Cancelled != 0 {
		t.Fatalf("cancelled corpses left after Run: %+v", st)
	}
}

func TestSleepLeavesNoCorpses(t *testing.T) {
	s := NewScheduler(1)
	s.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(time.Second)
		}
	})
	s.Run()
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d after all procs finished, want 0", s.Pending())
	}
	if st := s.Stats(); st.Cancelled != 0 {
		t.Fatalf("cancelled corpses after Run: %+v", st)
	}
}

// TestMailboxTimedGetLeavesNoWaiters is the regression test for the waiter
// leak: a Get satisfied by timeout used to leave its waiter record in the
// list forever, so a process polling a quiet mailbox grew the list without
// bound (and every later Put scanned the corpses).
func TestMailboxTimedGetLeavesNoWaiters(t *testing.T) {
	s := NewScheduler(1)
	mb := NewMailbox[int](s)
	s.Spawn("poller", func(p *Proc) {
		for i := 0; i < 50; i++ {
			if _, ok := mb.Get(p, time.Second); ok {
				t.Error("Get on an empty mailbox succeeded")
			}
			if n := len(mb.waiters); n != 0 {
				t.Errorf("iteration %d: %d waiter records after timed-out Get, want 0", i, n)
			}
		}
	})
	s.Run()
	if n := len(mb.waiters); n != 0 {
		t.Fatalf("%d waiter records left after run, want 0", n)
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", s.Pending())
	}
}

// TestMailboxDeliveryStopsTimeoutTimer checks the flip side: a delivery
// must remove the waiter's timeout event from the queue immediately, not
// leave it to fire (harmlessly but expensively) at its distant deadline.
func TestMailboxDeliveryStopsTimeoutTimer(t *testing.T) {
	s := NewScheduler(1)
	mb := NewMailbox[int](s)
	got := 0
	s.Spawn("recv", func(p *Proc) {
		for i := 0; i < 50; i++ {
			v, ok := mb.Get(p, time.Hour)
			if !ok {
				t.Error("Get timed out despite deliveries")
				return
			}
			got += v
			if n := len(mb.waiters); n != 0 {
				t.Errorf("%d waiter records after delivered Get, want 0", n)
			}
		}
	})
	for i := 0; i < 50; i++ {
		s.After(time.Duration(i+1)*time.Second, func() { mb.Put(1) })
	}
	s.Run()
	if got != 50 {
		t.Fatalf("delivered %d, want 50", got)
	}
	if s.Now() >= time.Hour {
		t.Fatalf("clock reached %v: a satisfied Get's timeout still ran to its deadline", s.Now())
	}
	if st := s.Stats(); st.TimersStopped < 50 {
		t.Fatalf("TimersStopped = %d, want >= 50 (one per delivery)", st.TimersStopped)
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", s.Pending())
	}
}

func TestKillLeavesNoCorpses(t *testing.T) {
	s := NewScheduler(1)
	p := s.Spawn("sleeper", func(p *Proc) { p.Sleep(24 * time.Hour) })
	s.After(time.Second, func() { p.Kill() })
	s.RunUntil(2 * time.Second)
	if !p.Done() {
		t.Fatal("killed sleeper not done")
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d after kill, want 0 (the 24h wakeup should be gone)", s.Pending())
	}
}

func benchNopEvent(any, uint64) {}

// BenchmarkSchedulerTimers measures the arm/stop cycle that dominates
// timeout-heavy workloads: every probe arms a deadline and nearly every
// deadline is cancelled by the reply arriving first.
func BenchmarkSchedulerTimers(b *testing.B) {
	s := NewScheduler(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm := s.AfterEventTimer(time.Millisecond, benchNopEvent, nil, 0)
		if i&1 == 0 {
			tm.Stop()
		}
		if i&1023 == 1023 {
			s.RunFor(2 * time.Millisecond)
		}
	}
	s.Run()
}

// BenchmarkMailboxTimedGet measures the blocking receive path: each Get
// arms a timeout, each Put beats it and must tear the timer back down.
func BenchmarkMailboxTimedGet(b *testing.B) {
	s := NewScheduler(1)
	mb := NewMailbox[int](s)
	s.Spawn("recv", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			if _, ok := mb.Get(p, time.Hour); !ok {
				b.Error("Get timed out")
				return
			}
		}
	})
	s.Spawn("send", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
			mb.Put(i)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	s.Run()
}
