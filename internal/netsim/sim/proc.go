package sim

import (
	"time"
)

// Proc is a simulation process: sequential code that can block on virtual
// time (Sleep) and on mailboxes, written in ordinary imperative style.
// Explorer Modules — which send probes, wait for replies, and time out —
// are written as Procs.
//
// A Proc runs on its own goroutine, but the scheduler guarantees that at
// most one Proc (or event handler) executes at a time: when a Proc blocks,
// it parks and hands control back to the event loop; when a wakeup event
// fires, the loop hands control back and waits for the next park. Execution
// is therefore deterministic despite using goroutines.
//
// Every park is tagged with a generation number, and every wakeup event is
// armed for a specific generation. A stale wakeup (for example, a Kill
// racing a timer) finds the generation advanced and does nothing, so a park
// is resumed exactly once. The generation check is the correctness
// backstop; cancellable timers are the performance layer on top — a wakeup
// that will never be needed (a Sleep cut short by Kill, a mailbox timeout
// beaten by a delivery) is removed from the event queue immediately instead
// of surviving as a dead entry until its deadline.
type Proc struct {
	s    *Scheduler
	name string

	resume chan struct{} // scheduler -> proc: continue
	parked chan struct{} // proc -> scheduler: parked or finished

	gen      uint64 // current park generation; advanced by arm()
	isParked bool
	wake     Timer // pending Sleep/timeout wakeup; stopped by Kill

	done   bool
	killed bool
}

// killedPanic unwinds a killed process's stack; the spawn wrapper recovers it.
type killedPanic struct{ name string }

// Spawn starts fn as a new simulation process at the current virtual time.
// fn begins executing when the scheduler reaches the start event.
func (s *Scheduler) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		s:      s,
		name:   name,
		resume: make(chan struct{}),
		parked: make(chan struct{}),
	}
	s.nprocs++
	s.After(0, func() {
		go func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(killedPanic); !ok {
						panic(r)
					}
				}
				p.done = true
				p.s.nprocs--
				p.parked <- struct{}{}
			}()
			if p.killed {
				return
			}
			fn(p)
		}()
		<-p.parked // wait until the proc parks or finishes
	})
	return p
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Scheduler returns the scheduler this process runs under.
func (p *Proc) Scheduler() *Scheduler { return p.s }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.s.Now() }

// WallNow returns the current virtual time as an absolute timestamp.
func (p *Proc) WallNow() time.Time { return p.s.WallNow() }

// Done reports whether the process has finished.
func (p *Proc) Done() bool { return p.done }

// Killed reports whether Kill has been called on the process.
func (p *Proc) Killed() bool { return p.killed }

// arm advances and returns the park generation. A blocking primitive calls
// arm, schedules one or more wakeups bound to the returned generation, and
// then parks.
func (p *Proc) arm() uint64 {
	p.gen++
	return p.gen
}

// procWake is the shared wakeup handler: resume p if it is still parked in
// generation aux. Pre-bound (no closure) so arming a wakeup is
// allocation-free.
func procWake(arg any, aux uint64) {
	p := arg.(*Proc)
	if p.done || !p.isParked || p.gen != aux {
		return
	}
	p.isParked = false // claim the park before handing over control
	p.resume <- struct{}{}
	<-p.parked
}

// wakeAt schedules the process to resume at the current virtual time if it
// is still parked in generation gen. Safe to call multiple times; only the
// first matching wakeup resumes the park.
func (p *Proc) wakeAt(gen uint64) {
	p.s.AfterEvent(0, procWake, p, gen)
}

// park suspends the process until a wakeup for the current generation fires.
// Must be called from the process's own goroutine, after arm().
func (p *Proc) park() {
	if p.killed {
		panic(killedPanic{p.name})
	}
	p.isParked = true
	p.parked <- struct{}{}
	<-p.resume
	if p.killed {
		panic(killedPanic{p.name})
	}
}

// Sleep blocks the process for d of virtual time. Sleep(0) yields, letting
// already-queued same-time events run first.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	gen := p.arm()
	p.wake = p.s.AfterEventTimer(d, procWake, p, gen)
	p.park()
}

// Yield gives other same-time events a chance to run.
func (p *Proc) Yield() { p.Sleep(0) }

// SleepUntil blocks until virtual time t (no-op if t has passed).
func (p *Proc) SleepUntil(t time.Duration) {
	if d := t - p.s.Now(); d > 0 {
		p.Sleep(d)
	}
}

// Kill terminates the process at its next blocking point (or, if it is
// currently parked, as soon as the kill event runs). The process's stack
// unwinds via an internal panic; deferred functions run as usual.
func (p *Proc) Kill() {
	if p.done || p.killed {
		return
	}
	p.killed = true
	// The pending Sleep/timeout wakeup will never be needed; remove it from
	// the queue instead of leaving a dead event until its deadline.
	p.wake.Stop()
	p.wakeAt(p.gen)
}
