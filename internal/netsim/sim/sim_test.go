package sim

import (
	"testing"
	"time"
)

func TestEventOrdering(t *testing.T) {
	s := NewScheduler(1)
	var order []int
	s.After(3*time.Second, func() { order = append(order, 3) })
	s.After(1*time.Second, func() { order = append(order, 1) })
	s.After(2*time.Second, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
	if s.Now() != 3*time.Second {
		t.Fatalf("Now() = %v, want 3s", s.Now())
	}
}

func TestEqualTimeFIFO(t *testing.T) {
	s := NewScheduler(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.After(time.Second, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time events ran out of scheduling order: %v", order)
		}
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	s := NewScheduler(1)
	fired := false
	s.After(10*time.Second, func() { fired = true })
	s.RunUntil(5 * time.Second)
	if fired {
		t.Fatal("event at t=10s fired during RunUntil(5s)")
	}
	if s.Now() != 5*time.Second {
		t.Fatalf("Now() = %v, want 5s", s.Now())
	}
	s.RunFor(5 * time.Second)
	if !fired {
		t.Fatal("event at t=10s did not fire by t=10s")
	}
}

func TestNestedScheduling(t *testing.T) {
	s := NewScheduler(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			s.After(time.Second, tick)
		}
	}
	s.After(0, tick)
	s.Run()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if s.Now() != 4*time.Second {
		t.Fatalf("Now() = %v, want 4s", s.Now())
	}
}

func TestWallNow(t *testing.T) {
	s := NewScheduler(1)
	start := s.WallNow()
	s.After(time.Hour, func() {})
	s.Run()
	if got := s.WallNow().Sub(start); got != time.Hour {
		t.Fatalf("wall clock advanced %v, want 1h", got)
	}
}

func TestProcSleep(t *testing.T) {
	s := NewScheduler(1)
	var wake []time.Duration
	s.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(time.Minute)
			wake = append(wake, p.Now())
		}
	})
	s.Run()
	want := []time.Duration{time.Minute, 2 * time.Minute, 3 * time.Minute}
	if len(wake) != 3 {
		t.Fatalf("wakeups = %v, want %v", wake, want)
	}
	for i := range want {
		if wake[i] != want[i] {
			t.Fatalf("wakeups = %v, want %v", wake, want)
		}
	}
}

func TestProcInterleaving(t *testing.T) {
	s := NewScheduler(1)
	var order []string
	s.Spawn("a", func(p *Proc) {
		p.Sleep(1 * time.Second)
		order = append(order, "a1")
		p.Sleep(2 * time.Second) // wakes at 3s
		order = append(order, "a2")
	})
	s.Spawn("b", func(p *Proc) {
		p.Sleep(2 * time.Second)
		order = append(order, "b1")
		p.Sleep(2 * time.Second) // wakes at 4s
		order = append(order, "b2")
	})
	s.Run()
	want := []string{"a1", "b1", "a2", "b2"}
	if len(order) != 4 {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestMailboxDelivery(t *testing.T) {
	s := NewScheduler(1)
	mb := NewMailbox[int](s)
	var got []int
	s.Spawn("recv", func(p *Proc) {
		for i := 0; i < 3; i++ {
			v, ok := mb.Get(p, -1)
			if !ok {
				t.Error("Get failed with infinite timeout")
				return
			}
			got = append(got, v)
		}
	})
	s.After(time.Second, func() { mb.Put(1) })
	s.After(2*time.Second, func() { mb.Put(2); mb.Put(3) })
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got %v, want [1 2 3]", got)
	}
}

func TestMailboxTimeout(t *testing.T) {
	s := NewScheduler(1)
	mb := NewMailbox[int](s)
	var timedOut bool
	var at time.Duration
	s.Spawn("recv", func(p *Proc) {
		_, ok := mb.Get(p, 5*time.Second)
		timedOut = !ok
		at = p.Now()
	})
	s.Run()
	if !timedOut {
		t.Fatal("Get did not time out")
	}
	if at != 5*time.Second {
		t.Fatalf("timed out at %v, want 5s", at)
	}
}

func TestMailboxTimeoutThenDelivery(t *testing.T) {
	// A message arriving after a timeout must be queued for the next Get,
	// not lost to the timed-out waiter.
	s := NewScheduler(1)
	mb := NewMailbox[int](s)
	var first, second bool
	var v int
	s.Spawn("recv", func(p *Proc) {
		_, first = mb.Get(p, time.Second)
		v, second = mb.Get(p, 10*time.Second)
	})
	s.After(3*time.Second, func() { mb.Put(42) })
	s.Run()
	if first {
		t.Fatal("first Get should have timed out")
	}
	if !second || v != 42 {
		t.Fatalf("second Get = %d,%v; want 42,true", v, second)
	}
}

func TestMailboxQueuedBeforeGet(t *testing.T) {
	s := NewScheduler(1)
	mb := NewMailbox[string](s)
	mb.Put("early")
	var got string
	s.Spawn("recv", func(p *Proc) {
		got, _ = mb.Get(p, 0)
	})
	s.Run()
	if got != "early" {
		t.Fatalf("got %q, want early", got)
	}
}

func TestBoundedMailboxDrops(t *testing.T) {
	s := NewScheduler(1)
	mb := NewBoundedMailbox[int](s, 2)
	mb.Put(1)
	mb.Put(2)
	mb.Put(3)
	if mb.Len() != 2 {
		t.Fatalf("Len = %d, want 2", mb.Len())
	}
	if mb.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1", mb.Dropped())
	}
}

func TestKillParkedProc(t *testing.T) {
	s := NewScheduler(1)
	mb := NewMailbox[int](s)
	cleanedUp := false
	finished := false
	p := s.Spawn("victim", func(p *Proc) {
		defer func() { cleanedUp = true }()
		mb.Get(p, -1) // blocks forever
		finished = true
	})
	s.After(time.Second, func() { p.Kill() })
	s.Run()
	if finished {
		t.Fatal("killed proc ran past its blocking call")
	}
	if !cleanedUp {
		t.Fatal("killed proc's deferred cleanup did not run")
	}
	if !p.Done() {
		t.Fatal("killed proc not marked done")
	}
}

func TestKillSleepingProc(t *testing.T) {
	s := NewScheduler(1)
	woke := false
	p := s.Spawn("sleeper", func(p *Proc) {
		p.Sleep(time.Hour)
		woke = true
	})
	s.After(time.Minute, func() { p.Kill() })
	s.RunUntil(2 * time.Minute)
	if woke {
		t.Fatal("killed sleeper woke up")
	}
	if !p.Done() {
		t.Fatal("sleeper not done right after kill; the stale hour timer should not be needed")
	}
}

func TestKillBeforeStart(t *testing.T) {
	s := NewScheduler(1)
	ran := false
	p := s.Spawn("never", func(p *Proc) { ran = true })
	p.Kill()
	s.Run()
	if ran {
		t.Fatal("proc body ran despite kill before start")
	}
}

func TestMailboxPutSkipsDeadWaiters(t *testing.T) {
	s := NewScheduler(1)
	mb := NewMailbox[int](s)
	var aliveGot int
	dead := s.Spawn("dead", func(p *Proc) { mb.Get(p, -1) })
	s.After(time.Second, func() { dead.Kill() })
	s.After(2*time.Second, func() {
		s.Spawn("alive", func(p *Proc) { aliveGot, _ = mb.Get(p, -1) })
	})
	s.After(3*time.Second, func() { mb.Put(7) })
	s.Run()
	if aliveGot != 7 {
		t.Fatalf("live waiter got %d, want 7", aliveGot)
	}
}

func TestManyProcsDeterministic(t *testing.T) {
	run := func() []int {
		s := NewScheduler(99)
		mb := NewMailbox[int](s)
		var got []int
		for i := 0; i < 20; i++ {
			i := i
			s.Spawn("p", func(p *Proc) {
				p.Sleep(time.Duration(s.Rand().Intn(1000)) * time.Millisecond)
				mb.Put(i)
			})
		}
		s.Spawn("collector", func(p *Proc) {
			for j := 0; j < 20; j++ {
				v, ok := mb.Get(p, -1)
				if !ok {
					return
				}
				got = append(got, v)
			}
		})
		s.Run()
		return got
	}
	a, b := run(), run()
	if len(a) != 20 || len(b) != 20 {
		t.Fatalf("runs collected %d and %d messages, want 20", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic runs:\n%v\n%v", a, b)
		}
	}
}

func TestSchedulerStop(t *testing.T) {
	s := NewScheduler(1)
	count := 0
	for i := 1; i <= 10; i++ {
		s.After(time.Duration(i)*time.Second, func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3 (Stop should halt the loop)", count)
	}
	if s.Pending() != 7 {
		t.Fatalf("Pending = %d, want 7", s.Pending())
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	s := NewScheduler(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(time.Duration(i)*time.Microsecond, func() {})
	}
	s.Run()
}

func BenchmarkProcSleepWake(b *testing.B) {
	s := NewScheduler(1)
	s.Spawn("bench", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	s.Run()
}
