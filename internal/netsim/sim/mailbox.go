package sim

import "time"

// Mailbox is a FIFO queue of T carrying messages to blocked processes.
// Simulated NICs deliver frames into mailboxes; Explorer Modules block on
// them with timeouts ("wait up to ten seconds for the ICMP reply").
//
// Put may be called from any event or process context. Get blocks the
// calling process.
//
// The blocking path is allocation-lean and leaves nothing behind: waiter
// records are pooled, the timeout handler is pre-bound (no closure per
// Get), and a timed Get that is satisfied — by a delivery, a timeout, or a
// Kill — stops its wakeup timer and removes its waiter record immediately,
// so neither the event queue nor the waiter list accumulates corpses.
type Mailbox[T any] struct {
	s         *Scheduler
	q         []T
	waiters   []*mboxWaiter[T]
	free      []*mboxWaiter[T] // waiter pool; one Get per parked proc, so small
	timeoutFn EventFunc        // bound once at construction; no closure per Get
	max       int              // 0 = unbounded
	dropped   int
}

type mboxWaiter[T any] struct {
	p         *Proc
	gen       uint64
	val       T
	timer     Timer
	delivered bool
	cancelled bool
}

// NewMailbox returns an unbounded mailbox.
func NewMailbox[T any](s *Scheduler) *Mailbox[T] {
	m := &Mailbox[T]{s: s}
	m.timeoutFn = m.waiterTimeout
	return m
}

// NewBoundedMailbox returns a mailbox that holds at most max queued
// messages; further Puts are dropped (and counted), modeling a socket
// receive buffer.
func NewBoundedMailbox[T any](s *Scheduler, max int) *Mailbox[T] {
	m := &Mailbox[T]{s: s, max: max}
	m.timeoutFn = m.waiterTimeout
	return m
}

// Len reports the number of queued (undelivered) messages.
func (m *Mailbox[T]) Len() int { return len(m.q) }

// Dropped reports how many messages were discarded due to the bound.
func (m *Mailbox[T]) Dropped() int { return m.dropped }

// Put delivers v: directly to the longest-waiting process if any, otherwise
// onto the queue. It reports whether the message was delivered or queued
// (false means the bound dropped it) — callers that pool the underlying
// bytes use this to know whether the mailbox retained them.
func (m *Mailbox[T]) Put(v T) bool {
	for len(m.waiters) > 0 {
		w := m.waiters[0]
		m.popFrontWaiter()
		if w.cancelled || w.p.done || w.p.killed {
			continue
		}
		w.delivered = true
		w.val = v
		// The timeout for this waiter can no longer matter; drop it from
		// the event queue now rather than at its deadline.
		w.timer.Stop()
		w.p.wakeAt(w.gen)
		return true
	}
	if m.max > 0 && len(m.q) >= m.max {
		m.dropped++
		return false
	}
	m.q = append(m.q, v)
	return true
}

// TryGet pops the oldest queued message without blocking.
func (m *Mailbox[T]) TryGet() (T, bool) {
	if len(m.q) > 0 {
		v := m.q[0]
		m.q = m.q[1:]
		return v, true
	}
	var zero T
	return zero, false
}

// Get blocks p until a message arrives or timeout elapses. A negative
// timeout blocks forever. ok is false on timeout.
func (m *Mailbox[T]) Get(p *Proc, timeout time.Duration) (v T, ok bool) {
	if v, ok := m.TryGet(); ok {
		return v, true
	}
	w := m.takeWaiter()
	w.p = p
	w.gen = p.arm()
	m.waiters = append(m.waiters, w)
	if timeout >= 0 {
		w.timer = m.s.AfterEventTimer(timeout, m.timeoutFn, w, 0)
		p.wake = w.timer // lets Kill cancel the timeout along with the park
	}
	// Cleanup runs on every exit — delivery, timeout, and the panic unwind
	// of a Kill — so a waiter record never outlives its Get and the waiter
	// list stays bounded by the number of parked processes.
	defer func() {
		w.timer.Stop()
		if !w.delivered {
			m.removeWaiter(w) // no-op if the timeout already removed it
		}
		m.recycleWaiter(w)
	}()
	p.park()
	if w.delivered {
		return w.val, true
	}
	var zero T
	return zero, false
}

// waiterTimeout is the pre-bound timeout handler: cancel the waiter, prune
// it from the list, and wake its process (which observes !delivered).
func (m *Mailbox[T]) waiterTimeout(arg any, _ uint64) {
	w := arg.(*mboxWaiter[T])
	if w.delivered || w.cancelled {
		return
	}
	w.cancelled = true
	m.removeWaiter(w)
	w.p.wakeAt(w.gen)
}

// popFrontWaiter removes waiters[0] preserving the backing array.
func (m *Mailbox[T]) popFrontWaiter() {
	n := len(m.waiters)
	copy(m.waiters, m.waiters[1:])
	m.waiters[n-1] = nil
	m.waiters = m.waiters[:n-1]
}

// removeWaiter deletes w from the waiter list, preserving FIFO order.
func (m *Mailbox[T]) removeWaiter(w *mboxWaiter[T]) {
	for i, x := range m.waiters {
		if x == w {
			copy(m.waiters[i:], m.waiters[i+1:])
			m.waiters[len(m.waiters)-1] = nil
			m.waiters = m.waiters[:len(m.waiters)-1]
			return
		}
	}
}

func (m *Mailbox[T]) takeWaiter() *mboxWaiter[T] {
	if n := len(m.free); n > 0 {
		w := m.free[n-1]
		m.free[n-1] = nil
		m.free = m.free[:n-1]
		return w
	}
	return &mboxWaiter[T]{}
}

func (m *Mailbox[T]) recycleWaiter(w *mboxWaiter[T]) {
	var zero T
	*w = mboxWaiter[T]{val: zero}
	if len(m.free) < 64 {
		m.free = append(m.free, w)
	}
}

// Drain removes and returns all queued messages.
func (m *Mailbox[T]) Drain() []T {
	out := m.q
	m.q = nil
	return out
}
