package sim

import "time"

// Mailbox is a FIFO queue of T carrying messages to blocked processes.
// Simulated NICs deliver frames into mailboxes; Explorer Modules block on
// them with timeouts ("wait up to ten seconds for the ICMP reply").
//
// Put may be called from any event or process context. Get blocks the
// calling process.
type Mailbox[T any] struct {
	s       *Scheduler
	q       []T
	waiters []*mboxWaiter[T]
	max     int // 0 = unbounded
	dropped int
}

type mboxWaiter[T any] struct {
	p         *Proc
	gen       uint64
	val       T
	delivered bool
	cancelled bool
}

// NewMailbox returns an unbounded mailbox.
func NewMailbox[T any](s *Scheduler) *Mailbox[T] {
	return &Mailbox[T]{s: s}
}

// NewBoundedMailbox returns a mailbox that holds at most max queued
// messages; further Puts are dropped (and counted), modeling a socket
// receive buffer.
func NewBoundedMailbox[T any](s *Scheduler, max int) *Mailbox[T] {
	return &Mailbox[T]{s: s, max: max}
}

// Len reports the number of queued (undelivered) messages.
func (m *Mailbox[T]) Len() int { return len(m.q) }

// Dropped reports how many messages were discarded due to the bound.
func (m *Mailbox[T]) Dropped() int { return m.dropped }

// Put delivers v: directly to the longest-waiting process if any, otherwise
// onto the queue.
func (m *Mailbox[T]) Put(v T) {
	for len(m.waiters) > 0 {
		w := m.waiters[0]
		m.waiters = m.waiters[1:]
		if w.cancelled || w.p.done || w.p.killed {
			continue
		}
		w.delivered = true
		w.val = v
		w.p.wakeAt(w.gen)
		return
	}
	if m.max > 0 && len(m.q) >= m.max {
		m.dropped++
		return
	}
	m.q = append(m.q, v)
}

// TryGet pops the oldest queued message without blocking.
func (m *Mailbox[T]) TryGet() (T, bool) {
	if len(m.q) > 0 {
		v := m.q[0]
		m.q = m.q[1:]
		return v, true
	}
	var zero T
	return zero, false
}

// Get blocks p until a message arrives or timeout elapses. A negative
// timeout blocks forever. ok is false on timeout.
func (m *Mailbox[T]) Get(p *Proc, timeout time.Duration) (v T, ok bool) {
	if v, ok := m.TryGet(); ok {
		return v, true
	}
	w := &mboxWaiter[T]{p: p, gen: p.arm()}
	m.waiters = append(m.waiters, w)
	if timeout >= 0 {
		m.s.After(timeout, func() {
			if w.delivered || w.cancelled {
				return
			}
			w.cancelled = true
			p.wakeAt(w.gen)
		})
	}
	p.park()
	if w.delivered {
		return w.val, true
	}
	w.cancelled = true // a Kill can also end the park; drop the waiter slot
	var zero T
	return zero, false
}

// Drain removes and returns all queued messages.
func (m *Mailbox[T]) Drain() []T {
	out := m.q
	m.q = nil
	return out
}
