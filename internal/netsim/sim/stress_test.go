package sim

import (
	"testing"
	"time"
)

// TestSchedulerStress drives a seeded random interleaving of every engine
// primitive — Spawn, Sleep, Kill, Timer.Stop, Put, Get-with-timeout — and
// checks the invariants the simulator depends on: a stopped timer's handler
// never runs, killed processes unwind exactly once, the queue drains to
// zero with no cancelled corpses, and the whole interleaving is
// reproducible from the seed. CI runs this under -race, which additionally
// catches any double-resume handing two goroutines the scheduler at once.
func TestSchedulerStress(t *testing.T) {
	type outcome struct {
		executed  uint64
		stopped   uint64
		delivered int
		now       time.Duration
	}
	run := func(seed int64) outcome {
		s := NewScheduler(seed)
		mb := NewBoundedMailbox[int](s, 32)
		rng := s.Rand()

		var procs []*Proc
		var timers []Timer
		stopped := map[int]bool{}
		delivered := 0
		tampered := -1 // index of a stopped timer whose handler ran

		step := func() {
			switch op := rng.Intn(12); {
			case op < 3: // a producer: sleep, then deliver
				procs = append(procs, s.Spawn("producer", func(p *Proc) {
					for i := 0; i < 30 && !p.Killed(); i++ {
						p.Sleep(time.Duration(1+rng.Intn(3000)) * time.Millisecond)
						mb.Put(i)
					}
				}))
			case op < 6: // a consumer with per-Get timeouts
				procs = append(procs, s.Spawn("consumer", func(p *Proc) {
					for i := 0; i < 30; i++ {
						if _, ok := mb.Get(p, time.Duration(rng.Intn(4000))*time.Millisecond); ok {
							delivered++
						}
					}
				}))
			case op < 9: // arm a cancellable timer
				idx := len(timers)
				timers = append(timers, s.AfterTimer(
					time.Duration(rng.Intn(5000))*time.Millisecond, func() {
						if stopped[idx] && tampered < 0 {
							tampered = idx
						}
					}))
			case op < 11: // stop a random timer (may be stale or already fired)
				if len(timers) > 0 {
					idx := rng.Intn(len(timers))
					if timers[idx].Stop() {
						stopped[idx] = true
					}
				}
			default: // kill a random proc (may already be done)
				if len(procs) > 0 {
					procs[rng.Intn(len(procs))].Kill()
				}
			}
		}

		const horizon = 10 * time.Minute
		for i := 0; i < 300; i++ {
			s.After(time.Duration(rng.Intn(int(horizon/time.Millisecond)))*time.Millisecond, step)
		}
		s.RunUntil(horizon)
		for _, p := range procs {
			p.Kill()
		}
		s.RunFor(time.Hour) // drain: every survivor finishes or unwinds

		if tampered >= 0 {
			t.Fatalf("seed %d: stopped timer %d fired anyway", seed, tampered)
		}
		for i, p := range procs {
			if !p.Done() {
				t.Fatalf("seed %d: proc %d (%s) not done after kill and drain", seed, i, p.Name())
			}
		}
		if n := s.Pending(); n != 0 {
			t.Fatalf("seed %d: Pending = %d after drain, want 0", seed, n)
		}
		if st := s.Stats(); st.Cancelled != 0 {
			t.Fatalf("seed %d: %d cancelled corpses after drain", seed, st.Cancelled)
		}
		if n := len(mb.waiters); n != 0 {
			t.Fatalf("seed %d: %d waiter records after drain", seed, n)
		}
		st := s.Stats()
		return outcome{executed: st.Executed, stopped: st.TimersStopped, delivered: delivered, now: s.Now()}
	}

	for _, seed := range []int64{1, 42, 1993} {
		a, b := run(seed), run(seed)
		if a != b {
			t.Fatalf("seed %d not reproducible: %+v vs %+v", seed, a, b)
		}
		if a.delivered == 0 || a.stopped == 0 {
			t.Fatalf("seed %d exercised nothing interesting: %+v", seed, a)
		}
	}
}
