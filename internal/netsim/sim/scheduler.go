// Package sim provides a deterministic discrete-event simulation engine:
// a virtual clock, an event queue, coroutine-style processes, and typed
// mailboxes for inter-process communication.
//
// Fremont's evaluation requires hours of simulated network time (the paper's
// Table 5 runs ARPwatch for 24 hours) and exact reproducibility. The engine
// therefore runs on a virtual clock: events execute in timestamp order, ties
// broken by scheduling order, and all randomness flows from a single seeded
// source. Processes are goroutines, but at most one is runnable at any
// moment — the scheduler hands control to a process and waits for it to park
// again — so execution is single-threaded in effect and fully deterministic.
//
// The event queue is built for the hot path: events are value-typed entries
// in a 4-ary heap (no per-event allocation, no interface boxing), handlers
// can be pre-bound (EventFunc + arg + aux) so scheduling a frame delivery or
// a process wakeup allocates no closure, and timers are cancellable — a
// satisfied timeout is removed from the queue instead of being dragged
// through every heap operation until its deadline.
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// EventFunc is a pre-bound event handler. arg and aux are captured at
// scheduling time, letting hot paths (frame delivery, process wakeups,
// mailbox timeouts) schedule events without allocating a closure per event.
type EventFunc func(arg any, aux uint64)

// event is one queued entry. Value-typed on purpose: the queue is a []event
// and heap operations move events by copy, never through a pointer or an
// interface.
type event struct {
	at   time.Duration
	seq  uint64
	aux  uint64
	slot int32 // timer slot index, or -1 for fire-and-forget events
	fn   EventFunc
	arg  any
}

// timerSlot tracks one cancellable event. Slots are reused through a free
// list; gen distinguishes a live Timer handle from a stale one pointing at a
// recycled slot.
type timerSlot struct {
	gen       uint32
	armed     bool
	cancelled bool
}

// Scheduler owns the virtual clock and the pending event queue.
type Scheduler struct {
	now   time.Duration
	base  time.Time
	queue []event // 4-ary min-heap ordered by (at, seq)
	seq   uint64
	rng   *rand.Rand

	slots      []timerSlot
	freeSlots  []int32
	ncancelled int // cancelled events still occupying queue entries

	executed      uint64 // live events run
	timersStopped uint64
	compactions   uint64

	nprocs  int // live (spawned, unfinished) processes
	stopped bool
}

// SchedulerStats is a snapshot of the engine's internal counters, for
// benchmarks and the observability layer.
type SchedulerStats struct {
	Executed      uint64 // events popped and run (cancelled events excluded)
	TimersStopped uint64 // successful Timer.Stop calls
	Compactions   uint64 // queue sweeps that evicted cancelled entries
	Pending       int    // live (non-cancelled) queued events
	Cancelled     int    // cancelled entries awaiting eviction
}

// NewScheduler returns a scheduler whose virtual clock starts at zero and
// whose wall-clock epoch is a fixed reference date. All randomness in a
// simulation should come from Rand(), seeded here, so that runs are exactly
// reproducible.
func NewScheduler(seed int64) *Scheduler {
	return &Scheduler{
		// A fixed epoch keeps journal timestamps stable across runs.
		base: time.Date(1993, time.January, 25, 8, 0, 0, 0, time.UTC),
		rng:  rand.New(rand.NewSource(seed)),
	}
}

// Now returns the virtual time elapsed since the start of the simulation.
func (s *Scheduler) Now() time.Duration { return s.now }

// WallNow returns the virtual time as an absolute timestamp, for recording
// in the Journal.
func (s *Scheduler) WallNow() time.Time { return s.base.Add(s.now) }

// Rand returns the simulation's random source. It must only be used from
// event or process context (never concurrently).
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// Stats returns a snapshot of the engine counters.
func (s *Scheduler) Stats() SchedulerStats {
	return SchedulerStats{
		Executed:      s.executed,
		TimersStopped: s.timersStopped,
		Compactions:   s.compactions,
		Pending:       len(s.queue) - s.ncancelled,
		Cancelled:     s.ncancelled,
	}
}

// runClosure adapts a plain func() to the EventFunc shape. Func values are
// pointer-shaped, so boxing one into arg does not allocate.
func runClosure(arg any, _ uint64) { arg.(func())() }

// At schedules fn to run at virtual time t. Scheduling in the past is an
// error in the caller; the event is clamped to the current time.
func (s *Scheduler) At(t time.Duration, fn func()) {
	s.schedule(t, runClosure, fn, 0, -1)
}

// After schedules fn to run d from now. Negative d means "now".
func (s *Scheduler) After(d time.Duration, fn func()) {
	s.schedule(s.now+d, runClosure, fn, 0, -1)
}

// AtEvent schedules a pre-bound handler at virtual time t without
// allocating a closure: fn is invoked as fn(arg, aux).
func (s *Scheduler) AtEvent(t time.Duration, fn EventFunc, arg any, aux uint64) {
	s.schedule(t, fn, arg, aux, -1)
}

// AfterEvent schedules a pre-bound handler d from now.
func (s *Scheduler) AfterEvent(d time.Duration, fn EventFunc, arg any, aux uint64) {
	s.schedule(s.now+d, fn, arg, aux, -1)
}

// AtTimer schedules fn at virtual time t and returns a handle that can
// cancel it before it fires.
func (s *Scheduler) AtTimer(t time.Duration, fn func()) Timer {
	return s.scheduleTimer(t, runClosure, fn, 0)
}

// AfterTimer schedules fn to run d from now, cancellable via the returned
// handle.
func (s *Scheduler) AfterTimer(d time.Duration, fn func()) Timer {
	return s.scheduleTimer(s.now+d, runClosure, fn, 0)
}

// AfterEventTimer schedules a pre-bound handler d from now, cancellable via
// the returned handle. This is the hot-path primitive: no closure, no
// per-event allocation, and the event leaves the queue the moment it is no
// longer needed.
func (s *Scheduler) AfterEventTimer(d time.Duration, fn EventFunc, arg any, aux uint64) Timer {
	return s.scheduleTimer(s.now+d, fn, arg, aux)
}

func (s *Scheduler) schedule(t time.Duration, fn EventFunc, arg any, aux uint64, slot int32) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	s.push(event{at: t, seq: s.seq, aux: aux, slot: slot, fn: fn, arg: arg})
}

func (s *Scheduler) scheduleTimer(t time.Duration, fn EventFunc, arg any, aux uint64) Timer {
	idx := s.allocSlot()
	s.schedule(t, fn, arg, aux, idx)
	return Timer{s: s, idx: idx, gen: s.slots[idx].gen}
}

func (s *Scheduler) allocSlot() int32 {
	var idx int32
	if n := len(s.freeSlots); n > 0 {
		idx = s.freeSlots[n-1]
		s.freeSlots = s.freeSlots[:n-1]
	} else {
		idx = int32(len(s.slots))
		s.slots = append(s.slots, timerSlot{})
	}
	sl := &s.slots[idx]
	sl.armed = true
	sl.cancelled = false
	return idx
}

func (s *Scheduler) releaseSlot(idx int32) {
	sl := &s.slots[idx]
	sl.gen++
	sl.armed = false
	sl.cancelled = false
	s.freeSlots = append(s.freeSlots, idx)
}

// Timer is a handle to a scheduled event. The zero Timer is valid and inert.
type Timer struct {
	s   *Scheduler
	idx int32
	gen uint32
}

// Stop cancels the timer, guaranteeing its handler will not run. It returns
// true if the call prevented a pending event from firing, false if the
// event already fired, was already stopped, or the handle is stale or zero.
// Stopping is O(1); the dead queue entry is skipped on pop or evicted by a
// periodic compaction sweep, so it never costs heap work at its deadline.
func (t Timer) Stop() bool {
	if t.s == nil {
		return false
	}
	sl := &t.s.slots[t.idx]
	if sl.gen != t.gen || !sl.armed || sl.cancelled {
		return false
	}
	sl.cancelled = true
	t.s.ncancelled++
	t.s.timersStopped++
	t.s.maybeCompact()
	return true
}

// Active reports whether the timer is still pending (not fired, not
// stopped).
func (t Timer) Active() bool {
	if t.s == nil {
		return false
	}
	sl := &t.s.slots[t.idx]
	return sl.gen == t.gen && sl.armed && !sl.cancelled
}

// maybeCompact sweeps cancelled entries out of the queue once they dominate
// it, so a timeout-heavy workload (every Recv arming and then stopping a
// timer) keeps the heap proportional to the live event count. Amortized
// O(1) per cancellation.
func (s *Scheduler) maybeCompact() {
	if s.ncancelled < 64 || s.ncancelled*2 < len(s.queue) {
		return
	}
	keep := s.queue[:0]
	for _, e := range s.queue {
		if e.slot >= 0 && s.slots[e.slot].cancelled {
			s.releaseSlot(e.slot)
			continue
		}
		keep = append(keep, e)
	}
	for i := len(keep); i < len(s.queue); i++ {
		s.queue[i] = event{} // release fn/arg for GC
	}
	s.queue = keep
	s.ncancelled = 0
	s.compactions++
	if n := len(keep); n > 1 {
		for i := (n - 2) / 4; i >= 0; i-- {
			s.siftDown(i)
		}
	}
}

// Pending reports the number of live (non-cancelled) queued events.
func (s *Scheduler) Pending() int { return len(s.queue) - s.ncancelled }

// NextEventAt returns the timestamp of the earliest queued entry and
// whether the queue is non-empty. Cancelled timers awaiting eviction
// are included, which only makes the answer conservative (earlier).
// Sharded run loops (netsim.Cluster) use it to skip conservative-sync
// windows in which no shard has anything to do.
func (s *Scheduler) NextEventAt() (time.Duration, bool) {
	if len(s.queue) == 0 {
		return 0, false
	}
	return s.queue[0].at, true
}

// Stop makes the current Run/RunUntil call return after the current event
// completes.
func (s *Scheduler) Stop() { s.stopped = true }

// Run executes events until the queue is empty or Stop is called.
func (s *Scheduler) Run() {
	s.stopped = false
	for len(s.queue) > 0 && !s.stopped {
		s.step()
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock
// to t (even if the queue drained earlier).
func (s *Scheduler) RunUntil(t time.Duration) {
	s.stopped = false
	for len(s.queue) > 0 && s.queue[0].at <= t && !s.stopped {
		s.step()
	}
	if s.now < t {
		s.now = t
	}
}

// RunFor runs the simulation for d of virtual time from the current moment.
func (s *Scheduler) RunFor(d time.Duration) { s.RunUntil(s.now + d) }

// HasEventBefore reports whether any queued entry (including a cancelled
// one awaiting eviction) has a timestamp at or before t. Step on a
// cancelled entry is a cheap no-op, so callers driving the queue manually
// can treat "true" as "call Step again".
func (s *Scheduler) HasEventBefore(t time.Duration) bool {
	return len(s.queue) > 0 && s.queue[0].at <= t
}

// Step pops and runs the earliest queued entry (a no-op for a cancelled
// timer). External run loops — netsim's gated emulytics mode — use it to
// interleave events with goroutine quiescence checks.
func (s *Scheduler) Step() {
	if len(s.queue) > 0 {
		s.step()
	}
}

// AdvanceTo moves the clock forward to t without running events. Used by
// external run loops after draining every event at or before t.
func (s *Scheduler) AdvanceTo(t time.Duration) {
	if s.now < t {
		s.now = t
	}
}

func (s *Scheduler) step() {
	e := s.popRoot()
	if e.slot >= 0 {
		cancelled := s.slots[e.slot].cancelled
		s.releaseSlot(e.slot)
		if cancelled {
			// A stopped timer neither runs nor advances the clock.
			s.ncancelled--
			return
		}
	}
	if e.at > s.now {
		s.now = e.at
	}
	s.executed++
	e.fn(e.arg, e.aux)
}

// --- 4-ary min-heap over []event, ordered by (at, seq) -----------------
//
// A 4-ary layout halves the tree depth of a binary heap: pops do a few more
// comparisons per level but far fewer cache-missing level hops, which wins
// for the simulator's queue sizes (thousands of pending events).

func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (s *Scheduler) push(e event) {
	s.queue = append(s.queue, e)
	// Sift up.
	q := s.queue
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !eventLess(&e, &q[parent]) {
			break
		}
		q[i] = q[parent]
		i = parent
	}
	q[i] = e
}

func (s *Scheduler) popRoot() event {
	q := s.queue
	n := len(q) - 1
	root := q[0]
	last := q[n]
	q[n] = event{} // release fn/arg for GC
	s.queue = q[:n]
	if n > 0 {
		s.queue[0] = last
		s.siftDown(0)
	}
	return root
}

func (s *Scheduler) siftDown(i int) {
	q := s.queue
	n := len(q)
	e := q[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if eventLess(&q[c], &q[min]) {
				min = c
			}
		}
		if !eventLess(&q[min], &e) {
			break
		}
		q[i] = q[min]
		i = min
	}
	q[i] = e
}

// String describes the scheduler state, for debugging.
func (s *Scheduler) String() string {
	return fmt.Sprintf("sim: t=%v queued=%d procs=%d", s.now, s.Pending(), s.nprocs)
}
