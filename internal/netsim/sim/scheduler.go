// Package sim provides a deterministic discrete-event simulation engine:
// a virtual clock, an event queue, coroutine-style processes, and typed
// mailboxes for inter-process communication.
//
// Fremont's evaluation requires hours of simulated network time (the paper's
// Table 5 runs ARPwatch for 24 hours) and exact reproducibility. The engine
// therefore runs on a virtual clock: events execute in timestamp order, ties
// broken by scheduling order, and all randomness flows from a single seeded
// source. Processes are goroutines, but at most one is runnable at any
// moment — the scheduler hands control to a process and waits for it to park
// again — so execution is single-threaded in effect and fully deterministic.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Scheduler owns the virtual clock and the pending event queue.
type Scheduler struct {
	now   time.Duration
	base  time.Time
	queue eventQueue
	seq   uint64
	rng   *rand.Rand

	nprocs  int // live (spawned, unfinished) processes
	stopped bool
}

type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// NewScheduler returns a scheduler whose virtual clock starts at zero and
// whose wall-clock epoch is a fixed reference date. All randomness in a
// simulation should come from Rand(), seeded here, so that runs are exactly
// reproducible.
func NewScheduler(seed int64) *Scheduler {
	return &Scheduler{
		// A fixed epoch keeps journal timestamps stable across runs.
		base: time.Date(1993, time.January, 25, 8, 0, 0, 0, time.UTC),
		rng:  rand.New(rand.NewSource(seed)),
	}
}

// Now returns the virtual time elapsed since the start of the simulation.
func (s *Scheduler) Now() time.Duration { return s.now }

// WallNow returns the virtual time as an absolute timestamp, for recording
// in the Journal.
func (s *Scheduler) WallNow() time.Time { return s.base.Add(s.now) }

// Rand returns the simulation's random source. It must only be used from
// event or process context (never concurrently).
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// At schedules fn to run at virtual time t. Scheduling in the past is an
// error in the caller; the event is clamped to the current time.
func (s *Scheduler) At(t time.Duration, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.queue, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d from now. Negative d means "now".
func (s *Scheduler) After(d time.Duration, fn func()) {
	s.At(s.now+d, fn)
}

// Pending reports the number of queued events.
func (s *Scheduler) Pending() int { return len(s.queue) }

// Stop makes the current Run/RunUntil call return after the current event
// completes.
func (s *Scheduler) Stop() { s.stopped = true }

// Run executes events until the queue is empty or Stop is called.
func (s *Scheduler) Run() {
	s.stopped = false
	for len(s.queue) > 0 && !s.stopped {
		s.step()
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock
// to t (even if the queue drained earlier).
func (s *Scheduler) RunUntil(t time.Duration) {
	s.stopped = false
	for len(s.queue) > 0 && s.queue[0].at <= t && !s.stopped {
		s.step()
	}
	if s.now < t {
		s.now = t
	}
}

// RunFor runs the simulation for d of virtual time from the current moment.
func (s *Scheduler) RunFor(d time.Duration) { s.RunUntil(s.now + d) }

func (s *Scheduler) step() {
	e := heap.Pop(&s.queue).(*event)
	if e.at > s.now {
		s.now = e.at
	}
	e.fn()
}

// String describes the scheduler state, for debugging.
func (s *Scheduler) String() string {
	return fmt.Sprintf("sim: t=%v queued=%d procs=%d", s.now, len(s.queue), s.nprocs)
}
