package netsim

import (
	"testing"
	"time"

	"fremont/internal/netsim/pkt"
	"fremont/internal/netsim/sim"
)

func TestARPCacheExpiry(t *testing.T) {
	n := New(401)
	seg := n.NewSegment("seg", mustSubnet(t, "10.0.0.0/24"))
	a := n.NewNode("a")
	a.AddIface(seg, mustIP(t, "10.0.0.1"), pkt.MaskBits(24))
	a.ARPCacheTTL = 5 * time.Minute
	b := n.NewNode("b")
	b.AddIface(seg, mustIP(t, "10.0.0.2"), pkt.MaskBits(24))

	// Prime the cache.
	u := &pkt.UDPPacket{SrcPort: 1, DstPort: PortDiscard}
	dst := mustIP(t, "10.0.0.2")
	h := pkt.IPv4Header{Protocol: pkt.ProtoUDP, Dst: dst, TTL: 30}
	_ = a.SendIP(h, u.Encode(a.Ifaces[0].IP, dst))
	n.Run(5 * time.Second)
	if len(a.ARPTable()) == 0 {
		t.Fatal("cache not primed")
	}
	// After the TTL, the snapshot hides the stale entry.
	n.Run(6 * time.Minute)
	if entries := a.ARPTable(); len(entries) != 0 {
		t.Fatalf("expired entries still visible: %+v", entries)
	}
	// And a fresh send re-ARPs (visible as a new broadcast on a tap).
	w := n.NewNode("w")
	w.AddIface(seg, mustIP(t, "10.0.0.9"), pkt.MaskBits(24))
	tap, _ := w.OpenTap(w.Ifaces[0], true, nil)
	sawRequest := false
	n.Sched.Spawn("watch", func(p *sim.Proc) {
		for {
			raw, ok := tap.Recv(p, 30*time.Second)
			if !ok {
				return
			}
			f, err := pkt.DecodeFrame(raw)
			if err != nil || f.EtherType != pkt.EtherTypeARP {
				continue
			}
			if arp, err := pkt.DecodeARP(f.Payload); err == nil && arp.Op == pkt.ARPRequest &&
				arp.SenderIP == mustIP(t, "10.0.0.1") {
				sawRequest = true
			}
		}
	})
	n.Sched.After(time.Second, func() {
		_ = a.SendIP(h, u.Encode(a.Ifaces[0].IP, dst))
	})
	n.Run(time.Minute)
	if !sawRequest {
		t.Fatal("expired cache did not trigger a fresh ARP request")
	}
}

func TestRIPRequestWholeTable(t *testing.T) {
	n, a, r, _ := twoSubnetNet(t, 402)
	for i := 0; i < 30; i++ {
		// Pad the table past one RIP packet (25 entries max).
		_ = r.AddRoute(pkt.SubnetOf(pkt.IPv4(10, 2, byte(i), 0), pkt.MaskBits(24)), mustIP(t, "10.1.2.2"))
	}
	n.StartRIP(r)

	conn, err := a.OpenUDP(0)
	if err != nil {
		t.Fatal(err)
	}
	routes := map[pkt.IP]bool{}
	n.Sched.Spawn("query", func(p *sim.Proc) {
		req := &pkt.RIPPacket{Command: pkt.RIPRequest,
			Entries: []pkt.RIPEntry{{Family: 0, Metric: pkt.RIPInfinity}}}
		if err := conn.Send(r.Ifaces[0].IP, pkt.PortRIP, req.Encode()); err != nil {
			t.Error(err)
			return
		}
		for {
			ev, ok := conn.Recv(p, 5*time.Second)
			if !ok {
				return
			}
			resp, err := pkt.DecodeRIP(ev.Payload)
			if err != nil || resp.Command != pkt.RIPResponse {
				continue
			}
			for _, e := range resp.Entries {
				routes[e.Addr] = true
			}
		}
	})
	n.Run(time.Minute)
	// 2 connected + 30 static = 32 routes, needing two RIP packets.
	if len(routes) < 32 {
		t.Fatalf("whole-table request returned %d routes, want ≥32", len(routes))
	}
}

func TestRIPRequestSpecificRoute(t *testing.T) {
	n, a, r, _ := twoSubnetNet(t, 403)
	n.StartRIP(r)
	conn, _ := a.OpenUDP(0)
	var gotMetric uint32
	var gotUnreach uint32
	n.Sched.Spawn("query", func(p *sim.Proc) {
		req := &pkt.RIPPacket{Command: pkt.RIPRequest, Entries: []pkt.RIPEntry{
			{Family: 2, Addr: mustIP(t, "10.1.2.0")},  // known
			{Family: 2, Addr: mustIP(t, "99.99.0.0")}, // unknown
		}}
		_ = conn.Send(r.Ifaces[0].IP, pkt.PortRIP, req.Encode())
		ev, ok := conn.Recv(p, 5*time.Second)
		if !ok {
			t.Error("no response to specific RIP request")
			return
		}
		resp, err := pkt.DecodeRIP(ev.Payload)
		if err != nil {
			t.Error(err)
			return
		}
		for _, e := range resp.Entries {
			switch e.Addr {
			case mustIP(t, "10.1.2.0"):
				gotMetric = e.Metric
			case mustIP(t, "99.99.0.0"):
				gotUnreach = e.Metric
			}
		}
	})
	n.Run(time.Minute)
	if gotMetric == 0 || gotMetric >= pkt.RIPInfinity {
		t.Fatalf("known route metric = %d", gotMetric)
	}
	if gotUnreach != pkt.RIPInfinity {
		t.Fatalf("unknown route metric = %d, want infinity", gotUnreach)
	}
}

func TestDownRouterIgnoresRIPRequest(t *testing.T) {
	n, a, r, _ := twoSubnetNet(t, 404)
	n.StartRIP(r)
	r.SetUp(false)
	conn, _ := a.OpenUDP(0)
	answered := false
	n.Sched.Spawn("query", func(p *sim.Proc) {
		req := &pkt.RIPPacket{Command: pkt.RIPRequest,
			Entries: []pkt.RIPEntry{{Family: 0, Metric: pkt.RIPInfinity}}}
		_ = conn.Send(r.Ifaces[0].IP, pkt.PortRIP, req.Encode())
		_, answered = conn.Recv(p, 10*time.Second)
	})
	n.Run(time.Minute)
	if answered {
		t.Fatal("down router answered a RIP request")
	}
}

func TestSegmentStats(t *testing.T) {
	n := New(405)
	seg := n.NewSegment("seg", mustSubnet(t, "10.0.0.0/24"))
	a := n.NewNode("a")
	a.AddIface(seg, mustIP(t, "10.0.0.1"), pkt.MaskBits(24))
	b := n.NewNode("b")
	b.AddIface(seg, mustIP(t, "10.0.0.2"), pkt.MaskBits(24))
	u := &pkt.UDPPacket{SrcPort: 1, DstPort: PortDiscard}
	dst := mustIP(t, "10.0.0.2")
	h := pkt.IPv4Header{Protocol: pkt.ProtoUDP, Dst: dst, TTL: 30}
	_ = a.SendIP(h, u.Encode(a.Ifaces[0].IP, dst))
	n.Run(10 * time.Second)
	if seg.Stats.Frames < 3 { // ARP req + reply + UDP (+ unreachable)
		t.Fatalf("Frames = %d", seg.Stats.Frames)
	}
	if seg.Stats.Broadcasts < 1 {
		t.Fatalf("Broadcasts = %d", seg.Stats.Broadcasts)
	}
	if seg.Stats.Bytes == 0 {
		t.Fatal("Bytes not counted")
	}
	if n.TotalFrames() != seg.Stats.Frames {
		t.Fatalf("TotalFrames = %d vs %d", n.TotalFrames(), seg.Stats.Frames)
	}
}

func TestTapFilterAndClose(t *testing.T) {
	n := New(406)
	seg := n.NewSegment("seg", mustSubnet(t, "10.0.0.0/24"))
	a := n.NewNode("a")
	a.AddIface(seg, mustIP(t, "10.0.0.1"), pkt.MaskBits(24))
	b := n.NewNode("b")
	b.AddIface(seg, mustIP(t, "10.0.0.2"), pkt.MaskBits(24))

	onlyARP, _ := a.OpenTap(a.Ifaces[0], true, func(raw []byte) bool {
		f, err := pkt.DecodeFrame(raw)
		return err == nil && f.EtherType == pkt.EtherTypeARP
	})
	u := &pkt.UDPPacket{SrcPort: 1, DstPort: PortDiscard}
	dst := mustIP(t, "10.0.0.2")
	h := pkt.IPv4Header{Protocol: pkt.ProtoUDP, Dst: dst, TTL: 30}
	_ = a.SendIP(h, u.Encode(a.Ifaces[0].IP, dst))
	n.Run(10 * time.Second)

	seen := 0
	for {
		raw, ok := onlyARP.TryRecv()
		if !ok {
			break
		}
		f, _ := pkt.DecodeFrame(raw)
		if f.EtherType != pkt.EtherTypeARP {
			t.Fatalf("filter leaked ethertype 0x%04x", f.EtherType)
		}
		seen++
	}
	if seen == 0 {
		t.Fatal("filtered tap saw nothing")
	}
	// After Close, no more frames are captured.
	onlyARP.Close()
	before := onlyARP.Seen
	_ = a.SendIP(h, u.Encode(a.Ifaces[0].IP, dst))
	n.Run(10 * time.Second)
	if onlyARP.Seen != before {
		t.Fatal("closed tap still capturing")
	}
}
