// Package grid builds parameterized internet-scale topologies for the
// sharded simulator: S shards, each a complete campus-like network of
// department subnets hanging off gateways on a core wire, joined into one
// internetwork by trunk links in a hub-and-spoke between shard border
// routers. At the paper-extrapolated scale — 10,000 subnets, 100,000
// hosts — the topology exercises everything the compact core was built
// for: slab-allocated nodes, lazy per-host state, indexed route lookups
// on the high-degree hub, and conservative-time parallel execution
// across shards (see netsim.Cluster).
//
// Everything is deterministic from Config.Seed: the same configuration
// builds the byte-identical topology, ground truth and traffic schedule
// on every run, at any GOMAXPROCS.
package grid

import (
	"fmt"
	"time"

	"fremont/internal/netsim"
	"fremont/internal/netsim/pkt"
	"fremont/internal/netsim/sim"
)

// Config parametrizes the grid. All knobs are deterministic functions of
// Seed; fractions are applied per candidate with seeded draws.
type Config struct {
	Seed int64

	Shards            int // parallel shards (border routers, trunk spokes)
	Subnets           int // department subnets, split evenly across shards
	HostsPerSubnet    int // plain hosts per department wire (<= 240)
	SubnetsPerGateway int // department wires per gateway router
	TrunkLatency      time.Duration

	// Traffic.
	RIP             bool          // periodic advertisements from dept gateways
	ChatterPerShard int           // hosts per shard running background chatter
	ChatterMean     time.Duration // mean chatter interval
	CrossTalkers    int           // per-shard hosts probing the next shard
	CrossPeriod     time.Duration // mean cross-shard probe interval

	// Misbehaviour knobs, as fractions of the relevant population.
	SilentGatewayFrac float64 // gateways with SilentICMPErrors
	TTLEchoBugFrac    float64 // gateways with TTLEchoBug
	WrongMaskFrac     float64 // hosts answering mask requests with /16
	DownHostFrac      float64 // hosts powered off at build time
}

// DefaultConfig returns a mid-size grid: big enough to shard meaningfully
// (4 shards, 64 subnets, 256 hosts), small enough for unit tests.
func DefaultConfig() Config {
	return Config{
		Seed:              1993,
		Shards:            4,
		Subnets:           64,
		HostsPerSubnet:    4,
		SubnetsPerGateway: 4,
		TrunkLatency:      2 * time.Millisecond,
		RIP:               true,
		ChatterPerShard:   4,
		ChatterMean:       4 * time.Minute,
		CrossTalkers:      2,
		CrossPeriod:       20 * time.Second,
		SilentGatewayFrac: 0.10,
		TTLEchoBugFrac:    0.05,
		WrongMaskFrac:     0.03,
		DownHostFrac:      0.05,
	}
}

// InternetScale returns the 10,000-subnet, 100,000-host configuration the
// scale benchmark runs: the paper's campus extrapolated by two orders of
// magnitude.
func InternetScale() Config {
	return Config{
		Seed:              1993,
		Shards:            16,
		Subnets:           10000,
		HostsPerSubnet:    10,
		SubnetsPerGateway: 5,
		TrunkLatency:      2 * time.Millisecond,
		RIP:               true,
		ChatterPerShard:   8,
		ChatterMean:       10 * time.Minute,
		CrossTalkers:      4,
		CrossPeriod:       30 * time.Second,
		SilentGatewayFrac: 0.10,
		TTLEchoBugFrac:    0.03,
		WrongMaskFrac:     0.02,
		DownHostFrac:      0.05,
	}
}

// Grid is the built internetwork plus its ground truth.
type Grid struct {
	Cfg     Config
	Cluster *netsim.Cluster
	Shards  []*netsim.Network

	Subnets  []pkt.Subnet   // all department subnets, in shard order
	Borders  []*netsim.Node // per-shard border router (Borders[0] is the hub)
	Hosts    int            // plain department hosts
	Gateways int            // department gateway routers

	// Ground truth for the misbehaviour knobs.
	SilentGateways []string // node names with SilentICMPErrors
	TTLBugGateways []string
	WrongMaskIPs   []pkt.IP
	DownHostIPs    []pkt.IP
}

// Addressing plan: department subnet with global index k lives at
// 10.(1+k/256).(k%256).0/24; shard i's core wire is 10.250.i.0/24 and its
// trunk to the hub is 10.251.i.0/24 (hub side .1, spoke side .2).
const (
	hostBase = 10 // first host address on a department wire
)

func deptSubnet(k int) pkt.Subnet {
	return pkt.SubnetOf(pkt.IPv4(10, byte(1+k/256), byte(k%256), 0), pkt.MaskBits(24))
}

// Build constructs the grid. It panics on configurations that overflow
// the addressing plan (more than ~60k subnets, 240 hosts per wire, 240
// gateways per shard, 249 shards).
func Build(cfg Config) *Grid {
	if cfg.Shards < 1 || cfg.Shards > 249 {
		panic("grid: Shards must be in [1, 249]")
	}
	if cfg.HostsPerSubnet < 1 || cfg.HostsPerSubnet > 240 {
		panic("grid: HostsPerSubnet must be in [1, 240]")
	}
	if cfg.SubnetsPerGateway < 1 {
		panic("grid: SubnetsPerGateway must be positive")
	}
	if cfg.Subnets < cfg.Shards {
		panic("grid: need at least one subnet per shard")
	}
	if 1+cfg.Subnets/256 > 249 {
		panic("grid: too many subnets for the 10.x addressing plan")
	}

	g := &Grid{Cfg: cfg}
	mask := pkt.MaskBits(24)

	// Partition subnets into contiguous per-shard blocks.
	per := cfg.Subnets / cfg.Shards
	extra := cfg.Subnets % cfg.Shards
	type shardPlan struct {
		subnets []pkt.Subnet
		gwIP    []pkt.IP // owning gateway's core address, per subnet
	}
	plans := make([]shardPlan, cfg.Shards)

	k := 0
	for i := 0; i < cfg.Shards; i++ {
		cnt := per
		if i < extra {
			cnt++
		}
		for s := 0; s < cnt; s++ {
			sn := deptSubnet(k)
			plans[i].subnets = append(plans[i].subnets, sn)
			g.Subnets = append(g.Subnets, sn)
			k++
		}
	}

	// --- Per-shard topology ---------------------------------------------
	for i := 0; i < cfg.Shards; i++ {
		// Distinct seeds per shard; disjoint MAC ranges so addresses are
		// unique across the whole internetwork.
		n := netsim.New(cfg.Seed + int64(i)*1000003)
		n.SeedMACs(uint32(i) * 1 << 20)
		g.Shards = append(g.Shards, n)
		plan := &plans[i]

		coreSubnet := pkt.SubnetOf(pkt.IPv4(10, 250, byte(i), 0), mask)
		core := n.NewSegment(fmt.Sprintf("s%d-core", i), coreSubnet)

		border := n.NewNode(fmt.Sprintf("s%d-border", i))
		border.IsRouter = true
		borderCoreIP := coreSubnet.Addr + 1
		border.AddIface(core, borderCoreIP, mask)
		g.Borders = append(g.Borders, border)

		rng := n.Sched.Rand()
		ngw := (len(plan.subnets) + cfg.SubnetsPerGateway - 1) / cfg.SubnetsPerGateway
		if ngw > 240 {
			panic("grid: too many gateways per shard; raise SubnetsPerGateway")
		}
		for gi := 0; gi < ngw; gi++ {
			gw := n.NewNode(fmt.Sprintf("s%d-gw%d", i, gi))
			gw.IsRouter = true
			gw.RespondsMask = true
			gw.AddIface(core, coreSubnet.Addr+pkt.IP(hostBase+gi), mask)
			if rng.Float64() < cfg.SilentGatewayFrac {
				gw.SilentICMPErrors = true
				g.SilentGateways = append(g.SilentGateways, gw.Name)
			} else if rng.Float64() < cfg.TTLEchoBugFrac {
				gw.TTLEchoBug = true
				g.TTLBugGateways = append(g.TTLBugGateways, gw.Name)
			}
			g.Gateways++

			lo := gi * cfg.SubnetsPerGateway
			hi := min(lo+cfg.SubnetsPerGateway, len(plan.subnets))
			for s := lo; s < hi; s++ {
				sn := plan.subnets[s]
				seg := n.NewSegment(fmt.Sprintf("s%d-net%d", i, s), sn)
				gwIfc := gw.AddIface(seg, sn.Addr+1, mask)
				plan.gwIP = append(plan.gwIP, coreSubnet.Addr+pkt.IP(hostBase+gi))
				for h := 0; h < cfg.HostsPerSubnet; h++ {
					host := n.NewNode(fmt.Sprintf("s%d-n%d-h%d", i, s, h))
					host.AddIface(seg, sn.Addr+pkt.IP(hostBase+h), mask)
					_ = host.AddDefaultRoute(gwIfc.IP)
					if rng.Float64() < cfg.WrongMaskFrac {
						host.RespondsMask = true
						host.MaskReplyValue = pkt.MaskBits(16)
						g.WrongMaskIPs = append(g.WrongMaskIPs, host.Ifaces[0].IP)
					}
					if rng.Float64() < cfg.DownHostFrac {
						host.SetUp(false)
						g.DownHostIPs = append(g.DownHostIPs, host.Ifaces[0].IP)
					}
					g.Hosts++
				}
			}
			_ = gw.AddDefaultRoute(borderCoreIP)
			if cfg.RIP {
				n.StartRIP(gw)
			}
		}

		// Border routing to local department subnets via their gateways.
		for s, sn := range plan.subnets {
			_ = border.AddRoute(sn, plan.gwIP[s])
		}
	}

	// --- Trunks: hub-and-spoke between borders ---------------------------
	g.Cluster = netsim.NewCluster(g.Shards)
	hub := g.Borders[0]
	for i := 1; i < cfg.Shards; i++ {
		trunkSubnet := pkt.SubnetOf(pkt.IPv4(10, 251, byte(i), 0), mask)
		hubSeg := g.Shards[0].NewSegment(fmt.Sprintf("trunk%d", i), trunkSubnet)
		spokeSeg := g.Shards[i].NewSegment(fmt.Sprintf("trunk%d", i), trunkSubnet)
		hub.AddIface(hubSeg, trunkSubnet.Addr+1, mask)
		g.Borders[i].AddIface(spokeSeg, trunkSubnet.Addr+2, mask)
		g.Cluster.Bridge(hubSeg, spokeSeg, cfg.TrunkLatency)

		// Spoke: everything non-local goes to the hub. Hub: every remote
		// shard's subnets route down its trunk.
		_ = g.Borders[i].AddDefaultRoute(trunkSubnet.Addr + 1)
		for _, sn := range plans[i].subnets {
			_ = hub.AddRoute(sn, trunkSubnet.Addr+2)
		}
	}

	// --- Traffic ----------------------------------------------------------
	for i := 0; i < cfg.Shards; i++ {
		g.startTraffic(i, plans[i].subnets)
	}
	return g
}

// hostIP returns the address of host h on department subnet s of shard i.
func (g *Grid) hostIP(shard, s, h int) pkt.IP {
	per := g.Cfg.Subnets / g.Cfg.Shards
	extra := g.Cfg.Subnets % g.Cfg.Shards
	base := shard*per + min(shard, extra)
	return g.Subnets[base+s].Addr + pkt.IP(hostBase+h)
}

// startTraffic plants chatter and cross-shard probes on a deterministic
// sample of shard i's hosts.
func (g *Grid) startTraffic(i int, subnets []pkt.Subnet) {
	cfg := g.Cfg
	n := g.Shards[i]

	for c := 0; c < cfg.ChatterPerShard; c++ {
		s := c * len(subnets) / max(cfg.ChatterPerShard, 1)
		host := n.IfaceByIP(subnets[s].Addr + hostBase).Node
		n.StartChatter(host, cfg.ChatterMean)
	}

	// Cross-shard talkers: a host here probes the UDP echo port of a host
	// in the next shard, so frames (probe, echo reply, and the talker's
	// port-unreachable for the reply) cross the trunks both ways.
	if cfg.Shards < 2 {
		return
	}
	for c := 0; c < cfg.CrossTalkers; c++ {
		s := c * len(subnets) / max(cfg.CrossTalkers, 1)
		h := min(1, cfg.HostsPerSubnet-1)
		src := n.IfaceByIP(subnets[s].Addr + pkt.IP(hostBase+h)).Node
		dst := g.hostIP((i+1)%cfg.Shards, s%g.shardSubnetCount((i+1)%cfg.Shards), 0)
		period := cfg.CrossPeriod
		n.Sched.Spawn(fmt.Sprintf("cross:%s", src.Name), func(p *sim.Proc) {
			conn, err := src.OpenUDP(0)
			if err != nil {
				return
			}
			rng := n.Sched.Rand()
			payload := []byte("grid-probe")
			for {
				p.Sleep(period/2 + time.Duration(rng.Int63n(int64(period))))
				if src.Up {
					_ = conn.Send(dst, 7, payload)
				}
			}
		})
	}
}

// shardSubnetCount returns how many department subnets shard i owns.
func (g *Grid) shardSubnetCount(i int) int {
	per := g.Cfg.Subnets / g.Cfg.Shards
	if i < g.Cfg.Subnets%g.Cfg.Shards {
		per++
	}
	return per
}

// Run advances the whole internetwork by d of virtual time.
func (g *Grid) Run(d time.Duration) { g.Cluster.Run(d) }

// Digest returns the cluster state hash; see netsim.Cluster.Digest.
func (g *Grid) Digest() string { return g.Cluster.Digest() }

// TotalFrames sums frames across all shards.
func (g *Grid) TotalFrames() int { return g.Cluster.TotalFrames() }

// Nodes returns the total node count (hosts, gateways, borders).
func (g *Grid) Nodes() int {
	total := 0
	for _, sh := range g.Shards {
		total += len(sh.Nodes)
	}
	return total
}

// Close releases the cluster's shard workers.
func (g *Grid) Close() { g.Cluster.Close() }
