package grid

import (
	"runtime"
	"testing"
	"time"
)

func TestBuildCounts(t *testing.T) {
	cfg := DefaultConfig()
	g := Build(cfg)
	defer g.Close()

	if g.Hosts != cfg.Subnets*cfg.HostsPerSubnet {
		t.Errorf("Hosts = %d, want %d", g.Hosts, cfg.Subnets*cfg.HostsPerSubnet)
	}
	if len(g.Subnets) != cfg.Subnets {
		t.Errorf("Subnets = %d, want %d", len(g.Subnets), cfg.Subnets)
	}
	if len(g.Shards) != cfg.Shards || len(g.Borders) != cfg.Shards {
		t.Errorf("shards = %d borders = %d, want %d", len(g.Shards), len(g.Borders), cfg.Shards)
	}
	wantNodes := g.Hosts + g.Gateways + cfg.Shards
	if g.Nodes() != wantNodes {
		t.Errorf("Nodes() = %d, want %d", g.Nodes(), wantNodes)
	}
	// The hub carries a route for every remote subnet plus its own —
	// exactly the high-degree table the route index exists for.
	hubRoutes := len(g.Borders[0].Routes)
	if hubRoutes < cfg.Subnets {
		t.Errorf("hub has %d routes, want >= %d", hubRoutes, cfg.Subnets)
	}
}

// TestBuildDeterminism builds the same configuration twice and expects
// byte-identical topology and ground truth — before any traffic runs.
func TestBuildDeterminism(t *testing.T) {
	g1 := Build(DefaultConfig())
	defer g1.Close()
	g2 := Build(DefaultConfig())
	defer g2.Close()

	if d1, d2 := g1.Digest(), g2.Digest(); d1 != d2 {
		t.Errorf("topology digests differ:\n%s\n%s", d1, d2)
	}
	if len(g1.SilentGateways) != len(g2.SilentGateways) ||
		len(g1.WrongMaskIPs) != len(g2.WrongMaskIPs) ||
		len(g1.DownHostIPs) != len(g2.DownHostIPs) {
		t.Error("ground-truth populations differ between identical builds")
	}
	for i := range g1.SilentGateways {
		if g1.SilentGateways[i] != g2.SilentGateways[i] {
			t.Fatalf("silent gateway %d: %s vs %s", i, g1.SilentGateways[i], g2.SilentGateways[i])
		}
	}
	for i := range g1.DownHostIPs {
		if g1.DownHostIPs[i] != g2.DownHostIPs[i] {
			t.Fatalf("down host %d: %s vs %s", i, g1.DownHostIPs[i], g2.DownHostIPs[i])
		}
	}
}

// TestGridDeterminismAcrossGOMAXPROCS is the sharded-scheduler
// determinism gate: the same mid-size grid must produce bit-identical
// state digests when its shards run on 1, 2 and 8 OS threads. Run under
// -race in CI.
func TestGridDeterminismAcrossGOMAXPROCS(t *testing.T) {
	runAt := func(procs int) string {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
		g := Build(DefaultConfig())
		defer g.Close()
		g.Run(45 * time.Second)
		if g.TotalFrames() == 0 {
			t.Fatal("no traffic simulated")
		}
		return g.Digest()
	}
	d1 := runAt(1)
	d2 := runAt(2)
	d8 := runAt(8)
	if d1 != d2 || d2 != d8 {
		t.Errorf("digests diverge across GOMAXPROCS:\n 1: %s\n 2: %s\n 8: %s", d1, d2, d8)
	}
}

// TestCrossShardTraffic checks that the generated workload actually
// exercises the trunks: cross-shard frames must flow in a short run.
func TestCrossShardTraffic(t *testing.T) {
	g := Build(DefaultConfig())
	defer g.Close()
	g.Run(2 * time.Minute)
	st := g.Cluster.Stats()
	if st.CrossFrames == 0 {
		t.Error("no frames crossed shard boundaries")
	}
	if st.Windows == 0 {
		t.Error("no synchronization windows executed")
	}
	if st.IdleSkips == 0 {
		t.Error("idle-window skip never engaged")
	}
}
