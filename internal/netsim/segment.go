package netsim

import (
	"time"

	"fremont/internal/netsim/pkt"
	"fremont/internal/netsim/sim"
)

// SegmentStats counts traffic on a segment.
type SegmentStats struct {
	Frames     int // frames offered to the wire
	Bytes      int
	Dropped    int // lost to collisions or random loss
	Broadcasts int
}

// Segment is a shared medium (an Ethernet wire). All attached interfaces
// see broadcast frames; unicast frames are delivered to the owner of the
// destination MAC. Taps (the SunOS NIT analog) observe every frame that
// survives the wire.
//
// The collision model is deliberately simple but captures what the paper's
// Table 5 needs: when many stations transmit within CollisionWindow of each
// other — exactly what a directed-broadcast ping provokes — frames beyond
// the first CollisionFree are each lost with probability CollisionProb per
// concurrent competitor. "These directed broadcasts tend to be less
// successful than sequential pings on a subnet with many hosts, because
// closely spaced replies can cause many collisions."
//
// The transmit/deliver path is the simulator's hottest loop and is built
// accordingly: unicast destinations resolve through a MAC index instead of
// an interface scan, delivery events carry pooled pre-bound payloads
// instead of fresh closures, the collision window is a ring buffer, frames
// dropped on the wire are never encoded at all, and encode buffers are
// recycled whenever no tap or socket retained the bytes.
type Segment struct {
	net    *Network
	Name   string
	Subnet pkt.Subnet

	Latency         time.Duration
	CollisionWindow time.Duration
	CollisionFree   int     // concurrent frames tolerated before loss starts
	CollisionProb   float64 // per-extra-competitor loss probability
	RandomLoss      float64 // base random frame loss

	ifaces []*Iface
	byMAC  map[pkt.MAC]*Iface // unicast index; first-attached wins on duplicates
	taps   []*Tap

	// portal, when non-nil, marks this segment as one end of a
	// cross-shard trunk (see Cluster.Bridge). Frames that survive the
	// wire are captured into the shard's outbound buffer instead of being
	// delivered locally; the cluster injects them into the peer shard at
	// the next conservative-sync barrier.
	portal *portal

	// Transmissions inside the collision window, a time-ordered ring.
	txBuf  []time.Duration // power-of-two length
	txHead int
	txLen  int

	deliverFn sim.EventFunc // bound once; scheduling a delivery allocates nothing
	freeJobs  []*delivery
	freeBufs  [][]byte

	Stats SegmentStats
}

// delivery is a pooled, pre-bound frame-delivery payload.
type delivery struct {
	from        *Iface
	dst         pkt.MAC
	raw         []byte
	bcast       bool
	tapRetained bool
}

// Ifaces returns the interfaces attached to the segment.
func (s *Segment) Ifaces() []*Iface { return s.ifaces }

// attach wires an interface to the segment (called by Node.AddIface).
func (s *Segment) attach(ifc *Iface) {
	s.ifaces = append(s.ifaces, ifc)
	if _, dup := s.byMAC[ifc.MAC]; !dup {
		s.byMAC[ifc.MAC] = ifc
	}
}

// reindexMAC rebuilds the unicast index after a MAC change (hardware swaps,
// duplicate-address fault injection). Attach order decides ties, matching
// the delivery rule before the index existed.
func (s *Segment) reindexMAC() {
	clear(s.byMAC)
	for _, ifc := range s.ifaces {
		if _, dup := s.byMAC[ifc.MAC]; !dup {
			s.byMAC[ifc.MAC] = ifc
		}
	}
}

// noteTx records a transmission at now, expires entries older than cutoff,
// and returns the number of transmissions inside the window (including this
// one). Amortized O(1): the ring exploits that timestamps arrive in order.
func (s *Segment) noteTx(now, cutoff time.Duration) int {
	mask := len(s.txBuf) - 1
	for s.txLen > 0 && s.txBuf[s.txHead] < cutoff {
		s.txHead = (s.txHead + 1) & mask
		s.txLen--
	}
	if s.txLen == len(s.txBuf) {
		grown := make([]time.Duration, max(16, 2*len(s.txBuf)))
		for i := 0; i < s.txLen; i++ {
			grown[i] = s.txBuf[(s.txHead+i)&mask]
		}
		s.txBuf = grown
		s.txHead = 0
	}
	s.txBuf[(s.txHead+s.txLen)&(len(s.txBuf)-1)] = now
	s.txLen++
	return s.txLen
}

// Transmit offers a frame to the wire from the sending interface. Delivery
// happens after the segment latency; collided or randomly lost frames are
// silently dropped (with stats accounting), like the real thing.
func (s *Segment) Transmit(from *Iface, frame *pkt.Frame) {
	sched := s.net.Sched
	now := sched.Now()
	wireLen := pkt.FrameWireLen(len(frame.Payload))

	s.Stats.Frames++
	s.Stats.Bytes += wireLen
	s.net.mFrames.Inc()
	s.net.mBytes.Add(int64(wireLen))
	bcast := frame.Dst.IsBroadcast()
	if bcast {
		s.Stats.Broadcasts++
		s.net.mBroadcasts.Inc()
	}

	// Collision model: count transmissions within the window.
	concurrent := s.noteTx(now, now-s.CollisionWindow)

	rng := sched.Rand()
	if extra := concurrent - s.CollisionFree; extra > 0 && s.CollisionProb > 0 {
		loss := s.CollisionProb * float64(extra)
		if loss > 0.9 {
			loss = 0.9
		}
		if rng.Float64() < loss {
			s.Stats.Dropped++
			s.net.mDropped.Inc()
			return
		}
	}
	if s.RandomLoss > 0 && rng.Float64() < s.RandomLoss {
		s.Stats.Dropped++
		s.net.mDropped.Inc()
		return
	}

	// The frame survived the wire; encode it once, into a recycled buffer.
	raw := frame.AppendEncode(s.takeBuf())

	// Taps observe surviving frames (promiscuous).
	tapRetained := false
	for _, tap := range s.taps {
		if tap.offer(raw) {
			tapRetained = true
		}
	}

	if s.portal != nil {
		// Cross-shard trunk: the frame leaves this shard's event
		// horizon. Capture it for barrier exchange; the trunk latency
		// (>= the cluster lookahead) replaces the segment latency.
		s.net.crossOut = append(s.net.crossOut, crossFrame{
			target:      s.portal.peer,
			at:          now + s.portal.latency,
			dst:         frame.Dst,
			raw:         raw,
			bcast:       bcast,
			tapRetained: tapRetained,
		})
		return
	}

	d := s.takeJob()
	d.from = from
	d.dst = frame.Dst
	d.raw = raw
	d.bcast = bcast
	d.tapRetained = tapRetained
	sched.AfterEvent(s.Latency, s.deliverFn, d, 0)
}

// deliver runs after the segment latency: hand the frame to its receivers,
// then recycle the job — and the encode buffer, unless a tap or a receiver
// retained the bytes.
func (s *Segment) deliver(arg any, _ uint64) {
	d := arg.(*delivery)
	raw, retained := d.raw, d.tapRetained
	if d.bcast {
		for _, ifc := range s.ifaces {
			if ifc != d.from && ifc.Node.Up {
				if ifc.Node.receiveFrame(ifc, raw) {
					retained = true
				}
			}
		}
	} else if ifc := s.byMAC[d.dst]; ifc != nil {
		if ifc.Node.Up {
			if ifc.Node.receiveFrame(ifc, raw) {
				retained = true
			}
		}
	}
	if !retained {
		s.putBuf(raw)
	}
	s.putJob(d)
}

func (s *Segment) takeJob() *delivery {
	if n := len(s.freeJobs); n > 0 {
		d := s.freeJobs[n-1]
		s.freeJobs[n-1] = nil
		s.freeJobs = s.freeJobs[:n-1]
		return d
	}
	return &delivery{}
}

func (s *Segment) putJob(d *delivery) {
	*d = delivery{}
	if len(s.freeJobs) < 64 {
		s.freeJobs = append(s.freeJobs, d)
	}
}

func (s *Segment) takeBuf() []byte {
	if n := len(s.freeBufs); n > 0 {
		b := s.freeBufs[n-1]
		s.freeBufs[n-1] = nil
		s.freeBufs = s.freeBufs[:n-1]
		return b[:0]
	}
	return nil
}

func (s *Segment) putBuf(b []byte) {
	if cap(b) == 0 || len(s.freeBufs) >= 32 {
		return
	}
	s.freeBufs = append(s.freeBufs, b)
}

// Tap is a promiscuous raw-frame observer on a segment — the simulator's
// stand-in for the SunOS Network Interface Tap. ARPwatch and RIPwatch read
// frames from taps; opening one requires privilege (see Node.OpenTap).
type Tap struct {
	seg    *Segment
	mb     *sim.Mailbox[[]byte]
	Filter func(raw []byte) bool // nil accepts everything
	closed bool
	Seen   int // frames matched and queued
}

// offer hands a surviving frame to the tap; it reports whether the tap's
// mailbox retained the bytes (so the segment knows the buffer escaped).
func (t *Tap) offer(raw []byte) bool {
	if t.closed {
		return false
	}
	if t.Filter != nil && !t.Filter(raw) {
		return false
	}
	t.Seen++
	return t.mb.Put(raw)
}

// Recv blocks the process until a frame matching the filter arrives, or the
// timeout elapses (negative blocks forever).
func (t *Tap) Recv(p *sim.Proc, timeout time.Duration) ([]byte, bool) {
	return t.mb.Get(p, timeout)
}

// TryRecv returns a queued frame without blocking.
func (t *Tap) TryRecv() ([]byte, bool) { return t.mb.TryGet() }

// Close detaches the tap from the segment.
func (t *Tap) Close() {
	if t.closed {
		return
	}
	t.closed = true
	taps := t.seg.taps[:0]
	for _, other := range t.seg.taps {
		if other != t {
			taps = append(taps, other)
		}
	}
	t.seg.taps = taps
}
