package netsim

import (
	"time"

	"fremont/internal/netsim/pkt"
	"fremont/internal/netsim/sim"
)

// SegmentStats counts traffic on a segment.
type SegmentStats struct {
	Frames     int // frames offered to the wire
	Bytes      int
	Dropped    int // lost to collisions or random loss
	Broadcasts int
}

// Segment is a shared medium (an Ethernet wire). All attached interfaces
// see broadcast frames; unicast frames are delivered to the owner of the
// destination MAC. Taps (the SunOS NIT analog) observe every frame that
// survives the wire.
//
// The collision model is deliberately simple but captures what the paper's
// Table 5 needs: when many stations transmit within CollisionWindow of each
// other — exactly what a directed-broadcast ping provokes — frames beyond
// the first CollisionFree are each lost with probability CollisionProb per
// concurrent competitor. "These directed broadcasts tend to be less
// successful than sequential pings on a subnet with many hosts, because
// closely spaced replies can cause many collisions."
type Segment struct {
	net    *Network
	Name   string
	Subnet pkt.Subnet

	Latency         time.Duration
	CollisionWindow time.Duration
	CollisionFree   int     // concurrent frames tolerated before loss starts
	CollisionProb   float64 // per-extra-competitor loss probability
	RandomLoss      float64 // base random frame loss

	ifaces []*Iface
	taps   []*Tap

	recentTx []time.Duration
	Stats    SegmentStats
}

// Ifaces returns the interfaces attached to the segment.
func (s *Segment) Ifaces() []*Iface { return s.ifaces }

// attach wires an interface to the segment (called by Node.AddIface).
func (s *Segment) attach(ifc *Iface) {
	s.ifaces = append(s.ifaces, ifc)
}

// Transmit offers a frame to the wire from the sending interface. Delivery
// happens after the segment latency; collided or randomly lost frames are
// silently dropped (with stats accounting), like the real thing.
func (s *Segment) Transmit(from *Iface, frame *pkt.Frame) {
	sched := s.net.Sched
	now := sched.Now()
	raw := frame.Encode()

	s.Stats.Frames++
	s.Stats.Bytes += len(raw)
	s.net.mFrames.Inc()
	s.net.mBytes.Add(int64(len(raw)))
	if frame.Dst.IsBroadcast() {
		s.Stats.Broadcasts++
		s.net.mBroadcasts.Inc()
	}

	// Collision model: count transmissions within the window.
	cutoff := now - s.CollisionWindow
	keep := s.recentTx[:0]
	for _, t := range s.recentTx {
		if t >= cutoff {
			keep = append(keep, t)
		}
	}
	s.recentTx = append(keep, now)
	concurrent := len(s.recentTx)

	rng := sched.Rand()
	if extra := concurrent - s.CollisionFree; extra > 0 && s.CollisionProb > 0 {
		loss := s.CollisionProb * float64(extra)
		if loss > 0.9 {
			loss = 0.9
		}
		if rng.Float64() < loss {
			s.Stats.Dropped++
			s.net.mDropped.Inc()
			return
		}
	}
	if s.RandomLoss > 0 && rng.Float64() < s.RandomLoss {
		s.Stats.Dropped++
		s.net.mDropped.Inc()
		return
	}

	// Taps observe surviving frames (promiscuous).
	for _, tap := range s.taps {
		tap.offer(raw)
	}

	sched.After(s.Latency, func() {
		if frame.Dst.IsBroadcast() {
			for _, ifc := range s.ifaces {
				if ifc != from && ifc.Node.Up {
					ifc.Node.receiveFrame(ifc, raw)
				}
			}
			return
		}
		for _, ifc := range s.ifaces {
			if ifc.MAC == frame.Dst {
				if ifc.Node.Up {
					ifc.Node.receiveFrame(ifc, raw)
				}
				return
			}
		}
	})
}

// Tap is a promiscuous raw-frame observer on a segment — the simulator's
// stand-in for the SunOS Network Interface Tap. ARPwatch and RIPwatch read
// frames from taps; opening one requires privilege (see Node.OpenTap).
type Tap struct {
	seg    *Segment
	mb     *sim.Mailbox[[]byte]
	Filter func(raw []byte) bool // nil accepts everything
	closed bool
	Seen   int // frames matched and queued
}

func (t *Tap) offer(raw []byte) {
	if t.closed {
		return
	}
	if t.Filter != nil && !t.Filter(raw) {
		return
	}
	t.Seen++
	t.mb.Put(raw)
}

// Recv blocks the process until a frame matching the filter arrives, or the
// timeout elapses (negative blocks forever).
func (t *Tap) Recv(p *sim.Proc, timeout time.Duration) ([]byte, bool) {
	return t.mb.Get(p, timeout)
}

// TryRecv returns a queued frame without blocking.
func (t *Tap) TryRecv() ([]byte, bool) { return t.mb.TryGet() }

// Close detaches the tap from the segment.
func (t *Tap) Close() {
	if t.closed {
		return
	}
	t.closed = true
	taps := t.seg.taps[:0]
	for _, other := range t.seg.taps {
		if other != t {
			taps = append(taps, other)
		}
	}
	t.seg.taps = taps
}
