package netsim

import (
	"errors"
	"fmt"
	"time"

	"fremont/internal/netsim/pkt"
	"fremont/internal/netsim/sim"
)

// ErrNotPrivileged is returned by OpenTap without the privilege flag; the
// paper's NIT-based modules "must be run with system privileges".
var ErrNotPrivileged = errors.New("netsim: opening a tap requires privileges")

// ICMPEvent is one ICMP message delivered to the node, with its outer IP
// context (the Traceroute module needs the error sender's address and the
// arriving TTL).
type ICMPEvent struct {
	From pkt.IP
	To   pkt.IP
	TTL  byte
	Msg  *pkt.ICMPMessage
	At   time.Time
}

// ICMPConn is a raw-ICMP socket: it observes every ICMP message the node
// receives.
type ICMPConn struct {
	node   *Node
	mb     *sim.Mailbox[ICMPEvent]
	closed bool
}

// OpenICMP opens a raw ICMP socket on the node.
func (nd *Node) OpenICMP() *ICMPConn {
	c := &ICMPConn{node: nd, mb: sim.NewBoundedMailbox[ICMPEvent](nd.net.Sched, 512)}
	nd.icmpConns = append(nd.icmpConns, c)
	return c
}

// Recv blocks until an ICMP message arrives or timeout elapses (negative
// blocks forever).
func (c *ICMPConn) Recv(p *sim.Proc, timeout time.Duration) (ICMPEvent, bool) {
	return c.mb.Get(p, timeout)
}

// TryRecv returns a queued message without blocking.
func (c *ICMPConn) TryRecv() (ICMPEvent, bool) { return c.mb.TryGet() }

// Close releases the socket.
func (c *ICMPConn) Close() {
	if c.closed {
		return
	}
	c.closed = true
	conns := c.node.icmpConns[:0]
	for _, other := range c.node.icmpConns {
		if other != c {
			conns = append(conns, other)
		}
	}
	c.node.icmpConns = conns
}

// UDPEvent is one datagram delivered to a UDP socket.
type UDPEvent struct {
	Src     pkt.IP
	SrcPort uint16
	Dst     pkt.IP
	Payload []byte
	At      time.Time
}

// UDPConn is a bound UDP socket.
type UDPConn struct {
	node   *Node
	Port   uint16
	mb     *sim.Mailbox[UDPEvent]
	closed bool
}

// OpenUDP binds a UDP socket. Port zero picks an ephemeral port.
func (nd *Node) OpenUDP(port uint16) (*UDPConn, error) {
	if port == 0 {
		for {
			nd.ephemeral++
			port = 32768 + nd.ephemeral%16384
			if len(nd.udpListeners[port]) == 0 {
				if _, taken := nd.udpHandlers[port]; !taken {
					break
				}
			}
		}
	}
	if _, taken := nd.udpHandlers[port]; taken {
		return nil, fmt.Errorf("netsim: %s: udp port %d has a service handler", nd.Name, port)
	}
	c := &UDPConn{node: nd, Port: port, mb: sim.NewBoundedMailbox[UDPEvent](nd.net.Sched, 1024)}
	if nd.udpListeners == nil {
		nd.udpListeners = make(map[uint16][]*UDPConn, 2)
	}
	nd.udpListeners[port] = append(nd.udpListeners[port], c)
	return c, nil
}

// RegisterUDPService installs a protocol handler (e.g. the DNS server) on
// a well-known port. The handler table materializes on first use; plain
// hosts never pay for one.
func (nd *Node) RegisterUDPService(port uint16, h UDPHandler) {
	if nd.udpHandlers == nil {
		nd.udpHandlers = make(map[uint16]UDPHandler, 2)
	}
	nd.udpHandlers[port] = h
}

// Send transmits a datagram from this socket with the default TTL.
func (c *UDPConn) Send(dst pkt.IP, dport uint16, payload []byte) error {
	return c.SendTTL(dst, dport, payload, 30)
}

// SendTTL transmits with an explicit TTL (the traceroute primitive).
func (c *UDPConn) SendTTL(dst pkt.IP, dport uint16, payload []byte, ttl byte) error {
	nd := c.node
	r, ok := nd.lookupRoute(dst)
	var src pkt.IP
	if ok {
		src = r.Iface.IP
	} else if len(nd.Ifaces) > 0 {
		src = nd.Ifaces[0].IP
	} else {
		return ErrNoRoute
	}
	u := &pkt.UDPPacket{SrcPort: c.Port, DstPort: dport, Payload: payload}
	h := pkt.IPv4Header{Protocol: pkt.ProtoUDP, Src: src, Dst: dst, TTL: ttl}
	return nd.SendIP(h, u.Encode(src, dst))
}

// Recv blocks until a datagram arrives or timeout elapses (negative blocks
// forever).
func (c *UDPConn) Recv(p *sim.Proc, timeout time.Duration) (UDPEvent, bool) {
	return c.mb.Get(p, timeout)
}

// TryRecv returns a queued datagram without blocking.
func (c *UDPConn) TryRecv() (UDPEvent, bool) { return c.mb.TryGet() }

// Close releases the socket.
func (c *UDPConn) Close() {
	if c.closed {
		return
	}
	c.closed = true
	nd := c.node
	conns := nd.udpListeners[c.Port][:0]
	for _, other := range nd.udpListeners[c.Port] {
		if other != c {
			conns = append(conns, other)
		}
	}
	if len(conns) == 0 {
		delete(nd.udpListeners, c.Port)
	} else {
		nd.udpListeners[c.Port] = conns
	}
}

// OpenTap opens a promiscuous raw-frame tap on the segment attached to
// ifc, with an optional filter. privileged must be true (modules using the
// NIT "must be run with system privileges").
func (nd *Node) OpenTap(ifc *Iface, privileged bool, filter func(raw []byte) bool) (*Tap, error) {
	if !privileged {
		return nil, ErrNotPrivileged
	}
	t := &Tap{seg: ifc.Seg, mb: sim.NewBoundedMailbox[[]byte](nd.net.Sched, 4096), Filter: filter}
	ifc.Seg.taps = append(ifc.Seg.taps, t)
	return t, nil
}
