// Streaming cross-correlation: the push-fed counterpart of the batch
// Run pass.
//
// A Streamer maintains the same indexes the batch pass builds — MAC
// groups, name groups, gateway membership — but updates them one
// pushed record at a time and stores gateway evidence the moment a
// group first spans two subnets. Because its own StoreGateway calls
// come straight back to it as pushed gateway changes, every write is
// guarded by an idempotence check (a group signature, or an empty
// missing-subnet set), so the feedback loop self-stabilizes instead of
// storing forever.
package correlate

import (
	"sort"
	"strings"
	"time"

	"fremont/internal/journal"
	"fremont/internal/netsim/pkt"
)

// Streamer is an incremental correlator fed by a change stream. Not
// safe for concurrent use; feed it from one goroutine.
type Streamer struct {
	sink journal.Sink
	now  time.Time

	ifaces  map[journal.ID]*journal.InterfaceRec
	gws     map[journal.ID]*journal.GatewayRec
	subnets map[journal.ID]*journal.SubnetRec

	byMAC  map[pkt.MAC]map[journal.ID]bool
	byName map[string]map[journal.ID]bool
	// Back-pointers for index maintenance when a record's MAC or names
	// change across re-observations.
	prevMAC   map[journal.ID]pkt.MAC
	prevNames map[journal.ID][]string

	// Store memos: the (ips, subnets) signature last written for a
	// group. A group re-stores only when its evidence actually changed,
	// which is what keeps echoed gateway pushes from ping-ponging.
	storedMAC  map[pkt.MAC]string
	storedName map[string]string

	rep Report
}

// NewStreamer creates a streaming correlator that writes inferred
// gateways through sink, stamped at now (advance with SetNow).
func NewStreamer(sink journal.Sink, now time.Time) *Streamer {
	return &Streamer{
		sink: sink, now: now,
		ifaces:     make(map[journal.ID]*journal.InterfaceRec),
		gws:        make(map[journal.ID]*journal.GatewayRec),
		subnets:    make(map[journal.ID]*journal.SubnetRec),
		byMAC:      make(map[pkt.MAC]map[journal.ID]bool),
		byName:     make(map[string]map[journal.ID]bool),
		prevMAC:    make(map[journal.ID]pkt.MAC),
		prevNames:  make(map[journal.ID][]string),
		storedMAC:  make(map[pkt.MAC]string),
		storedName: make(map[string]string),
	}
}

// SetNow advances the observation stamp used for stored gateways.
func (st *Streamer) SetNow(now time.Time) { st.now = now }

// Report returns cumulative counts of what the stream has inferred.
func (st *Streamer) Report() Report { return st.rep }

// ApplyInterface ingests one pushed interface record and correlates
// the groups it belongs to.
func (st *Streamer) ApplyInterface(rec *journal.InterfaceRec) error {
	id := rec.ID
	// Re-home the record if its MAC or name set changed since last seen.
	if old, ok := st.prevMAC[id]; ok && old != rec.MAC {
		delete(st.byMAC[old], id)
	}
	for _, name := range st.prevNames[id] {
		if !hasName(rec, name) {
			delete(st.byName[name], id)
		}
	}
	st.ifaces[id] = rec
	if !rec.MAC.IsZero() {
		if st.byMAC[rec.MAC] == nil {
			st.byMAC[rec.MAC] = make(map[journal.ID]bool)
		}
		st.byMAC[rec.MAC][id] = true
	}
	st.prevMAC[id] = rec.MAC
	names := recNames(rec)
	for _, name := range names {
		if st.byName[name] == nil {
			st.byName[name] = make(map[journal.ID]bool)
		}
		st.byName[name][id] = true
	}
	st.prevNames[id] = names

	if !rec.MAC.IsZero() {
		if err := st.checkMAC(rec.MAC); err != nil {
			return err
		}
	}
	for _, name := range names {
		if err := st.checkName(name); err != nil {
			return err
		}
	}
	// A gateway recorded before this interface existed may now resolve
	// one more member onto a subnet it is not yet attached to.
	for _, gw := range st.gwsByIface(id) {
		if err := st.attach(gw); err != nil {
			return err
		}
	}
	return nil
}

// ApplyGateway ingests one pushed gateway record (including the echo
// of this Streamer's own stores) and attaches any missing subnets.
func (st *Streamer) ApplyGateway(gw *journal.GatewayRec) error {
	st.gws[gw.ID] = gw
	return st.attach(gw)
}

// ApplySubnet ingests one pushed subnet record. Better subnet
// knowledge can re-scope every group, so they are all re-checked.
func (st *Streamer) ApplySubnet(sn *journal.SubnetRec) error {
	st.subnets[sn.ID] = sn
	for mac := range st.byMAC {
		if err := st.checkMAC(mac); err != nil {
			return err
		}
	}
	for name := range st.byName {
		if err := st.checkName(name); err != nil {
			return err
		}
	}
	for _, gw := range st.sortedGateways() {
		if err := st.attach(gw); err != nil {
			return err
		}
	}
	return nil
}

// subnetOf mirrors the batch pass: journal knowledge first, then the
// record's own mask, then the /24 convention.
func (st *Streamer) subnetOf(rec *journal.InterfaceRec) pkt.Subnet {
	for _, sn := range st.sortedSubnets() {
		if sn.Subnet.Mask != 0 && sn.Subnet.Contains(rec.IP) {
			return sn.Subnet
		}
	}
	if rec.Mask != 0 {
		return pkt.SubnetOf(rec.IP, rec.Mask)
	}
	return pkt.SubnetOf(rec.IP, pkt.MaskBits(24))
}

// groupEvidence reduces a member set to the batch pass's gateway
// evidence: all member IPs plus their distinct subnets, or ok=false
// when the group does not span two subnets.
func (st *Streamer) groupEvidence(ids map[journal.ID]bool) (ips []pkt.IP, sns []pkt.Subnet, ok bool) {
	sorted := make([]journal.ID, 0, len(ids))
	for id := range ids {
		sorted = append(sorted, id)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, id := range sorted {
		rec, live := st.ifaces[id]
		if !live {
			continue
		}
		ips = append(ips, rec.IP)
		sns = appendSubnetUnique(sns, st.subnetOf(rec))
	}
	if len(ips) < 2 || len(sns) < 2 {
		return nil, nil, false
	}
	sortIPs(ips)
	return ips, sns, true
}

func evidenceSig(ips []pkt.IP, sns []pkt.Subnet) string {
	var b strings.Builder
	for _, ip := range ips {
		b.WriteString(ip.String())
		b.WriteByte(' ')
	}
	b.WriteByte('|')
	addrs := make([]pkt.IP, 0, len(sns))
	for _, sn := range sns {
		addrs = append(addrs, sn.Addr)
	}
	sortIPs(addrs)
	for _, a := range addrs {
		b.WriteString(a.String())
		b.WriteByte(' ')
	}
	return b.String()
}

func (st *Streamer) checkMAC(mac pkt.MAC) error {
	ips, sns, ok := st.groupEvidence(st.byMAC[mac])
	if !ok {
		return nil
	}
	sig := evidenceSig(ips, sns)
	if st.storedMAC[mac] == sig {
		return nil
	}
	st.storedMAC[mac] = sig
	if _, err := st.sink.StoreGateway(journal.GatewayObs{
		IfaceIPs: ips, Subnets: sns,
		Source: journal.SrcCorrelation, At: st.now,
	}); err != nil {
		return err
	}
	st.rep.GatewaysFromMAC++
	st.rep.SubnetLinks += len(sns)
	return nil
}

func (st *Streamer) checkName(name string) error {
	ips, sns, ok := st.groupEvidence(st.byName[name])
	if !ok {
		return nil
	}
	sig := evidenceSig(ips, sns)
	if st.storedName[name] == sig {
		return nil
	}
	st.storedName[name] = sig
	if _, err := st.sink.StoreGateway(journal.GatewayObs{
		IfaceIPs: ips, Subnets: sns,
		Source: journal.SrcCorrelation, At: st.now,
	}); err != nil {
		return err
	}
	st.rep.GatewaysFromName++
	st.rep.SubnetLinks += len(sns)
	return nil
}

// attach mirrors the batch pass's third stage: a gateway gains links to
// the subnets its member interfaces live on. An empty missing set — in
// particular, on the echo of attach's own store — writes nothing,
// which terminates the feedback loop.
func (st *Streamer) attach(gw *journal.GatewayRec) error {
	var missing []pkt.Subnet
	var memberIPs []pkt.IP
	for _, ifID := range gw.Ifaces {
		if rec, ok := st.ifaces[ifID]; ok {
			memberIPs = append(memberIPs, rec.IP)
			sn := st.subnetOf(rec)
			if !subnetIn(gw.Subnets, sn) {
				missing = append(missing, sn)
			}
		}
	}
	if len(missing) == 0 || len(memberIPs) == 0 {
		return nil
	}
	sortIPs(memberIPs)
	if _, err := st.sink.StoreGateway(journal.GatewayObs{
		IfaceIPs: memberIPs[:1], Subnets: missing,
		Source: journal.SrcCorrelation, At: st.now,
	}); err != nil {
		return err
	}
	st.rep.SubnetLinks += len(missing)
	return nil
}

func (st *Streamer) gwsByIface(id journal.ID) []*journal.GatewayRec {
	var out []*journal.GatewayRec
	for _, gw := range st.sortedGateways() {
		for _, ifID := range gw.Ifaces {
			if ifID == id {
				out = append(out, gw)
				break
			}
		}
	}
	return out
}

func (st *Streamer) sortedGateways() []*journal.GatewayRec {
	out := make([]*journal.GatewayRec, 0, len(st.gws))
	for _, gw := range st.gws {
		out = append(out, gw)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (st *Streamer) sortedSubnets() []*journal.SubnetRec {
	out := make([]*journal.SubnetRec, 0, len(st.subnets))
	for _, sn := range st.subnets {
		out = append(out, sn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func recNames(rec *journal.InterfaceRec) []string {
	var out []string
	for _, name := range append([]string{rec.Name}, rec.Aliases...) {
		if name != "" {
			out = append(out, name)
		}
	}
	return out
}

func hasName(rec *journal.InterfaceRec, name string) bool {
	for _, n := range recNames(rec) {
		if n == name {
			return true
		}
	}
	return false
}
