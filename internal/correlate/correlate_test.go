package correlate

import (
	"testing"
	"time"

	"fremont/internal/journal"
	"fremont/internal/netsim/pkt"
)

var t0 = time.Date(1993, 1, 25, 8, 0, 0, 0, time.UTC)

func mac(b byte) pkt.MAC { return pkt.MAC{8, 0, 0x20, 0, 0, b} }

func TestGatewayFromSharedMAC(t *testing.T) {
	j := journal.New()
	sink := journal.Local{J: j}
	// Two ARPwatch runs on different subnets saw the same Ethernet
	// address.
	j.StoreInterface(journal.IfaceObs{IP: pkt.IPv4(10, 0, 1, 1), HasMAC: true, MAC: mac(9),
		HasMask: true, Mask: pkt.MaskBits(24), Source: journal.SrcARP, At: t0})
	j.StoreInterface(journal.IfaceObs{IP: pkt.IPv4(10, 0, 2, 1), HasMAC: true, MAC: mac(9),
		HasMask: true, Mask: pkt.MaskBits(24), Source: journal.SrcARP, At: t0})
	rep, err := Run(sink, t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GatewaysFromMAC != 1 {
		t.Fatalf("GatewaysFromMAC = %d, want 1", rep.GatewaysFromMAC)
	}
	gws := j.Gateways()
	if len(gws) != 1 || len(gws[0].Ifaces) != 2 {
		t.Fatalf("gateways = %+v", gws)
	}
	if len(gws[0].Subnets) != 2 {
		t.Fatalf("gateway subnets = %v", gws[0].Subnets)
	}
}

func TestSharedMACOnOneSubnetIsNotGateway(t *testing.T) {
	j := journal.New()
	sink := journal.Local{J: j}
	// Proxy ARP: one MAC answering for several addresses on the SAME wire.
	j.StoreInterface(journal.IfaceObs{IP: pkt.IPv4(10, 0, 1, 50), HasMAC: true, MAC: mac(9),
		HasMask: true, Mask: pkt.MaskBits(24), Source: journal.SrcARP, At: t0})
	j.StoreInterface(journal.IfaceObs{IP: pkt.IPv4(10, 0, 1, 51), HasMAC: true, MAC: mac(9),
		HasMask: true, Mask: pkt.MaskBits(24), Source: journal.SrcARP, At: t0})
	rep, err := Run(sink, t0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.GatewaysFromMAC != 0 {
		t.Fatal("proxy-ARP pattern misread as gateway")
	}
	if len(j.Gateways()) != 0 {
		t.Fatal("gateway record created for same-subnet MAC sharing")
	}
}

func TestGatewayFromSharedName(t *testing.T) {
	j := journal.New()
	sink := journal.Local{J: j}
	// Ping found two addresses; DNS later named both "engr-gw".
	j.StoreInterface(journal.IfaceObs{IP: pkt.IPv4(10, 0, 1, 1), Name: "engr-gw.colorado.edu",
		HasMask: true, Mask: pkt.MaskBits(24), Source: journal.SrcICMP | journal.SrcDNS, At: t0})
	j.StoreInterface(journal.IfaceObs{IP: pkt.IPv4(10, 0, 2, 1), Name: "engr-gw.colorado.edu",
		HasMask: true, Mask: pkt.MaskBits(24), Source: journal.SrcICMP | journal.SrcDNS, At: t0})
	rep, err := Run(sink, t0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.GatewaysFromName != 1 {
		t.Fatalf("GatewaysFromName = %d, want 1", rep.GatewaysFromName)
	}
}

func TestCorrelationIsIdempotent(t *testing.T) {
	j := journal.New()
	sink := journal.Local{J: j}
	j.StoreInterface(journal.IfaceObs{IP: pkt.IPv4(10, 0, 1, 1), HasMAC: true, MAC: mac(9),
		HasMask: true, Mask: pkt.MaskBits(24), Source: journal.SrcARP, At: t0})
	j.StoreInterface(journal.IfaceObs{IP: pkt.IPv4(10, 0, 2, 1), HasMAC: true, MAC: mac(9),
		HasMask: true, Mask: pkt.MaskBits(24), Source: journal.SrcARP, At: t0})
	if _, err := Run(sink, t0); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(sink, t0.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if n := len(j.Gateways()); n != 1 {
		t.Fatalf("after two passes, gateways = %d, want 1 (merge, not duplicate)", n)
	}
}

func TestAttachGatewayToMemberSubnets(t *testing.T) {
	j := journal.New()
	sink := journal.Local{J: j}
	// Traceroute saw a gateway interface but never attached its own wire.
	j.StoreSubnet(journal.SubnetObs{Subnet: pkt.SubnetOf(pkt.IPv4(10, 0, 3, 0), pkt.MaskBits(24)),
		Source: journal.SrcRIP, At: t0})
	j.StoreGateway(journal.GatewayObs{IfaceIPs: []pkt.IP{pkt.IPv4(10, 0, 3, 1)},
		Source: journal.SrcTraceroute, At: t0})
	// Strip: the gateway record has no subnets yet.
	if gws := j.Gateways(); len(gws[0].Subnets) != 0 {
		t.Fatalf("precondition: gateway already has subnets %v", gws[0].Subnets)
	}
	if _, err := Run(sink, t0); err != nil {
		t.Fatal(err)
	}
	gws := j.Gateways()
	if len(gws) != 1 || len(gws[0].Subnets) != 1 || gws[0].Subnets[0].Addr != pkt.IPv4(10, 0, 3, 0) {
		t.Fatalf("gateway not attached to member subnet: %+v", gws)
	}
}
