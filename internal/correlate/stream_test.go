package correlate

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"fremont/internal/journal"
	"fremont/internal/netsim/pkt"
)

// pump delivers journal changes to the streamer in mod-seq order until
// the journal is quiescent — an in-process stand-in for the OpSubscribe
// delivery loop, echoes of the streamer's own stores included.
func pump(t *testing.T, j *journal.Journal, st *Streamer) {
	t.Helper()
	var cur uint64
	for round := 0; ; round++ {
		if round > 100 {
			t.Fatal("streamer did not stabilize: store feedback loop")
		}
		target := j.CurSeq()
		if target <= cur {
			return
		}
		type ev struct {
			seq   uint64
			apply func() error
		}
		var evs []ev
		ifs, _, _ := j.InterfaceChanges(cur, 0)
		for _, rec := range ifs {
			rec := rec
			evs = append(evs, ev{rec.ModSeq, func() error { return st.ApplyInterface(rec) }})
		}
		gws, _, _ := j.GatewayChanges(cur, 0)
		for _, rec := range gws {
			rec := rec
			evs = append(evs, ev{rec.ModSeq, func() error { return st.ApplyGateway(rec) }})
		}
		sns, _, _ := j.SubnetChanges(cur, 0)
		for _, rec := range sns {
			rec := rec
			evs = append(evs, ev{rec.ModSeq, func() error { return st.ApplySubnet(rec) }})
		}
		sort.Slice(evs, func(i, k int) bool { return evs[i].seq < evs[k].seq })
		for _, e := range evs {
			if e.seq > target {
				break
			}
			if err := e.apply(); err != nil {
				t.Fatal(err)
			}
			cur = e.seq
		}
		if cur < target {
			cur = target
		}
	}
}

// gatewayShape canonicalizes a journal's gateway set: one sorted line
// per gateway listing member IPs and attached subnets, independent of
// record IDs and store order.
func gatewayShape(j *journal.Journal) string {
	var lines []string
	for _, gw := range j.Gateways() {
		var ips []string
		for _, ifID := range gw.Ifaces {
			for _, rec := range j.Interfaces(journal.Query{}) {
				if rec.ID == ifID {
					ips = append(ips, rec.IP.String())
				}
			}
		}
		sort.Strings(ips)
		var sns []string
		for _, sn := range gw.Subnets {
			sns = append(sns, sn.String())
		}
		sort.Strings(sns)
		lines = append(lines, strings.Join(ips, ",")+" / "+strings.Join(sns, ","))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// seedScenario stores the campus-flavored base evidence: a two-subnet
// router seen by ARP, a three-subnet router known only by its DNS name,
// a traceroute gateway missing its subnet attachments, known subnet
// records, and plain hosts for noise.
func seedScenario(j *journal.Journal) {
	sink := journal.Local{J: j}
	sn1, _ := pkt.ParseSubnet("10.1.0.0/24")
	sn2, _ := pkt.ParseSubnet("10.2.0.0/24")
	sink.StoreSubnet(journal.SubnetObs{Subnet: sn1, Source: journal.SrcRIP, At: t0})
	sink.StoreSubnet(journal.SubnetObs{Subnet: sn2, Source: journal.SrcRIP, At: t0})

	// Same MAC on two subnets.
	sink.StoreInterface(journal.IfaceObs{IP: pkt.IPv4(10, 1, 0, 1), HasMAC: true, MAC: mac(1),
		Source: journal.SrcARP, At: t0})
	sink.StoreInterface(journal.IfaceObs{IP: pkt.IPv4(10, 2, 0, 1), HasMAC: true, MAC: mac(1),
		Source: journal.SrcARP, At: t0})

	// Same DNS name on two subnets (distinct MACs).
	sink.StoreInterface(journal.IfaceObs{IP: pkt.IPv4(10, 2, 0, 9), HasMAC: true, MAC: mac(2),
		Name: "cs-gw.cs.colorado.edu", Source: journal.SrcDNS, At: t0})
	sink.StoreInterface(journal.IfaceObs{IP: pkt.IPv4(10, 3, 0, 9), HasMAC: true, MAC: mac(3),
		Name: "cs-gw.cs.colorado.edu", Source: journal.SrcDNS, At: t0})

	// A traceroute-discovered gateway whose subnet links are missing.
	sink.StoreGateway(journal.GatewayObs{
		IfaceIPs: []pkt.IP{pkt.IPv4(10, 1, 0, 254), pkt.IPv4(10, 4, 0, 254)},
		Source:   journal.SrcTraceroute, At: t0,
	})

	// Ordinary hosts: never gateway evidence.
	for i := byte(10); i < 14; i++ {
		sink.StoreInterface(journal.IfaceObs{IP: pkt.IPv4(10, 1, 0, i), HasMAC: true, MAC: mac(i),
			Name: fmt.Sprintf("host%d.cs.colorado.edu", i), Source: journal.SrcARP, At: t0})
	}
}

// The streaming correlator, fed the same evidence one change at a time
// (own stores echoed back), must land on the same journal shape as the
// batch pass.
func TestStreamerConvergesToBatch(t *testing.T) {
	batch := journal.New()
	seedScenario(batch)
	if _, err := Run(journal.Local{J: batch}, t0); err != nil {
		t.Fatal(err)
	}
	// Second pass to reach the batch fixpoint (the attach stage may feed
	// the group stages): the comparison target is the stable state.
	if _, err := Run(journal.Local{J: batch}, t0); err != nil {
		t.Fatal(err)
	}

	stream := journal.New()
	st := NewStreamer(journal.Local{J: stream}, t0)
	seedScenario(stream)
	pump(t, stream, st)

	got, want := gatewayShape(stream), gatewayShape(batch)
	if got != want {
		t.Fatalf("streaming journal diverged from batch:\n--- streaming ---\n%s\n--- batch ---\n%s", got, want)
	}
	rep := st.Report()
	if rep.GatewaysFromMAC == 0 || rep.GatewaysFromName == 0 || rep.SubnetLinks == 0 {
		t.Fatalf("report did not count inferences: %+v", rep)
	}
}

// Evidence arriving in an adversarial order — interfaces before the
// subnet records that scope them — must still converge.
func TestStreamerSubnetRescope(t *testing.T) {
	j := journal.New()
	sink := journal.Local{J: j}
	st := NewStreamer(sink, t0)

	// Two addresses that look like ONE /24 wire ("10.1.0.x") until the
	// journal learns the wire is really split into /25s.
	sink.StoreInterface(journal.IfaceObs{IP: pkt.IPv4(10, 1, 0, 10), HasMAC: true, MAC: mac(7),
		Source: journal.SrcARP, At: t0})
	sink.StoreInterface(journal.IfaceObs{IP: pkt.IPv4(10, 1, 0, 200), HasMAC: true, MAC: mac(7),
		Source: journal.SrcARP, At: t0})
	pump(t, j, st)
	if n := len(j.Gateways()); n != 0 {
		t.Fatalf("gateway stored from same-subnet evidence (%d records)", n)
	}

	lo, _ := pkt.ParseSubnet("10.1.0.0/25")
	hi, _ := pkt.ParseSubnet("10.1.0.128/25")
	sink.StoreSubnet(journal.SubnetObs{Subnet: lo, Source: journal.SrcRIP, At: t0})
	sink.StoreSubnet(journal.SubnetObs{Subnet: hi, Source: journal.SrcRIP, At: t0})
	pump(t, j, st)
	if n := len(j.Gateways()); n != 1 {
		t.Fatalf("subnet knowledge did not re-scope the MAC group: %d gateways", n)
	}
}

// Re-observations that change nothing must not re-store: the memoized
// evidence signature keeps echoed pushes from ping-ponging forever
// (pump itself fails the test after 100 rounds if they do).
func TestStreamerIdempotentOnEcho(t *testing.T) {
	j := journal.New()
	sink := journal.Local{J: j}
	st := NewStreamer(sink, t0)
	sink.StoreInterface(journal.IfaceObs{IP: pkt.IPv4(10, 1, 0, 1), HasMAC: true, MAC: mac(1),
		Source: journal.SrcARP, At: t0})
	sink.StoreInterface(journal.IfaceObs{IP: pkt.IPv4(10, 2, 0, 1), HasMAC: true, MAC: mac(1),
		Source: journal.SrcARP, At: t0})
	pump(t, j, st)
	stores := st.Report().GatewaysFromMAC

	// Same sighting again: a verification touch, not new evidence.
	sink.StoreInterface(journal.IfaceObs{IP: pkt.IPv4(10, 1, 0, 1), HasMAC: true, MAC: mac(1),
		Source: journal.SrcARP, At: t0.Add(time.Minute)})
	pump(t, j, st)
	if got := st.Report().GatewaysFromMAC; got != stores {
		t.Fatalf("unchanged evidence re-stored: %d -> %d", stores, got)
	}
}
