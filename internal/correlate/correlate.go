// Package correlate implements the Discovery Manager's cross-correlation
// pass: comparing information discovered by different Explorer Modules to
// form a more complete network picture. "The fact that the same Ethernet
// address is observed by two ARP modules running on different subnets is
// not significant until that information is written into the Journal. Only
// then, because of the common storage, can that gateway be discovered."
package correlate

import (
	"fmt"
	"sort"
	"time"

	"fremont/internal/journal"
	"fremont/internal/netsim/pkt"
)

// Report summarizes one correlation pass.
type Report struct {
	// GatewaysFromMAC counts gateways inferred from one MAC appearing with
	// addresses on multiple subnets.
	GatewaysFromMAC int
	// GatewaysFromName counts gateways inferred from one DNS name carrying
	// addresses on multiple subnets.
	GatewaysFromName int
	// SubnetLinks counts gateway→subnet attachments added.
	SubnetLinks int
}

func (r Report) String() string {
	return fmt.Sprintf("correlate: %d gateways from MACs, %d from names, %d subnet links",
		r.GatewaysFromMAC, r.GatewaysFromName, r.SubnetLinks)
}

// Run performs one cross-correlation pass over the Journal.
func Run(sink journal.Sink, now time.Time) (Report, error) {
	var rep Report
	// Correlation is inherently cross-record (a gateway IS two records
	// agreeing), so the pass keeps its index maps in memory — but it reads
	// the journal one page at a time, building the indexes incrementally.
	var subnets []*journal.SubnetRec
	if err := journal.EachSubnet(sink, func(sn *journal.SubnetRec) error {
		subnets = append(subnets, sn)
		return nil
	}); err != nil {
		return rep, err
	}

	// Resolve an address to its subnet, preferring journal knowledge, then
	// the record's own mask, then the /24 convention.
	subnetOf := func(rec *journal.InterfaceRec) pkt.Subnet {
		for _, sn := range subnets {
			if sn.Subnet.Mask != 0 && sn.Subnet.Contains(rec.IP) {
				return sn.Subnet
			}
		}
		if rec.Mask != 0 {
			return pkt.SubnetOf(rec.IP, rec.Mask)
		}
		return pkt.SubnetOf(rec.IP, pkt.MaskBits(24))
	}

	// Same MAC on different subnets → one machine with multiple
	// interfaces: a gateway. (Same MAC with several addresses on the SAME
	// subnet is proxy ARP or a reconfiguration — the analysis programs
	// flag it; it is NOT gateway evidence.)
	byMAC := map[pkt.MAC][]*journal.InterfaceRec{}
	// Same DNS name evidence and the gateway-attachment pass below need
	// their own views of the interface set; one streamed pass fills all
	// three indexes.
	byName := map[string][]*journal.InterfaceRec{}
	byID := map[journal.ID]*journal.InterfaceRec{}
	if err := journal.EachInterface(sink, journal.Query{}, func(rec *journal.InterfaceRec) error {
		if !rec.MAC.IsZero() {
			byMAC[rec.MAC] = append(byMAC[rec.MAC], rec)
		}
		for _, name := range append([]string{rec.Name}, rec.Aliases...) {
			if name != "" {
				byName[name] = append(byName[name], rec)
			}
		}
		byID[rec.ID] = rec
		return nil
	}); err != nil {
		return rep, err
	}
	macs := make([]pkt.MAC, 0, len(byMAC))
	for mac := range byMAC {
		macs = append(macs, mac)
	}
	sort.Slice(macs, func(i, j int) bool { return macLess(macs[i], macs[j]) })
	for _, mac := range macs {
		group := byMAC[mac]
		if len(group) < 2 {
			continue
		}
		bySubnet := map[pkt.IP]*journal.InterfaceRec{}
		for _, rec := range group {
			bySubnet[subnetOf(rec).Addr] = rec
		}
		if len(bySubnet) < 2 {
			continue
		}
		var ips []pkt.IP
		var sns []pkt.Subnet
		for _, rec := range group {
			ips = append(ips, rec.IP)
			sns = appendSubnetUnique(sns, subnetOf(rec))
		}
		sortIPs(ips)
		if _, err := sink.StoreGateway(journal.GatewayObs{
			IfaceIPs: ips, Subnets: sns,
			Source: journal.SrcCorrelation, At: now,
		}); err != nil {
			return rep, err
		}
		rep.GatewaysFromMAC++
		rep.SubnetLinks += len(sns)
	}

	// Same DNS name (or alias) on addresses in different subnets — the
	// name evidence may have come from the DNS module while the addresses
	// came from ping sweeps on different wires.
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		group := byName[name]
		if len(group) < 2 {
			continue
		}
		bySubnet := map[pkt.IP]bool{}
		var ips []pkt.IP
		var sns []pkt.Subnet
		for _, rec := range group {
			sn := subnetOf(rec)
			bySubnet[sn.Addr] = true
			ips = append(ips, rec.IP)
			sns = appendSubnetUnique(sns, sn)
		}
		if len(bySubnet) < 2 {
			continue
		}
		sortIPs(ips)
		if _, err := sink.StoreGateway(journal.GatewayObs{
			IfaceIPs: ips, Subnets: sns,
			Source: journal.SrcCorrelation, At: now,
		}); err != nil {
			return rep, err
		}
		rep.GatewaysFromName++
		rep.SubnetLinks += len(sns)
	}

	// Attach gateways to the subnets their member interfaces live on (the
	// interface may have been discovered after the gateway record).
	// Gateway pages stream too; members resolve through the byID index
	// rather than rescanning the interface list per member.
	if err := journal.EachGateway(sink, func(gw *journal.GatewayRec) error {
		var missing []pkt.Subnet
		var memberIPs []pkt.IP
		for _, ifID := range gw.Ifaces {
			if rec, ok := byID[ifID]; ok {
				memberIPs = append(memberIPs, rec.IP)
				sn := subnetOf(rec)
				if !subnetIn(gw.Subnets, sn) {
					missing = append(missing, sn)
				}
			}
		}
		if len(missing) > 0 && len(memberIPs) > 0 {
			sortIPs(memberIPs)
			if _, err := sink.StoreGateway(journal.GatewayObs{
				IfaceIPs: memberIPs[:1], Subnets: missing,
				Source: journal.SrcCorrelation, At: now,
			}); err != nil {
				return err
			}
			rep.SubnetLinks += len(missing)
		}
		return nil
	}); err != nil {
		return rep, err
	}
	return rep, nil
}

func macLess(a, b pkt.MAC) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func sortIPs(ips []pkt.IP) {
	sort.Slice(ips, func(i, j int) bool { return ips[i] < ips[j] })
}

func appendSubnetUnique(s []pkt.Subnet, v pkt.Subnet) []pkt.Subnet {
	for _, x := range s {
		if x.Addr == v.Addr {
			return s
		}
	}
	return append(s, v)
}

func subnetIn(s []pkt.Subnet, v pkt.Subnet) bool {
	for _, x := range s {
		if x.Addr == v.Addr {
			return true
		}
	}
	return false
}
