// Replay: feeding the valid log prefix back to a consumer, oldest
// record first. Open already repaired the on-disk state (truncated the
// torn tail, dropped garbage segments), so replay normally sees only
// verified frames; it still stops — silently, matching Open's
// tolerance — if a frame fails to verify, e.g. because the medium
// degraded between Open and Replay.
package wal

import (
	"os"
	"path/filepath"
)

// Replay invokes fn for every record in the log in append order,
// passing the record's LSN and payload. The payload aliases an
// internal buffer; fn must copy it to retain it. An error from fn
// aborts the replay and is returned. Replay snapshots the segment list
// up front, so records appended concurrently may or may not be seen;
// call it before serving traffic for a complete view. fn must not call
// back into the Log.
func (l *Log) Replay(fn func(lsn uint64, payload []byte) error) (int, error) {
	l.mu.Lock()
	segs := append([]uint64(nil), l.segments...)
	activeSeq, activeSize := l.seq, l.size
	l.mu.Unlock()

	total := 0
	for _, seq := range segs {
		data, err := os.ReadFile(filepath.Join(l.opt.Dir, segName(seq)))
		if err != nil {
			return total, err
		}
		if seq == activeSeq && int64(len(data)) > activeSize {
			// Don't read past the append frontier captured above.
			data = data[:activeSize]
		}
		if _, err := decodeSegHeader(data); err != nil {
			return total, nil
		}
		off := segHeaderSize
		for off < len(data) {
			lsn, payload, n, err := DecodeFrame(data[off:])
			if err != nil {
				return total, nil // torn tail: end of the valid prefix
			}
			off += n
			if err := fn(lsn, payload); err != nil {
				return total, err
			}
			total++
			l.replayed.Add(1)
			l.mReplayed.Inc()
		}
	}
	return total, nil
}
