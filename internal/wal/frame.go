// Frame encoding for WAL records. Every record travels as
//
//	u32 payload length | u32 CRC32C | u64 LSN | payload
//
// (all big-endian). The checksum covers the LSN and the payload, so a
// frame whose length field survived a torn write but whose body did not
// still fails verification. Decoding is deliberately forgiving about
// *where* it stops — a short or corrupt frame ends the log — and strict
// about everything before that point.
package wal

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
)

const (
	// frameHeaderSize is the fixed prefix: length + CRC + LSN.
	frameHeaderSize = 4 + 4 + 8

	// MaxRecord bounds a single record payload. It matches the wire
	// protocol's message cap so any frame the server accepted can be
	// logged.
	MaxRecord = 64 << 20
)

// castagnoli is the CRC32C polynomial table (hardware-accelerated on
// amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrTorn reports a frame that does not fully verify: short header,
// short payload, oversized length, or checksum mismatch. Replay treats
// it as the end of the valid log prefix, not as a fatal fault.
var ErrTorn = errors.New("wal: torn or corrupt frame")

// appendFrame appends one encoded frame to dst and returns the extended
// slice.
func appendFrame(dst []byte, lsn uint64, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint64(hdr[8:16], lsn)
	crc := crc32.Update(0, castagnoli, hdr[8:16])
	crc = crc32.Update(crc, castagnoli, payload)
	binary.BigEndian.PutUint32(hdr[4:8], crc)
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// frameSize reports the on-disk size of a frame carrying n payload
// bytes.
func frameSize(n int) int64 { return int64(frameHeaderSize + n) }

// DecodeFrame parses the first frame in b. It returns the record's LSN,
// its payload (aliasing b), and the total bytes consumed. Any
// incomplete or corrupt frame — including a truncated tail — yields
// ErrTorn with n reporting how many verified bytes precede it (always
// zero here; callers track their own offsets).
func DecodeFrame(b []byte) (lsn uint64, payload []byte, n int, err error) {
	if len(b) < frameHeaderSize {
		return 0, nil, 0, ErrTorn
	}
	plen := int(binary.BigEndian.Uint32(b[0:4]))
	if plen > MaxRecord || frameHeaderSize+plen > len(b) {
		return 0, nil, 0, ErrTorn
	}
	want := binary.BigEndian.Uint32(b[4:8])
	crc := crc32.Update(0, castagnoli, b[8:16])
	crc = crc32.Update(crc, castagnoli, b[frameHeaderSize:frameHeaderSize+plen])
	if crc != want {
		return 0, nil, 0, ErrTorn
	}
	lsn = binary.BigEndian.Uint64(b[8:16])
	payload = b[frameHeaderSize : frameHeaderSize+plen : frameHeaderSize+plen]
	return lsn, payload, frameHeaderSize + plen, nil
}
