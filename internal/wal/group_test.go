// Group-commit tests: concurrent appenders must coalesce into shared
// fsyncs without reordering, losing, or duplicating records, and Close
// must both commit staged tickets and fsync the unsynced tail.
package wal

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestGroupCommitConcurrent hammers Append from 8 goroutines under
// SyncAlways and asserts the result is indistinguishable from a serial
// log — contiguous LSNs, every payload present exactly once — while the
// fsync count shows real batching.
func TestGroupCommitConcurrent(t *testing.T) {
	const writers, perWriter = 8, 50
	l, err := Open(Options{Dir: t.TempDir(), Policy: SyncAlways, GroupWait: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	var mu sync.Mutex
	got := make(map[uint64]string, writers*perWriter)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				p := fmt.Sprintf("w%d-r%d", w, i)
				lsn, err := l.Append([]byte(p))
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				mu.Lock()
				if prev, dup := got[lsn]; dup {
					t.Errorf("lsn %d assigned twice: %q and %q", lsn, prev, p)
				}
				got[lsn] = p
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	const total = writers * perWriter
	st := l.Stats()
	if st.Appends != total || st.LastLSN != total {
		t.Fatalf("stats = %+v, want %d appends / last LSN %d", st, total, total)
	}
	if st.GroupCommits < 1 || st.GroupCommits >= total {
		t.Fatalf("%d group commits for %d appends: no batching happened", st.GroupCommits, total)
	}
	// One fsync per group plus one for segment creation; with 8 writers
	// and a 2ms group window batching must at least halve the fsyncs.
	if st.Fsyncs > total/2 {
		t.Fatalf("%d fsyncs for %d concurrent appends: group commit not amortizing", st.Fsyncs, total)
	}

	lsns, payloads := collect(t, l)
	if len(lsns) != total {
		t.Fatalf("replayed %d records, want %d", len(lsns), total)
	}
	for i, lsn := range lsns {
		if lsn != uint64(i+1) {
			t.Fatalf("replay LSN %d at position %d: order broken", lsn, i)
		}
		if want := got[lsn]; string(payloads[i]) != want {
			t.Fatalf("lsn %d replayed %q, want %q", lsn, payloads[i], want)
		}
	}
}

// TestGroupCommitBackpressure keeps the group bound tiny so stagers
// must block on a full group and be woken by commit completions.
func TestGroupCommitBackpressure(t *testing.T) {
	l, err := Open(Options{Dir: t.TempDir(), Policy: SyncNever, GroupMax: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if _, err := l.Append([]byte{byte(w), byte(i)}); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if lsns, _ := collect(t, l); len(lsns) != 100 {
		t.Fatalf("replayed %d records, want 100", len(lsns))
	}
}

// TestStageWaitBatches: records staged before anyone waits share one
// commit group — one write, one fsync.
func TestStageWaitBatches(t *testing.T) {
	l, err := Open(Options{Dir: t.TempDir(), Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	base := l.Stats().Fsyncs // segment-creation fsyncs
	var tickets []Ticket
	for i := 0; i < 3; i++ {
		tk, err := l.Stage([]byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		if tk.LSN != uint64(i+1) {
			t.Fatalf("stage %d assigned LSN %d", i, tk.LSN)
		}
		tickets = append(tickets, tk)
	}
	for _, tk := range tickets {
		if err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.GroupCommits != 1 {
		t.Fatalf("%d group commits, want 1", st.GroupCommits)
	}
	if st.Fsyncs != base+1 {
		t.Fatalf("%d fsyncs for one group (base %d), want %d", st.Fsyncs, base, base+1)
	}
}

// TestCloseFlushesUnsyncedTail is the SyncInterval durability fix: a
// record appended inside the sync interval must be fsynced by Close, not
// left riding on the OS page cache.
func TestCloseFlushesUnsyncedTail(t *testing.T) {
	dir := t.TempDir()
	// An hour-long interval guarantees the background syncer never runs
	// during the test: any fsync covering the append comes from Close.
	l, err := Open(Options{Dir: dir, Policy: SyncInterval, Interval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	before := l.Stats().Fsyncs
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if after := l.Stats().Fsyncs; after <= before {
		t.Fatalf("Close issued no fsync: %d before, %d after", before, after)
	}

	l2, err := Open(Options{Dir: dir, Policy: SyncInterval})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if lsns, payloads := collect(t, l2); len(lsns) != 1 || string(payloads[0]) != "tail" {
		t.Fatalf("tail record lost across Close/reopen: %v", lsns)
	}
}

// TestCloseCommitsStagedTickets: a ticket staged but not yet waited on
// is committed durably by Close, and its Wait afterwards succeeds.
func TestCloseCommitsStagedTickets(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	tk, err := l.Stage([]byte("orphan"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tk.Wait(); err != nil {
		t.Fatalf("ticket staged before Close failed: %v", err)
	}
	if _, err := l.Stage([]byte("late")); err != ErrClosed {
		t.Fatalf("stage after close = %v, want ErrClosed", err)
	}

	l2, err := Open(Options{Dir: dir, Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if lsns, payloads := collect(t, l2); len(lsns) != 1 || string(payloads[0]) != "orphan" {
		t.Fatalf("staged record lost: %v", lsns)
	}
}
