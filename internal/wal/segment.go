// Segment files. A log is a directory of files named
// wal-<seq>.seg with a 16-hex-digit monotonically increasing sequence
// number; exactly one (the highest) is active for appends, the rest are
// sealed and immutable. Each file opens with a small header recording
// the last LSN assigned before the segment was created, so a restart
// can continue the LSN sequence even when every older segment has been
// compacted away.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

const (
	segMagic   uint32 = 0x4657414c // "FWAL"
	segVersion uint16 = 1
	// segHeaderSize is magic + version + base LSN + CRC32C of the
	// preceding fields. The checksum matters: an unprotected base LSN
	// flipped by corruption would silently warp the sequence numbers of
	// an otherwise-empty segment.
	segHeaderSize = 4 + 2 + 8 + 4
)

// segName builds the file name for sequence seq.
func segName(seq uint64) string {
	return fmt.Sprintf("wal-%016x.seg", seq)
}

// parseSegName extracts the sequence number from a segment file name.
func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg")
	if len(hex) != 16 {
		return 0, false
	}
	seq, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// listSegments returns the sequence numbers present in dir, ascending.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if seq, ok := parseSegName(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// encodeSegHeader builds a segment header claiming baseLSN as the last
// LSN assigned before this segment existed.
func encodeSegHeader(baseLSN uint64) []byte {
	b := make([]byte, segHeaderSize)
	binary.BigEndian.PutUint32(b[0:4], segMagic)
	binary.BigEndian.PutUint16(b[4:6], segVersion)
	binary.BigEndian.PutUint64(b[6:14], baseLSN)
	binary.BigEndian.PutUint32(b[14:18], crc32.Checksum(b[:14], castagnoli))
	return b
}

// decodeSegHeader validates b and returns the base LSN.
func decodeSegHeader(b []byte) (uint64, error) {
	if len(b) < segHeaderSize {
		return 0, ErrTorn
	}
	if binary.BigEndian.Uint32(b[0:4]) != segMagic {
		return 0, fmt.Errorf("wal: bad segment magic %#x", binary.BigEndian.Uint32(b[0:4]))
	}
	if v := binary.BigEndian.Uint16(b[4:6]); v != segVersion {
		return 0, fmt.Errorf("wal: unsupported segment version %d", v)
	}
	if binary.BigEndian.Uint32(b[14:18]) != crc32.Checksum(b[:14], castagnoli) {
		return 0, ErrTorn
	}
	return binary.BigEndian.Uint64(b[6:14]), nil
}

// scanResult summarizes one segment's valid contents.
type scanResult struct {
	baseLSN  uint64
	records  int
	lastLSN  uint64 // highest LSN seen; baseLSN if the segment is empty
	validEnd int64  // byte offset just past the last verified frame
	fileSize int64
	torn     bool // the file holds bytes past validEnd that do not verify
}

// scanSegment reads one segment file and walks its frames, stopping at
// the first frame that fails to verify. A header that does not verify
// yields an error for the first segment of a log (nothing to salvage)
// and is reported via the returned scanResult otherwise.
func scanSegment(path string) (scanResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return scanResult{}, err
	}
	res := scanResult{fileSize: int64(len(data))}
	base, err := decodeSegHeader(data)
	if err != nil {
		// Unreadable header: the whole file is garbage.
		res.torn = true
		return res, nil
	}
	res.baseLSN = base
	res.lastLSN = base
	res.validEnd = segHeaderSize
	off := segHeaderSize
	for off < len(data) {
		lsn, _, n, err := DecodeFrame(data[off:])
		if err != nil {
			res.torn = true
			break
		}
		off += n
		res.records++
		res.lastLSN = lsn
		res.validEnd = int64(off)
	}
	return res, nil
}

// SyncDir fsyncs a directory so that file creations, renames, and
// removals inside it are durable.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// removeSegment deletes one segment file by sequence number.
func removeSegment(dir string, seq uint64) error {
	return os.Remove(filepath.Join(dir, segName(seq)))
}
