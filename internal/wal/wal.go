// Package wal implements a segmented append-only write-ahead log: the
// durability layer underneath the Journal Server's periodic snapshots.
// The paper's server "periodically checkpoints the Journal to disk",
// which loses up to a snapshot interval of discoveries on a crash; the
// WAL closes that window by recording every mutating request before it
// is applied, so a restart replays snapshot + log tail and loses
// nothing that was acknowledged (under the `always` fsync policy).
//
// Records are CRC32C-framed and length-prefixed (see frame.go), carry a
// monotonically increasing log sequence number (LSN), and live in
// segment files that rotate at a configurable size (see segment.go).
// A snapshot is the compaction point: once the journal state covering
// LSN ≤ n is durably on disk, every segment wholly below the rotation
// boundary can be deleted.
package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"fremont/internal/obs"
)

// SyncPolicy selects when appends are fsynced to stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: zero acknowledged records
	// are lost on a crash. The slowest policy.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs from a background goroutine every
	// Options.Interval: a crash loses at most the unsynced window.
	SyncInterval
	// SyncNever issues no fsyncs at all; durability rides on the OS
	// page cache. Useful for benchmarks and throwaway runs.
	SyncNever
)

// String reports the flag spelling of p.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParseSyncPolicy converts a flag value into a SyncPolicy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval, or never)", s)
}

// Options configures a Log.
type Options struct {
	// Dir holds the segment files; created if missing.
	Dir string
	// SegmentSize is the rotation threshold in bytes (default 16 MiB).
	// A segment may exceed it by one commit group.
	SegmentSize int64
	// Policy selects the fsync policy (default SyncAlways).
	Policy SyncPolicy
	// Interval is the background fsync period under SyncInterval
	// (default 100ms).
	Interval time.Duration
	// GroupMax bounds how many staged records one commit group may
	// carry (default DefaultGroupMax). Stage blocks once the pending
	// group is full, which is the log's write backpressure.
	GroupMax int
	// GroupWait is an optional delay the commit leader inserts before
	// draining the pending group, trading latency for larger batches
	// when writers trickle in rather than burst. Default 0: the leader
	// commits whatever accumulated while the previous group was being
	// written, which batches well under genuine concurrency and adds
	// no latency when there is none.
	GroupWait time.Duration
	// Obs receives the log's metrics (wal_appends_total, wal_fsyncs_total,
	// wal_rotations_total, the wal_fsync_seconds histogram, the
	// wal_live_segments gauge). Nil uses the process-wide obs.Default();
	// fremontd passes its server's registry so one scrape covers both
	// layers. Appends are deliberately counted but not timed — the
	// append fast path under SyncNever is a few hundred nanoseconds and
	// a clock read would be measurable; fsyncs are microseconds at best,
	// so their latency histogram is free by comparison.
	Obs *obs.Registry
}

// DefaultSegmentSize is the rotation threshold when Options.SegmentSize
// is zero.
const DefaultSegmentSize = 16 << 20

// DefaultGroupMax is the commit-group record bound when Options.GroupMax
// is zero.
const DefaultGroupMax = 1024

// maxGroupBytes soft-bounds a commit group's buffered bytes: staging
// waits once the pending group holds at least this much, unless the
// group is empty (a single record may legitimately exceed it, up to
// MaxRecord).
const maxGroupBytes = 8 << 20

// Recovery summarizes what Open found on disk.
type Recovery struct {
	Segments        int    // segment files that survived
	Records         int    // verified records across all segments
	LastLSN         uint64 // highest LSN on disk (0 for an empty log)
	Torn            bool   // a torn/corrupt tail was truncated away
	DroppedBytes    int64  // bytes discarded past the valid prefix
	DroppedSegments int    // whole segment files discarded past the valid prefix
}

// Stats is a point-in-time snapshot of a Log's counters.
type Stats struct {
	Appends       int64  // records appended this process
	BytesAppended int64  // frame bytes appended this process
	Fsyncs        int64  // fsync calls issued
	GroupCommits  int64  // commit groups written (1..GroupMax records each)
	Replayed      int64  // records delivered by Replay
	Segments      int    // live segment files (sealed + active)
	LastLSN       uint64 // highest LSN assigned
}

// ErrClosed is returned by operations on a closed Log.
var ErrClosed = errors.New("wal: log is closed")

// Log is a segmented write-ahead log. All methods are safe for
// concurrent use.
//
// Appends go through a group commit: Stage assigns the record's LSN and
// buffers its frame under the lock, then Wait elects one waiter as the
// commit leader. The leader drains every staged frame in one write (one
// fsync under SyncAlways) while the lock is released, then wakes the
// whole group. N concurrent appenders therefore share one fsync per
// group instead of paying one each.
type Log struct {
	opt Options
	rec Recovery

	mu       sync.Mutex
	cond     *sync.Cond // commit completed / pending drained / leader done
	f        *os.File   // active segment
	seq      uint64     // active segment sequence number
	size     int64      // active segment size in bytes
	lastLSN  uint64
	dirty    bool     // unsynced appends outstanding
	segments []uint64 // live segment seqs, ascending; last is active
	closed   bool

	// Group-commit state. pending holds staged frames not yet written;
	// spare is the previous group's buffer, recycled to avoid
	// reallocating every commit. committing is true while a leader is
	// writing (and fsyncing) outside mu; writtenLSN is the highest LSN
	// whose frame the active policy considers committed (written, and
	// fsynced under SyncAlways). ioErr is sticky: once a group write or
	// fsync fails, the LSNs of its frames are consumed but not on disk,
	// so continuing would tear a hole in the sequence — the log fails
	// stop and every later Stage/Wait reports the original error.
	pending    []byte
	pendingN   int
	spare      []byte
	committing bool
	writtenLSN uint64
	ioErr      error

	// Per-log counters behind Stats(). The registry instruments below
	// mirror them (aggregated across logs when several share a registry).
	appends      atomic.Int64
	bytes        atomic.Int64
	fsyncs       atomic.Int64
	groupCommits atomic.Int64
	replayed     atomic.Int64

	// Cached registry instruments; never nil after Open.
	mAppends   *obs.Counter
	mBytes     *obs.Counter
	mFsyncs    *obs.Counter
	mGroups    *obs.Counter
	mRotations *obs.Counter
	mReplayed  *obs.Counter
	mFsyncLat  *obs.Histogram
	mBatchSize *obs.Histogram
	mSegments  *obs.Gauge

	quit chan struct{}
	wg   sync.WaitGroup
}

// Open opens (or creates) the log in opt.Dir, verifying every frame on
// disk. A torn or corrupt tail — a partial final frame, or garbage at
// an arbitrary offset — is truncated away so the log resumes from the
// longest valid prefix; whole segments past a corruption are deleted.
// Use RecoveryInfo to learn what was found and what was dropped.
func Open(opt Options) (*Log, error) {
	if opt.SegmentSize <= 0 {
		opt.SegmentSize = DefaultSegmentSize
	}
	if opt.Interval <= 0 {
		opt.Interval = 100 * time.Millisecond
	}
	if opt.GroupMax <= 0 {
		opt.GroupMax = DefaultGroupMax
	}
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, err
	}
	reg := opt.Obs
	if reg == nil {
		reg = obs.Default()
	}
	l := &Log{
		opt:        opt,
		quit:       make(chan struct{}),
		mAppends:   reg.Counter("wal_appends_total"),
		mBytes:     reg.Counter("wal_append_bytes_total"),
		mFsyncs:    reg.Counter("wal_fsyncs_total"),
		mGroups:    reg.Counter("wal_group_commits_total"),
		mRotations: reg.Counter("wal_rotations_total"),
		mReplayed:  reg.Counter("wal_replayed_total"),
		mFsyncLat:  reg.Histogram("wal_fsync_seconds", nil),
		mBatchSize: reg.Histogram("wal_commit_batch_size", []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}),
		mSegments:  reg.Gauge("wal_live_segments"),
	}
	l.cond = sync.NewCond(&l.mu)

	seqs, err := listSegments(opt.Dir)
	if err != nil {
		return nil, err
	}
	// Walk segments oldest-first; the first verification failure ends
	// the valid prefix. Everything after it (rest of that file, any
	// later files) is dropped so appends resume exactly where replay
	// stops.
	var live []uint64
	for i, seq := range seqs {
		path := filepath.Join(opt.Dir, segName(seq))
		res, err := scanSegment(path)
		if err != nil {
			return nil, err
		}
		if res.validEnd == 0 && res.torn {
			// Header didn't verify: nothing salvageable in this file.
			l.rec.Torn = true
			l.rec.DroppedBytes += res.fileSize
			l.rec.DroppedSegments++
			if err := removeSegment(opt.Dir, seq); err != nil {
				return nil, err
			}
			l.dropTail(seqs[i+1:])
			break
		}
		l.rec.Records += res.records
		l.lastLSN = max(l.lastLSN, res.lastLSN)
		live = append(live, seq)
		if res.torn {
			l.rec.Torn = true
			l.rec.DroppedBytes += res.fileSize - res.validEnd
			if err := os.Truncate(path, res.validEnd); err != nil {
				return nil, err
			}
			l.dropTail(seqs[i+1:])
			break
		}
	}
	l.segments = live
	l.rec.Segments = len(l.segments)
	l.rec.LastLSN = l.lastLSN
	l.writtenLSN = l.lastLSN // everything recovered is on disk

	if len(l.segments) == 0 {
		if err := l.createSegmentLocked(1); err != nil {
			return nil, err
		}
	} else {
		seq := l.segments[len(l.segments)-1]
		path := filepath.Join(opt.Dir, segName(seq))
		f, err := os.OpenFile(path, os.O_RDWR, 0o644)
		if err != nil {
			return nil, err
		}
		end, err := f.Seek(0, 2)
		if err != nil {
			f.Close()
			return nil, err
		}
		l.f, l.seq, l.size = f, seq, end
	}

	if opt.Policy == SyncInterval {
		l.wg.Add(1)
		go l.syncLoop()
	}
	return l, nil
}

// dropTail deletes whole segment files past a corruption point.
func (l *Log) dropTail(seqs []uint64) {
	for _, seq := range seqs {
		path := filepath.Join(l.opt.Dir, segName(seq))
		if fi, err := os.Stat(path); err == nil {
			l.rec.DroppedBytes += fi.Size()
		}
		l.rec.DroppedSegments++
		os.Remove(path)
	}
}

// RecoveryInfo reports what Open found on disk.
func (l *Log) RecoveryInfo() Recovery { return l.rec }

// Stats returns the log's counters; safe to call at any time.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	segs, lsn := len(l.segments), l.lastLSN
	l.mu.Unlock()
	return Stats{
		Appends:       l.appends.Load(),
		BytesAppended: l.bytes.Load(),
		Fsyncs:        l.fsyncs.Load(),
		GroupCommits:  l.groupCommits.Load(),
		Replayed:      l.replayed.Load(),
		Segments:      segs,
		LastLSN:       lsn,
	}
}

// LastLSN reports the highest LSN assigned so far.
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastLSN
}

// AdvanceLSN raises the LSN counter to at least min. Recovery calls
// this with the snapshot's LSN so that a log whose segments were all
// compacted away (or lost) never reissues sequence numbers the
// snapshot already covers.
func (l *Log) AdvanceLSN(min uint64) {
	l.mu.Lock()
	if l.lastLSN < min {
		l.lastLSN = min
		if l.writtenLSN < min {
			// Recovery-time call: nothing is staged, so the skipped
			// sequence numbers need no disk coverage.
			l.writtenLSN = min
		}
	}
	l.mu.Unlock()
}

// Ticket is a staged append on its way to disk: LSN is already assigned,
// Wait blocks until the record's commit group is written (and fsynced
// under SyncAlways) or the log has failed.
type Ticket struct {
	l   *Log
	LSN uint64
}

// Append assigns the next LSN, stages one record, and waits for its
// commit group to reach disk — under SyncAlways the record is fsynced
// before Append returns. The returned LSN is the record's position in
// the global mutation order. Equivalent to Stage followed by Wait;
// callers that can overlap other work with the commit (or want many
// records to share one group) use the two halves directly.
func (l *Log) Append(payload []byte) (uint64, error) {
	t, err := l.Stage(payload)
	if err != nil {
		return 0, err
	}
	return t.LSN, t.Wait()
}

// Stage assigns the next LSN and buffers one record into the pending
// commit group, blocking only while the group is full (the log's write
// backpressure). The record is NOT durable until Ticket.Wait returns;
// stage order is LSN order, which is what lets a caller serialize its
// own mutation order with a short critical section around Stage while
// the expensive write+fsync runs outside it.
func (l *Log) Stage(payload []byte) (Ticket, error) {
	if len(payload) > MaxRecord {
		return Ticket{}, fmt.Errorf("wal: record of %d bytes exceeds MaxRecord", len(payload))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for !l.closed && l.ioErr == nil && l.pendingN > 0 &&
		(l.pendingN >= l.opt.GroupMax || len(l.pending) >= maxGroupBytes) {
		l.cond.Wait()
	}
	if l.closed {
		return Ticket{}, ErrClosed
	}
	if l.ioErr != nil {
		return Ticket{}, l.ioErr
	}
	lsn := l.lastLSN + 1
	l.lastLSN = lsn
	before := len(l.pending)
	l.pending = appendFrame(l.pending, lsn, payload)
	l.pendingN++
	n := int64(len(l.pending) - before)
	l.appends.Add(1)
	l.bytes.Add(n)
	l.mAppends.Inc()
	l.mBytes.Add(n)
	return Ticket{l: l, LSN: lsn}, nil
}

// Wait blocks until the staged record is committed per the log's fsync
// policy. The first waiter to find no commit in flight becomes the
// group's leader and performs the write itself; everyone else sleeps
// until the leader's broadcast. A ticket whose group failed reports the
// log's sticky I/O error.
func (t Ticket) Wait() error {
	l := t.l
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if l.writtenLSN >= t.LSN {
			return nil
		}
		if l.ioErr != nil {
			return l.ioErr
		}
		if !l.committing && l.pendingN > 0 {
			l.commitLocked()
			continue
		}
		l.cond.Wait()
	}
}

// commitLocked runs one group commit as the leader: called with mu held
// and committing false, returns with mu held and committing false again.
// The staged group is swapped out under the lock, written (and fsynced
// under SyncAlways) with the lock released so stagers keep filling the
// next group, then accounted and broadcast.
func (l *Log) commitLocked() {
	l.committing = true
	if l.opt.GroupWait > 0 {
		// Let trickling writers accumulate into this group. committing
		// is already set, so there is exactly one sleeper.
		l.mu.Unlock()
		time.Sleep(l.opt.GroupWait)
		l.mu.Lock()
	}
	if l.size >= l.opt.SegmentSize {
		if err := l.rotateLocked(); err != nil {
			l.failLocked(err)
			return
		}
	}
	buf, count, top := l.pending, l.pendingN, l.lastLSN
	l.pending = l.spare[:0]
	l.pendingN = 0
	l.spare = nil
	f := l.f
	syncNow := l.opt.Policy == SyncAlways

	l.mu.Unlock()
	_, err := f.Write(buf)
	if err == nil && syncNow {
		start := time.Now()
		if err = f.Sync(); err == nil {
			l.mFsyncLat.ObserveSince(start)
		}
	}
	l.mu.Lock()

	if cap(buf) <= maxGroupBytes*2 {
		l.spare = buf[:0] // recycle; oversized one-off groups are dropped
	}
	if err != nil {
		l.failLocked(err)
		return
	}
	l.size += int64(len(buf))
	l.dirty = !syncNow
	l.writtenLSN = top
	if syncNow {
		l.fsyncs.Add(1)
		l.mFsyncs.Inc()
	}
	l.groupCommits.Add(1)
	l.mGroups.Inc()
	l.mBatchSize.Observe(float64(count))
	l.committing = false
	l.cond.Broadcast()
}

// failLocked records a commit failure: the log fails stop. Called with
// mu held, committing true (or from a leader's rotate failure).
func (l *Log) failLocked(err error) {
	if l.ioErr == nil {
		l.ioErr = fmt.Errorf("wal: commit failed: %w", err)
	}
	l.committing = false
	l.cond.Broadcast()
}

// Sync forces an fsync of the active segment regardless of policy. It
// covers everything already written; records still staged in the
// pending group are committed by their waiters, not here.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.committing {
		l.cond.Wait()
	}
	if l.closed {
		return ErrClosed
	}
	if l.ioErr != nil {
		return l.ioErr
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if !l.dirty {
		return nil
	}
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.mFsyncLat.ObserveSince(start)
	l.dirty = false
	l.fsyncs.Add(1)
	l.mFsyncs.Inc()
	return nil
}

// Rotate seals the active segment and starts a new one, returning the
// new segment's sequence number. Every record committed before the call
// lives in a segment strictly below the returned boundary — pass it to
// Compact once those records are covered by a snapshot. (Records still
// staged at the time of the call land in the new segment, above the
// boundary, so they can never be compacted away prematurely.)
func (l *Log) Rotate() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.committing {
		l.cond.Wait()
	}
	if l.closed {
		return 0, ErrClosed
	}
	if l.ioErr != nil {
		return 0, l.ioErr
	}
	if err := l.rotateLocked(); err != nil {
		return 0, err
	}
	return l.seq, nil
}

func (l *Log) rotateLocked() error {
	if l.opt.Policy != SyncNever {
		if err := l.syncLocked(); err != nil {
			return err
		}
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	l.mRotations.Inc()
	return l.createSegmentLocked(l.seq + 1)
}

// createSegmentLocked creates segment seq and makes it active.
func (l *Log) createSegmentLocked(seq uint64) error {
	path := filepath.Join(l.opt.Dir, segName(seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(encodeSegHeader(l.lastLSN)); err != nil {
		f.Close()
		return err
	}
	if l.opt.Policy != SyncNever {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		l.fsyncs.Add(1)
		l.mFsyncs.Inc()
		if err := SyncDir(l.opt.Dir); err != nil {
			f.Close()
			return err
		}
	}
	l.f, l.seq, l.size, l.dirty = f, seq, segHeaderSize, false
	l.segments = append(l.segments, seq)
	l.mSegments.Set(int64(len(l.segments)))
	return nil
}

// Compact deletes every sealed segment with sequence number below
// boundary (as returned by Rotate) and reports how many were removed.
// The compaction invariant: callers only pass a boundary whose records
// are all reflected in a durable snapshot, so every record is always in
// the snapshot or a live segment — never lost.
func (l *Log) Compact(boundary uint64) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	removed := 0
	var firstErr error
	keep := make([]uint64, 0, len(l.segments))
	for _, seq := range l.segments {
		if firstErr == nil && seq < boundary && seq != l.seq {
			if err := removeSegment(l.opt.Dir, seq); err != nil {
				// Keep the segment in the live list; a later Compact
				// retries it.
				firstErr = err
				keep = append(keep, seq)
				continue
			}
			removed++
			continue
		}
		keep = append(keep, seq)
	}
	l.segments = keep
	l.mSegments.Set(int64(len(l.segments)))
	if removed > 0 && l.opt.Policy != SyncNever {
		if err := SyncDir(l.opt.Dir); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return removed, firstErr
}

// Close drains and commits any staged records, stops the background
// syncer (if any), flushes and fsyncs the unsynced tail under every
// policy except SyncNever, and closes the active segment. Tickets staged
// before Close are committed durably; Stage after Close reports
// ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	close(l.quit)
	l.cond.Broadcast() // wake backpressured stagers to see closed
	// Drain: wait out any in-flight commit and lead one ourselves for
	// staged frames whose waiters haven't elected a leader yet.
	for l.ioErr == nil && (l.committing || l.pendingN > 0) {
		if !l.committing && l.pendingN > 0 {
			l.commitLocked()
			continue
		}
		l.cond.Wait()
	}
	l.mu.Unlock()
	l.wg.Wait()

	l.mu.Lock()
	defer l.mu.Unlock()
	var err error
	if l.opt.Policy != SyncNever && l.ioErr == nil {
		// The unsynced tail (SyncInterval's last window, or SyncNever
		// writes forced by an explicit Sync policy change) must not ride
		// on the OS page cache past Close.
		err = l.syncLocked()
	}
	if cerr := l.f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err == nil && l.ioErr != nil {
		err = l.ioErr
	}
	return err
}

// syncLoop is the background fsyncer for SyncInterval.
func (l *Log) syncLoop() {
	defer l.wg.Done()
	t := time.NewTicker(l.opt.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			l.mu.Lock()
			if !l.closed {
				l.syncLocked() // best effort; Append surfaces write errors
			}
			l.mu.Unlock()
		case <-l.quit:
			return
		}
	}
}
