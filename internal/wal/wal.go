// Package wal implements a segmented append-only write-ahead log: the
// durability layer underneath the Journal Server's periodic snapshots.
// The paper's server "periodically checkpoints the Journal to disk",
// which loses up to a snapshot interval of discoveries on a crash; the
// WAL closes that window by recording every mutating request before it
// is applied, so a restart replays snapshot + log tail and loses
// nothing that was acknowledged (under the `always` fsync policy).
//
// Records are CRC32C-framed and length-prefixed (see frame.go), carry a
// monotonically increasing log sequence number (LSN), and live in
// segment files that rotate at a configurable size (see segment.go).
// A snapshot is the compaction point: once the journal state covering
// LSN ≤ n is durably on disk, every segment wholly below the rotation
// boundary can be deleted.
package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"fremont/internal/obs"
)

// SyncPolicy selects when appends are fsynced to stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: zero acknowledged records
	// are lost on a crash. The slowest policy.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs from a background goroutine every
	// Options.Interval: a crash loses at most the unsynced window.
	SyncInterval
	// SyncNever issues no fsyncs at all; durability rides on the OS
	// page cache. Useful for benchmarks and throwaway runs.
	SyncNever
)

// String reports the flag spelling of p.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParseSyncPolicy converts a flag value into a SyncPolicy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval, or never)", s)
}

// Options configures a Log.
type Options struct {
	// Dir holds the segment files; created if missing.
	Dir string
	// SegmentSize is the rotation threshold in bytes (default 16 MiB).
	// A segment may exceed it by one record.
	SegmentSize int64
	// Policy selects the fsync policy (default SyncAlways).
	Policy SyncPolicy
	// Interval is the background fsync period under SyncInterval
	// (default 100ms).
	Interval time.Duration
	// Obs receives the log's metrics (wal_appends_total, wal_fsyncs_total,
	// wal_rotations_total, the wal_fsync_seconds histogram, the
	// wal_live_segments gauge). Nil uses the process-wide obs.Default();
	// fremontd passes its server's registry so one scrape covers both
	// layers. Appends are deliberately counted but not timed — the
	// append fast path under SyncNever is a few hundred nanoseconds and
	// a clock read would be measurable; fsyncs are microseconds at best,
	// so their latency histogram is free by comparison.
	Obs *obs.Registry
}

// DefaultSegmentSize is the rotation threshold when Options.SegmentSize
// is zero.
const DefaultSegmentSize = 16 << 20

// Recovery summarizes what Open found on disk.
type Recovery struct {
	Segments        int    // segment files that survived
	Records         int    // verified records across all segments
	LastLSN         uint64 // highest LSN on disk (0 for an empty log)
	Torn            bool   // a torn/corrupt tail was truncated away
	DroppedBytes    int64  // bytes discarded past the valid prefix
	DroppedSegments int    // whole segment files discarded past the valid prefix
}

// Stats is a point-in-time snapshot of a Log's counters.
type Stats struct {
	Appends       int64  // records appended this process
	BytesAppended int64  // frame bytes appended this process
	Fsyncs        int64  // fsync calls issued
	Replayed      int64  // records delivered by Replay
	Segments      int    // live segment files (sealed + active)
	LastLSN       uint64 // highest LSN assigned
}

// ErrClosed is returned by operations on a closed Log.
var ErrClosed = errors.New("wal: log is closed")

// Log is a segmented write-ahead log. All methods are safe for
// concurrent use.
type Log struct {
	opt Options
	rec Recovery

	mu       sync.Mutex
	f        *os.File // active segment
	seq      uint64   // active segment sequence number
	size     int64    // active segment size in bytes
	lastLSN  uint64
	dirty    bool     // unsynced appends outstanding
	segments []uint64 // live segment seqs, ascending; last is active
	buf      []byte   // frame scratch buffer
	closed   bool

	// Per-log counters behind Stats(). The registry instruments below
	// mirror them (aggregated across logs when several share a registry).
	appends  atomic.Int64
	bytes    atomic.Int64
	fsyncs   atomic.Int64
	replayed atomic.Int64

	// Cached registry instruments; never nil after Open.
	mAppends   *obs.Counter
	mBytes     *obs.Counter
	mFsyncs    *obs.Counter
	mRotations *obs.Counter
	mReplayed  *obs.Counter
	mFsyncLat  *obs.Histogram
	mSegments  *obs.Gauge

	quit chan struct{}
	wg   sync.WaitGroup
}

// Open opens (or creates) the log in opt.Dir, verifying every frame on
// disk. A torn or corrupt tail — a partial final frame, or garbage at
// an arbitrary offset — is truncated away so the log resumes from the
// longest valid prefix; whole segments past a corruption are deleted.
// Use RecoveryInfo to learn what was found and what was dropped.
func Open(opt Options) (*Log, error) {
	if opt.SegmentSize <= 0 {
		opt.SegmentSize = DefaultSegmentSize
	}
	if opt.Interval <= 0 {
		opt.Interval = 100 * time.Millisecond
	}
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, err
	}
	reg := opt.Obs
	if reg == nil {
		reg = obs.Default()
	}
	l := &Log{
		opt:        opt,
		quit:       make(chan struct{}),
		mAppends:   reg.Counter("wal_appends_total"),
		mBytes:     reg.Counter("wal_append_bytes_total"),
		mFsyncs:    reg.Counter("wal_fsyncs_total"),
		mRotations: reg.Counter("wal_rotations_total"),
		mReplayed:  reg.Counter("wal_replayed_total"),
		mFsyncLat:  reg.Histogram("wal_fsync_seconds", nil),
		mSegments:  reg.Gauge("wal_live_segments"),
	}

	seqs, err := listSegments(opt.Dir)
	if err != nil {
		return nil, err
	}
	// Walk segments oldest-first; the first verification failure ends
	// the valid prefix. Everything after it (rest of that file, any
	// later files) is dropped so appends resume exactly where replay
	// stops.
	var live []uint64
	for i, seq := range seqs {
		path := filepath.Join(opt.Dir, segName(seq))
		res, err := scanSegment(path)
		if err != nil {
			return nil, err
		}
		if res.validEnd == 0 && res.torn {
			// Header didn't verify: nothing salvageable in this file.
			l.rec.Torn = true
			l.rec.DroppedBytes += res.fileSize
			l.rec.DroppedSegments++
			if err := removeSegment(opt.Dir, seq); err != nil {
				return nil, err
			}
			l.dropTail(seqs[i+1:])
			break
		}
		l.rec.Records += res.records
		l.lastLSN = max(l.lastLSN, res.lastLSN)
		live = append(live, seq)
		if res.torn {
			l.rec.Torn = true
			l.rec.DroppedBytes += res.fileSize - res.validEnd
			if err := os.Truncate(path, res.validEnd); err != nil {
				return nil, err
			}
			l.dropTail(seqs[i+1:])
			break
		}
	}
	l.segments = live
	l.rec.Segments = len(l.segments)
	l.rec.LastLSN = l.lastLSN

	if len(l.segments) == 0 {
		if err := l.createSegmentLocked(1); err != nil {
			return nil, err
		}
	} else {
		seq := l.segments[len(l.segments)-1]
		path := filepath.Join(opt.Dir, segName(seq))
		f, err := os.OpenFile(path, os.O_RDWR, 0o644)
		if err != nil {
			return nil, err
		}
		end, err := f.Seek(0, 2)
		if err != nil {
			f.Close()
			return nil, err
		}
		l.f, l.seq, l.size = f, seq, end
	}

	if opt.Policy == SyncInterval {
		l.wg.Add(1)
		go l.syncLoop()
	}
	return l, nil
}

// dropTail deletes whole segment files past a corruption point.
func (l *Log) dropTail(seqs []uint64) {
	for _, seq := range seqs {
		path := filepath.Join(l.opt.Dir, segName(seq))
		if fi, err := os.Stat(path); err == nil {
			l.rec.DroppedBytes += fi.Size()
		}
		l.rec.DroppedSegments++
		os.Remove(path)
	}
}

// RecoveryInfo reports what Open found on disk.
func (l *Log) RecoveryInfo() Recovery { return l.rec }

// Stats returns the log's counters; safe to call at any time.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	segs, lsn := len(l.segments), l.lastLSN
	l.mu.Unlock()
	return Stats{
		Appends:       l.appends.Load(),
		BytesAppended: l.bytes.Load(),
		Fsyncs:        l.fsyncs.Load(),
		Replayed:      l.replayed.Load(),
		Segments:      segs,
		LastLSN:       lsn,
	}
}

// LastLSN reports the highest LSN assigned so far.
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastLSN
}

// AdvanceLSN raises the LSN counter to at least min. Recovery calls
// this with the snapshot's LSN so that a log whose segments were all
// compacted away (or lost) never reissues sequence numbers the
// snapshot already covers.
func (l *Log) AdvanceLSN(min uint64) {
	l.mu.Lock()
	if l.lastLSN < min {
		l.lastLSN = min
	}
	l.mu.Unlock()
}

// Append assigns the next LSN, writes one record, and — under
// SyncAlways — fsyncs before returning. The returned LSN is the
// record's position in the global mutation order.
func (l *Log) Append(payload []byte) (uint64, error) {
	if len(payload) > MaxRecord {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds MaxRecord", len(payload))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.size >= l.opt.SegmentSize {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	lsn := l.lastLSN + 1
	l.buf = appendFrame(l.buf[:0], lsn, payload)
	if _, err := l.f.Write(l.buf); err != nil {
		return 0, err
	}
	l.lastLSN = lsn
	l.size += int64(len(l.buf))
	l.dirty = true
	l.appends.Add(1)
	l.bytes.Add(int64(len(l.buf)))
	l.mAppends.Inc()
	l.mBytes.Add(int64(len(l.buf)))
	if l.opt.Policy == SyncAlways {
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	}
	return lsn, nil
}

// Sync forces an fsync of the active segment regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if !l.dirty {
		return nil
	}
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.mFsyncLat.ObserveSince(start)
	l.dirty = false
	l.fsyncs.Add(1)
	l.mFsyncs.Inc()
	return nil
}

// Rotate seals the active segment and starts a new one, returning the
// new segment's sequence number. Every record appended before the call
// lives in a segment strictly below the returned boundary — pass it to
// Compact once those records are covered by a snapshot.
func (l *Log) Rotate() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if err := l.rotateLocked(); err != nil {
		return 0, err
	}
	return l.seq, nil
}

func (l *Log) rotateLocked() error {
	if l.opt.Policy != SyncNever {
		if err := l.syncLocked(); err != nil {
			return err
		}
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	l.mRotations.Inc()
	return l.createSegmentLocked(l.seq + 1)
}

// createSegmentLocked creates segment seq and makes it active.
func (l *Log) createSegmentLocked(seq uint64) error {
	path := filepath.Join(l.opt.Dir, segName(seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(encodeSegHeader(l.lastLSN)); err != nil {
		f.Close()
		return err
	}
	if l.opt.Policy != SyncNever {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		l.fsyncs.Add(1)
		l.mFsyncs.Inc()
		if err := SyncDir(l.opt.Dir); err != nil {
			f.Close()
			return err
		}
	}
	l.f, l.seq, l.size, l.dirty = f, seq, segHeaderSize, false
	l.segments = append(l.segments, seq)
	l.mSegments.Set(int64(len(l.segments)))
	return nil
}

// Compact deletes every sealed segment with sequence number below
// boundary (as returned by Rotate) and reports how many were removed.
// The compaction invariant: callers only pass a boundary whose records
// are all reflected in a durable snapshot, so every record is always in
// the snapshot or a live segment — never lost.
func (l *Log) Compact(boundary uint64) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	removed := 0
	var firstErr error
	keep := make([]uint64, 0, len(l.segments))
	for _, seq := range l.segments {
		if firstErr == nil && seq < boundary && seq != l.seq {
			if err := removeSegment(l.opt.Dir, seq); err != nil {
				// Keep the segment in the live list; a later Compact
				// retries it.
				firstErr = err
				keep = append(keep, seq)
				continue
			}
			removed++
			continue
		}
		keep = append(keep, seq)
	}
	l.segments = keep
	l.mSegments.Set(int64(len(l.segments)))
	if removed > 0 && l.opt.Policy != SyncNever {
		if err := SyncDir(l.opt.Dir); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return removed, firstErr
}

// Close stops the background syncer (if any), flushes under every
// policy except SyncNever, and closes the active segment.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	close(l.quit)
	l.mu.Unlock()
	l.wg.Wait()

	l.mu.Lock()
	defer l.mu.Unlock()
	var err error
	if l.opt.Policy != SyncNever && l.dirty {
		if serr := l.f.Sync(); serr != nil {
			err = serr
		} else {
			l.fsyncs.Add(1)
			l.mFsyncs.Inc()
		}
		l.dirty = false
	}
	if cerr := l.f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// syncLoop is the background fsyncer for SyncInterval.
func (l *Log) syncLoop() {
	defer l.wg.Done()
	t := time.NewTicker(l.opt.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			l.mu.Lock()
			if !l.closed {
				l.syncLocked() // best effort; Append surfaces write errors
			}
			l.mu.Unlock()
		case <-l.quit:
			return
		}
	}
}
