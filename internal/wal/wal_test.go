package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// collect replays l into a slice of (lsn, payload) pairs.
func collect(t *testing.T, l *Log) (lsns []uint64, payloads [][]byte) {
	t.Helper()
	_, err := l.Replay(func(lsn uint64, payload []byte) error {
		lsns = append(lsns, lsn)
		payloads = append(payloads, append([]byte(nil), payload...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return lsns, payloads
}

func TestAppendReplayRoundtrip(t *testing.T) {
	l, err := Open(Options{Dir: t.TempDir(), Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var want [][]byte
	for i := 0; i < 50; i++ {
		p := []byte(fmt.Sprintf("record-%04d", i))
		want = append(want, p)
		lsn, err := l.Append(p)
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("append %d got lsn %d", i, lsn)
		}
	}
	lsns, got := collect(t, l)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) || lsns[i] != uint64(i+1) {
			t.Fatalf("record %d = lsn %d %q, want lsn %d %q", i, lsns[i], got[i], i+1, want[i])
		}
	}
	st := l.Stats()
	if st.Appends != 50 || st.LastLSN != 50 || st.Replayed != 50 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BytesAppended == 0 {
		t.Fatal("no bytes counted")
	}
}

func TestReopenContinuesLSN(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := l.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(Options{Dir: dir, Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	ri := l2.RecoveryInfo()
	if ri.Records != 10 || ri.LastLSN != 10 || ri.Torn {
		t.Fatalf("recovery = %+v", ri)
	}
	lsn, err := l2.Append([]byte("next"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 11 {
		t.Fatalf("post-reopen lsn = %d, want 11", lsn)
	}
	lsns, _ := collect(t, l2)
	if len(lsns) != 11 {
		t.Fatalf("replayed %d, want 11", len(lsns))
	}
}

func TestRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation every couple of records.
	l, err := Open(Options{Dir: dir, SegmentSize: 64, Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := l.Append(bytes.Repeat([]byte{byte(i)}, 20)); err != nil {
			t.Fatal(err)
		}
	}
	if st := l.Stats(); st.Segments < 3 {
		t.Fatalf("expected several segments, got %d", st.Segments)
	}
	lsns, _ := collect(t, l)
	if len(lsns) != 20 {
		t.Fatalf("replayed %d across segments, want 20", len(lsns))
	}

	boundary, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	removed, err := l.Compact(boundary)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("compaction removed nothing")
	}
	if st := l.Stats(); st.Segments != 1 {
		t.Fatalf("after compaction %d segments live, want 1", st.Segments)
	}
	// Records below the boundary are gone; new appends continue the LSN
	// sequence thanks to the segment header's base LSN.
	if lsn, err := l.Append([]byte("after")); err != nil || lsn != 21 {
		t.Fatalf("append after compact = %d, %v; want 21", lsn, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(Options{Dir: dir, SegmentSize: 64, Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.LastLSN(); got != 21 {
		t.Fatalf("reopen after compaction LastLSN = %d, want 21", got)
	}
	lsns, _ = collect(t, l2)
	if len(lsns) != 1 || lsns[0] != 21 {
		t.Fatalf("post-compaction replay = %v, want [21]", lsns)
	}
}

func TestSyncPolicies(t *testing.T) {
	t.Run("always", func(t *testing.T) {
		l, err := Open(Options{Dir: t.TempDir(), Policy: SyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		for i := 0; i < 5; i++ {
			if _, err := l.Append([]byte("x")); err != nil {
				t.Fatal(err)
			}
		}
		// One fsync for segment creation plus one per append.
		if st := l.Stats(); st.Fsyncs < 6 {
			t.Fatalf("always: %d fsyncs for 5 appends", st.Fsyncs)
		}
	})
	t.Run("interval", func(t *testing.T) {
		l, err := Open(Options{Dir: t.TempDir(), Policy: SyncInterval, Interval: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		if _, err := l.Append([]byte("x")); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(2 * time.Second)
		for l.Stats().Fsyncs < 2 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if st := l.Stats(); st.Fsyncs < 2 {
			t.Fatalf("interval: background syncer never ran (%d fsyncs)", st.Fsyncs)
		}
	})
	t.Run("never", func(t *testing.T) {
		l, err := Open(Options{Dir: t.TempDir(), Policy: SyncNever})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			if _, err := l.Append([]byte("x")); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		if st := l.Stats(); st.Fsyncs != 0 {
			t.Fatalf("never: %d fsyncs issued", st.Fsyncs)
		}
	})
}

func TestParseSyncPolicy(t *testing.T) {
	for _, p := range []SyncPolicy{SyncAlways, SyncInterval, SyncNever} {
		got, err := ParseSyncPolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("round-trip %v: got %v, %v", p, got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestAdvanceLSN(t *testing.T) {
	l, err := Open(Options{Dir: t.TempDir(), Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.AdvanceLSN(100)
	if lsn, _ := l.Append([]byte("x")); lsn != 101 {
		t.Fatalf("append after AdvanceLSN(100) = %d, want 101", lsn)
	}
	l.AdvanceLSN(50) // never moves backwards
	if lsn, _ := l.Append([]byte("y")); lsn != 102 {
		t.Fatalf("append after no-op AdvanceLSN = %d, want 102", lsn)
	}
}

// TestTornTail covers the crash shapes: the log truncated or corrupted
// at an arbitrary byte offset must reopen as its longest valid prefix.
func TestTornTail(t *testing.T) {
	const n = 8
	payload := []byte("fixed-size-payload")
	frameLen := int(frameSize(len(payload)))

	build := func(t *testing.T) string {
		dir := t.TempDir()
		l, err := Open(Options{Dir: dir, Policy: SyncNever})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if _, err := l.Append(payload); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		return dir
	}

	// expect computes the longest valid prefix when the log degrades at
	// byte offset off: whole frames strictly before it.
	expect := func(off int64) int {
		if off < segHeaderSize {
			return 0
		}
		k := int((off - segHeaderSize) / int64(frameLen))
		if k > n {
			k = n
		}
		return k
	}

	offsets := []int64{
		0, 1, segHeaderSize - 1, segHeaderSize, segHeaderSize + 1,
		segHeaderSize + int64(frameLen) - 1,
		segHeaderSize + int64(frameLen),
		segHeaderSize + int64(frameLen) + 7,
		segHeaderSize + 3*int64(frameLen) + 11,
		segHeaderSize + int64(n*frameLen) - 1,
	}

	t.Run("truncate", func(t *testing.T) {
		for _, off := range offsets {
			dir := build(t)
			seg := filepath.Join(dir, segName(1))
			if err := os.Truncate(seg, off); err != nil {
				t.Fatal(err)
			}
			l, err := Open(Options{Dir: dir, Policy: SyncNever})
			if err != nil {
				t.Fatalf("off %d: %v", off, err)
			}
			lsns, _ := collect(t, l)
			if len(lsns) != expect(off) {
				t.Errorf("truncate at %d: %d records survive, want %d", off, len(lsns), expect(off))
			}
			// Appends continue from the surviving prefix.
			wantNext := uint64(expect(off) + 1)
			if lsn, err := l.Append(payload); err != nil || lsn < wantNext {
				t.Errorf("truncate at %d: next lsn = %d, %v (want ≥ %d)", off, lsn, err, wantNext)
			}
			l.Close()
		}
	})

	t.Run("corrupt", func(t *testing.T) {
		for _, off := range offsets {
			dir := build(t)
			seg := filepath.Join(dir, segName(1))
			data, err := os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			data[off] ^= 0xff
			if err := os.WriteFile(seg, data, 0o644); err != nil {
				t.Fatal(err)
			}
			l, err := Open(Options{Dir: dir, Policy: SyncNever})
			if err != nil {
				t.Fatalf("off %d: %v", off, err)
			}
			ri := l.RecoveryInfo()
			if !ri.Torn {
				t.Errorf("corrupt at %d: torn tail not reported", off)
			}
			lsns, _ := collect(t, l)
			if len(lsns) != expect(off) {
				t.Errorf("corrupt at %d: %d records survive, want %d", off, len(lsns), expect(off))
			}
			l.Close()
		}
	})
}

// TestCorruptionDropsLaterSegments: garbage mid-log ends the valid
// prefix even when intact-looking segments follow it.
func TestCorruptionDropsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, SegmentSize: 64, Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if _, err := l.Append(bytes.Repeat([]byte{byte(i)}, 30)); err != nil {
			t.Fatal(err)
		}
	}
	segs := l.Stats().Segments
	if segs < 3 {
		t.Fatalf("need ≥3 segments, got %d", segs)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the first record of segment 2.
	seg2 := filepath.Join(dir, segName(2))
	data, err := os.ReadFile(seg2)
	if err != nil {
		t.Fatal(err)
	}
	data[segHeaderSize+4] ^= 0xff
	if err := os.WriteFile(seg2, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(Options{Dir: dir, SegmentSize: 64, Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	ri := l2.RecoveryInfo()
	if !ri.Torn || ri.DroppedSegments != segs-2 {
		t.Fatalf("recovery = %+v, want torn with %d dropped segments", ri, segs-2)
	}
	lsns, _ := collect(t, l2)
	// Segment 1 holds exactly one 46-byte frame (30B payload) past its
	// 64-byte threshold check... derive the expected prefix from what
	// segment 1 actually held instead of hard-coding.
	for i, lsn := range lsns {
		if lsn != uint64(i+1) {
			t.Fatalf("prefix not contiguous: %v", lsns)
		}
	}
	if len(lsns) == 0 || len(lsns) >= 12 {
		t.Fatalf("prefix length %d, want a proper prefix", len(lsns))
	}
}

// FuzzFrameDecode hammers the frame decoder with arbitrary bytes: it
// must never panic, never over-consume, and every frame it accepts must
// re-encode to the identical bytes.
func FuzzFrameDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("garbage that is not a frame"))
	f.Add(appendFrame(nil, 1, []byte("hello")))
	f.Add(appendFrame(appendFrame(nil, 1, []byte("a")), 2, []byte("b")))
	long := appendFrame(nil, 7, bytes.Repeat([]byte{0x55}, 300))
	f.Add(long[:len(long)-3]) // torn tail
	f.Fuzz(func(t *testing.T, data []byte) {
		off := 0
		for off < len(data) {
			lsn, payload, n, err := DecodeFrame(data[off:])
			if err != nil {
				break // valid prefix ends here
			}
			if n < frameHeaderSize || off+n > len(data) {
				t.Fatalf("decode consumed %d of %d remaining", n, len(data)-off)
			}
			re := appendFrame(nil, lsn, payload)
			if !bytes.Equal(re, data[off:off+n]) {
				t.Fatalf("re-encode mismatch at offset %d", off)
			}
			off += n
		}
	})
}
