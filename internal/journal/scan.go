package journal

import "strings"

// Cursor-paged scans and incremental change queries.
//
// Scan* pages over the ID space in ascending record-ID order: each call
// examines at most `limit` live records under one read-lock hold and
// returns the page plus the cursor to resume from. Because record IDs are
// allocated monotonically and never reused, a cursor that only moves
// forward can never return the same record twice, no matter how the
// journal is mutated between pages; records created mid-scan with IDs
// above the cursor are picked up by later pages, records deleted mid-scan
// are simply skipped.
//
// *Changes walk the modification-ordered lists (ascending in ModSeq) and
// return records mutated after a sequence cursor, oldest change first.
// Locating the changed suffix walks backward from the list tail, so an
// unchanged journal answers in O(1) — the property incremental
// replication relies on to make a no-op pull free.

// DefaultScanLimit is the page size used when a scan or changes call
// passes limit <= 0.
const DefaultScanLimit = 512

// ScanInterfaces returns up to limit interface records with ID > cursor
// that match q, in ascending ID order, plus the cursor for the next page
// and whether more records may remain. Filtered-out records still count
// against the page's examination budget (bounding the lock hold), so a
// page may come back short — or empty — with more == true; keep paging
// until more is false.
func (j *Journal) ScanInterfaces(cursor ID, limit int, q Query) ([]*InterfaceRec, ID, bool) {
	if limit <= 0 {
		limit = DefaultScanLimit
	}
	j.mu.RLock()
	defer j.mu.RUnlock()
	var out []*InterfaceRec
	examined := 0
	for id := cursor + 1; id <= j.nextIface; id++ {
		rec, ok := j.ifRecs[id]
		if !ok {
			continue
		}
		if matchInterface(rec, q) {
			out = append(out, rec.clone())
		}
		examined++
		if examined == limit && id < j.nextIface {
			return out, id, true
		}
	}
	return out, j.nextIface, false
}

// matchInterface applies q to rec; callers hold a lock. The criteria
// mirror Interfaces so a scan with a filter returns the same record set,
// just paged.
func matchInterface(rec *InterfaceRec, q Query) bool {
	if q.HasID && rec.ID != q.ByID {
		return false
	}
	if q.HasIP && rec.IP != q.ByIP {
		return false
	}
	if q.HasMAC && rec.MAC != q.ByMAC {
		return false
	}
	if q.ByName != "" && rec.Name != strings.ToLower(q.ByName) {
		return false
	}
	if q.HasRange && (rec.IP < q.IPLo || rec.IP >= q.IPHi) {
		return false
	}
	if !q.ModifiedSince.IsZero() &&
		rec.Stamp.Changed.Before(q.ModifiedSince) && rec.Stamp.Verified.Before(q.ModifiedSince) {
		return false
	}
	return true
}

// ScanGateways pages over gateway records: see ScanInterfaces.
func (j *Journal) ScanGateways(cursor ID, limit int) ([]*GatewayRec, ID, bool) {
	if limit <= 0 {
		limit = DefaultScanLimit
	}
	j.mu.RLock()
	defer j.mu.RUnlock()
	var out []*GatewayRec
	for id := cursor + 1; id <= j.nextGw; id++ {
		rec, ok := j.gwRecs[id]
		if !ok {
			continue
		}
		out = append(out, rec.clone())
		if len(out) == limit && id < j.nextGw {
			return out, id, true
		}
	}
	return out, j.nextGw, false
}

// ScanSubnets pages over subnet records: see ScanInterfaces.
func (j *Journal) ScanSubnets(cursor ID, limit int) ([]*SubnetRec, ID, bool) {
	if limit <= 0 {
		limit = DefaultScanLimit
	}
	j.mu.RLock()
	defer j.mu.RUnlock()
	var out []*SubnetRec
	for id := cursor + 1; id <= j.nextSn; id++ {
		rec, ok := j.snRecs[id]
		if !ok {
			continue
		}
		out = append(out, rec.clone())
		if len(out) == limit && id < j.nextSn {
			return out, id, true
		}
	}
	return out, j.nextSn, false
}

func ifaceSeq(owner any) uint64  { return owner.(*InterfaceRec).ModSeq }
func gwSeq(owner any) uint64     { return owner.(*GatewayRec).ModSeq }
func subnetSeq(owner any) uint64 { return owner.(*SubnetRec).ModSeq }

// InterfaceChanges returns up to limit interface records mutated after
// sequence number `after`, oldest change first, plus the sequence cursor
// for the next call and whether more changes remain. A record mutated
// several times appears once, at its latest ModSeq — replaying the page
// in order converges the reader on the journal's current state. Record
// deletion is not a change to a live record and is not reported.
func (j *Journal) InterfaceChanges(after uint64, limit int) ([]*InterfaceRec, uint64, bool) {
	if limit <= 0 {
		limit = DefaultScanLimit
	}
	j.mu.RLock()
	defer j.mu.RUnlock()
	var out []*InterfaceRec
	more := false
	j.ifList.eachAfter(after, ifaceSeq, func(owner any) bool {
		if len(out) == limit {
			more = true
			return false
		}
		out = append(out, owner.(*InterfaceRec).clone())
		return true
	})
	next := after
	if len(out) > 0 {
		next = out[len(out)-1].ModSeq
	}
	return out, next, more
}

// GatewayChanges: see InterfaceChanges.
func (j *Journal) GatewayChanges(after uint64, limit int) ([]*GatewayRec, uint64, bool) {
	if limit <= 0 {
		limit = DefaultScanLimit
	}
	j.mu.RLock()
	defer j.mu.RUnlock()
	var out []*GatewayRec
	more := false
	j.gwList.eachAfter(after, gwSeq, func(owner any) bool {
		if len(out) == limit {
			more = true
			return false
		}
		out = append(out, owner.(*GatewayRec).clone())
		return true
	})
	next := after
	if len(out) > 0 {
		next = out[len(out)-1].ModSeq
	}
	return out, next, more
}

// SubnetChanges: see InterfaceChanges.
func (j *Journal) SubnetChanges(after uint64, limit int) ([]*SubnetRec, uint64, bool) {
	if limit <= 0 {
		limit = DefaultScanLimit
	}
	j.mu.RLock()
	defer j.mu.RUnlock()
	var out []*SubnetRec
	more := false
	j.snList.eachAfter(after, subnetSeq, func(owner any) bool {
		if len(out) == limit {
			more = true
			return false
		}
		out = append(out, owner.(*SubnetRec).clone())
		return true
	})
	next := after
	if len(out) > 0 {
		next = out[len(out)-1].ModSeq
	}
	return out, next, more
}
