package journal

import (
	"testing"
	"testing/quick"
	"time"

	"fremont/internal/netsim/pkt"
)

var t0 = time.Date(1993, 1, 25, 8, 0, 0, 0, time.UTC)

func at(minutes int) time.Time { return t0.Add(time.Duration(minutes) * time.Minute) }

func mac(b byte) pkt.MAC { return pkt.MAC{8, 0, 0x20, 0, 0, b} }

func TestStoreInterfaceNew(t *testing.T) {
	j := New()
	id, created := j.StoreInterface(IfaceObs{
		IP: pkt.IPv4(128, 138, 238, 5), HasMAC: true, MAC: mac(1),
		Source: SrcARP, At: at(0),
	})
	if !created || id == 0 {
		t.Fatalf("StoreInterface = %d, %v", id, created)
	}
	rec, ok := j.Interface(id)
	if !ok {
		t.Fatal("record not found")
	}
	if rec.MAC != mac(1) || rec.Sources != SrcARP {
		t.Fatalf("rec = %+v", rec)
	}
	if rec.Stamp.Discovered != at(0) || rec.Stamp.Verified != at(0) {
		t.Fatalf("stamps = %+v", rec.Stamp)
	}
}

func TestVerifyBumpsOnlyVerified(t *testing.T) {
	j := New()
	obs := IfaceObs{IP: pkt.IPv4(10, 0, 0, 1), HasMAC: true, MAC: mac(1), Source: SrcARP, At: at(0)}
	id, _ := j.StoreInterface(obs)
	obs.At = at(60)
	id2, created := j.StoreInterface(obs)
	if created || id2 != id {
		t.Fatalf("re-observation created new record (%d vs %d)", id2, id)
	}
	rec, _ := j.Interface(id)
	if rec.Stamp.Discovered != at(0) {
		t.Fatal("re-observation moved discovery time")
	}
	if rec.Stamp.Verified != at(60) {
		t.Fatal("re-observation did not bump verification time")
	}
	if rec.Stamp.Changed != at(0) {
		t.Fatal("re-observation of identical data counted as change")
	}
}

func TestMACFillsEmptyRecord(t *testing.T) {
	j := New()
	// SeqPing saw the address first (no MAC)...
	id1, _ := j.StoreInterface(IfaceObs{IP: pkt.IPv4(10, 0, 0, 1), Source: SrcICMP, At: at(0)})
	// ...then ARPwatch supplies the MAC.
	id2, created := j.StoreInterface(IfaceObs{IP: pkt.IPv4(10, 0, 0, 1), HasMAC: true, MAC: mac(7), Source: SrcARP, At: at(5)})
	if created || id1 != id2 {
		t.Fatal("MAC observation did not fold into the MAC-less record")
	}
	rec, _ := j.Interface(id1)
	if rec.MAC != mac(7) || rec.Sources != SrcARP|SrcICMP {
		t.Fatalf("rec = %+v", rec)
	}
	if rec.MACStamp.Discovered != at(5) {
		t.Fatal("MAC field stamp should date from the MAC observation")
	}
}

func TestDuplicateAddressCreatesSecondRecord(t *testing.T) {
	j := New()
	ip := pkt.IPv4(10, 0, 0, 66)
	id1, _ := j.StoreInterface(IfaceObs{IP: ip, HasMAC: true, MAC: mac(1), Source: SrcARP, At: at(0)})
	id2, created := j.StoreInterface(IfaceObs{IP: ip, HasMAC: true, MAC: mac(2), Source: SrcARP, At: at(1)})
	if !created || id1 == id2 {
		t.Fatal("conflicting MAC for same IP should create a second record")
	}
	recs := j.Interfaces(Query{Kind: KindInterface, ByIP: ip, HasIP: true})
	if len(recs) != 2 {
		t.Fatalf("query by IP returned %d records, want 2", len(recs))
	}
	if st := j.StatsSnapshot(); st.Conflicts != 1 {
		t.Fatalf("Conflicts = %d, want 1", st.Conflicts)
	}
}

func TestNameAliases(t *testing.T) {
	j := New()
	ip := pkt.IPv4(10, 0, 0, 1)
	id, _ := j.StoreInterface(IfaceObs{IP: ip, Name: "anchor.cs.colorado.edu", Source: SrcDNS, At: at(0)})
	j.StoreInterface(IfaceObs{IP: ip, Name: "mailhost.cs.colorado.edu", Source: SrcDNS, At: at(1)})
	rec, _ := j.Interface(id)
	if rec.Name != "anchor.cs.colorado.edu" {
		t.Fatalf("primary name = %q", rec.Name)
	}
	if len(rec.Aliases) != 1 || rec.Aliases[0] != "mailhost.cs.colorado.edu" {
		t.Fatalf("aliases = %v", rec.Aliases)
	}
	// Same alias again: no duplicate.
	j.StoreInterface(IfaceObs{IP: ip, Name: "MAILHOST.cs.colorado.edu", Source: SrcDNS, At: at(2)})
	rec, _ = j.Interface(id)
	if len(rec.Aliases) != 1 {
		t.Fatalf("aliases duplicated: %v", rec.Aliases)
	}
}

func TestMaskConflictIsChange(t *testing.T) {
	j := New()
	ip := pkt.IPv4(10, 0, 0, 1)
	id, _ := j.StoreInterface(IfaceObs{IP: ip, HasMask: true, Mask: pkt.MaskBits(24), Source: SrcICMP, At: at(0)})
	j.StoreInterface(IfaceObs{IP: ip, HasMask: true, Mask: pkt.MaskBits(16), Source: SrcICMP, At: at(10)})
	rec, _ := j.Interface(id)
	if rec.Mask != pkt.MaskBits(16) {
		t.Fatalf("mask = %s", rec.Mask)
	}
	if rec.MaskStamp.Changed != at(10) {
		t.Fatal("mask conflict did not record a change")
	}
}

func TestQueryByMACAndName(t *testing.T) {
	j := New()
	j.StoreInterface(IfaceObs{IP: pkt.IPv4(10, 0, 1, 1), HasMAC: true, MAC: mac(9),
		Name: "gw.cs.colorado.edu", Source: SrcARP, At: at(0)})
	j.StoreInterface(IfaceObs{IP: pkt.IPv4(10, 0, 2, 1), HasMAC: true, MAC: mac(9),
		Source: SrcARP, At: at(1)})
	byMAC := j.Interfaces(Query{ByMAC: mac(9), HasMAC: true})
	if len(byMAC) != 2 {
		t.Fatalf("query by MAC returned %d, want 2 (same MAC on two subnets = gateway clue)", len(byMAC))
	}
	byName := j.Interfaces(Query{ByName: "GW.cs.colorado.edu"})
	if len(byName) != 1 || byName[0].IP != pkt.IPv4(10, 0, 1, 1) {
		t.Fatalf("query by name returned %+v", byName)
	}
}

func TestQueryRange(t *testing.T) {
	j := New()
	for i := 1; i <= 20; i++ {
		j.StoreInterface(IfaceObs{IP: pkt.IPv4(10, 0, 0, byte(i)), Source: SrcICMP, At: at(i)})
	}
	recs := j.Interfaces(Query{HasRange: true, IPLo: pkt.IPv4(10, 0, 0, 5), IPHi: pkt.IPv4(10, 0, 0, 10)})
	if len(recs) != 5 {
		t.Fatalf("range query returned %d, want 5", len(recs))
	}
}

func TestQueryModifiedSince(t *testing.T) {
	j := New()
	j.StoreInterface(IfaceObs{IP: pkt.IPv4(10, 0, 0, 1), Source: SrcICMP, At: at(0)})
	j.StoreInterface(IfaceObs{IP: pkt.IPv4(10, 0, 0, 2), Source: SrcICMP, At: at(100)})
	recs := j.Interfaces(Query{ModifiedSince: at(50)})
	if len(recs) != 1 || recs[0].IP != pkt.IPv4(10, 0, 0, 2) {
		t.Fatalf("ModifiedSince returned %d records", len(recs))
	}
}

func TestGatewayMergeByInterface(t *testing.T) {
	j := New()
	// Traceroute sees interface A of a gateway; DNS sees interfaces A+B.
	j.StoreGateway(GatewayObs{IfaceIPs: []pkt.IP{pkt.IPv4(10, 0, 1, 1)}, Source: SrcTraceroute, At: at(0)})
	j.StoreGateway(GatewayObs{IfaceIPs: []pkt.IP{pkt.IPv4(10, 0, 1, 1), pkt.IPv4(10, 0, 2, 1)}, Source: SrcDNS, At: at(1)})
	gws := j.Gateways()
	if len(gws) != 1 {
		t.Fatalf("gateways = %d, want 1 (merged)", len(gws))
	}
	if len(gws[0].Ifaces) != 2 {
		t.Fatalf("merged gateway has %d interfaces, want 2", len(gws[0].Ifaces))
	}
	if gws[0].Sources != SrcTraceroute|SrcDNS {
		t.Fatalf("sources = %s", gws[0].Sources)
	}
}

func TestGatewayMergeUnifiesTwoRecords(t *testing.T) {
	j := New()
	// Two separately discovered gateways turn out to be one machine.
	g1 := j.StoreGateway(GatewayObs{IfaceIPs: []pkt.IP{pkt.IPv4(10, 0, 1, 1)}, Source: SrcTraceroute, At: at(0)})
	g2 := j.StoreGateway(GatewayObs{IfaceIPs: []pkt.IP{pkt.IPv4(10, 0, 2, 1)}, Source: SrcTraceroute, At: at(1)})
	if g1 == g2 {
		t.Fatal("distinct interfaces should start as distinct gateways")
	}
	j.StoreGateway(GatewayObs{IfaceIPs: []pkt.IP{pkt.IPv4(10, 0, 1, 1), pkt.IPv4(10, 0, 2, 1)}, Source: SrcCorrelation, At: at(2)})
	gws := j.Gateways()
	if len(gws) != 1 {
		t.Fatalf("after unifying evidence, gateways = %d, want 1", len(gws))
	}
	// Both interface records must point at the surviving gateway.
	for _, ip := range []pkt.IP{pkt.IPv4(10, 0, 1, 1), pkt.IPv4(10, 0, 2, 1)} {
		recs := j.Interfaces(Query{ByIP: ip, HasIP: true})
		if len(recs) != 1 || recs[0].Gateway != gws[0].ID {
			t.Fatalf("interface %s gateway = %d, want %d", ip, recs[0].Gateway, gws[0].ID)
		}
	}
}

func TestGatewaySubnetLinks(t *testing.T) {
	j := New()
	sn1, _ := pkt.ParseSubnet("10.0.1.0/24")
	sn2, _ := pkt.ParseSubnet("10.0.2.0/24")
	gwID := j.StoreGateway(GatewayObs{
		IfaceIPs: []pkt.IP{pkt.IPv4(10, 0, 1, 1)},
		Subnets:  []pkt.Subnet{sn1, sn2},
		Source:   SrcTraceroute, At: at(0),
	})
	subnets := j.Subnets()
	if len(subnets) != 2 {
		t.Fatalf("subnets = %d, want 2", len(subnets))
	}
	for _, sn := range subnets {
		if len(sn.Gateways) != 1 || sn.Gateways[0] != gwID {
			t.Fatalf("subnet %s gateways = %v", sn.Subnet, sn.Gateways)
		}
	}
}

func TestSubnetMerge(t *testing.T) {
	j := New()
	sn, _ := pkt.ParseSubnet("10.0.5.0/24")
	// RIP sees it first (no mask knowledge in RIP-1 — stored with mask).
	id1 := j.StoreSubnet(SubnetObs{Subnet: pkt.Subnet{Addr: sn.Addr}, Metric: 3, Source: SrcRIP, At: at(0)})
	// DNS adds occupancy; ICMP mask module adds the mask.
	id2 := j.StoreSubnet(SubnetObs{Subnet: sn, HostCount: 42,
		LoAddr: pkt.IPv4(10, 0, 5, 1), HiAddr: pkt.IPv4(10, 0, 5, 99), Source: SrcDNS, At: at(1)})
	if id1 != id2 {
		t.Fatal("subnet observations did not merge")
	}
	rec, ok := j.SubnetByAddr(sn.Addr)
	if !ok {
		t.Fatal("subnet not found")
	}
	if rec.Subnet.Mask != pkt.MaskBits(24) || rec.HostCount != 42 || rec.RIPMetric != 3 {
		t.Fatalf("rec = %+v", rec)
	}
	if rec.Sources != SrcRIP|SrcDNS {
		t.Fatalf("sources = %s", rec.Sources)
	}
	// A better RIP metric wins; a worse one does not.
	j.StoreSubnet(SubnetObs{Subnet: sn, Metric: 2, Source: SrcRIP, At: at(2)})
	j.StoreSubnet(SubnetObs{Subnet: sn, Metric: 9, Source: SrcRIP, At: at(3)})
	rec, _ = j.SubnetByAddr(sn.Addr)
	if rec.RIPMetric != 2 {
		t.Fatalf("RIPMetric = %d, want 2", rec.RIPMetric)
	}
}

func TestModificationOrder(t *testing.T) {
	j := New()
	for i := 1; i <= 3; i++ {
		j.StoreInterface(IfaceObs{IP: pkt.IPv4(10, 0, 0, byte(i)), Source: SrcICMP, At: at(i)})
	}
	// Touch the first record again: it must move to the tail.
	j.StoreInterface(IfaceObs{IP: pkt.IPv4(10, 0, 0, 1), Source: SrcARP, At: at(10)})
	recent := j.RecentInterfaces(0)
	if len(recent) != 3 {
		t.Fatalf("list has %d entries", len(recent))
	}
	last := recent[len(recent)-1]
	if last.IP != pkt.IPv4(10, 0, 0, 1) {
		t.Fatalf("most recently modified = %s, want 10.0.0.1", last.IP)
	}
}

func TestDeleteInterface(t *testing.T) {
	j := New()
	id, _ := j.StoreInterface(IfaceObs{IP: pkt.IPv4(10, 0, 0, 1), HasMAC: true, MAC: mac(1),
		Name: "x.example", Source: SrcARP, At: at(0)})
	gwID := j.StoreGateway(GatewayObs{IfaceIPs: []pkt.IP{pkt.IPv4(10, 0, 0, 1)}, Source: SrcDNS, At: at(1)})
	if !j.Delete(KindInterface, id) {
		t.Fatal("delete failed")
	}
	if j.Delete(KindInterface, id) {
		t.Fatal("double delete succeeded")
	}
	if len(j.Interfaces(Query{ByIP: pkt.IPv4(10, 0, 0, 1), HasIP: true})) != 0 {
		t.Fatal("deleted record still queryable by IP")
	}
	if len(j.Interfaces(Query{ByMAC: mac(1), HasMAC: true})) != 0 {
		t.Fatal("deleted record still queryable by MAC")
	}
	if len(j.Interfaces(Query{ByName: "x.example"})) != 0 {
		t.Fatal("deleted record still queryable by name")
	}
	gw, _ := j.Gateway(gwID)
	if len(gw.Ifaces) != 0 {
		t.Fatal("gateway still references deleted interface")
	}
}

func TestDeleteGateway(t *testing.T) {
	j := New()
	sn, _ := pkt.ParseSubnet("10.0.1.0/24")
	gwID := j.StoreGateway(GatewayObs{IfaceIPs: []pkt.IP{pkt.IPv4(10, 0, 1, 1)},
		Subnets: []pkt.Subnet{sn}, Source: SrcTraceroute, At: at(0)})
	if !j.Delete(KindGateway, gwID) {
		t.Fatal("delete failed")
	}
	recs := j.Interfaces(Query{ByIP: pkt.IPv4(10, 0, 1, 1), HasIP: true})
	if recs[0].Gateway != 0 {
		t.Fatal("interface still points at deleted gateway")
	}
	snRec, _ := j.SubnetByAddr(sn.Addr)
	if len(snRec.Gateways) != 0 {
		t.Fatal("subnet still references deleted gateway")
	}
}

func TestDeleteSubnet(t *testing.T) {
	j := New()
	sn, _ := pkt.ParseSubnet("10.0.1.0/24")
	id := j.StoreSubnet(SubnetObs{Subnet: sn, Source: SrcRIP, At: at(0)})
	if !j.Delete(KindSubnet, id) {
		t.Fatal("delete failed")
	}
	if _, ok := j.SubnetByAddr(sn.Addr); ok {
		t.Fatal("deleted subnet still queryable")
	}
}

func TestClonesAreIsolated(t *testing.T) {
	j := New()
	id, _ := j.StoreInterface(IfaceObs{IP: pkt.IPv4(10, 0, 0, 1), Source: SrcICMP, At: at(0)})
	rec, _ := j.Interface(id)
	rec.Name = "mutated"
	rec.Aliases = append(rec.Aliases, "junk")
	fresh, _ := j.Interface(id)
	if fresh.Name == "mutated" || len(fresh.Aliases) != 0 {
		t.Fatal("journal internals leaked through query results")
	}
}

func TestFootprintScales(t *testing.T) {
	// The paper's sizing example: a 25% full class B (16k interfaces) with
	// 192 subnets and 192 gateways fits in under four megabytes.
	j := New()
	base := pkt.IPv4(128, 138, 0, 0)
	for i := 0; i < 16384; i++ {
		ip := base + pkt.IP(i)
		j.StoreInterface(IfaceObs{IP: ip, HasMAC: true,
			MAC:  pkt.MAC{8, 0, 0x20, byte(i >> 16), byte(i >> 8), byte(i)},
			Name: "host" + itoa(i) + ".colorado.edu", Source: SrcARP | SrcDNS, At: at(i % 60)})
	}
	for s := 0; s < 192; s++ {
		sn := pkt.SubnetOf(base+pkt.IP(s*256), pkt.MaskBits(24))
		j.StoreSubnet(SubnetObs{Subnet: sn, GatewayIPs: []pkt.IP{sn.FirstHost()}, Source: SrcRIP, At: at(s)})
	}
	f := j.MeasureFootprint()
	// 16384 hosts plus the gateway addresses outside the host range.
	if f.Interfaces < 16384 || f.Subnets != 192 || f.Gateways != 192 {
		t.Fatalf("counts = %+v", f)
	}
	// Modern Go structs are fatter than 1993 C structs, but the shape must
	// hold: interfaces dominate, and the whole journal is small (< 16 MB
	// gives us 4x headroom over the paper's 4 MB while preserving shape).
	if f.PerInterface() <= f.PerGateway() || f.PerGateway() <= f.PerSubnet()/2 {
		t.Logf("per-record: if=%d gw=%d sn=%d", f.PerInterface(), f.PerGateway(), f.PerSubnet())
	}
	if f.Total() > 16<<20 {
		t.Fatalf("journal footprint %d bytes exceeds 16 MB", f.Total())
	}
	t.Logf("footprint: %d interfaces @ %d B, %d gateways @ %d B, %d subnets @ %d B, total %.2f MB",
		f.Interfaces, f.PerInterface(), f.Gateways, f.PerGateway(), f.Subnets, f.PerSubnet(),
		float64(f.Total())/(1<<20))
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// Property test: any interleaving of observations keeps indexes and
// records consistent.
func TestQuickIndexConsistency(t *testing.T) {
	f := func(ops []uint16) bool {
		j := New()
		for i, op := range ops {
			ip := pkt.IPv4(10, 0, byte(op>>8), byte(op))
			switch op % 3 {
			case 0:
				j.StoreInterface(IfaceObs{IP: ip, Source: SrcICMP, At: at(i)})
			case 1:
				j.StoreInterface(IfaceObs{IP: ip, HasMAC: true, MAC: mac(byte(op >> 4)), Source: SrcARP, At: at(i)})
			case 2:
				recs := j.Interfaces(Query{ByIP: ip, HasIP: true})
				if len(recs) > 0 {
					j.Delete(KindInterface, recs[0].ID)
				}
			}
		}
		// Every record must be findable through the IP index, and every
		// index entry must point at a live record.
		all := j.Interfaces(Query{})
		for _, rec := range all {
			byIP := j.Interfaces(Query{ByIP: rec.IP, HasIP: true})
			found := false
			for _, r := range byIP {
				if r.ID == rec.ID {
					found = true
				}
			}
			if !found {
				return false
			}
			if !rec.MAC.IsZero() {
				byMAC := j.Interfaces(Query{ByMAC: rec.MAC, HasMAC: true})
				found = false
				for _, r := range byMAC {
					if r.ID == rec.ID {
						found = true
					}
				}
				if !found {
					return false
				}
			}
		}
		return len(all) == j.NumInterfaces()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkStoreInterface(b *testing.B) {
	j := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		j.StoreInterface(IfaceObs{IP: pkt.IP(i), HasMAC: true,
			MAC:    pkt.MAC{8, 0, 0x20, byte(i >> 16), byte(i >> 8), byte(i)},
			Source: SrcARP, At: t0})
	}
}

func BenchmarkQueryByIP(b *testing.B) {
	j := New()
	for i := 0; i < 1<<14; i++ {
		j.StoreInterface(IfaceObs{IP: pkt.IP(i), Source: SrcICMP, At: t0})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j.Interfaces(Query{ByIP: pkt.IP(i & (1<<14 - 1)), HasIP: true})
	}
}
