package journal

// Restore functions insert fully-formed records (from a Journal Server
// snapshot) without merge processing. Records should be restored in
// modification order, oldest first, so the modification lists rebuild
// correctly. Each restored record is stamped with a fresh ModSeq (wire
// encodings do not carry sequence numbers); restoring in modification
// order therefore reproduces ascending lists. Call AdvanceSeq with the
// snapshot's saved counter before restoring so the fresh stamps land
// above any cursor issued by the previous incarnation.

// RestoreInterface inserts rec verbatim.
func (j *Journal) RestoreInterface(rec *InterfaceRec) {
	j.mu.Lock()
	defer j.mu.Unlock()
	r := rec.clone()
	r.ModSeq = j.nextSeq()
	j.ifRecs[r.ID] = r
	j.indexIP(r)
	if !r.MAC.IsZero() {
		j.indexMAC(r)
	}
	if r.Name != "" {
		j.indexName(r)
	}
	j.ifList.pushBack(&r.list, r)
	if r.ID > j.nextIface {
		j.nextIface = r.ID
	}
}

// RestoreGateway inserts rec verbatim.
func (j *Journal) RestoreGateway(rec *GatewayRec) {
	j.mu.Lock()
	defer j.mu.Unlock()
	r := rec.clone()
	r.ModSeq = j.nextSeq()
	j.gwRecs[r.ID] = r
	j.gwList.pushBack(&r.list, r)
	if r.ID > j.nextGw {
		j.nextGw = r.ID
	}
}

// RestoreSubnet inserts rec verbatim.
func (j *Journal) RestoreSubnet(rec *SubnetRec) {
	j.mu.Lock()
	defer j.mu.Unlock()
	r := rec.clone()
	r.ModSeq = j.nextSeq()
	j.snRecs[r.ID] = r
	j.snByAddr.Put(r.Subnet.Addr, r.ID)
	j.snList.pushBack(&r.list, r)
	if r.ID > j.nextSn {
		j.nextSn = r.ID
	}
}
