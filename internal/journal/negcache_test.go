package journal

import (
	"testing"

	"fremont/internal/netsim/pkt"
)

func TestNegativeObservationDoesNotCreateRecord(t *testing.T) {
	j := New()
	id, created := j.StoreInterface(IfaceObs{
		IP: pkt.IPv4(10, 0, 0, 1), MaskProbeFailed: true,
		Source: SrcICMP, At: at(0),
	})
	if created || id != 0 {
		t.Fatalf("negative observation created record %d", id)
	}
	if j.NumInterfaces() != 0 {
		t.Fatal("journal grew from a negative observation")
	}
}

func TestNegativeObservationCountsAgainstKnownRecord(t *testing.T) {
	j := New()
	ip := pkt.IPv4(10, 0, 0, 1)
	id, _ := j.StoreInterface(IfaceObs{IP: ip, HasMAC: true, MAC: mac(1), Source: SrcARP, At: at(0)})
	for i := 0; i < 3; i++ {
		j.StoreInterface(IfaceObs{IP: ip, MaskProbeFailed: true, Source: SrcICMP, At: at(i + 1)})
	}
	rec, _ := j.Interface(id)
	if rec.MaskProbeFails != 3 {
		t.Fatalf("MaskProbeFails = %d, want 3", rec.MaskProbeFails)
	}
	// Crucially, failures must NOT look like verification of existence.
	if rec.Stamp.Verified != at(0) {
		t.Fatalf("negative observation bumped Verified to %v", rec.Stamp.Verified)
	}
	// A real mask reply clears the negative cache.
	j.StoreInterface(IfaceObs{IP: ip, HasMask: true, Mask: pkt.MaskBits(24), Source: SrcICMP, At: at(10)})
	rec, _ = j.Interface(id)
	if rec.MaskProbeFails != 0 {
		t.Fatalf("MaskProbeFails = %d after successful reply, want 0", rec.MaskProbeFails)
	}
	if rec.Mask != pkt.MaskBits(24) {
		t.Fatalf("mask = %s", rec.Mask)
	}
}

func TestQuestionableGatewayLifecycle(t *testing.T) {
	j := New()
	ip1 := pkt.IPv4(10, 0, 1, 1)
	// Weak evidence: a lone -gw name.
	gwID := j.StoreGateway(GatewayObs{IfaceIPs: []pkt.IP{ip1}, Questionable: true,
		Source: SrcDNS, At: at(0)})
	gw, _ := j.Gateway(gwID)
	if !gw.Questionable {
		t.Fatal("weak-heuristic gateway not tagged questionable")
	}
	// Re-observing weakly keeps the tag.
	j.StoreGateway(GatewayObs{IfaceIPs: []pkt.IP{ip1}, Questionable: true, Source: SrcDNS, At: at(1)})
	gw, _ = j.Gateway(gwID)
	if !gw.Questionable {
		t.Fatal("questionable tag lost on weak re-observation")
	}
	// Strong evidence (traceroute) clears it.
	j.StoreGateway(GatewayObs{IfaceIPs: []pkt.IP{ip1}, Source: SrcTraceroute, At: at(2)})
	gw, _ = j.Gateway(gwID)
	if gw.Questionable {
		t.Fatal("strong evidence did not clear the questionable tag")
	}
}

func TestQuestionableMergeSemantics(t *testing.T) {
	j := New()
	// A strong gateway and a questionable one merge into one machine:
	// the merged record is trusted.
	j.StoreGateway(GatewayObs{IfaceIPs: []pkt.IP{pkt.IPv4(10, 0, 1, 1)},
		Source: SrcTraceroute, At: at(0)})
	j.StoreGateway(GatewayObs{IfaceIPs: []pkt.IP{pkt.IPv4(10, 0, 2, 1)},
		Questionable: true, Source: SrcDNS, At: at(1)})
	j.StoreGateway(GatewayObs{
		IfaceIPs: []pkt.IP{pkt.IPv4(10, 0, 1, 1), pkt.IPv4(10, 0, 2, 1)},
		Source:   SrcCorrelation, At: at(2)})
	gws := j.Gateways()
	if len(gws) != 1 {
		t.Fatalf("gateways = %d, want 1", len(gws))
	}
	if gws[0].Questionable {
		t.Fatal("merge with strong record left questionable tag set")
	}
}

func TestRecentlyModifiedLimit(t *testing.T) {
	j := New()
	for i := 1; i <= 10; i++ {
		j.StoreInterface(IfaceObs{IP: pkt.IPv4(10, 0, 0, byte(i)), Source: SrcICMP, At: at(i)})
	}
	recent := j.RecentInterfaces(3)
	if len(recent) != 3 {
		t.Fatalf("limit ignored: %d", len(recent))
	}
	// The tail is the most recently modified.
	if last := recent[2]; last.IP != pkt.IPv4(10, 0, 0, 10) {
		t.Fatalf("tail = %s", last.IP)
	}
	if got := j.RecentGateways(0); len(got) != 0 {
		t.Fatalf("empty journal returned gateways: %v", got)
	}
}
