package journal

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"fremont/internal/netsim/pkt"
)

// TestConcurrentJournalAccess hammers the journal from several goroutines
// mixing stores, queries, and deletes — run under -race in CI — then checks
// the index invariants: every index entry points at a live record whose
// field matches the index key, every live record is reachable from its
// indexes, and the modification lists hold exactly the live records.
func TestConcurrentJournalAccess(t *testing.T) {
	j := New()
	at := time.Date(1993, 1, 25, 8, 0, 0, 0, time.UTC)

	const goroutines = 8
	const iters = 300
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g + 1)))
			mac := pkt.MAC{8, 0, 0x20, 0, 0, byte(g + 1)}
			for i := 0; i < iters; i++ {
				// Overlapping IPs across goroutines, distinct MACs: this
				// exercises the conflict path (same IP, different hardware)
				// as well as plain merges.
				ip := pkt.IPv4(10, 0, byte(rng.Intn(4)), byte(rng.Intn(32)))
				switch rng.Intn(10) {
				case 0, 1, 2, 3:
					obs := IfaceObs{IP: ip, Source: SrcICMP, At: at.Add(time.Duration(i) * time.Second)}
					if rng.Intn(2) == 0 {
						obs.HasMAC, obs.MAC = true, mac
					}
					if rng.Intn(3) == 0 {
						obs.Name = "host.example"
					}
					j.StoreInterface(obs)
				case 4:
					sn := pkt.SubnetOf(ip, pkt.MaskBits(24))
					j.StoreGateway(GatewayObs{IfaceIPs: []pkt.IP{ip}, Subnets: []pkt.Subnet{sn}, Source: SrcTraceroute, At: at})
				case 5:
					sn := pkt.SubnetOf(ip, pkt.MaskBits(24))
					j.StoreSubnet(SubnetObs{Subnet: sn, Metric: rng.Intn(5) + 1, Source: SrcRIP, At: at})
				case 6:
					// Delete a record found through the public query path.
					recs := j.Interfaces(Query{ByIP: ip, HasIP: true})
					if len(recs) > 0 {
						j.Delete(KindInterface, recs[rng.Intn(len(recs))].ID)
					}
				case 7:
					j.Interfaces(Query{ByName: "host.example"})
					j.Gateways()
					j.Subnets()
				case 8:
					j.RecentInterfaces(10)
					j.NumInterfaces()
					j.StatsSnapshot()
					// Cursor-paged reads interleave with the mutations above;
					// the race detector gates the per-page locking.
					j.ScanInterfaces(ID(rng.Intn(64)), 8, Query{})
					j.ScanGateways(0, 4)
					j.ScanSubnets(0, 4)
				case 9:
					j.Interfaces(Query{HasRange: true, IPLo: pkt.IPv4(10, 0, 0, 0), IPHi: pkt.IPv4(10, 0, 4, 0)})
					j.Export()
					j.InterfaceChanges(uint64(rng.Intn(100)), 8)
					j.GatewayChanges(0, 4)
					j.SubnetChanges(0, 4)
				}
			}
		}(g)
	}
	wg.Wait()

	checkIndexInvariants(t, j)
}

// checkIndexInvariants validates the journal's internal cross-references
// after the dust settles (single-threaded, no lock needed).
func checkIndexInvariants(t *testing.T, j *Journal) {
	t.Helper()

	// Every index entry points at a live record whose field matches the key.
	seenByIP := map[ID]bool{}
	j.ifByIP.Ascend(func(ip pkt.IP, ids []ID) bool {
		if len(ids) == 0 {
			t.Errorf("empty by-IP bucket for %s", ip)
		}
		for _, id := range ids {
			rec, ok := j.ifRecs[id]
			if !ok {
				t.Errorf("by-IP index %s holds dangling ID %d", ip, id)
				continue
			}
			if rec.IP != ip {
				t.Errorf("by-IP index %s holds record %d with IP %s", ip, id, rec.IP)
			}
			seenByIP[id] = true
		}
		return true
	})
	j.ifByMAC.Ascend(func(mac pkt.MAC, ids []ID) bool {
		for _, id := range ids {
			rec, ok := j.ifRecs[id]
			if !ok {
				t.Errorf("by-MAC index %s holds dangling ID %d", mac, id)
				continue
			}
			if rec.MAC != mac {
				t.Errorf("by-MAC index %s holds record %d with MAC %s", mac, id, rec.MAC)
			}
		}
		return true
	})
	j.ifByName.Ascend(func(name string, ids []ID) bool {
		for _, id := range ids {
			rec, ok := j.ifRecs[id]
			if !ok {
				t.Errorf("by-name index %q holds dangling ID %d", name, id)
				continue
			}
			if rec.Name != name {
				t.Errorf("by-name index %q holds record %d named %q", name, id, rec.Name)
			}
		}
		return true
	})
	j.snByAddr.Ascend(func(addr pkt.IP, id ID) bool {
		rec, ok := j.snRecs[id]
		if !ok {
			t.Errorf("subnet index %s holds dangling ID %d", addr, id)
			return true
		}
		if rec.Subnet.Addr != addr {
			t.Errorf("subnet index %s holds record %d at %s", addr, id, rec.Subnet.Addr)
		}
		return true
	})

	// Every live record is reachable from its indexes.
	for id, rec := range j.ifRecs {
		if !seenByIP[id] {
			t.Errorf("record %d (%s) missing from by-IP index", id, rec.IP)
		}
		if !rec.MAC.IsZero() {
			ids, _ := j.ifByMAC.Get(rec.MAC)
			if !containsID(ids, id) {
				t.Errorf("record %d missing from by-MAC index %s", id, rec.MAC)
			}
		}
		if rec.Name != "" {
			ids, _ := j.ifByName.Get(rec.Name)
			if !containsID(ids, id) {
				t.Errorf("record %d missing from by-name index %q", id, rec.Name)
			}
		}
	}

	// The modification lists hold exactly the live records.
	if n := j.ifList.len(); n != len(j.ifRecs) {
		t.Errorf("interface list has %d entries, map has %d", n, len(j.ifRecs))
	}
	if n := j.gwList.len(); n != len(j.gwRecs) {
		t.Errorf("gateway list has %d entries, map has %d", n, len(j.gwRecs))
	}
	if n := j.snList.len(); n != len(j.snRecs) {
		t.Errorf("subnet list has %d entries, map has %d", n, len(j.snRecs))
	}
	j.ifList.each(func(owner any) bool {
		rec := owner.(*InterfaceRec)
		if j.ifRecs[rec.ID] != rec {
			t.Errorf("interface list entry %d is not the live record", rec.ID)
		}
		return true
	})

	// Gateway membership is bidirectional.
	for id, gw := range j.gwRecs {
		for _, ifID := range gw.Ifaces {
			rec, ok := j.ifRecs[ifID]
			if !ok {
				continue // interface was deleted; detach is one-way by design
			}
			if rec.Gateway != 0 && rec.Gateway != id {
				if _, live := j.gwRecs[rec.Gateway]; !live {
					t.Errorf("interface %d points at dead gateway %d", ifID, rec.Gateway)
				}
			}
		}
	}
}
