package journal

// Export returns deep copies of every record, each kind in modification
// order (oldest first), all taken under a single read lock so a snapshot
// sees one consistent point in time — concurrent stores cannot interleave
// between the three walks.
func (j *Journal) Export() (ifs []*InterfaceRec, gws []*GatewayRec, sns []*SubnetRec) {
	ifs, gws, sns, _ = j.ExportSeq()
	return ifs, gws, sns
}

// ExportSeq is Export plus the journal's modification sequence counter,
// captured under the same read lock so the counter covers exactly the
// exported records. Snapshots persist the counter so a restored journal
// can advance past it (see AdvanceSeq).
func (j *Journal) ExportSeq() (ifs []*InterfaceRec, gws []*GatewayRec, sns []*SubnetRec, seq uint64) {
	j.mu.RLock()
	defer j.mu.RUnlock()
	ifs = make([]*InterfaceRec, 0, j.ifList.len())
	j.ifList.each(func(owner any) bool {
		ifs = append(ifs, owner.(*InterfaceRec).clone())
		return true
	})
	gws = make([]*GatewayRec, 0, j.gwList.len())
	j.gwList.each(func(owner any) bool {
		gws = append(gws, owner.(*GatewayRec).clone())
		return true
	})
	sns = make([]*SubnetRec, 0, j.snList.len())
	j.snList.each(func(owner any) bool {
		sns = append(sns, owner.(*SubnetRec).clone())
		return true
	})
	return ifs, gws, sns, j.modSeq
}
