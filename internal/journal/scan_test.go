package journal

import (
	"sync"
	"testing"
	"time"

	"fremont/internal/netsim/pkt"
)

func seedIfaces(j *Journal, n int) {
	at := time.Date(1993, 1, 25, 8, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		j.StoreInterface(IfaceObs{
			IP:     pkt.IPv4(10, byte(i/(250*250)), byte((i/250)%250), byte(i%250+1)),
			Source: SrcICMP,
			At:     at.Add(time.Duration(i) * time.Second),
		})
	}
}

func TestScanPagesEveryRecordOnce(t *testing.T) {
	j := New()
	seedIfaces(j, 137) // deliberately not a multiple of the page size

	seen := map[ID]bool{}
	var cursor ID
	pages := 0
	for {
		recs, next, more := j.ScanInterfaces(cursor, 16, Query{})
		pages++
		var last ID = cursor
		for _, r := range recs {
			if r.ID <= last {
				t.Fatalf("page not ascending: %d after %d", r.ID, last)
			}
			last = r.ID
			if seen[r.ID] {
				t.Fatalf("record %d returned twice", r.ID)
			}
			seen[r.ID] = true
		}
		cursor = next
		if !more {
			break
		}
	}
	if len(seen) != 137 {
		t.Fatalf("scan returned %d records, want 137", len(seen))
	}
	if pages < 9 {
		t.Fatalf("scan used %d pages for 137 records at limit 16", pages)
	}
}

func TestScanSkipsDeleted(t *testing.T) {
	j := New()
	seedIfaces(j, 20)
	for id := ID(2); id <= 20; id += 2 {
		if !j.Delete(KindInterface, id) {
			t.Fatalf("delete %d failed", id)
		}
	}
	recs, _, more := j.ScanInterfaces(0, 0, Query{})
	if more {
		t.Fatal("small journal reported more pages")
	}
	if len(recs) != 10 {
		t.Fatalf("scan returned %d records, want the 10 live ones", len(recs))
	}
	for _, r := range recs {
		if r.ID%2 == 0 {
			t.Fatalf("deleted record %d returned", r.ID)
		}
	}
}

func TestScanFilterCountsAgainstLimit(t *testing.T) {
	// Filtered-out records count against the page budget (bounding the
	// read-lock hold), so a selective filter may legally return an empty
	// page with more=true; the cursor must still advance.
	j := New()
	seedIfaces(j, 64)
	q := Query{HasIP: true, ByIP: pkt.IPv4(10, 0, 0, 60)}
	var cursor ID
	var matched int
	for {
		recs, next, more := j.ScanInterfaces(cursor, 16, q)
		if next <= cursor && more {
			t.Fatalf("cursor did not advance: %d -> %d", cursor, next)
		}
		matched += len(recs)
		cursor = next
		if !more {
			break
		}
	}
	if matched != 1 {
		t.Fatalf("filter matched %d records, want 1", matched)
	}
}

func TestScanGatewaysAndSubnets(t *testing.T) {
	j := New()
	at := time.Date(1993, 1, 25, 8, 0, 0, 0, time.UTC)
	for i := 0; i < 5; i++ {
		sn := pkt.SubnetOf(pkt.IPv4(10, 0, byte(i), 0), pkt.MaskBits(24))
		j.StoreSubnet(SubnetObs{Subnet: sn, Source: SrcRIP, At: at})
		j.StoreGateway(GatewayObs{
			IfaceIPs: []pkt.IP{pkt.IPv4(10, 0, byte(i), 1)},
			Subnets:  []pkt.Subnet{sn},
			Source:   SrcTraceroute,
			At:       at,
		})
	}
	gws, _, more := j.ScanGateways(0, 2)
	if len(gws) != 2 || !more {
		t.Fatalf("gateway page: %d records, more=%v", len(gws), more)
	}
	sns, _, more := j.ScanSubnets(0, 0)
	if len(sns) != 5 || more {
		t.Fatalf("subnet scan: %d records, more=%v", len(sns), more)
	}
}

func TestChangesSinceOrderAndCursor(t *testing.T) {
	j := New()
	seedIfaces(j, 10)

	// Everything from the beginning, oldest change first.
	recs, next, more := j.InterfaceChanges(0, 0)
	if len(recs) != 10 || more {
		t.Fatalf("changes from 0: %d records, more=%v", len(recs), more)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].ModSeq <= recs[i-1].ModSeq {
			t.Fatalf("changes not in mod order: seq %d after %d", recs[i].ModSeq, recs[i-1].ModSeq)
		}
	}
	if next != recs[len(recs)-1].ModSeq {
		t.Fatalf("cursor %d, want last ModSeq %d", next, recs[len(recs)-1].ModSeq)
	}

	// The cursor makes an unchanged journal answer with an empty page.
	recs, next2, more := j.InterfaceChanges(next, 0)
	if len(recs) != 0 || more || next2 != next {
		t.Fatalf("unchanged journal: %d records, more=%v, cursor %d->%d", len(recs), more, next, next2)
	}

	// A re-verification moves the record to the tail with a fresh seq; the
	// cursor picks up exactly that one record.
	at := time.Date(1993, 1, 26, 8, 0, 0, 0, time.UTC)
	j.StoreInterface(IfaceObs{IP: pkt.IPv4(10, 0, 0, 3), Source: SrcICMP, At: at})
	recs, _, _ = j.InterfaceChanges(next, 0)
	if len(recs) != 1 || recs[0].IP != pkt.IPv4(10, 0, 0, 3) {
		t.Fatalf("after one touch: %v", recs)
	}
}

func TestChangesPaging(t *testing.T) {
	j := New()
	seedIfaces(j, 25)
	var after uint64
	var got int
	for {
		recs, next, more := j.InterfaceChanges(after, 10)
		got += len(recs)
		if next < after {
			t.Fatalf("cursor went backwards: %d -> %d", after, next)
		}
		after = next
		if !more {
			break
		}
	}
	if got != 25 {
		t.Fatalf("paged changes returned %d records, want 25", got)
	}
}

// TestScanCursorStableUnderMutation pages through the journal with a small
// page size while writers churn records, and checks the cursor contract:
// no record is returned twice, pages stay ID-ascending, and every record
// that existed before the scan began and was never deleted is seen.
// Run under -race in CI.
func TestScanCursorStableUnderMutation(t *testing.T) {
	j := New()
	const seeded = 400
	seedIfaces(j, seeded)
	at := time.Date(1993, 1, 25, 8, 0, 0, 0, time.UTC)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // churn: re-verify seeded records and insert new ones
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			j.StoreInterface(IfaceObs{ // touches an existing record
				IP:     pkt.IPv4(10, 0, byte((i/250)%2), byte(i%250+1)),
				Source: SrcARP,
				At:     at.Add(time.Duration(i) * time.Minute),
			})
			j.StoreInterface(IfaceObs{ // creates a new record
				IP:     pkt.IPv4(172, 16, byte(i/250), byte(i%250+1)),
				Source: SrcICMP,
				At:     at,
			})
			i++
		}
	}()

	seen := map[ID]bool{}
	var cursor ID
	for {
		recs, next, more := j.ScanInterfaces(cursor, 7, Query{})
		last := cursor
		for _, r := range recs {
			if r.ID <= last {
				t.Fatalf("page not ascending under mutation: %d after %d", r.ID, last)
			}
			last = r.ID
			if seen[r.ID] {
				t.Fatalf("record %d returned twice under mutation", r.ID)
			}
			seen[r.ID] = true
		}
		cursor = next
		if !more {
			break
		}
	}
	close(stop)
	wg.Wait()

	for id := ID(1); id <= seeded; id++ {
		if !seen[id] {
			t.Fatalf("seeded record %d missed by scan", id)
		}
	}
}

// TestChangesCursorNeverSkips follows the change stream while a writer
// mutates, then drains after the writer stops: the follower must end up
// having observed every record at its final modification sequence — the
// property replication correctness rests on. Run under -race in CI.
func TestChangesCursorNeverSkips(t *testing.T) {
	j := New()
	at := time.Date(1993, 1, 25, 8, 0, 0, 0, time.UTC)

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer: creates and re-touches records
		defer wg.Done()
		defer close(done)
		for i := 0; i < 3000; i++ {
			j.StoreInterface(IfaceObs{
				IP:     pkt.IPv4(10, 1, byte((i/250)%4), byte(i%250+1)),
				Source: SrcICMP,
				At:     at.Add(time.Duration(i) * time.Second),
			})
		}
	}()

	seen := map[ID]uint64{} // record -> highest ModSeq observed
	var after uint64
	drain := func() {
		for {
			recs, next, more := j.InterfaceChanges(after, 32)
			for _, r := range recs {
				if r.ModSeq <= after {
					t.Errorf("change page leaked seq %d at cursor %d", r.ModSeq, after)
				}
				seen[r.ID] = r.ModSeq
			}
			after = next
			if !more {
				return
			}
		}
	}
	writerDone := false
	for !writerDone {
		select {
		case <-done:
			writerDone = true
		default:
		}
		drain()
	}
	wg.Wait()
	drain() // final catch-up after the last write

	for _, rec := range j.Interfaces(Query{}) {
		if seen[rec.ID] != rec.ModSeq {
			t.Fatalf("record %d: follower saw seq %d, journal at %d", rec.ID, seen[rec.ID], rec.ModSeq)
		}
	}
}

// BenchmarkScanVsExport contrasts the two ways to read a large journal:
// one cursor page (allocation proportional to the page) against a full
// Export (allocation proportional to the whole journal). Run with
// -benchmem: ScanPage allocations must stay flat as the journal grows,
// Export's must scale with it.
func BenchmarkScanVsExport(b *testing.B) {
	j := New()
	seedIfaces(j, 50_000)
	b.Run("ScanPage", func(b *testing.B) {
		b.ReportAllocs()
		var cursor ID
		for i := 0; i < b.N; i++ {
			_, next, more := j.ScanInterfaces(cursor, DefaultScanLimit, Query{})
			cursor = next
			if !more {
				cursor = 0
			}
		}
	})
	b.Run("Export", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ifs, _, _ := j.Export()
			if len(ifs) != 50_000 {
				b.Fatalf("export returned %d records", len(ifs))
			}
		}
	})
}
