package journal

import (
	"sort"
	"strings"
	"sync"
	"time"

	"fremont/internal/avl"
	"fremont/internal/netsim/pkt"
	"fremont/internal/obs"
)

// Journal is the in-memory repository. It is safe for concurrent use: an
// internal read/write lock lets any number of queries proceed in parallel
// while mutations ("the Journal Server ... serializes updates, time-stamps
// and records the data") are serialized against them.
type Journal struct {
	mu sync.RWMutex

	ifRecs map[ID]*InterfaceRec
	gwRecs map[ID]*GatewayRec
	snRecs map[ID]*SubnetRec

	ifByIP   *avl.Tree[pkt.IP, []ID]
	ifByMAC  *avl.Tree[pkt.MAC, []ID]
	ifByName *avl.Tree[string, []ID]
	snByAddr *avl.Tree[pkt.IP, ID]

	ifList, gwList, snList modList

	nextIface, nextGw, nextSn ID

	// idOffset/idStride partition the ID space when the journal is one
	// shard of a fabric: IDs are allocated congruent to idOffset+1 modulo
	// idStride, so N shards with distinct offsets never collide and a
	// fabric-wide ID-ordered merge needs no translation. Zero values mean
	// dense allocation (the single-server default).
	idOffset, idStride ID

	// modSeq is the journal-wide modification sequence number. Every
	// mutation — including side effects like a gateway merge re-pointing
	// its member interfaces — increments it and stamps the new value onto
	// the mutated record, so each modification-ordered list is ascending
	// in ModSeq and ChangesSince can resume from any cursor without
	// skipping a change. Independent of the WAL LSN (which counts logged
	// frames, not per-record mutations).
	modSeq uint64

	// stats counts journal activity; guarded by the journal's lock. Read
	// it via StatsSnapshot.
	stats Stats

	// met optionally mirrors the stats counters into an obs registry;
	// nil until Instrument is called.
	met *statsMetrics
}

// statsMetrics holds obs counters mirroring Stats. The counters are
// atomic, so bumping them under the journal's write lock adds no ordering
// hazards.
type statsMetrics struct {
	stores, newRecords, merges, conflicts *obs.Counter
}

// Instrument mirrors the journal's activity counters into reg: every
// subsequent store bumps journal_stores_total and one of
// journal_new_records_total / journal_merges_total /
// journal_conflicts_total alongside the Stats fields.
func (j *Journal) Instrument(reg *obs.Registry) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.met = &statsMetrics{
		stores:     reg.Counter("journal_stores_total"),
		newRecords: reg.Counter("journal_new_records_total"),
		merges:     reg.Counter("journal_merges_total"),
		conflicts:  reg.Counter("journal_conflicts_total"),
	}
}

func (j *Journal) noteStore() {
	j.stats.Stores++
	if j.met != nil {
		j.met.stores.Inc()
	}
}

func (j *Journal) noteNewRecord() {
	j.stats.NewRecords++
	if j.met != nil {
		j.met.newRecords.Inc()
	}
}

func (j *Journal) noteMerge() {
	j.stats.Merges++
	if j.met != nil {
		j.met.merges.Inc()
	}
}

func (j *Journal) noteConflict() {
	j.stats.Conflicts++
	if j.met != nil {
		j.met.conflicts.Inc()
	}
}

// SetIDStride partitions the record-ID space for fabric sharding: every
// subsequently allocated ID is congruent to offset+1 modulo stride (shard
// 0 of 3 allocates 1, 4, 7, …; shard 1 allocates 2, 5, 8, …). Records a
// shard did not allocate route back to it by (id-1) mod stride, and a
// plain ID cursor works fabric-wide because shards draw from disjoint
// residue classes. Must be configured before the journal holds records;
// restoring a snapshot taken under the same stride preserves congruence
// automatically (advanceID realigns from any starting point).
func (j *Journal) SetIDStride(offset, stride ID) {
	if stride == 0 {
		stride = 1
	}
	if offset >= stride {
		panic("journal: SetIDStride offset must be < stride")
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if len(j.ifRecs)+len(j.gwRecs)+len(j.snRecs) != 0 {
		panic("journal: SetIDStride on a non-empty journal")
	}
	j.idOffset, j.idStride = offset, stride
}

// IDStride reports the allocation class set by SetIDStride; stride is 1
// for a dense (single-server) journal.
func (j *Journal) IDStride() (offset, stride ID) {
	j.mu.RLock()
	defer j.mu.RUnlock()
	if j.idStride <= 1 {
		return 0, 1
	}
	return j.idOffset, j.idStride
}

// RecordCount returns the number of live records of all kinds — the
// quantity tenant quotas meter.
func (j *Journal) RecordCount() int {
	j.mu.RLock()
	defer j.mu.RUnlock()
	return len(j.ifRecs) + len(j.gwRecs) + len(j.snRecs)
}

// advanceID returns the smallest ID greater than cur in this journal's
// allocation class (congruent to idOffset+1 mod idStride). With no stride
// configured it is cur+1.
func (j *Journal) advanceID(cur ID) ID {
	if j.idStride <= 1 {
		return cur + 1
	}
	v := cur + 1
	rem := (v - 1) % j.idStride
	if rem != j.idOffset {
		if j.idOffset > rem {
			v += j.idOffset - rem
		} else {
			v += j.idStride - (rem - j.idOffset)
		}
	}
	return v
}

// Stats counts store outcomes.
type Stats struct {
	Stores     int // observations applied
	NewRecords int
	Merges     int // observations folded into existing records
	Conflicts  int // observations that created a conflicting record
}

func cmpIP(a, b pkt.IP) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpMAC(a, b pkt.MAC) int {
	for i := range a {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// New returns an empty journal.
func New() *Journal {
	j := &Journal{
		ifRecs:   map[ID]*InterfaceRec{},
		gwRecs:   map[ID]*GatewayRec{},
		snRecs:   map[ID]*SubnetRec{},
		ifByIP:   avl.New[pkt.IP, []ID](cmpIP),
		ifByMAC:  avl.New[pkt.MAC, []ID](cmpMAC),
		ifByName: avl.New[string, []ID](strings.Compare),
		snByAddr: avl.New[pkt.IP, ID](cmpIP),
	}
	j.ifList.init()
	j.gwList.init()
	j.snList.init()
	return j
}

// NumInterfaces, NumGateways and NumSubnets report record counts.
func (j *Journal) NumInterfaces() int { j.mu.RLock(); defer j.mu.RUnlock(); return len(j.ifRecs) }
func (j *Journal) NumGateways() int   { j.mu.RLock(); defer j.mu.RUnlock(); return len(j.gwRecs) }
func (j *Journal) NumSubnets() int    { j.mu.RLock(); defer j.mu.RUnlock(); return len(j.snRecs) }

// StatsSnapshot returns the activity counters under the read lock, safe to
// call while other goroutines are storing.
func (j *Journal) StatsSnapshot() Stats { j.mu.RLock(); defer j.mu.RUnlock(); return j.stats }

// CurSeq returns the journal's current modification sequence number: the
// ModSeq of the most recent mutation, 0 for a journal never written to.
func (j *Journal) CurSeq() uint64 { j.mu.RLock(); defer j.mu.RUnlock(); return j.modSeq }

// AdvanceSeq raises the modification sequence counter to at least seq.
// Snapshot restore calls it with the saved journal's counter BEFORE
// restoring records, so restored records are stamped above any cursor a
// replication peer obtained from the previous incarnation — a stale cursor
// then re-transfers (safe, idempotent) rather than silently skipping.
func (j *Journal) AdvanceSeq(seq uint64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if seq > j.modSeq {
		j.modSeq = seq
	}
}

// nextSeq allocates the next modification sequence number; callers hold
// the write lock.
func (j *Journal) nextSeq() uint64 {
	j.modSeq++
	return j.modSeq
}

// touchIface, touchGateway and touchSubnet stamp a fresh ModSeq on the
// record and move it to the tail of its modification-ordered list. Every
// mutation of a live record must go through one of these (or the
// corresponding pushBack for creation) to keep the lists ascending in
// ModSeq.
func (j *Journal) touchIface(rec *InterfaceRec) {
	rec.ModSeq = j.nextSeq()
	j.ifList.touch(&rec.list)
}

func (j *Journal) touchGateway(rec *GatewayRec) {
	rec.ModSeq = j.nextSeq()
	j.gwList.touch(&rec.list)
}

func (j *Journal) touchSubnet(rec *SubnetRec) {
	rec.ModSeq = j.nextSeq()
	j.snList.touch(&rec.list)
}

// --- Interface observations --------------------------------------------

// IfaceObs is one module's sighting of an interface. Optional fields use
// Has* flags (a MAC of all zeroes is not a valid sighting).
type IfaceObs struct {
	IP             pkt.IP
	HasMAC         bool
	MAC            pkt.MAC
	Name           string
	HasMask        bool
	Mask           pkt.Mask
	RIPSource      bool
	RIPPromiscuous bool
	// MaskProbeFailed records a *negative* observation: a mask request to
	// an already-known interface went unanswered. Negative observations
	// never create records and never bump verification times.
	MaskProbeFailed bool
	Source          Source
	At              time.Time
}

// negative reports whether the observation carries no positive evidence of
// the interface's existence.
func (o IfaceObs) negative() bool {
	return o.MaskProbeFailed && !o.HasMAC && !o.HasMask && o.Name == "" &&
		!o.RIPSource && !o.RIPPromiscuous
}

// StoreInterface merges an observation into the journal, returning the
// record ID and whether a new record was created.
//
// Identity rules preserve the conflicts the analysis programs look for:
// an observation whose MAC disagrees with every record already holding its
// IP creates a NEW record (two hosts with the same network address, or a
// hardware change — "Multiple Ethernet addresses for a single IP address
// usually indicates a misconfigured host"), rather than silently
// overwriting history.
func (j *Journal) StoreInterface(obs IfaceObs) (ID, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.storeInterface(obs)
}

// storeInterface implements StoreInterface; callers hold the write lock.
func (j *Journal) storeInterface(obs IfaceObs) (ID, bool) {
	j.noteStore()
	var candidates []ID
	if ids, ok := j.ifByIP.Get(obs.IP); ok {
		candidates = ids
	}
	if obs.negative() {
		// Negative caching: count the failure against the most recently
		// verified record, if any; never create one.
		var rec *InterfaceRec
		for _, id := range candidates {
			r := j.ifRecs[id]
			if rec == nil || r.Stamp.Verified.After(rec.Stamp.Verified) {
				rec = r
			}
		}
		if rec == nil {
			return 0, false
		}
		rec.MaskProbeFails++
		j.touchIface(rec)
		return rec.ID, false
	}

	var rec *InterfaceRec
	if obs.HasMAC {
		var fillable *InterfaceRec
		for _, id := range candidates {
			r := j.ifRecs[id]
			if r.MAC == obs.MAC {
				rec = r
				break
			}
			if r.MAC.IsZero() && fillable == nil {
				fillable = r
			}
		}
		if rec == nil && fillable != nil {
			rec = fillable
			rec.MAC = obs.MAC
			rec.MACStamp = newStamp(obs.At)
			j.indexMAC(rec)
		}
		if rec == nil && len(candidates) > 0 {
			j.noteConflict() // same IP, different hardware: keep both
		}
	} else if len(candidates) > 0 {
		// No MAC in the observation: fold into the most recently verified
		// record for the address.
		for _, id := range candidates {
			r := j.ifRecs[id]
			if rec == nil || r.Stamp.Verified.After(rec.Stamp.Verified) {
				rec = r
			}
		}
	}

	created := false
	if rec == nil {
		created = true
		j.noteNewRecord()
		j.nextIface = j.advanceID(j.nextIface)
		rec = &InterfaceRec{ID: j.nextIface, IP: obs.IP, Stamp: newStamp(obs.At)}
		if obs.HasMAC {
			rec.MAC = obs.MAC
			rec.MACStamp = newStamp(obs.At)
			j.indexMAC(rec)
		}
		rec.ModSeq = j.nextSeq()
		j.ifRecs[rec.ID] = rec
		j.indexIP(rec)
		j.ifList.pushBack(&rec.list, rec)
	} else {
		j.noteMerge()
	}

	j.mergeIfaceFields(rec, obs)
	if !created {
		j.touchIface(rec)
	}
	return rec.ID, created
}

func (j *Journal) mergeIfaceFields(rec *InterfaceRec, obs IfaceObs) {
	at := obs.At
	rec.Sources |= obs.Source
	rec.Stamp.verify(at)
	if obs.HasMAC && rec.MAC == obs.MAC {
		rec.MACStamp.verify(at)
	}
	if obs.Name != "" {
		name := strings.ToLower(obs.Name)
		switch {
		case rec.Name == "":
			rec.Name = name
			rec.NameStamp = newStamp(at)
			j.indexName(rec)
		case rec.Name == name:
			rec.NameStamp.verify(at)
		default:
			// "multiple names for the same address"
			if !contains(rec.Aliases, name) {
				rec.Aliases = append(rec.Aliases, name)
				rec.NameStamp.change(at)
				rec.Stamp.change(at)
			}
		}
	}
	if obs.HasMask {
		rec.MaskProbeFails = 0 // a reply arrived: clear the negative cache
		switch {
		case rec.Mask == 0:
			rec.Mask = obs.Mask
			rec.MaskStamp = newStamp(at)
		case rec.Mask == obs.Mask:
			rec.MaskStamp.verify(at)
		default:
			rec.Mask = obs.Mask
			rec.MaskStamp.change(at)
			rec.Stamp.change(at)
		}
	}
	if obs.RIPSource {
		rec.RIPSource = true
	}
	if obs.RIPPromiscuous {
		rec.RIPPromiscuous = true
	}
}

func contains(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func (j *Journal) indexIP(rec *InterfaceRec) {
	ids, _ := j.ifByIP.Get(rec.IP)
	j.ifByIP.Put(rec.IP, append(ids, rec.ID))
}

func (j *Journal) indexMAC(rec *InterfaceRec) {
	ids, _ := j.ifByMAC.Get(rec.MAC)
	j.ifByMAC.Put(rec.MAC, append(ids, rec.ID))
}

func (j *Journal) indexName(rec *InterfaceRec) {
	ids, _ := j.ifByName.Get(rec.Name)
	j.ifByName.Put(rec.Name, append(ids, rec.ID))
}

// --- Gateway observations ----------------------------------------------

// GatewayObs asserts that a set of interface addresses (and/or subnets)
// belong to one gateway.
type GatewayObs struct {
	IfaceIPs []pkt.IP
	Subnets  []pkt.Subnet
	// Questionable marks weak-heuristic evidence (e.g. a lone "-gw" name).
	Questionable bool
	Source       Source
	At           time.Time
}

// StoreGateway merges gateway evidence. Interfaces named by IP are created
// if missing; existing gateways sharing any member interface are merged
// into one record (union of interfaces and subnets) — this is where
// evidence from Traceroute, DNS and ARP cross-correlation combines into a
// single gateway picture.
func (j *Journal) StoreGateway(obs GatewayObs) ID {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.storeGateway(obs)
}

// storeGateway implements StoreGateway; callers hold the write lock.
func (j *Journal) storeGateway(obs GatewayObs) ID {
	j.noteStore()
	var ifaceIDs []ID
	for _, ip := range obs.IfaceIPs {
		id, _ := j.storeInterface(IfaceObs{IP: ip, Source: obs.Source, At: obs.At})
		ifaceIDs = append(ifaceIDs, id)
	}

	// Collect every gateway already holding one of these interfaces.
	var touched []*GatewayRec
	seen := map[ID]bool{}
	for _, ifID := range ifaceIDs {
		if gwID := j.ifRecs[ifID].Gateway; gwID != 0 && !seen[gwID] {
			seen[gwID] = true
			touched = append(touched, j.gwRecs[gwID])
		}
	}

	var gw *GatewayRec
	if len(touched) == 0 {
		j.nextGw = j.advanceID(j.nextGw)
		gw = &GatewayRec{ID: j.nextGw, Questionable: obs.Questionable, Stamp: newStamp(obs.At)}
		gw.ModSeq = j.nextSeq()
		j.gwRecs[gw.ID] = gw
		j.gwList.pushBack(&gw.list, gw)
		j.noteNewRecord()
	} else {
		sort.Slice(touched, func(a, b int) bool { return touched[a].ID < touched[b].ID })
		gw = touched[0]
		for _, other := range touched[1:] {
			j.absorbGateway(gw, other, obs.At)
		}
		j.noteMerge()
		j.touchGateway(gw)
	}

	changed := false
	for _, ifID := range ifaceIDs {
		rec := j.ifRecs[ifID]
		if rec.Gateway != gw.ID {
			rec.Gateway = gw.ID
			rec.Stamp.change(obs.At)
			j.touchIface(rec)
		}
		if !containsID(gw.Ifaces, ifID) {
			gw.Ifaces = append(gw.Ifaces, ifID)
			changed = true
		}
	}
	for _, sn := range obs.Subnets {
		if !containsSubnet(gw.Subnets, sn) {
			gw.Subnets = append(gw.Subnets, sn)
			changed = true
		}
		snID := j.ensureSubnet(sn, obs.Source, obs.At)
		snRec := j.snRecs[snID]
		if !containsID(snRec.Gateways, gw.ID) {
			snRec.Gateways = append(snRec.Gateways, gw.ID)
			snRec.Stamp.change(obs.At)
			j.touchSubnet(snRec)
		}
	}
	gw.Sources |= obs.Source
	if !obs.Questionable {
		gw.Questionable = false // strong evidence clears the flag
	}
	if changed {
		gw.Stamp.change(obs.At)
	} else {
		gw.Stamp.verify(obs.At)
	}
	return gw.ID
}

// absorbGateway merges src into dst and deletes src. Every record mutated
// as a side effect — re-pointed member interfaces and subnets — is stamped
// and touched, so an incremental reader resuming from any cursor sees the
// re-pointing.
func (j *Journal) absorbGateway(dst, src *GatewayRec, at time.Time) {
	for _, ifID := range src.Ifaces {
		if !containsID(dst.Ifaces, ifID) {
			dst.Ifaces = append(dst.Ifaces, ifID)
		}
		if rec := j.ifRecs[ifID]; rec.Gateway != dst.ID {
			rec.Gateway = dst.ID
			j.touchIface(rec)
		}
	}
	for _, sn := range src.Subnets {
		if !containsSubnet(dst.Subnets, sn) {
			dst.Subnets = append(dst.Subnets, sn)
		}
	}
	dst.Sources |= src.Sources
	dst.Questionable = dst.Questionable && src.Questionable
	if src.Stamp.Discovered.Before(dst.Stamp.Discovered) {
		dst.Stamp.Discovered = src.Stamp.Discovered
	}
	dst.Stamp.change(at)
	// Re-point subnet records at the surviving gateway.
	for _, sn := range j.snRecs {
		repointed := false
		for i, gid := range sn.Gateways {
			if gid == src.ID {
				sn.Gateways[i] = dst.ID
				repointed = true
			}
		}
		if repointed {
			sn.Gateways = dedupIDs(sn.Gateways)
			j.touchSubnet(sn)
		}
	}
	j.gwList.remove(&src.list)
	delete(j.gwRecs, src.ID)
}

func containsID(s []ID, v ID) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func containsSubnet(s []pkt.Subnet, v pkt.Subnet) bool {
	for _, x := range s {
		if x.Addr == v.Addr {
			return true
		}
	}
	return false
}

func dedupIDs(s []ID) []ID {
	out := s[:0]
	seen := map[ID]bool{}
	for _, v := range s {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// --- Subnet observations -----------------------------------------------

// SubnetObs is a sighting of a subnet (from RIP, traceroute, or the DNS
// occupancy summary). A zero Mask means the mask is not yet known.
type SubnetObs struct {
	Subnet     pkt.Subnet
	GatewayIPs []pkt.IP
	Metric     int // RIP metric; 0 = not from RIP
	HostCount  int
	LoAddr     pkt.IP
	HiAddr     pkt.IP
	Source     Source
	At         time.Time
}

// StoreSubnet merges a subnet observation.
func (j *Journal) StoreSubnet(obs SubnetObs) ID {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.storeSubnet(obs)
}

// storeSubnet implements StoreSubnet; callers hold the write lock.
func (j *Journal) storeSubnet(obs SubnetObs) ID {
	j.noteStore()
	id := j.ensureSubnet(obs.Subnet, obs.Source, obs.At)
	rec := j.snRecs[id]
	changed := false
	if obs.Subnet.Mask != 0 {
		if rec.Subnet.Mask == 0 {
			rec.Subnet.Mask = obs.Subnet.Mask
			changed = true
		}
	}
	if obs.Metric > 0 && (rec.RIPMetric == 0 || obs.Metric < rec.RIPMetric) {
		rec.RIPMetric = obs.Metric
		changed = true
	}
	if obs.HostCount > 0 && obs.HostCount != rec.HostCount {
		rec.HostCount = obs.HostCount
		rec.LoAddr, rec.HiAddr = obs.LoAddr, obs.HiAddr
		changed = true
	}
	for _, gwIP := range obs.GatewayIPs {
		gwID := j.storeGateway(GatewayObs{IfaceIPs: []pkt.IP{gwIP}, Source: obs.Source, At: obs.At})
		if !containsID(rec.Gateways, gwID) {
			rec.Gateways = append(rec.Gateways, gwID)
			changed = true
		}
	}
	rec.Sources |= obs.Source
	if changed {
		rec.Stamp.change(obs.At)
	} else {
		rec.Stamp.verify(obs.At)
	}
	j.touchSubnet(rec)
	return id
}

func (j *Journal) ensureSubnet(sn pkt.Subnet, src Source, at time.Time) ID {
	if id, ok := j.snByAddr.Get(sn.Addr); ok {
		rec := j.snRecs[id]
		rec.Sources |= src
		rec.Stamp.verify(at)
		j.touchSubnet(rec)
		return id
	}
	j.nextSn = j.advanceID(j.nextSn)
	rec := &SubnetRec{ID: j.nextSn, Subnet: sn, Sources: src, Stamp: newStamp(at)}
	rec.ModSeq = j.nextSeq()
	j.snRecs[rec.ID] = rec
	j.snByAddr.Put(sn.Addr, rec.ID)
	j.snList.pushBack(&rec.list, rec)
	j.noteNewRecord()
	return rec.ID
}

// --- Queries ------------------------------------------------------------

// Query selects records. Zero-valued criteria are ignored; multiple
// criteria are conjunctive. The Get request of the Journal Server protocol
// carries exactly this struct.
type Query struct {
	Kind          RecordKind
	ByID          ID // exact record ID lookup
	HasID         bool
	ByIP          pkt.IP // exact IP (interfaces) or subnet address (subnets)
	HasIP         bool
	ByMAC         pkt.MAC
	HasMAC        bool
	ByName        string
	IPLo, IPHi    pkt.IP // half-open range scan on the IP index
	HasRange      bool
	ModifiedSince time.Time
}

// Indexed reports whether the query names an index criterion (so a remote
// client should use the indexed Get path rather than a paged scan).
func (q Query) Indexed() bool {
	return q.HasID || q.HasIP || q.HasMAC || q.ByName != "" || q.HasRange
}

// Interfaces returns deep copies of matching interface records, ordered by
// record ID.
func (j *Journal) Interfaces(q Query) []*InterfaceRec {
	j.mu.RLock()
	defer j.mu.RUnlock()
	// The index buckets are shared between concurrent readers: always
	// accumulate into a fresh slice, since the sort below mutates it.
	var ids []ID
	switch {
	case q.HasID:
		if _, ok := j.ifRecs[q.ByID]; ok {
			ids = append(ids, q.ByID)
		}
	case q.HasIP:
		bucket, _ := j.ifByIP.Get(q.ByIP)
		ids = append(ids, bucket...)
	case q.HasMAC:
		bucket, _ := j.ifByMAC.Get(q.ByMAC)
		ids = append(ids, bucket...)
	case q.ByName != "":
		bucket, _ := j.ifByName.Get(strings.ToLower(q.ByName))
		ids = append(ids, bucket...)
	case q.HasRange:
		j.ifByIP.AscendRange(q.IPLo, q.IPHi, func(_ pkt.IP, bucket []ID) bool {
			ids = append(ids, bucket...)
			return true
		})
	default:
		for id := range j.ifRecs {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	var out []*InterfaceRec
	for _, id := range ids {
		rec, ok := j.ifRecs[id]
		if !ok {
			continue
		}
		if !q.ModifiedSince.IsZero() && rec.Stamp.Changed.Before(q.ModifiedSince) && rec.Stamp.Verified.Before(q.ModifiedSince) {
			continue
		}
		out = append(out, rec.clone())
	}
	return out
}

// Interface returns a copy of the record with the given ID.
func (j *Journal) Interface(id ID) (*InterfaceRec, bool) {
	j.mu.RLock()
	defer j.mu.RUnlock()
	rec, ok := j.ifRecs[id]
	if !ok {
		return nil, false
	}
	return rec.clone(), true
}

// Gateways returns copies of all gateway records, ordered by ID.
func (j *Journal) Gateways() []*GatewayRec {
	j.mu.RLock()
	defer j.mu.RUnlock()
	ids := make([]ID, 0, len(j.gwRecs))
	for id := range j.gwRecs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	out := make([]*GatewayRec, 0, len(ids))
	for _, id := range ids {
		out = append(out, j.gwRecs[id].clone())
	}
	return out
}

// Gateway returns a copy of the record with the given ID.
func (j *Journal) Gateway(id ID) (*GatewayRec, bool) {
	j.mu.RLock()
	defer j.mu.RUnlock()
	rec, ok := j.gwRecs[id]
	if !ok {
		return nil, false
	}
	return rec.clone(), true
}

// Subnets returns copies of all subnet records, ordered by subnet address.
func (j *Journal) Subnets() []*SubnetRec {
	j.mu.RLock()
	defer j.mu.RUnlock()
	var out []*SubnetRec
	j.snByAddr.Ascend(func(_ pkt.IP, id ID) bool {
		out = append(out, j.snRecs[id].clone())
		return true
	})
	return out
}

// SubnetByAddr returns a copy of the subnet record for addr.
func (j *Journal) SubnetByAddr(addr pkt.IP) (*SubnetRec, bool) {
	j.mu.RLock()
	defer j.mu.RUnlock()
	id, ok := j.snByAddr.Get(addr)
	if !ok {
		return nil, false
	}
	return j.snRecs[id].clone(), true
}

// RecentInterfaces returns up to n interface records, most recently
// modified last — a walk of the modification-ordered list. n <= 0 means
// all. RecentGateways and RecentSubnets do the same for their kinds.
func (j *Journal) RecentInterfaces(n int) []*InterfaceRec {
	j.mu.RLock()
	defer j.mu.RUnlock()
	all := make([]*InterfaceRec, 0, j.ifList.len())
	j.ifList.each(func(owner any) bool {
		all = append(all, owner.(*InterfaceRec))
		return true
	})
	if n > 0 && len(all) > n {
		all = all[len(all)-n:]
	}
	out := make([]*InterfaceRec, len(all))
	for i, r := range all {
		out[i] = r.clone()
	}
	return out
}

// RecentGateways: see RecentInterfaces.
func (j *Journal) RecentGateways(n int) []*GatewayRec {
	j.mu.RLock()
	defer j.mu.RUnlock()
	all := make([]*GatewayRec, 0, j.gwList.len())
	j.gwList.each(func(owner any) bool {
		all = append(all, owner.(*GatewayRec))
		return true
	})
	if n > 0 && len(all) > n {
		all = all[len(all)-n:]
	}
	out := make([]*GatewayRec, len(all))
	for i, r := range all {
		out[i] = r.clone()
	}
	return out
}

// RecentSubnets: see RecentInterfaces.
func (j *Journal) RecentSubnets(n int) []*SubnetRec {
	j.mu.RLock()
	defer j.mu.RUnlock()
	all := make([]*SubnetRec, 0, j.snList.len())
	j.snList.each(func(owner any) bool {
		all = append(all, owner.(*SubnetRec))
		return true
	})
	if n > 0 && len(all) > n {
		all = all[len(all)-n:]
	}
	out := make([]*SubnetRec, len(all))
	for i, r := range all {
		out[i] = r.clone()
	}
	return out
}

// --- Delete -------------------------------------------------------------

// Delete removes a record. Deleting an interface detaches it from its
// gateway; deleting a gateway detaches its interfaces and subnets.
func (j *Journal) Delete(kind RecordKind, id ID) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch kind {
	case KindInterface:
		rec, ok := j.ifRecs[id]
		if !ok {
			return false
		}
		if rec.Gateway != 0 {
			if gw, ok := j.gwRecs[rec.Gateway]; ok {
				before := len(gw.Ifaces)
				gw.Ifaces = removeID(gw.Ifaces, id)
				if len(gw.Ifaces) != before {
					j.touchGateway(gw)
				}
			}
		}
		j.unindexInterface(rec)
		j.ifList.remove(&rec.list)
		delete(j.ifRecs, id)
		return true
	case KindGateway:
		gw, ok := j.gwRecs[id]
		if !ok {
			return false
		}
		for _, ifID := range gw.Ifaces {
			if rec, ok := j.ifRecs[ifID]; ok && rec.Gateway == id {
				rec.Gateway = 0
				j.touchIface(rec)
			}
		}
		for _, sn := range j.snRecs {
			before := len(sn.Gateways)
			sn.Gateways = removeID(sn.Gateways, id)
			if len(sn.Gateways) != before {
				j.touchSubnet(sn)
			}
		}
		j.gwList.remove(&gw.list)
		delete(j.gwRecs, id)
		return true
	case KindSubnet:
		sn, ok := j.snRecs[id]
		if !ok {
			return false
		}
		j.snByAddr.Delete(sn.Subnet.Addr)
		j.snList.remove(&sn.list)
		delete(j.snRecs, id)
		return true
	}
	return false
}

func (j *Journal) unindexInterface(rec *InterfaceRec) {
	if ids, ok := j.ifByIP.Get(rec.IP); ok {
		if ids = removeID(ids, rec.ID); len(ids) == 0 {
			j.ifByIP.Delete(rec.IP)
		} else {
			j.ifByIP.Put(rec.IP, ids)
		}
	}
	if !rec.MAC.IsZero() {
		if ids, ok := j.ifByMAC.Get(rec.MAC); ok {
			if ids = removeID(ids, rec.ID); len(ids) == 0 {
				j.ifByMAC.Delete(rec.MAC)
			} else {
				j.ifByMAC.Put(rec.MAC, ids)
			}
		}
	}
	if rec.Name != "" {
		if ids, ok := j.ifByName.Get(rec.Name); ok {
			if ids = removeID(ids, rec.ID); len(ids) == 0 {
				j.ifByName.Delete(rec.Name)
			} else {
				j.ifByName.Put(rec.Name, ids)
			}
		}
	}
}

func removeID(s []ID, v ID) []ID {
	out := s[:0]
	for _, x := range s {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}
