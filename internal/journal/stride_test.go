package journal

import (
	"testing"

	"fremont/internal/netsim/pkt"
)

// TestIDStride checks striped allocation: a journal configured as stripe
// i of n only ever hands out IDs congruent to i+1 mod n, across all
// three record kinds, so fabric shards draw from disjoint ID classes.
func TestIDStride(t *testing.T) {
	const n = 3
	for stripe := ID(0); stripe < n; stripe++ {
		j := New()
		j.SetIDStride(stripe, n)
		var ids []ID
		for k := 0; k < 5; k++ {
			id, _ := j.StoreInterface(IfaceObs{IP: pkt.IP(0x0a000001 + uint32(k))})
			ids = append(ids, id)
		}
		gwID := j.StoreGateway(GatewayObs{IfaceIPs: []pkt.IP{0x0a000001}})
		snID := j.StoreSubnet(SubnetObs{Subnet: pkt.Subnet{Addr: 0x0a000000, Mask: 0xffffff00}})
		ids = append(ids, gwID, snID)
		for _, id := range ids {
			if (id-1)%n != stripe {
				t.Errorf("stripe %d/%d allocated ID %d (congruent to %d)", stripe, n, id, (id-1)%n)
			}
		}
		// Consecutive interface IDs advance by exactly the stride.
		for k := 1; k < 5; k++ {
			if ids[k] != ids[k-1]+n {
				t.Errorf("stripe %d: interface IDs %v not stride-%d consecutive", stripe, ids[:5], n)
			}
		}
	}
}

// TestIDStrideAfterRestore checks that restoring records re-aligns the
// allocator: the next allocation after a restore stays in the stripe's
// congruence class even though restored IDs raised the high-water mark.
func TestIDStrideAfterRestore(t *testing.T) {
	src := New()
	src.SetIDStride(1, 3) // IDs 2, 5, 8, ...
	for k := 0; k < 4; k++ {
		src.StoreInterface(IfaceObs{IP: pkt.IP(0x0a000001 + uint32(k))})
	}
	recs := src.Interfaces(Query{})

	dst := New()
	dst.SetIDStride(1, 3)
	for _, rec := range recs {
		dst.RestoreInterface(rec)
	}
	id, _ := dst.StoreInterface(IfaceObs{IP: 0x0a0000ff})
	if (id-1)%3 != 1 {
		t.Fatalf("post-restore allocation %d left stripe 1 (mod 3)", id)
	}
	if id <= recs[len(recs)-1].ID {
		t.Fatalf("post-restore allocation %d did not advance past restored max %d", id, recs[len(recs)-1].ID)
	}
}

func TestIDStrideGuards(t *testing.T) {
	j := New()
	j.StoreInterface(IfaceObs{IP: 0x0a000001})
	mustPanic(t, "stride on non-empty journal", func() { j.SetIDStride(0, 3) })
	mustPanic(t, "offset >= stride", func() { New().SetIDStride(3, 3) })
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}
