package journal

// listNode threads a record onto its kind's modification-ordered list.
// The paper: "Each record is stored in a linked list for that type of
// data. The lists are ordered by time of last modification, so that the
// most recently changed items are at the end of the list."
type listNode struct {
	prev, next *listNode
	owner      any // the record containing this node
}

// modList is an intrusive doubly-linked list with a sentinel head.
type modList struct {
	head listNode
	n    int
}

func (l *modList) init() {
	l.head.prev = &l.head
	l.head.next = &l.head
	l.n = 0
}

// pushBack appends node (most recently modified position).
func (l *modList) pushBack(node *listNode, owner any) {
	node.owner = owner
	node.prev = l.head.prev
	node.next = &l.head
	l.head.prev.next = node
	l.head.prev = node
	l.n++
}

// remove unlinks node.
func (l *modList) remove(node *listNode) {
	if node.prev == nil {
		return // not linked
	}
	node.prev.next = node.next
	node.next.prev = node.prev
	node.prev, node.next = nil, nil
	l.n--
}

// touch moves node to the back (record was just modified).
func (l *modList) touch(node *listNode) {
	owner := node.owner
	l.remove(node)
	l.pushBack(node, owner)
}

// each walks the list oldest-modified first.
func (l *modList) each(fn func(owner any) bool) {
	for n := l.head.next; n != &l.head; n = n.next {
		if !fn(n.owner) {
			return
		}
	}
}

// eachAfter walks, oldest first, the suffix of the list whose owners have
// seq(owner) > after. Because the list is ascending in modification
// sequence, the suffix is located by walking backward from the tail —
// O(suffix length), O(1) when nothing changed since `after`.
func (l *modList) eachAfter(after uint64, seq func(owner any) uint64, fn func(owner any) bool) {
	n := l.head.prev
	for n != &l.head && seq(n.owner) > after {
		n = n.prev
	}
	// n is the sentinel or the newest node at-or-below the cursor; the
	// changed suffix begins just after it.
	for n = n.next; n != &l.head; n = n.next {
		if !fn(n.owner) {
			return
		}
	}
}

func (l *modList) len() int { return l.n }
