package journal

// Sink is the interface Explorer Modules, the Discovery Manager, and the
// analysis/presentation programs use to talk to a Journal. It is satisfied
// both by Local (an in-process journal, used by the simulation harness) and
// by the Journal Server client in package jclient (a TCP connection, used
// when components are deployed as separate processes — "all modules
// communicate via BSD sockets, [so] there are no restrictions about the
// physical location of individual modules").
type Sink interface {
	StoreInterface(IfaceObs) (ID, bool, error)
	StoreGateway(GatewayObs) (ID, error)
	StoreSubnet(SubnetObs) (ID, error)
	Interfaces(Query) ([]*InterfaceRec, error)
	Gateways() ([]*GatewayRec, error)
	Subnets() ([]*SubnetRec, error)
	Delete(RecordKind, ID) (bool, error)
}

// Local adapts an in-process Journal to the Sink interface.
type Local struct{ J *Journal }

var _ Sink = Local{}

// StoreInterface implements Sink.
func (l Local) StoreInterface(obs IfaceObs) (ID, bool, error) {
	id, created := l.J.StoreInterface(obs)
	return id, created, nil
}

// StoreGateway implements Sink.
func (l Local) StoreGateway(obs GatewayObs) (ID, error) { return l.J.StoreGateway(obs), nil }

// StoreSubnet implements Sink.
func (l Local) StoreSubnet(obs SubnetObs) (ID, error) { return l.J.StoreSubnet(obs), nil }

// Interfaces implements Sink.
func (l Local) Interfaces(q Query) ([]*InterfaceRec, error) { return l.J.Interfaces(q), nil }

// Gateways implements Sink.
func (l Local) Gateways() ([]*GatewayRec, error) { return l.J.Gateways(), nil }

// Subnets implements Sink.
func (l Local) Subnets() ([]*SubnetRec, error) { return l.J.Subnets(), nil }

// Delete implements Sink.
func (l Local) Delete(kind RecordKind, id ID) (bool, error) { return l.J.Delete(kind, id), nil }
