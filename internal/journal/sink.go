package journal

// Sink is the interface Explorer Modules, the Discovery Manager, and the
// analysis/presentation programs use to talk to a Journal. It is satisfied
// both by Local (an in-process journal, used by the simulation harness) and
// by the Journal Server client in package jclient (a TCP connection, used
// when components are deployed as separate processes — "all modules
// communicate via BSD sockets, [so] there are no restrictions about the
// physical location of individual modules").
type Sink interface {
	StoreInterface(IfaceObs) (ID, bool, error)
	StoreGateway(GatewayObs) (ID, error)
	StoreSubnet(SubnetObs) (ID, error)
	Interfaces(Query) ([]*InterfaceRec, error)
	Gateways() ([]*GatewayRec, error)
	Subnets() ([]*SubnetRec, error)
	Delete(RecordKind, ID) (bool, error)
}

// Scanner is the cursor-paged read interface: each call returns one page
// in ascending record-ID order plus the cursor to resume from and whether
// more records may remain. Satisfied by Local and by the jclient types
// (which fetch pages over the wire via OpScan).
type Scanner interface {
	ScanInterfaces(cursor ID, limit int, q Query) ([]*InterfaceRec, ID, bool, error)
	ScanGateways(cursor ID, limit int) ([]*GatewayRec, ID, bool, error)
	ScanSubnets(cursor ID, limit int) ([]*SubnetRec, ID, bool, error)
}

// Changer is the incremental read interface: records mutated after a
// modification sequence cursor, oldest change first. Satisfied by Local
// and the jclient types (OpChanges on the wire); replication pulls are
// built on it.
type Changer interface {
	InterfaceChanges(after uint64, limit int) ([]*InterfaceRec, uint64, bool, error)
	GatewayChanges(after uint64, limit int) ([]*GatewayRec, uint64, bool, error)
	SubnetChanges(after uint64, limit int) ([]*SubnetRec, uint64, bool, error)
}

// Local adapts an in-process Journal to the Sink interface.
type Local struct{ J *Journal }

var (
	_ Sink    = Local{}
	_ Scanner = Local{}
	_ Changer = Local{}
)

// StoreInterface implements Sink.
func (l Local) StoreInterface(obs IfaceObs) (ID, bool, error) {
	id, created := l.J.StoreInterface(obs)
	return id, created, nil
}

// StoreGateway implements Sink.
func (l Local) StoreGateway(obs GatewayObs) (ID, error) { return l.J.StoreGateway(obs), nil }

// StoreSubnet implements Sink.
func (l Local) StoreSubnet(obs SubnetObs) (ID, error) { return l.J.StoreSubnet(obs), nil }

// Interfaces implements Sink.
func (l Local) Interfaces(q Query) ([]*InterfaceRec, error) { return l.J.Interfaces(q), nil }

// Gateways implements Sink.
func (l Local) Gateways() ([]*GatewayRec, error) { return l.J.Gateways(), nil }

// Subnets implements Sink.
func (l Local) Subnets() ([]*SubnetRec, error) { return l.J.Subnets(), nil }

// Delete implements Sink.
func (l Local) Delete(kind RecordKind, id ID) (bool, error) { return l.J.Delete(kind, id), nil }

// ScanInterfaces implements Scanner.
func (l Local) ScanInterfaces(cursor ID, limit int, q Query) ([]*InterfaceRec, ID, bool, error) {
	recs, next, more := l.J.ScanInterfaces(cursor, limit, q)
	return recs, next, more, nil
}

// ScanGateways implements Scanner.
func (l Local) ScanGateways(cursor ID, limit int) ([]*GatewayRec, ID, bool, error) {
	recs, next, more := l.J.ScanGateways(cursor, limit)
	return recs, next, more, nil
}

// ScanSubnets implements Scanner.
func (l Local) ScanSubnets(cursor ID, limit int) ([]*SubnetRec, ID, bool, error) {
	recs, next, more := l.J.ScanSubnets(cursor, limit)
	return recs, next, more, nil
}

// InterfaceChanges implements Changer.
func (l Local) InterfaceChanges(after uint64, limit int) ([]*InterfaceRec, uint64, bool, error) {
	recs, next, more := l.J.InterfaceChanges(after, limit)
	return recs, next, more, nil
}

// GatewayChanges implements Changer.
func (l Local) GatewayChanges(after uint64, limit int) ([]*GatewayRec, uint64, bool, error) {
	recs, next, more := l.J.GatewayChanges(after, limit)
	return recs, next, more, nil
}

// SubnetChanges implements Changer.
func (l Local) SubnetChanges(after uint64, limit int) ([]*SubnetRec, uint64, bool, error) {
	recs, next, more := l.J.SubnetChanges(after, limit)
	return recs, next, more, nil
}

// EachInterface streams interface records matching q to fn, one page at a
// time when s supports cursor scans (bounded memory, one lock hold per
// page) and via a single full query otherwise. Records arrive in
// ascending ID order. fn returning an error stops the walk.
func EachInterface(s Sink, q Query, fn func(*InterfaceRec) error) error {
	if sc, ok := s.(Scanner); ok && !q.Indexed() {
		var cursor ID
		for {
			page, next, more, err := sc.ScanInterfaces(cursor, 0, q)
			if err != nil {
				return err
			}
			for _, rec := range page {
				if err := fn(rec); err != nil {
					return err
				}
			}
			if !more {
				return nil
			}
			cursor = next
		}
	}
	recs, err := s.Interfaces(q)
	if err != nil {
		return err
	}
	for _, rec := range recs {
		if err := fn(rec); err != nil {
			return err
		}
	}
	return nil
}

// EachGateway streams all gateway records to fn in ascending ID order:
// see EachInterface.
func EachGateway(s Sink, fn func(*GatewayRec) error) error {
	if sc, ok := s.(Scanner); ok {
		var cursor ID
		for {
			page, next, more, err := sc.ScanGateways(cursor, 0)
			if err != nil {
				return err
			}
			for _, rec := range page {
				if err := fn(rec); err != nil {
					return err
				}
			}
			if !more {
				return nil
			}
			cursor = next
		}
	}
	recs, err := s.Gateways()
	if err != nil {
		return err
	}
	for _, rec := range recs {
		if err := fn(rec); err != nil {
			return err
		}
	}
	return nil
}

// EachSubnet streams all subnet records to fn: see EachInterface. Paged
// walks arrive in ascending ID order; the fallback uses Subnets(), which
// orders by subnet address — callers that need a particular order must
// sort.
func EachSubnet(s Sink, fn func(*SubnetRec) error) error {
	if sc, ok := s.(Scanner); ok {
		var cursor ID
		for {
			page, next, more, err := sc.ScanSubnets(cursor, 0)
			if err != nil {
				return err
			}
			for _, rec := range page {
				if err := fn(rec); err != nil {
					return err
				}
			}
			if !more {
				return nil
			}
			cursor = next
		}
	}
	recs, err := s.Subnets()
	if err != nil {
		return err
	}
	for _, rec := range recs {
		if err := fn(rec); err != nil {
			return err
		}
	}
	return nil
}
