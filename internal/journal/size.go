package journal

import "reflect"

// Footprint estimates the journal's in-memory storage per record kind, in
// bytes, for comparison against the paper's Table 2 (Interface 200 B,
// Gateway 84 B, Subnet 76 B on 1993 SPARC hardware). The estimate counts
// struct sizes plus the variable-length members (names, member-ID slices)
// and an amortized share of the index nodes.
type Footprint struct {
	InterfaceBytes int // total across all interface records + indexes
	GatewayBytes   int
	SubnetBytes    int
	Interfaces     int
	Gateways       int
	Subnets        int
}

// PerInterface returns average bytes per interface record.
func (f Footprint) PerInterface() int { return avg(f.InterfaceBytes, f.Interfaces) }

// PerGateway returns average bytes per gateway record.
func (f Footprint) PerGateway() int { return avg(f.GatewayBytes, f.Gateways) }

// PerSubnet returns average bytes per subnet record.
func (f Footprint) PerSubnet() int { return avg(f.SubnetBytes, f.Subnets) }

// Total returns total journal bytes.
func (f Footprint) Total() int { return f.InterfaceBytes + f.GatewayBytes + f.SubnetBytes }

func avg(total, n int) int {
	if n == 0 {
		return 0
	}
	return total / n
}

var (
	ifaceStructSize  = int(reflect.TypeOf(InterfaceRec{}).Size())
	gwStructSize     = int(reflect.TypeOf(GatewayRec{}).Size())
	subnetStructSize = int(reflect.TypeOf(SubnetRec{}).Size())
)

// avlNodeOverhead approximates one AVL index node (key + value slice header
// + two child pointers + height, rounded to allocator granularity).
const avlNodeOverhead = 48

// MeasureFootprint walks the journal and estimates storage.
func (j *Journal) MeasureFootprint() Footprint {
	j.mu.RLock()
	defer j.mu.RUnlock()
	f := Footprint{
		Interfaces: len(j.ifRecs),
		Gateways:   len(j.gwRecs),
		Subnets:    len(j.snRecs),
	}
	for _, r := range j.ifRecs {
		n := ifaceStructSize + len(r.Name)
		for _, a := range r.Aliases {
			n += len(a) + 16 // string header
		}
		// Index share: one node in each tree that indexes this record.
		n += avlNodeOverhead // by-IP
		if !r.MAC.IsZero() {
			n += avlNodeOverhead
		}
		if r.Name != "" {
			n += avlNodeOverhead
		}
		f.InterfaceBytes += n
	}
	for _, r := range j.gwRecs {
		f.GatewayBytes += gwStructSize + len(r.Ifaces)*4 + len(r.Subnets)*8
	}
	for _, r := range j.snRecs {
		f.SubnetBytes += subnetStructSize + len(r.Gateways)*4 + avlNodeOverhead
	}
	return f
}
