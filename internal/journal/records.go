// Package journal implements Fremont's Journal: the central repository of
// discovered network information. Records represent interfaces, gateways,
// and subnets; every data item carries the date and time of its initial
// discovery, last change, and last verification, so network changes are
// easy to track ("we can see when hosts have been removed from the
// network").
//
// As in the paper, interface records are indexed by three AVL trees (by
// Ethernet address, IP address, and DNS name), subnet records by a fourth,
// and each record type is additionally threaded onto a linked list ordered
// by time of last modification, most recent at the tail.
package journal

import (
	"fmt"
	"time"

	"fremont/internal/netsim/pkt"
)

// Source identifies which information source produced an observation.
// Cross-correlation and data-quality decisions ("data gathered using the
// ARP protocol are generally timely and correct, whereas DNS data are older
// and often subject to data entry errors") key off these bits.
type Source uint8

const (
	SrcARP Source = 1 << iota
	SrcICMP
	SrcRIP
	SrcDNS
	SrcTraceroute
	SrcCorrelation
	// SrcTraffic marks observations from the promiscuous traffic monitor
	// (a Future Work extension module).
	SrcTraffic
)

// String lists the set bits.
func (s Source) String() string {
	names := []struct {
		bit  Source
		name string
	}{
		{SrcARP, "arp"}, {SrcICMP, "icmp"}, {SrcRIP, "rip"},
		{SrcDNS, "dns"}, {SrcTraceroute, "traceroute"}, {SrcCorrelation, "corr"},
		{SrcTraffic, "traffic"},
	}
	out := ""
	for _, n := range names {
		if s&n.bit != 0 {
			if out != "" {
				out += "+"
			}
			out += n.name
		}
	}
	if out == "" {
		return "none"
	}
	return out
}

// Stamp is the paper's per-data-item timestamp triple.
type Stamp struct {
	Discovered time.Time
	Changed    time.Time
	Verified   time.Time
}

// note initializes a stamp at first discovery.
func newStamp(at time.Time) Stamp {
	return Stamp{Discovered: at, Changed: at, Verified: at}
}

// verify bumps the verification time.
func (s *Stamp) verify(at time.Time) {
	if at.After(s.Verified) {
		s.Verified = at
	}
}

// change bumps change and verification times.
func (s *Stamp) change(at time.Time) {
	s.Changed = at
	s.verify(at)
}

// IsZero reports whether the stamp has never been set.
func (s Stamp) IsZero() bool { return s.Discovered.IsZero() }

// RecordKind discriminates the three record types.
type RecordKind uint8

const (
	KindInterface RecordKind = 1
	KindGateway   RecordKind = 2
	KindSubnet    RecordKind = 3
)

func (k RecordKind) String() string {
	switch k {
	case KindInterface:
		return "interface"
	case KindGateway:
		return "gateway"
	case KindSubnet:
		return "subnet"
	}
	return fmt.Sprintf("kind(%d)", k)
}

// ID identifies a record within its kind.
type ID uint32

// InterfaceRec is the paper's Table 1 record: MAC layer address, network
// layer address, DNS name, subnet mask, and the gateway to which the
// interface belongs. Identity fields carry their own stamps.
type InterfaceRec struct {
	ID   ID
	IP   pkt.IP
	MAC  pkt.MAC // zero if not yet known
	Name string  // DNS name; empty if unknown
	Mask pkt.Mask
	// Aliases collects additional DNS names seen for this address; the DNS
	// module's gateway heuristics look for matches within these groups.
	Aliases []string
	Gateway ID // gateway this interface belongs to (0 = none known)

	// RIPSource marks interfaces observed emitting RIP packets (shown at
	// the second presentation level). RIPPromiscuous marks sources the
	// RIPwatch module identified as promiscuously rebroadcasting learned
	// routes (a Table 8 problem).
	RIPSource      bool
	RIPPromiscuous bool
	// MaskProbeFails counts consecutive unanswered ICMP mask requests —
	// the paper's negative-caching idea ("a flag to prevent continually
	// retrying discovery of some datum that we know is unavailable",
	// "similar to the negative caching concept that has been suggested
	// for the DNS"). A successful mask reply resets it; the Discovery
	// Manager stops directing the SubnetMasks module at interfaces that
	// have failed repeatedly.
	MaskProbeFails int
	Sources        Source

	Stamp     Stamp // record-level: any field activity
	MACStamp  Stamp
	NameStamp Stamp
	MaskStamp Stamp

	// ModSeq is the journal-wide modification sequence number stamped on
	// the record by its most recent mutation. It is local journal state
	// (never serialized on the wire) and strictly ascending along the
	// modification-ordered list, so ChangesSince can resume from a cursor.
	ModSeq uint64

	list listNode
}

func (r *InterfaceRec) String() string {
	return fmt.Sprintf("if#%d %s mac=%s name=%q mask=%s src=%s", r.ID, r.IP, r.MAC, r.Name, r.Mask, r.Sources)
}

// clone returns a deep copy safe to hand outside the journal.
func (r *InterfaceRec) clone() *InterfaceRec {
	c := *r
	c.Aliases = append([]string(nil), r.Aliases...)
	c.list = listNode{}
	return &c
}

// GatewayRec represents a gateway as a collection of interfaces plus the
// subnets it is known to touch — "the Traceroute Explorer Module is able,
// in some cases, to determine the subnet to which a gateway is attached
// without being able to determine the address of the interface on that
// subnet."
type GatewayRec struct {
	ID      ID
	Ifaces  []ID
	Subnets []pkt.Subnet
	// Questionable tags gateways identified only by weak heuristics (a
	// lone "-gw" name with a single address) — the paper's footnote:
	// "tagging the resulting entries in the database with a 'questionable
	// quality' flag". Strong evidence (multiple interfaces, traceroute)
	// clears it.
	Questionable bool
	Sources      Source
	Stamp        Stamp

	// ModSeq: see InterfaceRec.ModSeq.
	ModSeq uint64

	list listNode
}

func (r *GatewayRec) String() string {
	return fmt.Sprintf("gw#%d ifaces=%d subnets=%d src=%s", r.ID, len(r.Ifaces), len(r.Subnets), r.Sources)
}

func (r *GatewayRec) clone() *GatewayRec {
	c := *r
	c.Ifaces = append([]ID(nil), r.Ifaces...)
	c.Subnets = append([]pkt.Subnet(nil), r.Subnets...)
	c.list = listNode{}
	return &c
}

// SubnetRec records a discovered subnet, the gateways attached to it, and
// the occupancy summary the DNS module reports ("the number of hosts on
// each subnet and the highest and lowest addresses assigned").
type SubnetRec struct {
	ID       ID
	Subnet   pkt.Subnet // Mask may be 0 when unknown
	Gateways []ID
	// Occupancy, from the DNS module.
	HostCount      int
	LoAddr, HiAddr pkt.IP
	// Best (lowest) RIP metric observed for the subnet.
	RIPMetric int
	Sources   Source
	Stamp     Stamp

	// ModSeq: see InterfaceRec.ModSeq.
	ModSeq uint64

	list listNode
}

func (r *SubnetRec) String() string {
	return fmt.Sprintf("subnet#%d %s gws=%d hosts=%d src=%s", r.ID, r.Subnet, len(r.Gateways), r.HostCount, r.Sources)
}

func (r *SubnetRec) clone() *SubnetRec {
	c := *r
	c.Gateways = append([]ID(nil), r.Gateways...)
	c.list = listNode{}
	return &c
}
