package core

import (
	"testing"
	"time"

	"fremont/internal/analysis"
	"fremont/internal/explorer"
	"fremont/internal/journal"
	"fremont/internal/netsim"
	"fremont/internal/netsim/campus"
	"fremont/internal/netsim/pkt"
)

func deptCfg(seed int64) campus.Config {
	cfg := campus.DefaultConfig()
	cfg.Seed = seed
	cfg.Chatter = false
	cfg.Liveness = false
	return cfg
}

func TestAdvanceToHour(t *testing.T) {
	sys := NewDepartmentSystem(deptCfg(201))
	sys.AdvanceToHour(14)
	if h := sys.Now().Hour(); h != 14 {
		t.Fatalf("hour = %d, want 14", h)
	}
	// Asking for the hour we're at must advance a full day, not zero.
	before := sys.Now()
	sys.AdvanceToHour(14)
	if d := sys.Now().Sub(before); d < 23*time.Hour || d > 25*time.Hour {
		t.Fatalf("re-advancing to same hour moved %v, want ~24h", d)
	}
	sys.AdvanceToHour(9)
	if h := sys.Now().Hour(); h != 9 {
		t.Fatalf("hour = %d, want 9", h)
	}
}

func TestRunModuleAndAnalyze(t *testing.T) {
	sys := NewDepartmentSystem(deptCfg(202))
	sys.Advance(5 * time.Minute)
	rep, err := sys.RunModule(explorer.EtherHostProbe{}, explorer.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Interfaces) < 40 {
		t.Fatalf("found %d interfaces", len(rep.Interfaces))
	}
	if sys.J.NumInterfaces() != len(rep.Interfaces) {
		t.Fatalf("journal %d vs report %d", sys.J.NumInterfaces(), len(rep.Interfaces))
	}
	ps, err := sys.Analyze(analysis.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 0 {
		t.Fatalf("clean department produced findings: %v", ps)
	}
}

func TestNetworkNumber(t *testing.T) {
	sys := NewDepartmentSystem(deptCfg(203))
	want := pkt.SubnetOf(pkt.IPv4(128, 138, 0, 0), pkt.MaskBits(16))
	if sys.Network() != want {
		t.Fatalf("Network() = %v, want %v", sys.Network(), want)
	}
}

// TestMultiVantageTraceroute verifies the paper's observation: one vantage
// point sees only the near-side interface of each gateway; adding a second
// vantage point on the far side of the network fills in interfaces the
// first could never see.
func TestMultiVantageTraceroute(t *testing.T) {
	cfg := deptCfg(204)
	sys := NewSystem(cfg)
	// The paper's premise — traceroute "will only discover half the
	// interfaces traversed" — holds on networks whose gateways do not
	// accept host-zero packets (common in the era); model that here so
	// the far sides are genuinely invisible from one vantage.
	for _, gw := range sys.Campus.Gateways {
		gw.TreatsHostZeroAsSelf = false
	}
	sys.Advance(5 * time.Minute)

	// RIP clues first (as the manager would).
	if _, err := sys.RunModule(explorer.RIPwatch{}, explorer.Params{Duration: 2 * time.Minute}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunModule(explorer.Tracerouter{}, explorer.Params{}); err != nil {
		t.Fatal(err)
	}
	// Count interfaces belonging to firmly-identified gateways (the
	// host-zero responders are tagged questionable and excluded).
	countGatewayIfaces := func() int {
		gws, _ := sys.Sink.Gateways()
		firm := map[journal.ID]bool{}
		for _, gw := range gws {
			if !gw.Questionable {
				firm[gw.ID] = true
			}
		}
		recs, _ := sys.Sink.Interfaces(journal.Query{})
		n := 0
		for _, r := range recs {
			if firm[r.Gateway] {
				n++
			}
		}
		return n
	}
	single := countGatewayIfaces()

	// Second vantage point: a host on a healthy department subnet far
	// from the CS wire.
	var vantage *netsim.Node
	for _, sn := range sys.Campus.Live {
		if sn.Addr == sys.Campus.Backbone.Addr || sn.Addr == sys.Campus.CSSubnet.Addr ||
			sys.Campus.SilentBehind[sn.Addr] {
			continue
		}
		if ifc := sys.Campus.Net.IfaceByIP(sn.Addr + 10); ifc != nil {
			vantage = ifc.Node
		}
	}
	if vantage == nil {
		t.Fatal("no far vantage host found")
	}
	if _, err := sys.RunModuleOn(vantage, explorer.Tracerouter{}, explorer.Params{}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Correlate(); err != nil {
		t.Fatal(err)
	}
	double := countGatewayIfaces()
	if double <= single {
		t.Fatalf("second vantage added nothing: %d -> %d gateway interfaces", single, double)
	}
	t.Logf("gateway interfaces: %d from one vantage, %d from two", single, double)
}

func TestManagerBatchViaFacade(t *testing.T) {
	cfg := deptCfg(205)
	cfg.CSHosts = 8
	sys := NewDepartmentSystem(cfg)
	sys.Advance(5 * time.Minute)
	mgr := sys.NewManager("")
	reports, err := sys.RunManagerBatch(mgr)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 8 {
		t.Fatalf("reports = %d, want 8", len(reports))
	}
	topo, err := sys.Topology()
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Subnets) == 0 {
		t.Fatal("no topology extracted")
	}
}

func TestUnprivilegedSystemSkipsTaps(t *testing.T) {
	sys := NewDepartmentSystem(deptCfg(206))
	sys.Privileged = false
	if _, err := sys.RunModule(explorer.ARPwatch{}, explorer.Params{Duration: time.Minute}); err == nil {
		t.Fatal("ARPwatch ran without privileges")
	}
	// The manager simply never schedules the watchers.
	mgr := sys.NewManager("")
	reports, err := sys.RunManagerBatch(mgr)
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range reports {
		if rep.Module == "ARPwatch" || rep.Module == "RIPwatch" {
			t.Fatalf("unprivileged manager ran %s", rep.Module)
		}
	}
}
