// Package core wires the Fremont system together: a Journal (in-process or
// behind a Journal Server), the Discovery Manager, the Explorer Modules,
// and a substrate for them to explore. It is the public face used by the
// command-line tools, the examples, and the evaluation harness.
package core

import (
	"fmt"
	"time"

	"fremont/internal/analysis"
	"fremont/internal/correlate"
	"fremont/internal/explorer"
	"fremont/internal/journal"
	"fremont/internal/manager"
	"fremont/internal/netsim"
	"fremont/internal/netsim/campus"
	"fremont/internal/netsim/pkt"
	"fremont/internal/netsim/sim"
	"fremont/internal/present"
	"fremont/internal/simstack"
)

// System is one Fremont deployment on a simulated campus: the Fremont host
// runs Explorer Modules under the virtual clock, recording into a Journal.
type System struct {
	Campus *campus.Campus
	J      *journal.Journal
	Sink   journal.Sink

	// Privileged enables the NIT-based modules (ARPwatch, RIPwatch).
	Privileged bool

	// Log receives module progress lines; nil discards.
	Log func(format string, args ...any)
}

// NewSystem deploys Fremont on a freshly built campus with an in-process
// Journal.
func NewSystem(cfg campus.Config) *System {
	c := campus.Build(cfg)
	j := journal.New()
	return &System{Campus: c, J: j, Sink: journal.Local{J: j}, Privileged: true}
}

// NewDepartmentSystem deploys Fremont on just the measured department wire
// (economical for day-long passive runs).
func NewDepartmentSystem(cfg campus.Config) *System {
	c := campus.BuildDepartment(cfg)
	j := journal.New()
	return &System{Campus: c, J: j, Sink: journal.Local{J: j}, Privileged: true}
}

// Network returns the campus class B network number.
func (s *System) Network() pkt.Subnet {
	return pkt.SubnetOf(s.Campus.Backbone.Addr, pkt.MaskBits(16))
}

// Now returns the campus's virtual wall-clock time.
func (s *System) Now() time.Time { return s.Campus.Net.Now() }

// Advance runs the simulation for d of virtual time.
func (s *System) Advance(d time.Duration) { s.Campus.Net.Run(d) }

// AdvanceToHour runs the simulation until the virtual wall clock next
// reads the given hour (0-23) — how the evaluation schedules module runs
// at the times of day their results depend on.
func (s *System) AdvanceToHour(hour int) {
	now := s.Now()
	d := time.Duration(((hour-now.Hour())%24+24)%24) * time.Hour
	// Land at the top of the hour.
	d -= time.Duration(now.Minute())*time.Minute + time.Duration(now.Second())*time.Second
	if d <= 0 {
		d += 24 * time.Hour
	}
	s.Advance(d)
}

// run spawns fn as a simulation process on host and advances the
// simulation until it completes (bounded by maxSim).
func (s *System) run(name string, host *netsim.Node, maxSim time.Duration, fn func(st *simstack.Stack)) error {
	done := false
	s.Campus.Net.Sched.Spawn(name, func(p *sim.Proc) {
		st := simstack.New(host, p, s.Privileged)
		fn(st)
		done = true
	})
	deadline := s.Campus.Net.Sched.Now() + maxSim
	for !done && s.Campus.Net.Sched.Now() < deadline {
		s.Advance(time.Minute)
	}
	if !done {
		return fmt.Errorf("core: %s did not finish within %v of simulated time", name, maxSim)
	}
	return nil
}

// RunModule executes one Explorer Module on the Fremont host, advancing
// the simulation until it finishes (allowing up to a simulated week).
func (s *System) RunModule(m explorer.Module, params explorer.Params) (*explorer.Report, error) {
	return s.RunModuleOn(s.Campus.Fremont, m, params)
}

// RunModuleOn executes a module from another vantage point — the paper's
// multi-location idea: "Because it will receive ICMP Time Exceeded
// messages from only the single closest interface on the routers along
// the traced path, the Traceroute module will only discover half the
// interfaces traversed. Running this module from multiple locations in
// the network will acquire more complete information about the router
// interface addresses." Both vantage points share this system's Journal.
func (s *System) RunModuleOn(host *netsim.Node, m explorer.Module, params explorer.Params) (*explorer.Report, error) {
	var rep *explorer.Report
	var err error
	runErr := s.run("module:"+m.Info().Name, host, 8*24*time.Hour, func(st *simstack.Stack) {
		rep, err = m.Run(&explorer.Context{Stack: st, Journal: s.Sink, Params: params, Log: s.Log})
	})
	if runErr != nil {
		return nil, runErr
	}
	return rep, err
}

// NewManager builds a Discovery Manager bound to this system's Journal and
// campus (DNS server, network number).
func (s *System) NewManager(historyPath string) *manager.Manager {
	return manager.New(s.Sink, manager.Config{
		Network:     s.Network(),
		DNSServer:   s.Campus.DNSServerIP,
		Privileged:  s.Privileged,
		Correlate:   true,
		HistoryPath: historyPath,
		Log:         s.Log,
	})
}

// RunManagerBatch executes one Discovery Manager batch (all due modules
// plus a correlation pass), advancing the simulation until it completes.
func (s *System) RunManagerBatch(mgr *manager.Manager) ([]*explorer.Report, error) {
	var reps []*explorer.Report
	var err error
	runErr := s.run("manager", s.Campus.Fremont, 8*24*time.Hour, func(st *simstack.Stack) {
		reps, err = mgr.RunDue(st)
	})
	if runErr != nil {
		return nil, runErr
	}
	return reps, err
}

// Correlate runs one cross-correlation pass over the Journal.
func (s *System) Correlate() (correlate.Report, error) {
	return correlate.Run(s.Sink, s.Now())
}

// Analyze runs the Table 8 problem analyses.
func (s *System) Analyze(cfg analysis.Config) ([]analysis.Problem, error) {
	if cfg.Now.IsZero() {
		cfg.Now = s.Now()
	}
	return analysis.Run(s.Sink, cfg)
}

// Topology extracts the discovered gateway/subnet structure for export
// (Figure 2).
func (s *System) Topology() (*present.Topology, error) {
	return present.ExtractTopology(s.Sink)
}
