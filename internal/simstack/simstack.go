// Package simstack binds the Explorer Module Stack interface to a host in
// the simulated network: modules run as simulation processes on a netsim
// node, sending and receiving real encoded packets under the virtual
// clock.
package simstack

import (
	"time"

	"fremont/internal/explorer"
	"fremont/internal/netsim"
	"fremont/internal/netsim/pkt"
	"fremont/internal/netsim/sim"
)

// Stack implements explorer.Stack for a (node, process) pair.
type Stack struct {
	Node *netsim.Node
	Proc *sim.Proc
	// Priv grants tap access (the paper's "system privileges").
	Priv bool

	txBase int
}

var _ explorer.Stack = (*Stack)(nil)

// New binds a stack for a module running as proc on node. The packet
// counter baseline is captured at creation, so PacketsSent reports only
// this module's traffic.
func New(node *netsim.Node, proc *sim.Proc, privileged bool) *Stack {
	s := &Stack{Node: node, Proc: proc, Priv: privileged}
	s.ResetPacketCounter()
	return s
}

// Ifaces implements explorer.Stack.
func (s *Stack) Ifaces() []explorer.IfaceInfo {
	out := make([]explorer.IfaceInfo, len(s.Node.Ifaces))
	for i, ifc := range s.Node.Ifaces {
		out[i] = explorer.IfaceInfo{Index: i, MAC: ifc.MAC, IP: ifc.IP, Mask: ifc.Mask}
	}
	return out
}

// Now implements explorer.Stack.
func (s *Stack) Now() time.Time { return s.Proc.WallNow() }

// Sleep implements explorer.Stack.
func (s *Stack) Sleep(d time.Duration) { s.Proc.Sleep(d) }

// Privileged implements explorer.Stack.
func (s *Stack) Privileged() bool { return s.Priv }

// PacketsSent implements explorer.Stack: frames transmitted by the host
// since this stack was created.
func (s *Stack) PacketsSent() int {
	total := 0
	for _, ifc := range s.Node.Ifaces {
		total += ifc.TxFrames
	}
	return total - s.txBase
}

// ResetPacketCounter zeroes the PacketsSent baseline.
func (s *Stack) ResetPacketCounter() {
	s.txBase = 0
	s.txBase = s.PacketsSent()
}

// SendICMP implements explorer.Stack.
func (s *Stack) SendICMP(dst pkt.IP, ttl byte, msg *pkt.ICMPMessage) error {
	h := pkt.IPv4Header{Protocol: pkt.ProtoICMP, Dst: dst, TTL: ttl}
	return s.Node.SendIP(h, msg.Encode())
}

// OpenICMP implements explorer.Stack.
func (s *Stack) OpenICMP() (explorer.ICMPConn, error) {
	return &icmpConn{c: s.Node.OpenICMP(), p: s.Proc}, nil
}

type icmpConn struct {
	c *netsim.ICMPConn
	p *sim.Proc
}

func (ic *icmpConn) Recv(timeout time.Duration) (explorer.ICMPEvent, bool) {
	ev, ok := ic.c.Recv(ic.p, timeout)
	if !ok {
		return explorer.ICMPEvent{}, false
	}
	return explorer.ICMPEvent{From: ev.From, To: ev.To, TTL: ev.TTL, Msg: ev.Msg, At: ev.At}, true
}

func (ic *icmpConn) Close() { ic.c.Close() }

// OpenUDP implements explorer.Stack.
func (s *Stack) OpenUDP(port uint16) (explorer.UDPConn, error) {
	c, err := s.Node.OpenUDP(port)
	if err != nil {
		return nil, err
	}
	return &udpConn{c: c, p: s.Proc}, nil
}

type udpConn struct {
	c *netsim.UDPConn
	p *sim.Proc
}

func (uc *udpConn) LocalPort() uint16 { return uc.c.Port }

func (uc *udpConn) Send(dst pkt.IP, dport uint16, payload []byte) error {
	return uc.c.Send(dst, dport, payload)
}

func (uc *udpConn) SendTTL(dst pkt.IP, dport uint16, payload []byte, ttl byte) error {
	return uc.c.SendTTL(dst, dport, payload, ttl)
}

func (uc *udpConn) Recv(timeout time.Duration) (explorer.UDPEvent, bool) {
	ev, ok := uc.c.Recv(uc.p, timeout)
	if !ok {
		return explorer.UDPEvent{}, false
	}
	return explorer.UDPEvent{Src: ev.Src, SrcPort: ev.SrcPort, Dst: ev.Dst, Payload: ev.Payload, At: ev.At}, true
}

func (uc *udpConn) Close() { uc.c.Close() }

// ARPTable implements explorer.Stack.
func (s *Stack) ARPTable() ([]explorer.ARPEntry, error) {
	entries := s.Node.ARPTable()
	out := make([]explorer.ARPEntry, len(entries))
	for i, e := range entries {
		out[i] = explorer.ARPEntry{IP: e.IP, MAC: e.MAC, Age: e.Age}
	}
	return out, nil
}

// OpenTap implements explorer.Stack.
func (s *Stack) OpenTap(ifaceIndex int, filter func([]byte) bool) (explorer.Tap, error) {
	if ifaceIndex < 0 || ifaceIndex >= len(s.Node.Ifaces) {
		ifaceIndex = 0
	}
	t, err := s.Node.OpenTap(s.Node.Ifaces[ifaceIndex], s.Priv, filter)
	if err != nil {
		return nil, err
	}
	return &tap{t: t, p: s.Proc}, nil
}

type tap struct {
	t *netsim.Tap
	p *sim.Proc
}

func (tp *tap) Recv(timeout time.Duration) ([]byte, bool) { return tp.t.Recv(tp.p, timeout) }
func (tp *tap) Close()                                    { tp.t.Close() }
