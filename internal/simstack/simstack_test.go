package simstack

import (
	"testing"
	"time"

	"fremont/internal/explorer"
	"fremont/internal/netsim"
	"fremont/internal/netsim/pkt"
	"fremont/internal/netsim/sim"
)

func buildPair(t *testing.T) (*netsim.Network, *netsim.Node, *netsim.Node) {
	t.Helper()
	n := netsim.New(301)
	sn, _ := pkt.ParseSubnet("10.0.0.0/24")
	seg := n.NewSegment("seg", sn)
	a := n.NewNode("a")
	a.AddIface(seg, pkt.IPv4(10, 0, 0, 1), pkt.MaskBits(24))
	b := n.NewNode("b")
	b.AddIface(seg, pkt.IPv4(10, 0, 0, 2), pkt.MaskBits(24))
	return n, a, b
}

// inProc runs fn as a simulation process and drives the network until it
// finishes.
func inProc(t *testing.T, n *netsim.Network, host *netsim.Node, priv bool, fn func(st *Stack)) {
	t.Helper()
	done := false
	n.Sched.Spawn("test", func(p *sim.Proc) {
		fn(New(host, p, priv))
		done = true
	})
	n.Run(time.Minute)
	if !done {
		t.Fatal("process did not finish")
	}
}

func TestIfacesAndNow(t *testing.T) {
	n, a, _ := buildPair(t)
	inProc(t, n, a, false, func(st *Stack) {
		ifaces := st.Ifaces()
		if len(ifaces) != 1 || ifaces[0].IP != pkt.IPv4(10, 0, 0, 1) {
			t.Errorf("Ifaces = %+v", ifaces)
		}
		before := st.Now()
		st.Sleep(10 * time.Second)
		if d := st.Now().Sub(before); d != 10*time.Second {
			t.Errorf("Sleep advanced %v", d)
		}
	})
}

func TestPacketCounterBaseline(t *testing.T) {
	n, a, b := buildPair(t)
	_ = b
	inProc(t, n, a, false, func(st *Stack) {
		conn, err := st.OpenUDP(0)
		if err != nil {
			t.Error(err)
			return
		}
		defer conn.Close()
		if st.PacketsSent() != 0 {
			t.Errorf("fresh stack PacketsSent = %d", st.PacketsSent())
		}
		_ = conn.Send(pkt.IPv4(10, 0, 0, 2), 9, []byte("x"))
		st.Sleep(time.Second)
		if st.PacketsSent() == 0 {
			t.Error("send not counted")
		}
		st.ResetPacketCounter()
		if st.PacketsSent() != 0 {
			t.Errorf("after reset PacketsSent = %d", st.PacketsSent())
		}
	})
}

func TestUDPRoundtripViaStack(t *testing.T) {
	n, a, b := buildPair(t)
	// b echoes on its UDP echo port (default enabled).
	inProc(t, n, a, false, func(st *Stack) {
		conn, err := st.OpenUDP(0)
		if err != nil {
			t.Error(err)
			return
		}
		defer conn.Close()
		if conn.LocalPort() == 0 {
			t.Error("ephemeral port is zero")
		}
		if err := conn.Send(b.Ifaces[0].IP, pkt.PortEcho, []byte("ping")); err != nil {
			t.Error(err)
			return
		}
		ev, ok := conn.Recv(5 * time.Second)
		if !ok || string(ev.Payload) != "ping" {
			t.Errorf("echo reply = %+v, %v", ev, ok)
		}
	})
}

func TestICMPViaStack(t *testing.T) {
	n, a, b := buildPair(t)
	inProc(t, n, a, false, func(st *Stack) {
		conn, err := st.OpenICMP()
		if err != nil {
			t.Error(err)
			return
		}
		defer conn.Close()
		msg := &pkt.ICMPMessage{Type: pkt.ICMPEcho, ID: 5, Seq: 1}
		if err := st.SendICMP(b.Ifaces[0].IP, 30, msg); err != nil {
			t.Error(err)
			return
		}
		ev, ok := conn.Recv(5 * time.Second)
		if !ok || ev.Msg.Type != pkt.ICMPEchoReply || ev.Msg.ID != 5 {
			t.Errorf("reply = %+v, %v", ev, ok)
		}
	})
}

func TestARPTableViaStack(t *testing.T) {
	n, a, b := buildPair(t)
	inProc(t, n, a, false, func(st *Stack) {
		conn, _ := st.OpenUDP(0)
		defer conn.Close()
		_ = conn.Send(b.Ifaces[0].IP, 9, []byte("x"))
		st.Sleep(2 * time.Second)
		entries, err := st.ARPTable()
		if err != nil {
			t.Error(err)
			return
		}
		found := false
		for _, e := range entries {
			if e.IP == b.Ifaces[0].IP && e.MAC == b.Ifaces[0].MAC {
				found = true
			}
		}
		if !found {
			t.Errorf("peer missing from ARP table: %+v", entries)
		}
	})
}

func TestTapPrivilegeEnforced(t *testing.T) {
	n, a, _ := buildPair(t)
	inProc(t, n, a, false, func(st *Stack) {
		if st.Privileged() {
			t.Error("unprivileged stack claims privilege")
		}
		if _, err := st.OpenTap(0, nil); err == nil {
			t.Error("unprivileged tap open succeeded")
		}
	})
	inProc(t, n, a, true, func(st *Stack) {
		tap, err := st.OpenTap(0, nil)
		if err != nil {
			t.Errorf("privileged tap open failed: %v", err)
			return
		}
		tap.Close()
	})
}

func TestStackSatisfiesExplorerInterface(t *testing.T) {
	var _ explorer.Stack = (*Stack)(nil)
}
