package obs

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("reqs_total") != c {
		t.Fatal("get-or-create returned a different counter")
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
}

func TestKindCollisionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("registering x as a gauge after a counter did not panic")
		}
	}()
	r.Gauge("x")
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{0.010, 0.020, 0.040, 0.080})
	// 100 observations spread evenly through the first bucket: the
	// interpolated p50 should land near the bucket midpoint.
	for i := 0; i < 100; i++ {
		h.Observe(0.010 * float64(i) / 100)
	}
	s := h.snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if got := s.Quantile(0.50); math.Abs(got-0.005) > 0.0011 {
		t.Fatalf("p50 = %v, want ~0.005", got)
	}
	// Everything in one bucket: p99 interpolates within (0.010, 0.020].
	h2 := r.Histogram("lat2", []float64{0.010, 0.020})
	for i := 0; i < 10; i++ {
		h2.Observe(0.015)
	}
	s2 := h2.snapshot()
	if p := s2.Quantile(0.99); p <= 0.010 || p > 0.020 {
		t.Fatalf("p99 = %v, want in (0.010, 0.020]", p)
	}
	// Overflow saturates at the last finite bound.
	h3 := r.Histogram("lat3", []float64{0.010})
	h3.Observe(99)
	if p := h3.snapshot().Quantile(0.99); p != 0.010 {
		t.Fatalf("overflow p99 = %v, want 0.010 (saturated)", p)
	}
}

func TestVecFamilies(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("requests_total", "op")
	v.With("ping").Add(2)
	v.With("get").Inc()
	if v.With("ping") != v.With("ping") {
		t.Fatal("vec returned unstable pointers")
	}
	if v.Sum() != 3 {
		t.Fatalf("vec sum = %d, want 3", v.Sum())
	}
	snap := r.Snapshot()
	if snap.Counters["requests_total{op=ping}"] != 2 {
		t.Fatalf("snapshot missing labeled counter: %v", snap.Counters)
	}
	if snap.CounterSum("requests_total") != 3 {
		t.Fatalf("CounterSum = %d, want 3", snap.CounterSum("requests_total"))
	}

	hv := r.HistogramVec("latency_seconds", "op", nil)
	hv.With("ping").Observe(0.001)
	if got := r.Snapshot().Histograms["latency_seconds{op=ping}"].Count; got != 1 {
		t.Fatalf("labeled histogram count = %d", got)
	}
}

func TestSnapshotJSONRoundtrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(3)
	r.Gauge("b").Set(-1)
	h := r.Histogram("c", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(2) // overflow bucket, +Inf bound
	r.RecordSpan(Span{Name: "module:DNS", Start: time.Unix(1, 0), End: time.Unix(3, 0),
		Attrs: map[string]string{"fruitful": "true"}})

	data, err := MarshalSnapshot(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Counters["a"] != 3 || got.Gauges["b"] != -1 {
		t.Fatalf("roundtrip lost scalars: %+v", got)
	}
	hs := got.Histograms["c"]
	if hs.Count != 2 {
		t.Fatalf("histogram count = %d", hs.Count)
	}
	last := hs.Buckets[len(hs.Buckets)-1]
	if !math.IsInf(last.Le, 1) || last.Count != 1 {
		t.Fatalf("overflow bucket did not roundtrip: %+v", last)
	}
	if len(got.Spans) != 1 || got.Spans[0].Attrs["fruitful"] != "true" {
		t.Fatalf("spans did not roundtrip: %+v", got.Spans)
	}
	// The document must be plain JSON (external scrapers parse it).
	var generic map[string]any
	if err := json.Unmarshal(data, &generic); err != nil {
		t.Fatal(err)
	}
}

func TestTextRender(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests_total{op=ping}").Add(5)
	r.Histogram("fsync_seconds", nil).Observe(0.002)
	r.RecordSpan(Span{Name: "module:SeqPing", Start: time.Unix(10, 0), End: time.Unix(70, 0)})
	var b strings.Builder
	if err := r.Snapshot().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"requests_total{op=ping} 5", "fsync_seconds count=1", "module:SeqPing"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text render missing %q:\n%s", want, out)
		}
	}
}

func TestHTTPHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Inc()
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	res, err := srv.Client().Get(srv.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if ct := res.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var snap Snapshot
	if err := json.NewDecoder(res.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["x"] != 1 {
		t.Fatalf("served snapshot = %+v", snap)
	}

	res2, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res2.Body.Close()
	if ct := res2.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
}

func TestSpanRingEviction(t *testing.T) {
	var tr Tracer
	for i := 0; i < spanRingSize+10; i++ {
		tr.Record(Span{Name: "s", Start: time.Unix(int64(i), 0)})
	}
	spans := tr.Recent()
	if len(spans) != spanRingSize {
		t.Fatalf("ring kept %d spans", len(spans))
	}
	if spans[0].Start.Unix() != 10 || spans[len(spans)-1].Start.Unix() != int64(spanRingSize+9) {
		t.Fatalf("ring order wrong: first=%v last=%v", spans[0].Start, spans[len(spans)-1].Start)
	}
}

// TestRegistryConcurrentHammer drives every instrument kind from many
// writers while a reader snapshots continuously — the registry's whole
// point is to be safe to leave on in the server's hot paths, so this is
// the test the race detector gates on.
func TestRegistryConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	const writers = 8
	const perWriter = 2000
	vec := r.CounterVec("ops_total", "op")
	hv := r.HistogramVec("op_seconds", "op", nil)
	stop := make(chan struct{})

	var snaps sync.WaitGroup
	snaps.Add(1)
	go func() {
		defer snaps.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := r.Snapshot()
			if err := s.WriteText(&strings.Builder{}); err != nil {
				t.Error(err)
				return
			}
			if _, err := MarshalSnapshot(s); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	ops := []string{"ping", "get", "store"}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				op := ops[i%len(ops)]
				vec.With(op).Inc()
				hv.With(op).Observe(float64(i%100) / 1000)
				r.Counter("plain_total").Inc()
				r.Gauge("depth").Set(int64(i))
				if i%100 == 0 {
					sp := r.StartSpan("hammer")
					sp.SetAttr("writer", op)
					sp.End(nil)
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	snaps.Wait()

	final := r.Snapshot()
	if got := final.CounterSum("ops_total"); got != writers*perWriter {
		t.Fatalf("ops_total = %d, want %d", got, writers*perWriter)
	}
	if final.Counters["plain_total"] != writers*perWriter {
		t.Fatalf("plain_total = %d", final.Counters["plain_total"])
	}
	var histCount int64
	for name, h := range final.Histograms {
		if strings.HasPrefix(name, "op_seconds{") {
			histCount += h.Count
		}
	}
	if histCount != writers*perWriter {
		t.Fatalf("histogram observations = %d, want %d", histCount, writers*perWriter)
	}
}
