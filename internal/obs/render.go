package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"time"
)

// MarshalJSON-ready form is the Snapshot itself; these helpers add the
// two transport renderings: a human-scannable text page and the JSON
// document served at /metrics.json and over jwire OpStats.

// WriteText renders the snapshot as sorted one-line-per-instrument text.
func (s *Snapshot) WriteText(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# fremont metrics snapshot %s\n", s.TakenAt.Format("2006-01-02T15:04:05Z"))

	if len(s.Counters) > 0 {
		b.WriteString("\n# counters\n")
		for _, k := range sortedKeys(s.Counters) {
			fmt.Fprintf(&b, "%s %d\n", k, s.Counters[k])
		}
	}
	if len(s.Gauges) > 0 {
		b.WriteString("\n# gauges\n")
		for _, k := range sortedKeys(s.Gauges) {
			fmt.Fprintf(&b, "%s %d\n", k, s.Gauges[k])
		}
	}
	if len(s.Histograms) > 0 {
		b.WriteString("\n# histograms (_seconds in seconds, others unit-less)\n")
		keys := make([]string, 0, len(s.Histograms))
		for k := range s.Histograms {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			h := s.Histograms[k]
			if isSecondsHist(k) {
				fmt.Fprintf(&b, "%s count=%d sum=%.6f p50=%s p95=%s p99=%s\n",
					k, h.Count, h.Sum, fmtSeconds(h.P50), fmtSeconds(h.P95), fmtSeconds(h.P99))
			} else {
				fmt.Fprintf(&b, "%s count=%d sum=%g p50=%g p95=%g p99=%g\n",
					k, h.Count, h.Sum, h.P50, h.P95, h.P99)
			}
		}
	}
	if len(s.Spans) > 0 {
		b.WriteString("\n# recent spans (oldest first)\n")
		for _, sp := range s.Spans {
			fmt.Fprintf(&b, "%s %s dur=%s", sp.Start.Format("15:04:05"), sp.Name, sp.Duration().Round(time.Millisecond))
			for _, k := range sortedAttrKeys(sp.Attrs) {
				fmt.Fprintf(&b, " %s=%s", k, sp.Attrs[k])
			}
			if sp.Err != "" {
				fmt.Fprintf(&b, " err=%q", sp.Err)
			}
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// isSecondsHist reports whether a histogram holds durations, by the
// naming convention every time histogram in the tree follows: a
// `_seconds` suffix on the base name (labels in {...} excluded).
// Anything else (e.g. wal_commit_batch_size) renders unit-less.
func isSecondsHist(key string) bool {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		key = key[:i]
	}
	return strings.HasSuffix(key, "_seconds")
}

// fmtSeconds prints a quantile with unit-appropriate precision.
func fmtSeconds(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v < 1e-3:
		return fmt.Sprintf("%.0fµs", v*1e6)
	case v < 1:
		return fmt.Sprintf("%.2fms", v*1e3)
	default:
		return fmt.Sprintf("%.3fs", v)
	}
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// MarshalSnapshot serializes a snapshot to JSON. Infinite bucket bounds
// are mapped to the JSON-representable sentinel "+Inf" via Bucket's
// custom marshaller below.
func MarshalSnapshot(s *Snapshot) ([]byte, error) {
	return json.Marshal(s)
}

// UnmarshalSnapshot parses a JSON snapshot (the OpStats response body).
func UnmarshalSnapshot(data []byte) (*Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("obs: bad snapshot: %w", err)
	}
	return &s, nil
}

// MarshalJSON encodes the +Inf overflow bound as the string "+Inf",
// which encoding/json cannot represent as a number.
func (b Bucket) MarshalJSON() ([]byte, error) {
	le := any(b.Le)
	if math.IsInf(b.Le, 1) {
		le = "+Inf"
	}
	return json.Marshal(map[string]any{"le": le, "count": b.Count})
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (b *Bucket) UnmarshalJSON(data []byte) error {
	var raw struct {
		Le    any   `json:"le"`
		Count int64 `json:"count"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	b.Count = raw.Count
	switch le := raw.Le.(type) {
	case float64:
		b.Le = le
	case string:
		b.Le = math.Inf(1)
	default:
		return fmt.Errorf("obs: bucket bound %v", raw.Le)
	}
	return nil
}

// Handler serves the registry over HTTP: text at / and /metrics, JSON at
// /metrics.json (or anywhere with Accept: application/json). Mounted by
// fremontd's -metrics-addr listener.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		snap := r.Snapshot()
		wantJSON := strings.HasSuffix(req.URL.Path, ".json") ||
			strings.Contains(req.Header.Get("Accept"), "application/json")
		if wantJSON {
			data, err := MarshalSnapshot(snap)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Write(data)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		snap.WriteText(w)
	})
}
