package obs

import (
	"testing"
)

// TestGather checks child-registry folding: a parent snapshot includes
// every child instrument under its prefix, read live (a child increment
// after Gather shows up in the next parent snapshot).
func TestGather(t *testing.T) {
	parent := NewRegistry()
	shard0 := NewRegistry()
	shard1 := NewRegistry()
	parent.Counter("own_total").Add(7)
	parent.Gather("shard0_", shard0)
	parent.Gather("shard1_", shard1)

	shard0.Counter("requests_total").Add(3)
	shard1.Counter("requests_total").Add(5)
	shard1.Gauge("records").Set(42)
	sp := shard0.StartSpan("scan")
	sp.End(nil)

	s := parent.Snapshot()
	if s.Counters["own_total"] != 7 {
		t.Errorf("own counter lost: %v", s.Counters)
	}
	if s.Counters["shard0_requests_total"] != 3 || s.Counters["shard1_requests_total"] != 5 {
		t.Errorf("prefixed child counters wrong: %v", s.Counters)
	}
	if s.Gauges["shard1_records"] != 42 {
		t.Errorf("prefixed child gauge wrong: %v", s.Gauges)
	}
	found := false
	for _, span := range s.Spans {
		if span.Name == "shard0_scan" {
			found = true
		}
	}
	if !found {
		t.Errorf("child span not folded with prefix: %+v", s.Spans)
	}

	// Live: mutate the child after the first snapshot.
	shard0.Counter("requests_total").Inc()
	if got := parent.Snapshot().Counters["shard0_requests_total"]; got != 4 {
		t.Errorf("gathered snapshot is not live: got %d, want 4", got)
	}

	// Histograms fold too.
	shard0.Histogram("lat_us", nil).Observe(5)
	if _, ok := parent.Snapshot().Histograms["shard0_lat_us"]; !ok {
		t.Error("child histogram not folded")
	}
}
