// Package obs is Fremont's observability substrate: a dependency-free
// metrics registry (atomic counters, gauges, fixed-bucket latency
// histograms with quantile estimation, and labeled families) plus
// lightweight span tracing for module runs.
//
// The paper evaluates Fremont through operational numbers — per-module
// packet counts, run durations, offered load (Table 4) and the Discovery
// Manager's fruitfulness feedback — so the reproduction needs a uniform,
// queryable way to watch a running system rather than post-hoc log
// scraping. Every hot layer (jserver request dispatch, WAL appends and
// fsyncs, jclient pool checkouts, manager scheduling, netsim traffic)
// records into a Registry; snapshots are served over HTTP by fremontd
// (-metrics-addr) and over the jwire protocol (OpStats).
//
// Instruments are cheap enough to leave on: a counter bump is one atomic
// add, a histogram observation is two atomic adds plus a short bucket
// scan. Callers cache instrument pointers (the Registry hands out
// stable ones), so the hot path never takes the registry lock.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// --- Instruments ----------------------------------------------------------

// Counter is a monotonically increasing count. The zero value is usable,
// but counters almost always come from a Registry so they appear in
// snapshots.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are a programming error but not checked;
// use a Gauge for values that go down).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous value that can move both ways.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the value by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// atomicFloat accumulates a float64 with compare-and-swap.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) Value() float64 { return math.Float64frombits(f.bits.Load()) }

// Histogram is a fixed-bucket distribution. Buckets are defined by their
// inclusive upper bounds, ascending; one implicit overflow bucket catches
// everything above the last bound. Observations and snapshots are safe
// for concurrent use.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is overflow
	count  atomic.Int64
	sum    atomicFloat
}

// newHistogram copies bounds (which must be ascending and non-empty).
func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefLatencyBuckets
	}
	if !sort.Float64sAreSorted(bounds) {
		panic("obs: histogram bounds must be ascending")
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveSince records the seconds elapsed since start — the idiom for
// latency instrumentation: defer h.ObserveSince(time.Now()).
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// DefLatencyBuckets spans 25µs to 10s — wide enough for an in-memory
// journal op at the bottom and a slow fsync or module run at the top.
var DefLatencyBuckets = []float64{
	25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5, 10,
}

// snapshot captures the histogram under no lock: bucket counts are read
// individually, so a concurrent Observe may straddle the reads — tolerable
// drift for monitoring, never a torn value.
func (h *Histogram) snapshot() HistSnapshot {
	s := HistSnapshot{
		Count:   h.count.Load(),
		Sum:     h.sum.Value(),
		Buckets: make([]Bucket, len(h.counts)),
	}
	for i := range h.counts {
		le := math.Inf(1)
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		s.Buckets[i] = Bucket{Le: le, Count: h.counts[i].Load()}
	}
	s.P50 = s.Quantile(0.50)
	s.P95 = s.Quantile(0.95)
	s.P99 = s.Quantile(0.99)
	return s
}

// --- Labeled families -----------------------------------------------------

// CounterVec is a family of counters distinguished by one label value
// (the common case: per-opcode, per-module). With is lock-free after the
// first call for a given value.
type CounterVec struct {
	r     *Registry
	name  string
	label string
	m     sync.Map // value -> *Counter
}

// With returns the counter for one label value, creating it on first use.
func (v *CounterVec) With(value string) *Counter {
	if c, ok := v.m.Load(value); ok {
		return c.(*Counter)
	}
	c := v.r.Counter(keyWith(v.name, v.label, value))
	actual, _ := v.m.LoadOrStore(value, c)
	return actual.(*Counter)
}

// Sum totals the family across label values.
func (v *CounterVec) Sum() int64 {
	var n int64
	v.m.Range(func(_, c any) bool { n += c.(*Counter).Value(); return true })
	return n
}

// GaugeVec is a family of gauges distinguished by one label value.
type GaugeVec struct {
	r     *Registry
	name  string
	label string
	m     sync.Map
}

// With returns the gauge for one label value, creating it on first use.
func (v *GaugeVec) With(value string) *Gauge {
	if g, ok := v.m.Load(value); ok {
		return g.(*Gauge)
	}
	g := v.r.Gauge(keyWith(v.name, v.label, value))
	actual, _ := v.m.LoadOrStore(value, g)
	return actual.(*Gauge)
}

// HistogramVec is a family of histograms distinguished by one label value.
type HistogramVec struct {
	r      *Registry
	name   string
	label  string
	bounds []float64
	m      sync.Map
}

// With returns the histogram for one label value, creating it on first use.
func (v *HistogramVec) With(value string) *Histogram {
	if h, ok := v.m.Load(value); ok {
		return h.(*Histogram)
	}
	h := v.r.Histogram(keyWith(v.name, v.label, value), v.bounds)
	actual, _ := v.m.LoadOrStore(value, h)
	return actual.(*Histogram)
}

func keyWith(name, label, value string) string {
	return name + "{" + label + "=" + value + "}"
}

// --- Registry -------------------------------------------------------------

// Registry owns a namespace of instruments and a span tracer. Instruments
// are get-or-create by full name (including any {label=value} suffix);
// asking for an existing name as a different kind panics — that is a
// programming error, not an operational condition.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	tracer   Tracer

	// children are registries attached with Gather: their instruments
	// appear in this registry's Snapshot under a name prefix. The fabric
	// uses this to merge per-shard server registries into one
	// -metrics-addr endpoint.
	children []gathered
}

type gathered struct {
	prefix string
	reg    *Registry
}

// Gather attaches other so its instruments appear in this registry's
// snapshots with prefix prepended to every name (and its spans with
// prefix prepended to the span name). Values are read live at Snapshot
// time — other keeps updating after the attach. Gather does not detect
// cycles; do not attach a registry to itself or its descendants.
func (r *Registry) Gather(prefix string, other *Registry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.children = append(r.children, gathered{prefix: prefix, reg: other})
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry, used by components that are
// not handed an explicit one (netsim traffic totals, client pools in
// the command-line tools).
func Default() *Registry { return defaultRegistry }

func (r *Registry) checkUnique(kind, name string) {
	_, c := r.counters[name]
	_, g := r.gauges[name]
	_, h := r.hists[name]
	if c || g || h {
		panic(fmt.Sprintf("obs: %q already registered as a different kind (want %s)", name, kind))
	}
}

// Counter returns the counter registered under name, creating it if new.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.checkUnique("counter", name)
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it if new.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.checkUnique("gauge", name)
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket bounds if new (nil bounds = DefLatencyBuckets). Bounds
// are fixed at creation; later calls ignore the argument.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	r.checkUnique("histogram", name)
	h = newHistogram(bounds)
	r.hists[name] = h
	return h
}

// CounterVec returns a per-label-value counter family.
func (r *Registry) CounterVec(name, label string) *CounterVec {
	return &CounterVec{r: r, name: name, label: label}
}

// GaugeVec returns a per-label-value gauge family.
func (r *Registry) GaugeVec(name, label string) *GaugeVec {
	return &GaugeVec{r: r, name: name, label: label}
}

// HistogramVec returns a per-label-value histogram family (nil bounds =
// DefLatencyBuckets).
func (r *Registry) HistogramVec(name, label string, bounds []float64) *HistogramVec {
	return &HistogramVec{r: r, name: name, label: label, bounds: bounds}
}

// --- Snapshots ------------------------------------------------------------

// Bucket is one histogram bucket in a snapshot: the count of observations
// at or below Le that landed in this bucket (non-cumulative).
type Bucket struct {
	Le    float64 `json:"le"`
	Count int64   `json:"count"`
}

// HistSnapshot is a point-in-time view of one histogram.
type HistSnapshot struct {
	Count   int64    `json:"count"`
	Sum     float64  `json:"sum"`
	P50     float64  `json:"p50"`
	P95     float64  `json:"p95"`
	P99     float64  `json:"p99"`
	Buckets []Bucket `json:"buckets"`
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// within the bucket containing the target rank. Values past the last
// finite bound are reported as that bound — the estimate saturates rather
// than inventing a tail.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var seen float64
	lower := 0.0
	for i, b := range s.Buckets {
		if float64(b.Count)+seen >= rank {
			upper := b.Le
			if math.IsInf(upper, 1) {
				// Overflow bucket: saturate at the last finite bound.
				return lower
			}
			if b.Count == 0 {
				return upper
			}
			frac := (rank - seen) / float64(b.Count)
			return lower + (upper-lower)*frac
		}
		seen += float64(b.Count)
		if !math.IsInf(s.Buckets[i].Le, 1) {
			lower = s.Buckets[i].Le
		}
	}
	return lower
}

// Snapshot is a consistent-enough point-in-time view of a Registry,
// serializable to JSON (the -metrics-addr endpoint, the OpStats wire
// response) and renderable as text. Counters may drift by an in-flight
// increment relative to each other; no individual value is ever torn.
type Snapshot struct {
	TakenAt    time.Time               `json:"taken_at"`
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]int64        `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
	Spans      []Span                  `json:"spans,omitempty"`
}

// Snapshot captures every instrument and the recent span ring.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		TakenAt:    time.Now().UTC(),
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistSnapshot{},
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	children := make([]gathered, len(r.children))
	copy(children, r.children)
	r.mu.RUnlock()
	for k, v := range counters {
		s.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Value()
	}
	for k, v := range hists {
		s.Histograms[k] = v.snapshot()
	}
	s.Spans = r.tracer.Recent()
	for _, c := range children {
		cs := c.reg.Snapshot()
		for k, v := range cs.Counters {
			s.Counters[c.prefix+k] = v
		}
		for k, v := range cs.Gauges {
			s.Gauges[c.prefix+k] = v
		}
		for k, v := range cs.Histograms {
			s.Histograms[c.prefix+k] = v
		}
		for _, sp := range cs.Spans {
			sp.Name = c.prefix + sp.Name
			s.Spans = append(s.Spans, sp)
		}
	}
	return s
}

// CounterSum totals every counter whose name (before any label suffix)
// equals name — the view a labeled family presents as a single number.
func (s *Snapshot) CounterSum(name string) int64 {
	var n int64
	for k, v := range s.Counters {
		if k == name || strings.HasPrefix(k, name+"{") {
			n += v
		}
	}
	return n
}
