package obs

import (
	"sort"
	"sync"
	"time"
)

// Span is one completed traced operation — a module run, a recovery, a
// replication pull. Times may be virtual (the manager runs under the
// simulated clock); the tracer does not interpret them.
type Span struct {
	Name  string            `json:"name"`
	Start time.Time         `json:"start"`
	End   time.Time         `json:"end"`
	Err   string            `json:"err,omitempty"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Duration is the span's elapsed time.
func (s Span) Duration() time.Duration { return s.End.Sub(s.Start) }

// spanRingSize bounds the kept history: enough for several full manager
// batches without growing a long-running server.
const spanRingSize = 128

// Tracer keeps a fixed ring of recent spans. The zero value is ready to
// use; every Registry embeds one.
type Tracer struct {
	mu   sync.Mutex
	ring [spanRingSize]Span
	n    int // total spans ever recorded
}

// Record appends a completed span, evicting the oldest past capacity.
func (t *Tracer) Record(s Span) {
	t.mu.Lock()
	t.ring[t.n%spanRingSize] = s
	t.n++
	t.mu.Unlock()
}

// Recent returns the kept spans, oldest first.
func (t *Tracer) Recent() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.n
	if n > spanRingSize {
		n = spanRingSize
	}
	out := make([]Span, 0, n)
	for i := t.n - n; i < t.n; i++ {
		out = append(out, t.ring[i%spanRingSize])
	}
	return out
}

// RecordSpan records a completed span in the registry's tracer. Use it
// when the caller owns the clock (the manager's virtual time); use
// StartSpan for wall-clock operations.
func (r *Registry) RecordSpan(s Span) { r.tracer.Record(s) }

// ActiveSpan is an in-flight wall-clock span; call End exactly once.
type ActiveSpan struct {
	r    *Registry
	span Span
}

// StartSpan begins a wall-clock span.
func (r *Registry) StartSpan(name string) *ActiveSpan {
	return &ActiveSpan{r: r, span: Span{Name: name, Start: time.Now()}}
}

// SetAttr attaches a key/value to the span.
func (s *ActiveSpan) SetAttr(k, v string) {
	if s.span.Attrs == nil {
		s.span.Attrs = map[string]string{}
	}
	s.span.Attrs[k] = v
}

// End completes and records the span; err (may be nil) is kept as text.
func (s *ActiveSpan) End(err error) {
	s.span.End = time.Now()
	if err != nil {
		s.span.Err = err.Error()
	}
	s.r.tracer.Record(s.span)
}

// sortedAttrKeys is shared by the text renderer.
func sortedAttrKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
