// Kill-recover under group commit: a real fremontd-shaped process is
// SIGKILLed while commit groups are in flight from concurrent pipelined
// writers, and the recovered journal must hold every acknowledged store
// (acknowledged-implies-fsynced) and nothing that was never issued —
// acked ⊆ recovered ⊆ issued. Unlike recovery_test.go's copy-the-disk
// simulation, this test loses whatever a kernel-delivered SIGKILL
// actually loses: responses in socket buffers, staged-but-uncommitted
// frames, and the tail of the current commit group.
package jserver

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fremont/internal/jclient"
	"fremont/internal/journal"
	"fremont/internal/netsim/pkt"
	"fremont/internal/wal"
)

// killChildEnv carries the data directory into the re-executed test
// binary; when set, the process runs a journal server instead of tests.
const killChildEnv = "JSERVER_KILL_RECOVER_CHILD"

func TestMain(m *testing.M) {
	if dir := os.Getenv(killChildEnv); dir != "" {
		runKillRecoverChild(dir)
		return
	}
	os.Exit(m.Run())
}

// runKillRecoverChild is the victim process: a server with a SyncAlways
// WAL that announces its address and serves until killed. It never
// exits cleanly — the parent's SIGKILL is the only way out, so nothing
// here can accidentally flush or close on shutdown.
func runKillRecoverChild(dir string) {
	s := New(nil)
	s.SnapshotPath = filepath.Join(dir, "journal.snap")
	l, err := wal.Open(wal.Options{Dir: filepath.Join(dir, "wal"), Policy: wal.SyncAlways})
	if err != nil {
		fmt.Fprintln(os.Stderr, "child wal:", err)
		os.Exit(1)
	}
	s.WAL = l
	if _, err := s.Recover(); err != nil {
		fmt.Fprintln(os.Stderr, "child recover:", err)
		os.Exit(1)
	}
	if err := s.Listen("127.0.0.1:0"); err != nil {
		fmt.Fprintln(os.Stderr, "child listen:", err)
		os.Exit(1)
	}
	fmt.Printf("ADDR %s\n", s.Addr())
	select {}
}

// TestKillMidGroupCommitNoAckedLoss SIGKILLs a server while 8 pipelined
// writers have stores in flight, recovers from the surviving WAL, and
// checks the acked/recovered/issued containments.
func TestKillMidGroupCommitNoAckedLoss(t *testing.T) {
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=^$")
	cmd.Env = append(os.Environ(), killChildEnv+"="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	var addr string
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if line := sc.Text(); strings.HasPrefix(line, "ADDR ") {
			addr = strings.TrimPrefix(line, "ADDR ")
			break
		}
	}
	if addr == "" {
		t.Fatalf("child exited without announcing an address: %v", sc.Err())
	}

	// 8 concurrent pipelined writers on disjoint IP ranges. Each
	// records what it issued and — only after Result returns OK — what
	// was acknowledged. Errors mean the kill landed; writers just stop.
	const writers = 8
	const window = 16
	var ackedTotal atomic.Int64
	acked := make([][]pkt.IP, writers)
	issued := make([][]pkt.IP, writers)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p, err := jclient.DialPipeline(addr)
			if err != nil {
				return
			}
			defer p.Close()
			type pendingStore struct {
				f  jclient.StoreFuture
				ip pkt.IP
			}
			var futs []pendingStore
			drain := func() bool {
				for _, ps := range futs {
					if _, _, err := ps.f.Result(); err != nil {
						return false
					}
					acked[g] = append(acked[g], ps.ip)
					ackedTotal.Add(1)
				}
				futs = futs[:0]
				return true
			}
			for i := 0; ; i++ {
				ip := pkt.IPv4(10, byte(g+1), byte(i>>8), byte(i))
				issued[g] = append(issued[g], ip)
				futs = append(futs, pendingStore{
					f:  p.StoreInterface(journal.IfaceObs{IP: ip, Source: journal.SrcICMP, At: t0}),
					ip: ip,
				})
				if len(futs) == window && !drain() {
					return
				}
			}
		}(g)
	}

	// Kill once enough stores are acknowledged that commit groups are
	// demonstrably flowing — and while the writers are still going full
	// tilt, so groups are in flight at the moment the SIGKILL lands.
	deadline := time.Now().Add(10 * time.Second)
	for ackedTotal.Load() < 400 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if ackedTotal.Load() == 0 {
		t.Fatal("no store was acknowledged before the deadline")
	}
	cmd.Process.Kill() // SIGKILL: no handler, no flush, no goodbye
	cmd.Wait()
	wg.Wait()

	// Recover in-process from whatever the kill left on disk.
	s2 := New(nil)
	s2.SnapshotPath = filepath.Join(dir, "journal.snap")
	s2.WAL = openWAL(t, filepath.Join(dir, "wal"), wal.SyncAlways)
	t.Cleanup(func() { s2.Close() })
	st, err := s2.Recover()
	if err != nil {
		t.Fatalf("recovery after SIGKILL: %v (stats %+v)", err, st)
	}
	j := s2.Journal()

	// acked ⊆ recovered: every acknowledged store must be present.
	nAcked := 0
	for g := range acked {
		for _, ip := range acked[g] {
			if got := j.Interfaces(journal.Query{HasIP: true, ByIP: ip}); len(got) != 1 {
				t.Fatalf("acknowledged store %v lost in crash (writer %d, %d acked total)", ip, g, ackedTotal.Load())
			}
			nAcked++
		}
	}
	// recovered ⊆ issued: IPs are unique per issue, so counts bound the
	// containment — the journal cannot hold more records than were ever
	// sent, nor fewer than were acknowledged.
	nIssued := 0
	for g := range issued {
		nIssued += len(issued[g])
	}
	n := j.NumInterfaces()
	if n > nIssued {
		t.Fatalf("recovered %d interfaces but only %d were issued", n, nIssued)
	}
	if n < nAcked {
		t.Fatalf("recovered %d interfaces < %d acknowledged", n, nAcked)
	}
	t.Logf("issued %d, acked %d, recovered %d (recovery stats %+v)", nIssued, nAcked, n, st)
}
