package jserver

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"

	"fremont/internal/jclient"
)

// flakyListener fails the first n Accept calls with a transient error
// (the shape EMFILE pressure produces) before delegating to the real
// listener.
type flakyListener struct {
	net.Listener
	failures atomic.Int32
}

func (l *flakyListener) Accept() (net.Conn, error) {
	if l.failures.Add(-1) >= 0 {
		return nil, errors.New("accept tcp: too many open files")
	}
	return l.Listener.Accept()
}

// TestAcceptLoopSurvivesTransientErrors: before the backoff fix, the
// first transient Accept error killed the accept loop and the server
// went silently deaf.
func TestAcceptLoopSurvivesTransientErrors(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := &flakyListener{Listener: inner}
	fl.failures.Store(3)

	s := New(nil)
	s.ln = fl
	s.wg.Add(1)
	go s.acceptLoop()
	t.Cleanup(func() { s.Close() })

	c, err := jclient.Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatalf("server deaf after transient accept errors: %v", err)
	}
	if fl.failures.Load() >= 0 {
		t.Fatal("flaky listener never exercised its failures")
	}
}
