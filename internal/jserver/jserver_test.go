package jserver

import (
	"net"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fremont/internal/jclient"
	"fremont/internal/journal"
	"fremont/internal/jwire"
	"fremont/internal/netsim/pkt"
	"fremont/internal/wal"
)

var t0 = time.Date(1993, 1, 25, 8, 0, 0, 0, time.UTC)

func startServer(t *testing.T) (*Server, *jclient.Client) {
	t.Helper()
	s := New(nil)
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	c, err := jclient.Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return s, c
}

func TestPing(t *testing.T) {
	_, c := startServer(t)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreAndQueryOverTCP(t *testing.T) {
	_, c := startServer(t)
	obs := journal.IfaceObs{
		IP: pkt.IPv4(128, 138, 238, 5), HasMAC: true,
		MAC:  pkt.MAC{8, 0, 0x20, 1, 2, 3},
		Name: "anchor.cs.colorado.edu", HasMask: true, Mask: pkt.MaskBits(24),
		Source: journal.SrcARP, At: t0,
	}
	id, created, err := c.StoreInterface(obs)
	if err != nil || !created || id == 0 {
		t.Fatalf("StoreInterface = %d, %v, %v", id, created, err)
	}
	recs, err := c.Interfaces(journal.Query{ByIP: obs.IP, HasIP: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records", len(recs))
	}
	rec := recs[0]
	if rec.IP != obs.IP || rec.MAC != obs.MAC || rec.Name != obs.Name || rec.Mask != obs.Mask {
		t.Fatalf("rec = %+v", rec)
	}
	if !rec.Stamp.Discovered.Equal(t0) {
		t.Fatalf("timestamp lost in transit: %v", rec.Stamp)
	}
}

func TestGatewayAndSubnetOverTCP(t *testing.T) {
	_, c := startServer(t)
	sn, _ := pkt.ParseSubnet("128.138.238.0/24")
	gwID, err := c.StoreGateway(journal.GatewayObs{
		IfaceIPs: []pkt.IP{pkt.IPv4(128, 138, 238, 1), pkt.IPv4(128, 138, 243, 1)},
		Subnets:  []pkt.Subnet{sn},
		Source:   journal.SrcTraceroute, At: t0,
	})
	if err != nil {
		t.Fatal(err)
	}
	gws, err := c.Gateways()
	if err != nil {
		t.Fatal(err)
	}
	if len(gws) != 1 || gws[0].ID != gwID || len(gws[0].Ifaces) != 2 {
		t.Fatalf("gateways = %+v", gws)
	}
	sns, err := c.Subnets()
	if err != nil {
		t.Fatal(err)
	}
	if len(sns) != 1 || len(sns[0].Gateways) != 1 || sns[0].Gateways[0] != gwID {
		t.Fatalf("subnets = %+v", sns)
	}
}

func TestDeleteOverTCP(t *testing.T) {
	_, c := startServer(t)
	id, _, err := c.StoreInterface(journal.IfaceObs{IP: pkt.IPv4(10, 0, 0, 1),
		Source: journal.SrcICMP, At: t0})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := c.Delete(journal.KindInterface, id)
	if err != nil || !ok {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	ok, err = c.Delete(journal.KindInterface, id)
	if err != nil || ok {
		t.Fatalf("second Delete = %v, %v; want false, nil", ok, err)
	}
}

func TestConcurrentClients(t *testing.T) {
	s, _ := startServer(t)
	const clients = 8
	const stores = 50
	var wg sync.WaitGroup
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := jclient.Dial(s.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < stores; i++ {
				ip := pkt.IPv4(10, byte(ci), byte(i/256), byte(i))
				if _, _, err := c.StoreInterface(journal.IfaceObs{
					IP: ip, Source: journal.SrcICMP, At: t0.Add(time.Duration(i) * time.Second),
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(ci)
	}
	wg.Wait()
	if n := s.Journal().NumInterfaces(); n != clients*stores {
		t.Fatalf("journal has %d interfaces, want %d", n, clients*stores)
	}
}

func TestBatchOverTCP(t *testing.T) {
	s, c := startServer(t)
	sn, _ := pkt.ParseSubnet("128.138.243.0/24")
	var b jclient.Batch
	for i := 1; i <= 3; i++ {
		b.StoreInterface(journal.IfaceObs{IP: pkt.IPv4(10, 0, 0, byte(i)), Source: journal.SrcICMP, At: t0})
	}
	b.StoreGateway(journal.GatewayObs{IfaceIPs: []pkt.IP{pkt.IPv4(10, 0, 0, 254)},
		Subnets: []pkt.Subnet{sn}, Source: journal.SrcTraceroute, At: t0})
	b.StoreSubnet(journal.SubnetObs{Subnet: sn, Source: journal.SrcRIP, At: t0})
	results, err := c.StoreBatch(&b)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("got %d results, want 5", len(results))
	}
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("sub-request %d failed: %v", i, res.Err)
		}
		if res.ID == 0 {
			t.Fatalf("sub-request %d returned zero ID", i)
		}
	}
	if !results[0].Created {
		t.Fatal("first interface store did not report creation")
	}
	j := s.Journal()
	if j.NumInterfaces() != 4 || j.NumGateways() != 1 || j.NumSubnets() != 1 {
		t.Fatalf("journal = %d/%d/%d interfaces/gateways/subnets",
			j.NumInterfaces(), j.NumGateways(), j.NumSubnets())
	}
	// Batch deletes round-trip too.
	b.Reset()
	b.Delete(journal.KindInterface, results[0].ID)
	b.Delete(journal.KindInterface, results[0].ID) // second time: gone
	results, err = c.StoreBatch(&b)
	if err != nil {
		t.Fatal(err)
	}
	if !results[0].Deleted || results[1].Deleted {
		t.Fatalf("delete results = %+v", results)
	}
}

func TestBatchPartialFailure(t *testing.T) {
	s, _ := startServer(t)
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Hand-build a batch: valid store, truncated store, empty sub-request,
	// nested batch, valid ping. Only the malformed three may fail.
	var good jwire.Writer
	good.U8(jwire.OpStoreInterface)
	jwire.PutIfaceObs(&good, journal.IfaceObs{IP: pkt.IPv4(10, 9, 9, 9), Source: journal.SrcICMP, At: t0})
	subs := [][]byte{
		good.B,
		{jwire.OpStoreInterface, 0x01}, // truncated body
		{},                             // empty
		{jwire.OpBatch, 0, 0, 0, 0},    // nested batch
		{jwire.OpPing},
	}
	var w jwire.Writer
	w.U8(jwire.OpBatch)
	if err := jwire.PutBatch(&w, subs); err != nil {
		t.Fatal(err)
	}
	if err := jwire.WriteFrame(conn, w.B); err != nil {
		t.Fatal(err)
	}
	resp, err := jwire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	r := &jwire.Reader{B: resp}
	if r.U8() != jwire.StatusOK {
		t.Fatalf("batch frame rejected outright: % x", resp)
	}
	if n := r.U32(); n != uint32(len(subs)) {
		t.Fatalf("got %d sub-responses, want %d", n, len(subs))
	}
	var statuses []byte
	for range subs {
		sub := r.Bytes()
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if len(sub) == 0 {
			t.Fatal("empty sub-response")
		}
		statuses = append(statuses, sub[0])
	}
	want := []byte{jwire.StatusOK, jwire.StatusError, jwire.StatusError, jwire.StatusError, jwire.StatusOK}
	for i, st := range statuses {
		if st != want[i] {
			t.Fatalf("sub-response %d status = %d, want %d", i, st, want[i])
		}
	}
	// The valid store in the failing batch still applied.
	if n := s.Journal().NumInterfaces(); n != 1 {
		t.Fatalf("journal has %d interfaces, want 1", n)
	}
}

func TestStatsCountsRequests(t *testing.T) {
	s, c := startServer(t)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.StoreInterface(journal.IfaceObs{IP: pkt.IPv4(10, 1, 1, 1), Source: journal.SrcICMP, At: t0}); err != nil {
		t.Fatal(err)
	}
	var b jclient.Batch
	for i := 0; i < 3; i++ {
		b.StoreInterface(journal.IfaceObs{IP: pkt.IPv4(10, 1, 2, byte(i)), Source: journal.SrcICMP, At: t0})
	}
	if _, err := c.StoreBatch(&b); err != nil {
		t.Fatal(err)
	}
	// Ping + single store + 3 batch sub-requests = 5 executed operations.
	if got := s.Stats().RequestsServed; got != 5 {
		t.Fatalf("RequestsServed = %d, want 5", got)
	}
}

func TestSnapshotRoundtrip(t *testing.T) {
	j := journal.New()
	j.StoreInterface(journal.IfaceObs{IP: pkt.IPv4(10, 0, 0, 1), HasMAC: true,
		MAC: pkt.MAC{8, 0, 0x20, 0, 0, 1}, Name: "a.example", Source: journal.SrcARP, At: t0})
	j.StoreInterface(journal.IfaceObs{IP: pkt.IPv4(10, 0, 0, 2), Source: journal.SrcICMP, At: t0.Add(time.Minute)})
	sn, _ := pkt.ParseSubnet("10.0.0.0/24")
	j.StoreGateway(journal.GatewayObs{IfaceIPs: []pkt.IP{pkt.IPv4(10, 0, 0, 254)},
		Subnets: []pkt.Subnet{sn}, Source: journal.SrcDNS, At: t0.Add(2 * time.Minute)})

	data := EncodeSnapshot(j)
	j2 := journal.New()
	if err := RestoreSnapshot(j2, data); err != nil {
		t.Fatal(err)
	}
	if j2.NumInterfaces() != j.NumInterfaces() || j2.NumGateways() != j.NumGateways() || j2.NumSubnets() != j.NumSubnets() {
		t.Fatalf("restored counts %d/%d/%d, want %d/%d/%d",
			j2.NumInterfaces(), j2.NumGateways(), j2.NumSubnets(),
			j.NumInterfaces(), j.NumGateways(), j.NumSubnets())
	}
	// Spot check a record, including stamps and index function.
	recs := j2.Interfaces(journal.Query{ByName: "a.example"})
	if len(recs) != 1 || recs[0].MAC != (pkt.MAC{8, 0, 0x20, 0, 0, 1}) {
		t.Fatalf("restored record lookup failed: %+v", recs)
	}
	if !recs[0].Stamp.Discovered.Equal(t0) {
		t.Fatalf("restored stamp = %v", recs[0].Stamp)
	}
	// New stores after restore must not collide with restored IDs.
	id, _ := j2.StoreInterface(journal.IfaceObs{IP: pkt.IPv4(10, 0, 0, 3), Source: journal.SrcICMP, At: t0})
	for _, r := range j2.Interfaces(journal.Query{}) {
		if r.ID == id && r.IP != pkt.IPv4(10, 0, 0, 3) {
			t.Fatal("restored journal reused an existing record ID")
		}
	}
}

func TestServerPersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.snap")

	s1 := New(nil)
	s1.SnapshotPath = path
	if err := s1.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	c, err := jclient.Dial(s1.Addr())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		if _, _, err := c.StoreInterface(journal.IfaceObs{
			IP: pkt.IPv4(10, 0, 0, byte(i)), Source: journal.SrcICMP, At: t0,
		}); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()
	if err := s1.Close(); err != nil { // writes final snapshot
		t.Fatal(err)
	}

	s2 := New(nil)
	s2.SnapshotPath = path
	if err := s2.LoadSnapshot(); err != nil {
		t.Fatal(err)
	}
	if n := s2.Journal().NumInterfaces(); n != 10 {
		t.Fatalf("after restart, journal has %d interfaces, want 10", n)
	}
}

func TestCorruptSnapshotRejected(t *testing.T) {
	j := journal.New()
	if err := RestoreSnapshot(j, []byte("not a snapshot at all")); err == nil {
		t.Fatal("garbage snapshot restored without error")
	}
	data := EncodeSnapshot(j)
	data[0] ^= 0xff
	if err := RestoreSnapshot(journal.New(), data); err == nil {
		t.Fatal("bad magic accepted")
	}
}

// BenchmarkStoreOverTCP measures the store write path two ways:
//
//   - serial: one client, one request in flight, no WAL — the framing
//     and dispatch floor.
//   - parallel8-fsync: ≥8 concurrent pipelined clients against a
//     SyncAlways WAL — the group-commit path. records/sec and
//     fsyncs/op are the numbers CI gates (tools/benchgate.py against
//     bench/BENCH_write_baseline.json): group commit is working when
//     many acknowledged stores share each fsync (fsyncs/op well under
//     1) instead of paying one fsync per store.
func BenchmarkStoreOverTCP(b *testing.B) {
	b.Run("serial", func(b *testing.B) {
		s := New(nil)
		if err := s.Listen("127.0.0.1:0"); err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		c, err := jclient.Dial(s.Addr())
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := c.StoreInterface(journal.IfaceObs{
				IP: pkt.IP(i), Source: journal.SrcICMP, At: t0,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("parallel8-fsync", func(b *testing.B) {
		s := New(nil)
		l, err := wal.Open(wal.Options{
			Dir:    filepath.Join(b.TempDir(), "wal"),
			Policy: wal.SyncAlways,
		})
		if err != nil {
			b.Fatal(err)
		}
		s.WAL = l
		if err := s.Listen("127.0.0.1:0"); err != nil {
			b.Fatal(err)
		}
		defer s.Close()

		// At least 8 concurrent pipelined clients regardless of
		// GOMAXPROCS; each worker keeps a bounded window of stores in
		// flight so bursts land in shared commit groups.
		procs := runtime.GOMAXPROCS(0)
		b.SetParallelism((8 + procs - 1) / procs)
		const window = 32
		var next atomic.Uint64
		fsyncs0 := l.Stats().Fsyncs
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			p, err := jclient.DialPipeline(s.Addr())
			if err != nil {
				b.Error(err)
				return
			}
			defer p.Close()
			futs := make([]jclient.StoreFuture, 0, window)
			for pb.Next() {
				i := next.Add(1)
				futs = append(futs, p.StoreInterface(journal.IfaceObs{
					IP: pkt.IP(i), Source: journal.SrcICMP, At: t0,
				}))
				if len(futs) == window {
					for _, f := range futs {
						if _, _, err := f.Result(); err != nil {
							b.Error(err)
							return
						}
					}
					futs = futs[:0]
				}
			}
			for _, f := range futs {
				if _, _, err := f.Result(); err != nil {
					b.Error(err)
					return
				}
			}
		})
		b.StopTimer()
		elapsed := b.Elapsed().Seconds()
		if elapsed > 0 {
			b.ReportMetric(float64(b.N)/elapsed, "records/sec")
		}
		b.ReportMetric(float64(l.Stats().Fsyncs-fsyncs0)/float64(b.N), "fsyncs/op")
	})
}

func TestUnknownOpcodeRejected(t *testing.T) {
	s, _ := startServer(t)
	// Speak the frame protocol by hand with a bogus opcode.
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := jwire.WriteFrame(conn, []byte{0xEE}); err != nil {
		t.Fatal(err)
	}
	resp, err := jwire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp) == 0 || resp[0] != jwire.StatusError {
		t.Fatalf("unknown opcode accepted: % x", resp)
	}
}

func TestTruncatedRequestRejected(t *testing.T) {
	s, _ := startServer(t)
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// StoreInterface opcode with no body.
	if err := jwire.WriteFrame(conn, []byte{jwire.OpStoreInterface}); err != nil {
		t.Fatal(err)
	}
	resp, err := jwire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp) == 0 || resp[0] != jwire.StatusError {
		t.Fatalf("truncated request accepted: % x", resp)
	}
	// The connection survives for the next, valid request.
	var w jwire.Writer
	w.U8(jwire.OpPing)
	if err := jwire.WriteFrame(conn, w.B); err != nil {
		t.Fatal(err)
	}
	resp, err = jwire.ReadFrame(conn)
	if err != nil || resp[0] != jwire.StatusOK {
		t.Fatalf("server wedged after bad request: %v % x", err, resp)
	}
}
