package jserver

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"fremont/internal/jclient"
	"fremont/internal/journal"
	"fremont/internal/jwire"
	"fremont/internal/netsim/pkt"
)

// dialSub opens a raw subscription connection and consumes the
// acknowledgment, returning the conn plus the server's starting cursor
// and current sequence.
func dialSub(t *testing.T, addr string, req jwire.SubscribeReq) (net.Conn, uint64, uint64) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	var w jwire.Writer
	w.U8(jwire.OpSubscribe)
	jwire.PutSubscribeReq(&w, req)
	if err := jwire.WriteFrame(conn, w.B); err != nil {
		t.Fatal(err)
	}
	resp, err := jwire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	r := &jwire.Reader{B: resp}
	if st := r.U8(); st != jwire.StatusOK {
		t.Fatalf("subscribe status %d: %s", st, r.String())
	}
	start, cur := r.U64(), r.U64()
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	return conn, start, cur
}

func readEvent(t *testing.T, conn net.Conn) jwire.SubEvent {
	t.Helper()
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	frame, err := jwire.ReadFrame(conn)
	if err != nil {
		t.Fatalf("read push frame: %v", err)
	}
	r := &jwire.Reader{B: frame}
	ev := jwire.GetSubEvent(r)
	if r.Err != nil {
		t.Fatalf("decode push frame: %v", r.Err)
	}
	return ev
}

func ifaceObs(i int) journal.IfaceObs {
	return journal.IfaceObs{
		IP: pkt.IPv4(10, 0, byte(i/250), byte(i%250+1)), HasMAC: true,
		MAC:    pkt.MAC{8, 0, 0x20, 9, byte(i / 250), byte(i % 250)},
		Name:   fmt.Sprintf("host-%d.cs.colorado.edu", i),
		Source: journal.SrcARP, At: t0,
	}
}

// A live subscriber sees every committed store, in order, with
// contiguous mod-seqs — no polling call anywhere.
func TestSubscribePushesLiveCommits(t *testing.T) {
	s, c := startServer(t)
	conn, start, cur := dialSub(t, s.Addr(), jwire.SubscribeReq{})
	if start != 0 || cur != 0 {
		t.Fatalf("fresh journal: start=%d cur=%d", start, cur)
	}
	const n = 5
	for i := 0; i < n; i++ {
		if _, _, err := c.StoreInterface(ifaceObs(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		ev := readEvent(t, conn)
		if ev.Type != jwire.SubEventRecord || ev.Kind != journal.KindInterface {
			t.Fatalf("event %d: %+v", i, ev)
		}
		// Each distinct-IP store allocates exactly one mod-seq on a
		// fresh journal, so the pushed stream must be exactly 1..n.
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d: seq %d, want %d", i, ev.Seq, i+1)
		}
		if ev.Iface == nil || ev.Iface.IP != ifaceObs(i).IP {
			t.Fatalf("event %d: wrong record %+v", i, ev.Iface)
		}
	}
}

// Subscribing with a cursor first replays history past it, then flows
// into live pushes with no gap and no duplicate.
func TestSubscribeCatchUpThenLive(t *testing.T) {
	s, c := startServer(t)
	for i := 0; i < 3; i++ {
		if _, _, err := c.StoreInterface(ifaceObs(i)); err != nil {
			t.Fatal(err)
		}
	}
	conn, start, cur := dialSub(t, s.Addr(), jwire.SubscribeReq{After: 1})
	if start != 1 || cur != 3 {
		t.Fatalf("start=%d cur=%d", start, cur)
	}
	var seqs []uint64
	for len(seqs) < 2 {
		ev := readEvent(t, conn)
		seqs = append(seqs, ev.Seq)
	}
	if seqs[0] != 2 || seqs[1] != 3 {
		t.Fatalf("catch-up seqs %v, want [2 3]", seqs)
	}
	if _, _, err := c.StoreInterface(ifaceObs(3)); err != nil {
		t.Fatal(err)
	}
	if ev := readEvent(t, conn); ev.Seq != 4 {
		t.Fatalf("live seq %d, want 4", ev.Seq)
	}
}

// FromNow skips history entirely.
func TestSubscribeFromNow(t *testing.T) {
	s, c := startServer(t)
	for i := 0; i < 3; i++ {
		if _, _, err := c.StoreInterface(ifaceObs(i)); err != nil {
			t.Fatal(err)
		}
	}
	conn, start, _ := dialSub(t, s.Addr(), jwire.SubscribeReq{FromNow: true, After: 99})
	if start != 3 {
		t.Fatalf("start=%d, want 3", start)
	}
	if _, _, err := c.StoreInterface(ifaceObs(7)); err != nil {
		t.Fatal(err)
	}
	ev := readEvent(t, conn)
	if ev.Seq != 4 || ev.Iface == nil || ev.Iface.IP != ifaceObs(7).IP {
		t.Fatalf("first event %+v, want the post-subscribe store", ev)
	}
}

// The kind mask filters at the server: a subnet-only subscriber never
// sees interface traffic.
func TestSubscribeKindFilter(t *testing.T) {
	s, c := startServer(t)
	conn, _, _ := dialSub(t, s.Addr(), jwire.SubscribeReq{Kinds: jwire.SubKindSubnet})
	if _, _, err := c.StoreInterface(ifaceObs(0)); err != nil {
		t.Fatal(err)
	}
	sn, _ := pkt.ParseSubnet("10.0.0.0/24")
	if _, err := c.StoreSubnet(journal.SubnetObs{Subnet: sn, Source: journal.SrcICMP, At: t0}); err != nil {
		t.Fatal(err)
	}
	ev := readEvent(t, conn)
	if ev.Kind != journal.KindSubnet || ev.Subnet == nil {
		t.Fatalf("filtered stream delivered %+v", ev)
	}
}

// A subscription request inside a batch must be rejected, not hijack
// the connection.
func TestSubscribeRejectedInBatch(t *testing.T) {
	s, c := startServer(t)
	var b jclient.Batch
	b.StoreInterface(ifaceObs(0))
	if _, err := c.StoreBatch(&b); err != nil {
		t.Fatal(err)
	}
	// Hand-build a batch holding a subscribe sub-request.
	var sub jwire.Writer
	sub.U8(jwire.OpSubscribe)
	jwire.PutSubscribeReq(&sub, jwire.SubscribeReq{})
	var w jwire.Writer
	w.U8(jwire.OpBatch)
	jwire.PutBatch(&w, [][]byte{sub.B})
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := jwire.WriteFrame(conn, w.B); err != nil {
		t.Fatal(err)
	}
	resp, err := jwire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	r := &jwire.Reader{B: resp}
	if st := r.U8(); st != jwire.StatusOK {
		t.Fatalf("batch status %d", st)
	}
	if n := r.U32(); n != 1 {
		t.Fatalf("%d sub-responses", n)
	}
	sr := &jwire.Reader{B: r.Bytes()}
	if st := sr.U8(); st != jwire.StatusError {
		t.Fatalf("subscribe-in-batch status %d, want error", st)
	}
}

// Slow-consumer backpressure: a subscriber that stops reading is
// degraded to a cursor resync — with obs counters to prove it — while
// concurrent Store and Batch commits keep flowing. The subscriber end
// is a net.Pipe, so every push write blocks until the test deigns to
// read: the overflow path is exercised deterministically, not when the
// kernel's socket buffer happens to fill.
func TestSlowConsumerDroppedToResync(t *testing.T) {
	s := New(nil)
	s.SubQueueMax = 4
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	srvEnd, cliEnd := net.Pipe()
	defer cliEnd.Close()
	sub := &subscriber{
		s: s, conn: srvEnd, kinds: jwire.SubAllKinds,
		lagged: true,
		notify: make(chan struct{}, 1),
		quit:   make(chan struct{}),
	}
	s.addSub(sub)
	defer s.removeSub(sub)
	writerDone := make(chan struct{})
	go func() { defer close(writerDone); sub.run() }()

	// Commit from several connections at once while no one reads the
	// subscriber's pipe. Completion of Wait IS the liveness assertion:
	// if a full queue blocked the commit path, these would hang on the
	// stuck writer and the test would time out.
	const workers, perWorker = 4, 50
	var wg sync.WaitGroup
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			c, err := jclient.Dial(s.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < perWorker; i++ {
				n := wkr*perWorker + i
				if n%10 == 9 { // every tenth commit is a batch
					var b jclient.Batch
					b.StoreInterface(ifaceObs(n))
					if _, err := c.StoreBatch(&b); err != nil {
						t.Error(err)
						return
					}
					continue
				}
				if _, _, err := c.StoreInterface(ifaceObs(n)); err != nil {
					t.Error(err)
					return
				}
			}
		}(wkr)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if s.subDrops.Value() == 0 {
		t.Fatal("queue never overflowed: backpressure path untested")
	}

	// Now drain the pipe. The stream must contain at least one resync
	// marker, and the record events must carry strictly increasing
	// mod-seqs (no duplicates) that end at the journal's current seq
	// with every stored interface represented (no gaps in state).
	target := s.Journal().CurSeq()
	ips := make(map[pkt.IP]bool)
	var resyncs int
	var last uint64
	for last < target {
		cliEnd.SetReadDeadline(time.Now().Add(10 * time.Second))
		frame, err := jwire.ReadFrame(cliEnd)
		if err != nil {
			t.Fatalf("drain: %v (last seq %d of %d)", err, last, target)
		}
		r := &jwire.Reader{B: frame}
		ev := jwire.GetSubEvent(r)
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if ev.Type == jwire.SubEventResync {
			resyncs++
			continue
		}
		if ev.Seq <= last {
			t.Fatalf("seq %d after %d: duplicate or out-of-order push", ev.Seq, last)
		}
		last = ev.Seq
		if ev.Iface != nil {
			ips[ev.Iface.IP] = true
		}
	}
	if resyncs == 0 || s.subResyncs.Value() == 0 {
		t.Fatalf("no resync observed (markers %d, counter %d)", resyncs, s.subResyncs.Value())
	}
	for i := 0; i < workers*perWorker; i++ {
		if !ips[ifaceObs(i).IP] {
			t.Fatalf("interface %d missing from the drained stream", i)
		}
	}

	sub.stop()
	<-writerDone
}

// A benchmark commit path with subscribers attached: one idle (caught
// up, watching a filtered kind that never fires) and one active
// (draining every push). Guards the claim that streaming stays off the
// commit critical path.
func BenchmarkStoreOverTCPWithSubscribers(b *testing.B) {
	s := New(nil)
	if err := s.Listen("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	c, err := jclient.Dial(s.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()

	subscribe := func(req jwire.SubscribeReq) net.Conn {
		conn, err := net.Dial("tcp", s.Addr())
		if err != nil {
			b.Fatal(err)
		}
		var w jwire.Writer
		w.U8(jwire.OpSubscribe)
		jwire.PutSubscribeReq(&w, req)
		if err := jwire.WriteFrame(conn, w.B); err != nil {
			b.Fatal(err)
		}
		if _, err := jwire.ReadFrame(conn); err != nil {
			b.Fatal(err)
		}
		return conn
	}
	idle := subscribe(jwire.SubscribeReq{Kinds: jwire.SubKindGateway, FromNow: true})
	defer idle.Close()
	active := subscribe(jwire.SubscribeReq{FromNow: true})
	defer active.Close()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for {
			if _, err := jwire.ReadFrame(active); err != nil {
				return
			}
		}
	}()

	obs := ifaceObs(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obs.At = obs.At.Add(time.Second)
		if _, _, err := c.StoreInterface(obs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	active.Close()
	<-drained
}
