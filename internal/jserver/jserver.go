// Package jserver implements the Journal Server: a TCP server that owns
// the in-memory Journal, serializes updates, answers Get queries, and
// "writes [the Journal] to disk periodically and at termination".
package jserver

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"sync"
	"time"

	"fremont/internal/journal"
	"fremont/internal/jwire"
)

// Server owns a Journal and serves the jwire protocol.
type Server struct {
	mu      sync.Mutex
	journal *journal.Journal

	SnapshotPath     string        // "" disables persistence
	SnapshotInterval time.Duration // default 5 minutes

	ln     net.Listener
	wg     sync.WaitGroup
	quit   chan struct{}
	closed bool

	// RequestsServed counts protocol requests, for load reporting.
	RequestsServed int
}

// New creates a server around j (a fresh journal if nil).
func New(j *journal.Journal) *Server {
	if j == nil {
		j = journal.New()
	}
	return &Server{
		journal:          j,
		SnapshotInterval: 5 * time.Minute,
		quit:             make(chan struct{}),
	}
}

// Journal exposes the underlying journal for in-process callers (tests,
// the sim harness). Callers must not retain references across server use.
func (s *Server) Journal() *journal.Journal { return s.journal }

// LoadSnapshot restores the journal from SnapshotPath if the file exists.
func (s *Server) LoadSnapshot() error {
	if s.SnapshotPath == "" {
		return nil
	}
	data, err := os.ReadFile(s.SnapshotPath)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return RestoreSnapshot(s.journal, data)
}

// SaveSnapshot writes the journal to SnapshotPath atomically.
func (s *Server) SaveSnapshot() error {
	if s.SnapshotPath == "" {
		return nil
	}
	s.mu.Lock()
	data := EncodeSnapshot(s.journal)
	s.mu.Unlock()
	tmp := s.SnapshotPath + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, s.SnapshotPath)
}

// Listen binds addr ("host:port"; ":0" picks a free port) and starts
// serving in the background. Addr() reports the bound address.
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	if s.SnapshotPath != "" {
		s.wg.Add(1)
		go s.snapshotLoop()
	}
	return nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the server, waits for connections to drain, and writes a
// final snapshot.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.quit)
	if s.ln != nil {
		s.ln.Close()
	}
	s.wg.Wait()
	return s.SaveSnapshot()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.quit:
				return
			default:
			}
			log.Printf("jserver: accept: %v", err)
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
		}()
	}
}

func (s *Server) snapshotLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.SnapshotInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := s.SaveSnapshot(); err != nil {
				log.Printf("jserver: snapshot: %v", err)
			}
		case <-s.quit:
			return
		}
	}
}

func (s *Server) handleConn(conn net.Conn) {
	defer conn.Close()
	go func() {
		<-s.quit
		conn.Close() // unblock reads on shutdown
	}()
	for {
		req, err := jwire.ReadFrame(conn)
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				log.Printf("jserver: read: %v", err)
			}
			return
		}
		resp := s.dispatch(req)
		if err := jwire.WriteFrame(conn, resp); err != nil {
			return
		}
	}
}

// dispatch applies one request under the journal lock and builds the
// response payload.
func (s *Server) dispatch(req []byte) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.RequestsServed++

	r := &jwire.Reader{B: req}
	op := r.U8()
	var w jwire.Writer
	fail := func(err error) []byte {
		w.B = w.B[:0]
		w.U8(jwire.StatusError)
		w.String(err.Error())
		return w.B
	}

	switch op {
	case jwire.OpStoreInterface:
		obs := jwire.GetIfaceObs(r)
		if r.Err != nil {
			return fail(r.Err)
		}
		id, created := s.journal.StoreInterface(obs)
		w.U8(jwire.StatusOK)
		w.ID(id)
		w.Bool(created)
	case jwire.OpStoreGateway:
		obs := jwire.GetGatewayObs(r)
		if r.Err != nil {
			return fail(r.Err)
		}
		id := s.journal.StoreGateway(obs)
		w.U8(jwire.StatusOK)
		w.ID(id)
	case jwire.OpStoreSubnet:
		obs := jwire.GetSubnetObs(r)
		if r.Err != nil {
			return fail(r.Err)
		}
		id := s.journal.StoreSubnet(obs)
		w.U8(jwire.StatusOK)
		w.ID(id)
	case jwire.OpGetInterfaces:
		q := jwire.GetQuery(r)
		if r.Err != nil {
			return fail(r.Err)
		}
		recs := s.journal.Interfaces(q)
		w.U8(jwire.StatusOK)
		w.U32(uint32(len(recs)))
		for _, rec := range recs {
			jwire.PutInterfaceRec(&w, rec)
		}
	case jwire.OpGetGateways:
		recs := s.journal.Gateways()
		w.U8(jwire.StatusOK)
		w.U32(uint32(len(recs)))
		for _, rec := range recs {
			jwire.PutGatewayRec(&w, rec)
		}
	case jwire.OpGetSubnets:
		recs := s.journal.Subnets()
		w.U8(jwire.StatusOK)
		w.U32(uint32(len(recs)))
		for _, rec := range recs {
			jwire.PutSubnetRec(&w, rec)
		}
	case jwire.OpDelete:
		kind := journal.RecordKind(r.U8())
		id := r.ID()
		if r.Err != nil {
			return fail(r.Err)
		}
		ok := s.journal.Delete(kind, id)
		w.U8(jwire.StatusOK)
		w.Bool(ok)
	case jwire.OpPing:
		w.U8(jwire.StatusOK)
	default:
		return fail(fmt.Errorf("jserver: unknown opcode %d", op))
	}
	return w.B
}

// --- Snapshot format ------------------------------------------------------

const snapshotMagic = 0x4652454d // "FREM"

// EncodeSnapshot serializes the whole journal (records in modification
// order, oldest first).
func EncodeSnapshot(j *journal.Journal) []byte {
	var w jwire.Writer
	w.U32(snapshotMagic)
	w.U16(1) // version

	ifs := j.RecentlyModified(journal.KindInterface, 0)
	w.U32(uint32(len(ifs)))
	for _, r := range ifs {
		jwire.PutInterfaceRec(&w, r.(*journal.InterfaceRec))
	}
	gws := j.RecentlyModified(journal.KindGateway, 0)
	w.U32(uint32(len(gws)))
	for _, r := range gws {
		jwire.PutGatewayRec(&w, r.(*journal.GatewayRec))
	}
	sns := j.RecentlyModified(journal.KindSubnet, 0)
	w.U32(uint32(len(sns)))
	for _, r := range sns {
		jwire.PutSubnetRec(&w, r.(*journal.SubnetRec))
	}
	return w.B
}

// RestoreSnapshot loads records into j.
func RestoreSnapshot(j *journal.Journal, data []byte) error {
	r := &jwire.Reader{B: data}
	if r.U32() != snapshotMagic {
		return errors.New("jserver: bad snapshot magic")
	}
	if v := r.U16(); v != 1 {
		return fmt.Errorf("jserver: unsupported snapshot version %d", v)
	}
	for n := int(r.U32()); n > 0 && r.Err == nil; n-- {
		j.RestoreInterface(jwire.GetInterfaceRec(r))
	}
	for n := int(r.U32()); n > 0 && r.Err == nil; n-- {
		j.RestoreGateway(jwire.GetGatewayRec(r))
	}
	for n := int(r.U32()); n > 0 && r.Err == nil; n-- {
		j.RestoreSubnet(jwire.GetSubnetRec(r))
	}
	return r.Err
}
