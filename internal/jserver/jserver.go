// Package jserver implements the Journal Server: a TCP server that owns
// the in-memory Journal, serializes updates, answers Get queries, and
// "writes [the Journal] to disk periodically and at termination".
package jserver

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"fremont/internal/journal"
	"fremont/internal/jwire"
)

// Server owns a Journal and serves the jwire protocol. The server itself
// holds no lock around request dispatch: the Journal's internal read/write
// lock lets Get queries from many connections proceed in parallel while
// stores serialize against them.
type Server struct {
	journal *journal.Journal

	SnapshotPath     string        // "" disables persistence
	SnapshotInterval time.Duration // default 5 minutes

	ln     net.Listener
	wg     sync.WaitGroup
	quit   chan struct{}
	mu     sync.Mutex // guards closed
	closed bool

	// requestsServed counts executed operations (each batch sub-request
	// counts once), for load reporting. Read via Stats.
	requestsServed atomic.Int64
}

// Stats is a point-in-time snapshot of the server's counters.
type Stats struct {
	RequestsServed int64
}

// Stats returns the server's counters; safe to call at any time.
func (s *Server) Stats() Stats {
	return Stats{RequestsServed: s.requestsServed.Load()}
}

// New creates a server around j (a fresh journal if nil).
func New(j *journal.Journal) *Server {
	if j == nil {
		j = journal.New()
	}
	return &Server{
		journal:          j,
		SnapshotInterval: 5 * time.Minute,
		quit:             make(chan struct{}),
	}
}

// Journal exposes the underlying journal for in-process callers (tests,
// the sim harness). Callers must not retain references across server use.
func (s *Server) Journal() *journal.Journal { return s.journal }

// LoadSnapshot restores the journal from SnapshotPath if the file exists.
func (s *Server) LoadSnapshot() error {
	if s.SnapshotPath == "" {
		return nil
	}
	data, err := os.ReadFile(s.SnapshotPath)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	return RestoreSnapshot(s.journal, data)
}

// SaveSnapshot writes the journal to SnapshotPath atomically. The journal's
// own read lock gives the encoder a consistent view.
func (s *Server) SaveSnapshot() error {
	if s.SnapshotPath == "" {
		return nil
	}
	data := EncodeSnapshot(s.journal)
	tmp := s.SnapshotPath + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, s.SnapshotPath)
}

// Listen binds addr ("host:port"; ":0" picks a free port) and starts
// serving in the background. Addr() reports the bound address.
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	if s.SnapshotPath != "" {
		s.wg.Add(1)
		go s.snapshotLoop()
	}
	return nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the server, waits for connections to drain, and writes a
// final snapshot.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.quit)
	if s.ln != nil {
		s.ln.Close()
	}
	s.wg.Wait()
	return s.SaveSnapshot()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.quit:
				return
			default:
			}
			log.Printf("jserver: accept: %v", err)
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
		}()
	}
}

func (s *Server) snapshotLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.SnapshotInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := s.SaveSnapshot(); err != nil {
				log.Printf("jserver: snapshot: %v", err)
			}
		case <-s.quit:
			return
		}
	}
}

func (s *Server) handleConn(conn net.Conn) {
	defer conn.Close()
	go func() {
		<-s.quit
		conn.Close() // unblock reads on shutdown
	}()
	for {
		req, err := jwire.ReadFrame(conn)
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				log.Printf("jserver: read: %v", err)
			}
			return
		}
		resp := s.dispatch(req)
		if err := jwire.WriteFrame(conn, resp); err != nil {
			return
		}
	}
}

// dispatch routes one frame: either a single operation or an OpBatch
// carrying many. The journal's own locking serializes stores and lets
// queries run in parallel.
func (s *Server) dispatch(req []byte) []byte {
	r := &jwire.Reader{B: req}
	op := r.U8()
	if op == jwire.OpBatch {
		return s.dispatchBatch(r)
	}
	return s.dispatchOne(op, r)
}

// dispatchBatch executes each sub-request in order and frames one
// length-prefixed sub-response (with its own status byte) per sub-request.
// Sub-requests are independent: a failure is reported in its slot and the
// rest of the batch still executes.
func (s *Server) dispatchBatch(r *jwire.Reader) []byte {
	subs := jwire.GetBatch(r)
	var w jwire.Writer
	if r.Err != nil {
		w.U8(jwire.StatusError)
		w.String(r.Err.Error())
		return w.B
	}
	w.U8(jwire.StatusOK)
	w.U32(uint32(len(subs)))
	for _, sub := range subs {
		sr := &jwire.Reader{B: sub}
		op := sr.U8()
		var resp []byte
		switch {
		case sr.Err != nil:
			resp = errPayload(errors.New("jserver: empty batch sub-request"))
		case op == jwire.OpBatch:
			resp = errPayload(errors.New("jserver: nested batch rejected"))
		default:
			resp = s.dispatchOne(op, sr)
		}
		w.Bytes(resp)
	}
	return w.B
}

func errPayload(err error) []byte {
	var w jwire.Writer
	w.U8(jwire.StatusError)
	w.String(err.Error())
	return w.B
}

// dispatchOne applies one operation and builds its response payload.
func (s *Server) dispatchOne(op byte, r *jwire.Reader) []byte {
	s.requestsServed.Add(1)

	var w jwire.Writer
	fail := func(err error) []byte {
		w.B = w.B[:0]
		w.U8(jwire.StatusError)
		w.String(err.Error())
		return w.B
	}

	switch op {
	case jwire.OpStoreInterface:
		obs := jwire.GetIfaceObs(r)
		if r.Err != nil {
			return fail(r.Err)
		}
		id, created := s.journal.StoreInterface(obs)
		w.U8(jwire.StatusOK)
		w.ID(id)
		w.Bool(created)
	case jwire.OpStoreGateway:
		obs := jwire.GetGatewayObs(r)
		if r.Err != nil {
			return fail(r.Err)
		}
		id := s.journal.StoreGateway(obs)
		w.U8(jwire.StatusOK)
		w.ID(id)
	case jwire.OpStoreSubnet:
		obs := jwire.GetSubnetObs(r)
		if r.Err != nil {
			return fail(r.Err)
		}
		id := s.journal.StoreSubnet(obs)
		w.U8(jwire.StatusOK)
		w.ID(id)
	case jwire.OpGetInterfaces:
		q := jwire.GetQuery(r)
		if r.Err != nil {
			return fail(r.Err)
		}
		recs := s.journal.Interfaces(q)
		w.U8(jwire.StatusOK)
		w.U32(uint32(len(recs)))
		for _, rec := range recs {
			jwire.PutInterfaceRec(&w, rec)
		}
	case jwire.OpGetGateways:
		recs := s.journal.Gateways()
		w.U8(jwire.StatusOK)
		w.U32(uint32(len(recs)))
		for _, rec := range recs {
			jwire.PutGatewayRec(&w, rec)
		}
	case jwire.OpGetSubnets:
		recs := s.journal.Subnets()
		w.U8(jwire.StatusOK)
		w.U32(uint32(len(recs)))
		for _, rec := range recs {
			jwire.PutSubnetRec(&w, rec)
		}
	case jwire.OpDelete:
		kind := journal.RecordKind(r.U8())
		id := r.ID()
		if r.Err != nil {
			return fail(r.Err)
		}
		ok := s.journal.Delete(kind, id)
		w.U8(jwire.StatusOK)
		w.Bool(ok)
	case jwire.OpPing:
		w.U8(jwire.StatusOK)
	default:
		return fail(fmt.Errorf("jserver: unknown opcode %d", op))
	}
	return w.B
}

// --- Snapshot format ------------------------------------------------------

const snapshotMagic = 0x4652454d // "FREM"

// EncodeSnapshot serializes the whole journal (records in modification
// order, oldest first). journal.Export takes the read lock once, so the
// snapshot is a single consistent point in time even under concurrent
// stores.
func EncodeSnapshot(j *journal.Journal) []byte {
	var w jwire.Writer
	w.U32(snapshotMagic)
	w.U16(1) // version

	ifs, gws, sns := j.Export()
	w.U32(uint32(len(ifs)))
	for _, r := range ifs {
		jwire.PutInterfaceRec(&w, r)
	}
	w.U32(uint32(len(gws)))
	for _, r := range gws {
		jwire.PutGatewayRec(&w, r)
	}
	w.U32(uint32(len(sns)))
	for _, r := range sns {
		jwire.PutSubnetRec(&w, r)
	}
	return w.B
}

// RestoreSnapshot loads records into j.
func RestoreSnapshot(j *journal.Journal, data []byte) error {
	r := &jwire.Reader{B: data}
	if r.U32() != snapshotMagic {
		return errors.New("jserver: bad snapshot magic")
	}
	if v := r.U16(); v != 1 {
		return fmt.Errorf("jserver: unsupported snapshot version %d", v)
	}
	for n := int(r.U32()); n > 0 && r.Err == nil; n-- {
		j.RestoreInterface(jwire.GetInterfaceRec(r))
	}
	for n := int(r.U32()); n > 0 && r.Err == nil; n-- {
		j.RestoreGateway(jwire.GetGatewayRec(r))
	}
	for n := int(r.U32()); n > 0 && r.Err == nil; n-- {
		j.RestoreSubnet(jwire.GetSubnetRec(r))
	}
	return r.Err
}
