// Package jserver implements the Journal Server: a TCP server that owns
// the in-memory Journal, serializes updates, answers Get queries, and
// "writes [the Journal] to disk periodically and at termination".
package jserver

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fremont/internal/journal"
	"fremont/internal/jwire"
	"fremont/internal/obs"
	"fremont/internal/wal"
)

// Server owns a Journal and serves the jwire protocol. The server itself
// holds no lock around query dispatch: the Journal's internal read/write
// lock lets Get queries from many connections proceed in parallel while
// stores serialize against them. When a WAL is attached, mutating
// requests additionally serialize on logMu so the log's append order is
// exactly the journal's apply order.
type Server struct {
	journal *journal.Journal

	SnapshotPath     string        // "" disables persistence
	SnapshotInterval time.Duration // default 5 minutes

	// WAL, when non-nil, is the write-ahead log every mutating request
	// is appended to before it touches the journal. Set it (along with
	// SnapshotPath) before Recover/Listen; the server owns it from then
	// on and closes it in Close.
	WAL *wal.Log

	// SubQueueMax overrides DefaultSubQueueMax: the number of pending
	// push events a subscriber may have queued before it is degraded to
	// a cursor resync. Set before Listen.
	SubQueueMax int

	// TenantQuota caps the records a tenant namespace may hold; 0 means
	// unlimited. A mutating frame on a tenant at or over its quota is
	// rejected before it reaches the WAL (admission control: a concurrent
	// burst already in flight may overshoot by its own size). Set before
	// Listen.
	TenantQuota int

	// tenants maps namespace -> journal, created lazily on first use
	// (OpNamespace select, WAL replay, or snapshot restore). The default
	// namespace "" is s.journal and is never in this map.
	tenantMu sync.Mutex
	tenants  map[string]*journal.Journal

	tenantRecs   *obs.GaugeVec   // jserver_tenant_records{tenant=...}
	quotaRejects *obs.CounterVec // jserver_tenant_quota_rejects_total{tenant=...}

	// logMu is the commit/snapshot barrier. Mutating requests hold it
	// for READING across their whole stage+wait+apply span — many can
	// run concurrently, sharing commit groups in the WAL. SaveSnapshot
	// takes it for WRITING, which quiesces the pipeline: no frame is
	// staged-but-unapplied while the write lock is held, so a snapshot
	// covers exactly the records below its WAL rotation boundary.
	logMu sync.RWMutex
	// stageMu is the short sequencing lock inside the pipeline: one
	// holder at a time stages its frame in the WAL (assigning the LSN)
	// and takes its place in the apply queue, so WAL order and apply
	// order are assigned atomically. The expensive work — the group
	// commit's write+fsync, the journal apply — happens outside it.
	stageMu sync.Mutex
	// applyTail is the tail of the apply-order queue: each staged
	// mutation replaces it with its own done channel and waits for its
	// predecessor's, so journal applies happen in exactly LSN order —
	// replay order — even though durability waits finish out of order.
	applyTail chan struct{}
	// saveMu serializes whole SaveSnapshot calls (ticker loop vs.
	// explicit callers) so two writers never race on the same rename.
	saveMu sync.Mutex

	ln     net.Listener
	wg     sync.WaitGroup
	quit   chan struct{}
	mu     sync.Mutex // guards closed
	closed bool

	// obs is the server's metrics registry: per-op request counters and
	// latency histograms, connection gauges, recovery gauges. Each server
	// owns its own registry so co-resident servers (tests, multi-tenant
	// processes) never mix counts; fremontd shares it with the WAL and
	// the -metrics-addr endpoint. The cached vecs keep the dispatch hot
	// path to one sync.Map load per instrument.
	obs      *obs.Registry
	reqCount *obs.CounterVec
	reqLat   *obs.HistogramVec
	conns    *obs.Gauge
	connsTot *obs.Counter
	batches  *obs.Counter

	// Subscription hub (subscribe.go). hubCursor is the last mod-seq
	// fanned out to live subscribers; publish rounds serialize on hubMu,
	// membership on subMu, and nsubs keeps the no-subscriber commit
	// fast path to one atomic load.
	hubMu     sync.Mutex
	hubCursor uint64
	subMu     sync.Mutex
	subs      map[*subscriber]struct{}
	nsubs     atomic.Int64

	subsGauge  *obs.Gauge
	subsTotal  *obs.Counter
	subPushes  *obs.Counter
	subDrops   *obs.Counter
	subResyncs *obs.Counter
}

// Stats is a point-in-time snapshot of the server's headline counters —
// a thin compatibility view over the metrics registry; the full picture
// (per-op counts, latency percentiles, WAL activity) comes from Obs().
type Stats struct {
	RequestsServed int64
}

// Stats returns the server's counters; safe to call at any time.
// RequestsServed is the sum of the per-op jserver_requests_total family
// (each batch sub-request counts once).
func (s *Server) Stats() Stats {
	return Stats{RequestsServed: s.reqCount.Sum()}
}

// Obs returns the server's metrics registry, for mounting on an HTTP
// endpoint or sharing with the WAL.
func (s *Server) Obs() *obs.Registry { return s.obs }

// New creates a server around j (a fresh journal if nil).
func New(j *journal.Journal) *Server {
	if j == nil {
		j = journal.New()
	}
	reg := obs.NewRegistry()
	j.Instrument(reg) // mirror journal store/merge/conflict counters
	return &Server{
		journal:          j,
		SnapshotInterval: 5 * time.Minute,
		quit:             make(chan struct{}),
		applyTail:        closedChan,
		obs:              reg,
		reqCount:         reg.CounterVec("jserver_requests_total", "op"),
		reqLat:           reg.HistogramVec("jserver_request_seconds", "op", nil),
		conns:            reg.Gauge("jserver_open_connections"),
		connsTot:         reg.Counter("jserver_connections_total"),
		batches:          reg.Counter("jserver_batches_total"),
		subsGauge:        reg.Gauge("jserver_subscribers"),
		subsTotal:        reg.Counter("jserver_subscriptions_total"),
		subPushes:        reg.Counter("jserver_sub_pushes_total"),
		subDrops:         reg.Counter("jserver_sub_dropped_events_total"),
		subResyncs:       reg.Counter("jserver_sub_resyncs_total"),
		tenantRecs:       reg.GaugeVec("jserver_tenant_records", "tenant"),
		quotaRejects:     reg.CounterVec("jserver_tenant_quota_rejects_total", "tenant"),
	}
}

// Journal exposes the underlying journal for in-process callers (tests,
// the sim harness). Callers must not retain references across server use.
func (s *Server) Journal() *journal.Journal { return s.journal }

// LoadSnapshot restores the journal from SnapshotPath if the file exists.
// Servers with a WAL attached should call Recover instead, which also
// replays the log tail.
func (s *Server) LoadSnapshot() error {
	_, err := s.loadSnapshot()
	return err
}

func (s *Server) loadSnapshot() (RecoveryStats, error) {
	var st RecoveryStats
	if s.SnapshotPath == "" {
		return st, nil
	}
	data, err := os.ReadFile(s.SnapshotPath)
	if errors.Is(err, os.ErrNotExist) {
		return st, nil
	}
	if err != nil {
		return st, err
	}
	lsn, err := s.restoreServerSnapshot(data)
	if err != nil {
		return st, err
	}
	st.SnapshotLoaded = true
	st.SnapshotLSN = lsn
	return st, nil
}

// RecoveryStats reports what Recover rebuilt the journal from.
type RecoveryStats struct {
	SnapshotLoaded bool
	SnapshotLSN    uint64 // WAL position the snapshot covers
	WALFrames      int    // request frames replayed from the log
	WALOps         int    // mutating operations applied from those frames
	WALSkipped     int    // frames already covered by the snapshot
	Torn           bool   // the log had a torn/corrupt tail
	DroppedBytes   int64  // unverifiable log bytes discarded
}

// Recover rebuilds the journal: restore the snapshot (if any), then
// replay every WAL record past the snapshot's LSN through the same
// dispatch the live server uses. Call it after attaching the WAL and
// before Listen. What was rebuilt is returned and also published as
// jserver_recovery_* gauges, so a metrics scrape sees how the last
// restart went long after the startup log line scrolled away.
func (s *Server) Recover() (RecoveryStats, error) {
	st, err := s.loadSnapshot()
	if err != nil || s.WAL == nil {
		s.publishRecovery(st)
		return st, err
	}
	// Never reissue LSNs the snapshot already covers, even if every
	// segment was compacted away or lost.
	s.WAL.AdvanceLSN(st.SnapshotLSN)
	ri := s.WAL.RecoveryInfo()
	st.Torn = ri.Torn
	st.DroppedBytes = ri.DroppedBytes
	_, err = s.WAL.Replay(func(lsn uint64, payload []byte) error {
		if lsn <= st.SnapshotLSN {
			st.WALSkipped++
			return nil
		}
		st.WALFrames++
		st.WALOps += s.replayFrame(payload)
		return nil
	})
	s.publishRecovery(st)
	s.publishTenantGauges()
	return st, err
}

// replayFrame applies one recovered WAL frame: tenant envelopes replay
// into their tenant's journal, raw frames into the default journal.
func (s *Server) replayFrame(payload []byte) int {
	ns, inner, err := jwire.UnscopePayload(payload)
	if err != nil {
		log.Printf("jserver: recovery: dropping malformed tenant envelope: %v", err)
		return 0
	}
	j := s.journal
	if ns != "" {
		j = s.tenantJournal(ns)
	}
	return jwire.ReplayPayload(j, inner)
}

// publishTenantGauges refreshes jserver_tenant_records for every tenant.
func (s *Server) publishTenantGauges() {
	s.tenantMu.Lock()
	defer s.tenantMu.Unlock()
	for ns, j := range s.tenants {
		s.tenantRecs.With(ns).Set(int64(j.RecordCount()))
	}
}

// publishRecovery mirrors RecoveryStats into the registry.
func (s *Server) publishRecovery(st RecoveryStats) {
	b2i := func(v bool) int64 {
		if v {
			return 1
		}
		return 0
	}
	s.obs.Gauge("jserver_recovery_snapshot_loaded").Set(b2i(st.SnapshotLoaded))
	s.obs.Gauge("jserver_recovery_snapshot_lsn").Set(int64(st.SnapshotLSN))
	s.obs.Gauge("jserver_recovery_wal_frames").Set(int64(st.WALFrames))
	s.obs.Gauge("jserver_recovery_wal_ops").Set(int64(st.WALOps))
	s.obs.Gauge("jserver_recovery_wal_skipped").Set(int64(st.WALSkipped))
	s.obs.Gauge("jserver_recovery_torn").Set(b2i(st.Torn))
	s.obs.Gauge("jserver_recovery_dropped_bytes").Set(st.DroppedBytes)
}

// SaveSnapshot writes the journal to SnapshotPath atomically and durably:
// a unique temp file in the target directory, fsynced before an atomic
// rename, with the directory fsynced after. Concurrent callers (the
// ticker loop, explicit invocations) serialize on saveMu. When a WAL is
// attached the snapshot is also the compaction point: the log rotates
// while no mutation is in flight, and once the snapshot is durable every
// segment below the rotation boundary is deleted.
func (s *Server) SaveSnapshot() error {
	if s.SnapshotPath == "" {
		return nil
	}
	s.saveMu.Lock()
	defer s.saveMu.Unlock()

	var data []byte
	var boundary uint64
	if s.WAL != nil {
		// Holding logMu for writing quiesces the commit pipeline: no
		// stage+apply span is in flight, so every record below the new
		// segment boundary is already in the journal — and therefore in
		// this snapshot.
		s.logMu.Lock()
		seq, err := s.WAL.Rotate()
		if err != nil {
			s.logMu.Unlock()
			return err
		}
		boundary = seq
		data = s.encodeServerSnapshot(s.WAL.LastLSN())
		s.logMu.Unlock()
	} else {
		data = s.encodeServerSnapshot(0)
	}

	dir := filepath.Dir(s.SnapshotPath)
	tmp, err := os.CreateTemp(dir, filepath.Base(s.SnapshotPath)+".tmp-")
	if err != nil {
		return err
	}
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Chmod(0o644); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), s.SnapshotPath); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := wal.SyncDir(dir); err != nil {
		return err
	}
	if s.WAL != nil {
		if _, err := s.WAL.Compact(boundary); err != nil {
			return err
		}
	}
	return nil
}

// Serve starts serving connections accepted from ln in the background.
// The listener may be anything satisfying net.Listener — a real TCP
// socket, a net.Pipe-backed test listener, or a simulated one
// (netsim.ListenTCP) — the server code never assumes *net.TCPConn.
// The server takes ownership of ln; Close closes it.
func (s *Server) Serve(ln net.Listener) error {
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	if s.SnapshotPath != "" {
		s.wg.Add(1)
		go s.snapshotLoop()
	}
	return nil
}

// ListenAndServe binds addr ("host:port"; ":0" picks a free port) on TCP
// and starts serving in the background. Addr() reports the bound address.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Listen is the historical name for ListenAndServe, kept so existing
// call sites compile unchanged.
func (s *Server) Listen(addr string) error { return s.ListenAndServe(addr) }

// Addr returns the bound listen address.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the server, waits for connections to drain, and writes a
// final snapshot.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.quit)
	if s.ln != nil {
		s.ln.Close()
	}
	s.wg.Wait()
	err := s.SaveSnapshot()
	if s.WAL != nil {
		if cerr := s.WAL.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// acceptBackoffMax caps the retry delay after transient Accept errors.
const acceptBackoffMax = time.Second

// acceptLoop accepts connections until shutdown. Transient Accept
// errors — EMFILE/ENFILE under fd pressure, ECONNABORTED, timeouts —
// must not kill the server, so any error other than a closed listener
// is retried with capped exponential backoff (5ms doubling to 1s); the
// pause gives the process a chance to shed file descriptors.
func (s *Server) acceptLoop() {
	defer s.wg.Done()
	var backoff time.Duration
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.quit:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue // deadline-style blips need no pause
			}
			if backoff == 0 {
				backoff = 5 * time.Millisecond
			} else if backoff *= 2; backoff > acceptBackoffMax {
				backoff = acceptBackoffMax
			}
			log.Printf("jserver: accept: %v (retrying in %v)", err, backoff)
			select {
			case <-time.After(backoff):
			case <-s.quit:
				return
			}
			continue
		}
		backoff = 0
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
		}()
	}
}

func (s *Server) snapshotLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.SnapshotInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := s.SaveSnapshot(); err != nil {
				log.Printf("jserver: snapshot: %v", err)
			}
		case <-s.quit:
			return
		}
	}
}

// pipelineDepth bounds the requests one connection may have in flight
// through the dispatch pipeline: the reader stops reading ahead once
// this many responses are unwritten, which is also what bounds the
// per-connection memory the pipeline can pin.
const pipelineDepth = 64

// connBufSize sizes the per-connection buffered reader and writer. The
// read buffer is the connection's read-ahead: a pipelined client's
// burst of frames lands in one syscall and stages into one commit
// group; the write buffer coalesces a burst of responses into one
// flush when the pipeline drains.
const connBufSize = 32 << 10

// inflight is one request's slot in a connection's response queue: the
// writer goroutine blocks on resp so responses go out in request order
// no matter how dispatch interleaves.
type inflight struct {
	resp chan []byte
}

// handleConn serves one connection with a pipelined read-ahead loop:
// the reader thread decodes frames as fast as they arrive, sequences
// mutations into the WAL in arrival order (so one client's burst lands
// in the same commit group), and hands each request to a dispatch
// goroutine; a writer goroutine streams responses back in request
// order. A per-request ordering chain makes every request wait for its
// predecessor's journal effect before executing, so a pipelined
// read-your-writes sequence behaves exactly as it would serially.
func (s *Server) handleConn(conn net.Conn) {
	defer conn.Close()
	s.connsTot.Inc()
	s.conns.Add(1)
	defer s.conns.Add(-1)
	go func() {
		<-s.quit
		conn.Close() // unblock reads on shutdown
	}()

	br := bufio.NewReaderSize(conn, connBufSize)
	bw := bufio.NewWriterSize(conn, connBufSize)

	// Response writer: drain the in-order queue, flushing only when no
	// further response is imminent. A write failure keeps draining (the
	// dispatch goroutines must not block on a dead connection) but
	// closes the conn so the reader stops feeding the pipeline.
	pending := make(chan *inflight, pipelineDepth)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		failed := false
		for fl := range pending {
			resp := <-fl.resp
			if !failed {
				err := jwire.WriteFrame(bw, resp)
				if err == nil && len(pending) == 0 {
					err = bw.Flush()
				}
				if err != nil {
					failed = true
					conn.Close()
				}
			}
			jwire.PutBuf(resp)
		}
		if !failed {
			bw.Flush()
		}
	}()

	// ns/tj are the connection's tenant scope: OpNamespace switches them
	// for every later request on this connection (the empty namespace is
	// the default journal).
	ns, tj := "", s.journal
	// prev is the connection's request-order chain: closed when the
	// previous request's effect is visible in the journal.
	prev := closedChan
	for {
		req, err := jwire.ReadFrameBuf(br, jwire.GetBuf())
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				log.Printf("jserver: read: %v", err)
			}
			break
		}
		if len(req) > 0 && req[0] == jwire.OpNamespace {
			// Handled inline on the reader thread: the scope switch must
			// apply to the very next frame read. Earlier in-flight
			// requests captured their own ns/tj.
			resp, newNS, newJ := s.handleNamespace(req)
			jwire.PutBuf(req)
			if newJ != nil {
				ns, tj = newNS, newJ
			}
			fl := &inflight{resp: make(chan []byte, 1)}
			fl.resp <- resp
			pending <- fl
			continue
		}
		if len(req) > 0 && req[0] == jwire.OpSubscribe {
			if ns != "" {
				// The hub publishes default-journal commits only; a scoped
				// connection cannot stream them.
				fl := &inflight{resp: make(chan []byte, 1)}
				fl.resp <- errPayload(errors.New("jserver: subscribe not valid on a tenant namespace"))
				pending <- fl
				jwire.PutBuf(req)
				continue
			}
			// The connection flips to push mode and never returns to
			// request/response: drain the pipeline so every earlier
			// response is on the wire, then serve the stream until it
			// ends and drop the connection.
			close(pending)
			<-writerDone
			s.serveSubscription(conn, br, req[1:])
			jwire.PutBuf(req)
			return
		}

		// Backpressure before sequencing: once the pipeline is full the
		// reader must not stage frames (or take locks) it cannot hand
		// off, or a stalled consumer could pin the commit pipeline.
		fl := &inflight{resp: make(chan []byte, 1)}
		pending <- fl

		// Mutations are sequenced HERE, on the reader thread, so one
		// connection's mutation order is its arrival order — and a
		// pipelined burst stages back-to-back into one commit group.
		mutates := jwire.PayloadMutates(req)
		var st stagedOp
		var errResp []byte
		staged := false
		if s.WAL != nil && mutates {
			if ns != "" {
				// Quota must be checked against an up-to-date record
				// count, so a tenant mutation first waits for the
				// connection's previous request to apply. This
				// serializes tenant mutations per connection (matching
				// pre-pipelining semantics); only the default
				// namespace gets the fully pipelined fast path.
				<-prev
				if err := s.checkQuota(ns, tj); err != nil {
					errResp = errPayload(err)
				}
			}
			if errResp == nil {
				st, errResp = s.stageMutation(ns, req)
				staged = errResp == nil
			}
		}

		mine := make(chan struct{})
		go func(req []byte, ns string, tj *journal.Journal, prev chan struct{}) {
			var resp []byte
			switch {
			case errResp != nil:
				<-prev
				resp = errResp
			case staged:
				resp = s.executeStagedAfter(req, ns, tj, st, prev)
			default:
				<-prev
				resp = s.dispatchNS(req, ns, tj)
			}
			close(mine)
			jwire.PutBuf(req)
			fl.resp <- resp
		}(req, ns, tj, prev)
		prev = mine
	}
	close(pending)
	<-writerDone
}

// handleNamespace answers one OpNamespace request: resolve (creating if
// needed) the tenant journal the connection scopes to from here on. On a
// decode error the response is an error frame and the connection keeps
// its previous scope.
func (s *Server) handleNamespace(req []byte) (resp []byte, ns string, j *journal.Journal) {
	name := jwire.OpName(jwire.OpNamespace)
	s.reqCount.With(name).Inc()
	defer s.reqLat.With(name).ObserveSince(time.Now())
	r := &jwire.Reader{B: req}
	r.U8() // opcode
	nreq := jwire.GetNamespaceReq(r)
	if r.Err != nil {
		return errPayload(r.Err), "", nil
	}
	j = s.journal
	if nreq.Namespace != "" {
		j = s.tenantJournal(nreq.Namespace)
	}
	var w jwire.Writer
	w.U8(jwire.StatusOK)
	return w.B, nreq.Namespace, j
}

// tenantJournal returns the journal for namespace ns, creating it on
// first use. Tenant journals inherit the default journal's ID stride, so
// every journal on a fabric shard allocates from the shard's residue
// class and tenant reads merge fabric-wide exactly like default ones.
func (s *Server) tenantJournal(ns string) *journal.Journal {
	s.tenantMu.Lock()
	defer s.tenantMu.Unlock()
	j := s.tenants[ns]
	if j == nil {
		j = journal.New()
		if off, stride := s.journal.IDStride(); stride > 1 {
			j.SetIDStride(off, stride)
		}
		if s.tenants == nil {
			s.tenants = make(map[string]*journal.Journal)
		}
		s.tenants[ns] = j
	}
	return j
}

// Tenants returns the namespaces with a journal, sorted.
func (s *Server) Tenants() []string {
	s.tenantMu.Lock()
	defer s.tenantMu.Unlock()
	names := make([]string, 0, len(s.tenants))
	for ns := range s.tenants {
		names = append(names, ns)
	}
	sort.Strings(names)
	return names
}

// TenantJournal exposes a tenant's journal for in-process callers; it
// creates the tenant if needed.
func (s *Server) TenantJournal(ns string) *journal.Journal {
	if ns == "" {
		return s.journal
	}
	return s.tenantJournal(ns)
}

// checkQuota is the tenant admission check run before a mutating frame
// is logged or applied.
func (s *Server) checkQuota(ns string, j *journal.Journal) error {
	if s.TenantQuota <= 0 {
		return nil
	}
	if n := j.RecordCount(); n >= s.TenantQuota {
		s.quotaRejects.With(ns).Inc()
		return fmt.Errorf("jserver: tenant %q at quota (%d of %d records)", ns, n, s.TenantQuota)
	}
	return nil
}

// serveSubscription runs one OpSubscribe stream on conn: answer with
// the starting cursor, register with the hub, then push until the
// client sends anything (or disconnects), the server shuts down, or a
// push write fails. rd is the connection's buffered reader (it may
// hold frames already read ahead of the subscribe).
func (s *Server) serveSubscription(conn net.Conn, rd io.Reader, body []byte) {
	s.reqCount.With(jwire.OpName(jwire.OpSubscribe)).Inc()
	r := &jwire.Reader{B: body}
	req := jwire.GetSubscribeReq(r)
	if r.Err != nil {
		jwire.WriteFrame(conn, errPayload(r.Err))
		return
	}
	kinds := req.Kinds
	if kinds == 0 {
		kinds = jwire.SubAllKinds
	}
	start := req.After
	if req.FromNow {
		start = s.journal.CurSeq()
	}

	sub := &subscriber{
		s:      s,
		conn:   conn,
		kinds:  kinds,
		cursor: start,
		lagged: true, // the initial catch-up is a (silent) resync
		notify: make(chan struct{}, 1),
		quit:   make(chan struct{}),
	}
	s.addSub(sub)
	defer s.removeSub(sub)

	// Registered before the acknowledgment, so every commit after
	// `start` is either queued by the hub or still ahead of the catch-up
	// walk — never between the two.
	var w jwire.Writer
	w.U8(jwire.StatusOK)
	w.U64(start)
	w.U64(s.journal.CurSeq())
	if err := jwire.WriteFrame(conn, w.B); err != nil {
		return
	}

	// Reader side: a subscription connection carries no further
	// requests, so any inbound frame — or the client hanging up — ends
	// the stream. This also unblocks the writer on server shutdown,
	// which closes conn via the per-connection quit watcher.
	go func() {
		_, _ = jwire.ReadFrame(rd)
		sub.stop()
	}()
	sub.run()
	sub.stop()
}

// closedChan seeds the apply-order queue: the first staged mutation's
// predecessor is already "done".
var closedChan = func() chan struct{} {
	c := make(chan struct{})
	close(c)
	return c
}()

// stagedOp is one mutation's place in the commit pipeline: its WAL
// ticket (durability) and its slot in the apply-order queue.
type stagedOp struct {
	ticket wal.Ticket
	prev   chan struct{} // closed when the previous staged mutation applied
	turn   chan struct{} // closed by this mutation after it applies
}

// stageMutation sequences one mutating frame: under the short stageMu
// critical section it stages the (tenant-enveloped) frame in the WAL —
// assigning its LSN — and takes the next slot in the apply-order queue,
// so log order and apply order can never diverge. The caller holds
// logMu for reading across the returned stagedOp's whole lifetime;
// executeStagedAfter releases it. On failure the read lock is already
// released and an error response returned.
func (s *Server) stageMutation(ns string, req []byte) (stagedOp, []byte) {
	frame := req
	if ns != "" {
		frame = jwire.ScopePayload(ns, req)
	}
	s.logMu.RLock()
	s.stageMu.Lock()
	ticket, err := s.WAL.Stage(frame)
	if err != nil {
		s.stageMu.Unlock()
		s.logMu.RUnlock()
		return stagedOp{}, errPayload(fmt.Errorf("jserver: wal append: %w", err))
	}
	st := stagedOp{ticket: ticket, prev: s.applyTail, turn: make(chan struct{})}
	s.applyTail = st.turn
	s.stageMu.Unlock()
	return st, nil
}

// executeStagedAfter finishes a staged mutation: wait for durability
// (the group commit — this is where concurrent mutations share one
// fsync), wait for the connection's previous request (connPrev) and the
// apply-order slot, apply to the journal, release the slot, and
// publish. The response is built only after the frame is on disk,
// preserving acknowledged-implies-fsynced. A mutation whose commit
// group failed still takes and releases its slot (without touching the
// journal) so its successors never deadlock.
//
// The two waits cannot deadlock: per-connection request order and
// global stage order agree for any one connection (mutations stage on
// the reader thread, in arrival order), so the union of both chains is
// acyclic.
func (s *Server) executeStagedAfter(req []byte, ns string, j *journal.Journal, st stagedOp, connPrev chan struct{}) []byte {
	werr := st.ticket.Wait()
	<-connPrev
	<-st.prev
	var resp []byte
	if werr != nil {
		resp = errPayload(fmt.Errorf("jserver: wal append: %w", werr))
	} else {
		resp = s.apply(req, j)
	}
	close(st.turn)
	s.logMu.RUnlock()
	if werr == nil {
		if ns == "" {
			s.publishChanges()
		} else {
			s.tenantRecs.With(ns).Set(int64(j.RecordCount()))
		}
	}
	return resp
}

// apply routes one frame body to the journal: a single operation or an
// OpBatch carrying many.
func (s *Server) apply(req []byte, j *journal.Journal) []byte {
	r := &jwire.Reader{B: req}
	op := r.U8()
	if op == jwire.OpBatch {
		return s.dispatchBatch(j, r)
	}
	return s.dispatchOne(j, op, r)
}

// dispatch routes one frame: either a single operation or an OpBatch
// carrying many. The journal's own locking serializes stores and lets
// queries run in parallel. With a WAL attached, a frame carrying any
// mutation (a whole OpBatch logs as one append) is made durable before
// it is applied — write-ahead, so an acknowledged store can always be
// replayed — and the stage+apply pipeline keeps log order equal to
// apply order while concurrent mutations share group commits. Pure
// queries skip all of this.
//
// Mutations end by publishing to the subscription hub, outside the
// stage lock (the hub re-reads the journal, so fan-out work never
// extends the commit critical section) and before the response is
// framed back to the caller — a push is behind durability, never ahead
// of it.
func (s *Server) dispatch(req []byte) []byte {
	return s.dispatchNS(req, "", s.journal)
}

// dispatchNS is dispatch scoped to a tenant: j is the journal the frame
// reads and writes, ns its namespace ("" = default). Tenant mutations are
// WAL-logged inside a jwire.ScopePayload envelope so recovery replays
// them into the right journal; default-namespace frames stay raw, so
// every pre-tenancy WAL replays unchanged. Only default-journal commits
// feed the subscription hub.
func (s *Server) dispatchNS(req []byte, ns string, j *journal.Journal) []byte {
	mutates := jwire.PayloadMutates(req)
	if mutates && ns != "" {
		if err := s.checkQuota(ns, j); err != nil {
			return errPayload(err)
		}
	}
	if s.WAL != nil && mutates {
		st, errResp := s.stageMutation(ns, req)
		if errResp != nil {
			return errResp
		}
		return s.executeStagedAfter(req, ns, j, st, closedChan)
	}
	resp := s.apply(req, j)
	if mutates {
		if ns == "" {
			s.publishChanges()
		} else {
			s.tenantRecs.With(ns).Set(int64(j.RecordCount()))
		}
	}
	return resp
}

// dispatchBatch executes each sub-request in order and frames one
// length-prefixed sub-response (with its own status byte) per sub-request.
// Sub-requests are independent: a failure is reported in its slot and the
// rest of the batch still executes.
func (s *Server) dispatchBatch(j *journal.Journal, r *jwire.Reader) []byte {
	subs := jwire.GetBatch(r)
	var w jwire.Writer
	if r.Err != nil {
		w.U8(jwire.StatusError)
		w.String(r.Err.Error())
		return w.B
	}
	s.batches.Inc()
	w.U8(jwire.StatusOK)
	w.U32(uint32(len(subs)))
	for _, sub := range subs {
		sr := &jwire.Reader{B: sub}
		op := sr.U8()
		var resp []byte
		switch {
		case sr.Err != nil:
			resp = errPayload(errors.New("jserver: empty batch sub-request"))
		case op == jwire.OpBatch:
			resp = errPayload(errors.New("jserver: nested batch rejected"))
		case op == jwire.OpNamespace:
			resp = errPayload(errors.New("jserver: namespace not valid inside a batch"))
		default:
			resp = s.dispatchOne(j, op, sr)
		}
		w.Bytes(resp)
	}
	return w.B
}

// clampPage bounds a requested scan/changes page size: non-positive
// requests fall back to the journal's default, oversized ones are capped
// at the protocol maximum.
func clampPage(limit int) int {
	if limit <= 0 {
		return journal.DefaultScanLimit
	}
	if limit > jwire.MaxScanPage {
		return jwire.MaxScanPage
	}
	return limit
}

func errPayload(err error) []byte {
	var w jwire.Writer
	w.U8(jwire.StatusError)
	w.String(err.Error())
	return w.B
}

// dispatchOne applies one operation and builds its response payload.
// Every executed operation (batch sub-requests included) bumps its
// per-op counter and records its service latency.
func (s *Server) dispatchOne(j *journal.Journal, op byte, r *jwire.Reader) []byte {
	name := jwire.OpName(op)
	s.reqCount.With(name).Inc()
	defer s.reqLat.With(name).ObserveSince(time.Now())

	var w jwire.Writer
	fail := func(err error) []byte {
		w.B = w.B[:0]
		w.U8(jwire.StatusError)
		w.String(err.Error())
		return w.B
	}

	switch op {
	// Mutations go through jwire.ApplyOp, the same dispatch WAL
	// recovery replays, so a recovered journal cannot drift from a
	// served one.
	case jwire.OpStoreInterface:
		res, err := jwire.ApplyOp(j, op, r)
		if err != nil {
			return fail(err)
		}
		w.U8(jwire.StatusOK)
		w.ID(res.ID)
		w.Bool(res.Created)
	case jwire.OpStoreGateway, jwire.OpStoreSubnet:
		res, err := jwire.ApplyOp(j, op, r)
		if err != nil {
			return fail(err)
		}
		w.U8(jwire.StatusOK)
		w.ID(res.ID)
	case jwire.OpGetInterfaces:
		q := jwire.GetQuery(r)
		if r.Err != nil {
			return fail(r.Err)
		}
		recs := j.Interfaces(q)
		w.U8(jwire.StatusOK)
		w.U32(uint32(len(recs)))
		for _, rec := range recs {
			jwire.PutInterfaceRec(&w, rec)
		}
	case jwire.OpGetGateways:
		recs := j.Gateways()
		w.U8(jwire.StatusOK)
		w.U32(uint32(len(recs)))
		for _, rec := range recs {
			jwire.PutGatewayRec(&w, rec)
		}
	case jwire.OpGetSubnets:
		recs := j.Subnets()
		w.U8(jwire.StatusOK)
		w.U32(uint32(len(recs)))
		for _, rec := range recs {
			jwire.PutSubnetRec(&w, rec)
		}
	case jwire.OpDelete:
		res, err := jwire.ApplyOp(j, op, r)
		if err != nil {
			return fail(err)
		}
		w.U8(jwire.StatusOK)
		w.Bool(res.Deleted)
	case jwire.OpScan:
		// One page per request: the journal holds its read lock for at
		// most clampPage records, never the whole journal.
		req := jwire.GetScanReq(r)
		if r.Err != nil {
			return fail(r.Err)
		}
		limit := clampPage(req.Limit)
		w.U8(jwire.StatusOK)
		switch req.Kind {
		case journal.KindInterface:
			recs, next, more := j.ScanInterfaces(req.Cursor, limit, req.Filter)
			w.U32(uint32(len(recs)))
			for _, rec := range recs {
				jwire.PutInterfaceRec(&w, rec)
			}
			w.ID(next)
			w.Bool(more)
		case journal.KindGateway:
			recs, next, more := j.ScanGateways(req.Cursor, limit)
			w.U32(uint32(len(recs)))
			for _, rec := range recs {
				jwire.PutGatewayRec(&w, rec)
			}
			w.ID(next)
			w.Bool(more)
		case journal.KindSubnet:
			recs, next, more := j.ScanSubnets(req.Cursor, limit)
			w.U32(uint32(len(recs)))
			for _, rec := range recs {
				jwire.PutSubnetRec(&w, rec)
			}
			w.ID(next)
			w.Bool(more)
		default:
			return fail(fmt.Errorf("jserver: scan: unknown record kind %d", req.Kind))
		}
	case jwire.OpChanges:
		req := jwire.GetChangesReq(r)
		if r.Err != nil {
			return fail(r.Err)
		}
		limit := clampPage(req.Limit)
		w.U8(jwire.StatusOK)
		switch req.Kind {
		case journal.KindInterface:
			recs, next, more := j.InterfaceChanges(req.After, limit)
			w.U32(uint32(len(recs)))
			for _, rec := range recs {
				jwire.PutInterfaceRec(&w, rec)
			}
			w.U64(next)
			w.Bool(more)
		case journal.KindGateway:
			recs, next, more := j.GatewayChanges(req.After, limit)
			w.U32(uint32(len(recs)))
			for _, rec := range recs {
				jwire.PutGatewayRec(&w, rec)
			}
			w.U64(next)
			w.Bool(more)
		case journal.KindSubnet:
			recs, next, more := j.SubnetChanges(req.After, limit)
			w.U32(uint32(len(recs)))
			for _, rec := range recs {
				jwire.PutSubnetRec(&w, rec)
			}
			w.U64(next)
			w.Bool(more)
		default:
			return fail(fmt.Errorf("jserver: changes: unknown record kind %d", req.Kind))
		}
	case jwire.OpSubscribe:
		// Reachable only as a batch sub-request: handleConn intercepts
		// direct subscribes before dispatch.
		return fail(errors.New("jserver: subscribe not valid inside a batch"))
	case jwire.OpPing:
		w.U8(jwire.StatusOK)
	case jwire.OpStats:
		data, err := obs.MarshalSnapshot(s.obs.Snapshot())
		if err != nil {
			return fail(err)
		}
		w.U8(jwire.StatusOK)
		w.Bytes(data)
	default:
		return fail(fmt.Errorf("jserver: unknown opcode %d", op))
	}
	return w.B
}

// --- Snapshot format ------------------------------------------------------

const snapshotMagic = 0x4652454d // "FREM"

// EncodeSnapshot serializes the whole journal with no WAL position
// (LSN 0): every logged record will replay on top of it.
func EncodeSnapshot(j *journal.Journal) []byte {
	return EncodeSnapshotAt(j, 0)
}

// EncodeSnapshotAt serializes the whole journal (records in modification
// order, oldest first), stamped with the WAL LSN the snapshot covers:
// recovery skips logged records at or below it. journal.ExportSeq takes
// the read lock once, so the snapshot — records plus the modification
// sequence counter — is a single consistent point in time even under
// concurrent stores.
func EncodeSnapshotAt(j *journal.Journal, lsn uint64) []byte {
	var w jwire.Writer
	w.U32(snapshotMagic)
	w.U16(3) // version; v2 added the WAL LSN, v3 the modification seq
	w.U64(lsn)
	encodeJournalSection(&w, j)
	return w.B
}

// encodeJournalSection writes one journal's body — modification sequence
// counter, then records in modification order — the layout shared by the
// v3 snapshot body and each v4 section.
func encodeJournalSection(w *jwire.Writer, j *journal.Journal) {
	ifs, gws, sns, seq := j.ExportSeq()
	w.U64(seq)
	w.U32(uint32(len(ifs)))
	for _, r := range ifs {
		jwire.PutInterfaceRec(w, r)
	}
	w.U32(uint32(len(gws)))
	for _, r := range gws {
		jwire.PutGatewayRec(w, r)
	}
	w.U32(uint32(len(sns)))
	for _, r := range sns {
		jwire.PutSubnetRec(w, r)
	}
}

// restoreJournalSection is the inverse of encodeJournalSection. The
// modification sequence counter is advanced BEFORE restoring records:
// restored records then get stamps above any cursor a replication peer
// obtained from the previous incarnation, so a stale cursor re-transfers
// instead of skipping.
func restoreJournalSection(j *journal.Journal, r *jwire.Reader) {
	j.AdvanceSeq(r.U64())
	restoreRecords(j, r)
}

func restoreRecords(j *journal.Journal, r *jwire.Reader) {
	for n := int(r.U32()); n > 0 && r.Err == nil; n-- {
		j.RestoreInterface(jwire.GetInterfaceRec(r))
	}
	for n := int(r.U32()); n > 0 && r.Err == nil; n-- {
		j.RestoreGateway(jwire.GetGatewayRec(r))
	}
	for n := int(r.U32()); n > 0 && r.Err == nil; n-- {
		j.RestoreSubnet(jwire.GetSubnetRec(r))
	}
}

// encodeServerSnapshot serializes the default journal and, when tenants
// exist, every tenant journal. A tenantless server writes a version-3
// snapshot — byte-identical to what it wrote before tenancy existed —
// so golden-trace digests and downgrade paths are undisturbed. With
// tenants the format is version 4:
//
//	[magic][v=4][lsn][default section][tenant count]
//	then per tenant (name-sorted): [name][section]
func (s *Server) encodeServerSnapshot(lsn uint64) []byte {
	names := s.Tenants()
	if len(names) == 0 {
		return EncodeSnapshotAt(s.journal, lsn)
	}
	var w jwire.Writer
	w.U32(snapshotMagic)
	w.U16(4)
	w.U64(lsn)
	encodeJournalSection(&w, s.journal)
	w.U32(uint32(len(names)))
	for _, ns := range names {
		w.String(ns)
		encodeJournalSection(&w, s.tenantJournal(ns))
	}
	return w.B
}

// restoreServerSnapshot loads any snapshot version into the server,
// creating tenant journals for v4 sections.
func (s *Server) restoreServerSnapshot(data []byte) (uint64, error) {
	r := &jwire.Reader{B: data}
	if r.U32() != snapshotMagic {
		return 0, errors.New("jserver: bad snapshot magic")
	}
	if v := r.U16(); v != 4 {
		// v1-v3 hold a single journal; reuse the exported restorer.
		return RestoreSnapshotLSN(s.journal, data)
	}
	lsn := r.U64()
	restoreJournalSection(s.journal, r)
	for n := int(r.U32()); n > 0 && r.Err == nil; n-- {
		ns := r.String()
		if r.Err != nil {
			break
		}
		restoreJournalSection(s.tenantJournal(ns), r)
	}
	s.publishTenantGauges()
	return lsn, r.Err
}

// RestoreSnapshot loads records into j, discarding the WAL position.
func RestoreSnapshot(j *journal.Journal, data []byte) error {
	_, err := RestoreSnapshotLSN(j, data)
	return err
}

// RestoreSnapshotLSN loads records into j and returns the WAL LSN the
// snapshot covers (0 for version-1 snapshots, which predate the WAL).
// Version-4 (tenant-bearing) snapshots restore the default journal only;
// use Server.Recover / LoadSnapshot to restore tenants too.
func RestoreSnapshotLSN(j *journal.Journal, data []byte) (uint64, error) {
	r := &jwire.Reader{B: data}
	if r.U32() != snapshotMagic {
		return 0, errors.New("jserver: bad snapshot magic")
	}
	var lsn uint64
	v := r.U16()
	switch v {
	case 1:
	case 2, 3, 4:
		lsn = r.U64()
	default:
		return 0, fmt.Errorf("jserver: unsupported snapshot version %d", v)
	}
	if v >= 3 {
		// v3 added the modification sequence counter ahead of the records.
		restoreJournalSection(j, r)
	} else {
		// v1/v2 predate it: a replication peer holding a cursor from the
		// previous incarnation degrades to one full re-transfer.
		j.AdvanceSeq(0)
		restoreRecords(j, r)
	}
	return lsn, r.Err
}
