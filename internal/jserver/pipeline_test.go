// Pipelined write-path tests: many requests in flight on one
// connection must respond in order, batch into shared WAL commit
// groups, and preserve read-your-writes and namespace-scope semantics
// exactly as a serial connection would.
package jserver

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"fremont/internal/jclient"
	"fremont/internal/journal"
	"fremont/internal/jwire"
	"fremont/internal/netsim/pkt"
	"fremont/internal/wal"
)

// startWALServer boots a server with a SyncAlways WAL so pipelining
// tests exercise the real group-commit path, not the no-WAL shortcut.
func startWALServer(t *testing.T) *Server {
	t.Helper()
	dir := t.TempDir()
	s := New(nil)
	s.SnapshotPath = filepath.Join(dir, "snap.jnl")
	l, err := wal.Open(wal.Options{
		Dir:    filepath.Join(dir, "wal"),
		Policy: wal.SyncAlways,
		// A small group window makes batching deterministic enough to
		// assert on without slowing the test measurably.
		GroupWait: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.WAL = l
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func pipeObs(n int) journal.IfaceObs {
	return journal.IfaceObs{
		IP:     pkt.IPv4(10, byte(n>>16), byte(n>>8), byte(n)),
		Name:   fmt.Sprintf("host-%d", n),
		Source: journal.SrcARP,
		At:     t0,
	}
}

// TestPipelinedStoresBatch fires a burst of stores down one pipeline
// and asserts every one is acknowledged, applied exactly once, and that
// the burst shared fsyncs through group commit instead of paying one
// per store.
func TestPipelinedStoresBatch(t *testing.T) {
	s := startWALServer(t)
	p, err := jclient.DialPipeline(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const n = 100
	futs := make([]jclient.StoreFuture, 0, n)
	for i := 0; i < n; i++ {
		futs = append(futs, p.StoreInterface(pipeObs(i)))
	}
	seen := make(map[journal.ID]bool, n)
	for i, f := range futs {
		id, created, err := f.Result()
		if err != nil || !created {
			t.Fatalf("store %d = %d, %v, %v", i, id, created, err)
		}
		if seen[id] {
			t.Fatalf("store %d returned duplicate id %d", i, id)
		}
		seen[id] = true
	}

	st := s.WAL.Stats()
	if st.Appends != n {
		t.Fatalf("WAL has %d appends, want %d", st.Appends, n)
	}
	if st.Fsyncs >= n {
		t.Fatalf("%d fsyncs for %d pipelined stores: no group commit", st.Fsyncs, n)
	}
	if st.GroupCommits < 1 || st.GroupCommits >= n {
		t.Fatalf("%d group commits for %d stores", st.GroupCommits, n)
	}
	if got := s.journal.RecordCount(); got != n {
		t.Fatalf("journal has %d records, want %d", got, n)
	}
}

// TestPipelinedReadYourWrites interleaves stores and queries in one
// pipeline: every query must observe the store pipelined immediately
// before it, exactly as a serial connection would.
func TestPipelinedReadYourWrites(t *testing.T) {
	s := startWALServer(t)
	p, err := jclient.DialPipeline(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	type pair struct {
		st jclient.StoreFuture
		q  jclient.IfacesFuture
	}
	var pairs []pair
	for i := 0; i < 32; i++ {
		o := pipeObs(i)
		pairs = append(pairs, pair{
			st: p.StoreInterface(o),
			q:  p.Interfaces(journal.Query{ByIP: o.IP, HasIP: true}),
		})
	}
	for i, pr := range pairs {
		if _, _, err := pr.st.Result(); err != nil {
			t.Fatalf("store %d: %v", i, err)
		}
		recs, err := pr.q.Result()
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if len(recs) != 1 || recs[0].Name != fmt.Sprintf("host-%d", i) {
			t.Fatalf("query %d did not see its preceding store: %v", i, recs)
		}
	}
}

// TestPipelinedNamespaceSwitch switches tenant scope mid-pipeline: the
// switch must apply to exactly the requests after it in pipeline order.
func TestPipelinedNamespaceSwitch(t *testing.T) {
	s := startWALServer(t)
	p, err := jclient.DialPipeline(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	def := p.StoreInterface(pipeObs(1))
	use := p.Use("acme")
	ten := p.StoreInterface(pipeObs(2))
	back := p.Use("")
	q := p.Interfaces(journal.Query{ByIP: pipeObs(2).IP, HasIP: true})

	if _, _, err := def.Result(); err != nil {
		t.Fatalf("default store: %v", err)
	}
	if err := use.Result(); err != nil {
		t.Fatalf("use acme: %v", err)
	}
	if _, _, err := ten.Result(); err != nil {
		t.Fatalf("tenant store: %v", err)
	}
	if err := back.Result(); err != nil {
		t.Fatalf("use default: %v", err)
	}
	recs, err := q.Result()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("tenant record leaked into default journal: %v", recs)
	}
	if got := s.journal.RecordCount(); got != 1 {
		t.Fatalf("default journal has %d records, want 1", got)
	}
}

// TestPipelinedErrorKeepsOrder: a rejected request mid-pipeline must
// produce its error response in order without derailing its neighbors.
func TestPipelinedErrorKeepsOrder(t *testing.T) {
	s := startWALServer(t)
	s.TenantQuota = 1
	p, err := jclient.DialPipeline(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	use := p.Use("tiny")
	first := p.StoreInterface(pipeObs(1))
	second := p.StoreInterface(pipeObs(2)) // over quota: must fail
	back := p.Use("")
	after := p.StoreInterface(pipeObs(3)) // default journal: must succeed

	if err := use.Result(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := first.Result(); err != nil {
		t.Fatalf("first tenant store: %v", err)
	}
	if _, _, err := second.Result(); err == nil {
		t.Fatal("second tenant store exceeded quota but succeeded")
	}
	if err := back.Result(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := after.Result(); err != nil {
		t.Fatalf("store after failed request: %v", err)
	}
}

// TestPipelineThenSubscribe: a subscribe after pipelined stores must
// drain every pending response before the stream handshake, and the
// stream must carry the pipelined commits.
func TestPipelineThenSubscribe(t *testing.T) {
	s := startWALServer(t)
	p, err := jclient.DialPipeline(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < 10; i++ {
		p.StoreInterface(pipeObs(i))
	}
	if err := p.Ping().Result(); err != nil {
		t.Fatal(err)
	}

	c, err := jclient.Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sub, err := c.Subscribe(jclient.SubscribeOptions{Kinds: jwire.SubKindInterface})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	got := 0
	deadline := time.After(5 * time.Second)
	for got < 10 {
		select {
		case ev, ok := <-sub.Events():
			if !ok {
				t.Fatalf("stream closed after %d records: %v", got, sub.Err())
			}
			if ev.Iface != nil {
				got++
			}
		case <-deadline:
			t.Fatalf("saw %d of 10 pipelined stores on the stream", got)
		}
	}
}
