package jserver

import (
	"path/filepath"
	"strings"
	"testing"

	"fremont/internal/jclient"
	"fremont/internal/journal"
	"fremont/internal/netsim/pkt"
	"fremont/internal/wal"
)

// TestTenantIsolation: records stored under a tenant namespace are
// invisible to the default journal and to other tenants, and vice versa.
func TestTenantIsolation(t *testing.T) {
	s, c := startServer(t)
	// Default journal gets one record.
	if _, _, err := c.StoreInterface(journal.IfaceObs{IP: pkt.IPv4(10, 0, 0, 1), At: t0}); err != nil {
		t.Fatal(err)
	}
	// Tenant A gets two.
	ca, err := jclient.Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ca.Close()
	if err := ca.Use("site-a"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, _, err := ca.StoreInterface(journal.IfaceObs{IP: pkt.IPv4(10, 1, 0, byte(i+1)), At: t0}); err != nil {
			t.Fatal(err)
		}
	}
	// Tenant B sees nothing of A or the default journal.
	cb, err := jclient.Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cb.Close()
	if err := cb.Use("site-b"); err != nil {
		t.Fatal(err)
	}
	for name, cl := range map[string]*jclient.Client{"default": c, "site-a": ca, "site-b": cb} {
		recs, err := cl.Interfaces(journal.Query{})
		if err != nil {
			t.Fatal(err)
		}
		want := map[string]int{"default": 1, "site-a": 2, "site-b": 0}[name]
		if len(recs) != want {
			t.Errorf("%s sees %d interfaces, want %d", name, len(recs), want)
		}
	}
	// Switching back to the default namespace returns the original view.
	if err := ca.Use(""); err != nil {
		t.Fatal(err)
	}
	recs, err := ca.Interfaces(journal.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Errorf("after Use(\"\"): %d interfaces, want 1", len(recs))
	}
	if got := s.Tenants(); len(got) != 2 || got[0] != "site-a" || got[1] != "site-b" {
		t.Errorf("Tenants() = %v", got)
	}
}

// TestTenantQuota: a tenant at its record quota has further mutating
// requests rejected (surfaced through obs), while the default journal
// and other tenants are unaffected.
func TestTenantQuota(t *testing.T) {
	s := New(nil)
	s.TenantQuota = 2
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	c, err := jclient.Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Use("crowded"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, _, err := c.StoreInterface(journal.IfaceObs{IP: pkt.IPv4(10, 0, 0, byte(i+1)), At: t0}); err != nil {
			t.Fatal(err)
		}
	}
	_, _, err = c.StoreInterface(journal.IfaceObs{IP: pkt.IPv4(10, 0, 0, 99), At: t0})
	if err == nil || !strings.Contains(err.Error(), "quota") {
		t.Fatalf("over-quota store: err = %v, want quota rejection", err)
	}
	// Re-observing an existing record is a merge, not growth — but the
	// admission check is count-based, so it is also rejected at the cap.
	// The default journal is not quota'd.
	if err := c.Use(""); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, _, err := c.StoreInterface(journal.IfaceObs{IP: pkt.IPv4(10, 9, 0, byte(i+1)), At: t0}); err != nil {
			t.Fatalf("default journal hit a quota: %v", err)
		}
	}
	snap := s.Obs().Snapshot()
	if snap.CounterSum("jserver_tenant_quota_rejects_total") == 0 {
		t.Errorf("quota reject not counted: %v", snap.Counters)
	}
	if snap.Gauges["jserver_tenant_records{tenant=crowded}"] != 2 {
		t.Errorf("tenant record gauge: %v", snap.Gauges)
	}
}

// TestTenantWALRecovery: tenant mutations are WAL-logged inside
// namespace envelopes and replay into the right tenant journal after a
// crash; default-journal frames stay raw (legacy WAL compatibility).
func TestTenantWALRecovery(t *testing.T) {
	dir := t.TempDir()
	s := New(nil)
	s.WAL = openWAL(t, filepath.Join(dir, "wal"), wal.SyncAlways)
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	c, err := jclient.Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.StoreInterface(journal.IfaceObs{IP: pkt.IPv4(10, 0, 0, 1), At: t0}); err != nil {
		t.Fatal(err)
	}
	if err := c.Use("site-a"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.StoreInterface(journal.IfaceObs{IP: pkt.IPv4(10, 1, 0, 1), At: t0}); err != nil {
		t.Fatal(err)
	}
	c.Close()
	// Crash: close the WAL without a final snapshot.
	s.WAL.Close()
	s.WAL = nil
	s.Close()

	s2 := New(nil)
	s2.WAL = openWAL(t, filepath.Join(dir, "wal"), wal.SyncAlways)
	t.Cleanup(func() { s2.Close() })
	if _, err := s2.Recover(); err != nil {
		t.Fatal(err)
	}
	if n := s2.Journal().NumInterfaces(); n != 1 {
		t.Errorf("default journal recovered %d interfaces, want 1", n)
	}
	tj := s2.TenantJournal("site-a")
	if tj == nil || tj.NumInterfaces() != 1 {
		t.Fatalf("tenant journal not recovered: %v", tj)
	}
	if tj.Interfaces(journal.Query{})[0].IP != pkt.IPv4(10, 1, 0, 1) {
		t.Error("tenant record corrupted through WAL envelope")
	}
}

// TestTenantSnapshotRoundtrip: a server with tenants snapshots as v4 and
// restores every tenant section; a tenantless server still writes the
// v3 format byte-for-byte (golden-trace compatibility is asserted
// repo-wide by the determinism test).
func TestTenantSnapshotRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s := New(nil)
	s.SnapshotPath = filepath.Join(dir, "journal.snap")
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	c, err := jclient.Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.StoreInterface(journal.IfaceObs{IP: pkt.IPv4(10, 0, 0, 1), At: t0}); err != nil {
		t.Fatal(err)
	}
	if err := c.Use("site-a"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.StoreInterface(journal.IfaceObs{IP: pkt.IPv4(10, 1, 0, 1), At: t0}); err != nil {
		t.Fatal(err)
	}
	if err := c.Use("site-b"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.StoreSubnet(journal.SubnetObs{Subnet: pkt.Subnet{Addr: pkt.IPv4(10, 2, 0, 0), Mask: pkt.MaskBits(24)}, At: t0}); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if err := s.Close(); err != nil { // final snapshot
		t.Fatal(err)
	}

	s2 := New(nil)
	s2.SnapshotPath = filepath.Join(dir, "journal.snap")
	if err := s2.LoadSnapshot(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s2.Close() })
	if n := s2.Journal().NumInterfaces(); n != 1 {
		t.Errorf("default journal: %d interfaces, want 1", n)
	}
	if tenants := s2.Tenants(); len(tenants) != 2 {
		t.Fatalf("Tenants() after restore = %v", tenants)
	}
	if tj := s2.TenantJournal("site-a"); tj == nil || tj.NumInterfaces() != 1 {
		t.Error("site-a not restored")
	}
	if tj := s2.TenantJournal("site-b"); tj == nil || tj.NumSubnets() != 1 {
		t.Error("site-b not restored")
	}
}

// TestTenantSubscribeRejected: the push hub serves the default journal
// only; a subscription requested on a tenant-scoped connection errors.
func TestTenantNamespaceValidation(t *testing.T) {
	_, c := startServer(t)
	if err := c.Use("bad namespace"); err == nil {
		t.Fatal("namespace with a space accepted")
	}
	// The connection survives a rejected namespace and stays on its old
	// scope.
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.StoreInterface(journal.IfaceObs{IP: pkt.IPv4(10, 0, 0, 1), At: t0}); err != nil {
		t.Fatal(err)
	}
}
