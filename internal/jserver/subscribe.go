// Push-based change streaming: the server half of OpSubscribe.
//
// Every mutating request ends with one publishChanges call, after the
// WAL append and the journal apply — the WAL-append point, so a push is
// never ahead of durability. The hub re-reads the journal's change
// cursors rather than capturing records on the commit path: the commit
// pays one atomic load when nobody is subscribed, and fan-out work is
// bounded by the per-subscriber queues. A subscriber that cannot keep
// up loses its queue, not the journal's history: it is flagged lagged,
// told so with a resync marker, and re-fed from its cursor via the same
// Changes pages a polling client would use. The no-gap/no-duplicate
// cursor contract therefore holds across queue overflow, reconnects,
// and server restarts alike.
package jserver

import (
	"net"
	"sort"
	"sync"
	"time"

	"fremont/internal/journal"
	"fremont/internal/jwire"
)

const (
	// DefaultSubQueueMax bounds each subscriber's pending-push queue;
	// overflowing it costs that subscriber a resync, never a stalled
	// commit.
	DefaultSubQueueMax = 1024
	// subPageLimit bounds how many change records one hub or resync
	// round reads from the journal (and so how long its read lock is
	// held on the subscription path).
	subPageLimit = 256
	// subWriteTimeout is how long one push frame may block on a
	// consumer's TCP window before the subscription is torn down. A
	// stalled consumer first degrades to resync; one that stops reading
	// entirely is eventually cut off here.
	subWriteTimeout = time.Minute
)

func (s *Server) subQueueMax() int {
	if s.SubQueueMax > 0 {
		return s.SubQueueMax
	}
	return DefaultSubQueueMax
}

// subEvent is one committed change on its way to a subscriber: the
// record kind, the ModSeq the journal stamped, and the record itself
// (already cloned by the Changes accessors, so safe to share across
// subscriber queues).
type subEvent struct {
	kind  journal.RecordKind
	seq   uint64
	iface *journal.InterfaceRec
	gw    *journal.GatewayRec
	sn    *journal.SubnetRec
}

// collectChanges merges one bounded page of changes with ModSeq > after
// across the masked kinds into a single seq-ascending stream, returning
// the events and the cursor they advance to.
//
// The three per-kind cursors are read at different instants, so a
// concurrent commit could land between the interface page and the
// subnet page; naively taking the max seen seq as the cursor would skip
// it. Instead the journal's sequence counter is read FIRST as a target:
// events past the target are discarded (a later round re-reads them),
// each kind's knowledge horizon is the target when its page was
// complete and its last returned seq when it was truncated, and the
// cursor advances only to the minimum horizon. Everything at or below
// the returned cursor has been emitted exactly once.
func collectChanges(j *journal.Journal, after uint64, limit int, kinds byte) ([]subEvent, uint64) {
	target := j.CurSeq()
	if target <= after {
		return nil, after
	}
	var evs []subEvent
	next := target
	// clip drops events past the target and reports the kind's horizon:
	// a page reaching past the target proves full coverage up to it.
	clip := func(n int, seqAt func(int) uint64, more bool) (int, uint64) {
		for i := 0; i < n; i++ {
			if seqAt(i) > target {
				return i, target
			}
		}
		if more && n > 0 {
			return n, seqAt(n - 1)
		}
		return n, target
	}
	if kinds&jwire.SubKindInterface != 0 {
		recs, _, more := j.InterfaceChanges(after, limit)
		keep, h := clip(len(recs), func(i int) uint64 { return recs[i].ModSeq }, more)
		for _, rec := range recs[:keep] {
			evs = append(evs, subEvent{kind: journal.KindInterface, seq: rec.ModSeq, iface: rec})
		}
		if h < next {
			next = h
		}
	}
	if kinds&jwire.SubKindGateway != 0 {
		recs, _, more := j.GatewayChanges(after, limit)
		keep, h := clip(len(recs), func(i int) uint64 { return recs[i].ModSeq }, more)
		for _, rec := range recs[:keep] {
			evs = append(evs, subEvent{kind: journal.KindGateway, seq: rec.ModSeq, gw: rec})
		}
		if h < next {
			next = h
		}
	}
	if kinds&jwire.SubKindSubnet != 0 {
		recs, _, more := j.SubnetChanges(after, limit)
		keep, h := clip(len(recs), func(i int) uint64 { return recs[i].ModSeq }, more)
		for _, rec := range recs[:keep] {
			evs = append(evs, subEvent{kind: journal.KindSubnet, seq: rec.ModSeq, sn: rec})
		}
		if h < next {
			next = h
		}
	}
	sort.Slice(evs, func(a, b int) bool { return evs[a].seq < evs[b].seq })
	// Events past the minimum horizon would be re-read (and so re-sent)
	// by the next round; emit them then, once.
	for len(evs) > 0 && evs[len(evs)-1].seq > next {
		evs = evs[:len(evs)-1]
	}
	return evs, next
}

// publishChanges drains committed changes past the hub cursor into
// every subscriber queue. Called at the tail of each mutating dispatch;
// a server with no subscribers pays one atomic load.
func (s *Server) publishChanges() {
	if s.nsubs.Load() == 0 {
		return
	}
	s.hubMu.Lock()
	defer s.hubMu.Unlock()
	for {
		evs, next := collectChanges(s.journal, s.hubCursor, subPageLimit, jwire.SubAllKinds)
		if len(evs) > 0 {
			s.subMu.Lock()
			for sub := range s.subs {
				sub.offer(evs)
			}
			s.subMu.Unlock()
		}
		s.hubCursor = next
		if s.journal.CurSeq() <= next {
			return
		}
	}
}

func (s *Server) addSub(sub *subscriber) {
	// Serialize with any in-flight publish round, then (for the first
	// subscriber) skip the hub cursor to now: history below it is the
	// subscriber's own catch-up resync, not a hub fan-out.
	s.hubMu.Lock()
	if s.nsubs.Load() == 0 {
		s.hubCursor = s.journal.CurSeq()
	}
	s.subMu.Lock()
	if s.subs == nil {
		s.subs = make(map[*subscriber]struct{})
	}
	s.subs[sub] = struct{}{}
	s.subMu.Unlock()
	s.nsubs.Add(1)
	s.hubMu.Unlock()
	s.subsGauge.Add(1)
	s.subsTotal.Inc()
}

func (s *Server) removeSub(sub *subscriber) {
	s.subMu.Lock()
	delete(s.subs, sub)
	s.subMu.Unlock()
	s.nsubs.Add(-1)
	s.subsGauge.Add(-1)
}

// subscriber is one live OpSubscribe connection. The hub appends to its
// bounded queue under mu; its own writer goroutine drains the queue to
// the wire. cursor is the last ModSeq actually written — the hub drops
// anything at or below it, which is what makes a concurrent resync
// (reading the same records straight from the journal) duplicate-free.
type subscriber struct {
	s     *Server
	conn  net.Conn
	kinds byte

	mu     sync.Mutex
	cursor uint64
	queue  []subEvent
	lagged bool // queue overflowed (or initial catch-up): resync owes delivery

	notify chan struct{} // 1-buffered nudge: queue or lagged changed
	quit   chan struct{}
	once   sync.Once
}

// stop ends the subscription from the reader side (client frame, client
// close, server shutdown). Closing the conn unblocks a writer stuck in
// a push.
func (sub *subscriber) stop() {
	sub.once.Do(func() {
		close(sub.quit)
		sub.conn.Close()
	})
}

// offer enqueues hub events for this subscriber. Never blocks: on
// overflow the whole queue is dropped and the subscriber flagged for
// resync, so a stalled consumer cannot hold up the committing request.
func (sub *subscriber) offer(evs []subEvent) {
	sub.mu.Lock()
	queued := false
	for _, ev := range evs {
		if jwire.SubKindBit(ev.kind)&sub.kinds == 0 {
			continue
		}
		if sub.lagged || ev.seq <= sub.cursor {
			continue // resync will (re)deliver from the cursor
		}
		if len(sub.queue) >= sub.s.subQueueMax() {
			sub.s.subDrops.Add(int64(len(sub.queue) + 1))
			sub.queue = sub.queue[:0]
			sub.lagged = true
			queued = true // wake the writer to start the resync
			continue
		}
		sub.queue = append(sub.queue, ev)
		queued = true
	}
	sub.mu.Unlock()
	if queued {
		select {
		case sub.notify <- struct{}{}:
		default:
		}
	}
}

// run is the subscriber's writer loop: initial catch-up from the
// requested cursor, then queue drains interleaved with resyncs until
// the connection dies or the subscription is stopped.
func (sub *subscriber) run() {
	if !sub.resync() {
		return
	}
	for {
		select {
		case <-sub.notify:
		case <-sub.quit:
			return
		}
		for {
			sub.mu.Lock()
			if sub.lagged {
				sub.mu.Unlock()
				sub.s.subResyncs.Inc()
				if !sub.writeResyncMarker() || !sub.resync() {
					return
				}
				continue
			}
			if len(sub.queue) == 0 {
				sub.mu.Unlock()
				break
			}
			batch := sub.queue
			sub.queue = nil
			sub.mu.Unlock()
			for _, ev := range batch {
				if !sub.writeEvent(ev) {
					return
				}
			}
		}
	}
}

// resync feeds the subscriber straight from the journal's Changes pages
// until it has caught up to the live sequence. The caught-up check and
// the lagged reset happen under mu: any commit published after the
// reset is enqueued by the hub, any commit before it is covered by the
// final CurSeq comparison, so the hand-back from resync to live pushes
// leaves no gap. The initial catch-up is the same walk minus the wire
// marker and the counter — from the client's side it is simply the
// subscription starting at its cursor.
func (sub *subscriber) resync() bool {
	for {
		sub.mu.Lock()
		cur := sub.cursor
		sub.mu.Unlock()
		evs, next := collectChanges(sub.s.journal, cur, subPageLimit, sub.kinds)
		for _, ev := range evs {
			if !sub.writeEvent(ev) {
				return false
			}
		}
		sub.mu.Lock()
		if next > sub.cursor {
			sub.cursor = next
		}
		if sub.s.journal.CurSeq() <= sub.cursor {
			sub.lagged = false
			sub.mu.Unlock()
			return true
		}
		sub.mu.Unlock()
	}
}

// writeEvent pushes one record frame and advances the cursor past it.
func (sub *subscriber) writeEvent(ev subEvent) bool {
	var w jwire.Writer
	switch ev.kind {
	case journal.KindInterface:
		jwire.PutSubIfaceEvent(&w, ev.seq, ev.iface)
	case journal.KindGateway:
		jwire.PutSubGatewayEvent(&w, ev.seq, ev.gw)
	case journal.KindSubnet:
		jwire.PutSubSubnetEvent(&w, ev.seq, ev.sn)
	default:
		return true
	}
	if !sub.writeFrame(w.B) {
		return false
	}
	sub.s.subPushes.Inc()
	sub.mu.Lock()
	if ev.seq > sub.cursor {
		sub.cursor = ev.seq
	}
	sub.mu.Unlock()
	return true
}

func (sub *subscriber) writeResyncMarker() bool {
	sub.mu.Lock()
	cur := sub.cursor
	sub.mu.Unlock()
	var w jwire.Writer
	jwire.PutSubResync(&w, cur)
	return sub.writeFrame(w.B)
}

func (sub *subscriber) writeFrame(b []byte) bool {
	sub.conn.SetWriteDeadline(time.Now().Add(subWriteTimeout))
	return jwire.WriteFrame(sub.conn, b) == nil
}
