// Crash-recovery tests: a Journal Server killed between snapshots must
// come back with every acknowledged store (fsync=always), and a log
// corrupted at an arbitrary byte offset must recover exactly the
// longest valid prefix. The "kill" is simulated by copying the durable
// state (snapshot + WAL segments) to a fresh directory while the
// original server still holds its files open — the copy is the disk
// image a crash would leave behind — and recovering from the copy.
package jserver

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"fremont/internal/jclient"
	"fremont/internal/journal"
	"fremont/internal/jwire"
	"fremont/internal/netsim/pkt"
	"fremont/internal/wal"
)

// copyTree copies the regular files under src into dst, preserving
// relative paths.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, fi os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if fi.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// storeIfaceReq encodes an OpStoreInterface request for 10.0.0.n with a
// fixed-width name, so every frame in a test log has the same size.
func storeIfaceReq(n int) []byte {
	var w jwire.Writer
	w.U8(jwire.OpStoreInterface)
	jwire.PutIfaceObs(&w, journal.IfaceObs{
		IP:     pkt.IPv4(10, 0, 0, byte(n)),
		Name:   fmt.Sprintf("host-%03d", n),
		Source: journal.SrcICMP,
		At:     t0,
	})
	return w.B
}

func openWAL(t *testing.T, dir string, pol wal.SyncPolicy) *wal.Log {
	t.Helper()
	l, err := wal.Open(wal.Options{Dir: dir, Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	return names
}

// TestKillRecoverNoLoss is the acceptance scenario: acknowledged stores
// survive a kill under fsync=always, snapshots compact the log, and a
// restart after compaction still reproduces the full journal.
func TestKillRecoverNoLoss(t *testing.T) {
	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	snap := filepath.Join(dir, "journal.snap")

	s := New(nil)
	s.SnapshotPath = snap
	s.WAL = openWAL(t, walDir, wal.SyncAlways)
	if _, err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	c, err := jclient.Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	// Phase 1: ten stores, then a snapshot. The snapshot is the
	// compaction point: old segments must be gone afterwards.
	for i := 1; i <= 10; i++ {
		if _, _, err := c.StoreInterface(journal.IfaceObs{
			IP: pkt.IPv4(10, 0, 0, byte(i)), Source: journal.SrcICMP, At: t0,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SaveSnapshot(); err != nil {
		t.Fatal(err)
	}
	if segs := segFiles(t, walDir); len(segs) != 1 {
		t.Fatalf("after snapshot compaction %d segments remain: %v", len(segs), segs)
	}

	// Phase 2: more acknowledged work after the snapshot — singles, a
	// batch, and a delete — then the server "dies" (we copy its durable
	// state while it still runs).
	for i := 11; i <= 20; i++ {
		if _, _, err := c.StoreInterface(journal.IfaceObs{
			IP: pkt.IPv4(10, 0, 0, byte(i)), Source: journal.SrcICMP, At: t0,
		}); err != nil {
			t.Fatal(err)
		}
	}
	var b jclient.Batch
	for i := 21; i <= 25; i++ {
		b.StoreInterface(journal.IfaceObs{
			IP: pkt.IPv4(10, 0, 0, byte(i)), Source: journal.SrcICMP, At: t0,
		})
	}
	if _, err := c.StoreBatch(&b); err != nil {
		t.Fatal(err)
	}
	victim := s.Journal().Interfaces(journal.Query{HasIP: true, ByIP: pkt.IPv4(10, 0, 0, 1)})
	if len(victim) != 1 {
		t.Fatalf("victim lookup: %v", victim)
	}
	if ok, err := c.Delete(journal.KindInterface, victim[0].ID); err != nil || !ok {
		t.Fatalf("delete = %v, %v", ok, err)
	}

	crash := t.TempDir()
	copyTree(t, dir, crash)

	// Recover from the crash image.
	s2 := New(nil)
	s2.SnapshotPath = filepath.Join(crash, "journal.snap")
	s2.WAL = openWAL(t, filepath.Join(crash, "wal"), wal.SyncAlways)
	st, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if !st.SnapshotLoaded || st.SnapshotLSN != 10 {
		t.Fatalf("recovery stats = %+v, want snapshot at LSN 10", st)
	}
	// 10 singles + 1 batch frame + 1 delete past the snapshot; nothing
	// skipped because compaction removed the covered segments.
	if st.WALFrames != 12 || st.WALOps != 16 || st.WALSkipped != 0 {
		t.Fatalf("recovery stats = %+v, want 12 frames / 16 ops / 0 skipped", st)
	}
	if n := s2.Journal().NumInterfaces(); n != 24 {
		t.Fatalf("recovered journal has %d interfaces, want 24", n)
	}
	if got := s2.Journal().Interfaces(journal.Query{HasIP: true, ByIP: pkt.IPv4(10, 0, 0, 1)}); len(got) != 0 {
		t.Fatalf("deleted interface resurrected: %v", got)
	}

	// A clean shutdown (final snapshot + compaction) followed by yet
	// another restart must reproduce the same journal.
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3 := New(nil)
	s3.SnapshotPath = filepath.Join(crash, "journal.snap")
	s3.WAL = openWAL(t, filepath.Join(crash, "wal"), wal.SyncAlways)
	t.Cleanup(func() { s3.Close() })
	st3, err := s3.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if n := s3.Journal().NumInterfaces(); n != 24 {
		t.Fatalf("post-compaction restart has %d interfaces, want 24 (stats %+v)", n, st3)
	}
}

// TestRecoverLongestValidPrefix corrupts or truncates the log tail at
// arbitrary byte offsets and asserts the recovered journal equals the
// journal built from the longest valid record prefix.
func TestRecoverLongestValidPrefix(t *testing.T) {
	const n = 6
	reqs := make([][]byte, n)
	for i := range reqs {
		reqs[i] = storeIfaceReq(i + 1)
	}
	frameLen := int64(len(reqs[0]) + 16) // frame header + payload
	const segHeader = 18

	build := func(t *testing.T) string {
		dir := t.TempDir()
		s := New(nil)
		s.WAL = openWAL(t, dir, wal.SyncAlways)
		for _, req := range reqs {
			resp := s.dispatch(req)
			if len(resp) == 0 || resp[0] != jwire.StatusOK {
				t.Fatalf("dispatch failed: %v", resp)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		return dir
	}

	cases := []struct {
		name   string
		offset int64 // corruption point within the single segment file
	}{
		{"in-header", 7},
		{"first-frame-start", segHeader},
		{"first-frame-mid", segHeader + 9},
		{"second-frame", segHeader + frameLen + 3},
		{"fourth-frame-payload", segHeader + 3*frameLen + frameLen/2},
		{"last-byte", segHeader + n*frameLen - 1},
	}
	for _, mode := range []string{"truncate", "flip"} {
		for _, tc := range cases {
			t.Run(mode+"/"+tc.name, func(t *testing.T) {
				dir := build(t)
				segs := segFiles(t, dir)
				if len(segs) != 1 {
					t.Fatalf("expected one segment, got %v", segs)
				}
				if mode == "truncate" {
					if err := os.Truncate(segs[0], tc.offset); err != nil {
						t.Fatal(err)
					}
				} else {
					data, err := os.ReadFile(segs[0])
					if err != nil {
						t.Fatal(err)
					}
					data[tc.offset] ^= 0xff
					if err := os.WriteFile(segs[0], data, 0o644); err != nil {
						t.Fatal(err)
					}
				}

				wantPrefix := 0
				if tc.offset >= segHeader {
					wantPrefix = int((tc.offset - segHeader) / frameLen)
				}

				s := New(nil)
				s.WAL = openWAL(t, dir, wal.SyncAlways)
				t.Cleanup(func() { s.Close() })
				st, err := s.Recover()
				if err != nil {
					t.Fatal(err)
				}
				if st.WALFrames != wantPrefix {
					t.Fatalf("replayed %d frames, want %d", st.WALFrames, wantPrefix)
				}
				// The journal must equal one built from the valid prefix:
				// same record count, and exactly the prefix's IPs present.
				want := journal.New()
				for i := 0; i < wantPrefix; i++ {
					jwire.ReplayPayload(want, reqs[i])
				}
				if got := s.Journal().NumInterfaces(); got != want.NumInterfaces() {
					t.Fatalf("recovered %d interfaces, want %d", got, want.NumInterfaces())
				}
				for i := 1; i <= n; i++ {
					got := s.Journal().Interfaces(journal.Query{HasIP: true, ByIP: pkt.IPv4(10, 0, 0, byte(i))})
					if wantHit := i <= wantPrefix; (len(got) == 1) != wantHit {
						t.Fatalf("interface %d present=%v, want %v", i, len(got) == 1, wantHit)
					}
				}
			})
		}
	}
}

// TestRecoverSkipsSnapshotCoveredFrames models a crash between the
// snapshot rename and log compaction: the log still holds frames the
// snapshot covers, and replaying them again would double-apply.
func TestRecoverSkipsSnapshotCoveredFrames(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "journal.snap")

	s := New(nil)
	s.WAL = openWAL(t, filepath.Join(dir, "wal"), wal.SyncAlways)
	for i := 1; i <= 5; i++ {
		s.dispatch(storeIfaceReq(i))
	}
	// Snapshot covering LSN 5, written by hand so no compaction runs.
	if err := os.WriteFile(snap, EncodeSnapshotAt(s.Journal(), 5), 0o644); err != nil {
		t.Fatal(err)
	}
	for i := 6; i <= 8; i++ {
		s.dispatch(storeIfaceReq(i))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := New(nil)
	s2.SnapshotPath = snap
	s2.WAL = openWAL(t, filepath.Join(dir, "wal"), wal.SyncAlways)
	t.Cleanup(func() { s2.Close() })
	st, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if st.SnapshotLSN != 5 || st.WALSkipped != 5 || st.WALFrames != 3 {
		t.Fatalf("stats = %+v, want LSN 5 / 5 skipped / 3 replayed", st)
	}
	if n := s2.Journal().NumInterfaces(); n != 8 {
		t.Fatalf("recovered %d interfaces, want 8", n)
	}
}

// TestConcurrentSnapshotSaves exercises the SaveSnapshot serialization:
// concurrent explicit saves racing the store path must neither collide
// on temp files nor produce an unreadable snapshot.
func TestConcurrentSnapshotSaves(t *testing.T) {
	dir := t.TempDir()
	s := New(nil)
	s.SnapshotPath = filepath.Join(dir, "journal.snap")
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				s.Journal().StoreInterface(journal.IfaceObs{
					IP: pkt.IPv4(10, byte(g), 0, byte(i)), Source: journal.SrcICMP, At: t0,
				})
				if err := s.SaveSnapshot(); err != nil {
					t.Errorf("save: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	j := journal.New()
	data, err := os.ReadFile(s.SnapshotPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := RestoreSnapshot(j, data); err != nil {
		t.Fatal(err)
	}
	if j.NumInterfaces() == 0 {
		t.Fatal("final snapshot is empty")
	}
	if leftovers, _ := filepath.Glob(filepath.Join(dir, "*.tmp-*")); len(leftovers) != 0 {
		t.Fatalf("temp files leaked: %v", leftovers)
	}
}
