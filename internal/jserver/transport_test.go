package jserver

// Transport-agnosticism: the whole op set must work with neither endpoint
// assuming *net.TCPConn. The server runs on a net.Pipe-backed listener;
// the client dials through an injected Dialer. This is the contract the
// emulytics harness (simulated TCP) relies on.

import (
	"net"
	"sync"
	"testing"
	"time"

	"fremont/internal/jclient"
	"fremont/internal/journal"
	"fremont/internal/jwire"
	"fremont/internal/netsim/pkt"
)

// pipeListener hands out the server halves of net.Pipe pairs.
type pipeListener struct {
	ch     chan net.Conn
	done   chan struct{}
	closer sync.Once
}

func newPipeListener() *pipeListener {
	return &pipeListener{ch: make(chan net.Conn), done: make(chan struct{})}
}

func (l *pipeListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *pipeListener) Close() error {
	l.closer.Do(func() { close(l.done) })
	return nil
}

type pipeAddr struct{}

func (pipeAddr) Network() string { return "pipe" }
func (pipeAddr) String() string  { return "pipe:mem" }

func (l *pipeListener) Addr() net.Addr { return pipeAddr{} }

// dial is the jclient.Dialer counterpart of Accept.
func (l *pipeListener) dial(string) (net.Conn, error) {
	client, server := net.Pipe()
	select {
	case l.ch <- server:
		return client, nil
	case <-l.done:
		client.Close()
		server.Close()
		return nil, net.ErrClosed
	}
}

func TestFullOpSetOverInMemoryTransport(t *testing.T) {
	s := New(nil)
	ln := newPipeListener()
	if err := s.Serve(ln); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })

	c, err := jclient.Dial("pipe:mem", jclient.WithDialer(ln.dial))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	// Ping + Stats.
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ServerStats(); err != nil {
		t.Fatalf("ServerStats: %v", err)
	}

	// Namespace scoping.
	if err := c.Use("tenant-a"); err != nil {
		t.Fatalf("Use: %v", err)
	}

	// Store.
	obs := journal.IfaceObs{
		IP: pkt.IPv4(128, 138, 238, 5), HasMAC: true,
		MAC:  pkt.MAC{8, 0, 0x20, 1, 2, 3},
		Name: "anchor.cs.colorado.edu", HasMask: true, Mask: pkt.MaskBits(24),
		Source: journal.SrcARP, At: t0,
	}
	id, created, err := c.StoreInterface(obs)
	if err != nil || !created || id == 0 {
		t.Fatalf("StoreInterface = %d, %v, %v", id, created, err)
	}

	// Batch.
	var b jclient.Batch
	for i := 0; i < 5; i++ {
		b.StoreInterface(journal.IfaceObs{
			IP: pkt.IPv4(128, 138, 240, byte(10+i)), Source: journal.SrcICMP, At: t0,
		})
	}
	results, err := c.StoreBatch(&b)
	if err != nil {
		t.Fatalf("StoreBatch: %v", err)
	}
	if len(results) != 5 {
		t.Fatalf("batch results = %d", len(results))
	}

	// Scan (cursor-paged).
	var all []*journal.InterfaceRec
	var cursor journal.ID
	for {
		page, next, more, err := c.ScanInterfaces(cursor, 2, journal.Query{})
		if err != nil {
			t.Fatalf("ScanInterfaces: %v", err)
		}
		all = append(all, page...)
		if !more {
			break
		}
		cursor = next
	}
	if len(all) != 6 {
		t.Fatalf("scan returned %d records, want 6", len(all))
	}

	// Changes.
	recs, _, _, err := c.InterfaceChanges(0, 100)
	if err != nil {
		t.Fatalf("InterfaceChanges: %v", err)
	}
	if len(recs) != 6 {
		t.Fatalf("changes returned %d records, want 6", len(recs))
	}

	// The default namespace must not see tenant-a's records.
	c2, err := jclient.Dial("pipe:mem", jclient.WithDialer(ln.dial))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c2.Close() })
	empty, err := c2.Interfaces(journal.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(empty) != 0 {
		t.Fatalf("default namespace sees %d tenant records", len(empty))
	}

	// Subscribe: its own pipe connection, inheriting the client's dialer
	// through Client.Subscribe (subscriptions attach to the default
	// namespace, so drive it from the unscoped client), then a live push.
	sub, err := c2.Subscribe(jclient.SubscribeOptions{
		Kinds: jwire.SubKindInterface, FromNow: true, NoResume: true,
	})
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	t.Cleanup(func() { sub.Close() })
	if _, _, err := c2.StoreInterface(journal.IfaceObs{
		IP: pkt.IPv4(128, 138, 241, 77), Source: journal.SrcRIP, At: t0,
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-sub.Events():
		if ev.Iface == nil || ev.Iface.IP != pkt.IPv4(128, 138, 241, 77) {
			t.Fatalf("pushed change = %+v", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no subscription push over in-memory transport")
	}
}
