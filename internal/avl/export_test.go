package avl

// CheckInvariants exposes the internal invariant checker to tests.
func (t *Tree[K, V]) CheckInvariants() bool { return t.checkInvariants() }
