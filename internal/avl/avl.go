// Package avl implements a height-balanced (AVL) binary search tree with
// ordered iteration and range scans.
//
// The Fremont Journal Server indexes its interface records by Ethernet
// address, IP address, and DNS name, and its subnet records by subnet
// address, exactly as described in the paper ("The data records for
// interfaces are indexed by three AVL trees ... An AVL tree is also used to
// index subnet records by subnet address. This allows quick access to
// individual data records, as well as access to ranges of records.").
//
// The tree is generic over the key type; ordering is supplied by a
// comparison function with the usual cmp semantics (<0, 0, >0).
package avl

// Tree is an AVL tree mapping keys of type K to values of type V.
// The zero value is not usable; construct with New.
//
// Tree is not safe for concurrent use; the Journal Server serializes all
// access (updates are serialized by design, per the paper).
type Tree[K any, V any] struct {
	root *node[K, V]
	size int
	cmp  func(a, b K) int
}

type node[K any, V any] struct {
	key         K
	val         V
	left, right *node[K, V]
	height      int8
}

// New returns an empty tree ordered by cmp.
func New[K any, V any](cmp func(a, b K) int) *Tree[K, V] {
	return &Tree[K, V]{cmp: cmp}
}

// Len reports the number of entries in the tree.
func (t *Tree[K, V]) Len() int { return t.size }

// Get returns the value stored under key, and whether it was present.
func (t *Tree[K, V]) Get(key K) (V, bool) {
	n := t.root
	for n != nil {
		c := t.cmp(key, n.key)
		switch {
		case c < 0:
			n = n.left
		case c > 0:
			n = n.right
		default:
			return n.val, true
		}
	}
	var zero V
	return zero, false
}

// Put inserts or replaces the value under key. It reports whether the key
// was newly inserted (true) or replaced an existing entry (false).
func (t *Tree[K, V]) Put(key K, val V) bool {
	var inserted bool
	t.root, inserted = t.insert(t.root, key, val)
	if inserted {
		t.size++
	}
	return inserted
}

func (t *Tree[K, V]) insert(n *node[K, V], key K, val V) (*node[K, V], bool) {
	if n == nil {
		return &node[K, V]{key: key, val: val, height: 1}, true
	}
	c := t.cmp(key, n.key)
	var inserted bool
	switch {
	case c < 0:
		n.left, inserted = t.insert(n.left, key, val)
	case c > 0:
		n.right, inserted = t.insert(n.right, key, val)
	default:
		n.val = val
		return n, false
	}
	if inserted {
		n = rebalance(n)
	}
	return n, inserted
}

// Delete removes the entry under key, reporting whether it was present.
func (t *Tree[K, V]) Delete(key K) bool {
	var deleted bool
	t.root, deleted = t.remove(t.root, key)
	if deleted {
		t.size--
	}
	return deleted
}

func (t *Tree[K, V]) remove(n *node[K, V], key K) (*node[K, V], bool) {
	if n == nil {
		return nil, false
	}
	c := t.cmp(key, n.key)
	var deleted bool
	switch {
	case c < 0:
		n.left, deleted = t.remove(n.left, key)
	case c > 0:
		n.right, deleted = t.remove(n.right, key)
	default:
		deleted = true
		if n.left == nil {
			return n.right, true
		}
		if n.right == nil {
			return n.left, true
		}
		// Replace with in-order successor.
		succ := n.right
		for succ.left != nil {
			succ = succ.left
		}
		n.key, n.val = succ.key, succ.val
		n.right, _ = t.remove(n.right, succ.key)
	}
	if deleted {
		n = rebalance(n)
	}
	return n, deleted
}

// Min returns the smallest key and its value. ok is false if the tree is
// empty.
func (t *Tree[K, V]) Min() (key K, val V, ok bool) {
	n := t.root
	if n == nil {
		return key, val, false
	}
	for n.left != nil {
		n = n.left
	}
	return n.key, n.val, true
}

// Max returns the largest key and its value. ok is false if the tree is
// empty.
func (t *Tree[K, V]) Max() (key K, val V, ok bool) {
	n := t.root
	if n == nil {
		return key, val, false
	}
	for n.right != nil {
		n = n.right
	}
	return n.key, n.val, true
}

// Ascend calls fn for every entry in ascending key order until fn returns
// false or the entries are exhausted.
func (t *Tree[K, V]) Ascend(fn func(key K, val V) bool) {
	ascend(t.root, fn)
}

func ascend[K any, V any](n *node[K, V], fn func(K, V) bool) bool {
	if n == nil {
		return true
	}
	if !ascend(n.left, fn) {
		return false
	}
	if !fn(n.key, n.val) {
		return false
	}
	return ascend(n.right, fn)
}

// AscendRange calls fn in ascending order for every entry with
// lo <= key < hi, until fn returns false.
func (t *Tree[K, V]) AscendRange(lo, hi K, fn func(key K, val V) bool) {
	t.ascendRange(t.root, lo, hi, fn)
}

func (t *Tree[K, V]) ascendRange(n *node[K, V], lo, hi K, fn func(K, V) bool) bool {
	if n == nil {
		return true
	}
	if t.cmp(n.key, lo) >= 0 {
		if !t.ascendRange(n.left, lo, hi, fn) {
			return false
		}
		if t.cmp(n.key, hi) < 0 {
			if !fn(n.key, n.val) {
				return false
			}
		}
	}
	if t.cmp(n.key, hi) < 0 {
		return t.ascendRange(n.right, lo, hi, fn)
	}
	return true
}

// Height returns the height of the tree (0 for an empty tree). Exposed so
// tests can verify the AVL balance guarantee.
func (t *Tree[K, V]) Height() int { return int(height(t.root)) }

// checkInvariants walks the tree verifying ordering and balance; it returns
// false at the first violation. Used by tests (via the export_test shim).
func (t *Tree[K, V]) checkInvariants() bool {
	ok := true
	var walk func(n *node[K, V]) int8
	walk = func(n *node[K, V]) int8 {
		if n == nil {
			return 0
		}
		lh, rh := walk(n.left), walk(n.right)
		if n.height != max8(lh, rh)+1 {
			ok = false
		}
		if lh-rh > 1 || rh-lh > 1 {
			ok = false
		}
		if n.left != nil && t.cmp(n.left.key, n.key) >= 0 {
			ok = false
		}
		if n.right != nil && t.cmp(n.right.key, n.key) <= 0 {
			ok = false
		}
		return max8(lh, rh) + 1
	}
	walk(t.root)
	return ok
}

func height[K any, V any](n *node[K, V]) int8 {
	if n == nil {
		return 0
	}
	return n.height
}

func max8(a, b int8) int8 {
	if a > b {
		return a
	}
	return b
}

func update[K any, V any](n *node[K, V]) {
	n.height = max8(height(n.left), height(n.right)) + 1
}

func balanceFactor[K any, V any](n *node[K, V]) int8 {
	return height(n.left) - height(n.right)
}

func rotateRight[K any, V any](n *node[K, V]) *node[K, V] {
	l := n.left
	n.left = l.right
	l.right = n
	update(n)
	update(l)
	return l
}

func rotateLeft[K any, V any](n *node[K, V]) *node[K, V] {
	r := n.right
	n.right = r.left
	r.left = n
	update(n)
	update(r)
	return r
}

func rebalance[K any, V any](n *node[K, V]) *node[K, V] {
	update(n)
	switch bf := balanceFactor(n); {
	case bf > 1:
		if balanceFactor(n.left) < 0 {
			n.left = rotateLeft(n.left)
		}
		return rotateRight(n)
	case bf < -1:
		if balanceFactor(n.right) > 0 {
			n.right = rotateRight(n.right)
		}
		return rotateLeft(n)
	}
	return n
}
