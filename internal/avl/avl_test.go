package avl

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func intCmp(a, b int) int { return a - b }

func TestEmptyTree(t *testing.T) {
	tr := New[int, string](intCmp)
	if tr.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", tr.Len())
	}
	if _, ok := tr.Get(1); ok {
		t.Fatal("Get on empty tree reported ok")
	}
	if tr.Delete(1) {
		t.Fatal("Delete on empty tree reported deletion")
	}
	if _, _, ok := tr.Min(); ok {
		t.Fatal("Min on empty tree reported ok")
	}
	if _, _, ok := tr.Max(); ok {
		t.Fatal("Max on empty tree reported ok")
	}
	if tr.Height() != 0 {
		t.Fatalf("Height() = %d, want 0", tr.Height())
	}
}

func TestPutGet(t *testing.T) {
	tr := New[int, string](intCmp)
	if !tr.Put(5, "five") {
		t.Fatal("first Put reported replacement")
	}
	if tr.Put(5, "FIVE") {
		t.Fatal("second Put of same key reported insertion")
	}
	v, ok := tr.Get(5)
	if !ok || v != "FIVE" {
		t.Fatalf("Get(5) = %q,%v; want FIVE,true", v, ok)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", tr.Len())
	}
}

func TestDelete(t *testing.T) {
	tr := New[int, int](intCmp)
	for i := 0; i < 100; i++ {
		tr.Put(i, i*10)
	}
	for i := 0; i < 100; i += 2 {
		if !tr.Delete(i) {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	if tr.Len() != 50 {
		t.Fatalf("Len() = %d, want 50", tr.Len())
	}
	for i := 0; i < 100; i++ {
		_, ok := tr.Get(i)
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get(%d) present=%v, want %v", i, ok, want)
		}
	}
	if !tr.CheckInvariants() {
		t.Fatal("invariants violated after deletions")
	}
}

func TestDeleteInternalNodes(t *testing.T) {
	// Delete nodes that have two children (forces successor replacement).
	tr := New[int, int](intCmp)
	keys := []int{50, 25, 75, 10, 30, 60, 90, 5, 15, 28, 35}
	for _, k := range keys {
		tr.Put(k, k)
	}
	for _, k := range []int{25, 50, 75} {
		if !tr.Delete(k) {
			t.Fatalf("Delete(%d) failed", k)
		}
		if !tr.CheckInvariants() {
			t.Fatalf("invariants violated after deleting %d", k)
		}
	}
	want := []int{5, 10, 15, 28, 30, 35, 60, 90}
	var got []int
	tr.Ascend(func(k, _ int) bool { got = append(got, k); return true })
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestAscendOrder(t *testing.T) {
	tr := New[int, int](intCmp)
	rng := rand.New(rand.NewSource(42))
	perm := rng.Perm(1000)
	for _, k := range perm {
		tr.Put(k, k)
	}
	prev := -1
	count := 0
	tr.Ascend(func(k, v int) bool {
		if k <= prev {
			t.Fatalf("out of order: %d after %d", k, prev)
		}
		if v != k {
			t.Fatalf("value mismatch: key %d has value %d", k, v)
		}
		prev = k
		count++
		return true
	})
	if count != 1000 {
		t.Fatalf("visited %d entries, want 1000", count)
	}
}

func TestAscendEarlyStop(t *testing.T) {
	tr := New[int, int](intCmp)
	for i := 0; i < 100; i++ {
		tr.Put(i, i)
	}
	count := 0
	tr.Ascend(func(k, _ int) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Fatalf("visited %d entries, want 10", count)
	}
}

func TestAscendRange(t *testing.T) {
	tr := New[int, int](intCmp)
	for i := 0; i < 100; i++ {
		tr.Put(i, i)
	}
	var got []int
	tr.AscendRange(25, 30, func(k, _ int) bool { got = append(got, k); return true })
	want := []int{25, 26, 27, 28, 29}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestAscendRangeEmpty(t *testing.T) {
	tr := New[int, int](intCmp)
	for i := 0; i < 10; i++ {
		tr.Put(i*10, i)
	}
	called := false
	tr.AscendRange(41, 49, func(int, int) bool { called = true; return true })
	if called {
		t.Fatal("AscendRange visited entries in an empty range")
	}
}

func TestMinMax(t *testing.T) {
	tr := New[int, string](intCmp)
	for _, k := range []int{42, 7, 99, 13} {
		tr.Put(k, "v")
	}
	if k, _, _ := tr.Min(); k != 7 {
		t.Fatalf("Min = %d, want 7", k)
	}
	if k, _, _ := tr.Max(); k != 99 {
		t.Fatalf("Max = %d, want 99", k)
	}
}

func TestHeightLogarithmic(t *testing.T) {
	tr := New[int, int](intCmp)
	// Sequential insertion is the worst case for a naive BST.
	for i := 0; i < 1<<14; i++ {
		tr.Put(i, i)
	}
	// AVL guarantees height <= 1.44*log2(n+2); for n=16384 that's ~21.
	if h := tr.Height(); h > 21 {
		t.Fatalf("Height = %d for 16384 sequential keys; tree is not balanced", h)
	}
	if !tr.CheckInvariants() {
		t.Fatal("invariants violated after sequential insert")
	}
}

func TestStringKeys(t *testing.T) {
	tr := New[string, int](strings.Compare)
	words := []string{"boulder", "denver", "aspen", "vail", "golden"}
	for i, w := range words {
		tr.Put(w, i)
	}
	var got []string
	tr.Ascend(func(k string, _ int) bool { got = append(got, k); return true })
	if !sort.StringsAreSorted(got) {
		t.Fatalf("string keys not sorted: %v", got)
	}
}

// TestQuickInvariants is a property test: any sequence of random inserts and
// deletes leaves the tree balanced, ordered, and agreeing with a reference
// map.
func TestQuickInvariants(t *testing.T) {
	f := func(ops []int16) bool {
		tr := New[int16, int](func(a, b int16) int { return int(a) - int(b) })
		ref := map[int16]int{}
		for i, op := range ops {
			if op%2 == 0 {
				tr.Put(op, i)
				ref[op] = i
			} else {
				d := tr.Delete(op)
				_, had := ref[op]
				if d != had {
					return false
				}
				delete(ref, op)
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			got, ok := tr.Get(k)
			if !ok || got != v {
				return false
			}
		}
		return tr.CheckInvariants()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAscendMatchesSortedKeys(t *testing.T) {
	f := func(keys []int32) bool {
		tr := New[int32, bool](func(a, b int32) int {
			switch {
			case a < b:
				return -1
			case a > b:
				return 1
			}
			return 0
		})
		uniq := map[int32]bool{}
		for _, k := range keys {
			tr.Put(k, true)
			uniq[k] = true
		}
		want := make([]int32, 0, len(uniq))
		for k := range uniq {
			want = append(want, k)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		got := make([]int32, 0, tr.Len())
		tr.Ascend(func(k int32, _ bool) bool { got = append(got, k); return true })
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPut(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	keys := make([]int, b.N)
	for i := range keys {
		keys[i] = rng.Int()
	}
	tr := New[int, int](intCmp)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Put(keys[i], i)
	}
}

func BenchmarkGet(b *testing.B) {
	tr := New[int, int](intCmp)
	for i := 0; i < 1<<16; i++ {
		tr.Put(i, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(i & (1<<16 - 1))
	}
}
