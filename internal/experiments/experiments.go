// Package experiments regenerates every table and figure of the paper's
// evaluation section against the simulated campus. Each experiment returns
// structured results (for the shape tests and benchmarks) plus a rendered
// text table (for cmd/fremont-sim and EXPERIMENTS.md).
//
// Absolute numbers depend on the simulation substrate; what must match the
// paper is the shape: who wins, by roughly what factor, where the losses
// come from. See EXPERIMENTS.md for the side-by-side record.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// timeBase is the virtual epoch used for synthetic journal timestamps.
func timeBase() time.Time {
	return time.Date(1993, time.January, 25, 8, 0, 0, 0, time.UTC)
}

// Table is a rendered result table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Write renders the table as aligned text.
func (t *Table) Write(w io.Writer) {
	fmt.Fprintf(w, "%s\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	t.Write(&b)
	return b.String()
}

func pct(part, total int) string {
	if total == 0 {
		return "-"
	}
	return fmt.Sprintf("%d", int(float64(part)/float64(total)*100+0.5))
}
