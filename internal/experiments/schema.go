package experiments

import (
	"fmt"

	"fremont/internal/explorer"
	"fremont/internal/journal"
	"fremont/internal/netsim/pkt"
)

// Table1 renders the interface record schema (the paper's Table 1),
// straight from the journal record type so drift is impossible.
func Table1() *Table {
	return &Table{
		Title:  "Table 1: Interface Fields",
		Header: []string{"Field"},
		Rows: [][]string{
			{"MAC layer address"},
			{"Network layer address"},
			{"DNS name"},
			{"Subnet mask"},
			{"Gateway to which this interface belongs"},
		},
	}
}

// Table3 renders the Explorer Module registry (the paper's Table 3).
func Table3() *Table {
	t := &Table{
		Title:  "Table 3: Explorer Module Input/Output",
		Header: []string{"Source", "Module", "Inputs", "Outputs"},
	}
	for _, m := range explorer.All() {
		info := m.Info()
		t.Rows = append(t.Rows, []string{info.SourceProtocol, info.Name, info.Inputs, info.Outputs})
	}
	return t
}

// Table2Result measures Journal storage at the paper's example scale: "a
// 25% full class B network (16k interfaces) with 192 subnets used (and an
// equal number of gateways) would require under four megabytes of memory."
type Table2Result struct {
	Footprint journal.Footprint
}

// Table2 populates a journal at class-B scale and measures it.
func Table2() Table2Result {
	j := journal.New()
	base := pkt.IPv4(128, 138, 0, 0)
	at := timeBase()
	for i := 0; i < 16384; i++ {
		ip := base + pkt.IP(i)
		j.StoreInterface(journal.IfaceObs{
			IP: ip, HasMAC: true,
			MAC:     pkt.MAC{8, 0, 0x20, byte(i >> 16), byte(i >> 8), byte(i)},
			Name:    fmt.Sprintf("host%05d.colorado.edu", i),
			HasMask: true, Mask: pkt.MaskBits(24),
			Source: journal.SrcARP | journal.SrcICMP | journal.SrcDNS, At: at,
		})
	}
	for s := 0; s < 192; s++ {
		sn := pkt.SubnetOf(base+pkt.IP(s*256), pkt.MaskBits(24))
		j.StoreSubnet(journal.SubnetObs{
			Subnet: sn, GatewayIPs: []pkt.IP{sn.FirstHost()},
			HostCount: 85, LoAddr: sn.FirstHost(), HiAddr: sn.LastHost(),
			Source: journal.SrcRIP | journal.SrcDNS, At: at,
		})
	}
	return Table2Result{Footprint: j.MeasureFootprint()}
}

// Table renders the result beside the paper's numbers.
func (r Table2Result) Table() *Table {
	f := r.Footprint
	return &Table{
		Title:  "Table 2: Journal Storage Requirements",
		Header: []string{"Record", "Bytes/Record (measured)", "Bytes/Record (paper, 1993 C)"},
		Rows: [][]string{
			{"Interface", fmt.Sprintf("%d", f.PerInterface()), "200"},
			{"Gateway", fmt.Sprintf("%d", f.PerGateway()), "84"},
			{"Subnet", fmt.Sprintf("%d", f.PerSubnet()), "76"},
		},
		Notes: []string{
			fmt.Sprintf("%d interfaces + %d gateways + %d subnets total %.2f MB (paper: <4 MB; shape: interface >> gateway > subnet, whole journal fits in memory)",
				f.Interfaces, f.Gateways, f.Subnets, float64(f.Total())/(1<<20)),
		},
	}
}
