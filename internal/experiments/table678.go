package experiments

import (
	"fmt"
	"strings"
	"time"

	"fremont/internal/analysis"
	"fremont/internal/core"
	"fremont/internal/explorer"
	"fremont/internal/journal"
	"fremont/internal/netsim/campus"
	"fremont/internal/netsim/pkt"
	"fremont/internal/present"
)

// Table6Row is one module's subnet-discovery effectiveness across the
// campus.
type Table6Row struct {
	Module     string
	Subnets    int
	PctOfTotal int
	Comment    string
}

// Table6Result holds the campus-wide subnet discovery comparison, plus the
// system it ran on (Figure 2 renders the same journal).
type Table6Result struct {
	Rows        []Table6Row
	Total       int // live subnets (paper: 111)
	DNSGateways int // gateways DNS identified (paper: 31)
	Sys         *core.System
}

// Table6 reproduces "Discovering Subnets": RIPwatch, Traceroute (fed by
// the RIP clues already in the Journal), and the DNS walk, each counted
// against the live-subnet ground truth.
func Table6(seed int64) (Table6Result, error) {
	cfg := campus.DefaultConfig()
	cfg.Seed = seed
	cfg.Chatter = false
	cfg.Liveness = false // subnet discovery does not depend on host churn
	sys := core.NewSystem(cfg)
	sys.Advance(5 * time.Minute) // let RIP advertisements start flowing

	res := Table6Result{Total: len(sys.Campus.Live), Sys: sys}

	repRIP, err := sys.RunModule(explorer.RIPwatch{}, explorer.Params{Duration: 2 * time.Minute})
	if err != nil {
		return res, err
	}
	// Traceroute with no explicit direction reads its targets from the
	// Journal — the RIP clue feed the paper describes.
	repTR, err := sys.RunModule(explorer.Tracerouter{}, explorer.Params{})
	if err != nil {
		return res, err
	}
	repDNS, err := sys.RunModule(explorer.DNSExplorer{}, explorer.Params{
		Network: sys.Network(), DNSServer: sys.Campus.DNSServerIP,
	})
	if err != nil {
		return res, err
	}
	if _, err := sys.Correlate(); err != nil {
		return res, err
	}

	// DNS-identified gateways and the subnets they connect — counted from
	// DNS evidence alone (member interfaces that carry DNS names), the way
	// the paper attributes the 48 to the DNS module. The merged journal
	// records also carry traceroute's links, which would inflate the
	// number.
	ifByID := map[journal.ID]*journal.InterfaceRec{}
	if err := journal.EachInterface(sys.Sink, journal.Query{}, func(r *journal.InterfaceRec) error {
		ifByID[r.ID] = r
		return nil
	}); err != nil {
		return res, err
	}
	gws, err := sys.Sink.Gateways()
	if err != nil {
		return res, err
	}
	dnsGWSubnets := map[pkt.IP]bool{}
	for _, gw := range gws {
		if gw.Sources&journal.SrcDNS == 0 {
			continue
		}
		res.DNSGateways++
		for _, ifID := range gw.Ifaces {
			rec := ifByID[ifID]
			if rec == nil || rec.Name == "" || rec.Sources&journal.SrcDNS == 0 {
				continue
			}
			mask := rec.Mask
			if mask == 0 {
				mask = pkt.MaskBits(24)
			}
			dnsGWSubnets[pkt.SubnetOf(rec.IP, mask).Addr] = true
		}
	}

	add := func(name string, n int, comment string) {
		res.Rows = append(res.Rows, Table6Row{
			Module: name, Subnets: n,
			PctOfTotal: int(float64(n)/float64(res.Total)*100 + 0.5),
			Comment:    comment,
		})
	}
	add("Traceroute", len(repTR.Subnets), "Gateway software problems")
	add("RIPwatch", len(repRIP.Subnets), "Nearly all subnets advertised")
	add("DNS", len(repDNS.Subnets), "Not all hosts name served")
	add("DNS", len(dnsGWSubnets), "Subnets with gateways identified")
	return res, nil
}

// Table renders the result.
func (r Table6Result) Table() *Table {
	t := &Table{
		Title:  "Table 6: Discovering Subnets (1 run of each active module)",
		Header: []string{"Module", "Subnets", "% of Total", "Comments"},
		Notes: []string{
			fmt.Sprintf("total = %d live subnets; DNS identified %d gateways (paper: 111 subnets, 31 gateways)", r.Total, r.DNSGateways),
			"paper: Traceroute 86/77%; RIPwatch 111/100%; DNS 93/84%; DNS gateways on 48/43%",
		},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Module, fmt.Sprintf("%d", row.Subnets),
			fmt.Sprintf("%d", row.PctOfTotal), row.Comment,
		})
	}
	return t
}

// Table7Result summarizes what the prototype discovers (the paper's
// Table 7), measured from a full campus journal.
type Table7Result struct {
	IfacesWithMAC  int
	IfacesWithIP   int
	IfacesWithName int
	IfacesWithMask int
	IfacesWithGw   int
	Gateways       int
	GatewaysLinked int // gateways with at least one subnet attachment
	Subnets        int
	SubnetsLinked  int // subnets with at least one gateway
}

// Table7 runs a full discovery batch (manager-driven) and summarizes the
// resulting journal coverage.
func Table7(seed int64) (Table7Result, error) {
	res, _, err := fullDiscovery(seed)
	return res, err
}

func fullDiscovery(seed int64) (Table7Result, *core.System, error) {
	var res Table7Result
	cfg := campus.DefaultConfig()
	cfg.Seed = seed
	cfg.Chatter = false
	cfg.Liveness = false
	sys := core.NewSystem(cfg)
	sys.Advance(5 * time.Minute)

	// RIP clues first, then the rest, then masks, then DNS, then
	// correlation — the natural manager ordering, run explicitly here.
	runs := []struct {
		m explorer.Module
		p explorer.Params
	}{
		{explorer.RIPwatch{}, explorer.Params{Duration: 2 * time.Minute}},
		{explorer.EtherHostProbe{}, explorer.Params{}},
		{explorer.Tracerouter{}, explorer.Params{}},
		{explorer.SubnetMasks{}, explorer.Params{}},
		{explorer.DNSExplorer{}, explorer.Params{Network: sys.Network(), DNSServer: sys.Campus.DNSServerIP}},
	}
	for _, r := range runs {
		if _, err := sys.RunModule(r.m, r.p); err != nil {
			return res, nil, fmt.Errorf("table 7: %s: %w", r.m.Info().Name, err)
		}
	}
	if _, err := sys.Correlate(); err != nil {
		return res, nil, err
	}

	// Tallies stream; nothing here needs the whole record set at once.
	if err := journal.EachInterface(sys.Sink, journal.Query{}, func(r *journal.InterfaceRec) error {
		res.IfacesWithIP++
		if !r.MAC.IsZero() {
			res.IfacesWithMAC++
		}
		if r.Name != "" {
			res.IfacesWithName++
		}
		if r.Mask != 0 {
			res.IfacesWithMask++
		}
		if r.Gateway != 0 {
			res.IfacesWithGw++
		}
		return nil
	}); err != nil {
		return res, nil, err
	}
	if err := journal.EachGateway(sys.Sink, func(gw *journal.GatewayRec) error {
		res.Gateways++
		if len(gw.Subnets) > 0 {
			res.GatewaysLinked++
		}
		return nil
	}); err != nil {
		return res, nil, err
	}
	if err := journal.EachSubnet(sys.Sink, func(sn *journal.SubnetRec) error {
		res.Subnets++
		if len(sn.Gateways) > 0 {
			res.SubnetsLinked++
		}
		return nil
	}); err != nil {
		return res, nil, err
	}
	return res, sys, nil
}

// Table renders the result.
func (r Table7Result) Table() *Table {
	return &Table{
		Title:  "Table 7: Characteristics Discovered by Prototype (journal coverage after a full run)",
		Header: []string{"Characteristic", "Records"},
		Rows: [][]string{
			{"Interfaces (network layer address)", fmt.Sprintf("%d", r.IfacesWithIP)},
			{"Interfaces with Ethernet address", fmt.Sprintf("%d", r.IfacesWithMAC)},
			{"Interfaces with DNS name", fmt.Sprintf("%d", r.IfacesWithName)},
			{"Interfaces with subnet mask", fmt.Sprintf("%d", r.IfacesWithMask)},
			{"Interfaces with gateway membership", fmt.Sprintf("%d", r.IfacesWithGw)},
			{"Gateways", fmt.Sprintf("%d", r.Gateways)},
			{"Gateways with subnet links (topology)", fmt.Sprintf("%d", r.GatewaysLinked)},
			{"Subnets", fmt.Sprintf("%d", r.Subnets)},
			{"Subnets with gateway links (topology)", fmt.Sprintf("%d", r.SubnetsLinked)},
		},
	}
}

// Table8Result compares detected problems against the injected ground
// truth.
type Table8Result struct {
	Problems []analysis.Problem
	Faults   campus.Faults
	// Detected counts per problem class.
	Detected map[analysis.ProblemKind]int
}

// Table8 injects the paper's problem population into the department,
// watches it long enough for every fault to manifest, and runs the
// analysis programs.
func Table8(seed int64) (Table8Result, error) {
	cfg := campus.DefaultConfig()
	cfg.Seed = seed
	cfg.InjectFaults = true
	sys := core.NewDepartmentSystem(cfg)
	res := Table8Result{Faults: sys.Campus.Faults, Detected: map[analysis.ProblemKind]int{}}

	csRange := explorer.Params{
		RangeLo: sys.Campus.CSSubnet.FirstHost(),
		RangeHi: sys.Campus.CSSubnet.LastHost(),
	}

	// Day 1-3: a long ARP watch sees the duplicate pair fighting and the
	// mid-run hardware change.
	if _, err := sys.RunModule(explorer.ARPwatch{}, explorer.Params{Duration: 48 * time.Hour}); err != nil {
		return res, err
	}
	// Probe sweeps: MAC pairs (including the proxy-ARP range), masks, RIP.
	if _, err := sys.RunModule(explorer.EtherHostProbe{}, csRange); err != nil {
		return res, err
	}
	if _, err := sys.RunModule(explorer.SubnetMasks{}, explorer.Params{}); err != nil {
		return res, err
	}
	if _, err := sys.RunModule(explorer.RIPwatch{}, explorer.Params{Duration: 3 * time.Minute}); err != nil {
		return res, err
	}
	// Let days pass; the removed host stays silent while everyone else
	// keeps getting re-verified by a short daily watch.
	for day := 0; day < 3; day++ {
		sys.Advance(22 * time.Hour)
		if _, err := sys.RunModule(explorer.ARPwatch{}, explorer.Params{Duration: 2 * time.Hour}); err != nil {
			return res, err
		}
	}

	ps, err := sys.Analyze(analysis.Config{Now: sys.Now(), StaleAfter: 3 * 24 * time.Hour})
	if err != nil {
		return res, err
	}
	res.Problems = ps
	for _, p := range ps {
		res.Detected[p.Kind]++
	}
	return res, nil
}

// Table renders detections against ground truth.
func (r Table8Result) Table() *Table {
	f := r.Faults
	row := func(label string, kind analysis.ProblemKind, injected string) []string {
		return []string{label, injected, fmt.Sprintf("%d", r.Detected[kind])}
	}
	t := &Table{
		Title:  "Table 8: Problems Uncovered by Prototype (injected vs detected)",
		Header: []string{"Problem", "Injected", "Findings"},
		Rows: [][]string{
			row("IP Addresses No Longer in Use", analysis.ProblemStaleAddress, f.RemovedIP.String()),
			row("Hardware Changes", analysis.ProblemHardwareChange, f.HardwareChangeIP.String()),
			row("Inconsistent Network Masks", analysis.ProblemMaskConflict, joinIPs(f.WrongMaskIPs)),
			row("Duplicate Address Assignments", analysis.ProblemDuplicateAddr, f.DuplicateIP.String()),
			row("Promiscuous RIP Hosts", analysis.ProblemPromiscuousRIP, f.PromiscuousIP.String()),
			row("Proxy ARP / multihomed", analysis.ProblemProxyARP, joinIPs(f.ProxyARPRange)),
		},
	}
	return t
}

func joinIPs(ips []pkt.IP) string {
	parts := make([]string, len(ips))
	for i, ip := range ips {
		parts[i] = ip.String()
	}
	return strings.Join(parts, ",")
}

// Figure2Result carries the topology exports regenerated from a full
// campus discovery.
type Figure2Result struct {
	Topology *present.Topology
	DOT      string
	SNM      string
	ASCII    string
}

// Figure2 runs campus discovery and renders the network structure the way
// the paper's Figure 2 did via SunNet Manager.
func Figure2(seed int64) (Figure2Result, error) {
	var res Figure2Result
	t6, err := Table6(seed)
	if err != nil {
		return res, err
	}
	topo, err := t6.Sys.Topology()
	if err != nil {
		return res, err
	}
	res.Topology = topo
	var dot, snm, ascii strings.Builder
	topo.WriteDOT(&dot)
	topo.WriteSNM(&snm)
	topo.WriteASCII(&ascii)
	res.DOT = dot.String()
	res.SNM = snm.String()
	res.ASCII = ascii.String()
	return res, nil
}
