package experiments

import (
	"strings"
	"testing"

	"fremont/internal/analysis"
)

const testSeed = 1993

func TestTable1And3Schema(t *testing.T) {
	t1 := Table1()
	if len(t1.Rows) != 5 {
		t.Fatalf("Table 1 rows = %d, want 5", len(t1.Rows))
	}
	t3 := Table3()
	if len(t3.Rows) != 8 {
		t.Fatalf("Table 3 rows = %d, want 8 modules", len(t3.Rows))
	}
	out := t3.String()
	for _, m := range []string{"ARPwatch", "EtherHostProbe", "SeqPing", "BroadcastPing",
		"SubnetMasks", "Traceroute", "RIPwatch", "DNS"} {
		if !strings.Contains(out, m) {
			t.Errorf("Table 3 missing %s", m)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	r := Table2()
	f := r.Footprint
	if f.Interfaces < 16384 || f.Gateways != 192 || f.Subnets != 192 {
		t.Fatalf("counts: %+v", f)
	}
	// Shape: interface records cost the most, the whole journal stays
	// small enough to hold in memory with ease.
	if f.PerInterface() <= f.PerGateway() {
		t.Errorf("interface records (%d B) should outweigh gateway records (%d B)",
			f.PerInterface(), f.PerGateway())
	}
	if f.Total() > 16<<20 {
		t.Errorf("journal total %.1f MB; paper shape is 'a few megabytes'", float64(f.Total())/(1<<20))
	}
	t.Log("\n" + r.Table().String())
}

func TestTable4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	r, err := Table4(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]Table4Row{}
	for _, row := range r.Rows {
		rows[row.Module] = row
	}
	// Passive modules generate no traffic.
	for _, m := range []string{"ARPwatch", "RIPwatch"} {
		if rows[m].PacketRate != 0 {
			t.Errorf("%s packet rate = %f, want 0", m, rows[m].PacketRate)
		}
	}
	// Rate ceilings from the paper.
	if rate := rows["EtherHostProbe"].PacketRate; rate > 4.5 {
		t.Errorf("EtherHostProbe rate %.2f > 4 pkts/sec", rate)
	}
	if rate := rows["SeqPing"].PacketRate; rate > 1.2 {
		t.Errorf("SeqPing rate %.2f > ~0.5-1 pkts/sec", rate)
	}
	if rate := rows["Traceroute"].PacketRate; rate > 8.5 {
		t.Errorf("Traceroute rate %.2f > 8 pkts/sec", rate)
	}
	// Completion-time shape: broadcast ping is fast (~20s); seqping over a
	// /24 takes ~9-18 min; traceroute over the campus takes minutes.
	if d := rows["BroadcastPing"].TimeToComplete.Minutes(); d > 2 {
		t.Errorf("BroadcastPing took %.1f min, want well under a minute or two", d)
	}
	if d := rows["SeqPing"].TimeToComplete.Minutes(); d < 8 || d > 25 {
		t.Errorf("SeqPing took %.1f min, want 9-18", d)
	}
	if d := rows["Traceroute"].TimeToComplete.Minutes(); d < 2 || d > 30 {
		t.Errorf("Traceroute took %.1f min, want 5-20", d)
	}
	t.Log("\n" + r.Table().String())
}

func TestTable5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	r, err := Table5(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.Table().String())
	if r.Total < 50 || r.Total > 60 {
		t.Fatalf("DNS total = %d, want ≈56", r.Total)
	}
	byRow := map[string]int{}
	for _, row := range r.Rows {
		byRow[row.Module+"/"+row.Note] = row.Interfaces
	}
	a30 := byRow["ARPwatch/Run for 30 min"]
	a24 := byRow["ARPwatch/Run for 24 hours"]
	ehp := byRow["EtherHostProbe/Not all hosts up when run"]
	bp := byRow["BrdcastPing/Collisions"]
	sp := byRow["SeqPing/Not all hosts up when run"]
	dns := byRow["DNS/Not necessarily current"]

	// The paper's ordering: DNS ≥ EtherHostProbe > BrdcastPing > SeqPing,
	// and ARPwatch grows substantially from 30 minutes to 24 hours.
	if dns != r.Total {
		t.Errorf("DNS found %d, want the full %d", dns, r.Total)
	}
	if !(ehp > bp && bp > sp) {
		t.Errorf("ordering broken: EHP=%d BP=%d SP=%d (want EHP > BP > SP)", ehp, bp, sp)
	}
	if a24 <= a30 {
		t.Errorf("ARPwatch did not grow: 30min=%d 24h=%d", a30, a24)
	}
	// Rough bands (paper: 61%, 89%, 86%, 75%, 70%).
	band := func(name string, n, lo, hi int) {
		pctV := n * 100 / r.Total
		if pctV < lo || pctV > hi {
			t.Errorf("%s = %d (%d%%), want %d-%d%%", name, n, pctV, lo, hi)
		}
	}
	band("ARPwatch/30min", a30, 40, 80)
	band("ARPwatch/24h", a24, 75, 98)
	band("EtherHostProbe", ehp, 72, 98)
	band("BrdcastPing", bp, 60, 88)
	band("SeqPing", sp, 55, 82)
}

func TestTable6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	r, err := Table6(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.Table().String())
	if r.Total != 111 {
		t.Fatalf("live subnets = %d, want 111", r.Total)
	}
	byRow := map[string]int{}
	for _, row := range r.Rows {
		byRow[row.Module+"/"+row.Comment] = row.Subnets
	}
	rip := byRow["RIPwatch/Nearly all subnets advertised"]
	tr := byRow["Traceroute/Gateway software problems"]
	dns := byRow["DNS/Not all hosts name served"]
	gwsub := byRow["DNS/Subnets with gateways identified"]

	if rip != 111 {
		t.Errorf("RIPwatch found %d subnets, want all 111", rip)
	}
	if !(dns < rip && tr < dns) {
		t.Errorf("ordering broken: RIP=%d DNS=%d TR=%d (want RIP > DNS > TR)", rip, dns, tr)
	}
	// Bands around the paper's 77%, 84%, 43%.
	if tr < 75 || tr > 95 {
		t.Errorf("Traceroute = %d, want ≈86", tr)
	}
	if dns < 88 || dns > 98 {
		t.Errorf("DNS subnets = %d, want ≈93", dns)
	}
	if gwsub < 40 || gwsub > 55 {
		t.Errorf("DNS gateway-linked subnets = %d, want ≈48", gwsub)
	}
	if r.DNSGateways < 25 || r.DNSGateways > 36 {
		t.Errorf("DNS gateways = %d, want ≈31", r.DNSGateways)
	}
}

func TestTable7Coverage(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	r, err := Table7(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.Table().String())
	if r.IfacesWithIP == 0 || r.Gateways == 0 || r.Subnets == 0 {
		t.Fatalf("coverage empty: %+v", r)
	}
	if r.SubnetsLinked*2 < r.Subnets {
		t.Errorf("only %d/%d subnets linked to gateways", r.SubnetsLinked, r.Subnets)
	}
	if r.IfacesWithMask == 0 {
		t.Error("no masks discovered")
	}
	if r.IfacesWithName == 0 {
		t.Error("no names attached")
	}
}

func TestTable8Problems(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	r, err := Table8(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.Table().String())
	want := []analysis.ProblemKind{
		analysis.ProblemStaleAddress,
		analysis.ProblemHardwareChange,
		analysis.ProblemMaskConflict,
		analysis.ProblemDuplicateAddr,
		analysis.ProblemPromiscuousRIP,
		analysis.ProblemProxyARP,
	}
	for _, kind := range want {
		if r.Detected[kind] == 0 {
			t.Errorf("injected problem %s not detected", kind)
		}
	}
	// The right hosts are implicated.
	foundStale := false
	for _, p := range r.Problems {
		if p.Kind == analysis.ProblemStaleAddress {
			for _, ip := range p.IPs {
				if ip == r.Faults.RemovedIP {
					foundStale = true
				}
			}
		}
	}
	if !foundStale {
		t.Errorf("removed host %s not among stale findings", r.Faults.RemovedIP)
	}
}

func TestFigure2Topology(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	r, err := Figure2(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Topology.Subnets) < 100 {
		t.Fatalf("topology has %d subnets", len(r.Topology.Subnets))
	}
	if len(r.Topology.Gateways) < 40 {
		t.Fatalf("topology has %d gateways", len(r.Topology.Gateways))
	}
	if !strings.Contains(r.DOT, "graph fremont") {
		t.Error("DOT export malformed")
	}
	if !strings.Contains(r.SNM, "element router") {
		t.Error("SNM export malformed")
	}
	if !strings.Contains(r.ASCII, "128.138.238.0/24") {
		t.Error("ASCII export missing the CS subnet")
	}
}
