package experiments

import (
	"fmt"
	"time"

	"fremont/internal/core"
	"fremont/internal/explorer"
	"fremont/internal/netsim/campus"
	"fremont/internal/netsim/pkt"
)

// Table4Row is one module's measured characteristics.
type Table4Row struct {
	Module         string
	MinInterval    time.Duration
	MaxInterval    time.Duration
	TimeToComplete time.Duration
	Continuous     bool
	PacketRate     float64 // packets/sec offered to the network
	SystemLoad     string  // qualitative, from the paper's observations
}

// Table4Result holds all module rows.
type Table4Result struct {
	Rows []Table4Row
}

var systemLoad = map[string]string{
	"ARPwatch":       "minimal",
	"EtherHostProbe": "minimal",
	"SeqPing":        "minimal",
	"BroadcastPing":  "short high load",
	"SubnetMasks":    "minimal",
	"Traceroute":     "moderate",
	"RIPwatch":       "minimal",
	"DNS":            "high",
}

// Table4 measures each module's completion time and network load. The
// local-wire modules run against the department build; the campus-scale
// modules (Traceroute, RIPwatch, DNS) against the full campus.
func Table4(seed int64) (Table4Result, error) {
	var res Table4Result

	deptCfg := campus.DefaultConfig()
	deptCfg.Seed = seed
	dept := core.NewDepartmentSystem(deptCfg)
	dept.Advance(10 * time.Minute) // let RIP and chatter settle

	fullCfg := campus.DefaultConfig()
	fullCfg.Seed = seed
	fullCfg.Chatter = false // irrelevant for the campus-scale modules
	fullCfg.Liveness = false
	full := core.NewSystem(fullCfg)
	full.Advance(10 * time.Minute)

	add := func(sys *core.System, m explorer.Module, p explorer.Params, continuous bool) error {
		rep, err := sys.RunModule(m, p)
		if err != nil {
			return fmt.Errorf("table 4: %s: %w", m.Info().Name, err)
		}
		info := m.Info()
		res.Rows = append(res.Rows, Table4Row{
			Module:         info.Name,
			MinInterval:    info.MinInterval,
			MaxInterval:    info.MaxInterval,
			TimeToComplete: rep.Elapsed(),
			Continuous:     continuous,
			PacketRate:     rep.PacketRate(),
			SystemLoad:     systemLoad[info.Name],
		})
		return nil
	}

	csRange := explorer.Params{
		RangeLo: dept.Campus.CSSubnet.FirstHost(),
		RangeHi: dept.Campus.CSSubnet.LastHost(),
	}
	steps := []struct {
		sys        *core.System
		m          explorer.Module
		p          explorer.Params
		continuous bool
	}{
		{dept, explorer.ARPwatch{}, explorer.Params{Duration: 30 * time.Minute}, true},
		{dept, explorer.EtherHostProbe{}, csRange, false},
		{dept, explorer.SeqPing{}, csRange, false},
		{dept, explorer.BroadcastPing{}, explorer.Params{}, false},
		{dept, explorer.SubnetMasks{}, explorer.Params{Addresses: deptAddresses(dept)}, false},
		{full, explorer.RIPwatch{}, explorer.Params{Duration: 2 * time.Minute}, false},
		{full, explorer.Tracerouter{}, explorer.Params{}, false},
		{full, explorer.DNSExplorer{}, explorer.Params{Network: full.Network(), DNSServer: full.Campus.DNSServerIP}, false},
	}
	for _, s := range steps {
		if err := add(s.sys, s.m, s.p, s.continuous); err != nil {
			return res, err
		}
	}
	return res, nil
}

// deptAddresses lists the department's real machine addresses (the mask
// module's natural input).
func deptAddresses(sys *core.System) []pkt.IP {
	var out []pkt.IP
	for _, nd := range sys.Campus.CSMachines {
		out = append(out, nd.Ifaces[len(nd.Ifaces)-1].IP)
	}
	return out
}

// Table renders the result.
func (r Table4Result) Table() *Table {
	t := &Table{
		Title:  "Table 4: Explorer Module Characteristics",
		Header: []string{"Module", "Min/Max Interval", "Time to Complete", "Network Load", "System Load"},
	}
	for _, row := range r.Rows {
		ttc := row.TimeToComplete.Round(time.Second).String()
		if row.Continuous {
			ttc = "continuous"
		}
		load := fmt.Sprintf("%.2f pkts/sec", row.PacketRate)
		if row.PacketRate == 0 {
			load = "none"
		}
		t.Rows = append(t.Rows, []string{
			row.Module,
			fmt.Sprintf("%s; %s", days(row.MinInterval), days(row.MaxInterval)),
			ttc,
			load,
			row.SystemLoad,
		})
	}
	return t
}

func days(d time.Duration) string {
	switch {
	case d >= 7*24*time.Hour && d%(7*24*time.Hour) == 0:
		return fmt.Sprintf("%d weeks", d/(7*24*time.Hour))
	case d >= 24*time.Hour:
		return fmt.Sprintf("%d days", d/(24*time.Hour))
	default:
		return fmt.Sprintf("%d hours", d/time.Hour)
	}
}

// Table5Row is one module's interface-discovery effectiveness on the
// measured department subnet.
type Table5Row struct {
	Module     string
	Interfaces int
	PctOfTotal int
	Note       string
}

// Table5Result holds the discovery-effectiveness comparison. Total is the
// DNS count, the paper's reference denominator.
type Table5Result struct {
	Rows  []Table5Row
	Total int // DNS entries (paper: 56)
	Real  int // machines actually on the wire (paper: 54)
}

// Table5 reproduces "Discovering Interfaces on a Subnet": one run of each
// active module at the time of day the paper's loss notes imply, plus
// ARPwatch counts after 30 minutes and after 24 hours.
func Table5(seed int64) (Table5Result, error) {
	cfg := campus.DefaultConfig()
	cfg.Seed = seed

	// ARPwatch 30-minute count: its own system, watching from 09:00.
	sysA := core.NewDepartmentSystem(cfg)
	sysA.AdvanceToHour(9)
	repA30, err := sysA.RunModule(explorer.ARPwatch{}, explorer.Params{Duration: 30 * time.Minute})
	if err != nil {
		return Table5Result{}, err
	}

	// Everything else: a second system (same seed → same wire) with the
	// 24-hour watch and the actively scheduled probes.
	sys := core.NewDepartmentSystem(cfg)
	sys.AdvanceToHour(9)
	repA24, err := sys.RunModule(explorer.ARPwatch{}, explorer.Params{Duration: 24 * time.Hour})
	if err != nil {
		return Table5Result{}, err
	}

	csRange := explorer.Params{
		RangeLo: sys.Campus.CSSubnet.FirstHost(),
		RangeHi: sys.Campus.CSSubnet.LastHost(),
	}

	sys.AdvanceToHour(11) // mid-morning: most machines on
	repEHP, err := sys.RunModule(explorer.EtherHostProbe{}, csRange)
	if err != nil {
		return Table5Result{}, err
	}

	sys.AdvanceToHour(14) // afternoon: collisions are the only loss
	repBP, err := sys.RunModule(explorer.BroadcastPing{}, explorer.Params{})
	if err != nil {
		return Table5Result{}, err
	}

	sys.AdvanceToHour(4) // small hours: many machines off
	repSP, err := sys.RunModule(explorer.SeqPing{}, csRange)
	if err != nil {
		return Table5Result{}, err
	}

	repDNS, err := sys.RunModule(explorer.DNSExplorer{}, explorer.Params{
		Network: sys.Network(), DNSServer: sys.Campus.DNSServerIP,
	})
	if err != nil {
		return Table5Result{}, err
	}

	// Count only addresses on the measured subnet.
	onSubnet := func(rep *explorer.Report) int {
		n := 0
		for _, ip := range rep.Interfaces {
			if sys.Campus.CSSubnet.Contains(ip) {
				n++
			}
		}
		return n
	}
	total := onSubnet(repDNS)
	res := Table5Result{Total: total, Real: sys.Campus.CSRealCount}
	add := func(name string, rep *explorer.Report, note string) {
		n := onSubnet(rep)
		res.Rows = append(res.Rows, Table5Row{
			Module: name, Interfaces: n,
			PctOfTotal: int(float64(n)/float64(total)*100 + 0.5),
			Note:       note,
		})
	}
	add("ARPwatch", repA30, "Run for 30 min")
	add("ARPwatch", repA24, "Run for 24 hours")
	add("EtherHostProbe", repEHP, "Not all hosts up when run")
	add("BrdcastPing", repBP, "Collisions")
	add("SeqPing", repSP, "Not all hosts up when run")
	add("DNS", repDNS, "Not necessarily current")
	return res, nil
}

// Table renders the result next to the paper's percentages.
func (r Table5Result) Table() *Table {
	paper := map[string][2]string{
		"ARPwatch(30m)": {"34", "61"},
		"ARPwatch(24h)": {"50", "89"},
	}
	_ = paper
	t := &Table{
		Title:  "Table 5: Discovering Interfaces on a Subnet (1 run of each active module)",
		Header: []string{"Module", "Interfaces", "% of Total", "Reason for loss"},
		Notes: []string{
			fmt.Sprintf("total = %d DNS entries, of which %d are real machines (paper: 56 and 54)", r.Total, r.Real),
			"paper: ARPwatch 34/61% (30 min) and 50/89% (24 h); EtherHostProbe 48/86%; BrdcastPing 42/75%; SeqPing 38/70%; DNS 56/100%",
		},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Module, fmt.Sprintf("%d", row.Interfaces),
			fmt.Sprintf("%d", row.PctOfTotal), row.Note,
		})
	}
	return t
}
