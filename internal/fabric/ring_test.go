package fabric

import (
	"fmt"
	"math/rand"
	"testing"

	"fremont/internal/journal"
	"fremont/internal/netsim/pkt"
)

// TestRingStability is the consistent-hash property test: growing an
// N-shard ring to N+1 remaps only the keys the new shard captures —
// about K/(N+1) of K keys — never a wholesale reshuffle. Deterministic:
// keys come from a seeded generator.
func TestRingStability(t *testing.T) {
	const K = 20000
	rng := rand.New(rand.NewSource(42))
	keys := make([]string, K)
	for i := range keys {
		keys[i] = fmt.Sprintf("if/%d.%d.%d.%d", rng.Intn(224)+1, rng.Intn(256), rng.Intn(256), rng.Intn(254)+1)
	}
	for _, n := range []int{2, 3, 5, 8} {
		before := NewRing(n, 0)
		after := NewRing(n+1, 0)
		moved := 0
		for _, k := range keys {
			b, a := before.Lookup(k), after.Lookup(k)
			if b != a {
				moved++
				// Consistent hashing moves keys only *onto* the new shard:
				// a key that changes owner must land on shard n.
				if a != n {
					t.Fatalf("n=%d: key %q moved %d -> %d, not onto the new shard %d", n, k, b, a, n)
				}
			}
		}
		ideal := K / (n + 1)
		// Allow 2x the ideal share: vnode placement is random-ish, but a
		// full reshuffle (K·n/(n+1) moves) is two orders off this bound.
		if moved > 2*ideal {
			t.Errorf("n=%d -> %d: %d of %d keys moved, want <= ~%d (2x ideal K/(n+1))", n, n+1, moved, K, 2*ideal)
		}
		if moved == 0 {
			t.Errorf("n=%d -> %d: no keys moved; new shard owns nothing", n, n+1)
		}
	}
}

// TestRingBalance checks vnode smoothing: no shard of a 4-shard ring
// owns a grossly outsized share of a seeded key population.
func TestRingBalance(t *testing.T) {
	const K = 40000
	r := NewRing(4, 0)
	rng := rand.New(rand.NewSource(7))
	counts := make([]int, 4)
	for i := 0; i < K; i++ {
		counts[r.Lookup(fmt.Sprintf("key-%d-%d", i, rng.Int63()))]++
	}
	for s, c := range counts {
		if c < K/8 || c > K/2 {
			t.Errorf("shard %d owns %d of %d keys; ring badly unbalanced: %v", s, c, K, counts)
		}
	}
}

func TestRingDeterminism(t *testing.T) {
	a, b := NewRing(5, 0), NewRing(5, 0)
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("key%d", i)
		if a.Lookup(k) != b.Lookup(k) {
			t.Fatalf("two rings with identical config disagree on %q", k)
		}
	}
}

func TestShardForID(t *testing.T) {
	// Stripe arithmetic: shard i of n allocates IDs congruent to i+1 mod n.
	for n := 1; n <= 5; n++ {
		for i := 0; i < n; i++ {
			j := journal.New()
			j.SetIDStride(journal.ID(i), journal.ID(n))
			id, _ := j.StoreInterface(journal.IfaceObs{IP: pkt.IP(0x0a000001 + uint32(i))})
			if got := ShardForID(id, n); got != i {
				t.Errorf("n=%d: first ID %d of shard %d routes to %d", n, id, i, got)
			}
		}
	}
}

func TestGatewayKey(t *testing.T) {
	ip := func(s uint32) pkt.IP { return pkt.IP(s) }
	// Minimum member IP wins regardless of order.
	k1, ok := GatewayKey(journal.GatewayObs{IfaceIPs: []pkt.IP{ip(30), ip(10), ip(20)}})
	if !ok || k1 != IfaceKey(ip(10)) {
		t.Fatalf("gateway key = %q, %v; want min member key", k1, ok)
	}
	k2, ok := GatewayKey(journal.GatewayObs{IfaceIPs: []pkt.IP{ip(10), ip(30)}})
	if !ok || k2 != k1 {
		t.Fatalf("gateway key unstable under member order: %q vs %q", k1, k2)
	}
	// No members: fall back to min subnet.
	k3, ok := GatewayKey(journal.GatewayObs{Subnets: []pkt.Subnet{{Addr: ip(200), Mask: 0xffffff00}, {Addr: ip(100), Mask: 0xffffff00}}})
	if !ok || k3 != SubnetKey(pkt.Subnet{Addr: ip(100), Mask: 0xffffff00}) {
		t.Fatalf("subnet fallback key = %q, %v", k3, ok)
	}
	// Nothing to route on.
	if _, ok := GatewayKey(journal.GatewayObs{}); ok {
		t.Fatal("empty gateway observation produced a routing key")
	}
}
