// Package fabric shards the journal across N jserver shards. Records
// partition by FNV-1a hash over a consistent-hash ring (ring.go); each
// shard is a complete jserver with its own WAL directory, snapshot,
// modification sequence, and obs registry (fabric.go). Record IDs are
// striped — shard i of N allocates IDs congruent to i+1 mod N — so a
// single plain ID cursor pages a fabric-wide ID-ordered merge and an
// existing record routes back to its shard by arithmetic alone.
package fabric

import (
	"fmt"
	"sort"

	"fremont/internal/journal"
	"fremont/internal/netsim/pkt"
)

// DefaultVnodes is the number of virtual nodes each shard places on the
// ring. More vnodes smooth the key distribution (stddev ~ 1/sqrt(v))
// at the cost of a larger table; 64 keeps shard imbalance under a few
// percent for realistic key counts.
const DefaultVnodes = 64

// Ring is a consistent-hash ring over named shards. Keys hash with
// FNV-1a 64 onto a circle of shard vnode points; a key belongs to the
// first point at or clockwise of its hash. Adding a shard to an N-shard
// ring therefore remaps only the key ranges the new shard's vnodes
// capture — about K/(N+1) of K keys — instead of rehashing everything.
// A Ring is immutable after New; lookups are safe for concurrent use.
type Ring struct {
	points []ringPoint // sorted by hash
	shards int
}

type ringPoint struct {
	hash  uint64
	shard int
}

// NewRing builds a ring of n shards with vnodes points each (vnodes <= 0
// uses DefaultVnodes). Shards are identified by index 0..n-1; ShardID
// renders the conventional name.
func NewRing(n, vnodes int) *Ring {
	if n <= 0 {
		panic("fabric: ring needs at least one shard")
	}
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	r := &Ring{points: make([]ringPoint, 0, n*vnodes), shards: n}
	for s := 0; s < n; s++ {
		for v := 0; v < vnodes; v++ {
			h := fnv1a(fmt.Sprintf("%s#%d", ShardID(s), v))
			r.points = append(r.points, ringPoint{hash: h, shard: s})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Identical hashes (vanishingly rare) tie-break by shard so the
		// ring is deterministic regardless of sort stability.
		return r.points[a].shard < r.points[b].shard
	})
	return r
}

// Shards reports the number of shards on the ring.
func (r *Ring) Shards() int { return r.shards }

// Lookup returns the shard index owning key.
func (r *Ring) Lookup(key string) int {
	h := fnv1a(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the first point owns the arc past the last one
	}
	return r.points[i].shard
}

// ShardID is the conventional name of shard index i: "shard0", "shard1",
// … It keys replication cursors, metric prefixes, and Unavailable lists.
func ShardID(i int) string { return fmt.Sprintf("shard%d", i) }

// fnv1a is the 64-bit FNV-1a hash with an avalanche finalizer. Raw
// FNV-1a of near-identical strings (vnode labels differ in a digit or
// two) leaves the high bits — the ones ring ordering sorts by —
// correlated, which visibly unbalances shard arcs; the multiply-xor
// finalizer (Murmur3's) spreads every input bit across the word.
func fnv1a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// --- Routing keys ---------------------------------------------------------

// Observations route by their natural key, so every observation of the
// same underlying entity lands on the same shard and the journal's merge
// logic (same IP folds, same subnet folds) keeps working shard-locally.

// IfaceKey is the routing key for an interface observation: its IP.
func IfaceKey(ip pkt.IP) string { return "if/" + ip.String() }

// SubnetKey is the routing key for a subnet observation: its address.
func SubnetKey(sn pkt.Subnet) string { return "sn/" + sn.Addr.String() }

// GatewayKey is the routing key for a gateway observation: the minimum
// member interface IP, else the minimum attached subnet address. A
// gateway observed through disjoint member sets on different shards is
// stored as two records — the price of shard-local merges; the
// correlate pass stitches them like any other partial evidence.
func GatewayKey(obs journal.GatewayObs) (string, bool) {
	if len(obs.IfaceIPs) > 0 {
		min := obs.IfaceIPs[0]
		for _, ip := range obs.IfaceIPs[1:] {
			if ip < min {
				min = ip
			}
		}
		return IfaceKey(min), true
	}
	if len(obs.Subnets) > 0 {
		min := obs.Subnets[0]
		for _, sn := range obs.Subnets[1:] {
			if sn.Addr < min.Addr {
				min = sn
			}
		}
		return SubnetKey(min), true
	}
	return "", false
}

// ShardForID returns the index of the shard that allocated id under
// stride-n striping: IDs on shard i are congruent to i+1 mod n.
func ShardForID(id journal.ID, n int) int {
	if n <= 1 {
		return 0
	}
	return int((uint32(id) - 1) % uint32(n))
}
