// Package fabricd boots the server side of the journal fabric: N full
// jserver shards in one process, each with its own striped journal, WAL
// directory, snapshot file, and obs registry. The pure routing layer
// (ring, shard keys) lives in the parent package fabric, which clients
// import without pulling in the server.
package fabricd

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"fremont/internal/fabric"
	"fremont/internal/journal"
	"fremont/internal/jserver"
	"fremont/internal/obs"
	"fremont/internal/wal"
)

// Options configures an in-process fabric.
type Options struct {
	// Shards is the number of jserver shards (>= 1).
	Shards int

	// DataDir is the root of the fabric's on-disk layout; shard i keeps
	// its snapshot at DataDir/shard<i>/journal.snap and its WAL under
	// DataDir/shard<i>/wal. Empty disables persistence entirely.
	DataDir string

	// WAL tuning, applied per shard. DisableWAL turns write-ahead
	// logging off even when DataDir is set (snapshots only). GroupMax
	// and GroupWait tune group commit (see wal.Options); zero values
	// take the WAL defaults.
	DisableWAL  bool
	SyncPolicy  wal.SyncPolicy
	SegmentSize int64
	GroupMax    int
	GroupWait   time.Duration

	SnapshotInterval time.Duration

	// TenantQuota caps records per tenant namespace on each shard; 0
	// means unlimited. The fabric-wide cap is therefore quota × shards.
	TenantQuota int

	// SubQueueMax overrides the per-subscriber queue bound on each shard.
	SubQueueMax int
}

// Fabric is the server side of the sharded journal: N full jservers,
// each with its own journal (ID-striped over the fabric), WAL directory,
// snapshot file, and obs registry, plus a merged registry that exposes
// every shard's instruments under a shard<i>_ prefix.
type Fabric struct {
	Servers []*jserver.Server
	reg     *obs.Registry
}

// Open builds the fabric's shards: striped journals, per-shard WAL and
// snapshot paths under opts.DataDir. Nothing listens yet — call Recover
// then Listen.
func Open(opts Options) (*Fabric, error) {
	if opts.Shards <= 0 {
		opts.Shards = 1
	}
	f := &Fabric{reg: obs.NewRegistry()}
	for i := 0; i < opts.Shards; i++ {
		j := journal.New()
		if opts.Shards > 1 {
			j.SetIDStride(journal.ID(i), journal.ID(opts.Shards))
		}
		srv := jserver.New(j)
		if opts.SnapshotInterval > 0 {
			srv.SnapshotInterval = opts.SnapshotInterval
		}
		srv.TenantQuota = opts.TenantQuota
		srv.SubQueueMax = opts.SubQueueMax
		if opts.DataDir != "" {
			dir := filepath.Join(opts.DataDir, fabric.ShardID(i))
			if err := os.MkdirAll(dir, 0o755); err != nil {
				f.Close()
				return nil, err
			}
			srv.SnapshotPath = filepath.Join(dir, "journal.snap")
			if !opts.DisableWAL {
				l, err := wal.Open(wal.Options{
					Dir:         filepath.Join(dir, "wal"),
					Policy:      opts.SyncPolicy,
					SegmentSize: opts.SegmentSize,
					GroupMax:    opts.GroupMax,
					GroupWait:   opts.GroupWait,
					Obs:         srv.Obs(),
				})
				if err != nil {
					f.Close()
					return nil, fmt.Errorf("fabricd: %s: open wal: %w", fabric.ShardID(i), err)
				}
				srv.WAL = l
			}
		}
		f.reg.Gather(fabric.ShardID(i)+"_", srv.Obs())
		f.Servers = append(f.Servers, srv)
	}
	return f, nil
}

// Recover restores every shard from its snapshot and WAL tail.
func (f *Fabric) Recover() ([]jserver.RecoveryStats, error) {
	stats := make([]jserver.RecoveryStats, len(f.Servers))
	for i, srv := range f.Servers {
		st, err := srv.Recover()
		if err != nil {
			return stats, fmt.Errorf("fabricd: %s: recover: %w", fabric.ShardID(i), err)
		}
		stats[i] = st
	}
	return stats, nil
}

// Listen binds every shard. base is the address of shard 0; shard i
// listens on base's port + i, so a fabric at ":4741" serves shards on
// 4741, 4742, … A base port of 0 gives every shard an ephemeral port
// (tests). Shards stay independently addressable: a jclient.Fabric
// built from Addrs() behaves identically whether the shards live in
// this process or in one process each.
func (f *Fabric) Listen(base string) error {
	host, portStr, err := net.SplitHostPort(base)
	if err != nil {
		return fmt.Errorf("fabricd: listen address %q: %w", base, err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return fmt.Errorf("fabricd: listen address %q: %w", base, err)
	}
	for i, srv := range f.Servers {
		addr := net.JoinHostPort(host, "0")
		if port != 0 {
			addr = net.JoinHostPort(host, strconv.Itoa(port+i))
		}
		if err := srv.Listen(addr); err != nil {
			return fmt.Errorf("fabricd: %s: listen: %w", fabric.ShardID(i), err)
		}
	}
	return nil
}

// Addrs returns every shard's bound address, in shard order.
func (f *Fabric) Addrs() []string {
	addrs := make([]string, len(f.Servers))
	for i, srv := range f.Servers {
		addrs[i] = srv.Addr()
	}
	return addrs
}

// Obs returns the merged metrics registry: every shard's instruments
// appear under a shard<i>_ prefix, read live at snapshot time.
func (f *Fabric) Obs() *obs.Registry { return f.reg }

// Close shuts every shard down (final snapshot, WAL close). All shards
// are closed even if one fails; the first error wins.
func (f *Fabric) Close() error {
	var first error
	for _, srv := range f.Servers {
		if srv == nil {
			continue
		}
		if err := srv.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
