package jclient_test

import (
	"fmt"
	"testing"
	"time"

	"fremont/internal/fabric"
	"fremont/internal/fabric/fabricd"
	"fremont/internal/jclient"
	"fremont/internal/journal"
	"fremont/internal/netsim/pkt"
)

var ft0 = time.Date(1993, 1, 25, 8, 0, 0, 0, time.UTC)

// startFabric boots an in-process 3-shard fabric on ephemeral ports and
// a fabric client over it.
func startFabric(t *testing.T, shards int) (*fabricd.Fabric, *jclient.Fabric) {
	t.Helper()
	f, err := fabricd.Open(fabricd.Options{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	fc, err := jclient.DialFabric(f.Addrs(), 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fc.Close() })
	return f, fc
}

func fip(i int) pkt.IP { return pkt.IPv4(10, byte(i/65536%256), byte(i/256%256), byte(i%256)) }

// TestFabricRoutingAndScan: stores spread across shards by hash, every
// record comes back exactly once through the scatter-gather scan, in
// ascending ID order, across many small pages.
func TestFabricRoutingAndScan(t *testing.T) {
	f, fc := startFabric(t, 3)
	const K = 200
	ids := map[journal.ID]pkt.IP{}
	for i := 1; i <= K; i++ {
		id, created, err := fc.StoreInterface(journal.IfaceObs{IP: fip(i), At: ft0})
		if err != nil || !created {
			t.Fatalf("store %d: id=%d created=%v err=%v", i, id, created, err)
		}
		if ids[id] != 0 {
			t.Fatalf("duplicate ID %d across shards", id)
		}
		ids[id] = fip(i)
	}
	// Every shard should own a nontrivial slice of the keys.
	for i, srv := range f.Servers {
		if n := srv.Journal().NumInterfaces(); n < K/10 {
			t.Errorf("shard %d owns %d of %d records; hash routing badly skewed", i, n, K)
		}
	}
	// Page through with a small limit; every record exactly once, ID-ordered.
	seen := map[journal.ID]bool{}
	var cursor journal.ID
	var last journal.ID
	for {
		recs, next, more, err := fc.ScanInterfaces(cursor, 16, journal.Query{})
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) > 16 {
			t.Fatalf("page of %d exceeds limit 16", len(recs))
		}
		for _, r := range recs {
			if r.ID <= last {
				t.Fatalf("scan out of order: %d after %d", r.ID, last)
			}
			last = r.ID
			if seen[r.ID] {
				t.Fatalf("record %d returned twice", r.ID)
			}
			seen[r.ID] = true
			if ids[r.ID] != r.IP {
				t.Fatalf("record %d has IP %v, want %v", r.ID, r.IP, ids[r.ID])
			}
		}
		if !more {
			break
		}
		cursor = next
	}
	if len(seen) != K {
		t.Fatalf("scan returned %d records, want %d", len(seen), K)
	}

	// Point queries route: by IP (hash) and by ID (stripe arithmetic).
	for id, ip := range ids {
		recs, err := fc.Interfaces(journal.Query{HasIP: true, ByIP: ip})
		if err != nil || len(recs) != 1 || recs[0].ID != id {
			t.Fatalf("by-IP %v: %v, %v", ip, recs, err)
		}
		recs, err = fc.Interfaces(journal.Query{HasID: true, ByID: id})
		if err != nil || len(recs) != 1 || recs[0].IP != ip {
			t.Fatalf("by-ID %d: %v, %v", id, recs, err)
		}
		break // one of each is enough
	}
}

// TestFabricRepeatObservation: re-observing the same IP routes to the
// same shard and merges instead of creating a second record.
func TestFabricRepeatObservation(t *testing.T) {
	_, fc := startFabric(t, 3)
	ip := pkt.IPv4(10, 1, 2, 3)
	id1, created, err := fc.StoreInterface(journal.IfaceObs{IP: ip, At: ft0})
	if err != nil || !created {
		t.Fatal(err)
	}
	id2, created, err := fc.StoreInterface(journal.IfaceObs{
		IP: ip, Name: "host.example", At: ft0.Add(time.Minute),
	})
	if err != nil || created || id2 != id1 {
		t.Fatalf("re-observation: id=%d created=%v err=%v (want merge into %d)", id2, created, err, id1)
	}
	recs, err := fc.Interfaces(journal.Query{HasIP: true, ByIP: ip})
	if err != nil || len(recs) != 1 || recs[0].Name != "host.example" {
		t.Fatalf("merged record: %+v, %v", recs, err)
	}
}

// TestFabricChanges: composite cursors behind monotone handles — drain,
// idle poll keeps the cursor, new writes resume past the handle.
func TestFabricChanges(t *testing.T) {
	_, fc := startFabric(t, 3)
	for i := 1; i <= 30; i++ {
		if _, _, err := fc.StoreInterface(journal.IfaceObs{IP: fip(i), At: ft0}); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[journal.ID]bool{}
	cur := uint64(0)
	for {
		recs, next, more, err := fc.InterfaceChanges(cur, 8)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			seen[r.ID] = true
		}
		if next < cur {
			t.Fatalf("cursor handle went backwards: %d -> %d", cur, next)
		}
		cur = next
		if !more {
			break
		}
	}
	if len(seen) != 30 {
		t.Fatalf("changes drained %d records, want 30", len(seen))
	}
	// Idle poll: no change -> same handle back (no handle churn).
	recs, next, _, err := fc.InterfaceChanges(cur, 0)
	if err != nil || len(recs) != 0 || next != cur {
		t.Fatalf("idle poll: %d recs, cursor %d -> %d, err %v", len(recs), cur, next, err)
	}
	// New write resumes from the handle: exactly the new record.
	if _, _, err := fc.StoreInterface(journal.IfaceObs{IP: fip(1000), At: ft0}); err != nil {
		t.Fatal(err)
	}
	recs, next2, _, err := fc.InterfaceChanges(cur, 0)
	if err != nil || len(recs) != 1 || recs[0].IP != fip(1000) {
		t.Fatalf("resume after handle: %v, %v", recs, err)
	}
	if next2 <= cur {
		t.Fatalf("advanced cursor %d not greater than %d", next2, cur)
	}
	// A cursor of the wrong kind is rejected.
	if _, _, _, err := fc.GatewayChanges(next2, 0); err == nil {
		t.Fatal("interface cursor accepted by GatewayChanges")
	}
}

// TestFabricDegradedReads: a down shard degrades reads to partial
// results with the outage named in Unavailable; writes routed to the
// down shard fail while others proceed; recovery clears the list.
func TestFabricDegradedReads(t *testing.T) {
	f, fc := startFabric(t, 3)
	const K = 60
	byShard := map[int][]pkt.IP{}
	for i := 1; i <= K; i++ {
		if _, _, err := fc.StoreInterface(journal.IfaceObs{IP: fip(i), At: ft0}); err != nil {
			t.Fatal(err)
		}
	}
	counts := make([]int, 3)
	for i, srv := range f.Servers {
		counts[i] = srv.Journal().NumInterfaces()
	}
	_ = byShard

	// Kill shard 1.
	if err := f.Servers[1].Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := fc.Interfaces(journal.Query{})
	if err != nil {
		t.Fatalf("degraded read errored instead of degrading: %v", err)
	}
	if len(recs) != K-counts[1] {
		t.Errorf("degraded read: %d records, want %d (all but shard1's %d)", len(recs), K-counts[1], counts[1])
	}
	down := fc.Unavailable()
	if len(down) != 1 || down[0] != fabric.ShardID(1) {
		t.Errorf("Unavailable() = %v, want [shard1]", down)
	}
	// Scan degrades the same way.
	var got int
	var cursor journal.ID
	for {
		page, next, more, err := fc.ScanInterfaces(cursor, 16, journal.Query{})
		if err != nil {
			t.Fatal(err)
		}
		got += len(page)
		if !more {
			break
		}
		cursor = next
	}
	if got != K-counts[1] {
		t.Errorf("degraded scan: %d records, want %d", got, K-counts[1])
	}
	// A write routed to the dead shard fails; one routed elsewhere works.
	var deadIP, liveIP pkt.IP
	for i := K + 1; i < K+1000 && (deadIP == 0 || liveIP == 0); i++ {
		ip := fip(i)
		recs, err := fc.Interfaces(journal.Query{HasIP: true, ByIP: ip})
		_ = recs
		if err != nil {
			if deadIP == 0 {
				deadIP = ip
			}
		} else if liveIP == 0 {
			liveIP = ip
		}
	}
	if deadIP == 0 || liveIP == 0 {
		t.Fatal("could not find IPs routing to both live and dead shards")
	}
	if _, _, err := fc.StoreInterface(journal.IfaceObs{IP: deadIP, At: ft0}); err == nil {
		t.Error("write to dead shard succeeded")
	}
	if _, _, err := fc.StoreInterface(journal.IfaceObs{IP: liveIP, At: ft0}); err != nil {
		t.Errorf("write to live shard failed: %v", err)
	}
}

// TestFabricAllDown: reads error (rather than silently returning
// nothing) when no shard answers.
func TestFabricAllDown(t *testing.T) {
	f, fc := startFabric(t, 2)
	for _, srv := range f.Servers {
		srv.Close()
	}
	if _, err := fc.Interfaces(journal.Query{}); err == nil {
		t.Fatal("scatter read with every shard down returned no error")
	}
}

// TestFabricStoreBatch: a batch splits along routing keys and results
// come back in submission order.
func TestFabricStoreBatch(t *testing.T) {
	_, fc := startFabric(t, 3)
	var b jclient.Batch
	const K = 40
	for i := 1; i <= K; i++ {
		b.StoreInterface(journal.IfaceObs{IP: fip(i), At: ft0})
	}
	sn := pkt.Subnet{Addr: pkt.IPv4(10, 0, 0, 0), Mask: pkt.MaskBits(24)}
	b.StoreSubnet(journal.SubnetObs{Subnet: sn, At: ft0})
	results, err := fc.StoreBatch(&b)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != K+1 {
		t.Fatalf("%d results, want %d", len(results), K+1)
	}
	for i := 0; i < K; i++ {
		if results[i].Err != nil || results[i].ID == 0 || !results[i].Created {
			t.Fatalf("result %d: %+v", i, results[i])
		}
		// Order preserved: result i must be the record for fip(i+1).
		recs, err := fc.Interfaces(journal.Query{HasID: true, ByID: results[i].ID})
		if err != nil || len(recs) != 1 || recs[0].IP != fip(i+1) {
			t.Fatalf("result %d maps to %v (want %v)", i, recs, fip(i+1))
		}
	}
	if results[K].Err != nil || results[K].ID == 0 {
		t.Fatalf("subnet result: %+v", results[K])
	}
}

// TestFabricSubscribe: the fan-in stream delivers every shard's commits.
func TestFabricSubscribe(t *testing.T) {
	_, fc := startFabric(t, 3)
	sub, err := fc.Subscribe(jclient.FabricSubscribeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	const K = 30
	storerDone := make(chan struct{})
	go func() {
		defer close(storerDone)
		for i := 1; i <= K; i++ {
			fc.StoreInterface(journal.IfaceObs{IP: fip(i), At: ft0})
		}
	}()
	defer func() { <-storerDone }()
	got := map[pkt.IP]bool{}
	shards := map[string]bool{}
	timeout := time.After(10 * time.Second)
	for len(got) < K {
		select {
		case ev, ok := <-sub.Events():
			if !ok {
				t.Fatalf("stream closed early: %v (got %d/%d)", sub.Err(), len(got), K)
			}
			if ev.Kind == journal.KindInterface && !ev.Resync {
				got[ev.Iface.IP] = true
				shards[ev.Shard] = true
			}
		case <-timeout:
			t.Fatalf("timed out with %d/%d events", len(got), K)
		}
	}
	if len(shards) < 2 {
		t.Errorf("events arrived from %d shard(s); expected a spread: %v", len(shards), shards)
	}
	cursors := sub.Cursors()
	if len(cursors) != 3 {
		t.Errorf("Cursors() = %v", cursors)
	}
}

// TestFabricUse: tenant scoping applies fabric-wide through pool dial
// hooks.
func TestFabricUse(t *testing.T) {
	f, err := fabricd.Open(fabricd.Options{Shards: 3, TenantQuota: 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	fa, err := jclient.DialFabric(f.Addrs(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer fa.Close()
	fa.Use("site-a")
	for i := 1; i <= 9; i++ {
		if _, _, err := fa.StoreInterface(journal.IfaceObs{IP: fip(i), At: ft0}); err != nil {
			t.Fatal(err)
		}
	}
	fb, err := jclient.DialFabric(f.Addrs(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Close()
	recs, err := fb.Interfaces(journal.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("default-namespace fabric sees %d tenant records", len(recs))
	}
	fb.Use("site-a")
	if recs, err = fb.Interfaces(journal.Query{}); err != nil || len(recs) != 9 {
		t.Fatalf("tenant fabric sees %d records, want 9 (%v)", len(recs), err)
	}
}

// TestFabricMidScanCreation: records created while a scan pages must not
// break the exactly-once contract for records that existed at scan
// start, and the scan must terminate.
func TestFabricMidScanCreation(t *testing.T) {
	_, fc := startFabric(t, 3)
	const K = 90
	existing := map[journal.ID]bool{}
	for i := 1; i <= K; i++ {
		id, _, err := fc.StoreInterface(journal.IfaceObs{IP: fip(i), At: ft0})
		if err != nil {
			t.Fatal(err)
		}
		existing[id] = true
	}
	seen := map[journal.ID]int{}
	var cursor journal.ID
	extra := K
	for pages := 0; ; pages++ {
		recs, next, more, err := fc.ScanInterfaces(cursor, 10, journal.Query{})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			seen[r.ID]++
			if seen[r.ID] > 1 {
				t.Fatalf("record %d delivered twice", r.ID)
			}
		}
		// Interleave new stores with the scan.
		if extra < K+20 {
			extra++
			if _, _, err := fc.StoreInterface(journal.IfaceObs{IP: fip(extra), At: ft0}); err != nil {
				t.Fatal(err)
			}
		}
		if !more {
			break
		}
		cursor = next
		if pages > 1000 {
			t.Fatal("scan did not terminate")
		}
	}
	for id := range existing {
		if seen[id] == 0 {
			t.Errorf("pre-existing record %d missed by scan", id)
		}
	}
}

func TestDialFabricValidation(t *testing.T) {
	if _, err := jclient.DialFabric(nil, 1); err == nil {
		t.Fatal("empty address list accepted")
	}
	// Sanity: ShardIDs mirror fabric naming.
	fc, err := jclient.DialFabric([]string{"127.0.0.1:1", "127.0.0.1:2"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()
	want := []string{fabric.ShardID(0), fabric.ShardID(1)}
	got := fc.ShardIDs()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("ShardIDs() = %v, want %v", got, want)
	}
}
