// Package jclient is the Journal Server client library. It implements
// journal.Sink over a TCP connection, so Explorer Modules, the Discovery
// Manager, and the presentation/analysis programs can run anywhere on the
// network.
package jclient

import (
	"fmt"
	"net"
	"sort"
	"sync"

	"fremont/internal/journal"
	"fremont/internal/jwire"
	"fremont/internal/obs"
)

// Client is a connection to a Journal Server. Methods are safe for
// concurrent use (requests are serialized on the connection).
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	opt  options // how this connection was made; reused by Subscribe

	// PageSize is the page limit used by the cursor-scan methods and the
	// full-query Sink methods routed through them; 0 means the server's
	// default (journal.DefaultScanLimit). Set it before sharing the
	// client across goroutines.
	PageSize int
}

var (
	_ journal.Sink    = (*Client)(nil)
	_ journal.Scanner = (*Client)(nil)
	_ journal.Changer = (*Client)(nil)
)

// Dial connects to a Journal Server. With no options it dials TCP with
// DefaultDialTimeout; WithDialer rehosts the client on any transport and
// WithTimeout adjusts the default one.
func Dial(addr string, opts ...Option) (*Client, error) {
	o := resolveOptions(opts)
	conn, err := o.dial(addr)
	if err != nil {
		return nil, fmt.Errorf("jclient: dial %s: %w", addr, err)
	}
	return &Client{conn: conn, opt: o}, nil
}

// NewClient wraps an already-established connection (for transports with
// no address to dial, e.g. one end of a net.Pipe).
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn}
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one request and decodes the status byte of the reply.
func (c *Client) roundTrip(req []byte) (*jwire.Reader, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := jwire.WriteFrame(c.conn, req); err != nil {
		return nil, fmt.Errorf("jclient: send: %w", err)
	}
	resp, err := jwire.ReadFrame(c.conn)
	if err != nil {
		return nil, fmt.Errorf("jclient: recv: %w", err)
	}
	r := &jwire.Reader{B: resp}
	if status := r.U8(); status != jwire.StatusOK {
		return nil, fmt.Errorf("jclient: server error: %s", r.String())
	}
	return r, nil
}

// Ping verifies the server is reachable.
func (c *Client) Ping() error {
	var w jwire.Writer
	w.U8(jwire.OpPing)
	_, err := c.roundTrip(w.B)
	return err
}

// Use scopes the connection to a tenant namespace: every later request
// on this client reads and writes that tenant's journal. The empty
// string returns to the default journal.
func (c *Client) Use(namespace string) error {
	var w jwire.Writer
	w.U8(jwire.OpNamespace)
	jwire.PutNamespaceReq(&w, jwire.NamespaceReq{Namespace: namespace})
	_, err := c.roundTrip(w.B)
	return err
}

// ServerStats fetches the server's metrics snapshot (OpStats): per-op
// request counts and latency percentiles, WAL activity, recovery gauges,
// and recent spans — the same document fremontd serves at
// -metrics-addr/metrics.json.
func (c *Client) ServerStats() (*obs.Snapshot, error) {
	var w jwire.Writer
	w.U8(jwire.OpStats)
	r, err := c.roundTrip(w.B)
	if err != nil {
		return nil, err
	}
	data := r.Bytes()
	if r.Err != nil {
		return nil, r.Err
	}
	return obs.UnmarshalSnapshot(data)
}

// StoreInterface implements journal.Sink.
func (c *Client) StoreInterface(obs journal.IfaceObs) (journal.ID, bool, error) {
	var w jwire.Writer
	w.U8(jwire.OpStoreInterface)
	jwire.PutIfaceObs(&w, obs)
	r, err := c.roundTrip(w.B)
	if err != nil {
		return 0, false, err
	}
	id := r.ID()
	created := r.Bool()
	return id, created, r.Err
}

// StoreGateway implements journal.Sink.
func (c *Client) StoreGateway(obs journal.GatewayObs) (journal.ID, error) {
	var w jwire.Writer
	w.U8(jwire.OpStoreGateway)
	jwire.PutGatewayObs(&w, obs)
	r, err := c.roundTrip(w.B)
	if err != nil {
		return 0, err
	}
	id := r.ID()
	return id, r.Err
}

// StoreSubnet implements journal.Sink.
func (c *Client) StoreSubnet(obs journal.SubnetObs) (journal.ID, error) {
	var w jwire.Writer
	w.U8(jwire.OpStoreSubnet)
	jwire.PutSubnetObs(&w, obs)
	r, err := c.roundTrip(w.B)
	if err != nil {
		return 0, err
	}
	id := r.ID()
	return id, r.Err
}

// Interfaces implements journal.Sink. Indexed queries (by ID, IP, MAC,
// name, or range) take the server's indexed Get path in one round trip;
// unindexed queries — including time filters — are routed through the
// cursor-paged scan, so no request ships the whole journal in one frame.
func (c *Client) Interfaces(q journal.Query) ([]*journal.InterfaceRec, error) {
	if q.Indexed() {
		var w jwire.Writer
		w.U8(jwire.OpGetInterfaces)
		jwire.PutQuery(&w, q)
		r, err := c.roundTrip(w.B)
		if err != nil {
			return nil, err
		}
		n := int(r.U32())
		out := make([]*journal.InterfaceRec, 0, n)
		for i := 0; i < n && r.Err == nil; i++ {
			out = append(out, jwire.GetInterfaceRec(r))
		}
		return out, r.Err
	}
	var out []*journal.InterfaceRec
	var cursor journal.ID
	for {
		page, next, more, err := c.ScanInterfaces(cursor, c.PageSize, q)
		if err != nil {
			return nil, err
		}
		out = append(out, page...)
		if !more {
			return out, nil
		}
		cursor = next
	}
}

// Gateways implements journal.Sink, paging via the cursor scan (ascending
// ID order, matching the legacy Get response).
func (c *Client) Gateways() ([]*journal.GatewayRec, error) {
	var out []*journal.GatewayRec
	var cursor journal.ID
	for {
		page, next, more, err := c.ScanGateways(cursor, c.PageSize)
		if err != nil {
			return nil, err
		}
		out = append(out, page...)
		if !more {
			return out, nil
		}
		cursor = next
	}
}

// Subnets implements journal.Sink, paging via the cursor scan. Pages
// arrive in record-ID order; the result is re-sorted by subnet address to
// preserve the ordering the legacy Get response guaranteed.
func (c *Client) Subnets() ([]*journal.SubnetRec, error) {
	var out []*journal.SubnetRec
	var cursor journal.ID
	for {
		page, next, more, err := c.ScanSubnets(cursor, c.PageSize)
		if err != nil {
			return nil, err
		}
		out = append(out, page...)
		if !more {
			sort.Slice(out, func(a, b int) bool { return out[a].Subnet.Addr < out[b].Subnet.Addr })
			return out, nil
		}
		cursor = next
	}
}

// Delete implements journal.Sink.
func (c *Client) Delete(kind journal.RecordKind, id journal.ID) (bool, error) {
	var w jwire.Writer
	w.U8(jwire.OpDelete)
	w.U8(byte(kind))
	w.ID(id)
	r, err := c.roundTrip(w.B)
	if err != nil {
		return false, err
	}
	ok := r.Bool()
	return ok, r.Err
}
