// Package jclient is the Journal Server client library. It implements
// journal.Sink over a TCP connection, so Explorer Modules, the Discovery
// Manager, and the presentation/analysis programs can run anywhere on the
// network.
package jclient

import (
	"fmt"
	"net"
	"sync"
	"time"

	"fremont/internal/journal"
	"fremont/internal/jwire"
	"fremont/internal/obs"
)

// Client is a connection to a Journal Server. Methods are safe for
// concurrent use (requests are serialized on the connection).
type Client struct {
	mu   sync.Mutex
	conn net.Conn
}

var _ journal.Sink = (*Client)(nil)

// Dial connects to a Journal Server.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("jclient: dial %s: %w", addr, err)
	}
	return &Client{conn: conn}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one request and decodes the status byte of the reply.
func (c *Client) roundTrip(req []byte) (*jwire.Reader, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := jwire.WriteFrame(c.conn, req); err != nil {
		return nil, fmt.Errorf("jclient: send: %w", err)
	}
	resp, err := jwire.ReadFrame(c.conn)
	if err != nil {
		return nil, fmt.Errorf("jclient: recv: %w", err)
	}
	r := &jwire.Reader{B: resp}
	if status := r.U8(); status != jwire.StatusOK {
		return nil, fmt.Errorf("jclient: server error: %s", r.String())
	}
	return r, nil
}

// Ping verifies the server is reachable.
func (c *Client) Ping() error {
	var w jwire.Writer
	w.U8(jwire.OpPing)
	_, err := c.roundTrip(w.B)
	return err
}

// ServerStats fetches the server's metrics snapshot (OpStats): per-op
// request counts and latency percentiles, WAL activity, recovery gauges,
// and recent spans — the same document fremontd serves at
// -metrics-addr/metrics.json.
func (c *Client) ServerStats() (*obs.Snapshot, error) {
	var w jwire.Writer
	w.U8(jwire.OpStats)
	r, err := c.roundTrip(w.B)
	if err != nil {
		return nil, err
	}
	data := r.Bytes()
	if r.Err != nil {
		return nil, r.Err
	}
	return obs.UnmarshalSnapshot(data)
}

// StoreInterface implements journal.Sink.
func (c *Client) StoreInterface(obs journal.IfaceObs) (journal.ID, bool, error) {
	var w jwire.Writer
	w.U8(jwire.OpStoreInterface)
	jwire.PutIfaceObs(&w, obs)
	r, err := c.roundTrip(w.B)
	if err != nil {
		return 0, false, err
	}
	id := r.ID()
	created := r.Bool()
	return id, created, r.Err
}

// StoreGateway implements journal.Sink.
func (c *Client) StoreGateway(obs journal.GatewayObs) (journal.ID, error) {
	var w jwire.Writer
	w.U8(jwire.OpStoreGateway)
	jwire.PutGatewayObs(&w, obs)
	r, err := c.roundTrip(w.B)
	if err != nil {
		return 0, err
	}
	id := r.ID()
	return id, r.Err
}

// StoreSubnet implements journal.Sink.
func (c *Client) StoreSubnet(obs journal.SubnetObs) (journal.ID, error) {
	var w jwire.Writer
	w.U8(jwire.OpStoreSubnet)
	jwire.PutSubnetObs(&w, obs)
	r, err := c.roundTrip(w.B)
	if err != nil {
		return 0, err
	}
	id := r.ID()
	return id, r.Err
}

// Interfaces implements journal.Sink.
func (c *Client) Interfaces(q journal.Query) ([]*journal.InterfaceRec, error) {
	var w jwire.Writer
	w.U8(jwire.OpGetInterfaces)
	jwire.PutQuery(&w, q)
	r, err := c.roundTrip(w.B)
	if err != nil {
		return nil, err
	}
	n := int(r.U32())
	out := make([]*journal.InterfaceRec, 0, n)
	for i := 0; i < n && r.Err == nil; i++ {
		out = append(out, jwire.GetInterfaceRec(r))
	}
	return out, r.Err
}

// Gateways implements journal.Sink.
func (c *Client) Gateways() ([]*journal.GatewayRec, error) {
	var w jwire.Writer
	w.U8(jwire.OpGetGateways)
	r, err := c.roundTrip(w.B)
	if err != nil {
		return nil, err
	}
	n := int(r.U32())
	out := make([]*journal.GatewayRec, 0, n)
	for i := 0; i < n && r.Err == nil; i++ {
		out = append(out, jwire.GetGatewayRec(r))
	}
	return out, r.Err
}

// Subnets implements journal.Sink.
func (c *Client) Subnets() ([]*journal.SubnetRec, error) {
	var w jwire.Writer
	w.U8(jwire.OpGetSubnets)
	r, err := c.roundTrip(w.B)
	if err != nil {
		return nil, err
	}
	n := int(r.U32())
	out := make([]*journal.SubnetRec, 0, n)
	for i := 0; i < n && r.Err == nil; i++ {
		out = append(out, jwire.GetSubnetRec(r))
	}
	return out, r.Err
}

// Delete implements journal.Sink.
func (c *Client) Delete(kind journal.RecordKind, id journal.ID) (bool, error) {
	var w jwire.Writer
	w.U8(jwire.OpDelete)
	w.U8(byte(kind))
	w.ID(id)
	r, err := c.roundTrip(w.B)
	if err != nil {
		return false, err
	}
	ok := r.Bool()
	return ok, r.Err
}
