package jclient

import (
	"fmt"

	"fremont/internal/journal"
	"fremont/internal/jwire"
)

// Batch accumulates store and delete operations for a single OpBatch round
// trip — one frame, one reply, however many observations. The zero value is
// ready to use. A Batch is not safe for concurrent use; build one per
// goroutine.
type Batch struct {
	ops  []byte // opcode per sub-request, for response decoding
	subs [][]byte
}

func (b *Batch) add(op byte, enc func(w *jwire.Writer)) {
	var w jwire.Writer
	w.U8(op)
	if enc != nil {
		enc(&w)
	}
	b.ops = append(b.ops, op)
	b.subs = append(b.subs, w.B)
}

// StoreInterface queues an interface observation.
func (b *Batch) StoreInterface(obs journal.IfaceObs) {
	b.add(jwire.OpStoreInterface, func(w *jwire.Writer) { jwire.PutIfaceObs(w, obs) })
}

// StoreGateway queues a gateway observation.
func (b *Batch) StoreGateway(obs journal.GatewayObs) {
	b.add(jwire.OpStoreGateway, func(w *jwire.Writer) { jwire.PutGatewayObs(w, obs) })
}

// StoreSubnet queues a subnet observation.
func (b *Batch) StoreSubnet(obs journal.SubnetObs) {
	b.add(jwire.OpStoreSubnet, func(w *jwire.Writer) { jwire.PutSubnetObs(w, obs) })
}

// Delete queues a record deletion.
func (b *Batch) Delete(kind journal.RecordKind, id journal.ID) {
	b.add(jwire.OpDelete, func(w *jwire.Writer) { w.U8(byte(kind)); w.ID(id) })
}

// Len reports the number of queued operations.
func (b *Batch) Len() int { return len(b.subs) }

// op returns queued operation k as its opcode and encoded body (the
// sub-request without the leading opcode byte). Fabric batch routing
// decodes the body to find the shard key.
func (b *Batch) op(k int) (byte, []byte) { return b.ops[k], b.subs[k][1:] }

// addRaw queues an already-encoded operation body under op.
func (b *Batch) addRaw(op byte, body []byte) {
	sub := make([]byte, 0, 1+len(body))
	sub = append(sub, op)
	sub = append(sub, body...)
	b.ops = append(b.ops, op)
	b.subs = append(b.subs, sub)
}

// Reset empties the batch for reuse.
func (b *Batch) Reset() { b.ops, b.subs = b.ops[:0], b.subs[:0] }

// BatchResult is one sub-request's outcome. Sub-requests are independent on
// the server: a failed one leaves Err set while its neighbors still apply.
type BatchResult struct {
	ID      journal.ID // record ID for store operations
	Created bool       // StoreInterface: a new record was created
	Deleted bool       // Delete: the record existed and was removed
	Err     error      // nil if this sub-request succeeded
}

// StoreBatch executes every queued operation in one round trip and returns
// one result per operation, in order. The returned error covers transport
// and framing failures only; per-operation failures land in the matching
// BatchResult. Batches over jwire.MaxBatch operations are rejected — use
// Buffered for unbounded streams.
func (c *Client) StoreBatch(b *Batch) ([]BatchResult, error) {
	if b.Len() == 0 {
		return nil, nil
	}
	var w jwire.Writer
	w.U8(jwire.OpBatch)
	if err := jwire.PutBatch(&w, b.subs); err != nil {
		return nil, err
	}
	r, err := c.roundTrip(w.B)
	if err != nil {
		return nil, err
	}
	n := int(r.U32())
	if r.Err != nil {
		return nil, r.Err
	}
	if n != b.Len() {
		return nil, fmt.Errorf("jclient: batch reply has %d results, want %d", n, b.Len())
	}
	results := make([]BatchResult, n)
	for i := range results {
		sub := r.Bytes()
		if r.Err != nil {
			return nil, r.Err
		}
		sr := &jwire.Reader{B: sub}
		if status := sr.U8(); status != jwire.StatusOK {
			results[i].Err = fmt.Errorf("jclient: batch op %d: %s", i, sr.String())
			continue
		}
		switch b.ops[i] {
		case jwire.OpStoreInterface:
			results[i].ID = sr.ID()
			results[i].Created = sr.Bool()
		case jwire.OpStoreGateway, jwire.OpStoreSubnet:
			results[i].ID = sr.ID()
		case jwire.OpDelete:
			results[i].Deleted = sr.Bool()
		}
		if sr.Err != nil {
			results[i].Err = sr.Err
		}
	}
	return results, nil
}
