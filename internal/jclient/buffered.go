package jclient

import (
	"sync"

	"fremont/internal/journal"
	"fremont/internal/jwire"
)

// DefaultAutoFlush is the Buffered sink's default flush threshold.
const DefaultAutoFlush = 64

// Conn is the operation surface shared by a single Client and a Pool:
// the journal.Sink methods, cursor-paged reads, batch execution, and a
// health check. Buffered batches over either — a Pool-backed Buffered
// flushes each batch on whichever pooled connection is free.
type Conn interface {
	journal.Sink
	journal.Scanner
	journal.Changer
	StoreBatch(b *Batch) ([]BatchResult, error)
	Ping() error
}

var (
	_ Conn = (*Client)(nil)
	_ Conn = (*Pool)(nil)
)

// Buffered wraps a Conn in an auto-flushing, batching journal.Sink.
// Store and delete calls queue into a Batch that is sent in one round trip
// when the threshold is reached; queries flush first, so a reader always
// observes every store issued before it. This amortizes the per-operation
// TCP round trip for write-heavy producers (the explorer→journal path and
// replication).
//
// Because observations are deferred, the store methods return a zero record
// ID and created=false; every current producer discards those values. An
// error from the flush that a store triggers is returned from that store.
// Call Flush to push out a final partial batch.
type Buffered struct {
	mu    sync.Mutex
	c     Conn
	batch Batch
	max   int
}

var (
	_ journal.Sink    = (*Buffered)(nil)
	_ journal.Scanner = (*Buffered)(nil)
	_ journal.Changer = (*Buffered)(nil)
)

// NewBuffered returns an auto-flushing batching sink over conn, flushing
// every max operations (DefaultAutoFlush if max <= 0, capped at
// jwire.MaxBatch).
func NewBuffered(conn Conn, max int) *Buffered {
	if max <= 0 {
		max = DefaultAutoFlush
	}
	if max > jwire.MaxBatch {
		max = jwire.MaxBatch
	}
	return &Buffered{c: conn, max: max}
}

// Buffered returns an auto-flushing batching sink over c.
func (c *Client) Buffered(max int) *Buffered { return NewBuffered(c, max) }

// Buffered returns an auto-flushing batching sink over the pool.
func (p *Pool) Buffered(max int) *Buffered { return NewBuffered(p, max) }

// Flush sends any queued operations and returns the first error among the
// transport and the individual operations.
func (b *Buffered) Flush() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.flushLocked()
}

// Pending reports the number of queued, unflushed operations.
func (b *Buffered) Pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.batch.Len()
}

func (b *Buffered) flushLocked() error {
	if b.batch.Len() == 0 {
		return nil
	}
	results, err := b.c.StoreBatch(&b.batch)
	b.batch.Reset()
	if err != nil {
		return err
	}
	for _, res := range results {
		if res.Err != nil {
			return res.Err
		}
	}
	return nil
}

func (b *Buffered) maybeFlushLocked() error {
	if b.batch.Len() < b.max {
		return nil
	}
	return b.flushLocked()
}

// StoreInterface implements journal.Sink; the observation is queued and the
// returned ID is always zero.
func (b *Buffered) StoreInterface(obs journal.IfaceObs) (journal.ID, bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.batch.StoreInterface(obs)
	return 0, false, b.maybeFlushLocked()
}

// StoreGateway implements journal.Sink; the observation is queued and the
// returned ID is always zero.
func (b *Buffered) StoreGateway(obs journal.GatewayObs) (journal.ID, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.batch.StoreGateway(obs)
	return 0, b.maybeFlushLocked()
}

// StoreSubnet implements journal.Sink; the observation is queued and the
// returned ID is always zero.
func (b *Buffered) StoreSubnet(obs journal.SubnetObs) (journal.ID, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.batch.StoreSubnet(obs)
	return 0, b.maybeFlushLocked()
}

// Delete implements journal.Sink. Pending stores are flushed first so the
// delete sees their effects, then the delete runs immediately to return a
// real result.
func (b *Buffered) Delete(kind journal.RecordKind, id journal.ID) (bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.flushLocked(); err != nil {
		return false, err
	}
	return b.c.Delete(kind, id)
}

// Interfaces implements journal.Sink, flushing pending stores first.
func (b *Buffered) Interfaces(q journal.Query) ([]*journal.InterfaceRec, error) {
	if err := b.Flush(); err != nil {
		return nil, err
	}
	return b.c.Interfaces(q)
}

// Gateways implements journal.Sink, flushing pending stores first.
func (b *Buffered) Gateways() ([]*journal.GatewayRec, error) {
	if err := b.Flush(); err != nil {
		return nil, err
	}
	return b.c.Gateways()
}

// Subnets implements journal.Sink, flushing pending stores first.
func (b *Buffered) Subnets() ([]*journal.SubnetRec, error) {
	if err := b.Flush(); err != nil {
		return nil, err
	}
	return b.c.Subnets()
}

// ScanInterfaces implements journal.Scanner, flushing pending stores
// first so the page reflects every store issued before it.
func (b *Buffered) ScanInterfaces(cursor journal.ID, limit int, q journal.Query) ([]*journal.InterfaceRec, journal.ID, bool, error) {
	if err := b.Flush(); err != nil {
		return nil, 0, false, err
	}
	return b.c.ScanInterfaces(cursor, limit, q)
}

// ScanGateways implements journal.Scanner, flushing pending stores first.
func (b *Buffered) ScanGateways(cursor journal.ID, limit int) ([]*journal.GatewayRec, journal.ID, bool, error) {
	if err := b.Flush(); err != nil {
		return nil, 0, false, err
	}
	return b.c.ScanGateways(cursor, limit)
}

// ScanSubnets implements journal.Scanner, flushing pending stores first.
func (b *Buffered) ScanSubnets(cursor journal.ID, limit int) ([]*journal.SubnetRec, journal.ID, bool, error) {
	if err := b.Flush(); err != nil {
		return nil, 0, false, err
	}
	return b.c.ScanSubnets(cursor, limit)
}

// InterfaceChanges implements journal.Changer, flushing pending stores
// first.
func (b *Buffered) InterfaceChanges(after uint64, limit int) ([]*journal.InterfaceRec, uint64, bool, error) {
	if err := b.Flush(); err != nil {
		return nil, 0, false, err
	}
	return b.c.InterfaceChanges(after, limit)
}

// GatewayChanges implements journal.Changer, flushing pending stores
// first.
func (b *Buffered) GatewayChanges(after uint64, limit int) ([]*journal.GatewayRec, uint64, bool, error) {
	if err := b.Flush(); err != nil {
		return nil, 0, false, err
	}
	return b.c.GatewayChanges(after, limit)
}

// SubnetChanges implements journal.Changer, flushing pending stores
// first.
func (b *Buffered) SubnetChanges(after uint64, limit int) ([]*journal.SubnetRec, uint64, bool, error) {
	if err := b.Flush(); err != nil {
		return nil, 0, false, err
	}
	return b.c.SubnetChanges(after, limit)
}
