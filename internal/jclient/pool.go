package jclient

import (
	"errors"
	"fmt"
	"time"

	"fremont/internal/journal"
	"fremont/internal/obs"
)

// ErrPoolClosed is returned for operations on a closed Pool.
var ErrPoolClosed = errors.New("jclient: pool closed")

// Pool is a small fixed-size pool of connections to one Journal Server,
// implementing journal.Sink. Each call borrows a connection for its round
// trip, so up to size requests are in flight at once — which is what lets
// the server's parallel read path actually run in parallel for a single
// multi-goroutine analysis program. Callers beyond the pool size block
// until a connection frees up. Connections are dialed lazily and dropped
// on error, to be re-dialed by a later call.
type Pool struct {
	addr string
	opt  options // connection options applied to every (re)dial
	// conns holds one slot per pool member; nil means the slot has no live
	// connection yet (or its last one was dropped after an error).
	conns chan *Client

	// OnDial, when set before the pool is used, runs on every freshly
	// dialed connection before it serves a request — the hook the fabric
	// uses to scope pooled connections to a tenant namespace. A hook
	// error discards the connection and fails the checkout.
	OnDial func(*Client) error

	// Checkout instrumentation: how long callers wait for a free slot
	// (the saturation signal — a fat p99 here means the pool is too
	// small for the offered concurrency), plus dial and discard counts.
	waits    *obs.Histogram
	dials    *obs.Counter
	discards *obs.Counter
}

var (
	_ journal.Sink    = (*Pool)(nil)
	_ journal.Scanner = (*Pool)(nil)
	_ journal.Changer = (*Pool)(nil)
)

// DialPool creates a pool of up to size connections to addr, dialing one
// eagerly so an unreachable server fails fast. Pool metrics record into
// the process-wide obs.Default() registry.
func DialPool(addr string, size int, opts ...Option) (*Pool, error) {
	p := NewPool(addr, size, opts...)
	c, err := p.get()
	if err != nil {
		return nil, err
	}
	p.put(c, nil)
	return p, nil
}

// NewPool creates a pool of up to size connections to addr without
// dialing any of them: every connection is established lazily by the
// first call that needs it. The fabric builds its per-shard pools this
// way so a shard that is down at construction time degrades reads
// instead of failing the whole fabric.
func NewPool(addr string, size int, opts ...Option) *Pool {
	if size <= 0 {
		size = 4
	}
	reg := obs.Default()
	p := &Pool{
		addr:     addr,
		opt:      resolveOptions(opts),
		conns:    make(chan *Client, size),
		waits:    reg.Histogram("jclient_pool_wait_seconds", nil),
		dials:    reg.Counter("jclient_pool_dials_total"),
		discards: reg.Counter("jclient_pool_discards_total"),
	}
	for i := 0; i < size; i++ {
		p.conns <- nil
	}
	return p
}

// Addr reports the server address the pool dials.
func (p *Pool) Addr() string { return p.addr }

// Size reports the pool's connection capacity.
func (p *Pool) Size() int { return cap(p.conns) }

// Close closes every pooled connection. In-flight borrowers finish their
// round trip; their connections are closed on return.
func (p *Pool) Close() error {
	var first error
	close(p.conns)
	for c := range p.conns {
		if c != nil {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// get borrows a connection slot, dialing if the slot is empty. The time
// spent waiting for a slot is recorded in jclient_pool_wait_seconds.
func (p *Pool) get() (*Client, error) {
	start := time.Now()
	c, ok := <-p.conns
	p.waits.ObserveSince(start)
	if !ok {
		return nil, ErrPoolClosed
	}
	if c != nil {
		return c, nil
	}
	c, err := p.dial()
	if err != nil {
		// Return the empty slot so the pool does not shrink.
		p.putSlot(nil)
		return nil, err
	}
	if p.OnDial != nil {
		if err := p.OnDial(c); err != nil {
			c.Close()
			p.discards.Inc()
			p.putSlot(nil)
			return nil, err
		}
	}
	p.dials.Inc()
	return c, nil
}

// dial opens one pool-member connection with the pool's options.
func (p *Pool) dial() (*Client, error) {
	conn, err := p.opt.dial(p.addr)
	if err != nil {
		return nil, fmt.Errorf("jclient: dial %s: %w", p.addr, err)
	}
	return &Client{conn: conn, opt: p.opt}, nil
}

// put returns a borrowed connection; a connection that just failed is
// closed and its slot emptied for a fresh dial.
func (p *Pool) put(c *Client, err error) {
	if err != nil {
		c.Close()
		c = nil
		p.discards.Inc()
	}
	p.putSlot(c)
}

func (p *Pool) putSlot(c *Client) {
	defer func() {
		// The pool was closed while this connection was borrowed.
		if recover() != nil && c != nil {
			c.Close()
		}
	}()
	p.conns <- c
}

// Do checks out a connection, runs fn on it, and returns it to the pool.
// If fn returns an error the connection is discarded (closed, its slot
// emptied for a fresh dial) — a failed round trip leaves the stream in an
// unknown state, so it is never reused. Do is the supported way to run a
// Client-level operation (a batch, a raw query sequence) on pooled
// connections without hand-pairing checkout and return.
func (p *Pool) Do(fn func(c *Client) error) error {
	c, err := p.get()
	if err != nil {
		return err
	}
	err = fn(c)
	p.put(c, err)
	return err
}

// do is the internal spelling of Do, kept so the Sink methods read
// uniformly.
func (p *Pool) do(fn func(c *Client) error) error { return p.Do(fn) }

// Ping implements a health check on one pooled connection.
func (p *Pool) Ping() error {
	return p.do(func(c *Client) error { return c.Ping() })
}

// StoreInterface implements journal.Sink.
func (p *Pool) StoreInterface(obs journal.IfaceObs) (id journal.ID, created bool, err error) {
	err = p.do(func(c *Client) error {
		var e error
		id, created, e = c.StoreInterface(obs)
		return e
	})
	return id, created, err
}

// StoreGateway implements journal.Sink.
func (p *Pool) StoreGateway(obs journal.GatewayObs) (id journal.ID, err error) {
	err = p.do(func(c *Client) error {
		var e error
		id, e = c.StoreGateway(obs)
		return e
	})
	return id, err
}

// StoreSubnet implements journal.Sink.
func (p *Pool) StoreSubnet(obs journal.SubnetObs) (id journal.ID, err error) {
	err = p.do(func(c *Client) error {
		var e error
		id, e = c.StoreSubnet(obs)
		return e
	})
	return id, err
}

// Interfaces implements journal.Sink.
func (p *Pool) Interfaces(q journal.Query) (recs []*journal.InterfaceRec, err error) {
	err = p.do(func(c *Client) error {
		var e error
		recs, e = c.Interfaces(q)
		return e
	})
	return recs, err
}

// Gateways implements journal.Sink.
func (p *Pool) Gateways() (recs []*journal.GatewayRec, err error) {
	err = p.do(func(c *Client) error {
		var e error
		recs, e = c.Gateways()
		return e
	})
	return recs, err
}

// Subnets implements journal.Sink.
func (p *Pool) Subnets() (recs []*journal.SubnetRec, err error) {
	err = p.do(func(c *Client) error {
		var e error
		recs, e = c.Subnets()
		return e
	})
	return recs, err
}

// Delete implements journal.Sink.
func (p *Pool) Delete(kind journal.RecordKind, id journal.ID) (ok bool, err error) {
	err = p.do(func(c *Client) error {
		var e error
		ok, e = c.Delete(kind, id)
		return e
	})
	return ok, err
}

// ScanInterfaces fetches one page on a pooled connection, implementing
// journal.Scanner. Cursors carry no server-side state, so consecutive
// pages may ride different connections.
func (p *Pool) ScanInterfaces(cursor journal.ID, limit int, q journal.Query) (recs []*journal.InterfaceRec, next journal.ID, more bool, err error) {
	err = p.do(func(c *Client) error {
		var e error
		recs, next, more, e = c.ScanInterfaces(cursor, limit, q)
		return e
	})
	return recs, next, more, err
}

// ScanGateways implements journal.Scanner on a pooled connection.
func (p *Pool) ScanGateways(cursor journal.ID, limit int) (recs []*journal.GatewayRec, next journal.ID, more bool, err error) {
	err = p.do(func(c *Client) error {
		var e error
		recs, next, more, e = c.ScanGateways(cursor, limit)
		return e
	})
	return recs, next, more, err
}

// ScanSubnets implements journal.Scanner on a pooled connection.
func (p *Pool) ScanSubnets(cursor journal.ID, limit int) (recs []*journal.SubnetRec, next journal.ID, more bool, err error) {
	err = p.do(func(c *Client) error {
		var e error
		recs, next, more, e = c.ScanSubnets(cursor, limit)
		return e
	})
	return recs, next, more, err
}

// InterfaceChanges implements journal.Changer on a pooled connection.
func (p *Pool) InterfaceChanges(after uint64, limit int) (recs []*journal.InterfaceRec, next uint64, more bool, err error) {
	err = p.do(func(c *Client) error {
		var e error
		recs, next, more, e = c.InterfaceChanges(after, limit)
		return e
	})
	return recs, next, more, err
}

// GatewayChanges implements journal.Changer on a pooled connection.
func (p *Pool) GatewayChanges(after uint64, limit int) (recs []*journal.GatewayRec, next uint64, more bool, err error) {
	err = p.do(func(c *Client) error {
		var e error
		recs, next, more, e = c.GatewayChanges(after, limit)
		return e
	})
	return recs, next, more, err
}

// SubnetChanges implements journal.Changer on a pooled connection.
func (p *Pool) SubnetChanges(after uint64, limit int) (recs []*journal.SubnetRec, next uint64, more bool, err error) {
	err = p.do(func(c *Client) error {
		var e error
		recs, next, more, e = c.SubnetChanges(after, limit)
		return e
	})
	return recs, next, more, err
}

// StoreBatch executes a batch on one pooled connection.
func (p *Pool) StoreBatch(b *Batch) (results []BatchResult, err error) {
	err = p.do(func(c *Client) error {
		var e error
		results, e = c.StoreBatch(b)
		return e
	})
	return results, err
}

// ServerStats fetches the server's metrics snapshot on one pooled
// connection.
func (p *Pool) ServerStats() (snap *obs.Snapshot, err error) {
	err = p.do(func(c *Client) error {
		var e error
		snap, e = c.ServerStats()
		return e
	})
	return snap, err
}
