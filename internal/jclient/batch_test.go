package jclient

import (
	"sync"
	"testing"
	"time"

	"fremont/internal/journal"
	"fremont/internal/jserver"
	"fremont/internal/jwire"
	"fremont/internal/netsim/pkt"
)

var bt0 = time.Date(1993, 1, 25, 8, 0, 0, 0, time.UTC)

func startRealServer(t *testing.T) (*jserver.Server, *Client) {
	t.Helper()
	s := jserver.New(nil)
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return s, c
}

func TestBatchTooLargeRejectedClientSide(t *testing.T) {
	_, c := startRealServer(t)
	var b Batch
	for i := 0; i <= jwire.MaxBatch; i++ {
		b.StoreInterface(journal.IfaceObs{IP: pkt.IP(i), Source: journal.SrcICMP, At: bt0})
	}
	if _, err := c.StoreBatch(&b); err != jwire.ErrBatchTooLarge {
		t.Fatalf("err = %v, want ErrBatchTooLarge", err)
	}
}

func TestBufferedAutoFlush(t *testing.T) {
	s, c := startRealServer(t)
	b := c.Buffered(4)
	for i := 1; i <= 3; i++ {
		if _, _, err := b.StoreInterface(journal.IfaceObs{
			IP: pkt.IPv4(10, 0, 0, byte(i)), Source: journal.SrcICMP, At: bt0,
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Below the threshold: nothing has hit the server yet.
	if n := s.Journal().NumInterfaces(); n != 0 {
		t.Fatalf("server has %d interfaces before threshold, want 0", n)
	}
	if b.Pending() != 3 {
		t.Fatalf("Pending = %d, want 3", b.Pending())
	}
	// The fourth store crosses the threshold and flushes all four.
	if _, _, err := b.StoreInterface(journal.IfaceObs{
		IP: pkt.IPv4(10, 0, 0, 4), Source: journal.SrcICMP, At: bt0,
	}); err != nil {
		t.Fatal(err)
	}
	if n := s.Journal().NumInterfaces(); n != 4 {
		t.Fatalf("server has %d interfaces after threshold, want 4", n)
	}
	if b.Pending() != 0 {
		t.Fatalf("Pending = %d after auto-flush, want 0", b.Pending())
	}
}

func TestBufferedReadsFlushFirst(t *testing.T) {
	_, c := startRealServer(t)
	b := c.Buffered(100)
	ip := pkt.IPv4(10, 1, 0, 1)
	if _, _, err := b.StoreInterface(journal.IfaceObs{IP: ip, Source: journal.SrcICMP, At: bt0}); err != nil {
		t.Fatal(err)
	}
	recs, err := b.Interfaces(journal.Query{ByIP: ip, HasIP: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("query after buffered store found %d records, want 1", len(recs))
	}
	// Deletes also see pending stores.
	if _, _, err := b.StoreInterface(journal.IfaceObs{IP: pkt.IPv4(10, 1, 0, 2), Source: journal.SrcICMP, At: bt0}); err != nil {
		t.Fatal(err)
	}
	ok, err := b.Delete(journal.KindInterface, recs[0].ID)
	if err != nil || !ok {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestBufferedExplicitFlush(t *testing.T) {
	s, c := startRealServer(t)
	b := c.Buffered(0) // default threshold
	for i := 0; i < 7; i++ {
		if _, _, err := b.StoreInterface(journal.IfaceObs{
			IP: pkt.IPv4(10, 2, 0, byte(i)), Source: journal.SrcICMP, At: bt0,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := s.Journal().NumInterfaces(); n != 7 {
		t.Fatalf("server has %d interfaces after Flush, want 7", n)
	}
	if err := b.Flush(); err != nil { // flushing an empty buffer is a no-op
		t.Fatal(err)
	}
}

func TestPoolConcurrentUse(t *testing.T) {
	s, _ := startRealServer(t)
	p, err := DialPool(s.Addr(), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.Ping(); err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const each = 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				ip := pkt.IPv4(10, 3, byte(w), byte(i))
				if _, _, err := p.StoreInterface(journal.IfaceObs{
					IP: ip, Source: journal.SrcICMP, At: bt0,
				}); err != nil {
					t.Error(err)
					return
				}
				if _, err := p.Interfaces(journal.Query{ByIP: ip, HasIP: true}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if n := s.Journal().NumInterfaces(); n != workers*each {
		t.Fatalf("journal has %d interfaces, want %d", n, workers*each)
	}
}

func TestPoolClosed(t *testing.T) {
	s, _ := startRealServer(t)
	p, err := DialPool(s.Addr(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Ping(); err != ErrPoolClosed {
		t.Fatalf("Ping on closed pool = %v, want ErrPoolClosed", err)
	}
}
