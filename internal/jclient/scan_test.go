package jclient

import (
	"testing"
	"time"

	"fremont/internal/journal"
	"fremont/internal/netsim/pkt"
)

func seedServer(t *testing.T, s interface {
	Journal() *journal.Journal
}, n int) {
	t.Helper()
	at := time.Date(1993, 1, 25, 8, 0, 0, 0, time.UTC)
	j := s.Journal()
	for i := 0; i < n; i++ {
		j.StoreInterface(journal.IfaceObs{
			IP:     pkt.IPv4(10, 0, byte(i/250), byte(i%250+1)),
			Source: journal.SrcICMP,
			At:     at.Add(time.Duration(i) * time.Second),
		})
	}
}

func TestScanOverTCP(t *testing.T) {
	s, c := startRealServer(t)
	seedServer(t, s, 40)

	var got int
	var cursor journal.ID
	for {
		recs, next, more, err := c.ScanInterfaces(cursor, 16, journal.Query{})
		if err != nil {
			t.Fatal(err)
		}
		got += len(recs)
		if more && len(recs) == 0 && next <= cursor {
			t.Fatal("empty page without cursor progress")
		}
		cursor = next
		if !more {
			break
		}
	}
	if got != 40 {
		t.Fatalf("paged %d records over the wire, want 40", got)
	}
}

func TestLegacyQueriesRouteThroughPaging(t *testing.T) {
	// The legacy full-set Sink methods still answer completely — they just
	// assemble the result from bounded pages under the covers.
	s, c := startRealServer(t)
	seedServer(t, s, 25)
	c.PageSize = 7 // force multiple round trips

	recs, err := c.Interfaces(journal.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 25 {
		t.Fatalf("Interfaces returned %d records, want 25", len(recs))
	}

	// An indexed lookup bypasses paging and still answers.
	one, err := c.Interfaces(journal.Query{HasIP: true, ByIP: pkt.IPv4(10, 0, 0, 5)})
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 {
		t.Fatalf("indexed query returned %d records", len(one))
	}
}

func TestIterOverTCP(t *testing.T) {
	s, c := startRealServer(t)
	seedServer(t, s, 33)

	it := IterInterfaces(c, journal.Query{}, 10)
	var n int
	var last journal.ID
	for it.Next() {
		rec := it.Rec()
		if rec.ID <= last {
			t.Fatalf("iterator out of order: %d after %d", rec.ID, last)
		}
		last = rec.ID
		n++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 33 {
		t.Fatalf("iterator yielded %d records, want 33", n)
	}
}

func TestChangesOverTCP(t *testing.T) {
	s, c := startRealServer(t)
	seedServer(t, s, 12)

	recs, next, more, err := c.InterfaceChanges(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 12 || more {
		t.Fatalf("changes over TCP: %d records, more=%v", len(recs), more)
	}
	// Unchanged journal: the cursor answers empty.
	recs, next2, more, err := c.InterfaceChanges(next, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || more || next2 != next {
		t.Fatalf("unchanged: %d records, more=%v, cursor %d->%d", len(recs), more, next, next2)
	}
}
