// Cursor-paged reads over the wire: the client-side half of OpScan and
// OpChanges, plus a generic iterator that walks any journal.Scanner one
// page at a time — bounded memory on both ends of the connection no
// matter how large the journal grows.
package jclient

import (
	"fremont/internal/journal"
	"fremont/internal/jwire"
)

// ScanInterfaces fetches one page of interface records with ID > cursor
// matching q (OpScan). It implements journal.Scanner: the page arrives in
// ascending ID order with the cursor for the next page and whether more
// records may remain. limit <= 0 asks for the server default.
func (c *Client) ScanInterfaces(cursor journal.ID, limit int, q journal.Query) ([]*journal.InterfaceRec, journal.ID, bool, error) {
	var w jwire.Writer
	w.U8(jwire.OpScan)
	jwire.PutScanReq(&w, jwire.ScanReq{Kind: journal.KindInterface, Cursor: cursor, Limit: limit, Filter: q})
	r, err := c.roundTrip(w.B)
	if err != nil {
		return nil, 0, false, err
	}
	n := int(r.U32())
	out := make([]*journal.InterfaceRec, 0, n)
	for i := 0; i < n && r.Err == nil; i++ {
		out = append(out, jwire.GetInterfaceRec(r))
	}
	next := r.ID()
	more := r.Bool()
	return out, next, more, r.Err
}

// ScanGateways fetches one page of gateway records: see ScanInterfaces.
func (c *Client) ScanGateways(cursor journal.ID, limit int) ([]*journal.GatewayRec, journal.ID, bool, error) {
	var w jwire.Writer
	w.U8(jwire.OpScan)
	jwire.PutScanReq(&w, jwire.ScanReq{Kind: journal.KindGateway, Cursor: cursor, Limit: limit})
	r, err := c.roundTrip(w.B)
	if err != nil {
		return nil, 0, false, err
	}
	n := int(r.U32())
	out := make([]*journal.GatewayRec, 0, n)
	for i := 0; i < n && r.Err == nil; i++ {
		out = append(out, jwire.GetGatewayRec(r))
	}
	next := r.ID()
	more := r.Bool()
	return out, next, more, r.Err
}

// ScanSubnets fetches one page of subnet records: see ScanInterfaces.
func (c *Client) ScanSubnets(cursor journal.ID, limit int) ([]*journal.SubnetRec, journal.ID, bool, error) {
	var w jwire.Writer
	w.U8(jwire.OpScan)
	jwire.PutScanReq(&w, jwire.ScanReq{Kind: journal.KindSubnet, Cursor: cursor, Limit: limit})
	r, err := c.roundTrip(w.B)
	if err != nil {
		return nil, 0, false, err
	}
	n := int(r.U32())
	out := make([]*journal.SubnetRec, 0, n)
	for i := 0; i < n && r.Err == nil; i++ {
		out = append(out, jwire.GetSubnetRec(r))
	}
	next := r.ID()
	more := r.Bool()
	return out, next, more, r.Err
}

// InterfaceChanges fetches interface records mutated after modification
// sequence number `after` (OpChanges), oldest change first. It implements
// journal.Changer; an unchanged journal answers with an empty page.
func (c *Client) InterfaceChanges(after uint64, limit int) ([]*journal.InterfaceRec, uint64, bool, error) {
	var w jwire.Writer
	w.U8(jwire.OpChanges)
	jwire.PutChangesReq(&w, jwire.ChangesReq{Kind: journal.KindInterface, After: after, Limit: limit})
	r, err := c.roundTrip(w.B)
	if err != nil {
		return nil, 0, false, err
	}
	n := int(r.U32())
	out := make([]*journal.InterfaceRec, 0, n)
	for i := 0; i < n && r.Err == nil; i++ {
		out = append(out, jwire.GetInterfaceRec(r))
	}
	next := r.U64()
	more := r.Bool()
	return out, next, more, r.Err
}

// GatewayChanges: see InterfaceChanges.
func (c *Client) GatewayChanges(after uint64, limit int) ([]*journal.GatewayRec, uint64, bool, error) {
	var w jwire.Writer
	w.U8(jwire.OpChanges)
	jwire.PutChangesReq(&w, jwire.ChangesReq{Kind: journal.KindGateway, After: after, Limit: limit})
	r, err := c.roundTrip(w.B)
	if err != nil {
		return nil, 0, false, err
	}
	n := int(r.U32())
	out := make([]*journal.GatewayRec, 0, n)
	for i := 0; i < n && r.Err == nil; i++ {
		out = append(out, jwire.GetGatewayRec(r))
	}
	next := r.U64()
	more := r.Bool()
	return out, next, more, r.Err
}

// SubnetChanges: see InterfaceChanges.
func (c *Client) SubnetChanges(after uint64, limit int) ([]*journal.SubnetRec, uint64, bool, error) {
	var w jwire.Writer
	w.U8(jwire.OpChanges)
	jwire.PutChangesReq(&w, jwire.ChangesReq{Kind: journal.KindSubnet, After: after, Limit: limit})
	r, err := c.roundTrip(w.B)
	if err != nil {
		return nil, 0, false, err
	}
	n := int(r.U32())
	out := make([]*journal.SubnetRec, 0, n)
	for i := 0; i < n && r.Err == nil; i++ {
		out = append(out, jwire.GetSubnetRec(r))
	}
	next := r.U64()
	more := r.Bool()
	return out, next, more, r.Err
}

// --- Iterator -------------------------------------------------------------

// Iter walks records one page at a time. Use it like bufio.Scanner:
//
//	it := jclient.IterInterfaces(c, journal.Query{}, 0)
//	for it.Next() {
//		rec := it.Rec()
//		...
//	}
//	if err := it.Err(); err != nil { ... }
//
// Only one page is resident at a time, so memory stays O(page) however
// large the journal is.
type Iter[T any] struct {
	fetch func(cursor journal.ID, limit int) ([]T, journal.ID, bool, error)
	limit int

	page   []T
	i      int
	cursor journal.ID
	more   bool
	begun  bool
	err    error
}

func newIter[T any](limit int, fetch func(journal.ID, int) ([]T, journal.ID, bool, error)) *Iter[T] {
	return &Iter[T]{fetch: fetch, limit: limit}
}

// Next advances to the next record, fetching the next page as needed.
// It returns false at the end of the scan or on error; check Err.
func (it *Iter[T]) Next() bool {
	if it.err != nil {
		return false
	}
	for it.i >= len(it.page) {
		if it.begun && !it.more {
			return false
		}
		page, next, more, err := it.fetch(it.cursor, it.limit)
		if err != nil {
			it.err = err
			return false
		}
		it.begun = true
		it.page, it.i = page, 0
		it.cursor, it.more = next, more
	}
	it.i++
	return true
}

// Rec returns the record Next advanced to.
func (it *Iter[T]) Rec() T { return it.page[it.i-1] }

// Err returns the first error the iteration hit, if any.
func (it *Iter[T]) Err() error { return it.err }

// IterInterfaces returns an iterator over s's interface records matching
// q, in ascending ID order, fetching pageSize records at a time (0 = the
// scanner's default). Works over any journal.Scanner: a Client, a Pool, a
// Buffered sink, or an in-process journal.Local.
func IterInterfaces(s journal.Scanner, q journal.Query, pageSize int) *Iter[*journal.InterfaceRec] {
	return newIter(pageSize, func(cursor journal.ID, limit int) ([]*journal.InterfaceRec, journal.ID, bool, error) {
		return s.ScanInterfaces(cursor, limit, q)
	})
}

// IterGateways returns an iterator over s's gateway records: see
// IterInterfaces.
func IterGateways(s journal.Scanner, pageSize int) *Iter[*journal.GatewayRec] {
	return newIter(pageSize, s.ScanGateways)
}

// IterSubnets returns an iterator over s's subnet records in ascending
// ID order: see IterInterfaces.
func IterSubnets(s journal.Scanner, pageSize int) *Iter[*journal.SubnetRec] {
	return newIter(pageSize, s.ScanSubnets)
}
