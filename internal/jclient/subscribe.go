// Push-based change streaming: the client half of OpSubscribe.
//
// A Subscription owns its own connection — after the subscribe
// handshake the wire is one-way, so it cannot share a Client's
// request/response conn. The subscription tracks the server's mod-seq
// cursor as records arrive; when the connection drops it redials and
// resumes from that cursor, which the server-side contract turns into
// an exactly-once stream: no gaps, no duplicates, across any number of
// reconnects.
package jclient

import (
	"fmt"
	"net"
	"sync"
	"time"

	"fremont/internal/journal"
	"fremont/internal/jwire"
)

// Change is one delivered subscription event. A record change sets
// Kind, Seq, and exactly one of Iface / Gateway / Subnet. A resync
// marker sets Resync with Seq holding the cursor the server restarted
// from: the subscriber fell behind, the server dropped its queued
// pushes, and deliveries that follow re-read the journal from Seq —
// still without gaps or duplicates, but coalesced (intermediate states
// of a twice-modified record are gone).
type Change struct {
	Kind    journal.RecordKind
	Seq     uint64
	Iface   *journal.InterfaceRec
	Gateway *journal.GatewayRec
	Subnet  *journal.SubnetRec
	Resync  bool
}

// SubscribeOptions configures a Subscription.
type SubscribeOptions struct {
	// Kinds is the jwire.SubKind* record-kind mask; 0 subscribes to all.
	Kinds byte
	// FromNow starts at the server's current sequence instead of After.
	FromNow bool
	// After is the resume cursor: only changes with ModSeq > After are
	// delivered. 0 replays the whole journal first.
	After uint64
	// NoResume fails the subscription on connection loss instead of
	// redialing from the cursor.
	NoResume bool
}

// Subscription is a live change stream. Consume Events until it
// closes, then check Err. Methods are safe for concurrent use.
type Subscription struct {
	addr string
	opts SubscribeOptions
	opt  options // transport options; auto-resume redials through these
	ch   chan Change
	quit chan struct{}
	done chan struct{}

	mu      sync.Mutex
	conn    net.Conn
	cursor  uint64
	resumes int
	closed  bool
	err     error
}

// Subscribe opens a change stream against a Journal Server. The
// returned Subscription is already registered: every change committed
// after its start cursor will be delivered. Connection options (a custom
// dialer, a connect timeout) apply to the initial dial and to every
// auto-resume redial.
func Subscribe(addr string, opts SubscribeOptions, copts ...Option) (*Subscription, error) {
	s := &Subscription{
		addr: addr,
		opts: opts,
		opt:  resolveOptions(copts),
		ch:   make(chan Change, 64),
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
	conn, start, err := s.dial(opts.FromNow, opts.After)
	if err != nil {
		return nil, err
	}
	s.conn = conn
	s.cursor = start
	go s.run(conn)
	return s, nil
}

// Subscribe opens a change stream against the server this client is
// connected to, on its own connection; the client remains usable for
// request/response traffic alongside it. The stream inherits the
// client's transport options, so a client on a custom dialer subscribes
// (and auto-resumes) through that same transport.
func (c *Client) Subscribe(opts SubscribeOptions) (*Subscription, error) {
	return Subscribe(c.conn.RemoteAddr().String(), opts, withResolved(c.opt))
}

// withResolved forwards an already-resolved options value.
func withResolved(o options) Option {
	return func(dst *options) { *dst = o }
}

// Events returns the delivery channel. It closes when the subscription
// ends: after Close, on a connection error with NoResume set, or on a
// protocol error.
func (s *Subscription) Events() <-chan Change { return s.ch }

// Cursor returns the last delivered mod-seq — the value to pass as
// After to resume this stream later (e.g. across a process restart).
func (s *Subscription) Cursor() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cursor
}

// Resumes reports how many times the subscription redialed after a
// lost connection.
func (s *Subscription) Resumes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.resumes
}

// Err returns the terminal error, nil if the stream ended by Close.
// Meaningful once Events is closed.
func (s *Subscription) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close ends the subscription and waits for the delivery channel to
// close. Always nil; the signature matches io.Closer.
func (s *Subscription) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.done
		return nil
	}
	s.closed = true
	conn := s.conn
	s.mu.Unlock()
	close(s.quit)
	if conn != nil {
		conn.Close()
	}
	<-s.done
	return nil
}

func (s *Subscription) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// dial opens a connection through the subscription's transport options
// (the same path the owning Client used, when created via
// Client.Subscribe), performs the subscribe handshake, and returns the
// server's starting cursor.
func (s *Subscription) dial(fromNow bool, after uint64) (net.Conn, uint64, error) {
	conn, err := s.opt.dial(s.addr)
	if err != nil {
		return nil, 0, fmt.Errorf("jclient: dial %s: %w", s.addr, err)
	}
	var w jwire.Writer
	w.U8(jwire.OpSubscribe)
	jwire.PutSubscribeReq(&w, jwire.SubscribeReq{
		Kinds: s.opts.Kinds, FromNow: fromNow, After: after,
	})
	if err := jwire.WriteFrame(conn, w.B); err != nil {
		conn.Close()
		return nil, 0, fmt.Errorf("jclient: subscribe: %w", err)
	}
	resp, err := jwire.ReadFrame(conn)
	if err != nil {
		conn.Close()
		return nil, 0, fmt.Errorf("jclient: subscribe: %w", err)
	}
	r := &jwire.Reader{B: resp}
	if status := r.U8(); status != jwire.StatusOK {
		msg := r.String()
		conn.Close()
		return nil, 0, fmt.Errorf("jclient: subscribe rejected: %s", msg)
	}
	start := r.U64()
	r.U64() // current server seq; the event stream carries the rest
	if r.Err != nil {
		conn.Close()
		return nil, 0, fmt.Errorf("jclient: subscribe ack: %w", r.Err)
	}
	return conn, start, nil
}

// run pumps frames into the delivery channel, redialing from the
// cursor on connection loss until Close (or the first error when
// NoResume is set).
func (s *Subscription) run(conn net.Conn) {
	defer close(s.ch)
	defer close(s.done)
	for {
		err, fatal := s.stream(conn)
		conn.Close()
		if s.isClosed() {
			return
		}
		if fatal || s.opts.NoResume {
			s.fail(err)
			return
		}
		backoff := 100 * time.Millisecond
		for {
			select {
			case <-time.After(backoff):
			case <-s.quit:
				return
			}
			nc, _, derr := s.dial(false, s.Cursor())
			if derr == nil {
				conn = nc
				break
			}
			if backoff *= 2; backoff > 5*time.Second {
				backoff = 5 * time.Second
			}
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conn = conn
		s.resumes++
		s.mu.Unlock()
	}
}

// stream decodes pushed frames off one connection until it fails. A
// fatal error (a frame that cannot be decoded) ends the subscription;
// a plain connection error is a candidate for cursor-resume.
func (s *Subscription) stream(conn net.Conn) (err error, fatal bool) {
	for {
		frame, err := jwire.ReadFrame(conn)
		if err != nil {
			return err, false
		}
		r := &jwire.Reader{B: frame}
		ev := jwire.GetSubEvent(r)
		if r.Err != nil {
			return fmt.Errorf("jclient: push frame: %w", r.Err), true
		}
		var ch Change
		switch ev.Type {
		case jwire.SubEventResync:
			ch = Change{Seq: ev.Cursor, Resync: true}
		default:
			ch = Change{Kind: ev.Kind, Seq: ev.Seq,
				Iface: ev.Iface, Gateway: ev.Gateway, Subnet: ev.Subnet}
		}
		select {
		case s.ch <- ch:
		case <-s.quit:
			return net.ErrClosed, false
		}
		if !ch.Resync {
			s.mu.Lock()
			if ch.Seq > s.cursor {
				s.cursor = ch.Seq
			}
			s.mu.Unlock()
		}
	}
}

func (s *Subscription) fail(err error) {
	s.mu.Lock()
	if s.err == nil && !s.closed {
		s.err = err
	}
	s.mu.Unlock()
}
