// Pipelined client: issue many requests on one connection without
// waiting for each response. The server answers in request order, so a
// background reader matches responses to futures FIFO. Pipelining is
// what lets a single connection's stores land in one WAL commit group —
// the server stages frames as fast as they arrive and shares the fsync.
package jclient

import (
	"bufio"
	"fmt"
	"net"
	"sync"

	"fremont/internal/journal"
	"fremont/internal/jwire"
)

// pipelineWindow bounds requests in flight awaiting a response; sends
// beyond it flush and then block until the server catches up. It is
// deliberately no larger than the server's own per-connection pipeline
// depth, so a Pipeline cannot stall mid-send against server
// backpressure with unflushed frames the server has never seen.
const pipelineWindow = 64

// pipeBufSize sizes the pipeline's buffered reader and writer: a burst
// of small frames becomes one syscall each way.
const pipeBufSize = 32 << 10

// Pipeline is a pipelined connection to a Journal Server. Unlike
// Client, a Pipeline is a single logical request stream and is NOT safe
// for concurrent use — open one per goroutine. Each request returns a
// future immediately; Result/Wait blocks until that response arrives
// (flushing any buffered requests first, so waiting can never deadlock
// on frames the server has not seen).
type Pipeline struct {
	conn net.Conn
	bw   *bufio.Writer
	br   *bufio.Reader

	mu      sync.Mutex // guards bw, sendErr, closed against Wait-side flushes
	sendErr error
	closed  bool

	inflight   chan *Future
	readerDone chan struct{}
}

// DialPipeline connects a pipelined client. Options are the same as
// Dial's.
func DialPipeline(addr string, opts ...Option) (*Pipeline, error) {
	o := resolveOptions(opts)
	conn, err := o.dial(addr)
	if err != nil {
		return nil, fmt.Errorf("jclient: dial %s: %w", addr, err)
	}
	return NewPipeline(conn), nil
}

// NewPipeline wraps an already-established connection.
func NewPipeline(conn net.Conn) *Pipeline {
	p := &Pipeline{
		conn:       conn,
		bw:         bufio.NewWriterSize(conn, pipeBufSize),
		br:         bufio.NewReaderSize(conn, pipeBufSize),
		inflight:   make(chan *Future, pipelineWindow),
		readerDone: make(chan struct{}),
	}
	go p.readLoop()
	return p
}

// readLoop fills futures in FIFO order. A read error is sticky: every
// later future fails with it (responses on a broken stream can no
// longer be matched to requests).
func (p *Pipeline) readLoop() {
	defer close(p.readerDone)
	var readErr error
	for f := range p.inflight {
		if readErr == nil {
			f.resp, readErr = jwire.ReadFrame(p.br)
		}
		if readErr != nil {
			f.err = fmt.Errorf("jclient: recv: %w", readErr)
		}
		close(f.done)
	}
}

// Future is one in-flight request's pending response.
type Future struct {
	p    *Pipeline
	resp []byte
	err  error
	done chan struct{}
}

// send frames req into the write buffer and enqueues a future for its
// response. The buffer is flushed before any blocking enqueue: if the
// response window is full, every buffered request must be on the wire
// or the server could never drain it.
func (p *Pipeline) send(req []byte) *Future {
	f := &Future{p: p, done: make(chan struct{})}
	p.mu.Lock()
	if p.closed {
		p.sendErr = fmt.Errorf("jclient: send on closed pipeline")
	}
	if p.sendErr == nil {
		p.sendErr = jwire.WriteFrame(p.bw, req)
	}
	if p.sendErr != nil {
		f.err = fmt.Errorf("jclient: send: %w", p.sendErr)
		p.mu.Unlock()
		close(f.done)
		return f
	}
	select {
	case p.inflight <- f:
		p.mu.Unlock()
	default:
		if err := p.bw.Flush(); err != nil {
			p.sendErr = err
			f.err = fmt.Errorf("jclient: send: %w", err)
			p.mu.Unlock()
			close(f.done)
			return f
		}
		p.mu.Unlock()
		p.inflight <- f
	}
	return f
}

// Wait blocks until the response arrived (transport errors only; a
// server-reported error surfaces from the typed Result methods).
func (f *Future) Wait() error {
	f.p.Flush()
	<-f.done
	return f.err
}

// reader waits for the response and decodes its status byte.
func (f *Future) reader() (*jwire.Reader, error) {
	if err := f.Wait(); err != nil {
		return nil, err
	}
	r := &jwire.Reader{B: f.resp}
	if status := r.U8(); status != jwire.StatusOK {
		return nil, fmt.Errorf("jclient: server error: %s", r.String())
	}
	return r, nil
}

// Flush pushes every buffered request to the server.
func (p *Pipeline) Flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.sendErr != nil {
		return fmt.Errorf("jclient: send: %w", p.sendErr)
	}
	if err := p.bw.Flush(); err != nil {
		p.sendErr = err
		return fmt.Errorf("jclient: send: %w", err)
	}
	return nil
}

// Close flushes, waits for every in-flight response, and closes the
// connection. Do not send concurrently with Close.
func (p *Pipeline) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		<-p.readerDone
		return nil
	}
	p.closed = true
	if p.sendErr == nil {
		p.bw.Flush()
	}
	close(p.inflight)
	p.mu.Unlock()
	<-p.readerDone
	return p.conn.Close()
}

// AckFuture resolves to a bare OK/error response.
type AckFuture struct{ *Future }

// Result reports whether the request succeeded.
func (f AckFuture) Result() error {
	_, err := f.reader()
	return err
}

// StoreFuture resolves to a StoreInterface response.
type StoreFuture struct{ *Future }

// Result returns the stored record's ID and whether it was created.
func (f StoreFuture) Result() (journal.ID, bool, error) {
	r, err := f.reader()
	if err != nil {
		return 0, false, err
	}
	id := r.ID()
	created := r.Bool()
	return id, created, r.Err
}

// IDFuture resolves to a response carrying one record ID.
type IDFuture struct{ *Future }

// Result returns the record ID.
func (f IDFuture) Result() (journal.ID, error) {
	r, err := f.reader()
	if err != nil {
		return 0, err
	}
	id := r.ID()
	return id, r.Err
}

// IfacesFuture resolves to an interface query's records.
type IfacesFuture struct{ *Future }

// Result returns the matching records.
func (f IfacesFuture) Result() ([]*journal.InterfaceRec, error) {
	r, err := f.reader()
	if err != nil {
		return nil, err
	}
	n := int(r.U32())
	out := make([]*journal.InterfaceRec, 0, n)
	for i := 0; i < n && r.Err == nil; i++ {
		out = append(out, jwire.GetInterfaceRec(r))
	}
	return out, r.Err
}

// Interfaces pipelines an indexed interface query (Client.Interfaces
// routes unindexed queries through the cursor scan, which is inherently
// request/response — use a Client for those).
func (p *Pipeline) Interfaces(q journal.Query) IfacesFuture {
	var w jwire.Writer
	w.U8(jwire.OpGetInterfaces)
	jwire.PutQuery(&w, q)
	return IfacesFuture{p.send(w.B)}
}

// Ping pipelines a ping.
func (p *Pipeline) Ping() AckFuture {
	var w jwire.Writer
	w.U8(jwire.OpPing)
	return AckFuture{p.send(w.B)}
}

// Use pipelines a namespace switch; it scopes every later request on
// this pipeline, in order, exactly as Client.Use does.
func (p *Pipeline) Use(namespace string) AckFuture {
	var w jwire.Writer
	w.U8(jwire.OpNamespace)
	jwire.PutNamespaceReq(&w, jwire.NamespaceReq{Namespace: namespace})
	return AckFuture{p.send(w.B)}
}

// StoreInterface pipelines a Sink StoreInterface.
func (p *Pipeline) StoreInterface(obs journal.IfaceObs) StoreFuture {
	var w jwire.Writer
	w.U8(jwire.OpStoreInterface)
	jwire.PutIfaceObs(&w, obs)
	return StoreFuture{p.send(w.B)}
}

// StoreGateway pipelines a Sink StoreGateway.
func (p *Pipeline) StoreGateway(obs journal.GatewayObs) IDFuture {
	var w jwire.Writer
	w.U8(jwire.OpStoreGateway)
	jwire.PutGatewayObs(&w, obs)
	return IDFuture{p.send(w.B)}
}

// StoreSubnet pipelines a Sink StoreSubnet.
func (p *Pipeline) StoreSubnet(obs journal.SubnetObs) IDFuture {
	var w jwire.Writer
	w.U8(jwire.OpStoreSubnet)
	jwire.PutSubnetObs(&w, obs)
	return IDFuture{p.send(w.B)}
}
