package jclient

import (
	"fmt"
	"testing"
	"time"

	"fremont/internal/journal"
	"fremont/internal/jserver"
	"fremont/internal/jwire"
	"fremont/internal/netsim/pkt"
)

func subObs(i int) journal.IfaceObs {
	return journal.IfaceObs{
		IP: pkt.IPv4(10, 9, byte(i/250), byte(i%250+1)), HasMAC: true,
		MAC:    pkt.MAC{8, 0, 0x20, 7, byte(i / 250), byte(i % 250)},
		Name:   fmt.Sprintf("sub-%d.cs.colorado.edu", i),
		Source: journal.SrcARP, At: time.Date(1993, 1, 25, 8, 0, 0, 0, time.UTC),
	}
}

func recvChange(t *testing.T, sub *Subscription) Change {
	t.Helper()
	select {
	case ch, ok := <-sub.Events():
		if !ok {
			t.Fatalf("event stream closed: %v", sub.Err())
		}
		return ch
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for a pushed change")
	}
	panic("unreachable")
}

func TestSubscriptionDeliversCommits(t *testing.T) {
	s := jserver.New(nil)
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	sub, err := c.Subscribe(SubscribeOptions{Kinds: jwire.SubKindInterface})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	for i := 0; i < 3; i++ {
		if _, _, err := c.StoreInterface(subObs(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		ch := recvChange(t, sub)
		if ch.Kind != journal.KindInterface || ch.Iface == nil || ch.Iface.IP != subObs(i).IP {
			t.Fatalf("change %d: %+v", i, ch)
		}
		if ch.Seq != uint64(i+1) {
			t.Fatalf("change %d: seq %d", i, ch.Seq)
		}
	}
	if cur := sub.Cursor(); cur != 3 {
		t.Fatalf("cursor %d, want 3", cur)
	}
}

// Kill the server mid-stream and bring a new one up on the same address
// with the same journal: the subscription must redial from its cursor
// and the merged stream must have no duplicate and no missing mod-seqs.
func TestSubscriptionAutoResume(t *testing.T) {
	j := journal.New()
	s1 := jserver.New(j)
	if err := s1.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := s1.Addr()
	c1, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	const firstHalf, total = 4, 8
	for i := 0; i < firstHalf; i++ {
		if _, _, err := c1.StoreInterface(subObs(i)); err != nil {
			t.Fatal(err)
		}
	}

	sub, err := Subscribe(addr, SubscribeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	var seqs []uint64
	seen := make(map[uint64]bool)
	recv := func(n int) {
		t.Helper()
		for len(seqs) < n {
			ch := recvChange(t, sub)
			if ch.Resync {
				continue
			}
			if seen[ch.Seq] {
				t.Fatalf("duplicate mod-seq %d across reconnect", ch.Seq)
			}
			seen[ch.Seq] = true
			seqs = append(seqs, ch.Seq)
		}
	}
	recv(firstHalf) // catch-up from cursor 0

	// Tear the connection down: stop the server entirely, then restart
	// on the same address around the same journal.
	c1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := jserver.New(j)
	if err := s2.Listen(addr); err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	c2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	for i := firstHalf; i < total; i++ {
		if _, _, err := c2.StoreInterface(subObs(i)); err != nil {
			t.Fatal(err)
		}
	}

	recv(total)
	for i, seq := range seqs {
		if seq != uint64(i+1) {
			t.Fatalf("mod-seq stream %v: gap or reorder at %d", seqs, i)
		}
	}
	if sub.Resumes() == 0 {
		t.Fatal("stream survived a dead server without a recorded resume")
	}
}

// NoResume surfaces the connection loss instead of hiding it.
func TestSubscriptionNoResume(t *testing.T) {
	s := jserver.New(nil)
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	sub, err := Subscribe(s.Addr(), SubscribeOptions{NoResume: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case _, ok := <-sub.Events():
		if ok {
			t.Fatal("unexpected event from an empty journal")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stream did not close after server shutdown")
	}
	if sub.Err() == nil {
		t.Fatal("terminal error not recorded")
	}
}
