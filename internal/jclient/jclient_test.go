package jclient

import (
	"net"
	"testing"
	"time"

	"fremont/internal/journal"
	"fremont/internal/jwire"
	"fremont/internal/netsim/pkt"
)

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

// startFakeServer runs a minimal one-connection server with a scripted
// responder, for exercising client error paths without a real jserver.
func startFakeServer(t *testing.T, respond func(req []byte) []byte) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		for {
			req, err := jwire.ReadFrame(conn)
			if err != nil {
				return
			}
			resp := respond(req)
			if resp == nil {
				return // hang up mid-exchange
			}
			if err := jwire.WriteFrame(conn, resp); err != nil {
				return
			}
		}
	}()
	return ln.Addr().String()
}

func TestServerErrorSurfaced(t *testing.T) {
	addr := startFakeServer(t, func(req []byte) []byte {
		var w jwire.Writer
		w.U8(jwire.StatusError)
		w.String("synthetic failure")
		return w.B
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err == nil {
		t.Fatal("server error not surfaced")
	}
	if _, _, err := c.StoreInterface(journal.IfaceObs{IP: pkt.IPv4(1, 2, 3, 4)}); err == nil {
		t.Fatal("store error not surfaced")
	}
	if _, err := c.Interfaces(journal.Query{}); err == nil {
		t.Fatal("query error not surfaced")
	}
}

func TestConnectionDropSurfaced(t *testing.T) {
	addr := startFakeServer(t, func(req []byte) []byte { return nil })
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err == nil {
		t.Fatal("dropped connection not surfaced")
	}
}

func TestTruncatedResponseSurfaced(t *testing.T) {
	addr := startFakeServer(t, func(req []byte) []byte {
		// StatusOK but missing the response body for a Get.
		return []byte{jwire.StatusOK}
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Gateways(); err == nil {
		t.Fatal("truncated response not surfaced")
	}
	_ = time.Now // keep imports stable
}
