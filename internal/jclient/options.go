package jclient

import (
	"net"
	"time"
)

// DefaultDialTimeout is the connection timeout used when no WithTimeout
// (or WithDialer, which subsumes it) option is given.
const DefaultDialTimeout = 10 * time.Second

// Dialer opens a transport connection to a Journal Server address. The
// default dials TCP; injecting one rehosts the whole client stack —
// Client, Pool, Fabric, Subscription and its auto-resume path — onto any
// net.Conn transport: a simulated network (netsim.Dialer), an in-memory
// pipe, a proxied or instrumented link.
type Dialer func(addr string) (net.Conn, error)

// Option configures how jclient connections are established. Options are
// accepted by Dial, DialPool, NewPool, DialFabric and Subscribe, and flow
// from each of those into every connection made on the caller's behalf
// (pool refills, per-shard pools, subscription resumes).
type Option func(*options)

type options struct {
	dialer  Dialer
	timeout time.Duration
}

// WithDialer routes all connection establishment through d. It overrides
// WithTimeout — a custom dialer owns its own timeout policy.
func WithDialer(d Dialer) Option {
	return func(o *options) { o.dialer = d }
}

// WithTimeout sets the TCP connect timeout used by the default dialer.
func WithTimeout(d time.Duration) Option {
	return func(o *options) { o.timeout = d }
}

// resolve folds opts over the defaults.
func resolveOptions(opts []Option) options {
	o := options{timeout: DefaultDialTimeout}
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// dial opens one connection according to the resolved options.
func (o options) dial(addr string) (net.Conn, error) {
	if o.dialer != nil {
		return o.dialer(addr)
	}
	return net.DialTimeout("tcp", addr, o.timeout)
}
