package jclient

import (
	"errors"
	"testing"

	"fremont/internal/journal"
	"fremont/internal/netsim/pkt"
)

func TestServerStatsOverWire(t *testing.T) {
	_, c := startRealServer(t)

	// Drive a few ops so the snapshot has something to show.
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	ip := pkt.IPv4(128, 138, 240, 1)
	if _, _, err := c.StoreInterface(journal.IfaceObs{IP: ip, At: bt0}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Interfaces(journal.Query{}); err != nil {
		t.Fatal(err)
	}

	snap, err := c.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	// Three ops counted so far (the stats request itself lands after the
	// snapshot is taken, so it may or may not be included).
	if n := snap.CounterSum("jserver_requests_total"); n < 3 {
		t.Fatalf("jserver_requests_total = %d, want >= 3", n)
	}
	if n := snap.Counters[`jserver_requests_total{op=store_interface}`]; n != 1 {
		t.Fatalf("store_interface count = %d, want 1", n)
	}
	hist, ok := snap.Histograms[`jserver_request_seconds{op=ping}`]
	if !ok {
		t.Fatalf("no ping latency histogram in snapshot; have %d histograms", len(snap.Histograms))
	}
	if hist.Count != 1 {
		t.Fatalf("ping latency observations = %d, want 1", hist.Count)
	}
	if hist.P50 < 0 {
		t.Fatalf("negative p50 %v", hist.P50)
	}
}

func TestPoolDoDiscardsFailedConn(t *testing.T) {
	s, _ := startRealServer(t)
	p, err := DialPool(s.Addr(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// A failing fn must surface its error and discard the connection…
	boom := errors.New("boom")
	if err := p.Do(func(c *Client) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("Do error = %v, want boom", err)
	}
	// …and the next checkout re-dials a fresh one that works.
	if err := p.Ping(); err != nil {
		t.Fatalf("ping after discard: %v", err)
	}
}

func TestPoolServerStats(t *testing.T) {
	s, _ := startRealServer(t)
	p, err := DialPool(s.Addr(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.Ping(); err != nil {
		t.Fatal(err)
	}
	snap, err := p.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	if n := snap.CounterSum("jserver_requests_total"); n < 1 {
		t.Fatalf("jserver_requests_total = %d, want >= 1", n)
	}
}
